// Tests for the key-value cache over disaggregated memory.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "core/ldmc.h"
#include "kvstore/kv_store.h"
#include "workloads/page_content.h"

namespace dm::kv {
namespace {

struct KvRig {
  explicit KvRig(KvStore::Config config = {}) {
    core::DmSystem::Config cluster;
    cluster.node_count = 4;
    cluster.node.shm.arena_bytes = 8 * MiB;
    cluster.node.recv.arena_bytes = 8 * MiB;
    cluster.node.disk.capacity_bytes = 64 * MiB;
    cluster.service.rdmc.replication = 1;
    system = std::make_unique<core::DmSystem>(cluster);
    system->start();
    client = &system->create_server(0, 64 * MiB);
    store = std::make_unique<KvStore>(*client, config);
  }
  std::unique_ptr<core::DmSystem> system;
  core::Ldmc* client = nullptr;
  std::unique_ptr<KvStore> store;
};

std::vector<std::byte> value_bytes(std::string_view text) {
  auto span = std::as_bytes(std::span(text.data(), text.size()));
  return {span.begin(), span.end()};
}

TEST(KvStoreTest, SetGetEraseRoundTrip) {
  KvRig rig;
  ASSERT_TRUE(rig.store->set("user:42", value_bytes("alice")).ok());
  auto got = rig.store->get("user:42");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, value_bytes("alice"));
  EXPECT_TRUE(rig.store->contains("user:42"));

  ASSERT_TRUE(rig.store->erase("user:42").ok());
  EXPECT_FALSE(rig.store->contains("user:42"));
  EXPECT_EQ(rig.store->get("user:42").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(rig.store->erase("user:42").code(), StatusCode::kNotFound);
}

TEST(KvStoreTest, SetReplacesValue) {
  KvRig rig;
  ASSERT_TRUE(rig.store->set("k", value_bytes("one")).ok());
  ASSERT_TRUE(rig.store->set("k", value_bytes("two")).ok());
  auto got = rig.store->get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, value_bytes("two"));
  EXPECT_EQ(rig.store->hot_entries(), 1u);
}

TEST(KvStoreTest, OverflowParksValuesInDisaggregatedMemory) {
  KvStore::Config config;
  config.hot_bytes = 16 * KiB;
  KvRig rig(config);

  // 16 x 4 KiB values: only 4 fit hot; the rest go to DM.
  std::vector<std::byte> page(4096);
  for (int i = 0; i < 16; ++i) {
    workloads::fill_page(page, i, 0.3, 9);
    ASSERT_TRUE(rig.store->set("key" + std::to_string(i), page).ok());
  }
  EXPECT_LE(rig.store->hot_bytes_used(), 16 * KiB);
  EXPECT_GT(rig.store->overflow_entries(), 0u);
  EXPECT_GT(rig.store->metrics().counter_value("kv.overflow_stores"), 0u);

  // Every value is still retrievable and intact.
  for (int i = 0; i < 16; ++i) {
    workloads::fill_page(page, i, 0.3, 9);
    auto got = rig.store->get("key" + std::to_string(i));
    ASSERT_TRUE(got.ok()) << i;
    ASSERT_EQ(*got, page) << i;
  }
  EXPECT_GT(rig.store->metrics().counter_value("kv.dm_hits"), 0u);
}

TEST(KvStoreTest, DisaggregationDisabledDropsOverflow) {
  KvStore::Config config;
  config.hot_bytes = 8 * KiB;
  config.use_disaggregated_memory = false;
  KvRig rig(config);
  std::vector<std::byte> page(4096);
  for (int i = 0; i < 8; ++i) {
    workloads::fill_page(page, i, 0.3, 9);
    ASSERT_TRUE(rig.store->set("key" + std::to_string(i), page).ok());
  }
  EXPECT_EQ(rig.store->overflow_entries(), 0u);
  EXPECT_GT(rig.store->metrics().counter_value("kv.overflow_drops"), 0u);
  // The oldest keys are simply gone (the app would re-fetch from its DB).
  EXPECT_EQ(rig.store->get("key0").status().code(), StatusCode::kNotFound);
  // The newest are still hot.
  EXPECT_TRUE(rig.store->get("key7").ok());
}

TEST(KvStoreTest, PromotionBringsValueBackHot) {
  KvStore::Config config;
  config.hot_bytes = 8 * KiB;
  config.promote_on_hit = true;
  KvRig rig(config);
  std::vector<std::byte> page(4096);
  for (int i = 0; i < 4; ++i) {
    workloads::fill_page(page, i, 0.3, 9);
    ASSERT_TRUE(rig.store->set("key" + std::to_string(i), page).ok());
  }
  const auto overflow_before = rig.store->overflow_entries();
  ASSERT_GT(overflow_before, 0u);
  ASSERT_TRUE(rig.store->get("key0").ok());  // DM hit
  EXPECT_EQ(rig.store->metrics().counter_value("kv.promotions"), 1u);
  EXPECT_LT(rig.store->overflow_entries(), overflow_before + 1);
  // Second get is a hot hit.
  const auto hot_hits = rig.store->metrics().counter_value("kv.hot_hits");
  ASSERT_TRUE(rig.store->get("key0").ok());
  EXPECT_EQ(rig.store->metrics().counter_value("kv.hot_hits"), hot_hits + 1);
}

TEST(KvStoreTest, HotHitsCheaperThanDmHits) {
  KvStore::Config config;
  config.hot_bytes = 8 * KiB;
  config.promote_on_hit = false;
  KvRig rig(config);
  std::vector<std::byte> page(4096);
  for (int i = 0; i < 4; ++i) {
    workloads::fill_page(page, i, 0.3, 9);
    ASSERT_TRUE(rig.store->set("key" + std::to_string(i), page).ok());
  }
  auto& sim = rig.system->simulator();
  SimTime t0 = sim.now();
  ASSERT_TRUE(rig.store->get("key3").ok());  // hot
  const SimTime hot_cost = sim.now() - t0;
  t0 = sim.now();
  ASSERT_TRUE(rig.store->get("key0").ok());  // DM tier
  const SimTime dm_cost = sim.now() - t0;
  EXPECT_LT(hot_cost, dm_cost);
}

TEST(KvStoreTest, OversizedValueRejected) {
  KvRig rig;
  std::vector<std::byte> huge(70 * KiB);
  EXPECT_EQ(rig.store->set("big", huge).code(), StatusCode::kInvalidArgument);
}

TEST(KvStoreTest, RandomChurnPreservesConsistency) {
  KvStore::Config config;
  config.hot_bytes = 32 * KiB;
  KvRig rig(config);
  Rng rng(808);
  // Reference model: key -> value seed (or absent).
  std::unordered_map<int, std::uint64_t> reference;
  std::vector<std::byte> page(4096);
  for (int step = 0; step < 800; ++step) {
    const int k = static_cast<int>(rng.next_below(40));
    const std::string key = "k" + std::to_string(k);
    switch (rng.next_below(3)) {
      case 0: {  // set
        const std::uint64_t seed = rng.next_u64();
        workloads::fill_page(page, k, 0.4, seed);
        ASSERT_TRUE(rig.store->set(key, page).ok());
        reference[k] = seed;
        break;
      }
      case 1: {  // get
        auto got = rig.store->get(key);
        auto ref = reference.find(k);
        if (ref == reference.end()) {
          ASSERT_FALSE(got.ok());
        } else {
          ASSERT_TRUE(got.ok()) << key;
          workloads::fill_page(page, k, 0.4, ref->second);
          ASSERT_EQ(*got, page) << key;
        }
        break;
      }
      case 2: {  // erase
        const bool existed = reference.erase(k) > 0;
        ASSERT_EQ(rig.store->erase(key).ok(), existed);
        break;
      }
    }
  }
}

}  // namespace
}  // namespace dm::kv
