// Tests for the observability layer: MetricsHub aggregation and export
// determinism, causal trace-id propagation through the RPC layer, and
// histogram percentile boundary behaviour.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/dm_system.h"
#include "net/connection_manager.h"
#include "net/fabric.h"
#include "net/rpc.h"
#include "net/wire.h"
#include "obs/metrics_hub.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace dm {
namespace {

// ---- histogram percentile boundaries ----------------------------------------

TEST(HistogramPercentiles, EmptyHistogramIsAllZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.percentile(1.0), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
}

TEST(HistogramPercentiles, SingleSampleAllQuantilesAgree) {
  Histogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_EQ(h.mean(), 42.0);
  // Every quantile of a single-sample distribution lands in the same
  // bucket; the reported bound must cover the sample within the
  // histogram's ~13% relative error.
  const std::uint64_t p0 = h.percentile(0.0);
  const std::uint64_t p50 = h.percentile(0.5);
  const std::uint64_t p100 = h.percentile(1.0);
  EXPECT_EQ(p0, p50);
  EXPECT_EQ(p50, p100);
  EXPECT_GE(p100, 42u);
  EXPECT_LE(p100, 48u);  // next geometric bucket bound at most 42 * 1.25
}

TEST(HistogramPercentiles, BoundaryQuantilesBracketTheData) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_GE(h.percentile(0.0), h.min());
  EXPECT_GE(h.percentile(1.0), h.max());   // upper bucket bound covers max
  EXPECT_LE(h.percentile(1.0), 1250u);     // within one geometric bucket
  EXPECT_LE(h.percentile(0.0), h.percentile(0.5));
  EXPECT_LE(h.percentile(0.5), h.percentile(1.0));
}

// Pinned interpolation regressions: exact values for the bucket-boundary
// fix (interpolate within the bucket, clamp to observed [min, max]). If a
// histogram parameter changes these must be re-derived, deliberately.
TEST(HistogramPercentiles, PinnedSingleSampleIsExact) {
  Histogram h;
  h.record(42);
  EXPECT_EQ(h.percentile(0.0), 42u);
  EXPECT_EQ(h.p50(), 42u);
  EXPECT_EQ(h.p99(), 42u);
  EXPECT_EQ(h.percentile(1.0), 42u);
}

TEST(HistogramPercentiles, PinnedUniformThousand) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  EXPECT_EQ(h.percentile(0.0), 1u);
  EXPECT_EQ(h.p50(), 501u);
  EXPECT_EQ(h.percentile(0.9), 902u);
  EXPECT_EQ(h.p99(), 1000u);   // clamped to observed max
  EXPECT_EQ(h.percentile(1.0), 1000u);
}

TEST(HistogramPercentiles, PinnedSkewedTailDoesNotDragMedian) {
  Histogram h;
  h.record(100);
  h.record(100);
  h.record(100);
  h.record(5000);
  // Median interpolates inside the 100s bucket (bounds [96, 112)) instead
  // of snapping to the bucket top or being dragged toward the outlier.
  EXPECT_EQ(h.p50(), 107u);
  EXPECT_EQ(h.percentile(0.75), 112u);
  EXPECT_EQ(h.p99(), 112u);  // 3rd of 4 samples: still in the 100s bucket
  EXPECT_EQ(h.max(), 5000u);
}

// ---- MetricsHub aggregation -------------------------------------------------

TEST(MetricsHub, MergesRegistriesUnderPrefixes) {
  MetricsRegistry rpc, pool, net;
  rpc.counter("rpc.calls") += 7;
  pool.counter("rpc.calls") += 3;  // same name, same prefix: sums
  pool.counter("shm.hits") += 5;
  net.counter("fabric.writes") += 2;
  rpc.histogram("rpc.rtt.heartbeat").record(100);
  pool.histogram("rpc.rtt.heartbeat").record(300);

  obs::MetricsHub hub;
  hub.add("node.0", &rpc);
  hub.add("node.0", &pool);
  hub.add("net", &net);
  EXPECT_EQ(hub.source_count(), 3u);

  const MetricsRegistry merged = hub.merged();
  EXPECT_EQ(merged.counter_value("node.0.rpc.calls"), 10u);
  EXPECT_EQ(merged.counter_value("node.0.shm.hits"), 5u);
  EXPECT_EQ(merged.counter_value("net.fabric.writes"), 2u);
  const Histogram* h = merged.find_histogram("node.0.rpc.rtt.heartbeat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 2u);
  EXPECT_EQ(h->min(), 100u);
  EXPECT_EQ(h->max(), 300u);

  hub.remove("node.0");
  EXPECT_EQ(hub.source_count(), 1u);
  EXPECT_EQ(hub.merged().counter_value("node.0.rpc.calls"), 0u);
}

TEST(MetricsHub, ExportsContainMergedNames) {
  MetricsRegistry reg;
  reg.counter("swap.faults") += 4;
  reg.histogram("swap.fault_ns.backend").record(1234);

  obs::MetricsHub hub;
  hub.add("node.3", &reg);
  const std::string json = hub.snapshot_json();
  EXPECT_NE(json.find("\"node.3.swap.faults\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"node.3.swap.fault_ns.backend\""), std::string::npos);
  const std::string prom = hub.prometheus_text();
  EXPECT_NE(prom.find("dm_node_3_swap_faults 4"), std::string::npos);
}

TEST(MetricsHub, EmptyHubAndEmptyRegistriesExportCleanly) {
  obs::MetricsHub hub;
  // No sources at all: exports are well-formed and empty of metrics.
  EXPECT_EQ(hub.source_count(), 0u);
  const std::string json = hub.snapshot_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_TRUE(json.ends_with("\n"));
  EXPECT_TRUE(hub.prometheus_text().empty());

  // Registered but never-touched registries contribute nothing either.
  MetricsRegistry empty_a, empty_b;
  hub.add("node.0", &empty_a);
  hub.add("node.1", &empty_b);
  hub.add("node.2", nullptr);  // null registries are ignored, not stored
  EXPECT_EQ(hub.source_count(), 2u);
  EXPECT_TRUE(hub.prometheus_text().empty());
  EXPECT_EQ(hub.merged().counters().size(), 0u);
}

TEST(MetricsHub, NamesNeedingEscapingStayParseable) {
  MetricsRegistry reg;
  reg.counter("weird\"name\\with.quotes") += 1;
  reg.counter("swap.fault-retries/total") += 2;

  obs::MetricsHub hub;
  hub.add("node.0", &reg);
  // JSON: quote and backslash are escaped, the document stays one
  // key-per-line and parseable.
  const std::string json = hub.snapshot_json();
  EXPECT_NE(json.find("weird\\\"name\\\\with.quotes"), std::string::npos);
  // Prometheus: every non-[a-zA-Z0-9_] character sanitizes to '_'.
  const std::string prom = hub.prometheus_text();
  EXPECT_NE(prom.find("dm_node_0_weird_name_with_quotes 1"),
            std::string::npos);
  EXPECT_NE(prom.find("dm_node_0_swap_fault_retries_total 2"),
            std::string::npos);
}

TEST(MetricsHub, SameCounterNameUnderDifferentPrefixesStaysSeparate) {
  MetricsRegistry node_a, node_b;
  node_a.counter("swap.faults") += 11;
  node_b.counter("swap.faults") += 31;

  obs::MetricsHub hub;
  hub.add("node.0", &node_a);
  hub.add("node.1", &node_b);

  const MetricsRegistry merged = hub.merged();
  EXPECT_EQ(merged.counter_value("node.0.swap.faults"), 11u);
  EXPECT_EQ(merged.counter_value("node.1.swap.faults"), 31u);
  EXPECT_EQ(merged.counter_value("swap.faults"), 0u);  // no unprefixed merge

  const std::string prom = hub.prometheus_text();
  EXPECT_NE(prom.find("dm_node_0_swap_faults 11"), std::string::npos);
  EXPECT_NE(prom.find("dm_node_1_swap_faults 31"), std::string::npos);
}

TEST(MetricsHub, ScrapeRunsInVirtualTime) {
  sim::Simulator sim;
  MetricsRegistry reg;
  reg.counter("x") += 1;
  obs::MetricsHub hub;
  hub.add("a", &reg);
  hub.start_scrape(sim, 10 * kMilli);
  sim.run_until(35 * kMilli);
  EXPECT_EQ(hub.scrape_count(), 3u);
  EXPECT_FALSE(hub.last_scrape().empty());
  EXPECT_EQ(hub.last_scrape_at(), 30 * kMilli);
  hub.stop_scrape();
  sim.run_until(85 * kMilli);
  EXPECT_EQ(hub.scrape_count(), 3u);  // stopped: no further ticks
}

// ---- snapshot determinism across seeded runs --------------------------------

std::string run_seeded_workload(std::uint64_t seed) {
  core::DmSystem::Config config;
  config.node_count = 3;
  config.node.shm.arena_bytes = 4 * MiB;
  config.node.recv.arena_bytes = 8 * MiB;
  config.seed = seed;
  core::DmSystem system(config);
  system.start();
  auto& client = system.create_server(0, 4 * MiB);

  Rng rng(mix64(seed ^ 0x0B5ULL));
  std::vector<std::byte> page(4096);
  std::vector<std::byte> out(4096);
  for (mem::EntryId id = 0; id < 48; ++id) {
    for (auto& b : page) b = static_cast<std::byte>(rng.next_below(256));
    EXPECT_TRUE(client.put_sync(id, page).ok());
    if (id % 2 == 0) {
      EXPECT_TRUE(client.get_sync(id, out).ok());
    }
  }
  system.run_for(500 * kMilli);  // several scrape periods + heartbeats
  return system.hub().snapshot_json();
}

TEST(MetricsHub, SnapshotJsonIsByteIdenticalAcrossIdenticalRuns) {
  const std::string a = run_seeded_workload(1234);
  const std::string b = run_seeded_workload(1234);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  // And per-tier latency histograms actually populated.
  EXPECT_NE(a.find("node.0.ldms.put_ns."), std::string::npos);
  EXPECT_NE(a.find("node.0.ldms.get_ns."), std::string::npos);
}

// ---- trace-id propagation ---------------------------------------------------

TEST(Tracing, TraceIdPropagatesAcrossRpcHop) {
  sim::Simulator sim;
  net::Fabric fabric(sim);
  fabric.add_node(0);
  fabric.add_node(1);
  net::RpcEndpoint ep0(sim, 0), ep1(sim, 1);
  net::ConnectionManager cm(fabric);
  cm.register_endpoint(&ep0);
  cm.register_endpoint(&ep1);
  ASSERT_TRUE(cm.ensure_control_channel(0, 1).ok());

  sim::Tracer tracer;
  ep0.set_tracer(&tracer);
  ep1.set_tracer(&tracer);
  ep0.label_method(5, "double");
  ep1.label_method(5, "double");

  const net::TraceId trace = net::make_trace_id(0, 17);
  net::TraceId seen_in_handler = net::kNoTrace;
  ep1.handle(5, [&](net::NodeId, net::WireReader& r)
                 -> StatusOr<std::vector<std::byte>> {
    seen_in_handler = ep1.current_trace_id();
    const std::uint64_t x = r.u64();
    net::WireWriter w;
    w.put_u64(x * 2);
    return std::move(w).take();
  });

  net::WireWriter req;
  req.put_u64(21);
  bool done = false;
  ep0.call(1, 5, std::move(req).take(), 10 * kMilli,
           [&](StatusOr<std::vector<std::byte>> resp) {
             ASSERT_TRUE(resp.ok());
             done = true;
           },
           trace);
  ASSERT_TRUE(sim.run_until_flag(done));

  // The callee observed the caller's trace id, and the tracer recorded the
  // full hop — call on node 0, dispatch on node 1, reply back — all
  // findable by the one trace id string.
  EXPECT_EQ(seen_in_handler, trace);
  const auto chain = tracer.matching(net::format_trace_id(trace));
  ASSERT_GE(chain.size(), 3u);
  bool saw_call = false, saw_dispatch = false, saw_reply = false;
  for (const auto& event : chain) {
    if (event.category == "rpc.call") saw_call = true;
    if (event.category == "rpc.dispatch") saw_dispatch = true;
    if (event.category == "rpc.reply") saw_reply = true;
  }
  EXPECT_TRUE(saw_call);
  EXPECT_TRUE(saw_dispatch);
  EXPECT_TRUE(saw_reply);
  EXPECT_EQ(net::trace_origin(trace), 0u);
  EXPECT_EQ(net::trace_seq(trace), 17u);
  EXPECT_FALSE(sim::Tracer::format(chain).empty());
}

TEST(Tracing, RpcAllocatesTraceIdWhenCallerPassesNone) {
  sim::Simulator sim;
  net::Fabric fabric(sim);
  fabric.add_node(0);
  fabric.add_node(1);
  net::RpcEndpoint ep0(sim, 0), ep1(sim, 1);
  net::ConnectionManager cm(fabric);
  cm.register_endpoint(&ep0);
  cm.register_endpoint(&ep1);
  ASSERT_TRUE(cm.ensure_control_channel(0, 1).ok());

  net::TraceId seen = net::kNoTrace;
  ep1.handle(9, [&](net::NodeId, net::WireReader&)
                 -> StatusOr<std::vector<std::byte>> {
    seen = ep1.current_trace_id();
    return std::vector<std::byte>{};
  });
  bool done = false;
  ep0.call(1, 9, {}, 10 * kMilli,
           [&](StatusOr<std::vector<std::byte>> resp) {
             ASSERT_TRUE(resp.ok());
             done = true;
           });
  ASSERT_TRUE(sim.run_until_flag(done));
  EXPECT_NE(seen, net::kNoTrace);
  EXPECT_EQ(net::trace_origin(seen), 0u);  // first hop stamps the caller
}

// ---- logger sink capture ----------------------------------------------------

TEST(Logging, ConnectionManagerRetryPathLogsToInjectedSink) {
  sim::Simulator sim;
  net::Fabric fabric(sim);
  fabric.add_node(0);
  fabric.add_node(1);
  net::RpcEndpoint ep0(sim, 0), ep1(sim, 1);
  net::ConnectionManager cm(fabric);
  cm.register_endpoint(&ep0);
  cm.register_endpoint(&ep1);

  std::ostringstream captured;
  cm.logger().set_sink(&captured);
  cm.logger().set_level(LogLevel::kInfo);

  ASSERT_TRUE(cm.ensure_data_channel(0, 1).ok());
  fabric.set_node_up(1, false);
  EXPECT_FALSE(cm.ensure_data_channel(0, 1).ok());  // repair attempt fails
  fabric.set_node_up(1, true);
  EXPECT_TRUE(cm.ensure_data_channel(0, 1).ok());

  const std::string log = captured.str();
  EXPECT_NE(log.find("net.cm"), std::string::npos);
  EXPECT_NE(log.find("establish"), std::string::npos);
  cm.logger().set_sink(nullptr);
}

}  // namespace
}  // namespace dm
