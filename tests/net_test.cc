// Tests for the simulated RDMA fabric, wire codec, RPC layer and connection
// manager: real data movement, RC semantics, failure behaviour.
#include <gtest/gtest.h>

#include <numeric>

#include "common/status.h"
#include "common/units.h"
#include "net/connection_manager.h"
#include "net/fabric.h"
#include "net/rpc.h"
#include "net/wire.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace dm::net {
namespace {

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 31 + seed) & 0xff);
  return v;
}

class FabricTest : public ::testing::Test {
 protected:
  FabricTest() : fabric_(sim_) {
    fabric_.add_node(0);
    fabric_.add_node(1);
    fabric_.add_node(2);
  }

  sim::Simulator sim_;
  Fabric fabric_;
};

// ---- wire codec ---------------------------------------------------------------

TEST(WireTest, RoundTripsScalarsAndBytes) {
  WireWriter w;
  w.put_u8(7);
  w.put_u32(123456);
  w.put_u64(~0ULL);
  w.put_string("hello");
  w.put_double(2.5);
  auto buf = std::move(w).take();

  WireReader r(buf);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 123456u);
  EXPECT_EQ(r.u64(), ~0ULL);
  EXPECT_EQ(r.string(), "hello");
  EXPECT_EQ(r.f64(), 2.5);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(WireTest, TruncatedReadFailsSafely) {
  WireWriter w;
  w.put_u32(5);
  auto buf = std::move(w).take();
  WireReader r(buf);
  (void)r.u64();  // larger than available
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.status().ok());
}

TEST(WireTest, TruncatedBytesFailsSafely) {
  WireWriter w;
  w.put_u32(1000);  // length prefix with no payload
  auto buf = std::move(w).take();
  WireReader r(buf);
  auto b = r.bytes();
  EXPECT_TRUE(b.empty());
  EXPECT_FALSE(r.ok());
}

// ---- memory registration ---------------------------------------------------------

TEST_F(FabricTest, RegisterAndDeregister) {
  std::vector<std::byte> region(4096);
  auto rkey = fabric_.register_memory(0, region);
  ASSERT_TRUE(rkey.ok());
  EXPECT_EQ(fabric_.registered_region_count(0), 1u);
  EXPECT_EQ(fabric_.registered_bytes(0), 4096u);
  EXPECT_TRUE(fabric_.deregister_memory(0, *rkey).ok());
  EXPECT_EQ(fabric_.registered_region_count(0), 0u);
  EXPECT_EQ(fabric_.deregister_memory(0, *rkey).code(),
            StatusCode::kNotFound);
}

TEST_F(FabricTest, RegisterOnUnknownNodeFails) {
  std::vector<std::byte> region(64);
  EXPECT_FALSE(fabric_.register_memory(99, region).ok());
}

// ---- one-sided verbs -------------------------------------------------------------

TEST_F(FabricTest, WriteMovesRealBytes) {
  std::vector<std::byte> region(8192);
  auto rkey = fabric_.register_memory(1, region);
  ASSERT_TRUE(rkey.ok());
  auto qp = fabric_.connect(0, 1);
  ASSERT_TRUE(qp.ok());

  auto payload = pattern(4096);
  bool completed = false;
  Completion completion;
  ASSERT_TRUE((*qp)->post_write(*rkey, 1024, payload,
                                [&](const Completion& c) {
                                  completion = c;
                                  completed = true;
                                })
                  .ok());
  ASSERT_TRUE(sim_.run_until_flag(completed));
  EXPECT_TRUE(completion.status.ok());
  EXPECT_EQ(completion.bytes, 4096u);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         region.begin() + 1024));
  EXPECT_GT(sim_.now(), 0);
}

TEST_F(FabricTest, ReadFetchesRealBytes) {
  std::vector<std::byte> region = pattern(8192, 9);
  auto rkey = fabric_.register_memory(1, region);
  ASSERT_TRUE(rkey.ok());
  auto qp = fabric_.connect(0, 1);
  ASSERT_TRUE(qp.ok());

  std::vector<std::byte> dest(2048);
  bool completed = false;
  Status status;
  ASSERT_TRUE((*qp)->post_read(*rkey, 4096, dest,
                               [&](const Completion& c) {
                                 status = c.status;
                                 completed = true;
                               })
                  .ok());
  ASSERT_TRUE(sim_.run_until_flag(completed));
  EXPECT_TRUE(status.ok());
  EXPECT_TRUE(std::equal(dest.begin(), dest.end(), region.begin() + 4096));
}

TEST_F(FabricTest, WritePastRegionEndFailsCompletion) {
  std::vector<std::byte> region(1024);
  auto rkey = fabric_.register_memory(1, region);
  auto qp = fabric_.connect(0, 1);
  auto payload = pattern(512);
  bool completed = false;
  Status status;
  ASSERT_TRUE((*qp)->post_write(*rkey, 1000, payload,
                                [&](const Completion& c) {
                                  status = c.status;
                                  completed = true;
                                })
                  .ok());
  ASSERT_TRUE(sim_.run_until_flag(completed));
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE((*qp)->in_error());
}

TEST_F(FabricTest, BatchedWriteCheaperThanPerPage) {
  std::vector<std::byte> region(64 * 1024);
  auto rkey1 = fabric_.register_memory(1, region);
  auto qp1 = fabric_.connect(0, 1);
  ASSERT_TRUE(rkey1.ok() && qp1.ok());

  // Eight individual 4 KiB writes.
  int pending = 8;
  for (int i = 0; i < 8; ++i) {
    auto payload = pattern(4096, i);
    ASSERT_TRUE((*qp1)->post_write(*rkey1, i * 4096, payload,
                                   [&](const Completion&) { --pending; })
                    .ok());
  }
  while (pending > 0) ASSERT_TRUE(sim_.step());
  const SimTime per_page = sim_.now();

  // One 32 KiB write on a fresh fabric.
  sim::Simulator sim2;
  Fabric fabric2(sim2);
  fabric2.add_node(0);
  fabric2.add_node(1);
  std::vector<std::byte> region2(64 * 1024);
  auto rkey2 = fabric2.register_memory(1, region2);
  auto qp2 = fabric2.connect(0, 1);
  auto big = pattern(8 * 4096);
  bool completed = false;
  ASSERT_TRUE((*qp2)->post_write(*rkey2, 0, big,
                                 [&](const Completion&) { completed = true; })
                  .ok());
  ASSERT_TRUE(sim2.run_until_flag(completed));
  EXPECT_LT(sim2.now(), per_page);
}

// ---- two-sided + RPC --------------------------------------------------------------

TEST_F(FabricTest, SendDeliversToReceiveHandler) {
  auto qp = fabric_.connect(0, 1);
  ASSERT_TRUE(qp.ok());
  QueuePair* peer = fabric_.peer_of(*qp);
  ASSERT_NE(peer, nullptr);

  std::vector<std::byte> received;
  NodeId from = kInvalidNode;
  peer->set_receive_handler([&](NodeId f, std::span<const std::byte> m) {
    from = f;
    received.assign(m.begin(), m.end());
  });
  auto msg = pattern(100);
  bool acked = false;
  ASSERT_TRUE((*qp)->post_send(msg, [&](const Completion&) { acked = true; })
                  .ok());
  ASSERT_TRUE(sim_.run_until_flag(acked));
  EXPECT_EQ(from, 0u);
  EXPECT_EQ(received, msg);
}

TEST_F(FabricTest, RpcRoundTrip) {
  RpcEndpoint ep0(sim_, 0), ep1(sim_, 1);
  ConnectionManager cm(fabric_);
  cm.register_endpoint(&ep0);
  cm.register_endpoint(&ep1);
  ASSERT_TRUE(cm.ensure_control_channel(0, 1).ok());

  ep1.handle(5, [](NodeId from, WireReader& r)
                 -> StatusOr<std::vector<std::byte>> {
    EXPECT_EQ(from, 0u);
    const std::uint64_t x = r.u64();
    WireWriter w;
    w.put_u64(x * 2);
    return std::move(w).take();
  });

  WireWriter req;
  req.put_u64(21);
  bool done = false;
  std::uint64_t answer = 0;
  ep0.call(1, 5, std::move(req).take(), 10 * kMilli,
           [&](StatusOr<std::vector<std::byte>> resp) {
             ASSERT_TRUE(resp.ok());
             WireReader r(*resp);
             answer = r.u64();
             done = true;
           });
  ASSERT_TRUE(sim_.run_until_flag(done));
  EXPECT_EQ(answer, 42u);
  EXPECT_EQ(ep0.inflight(), 0u);
}

TEST_F(FabricTest, RpcUnknownMethodReturnsError) {
  RpcEndpoint ep0(sim_, 0), ep1(sim_, 1);
  ConnectionManager cm(fabric_);
  cm.register_endpoint(&ep0);
  cm.register_endpoint(&ep1);
  ASSERT_TRUE(cm.ensure_control_channel(0, 1).ok());

  bool done = false;
  Status status;
  ep0.call(1, 99, {}, 10 * kMilli, [&](StatusOr<std::vector<std::byte>> r) {
    status = r.status();
    done = true;
  });
  ASSERT_TRUE(sim_.run_until_flag(done));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(FabricTest, RpcToUnconnectedPeerFails) {
  RpcEndpoint ep0(sim_, 0);
  bool done = false;
  Status status;
  ep0.call(1, 1, {}, 10 * kMilli, [&](StatusOr<std::vector<std::byte>> r) {
    status = r.status();
    done = true;
  });
  ASSERT_TRUE(sim_.run_until_flag(done));
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
}

TEST_F(FabricTest, RpcHandlerErrorPropagates) {
  RpcEndpoint ep0(sim_, 0), ep1(sim_, 1);
  ConnectionManager cm(fabric_);
  cm.register_endpoint(&ep0);
  cm.register_endpoint(&ep1);
  ASSERT_TRUE(cm.ensure_control_channel(0, 1).ok());
  ep1.handle(3, [](NodeId, WireReader&) -> StatusOr<std::vector<std::byte>> {
    return ResourceExhaustedError("pool full");
  });
  bool done = false;
  Status status;
  ep0.call(1, 3, {}, 10 * kMilli, [&](StatusOr<std::vector<std::byte>> r) {
    status = r.status();
    done = true;
  });
  ASSERT_TRUE(sim_.run_until_flag(done));
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

// ---- failures ---------------------------------------------------------------------

TEST_F(FabricTest, WriteToDownNodeFailsAndErrorsQp) {
  std::vector<std::byte> region(4096);
  auto rkey = fabric_.register_memory(1, region);
  auto qp = fabric_.connect(0, 1);
  fabric_.set_node_up(1, false);

  // QP was marked error when the node went down.
  EXPECT_TRUE((*qp)->in_error());
  auto payload = pattern(64);
  EXPECT_EQ((*qp)->post_write(*rkey, 0, payload, {}).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(FabricTest, InFlightWriteToCrashingNodeFails) {
  std::vector<std::byte> region(4096);
  auto rkey = fabric_.register_memory(1, region);
  auto qp = fabric_.connect(0, 1);
  auto payload = pattern(4096);
  bool completed = false;
  Status status;
  ASSERT_TRUE((*qp)->post_write(*rkey, 0, payload,
                                [&](const Completion& c) {
                                  status = c.status;
                                  completed = true;
                                })
                  .ok());
  fabric_.set_node_up(1, false);  // crash before delivery
  ASSERT_TRUE(sim_.run_until_flag(completed));
  EXPECT_FALSE(status.ok());
  // The write must not have landed.
  EXPECT_TRUE(std::all_of(region.begin(), region.end(),
                          [](std::byte b) { return b == std::byte{0}; }));
}

TEST_F(FabricTest, LinkDownFailsPath) {
  fabric_.set_link_up(0, 1, false);
  EXPECT_FALSE(fabric_.connect(0, 1).ok());
  EXPECT_TRUE(fabric_.connect(0, 2).ok());
  fabric_.set_link_up(0, 1, true);
  EXPECT_TRUE(fabric_.connect(0, 1).ok());
}

TEST_F(FabricTest, ConnectionManagerRepairsAfterRecovery) {
  RpcEndpoint ep0(sim_, 0), ep1(sim_, 1);
  ConnectionManager cm(fabric_);
  cm.register_endpoint(&ep0);
  cm.register_endpoint(&ep1);
  auto qp = cm.ensure_data_channel(0, 1);
  ASSERT_TRUE(qp.ok());

  fabric_.set_node_up(1, false);
  EXPECT_TRUE((*qp)->in_error());
  EXPECT_FALSE(cm.ensure_data_channel(0, 1).ok());

  fabric_.set_node_up(1, true);
  auto repaired = cm.ensure_data_channel(0, 1);
  ASSERT_TRUE(repaired.ok());
  EXPECT_FALSE((*repaired)->in_error());
}

TEST_F(FabricTest, TracerSeesVerbsAndTopology) {
  sim::Tracer tracer;
  fabric_.set_tracer(&tracer);
  std::vector<std::byte> region(4096);
  auto rkey = fabric_.register_memory(1, region);
  auto qp = fabric_.connect(0, 1);
  auto payload = pattern(512);
  bool completed = false;
  ASSERT_TRUE((*qp)->post_write(*rkey, 0, payload,
                                [&](const Completion&) { completed = true; })
                  .ok());
  ASSERT_TRUE(sim_.run_until_flag(completed));
  fabric_.set_node_up(2, false);
  EXPECT_EQ(tracer.by_category("fabric.write").size(), 1u);
  EXPECT_EQ(tracer.by_category("fabric.node").size(), 1u);
  fabric_.set_tracer(nullptr);
  fabric_.set_node_up(2, true);
  EXPECT_EQ(tracer.by_category("fabric.node").size(), 1u);  // detached
}

TEST_F(FabricTest, RcCompletionsStayInOrderPerQp) {
  std::vector<std::byte> region(64 * 1024);
  auto rkey = fabric_.register_memory(1, region);
  auto qp = fabric_.connect(0, 1);
  ASSERT_TRUE(rkey.ok() && qp.ok());
  std::vector<int> completions;
  int remaining = 4;
  for (int i = 0; i < 4; ++i) {
    // Varying sizes: without the ordering rule small late messages could
    // complete before earlier large ones.
    auto payload = pattern(i % 2 == 0 ? 16384 : 128, i);
    ASSERT_TRUE((*qp)->post_write(*rkey, 0, payload,
                                  [&, i](const Completion&) {
                                    completions.push_back(i);
                                    --remaining;
                                  })
                    .ok());
  }
  while (remaining > 0) ASSERT_TRUE(sim_.step());
  EXPECT_EQ(completions, (std::vector<int>{0, 1, 2, 3}));
}

}  // namespace
}  // namespace dm::net
