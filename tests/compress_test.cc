// Tests for the LZ compressor and the multi-granularity page compressor,
// including property-style round-trip sweeps over content classes.
#include <gtest/gtest.h>

#include <cstring>
#include <tuple>

#include "common/rng.h"
#include "common/status.h"
#include "compress/lz.h"
#include "compress/page_compressor.h"
#include "workloads/page_content.h"

namespace dm::compress {
namespace {

TEST(LzTest, EmptyInput) {
  auto compressed = lz_compress({});
  EXPECT_TRUE(compressed.empty());
  EXPECT_TRUE(lz_decompress(compressed, {}).ok());
}

TEST(LzTest, AllZerosCompressesHard) {
  std::vector<std::byte> input(4096, std::byte{0});
  auto compressed = lz_compress(input);
  EXPECT_LT(compressed.size(), 600u);
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(lz_decompress(compressed, out).ok());
  EXPECT_EQ(out, input);
}

TEST(LzTest, RandomDataDoesNotExplode) {
  Rng rng(5);
  std::vector<std::byte> input(4096);
  for (auto& b : input) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  auto compressed = lz_compress(input);
  EXPECT_LE(compressed.size(), lz_max_compressed_size(input.size()));
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(lz_decompress(compressed, out).ok());
  EXPECT_EQ(out, input);
}

TEST(LzTest, RepeatedTextCompresses) {
  std::string text;
  while (text.size() < 4096)
    text += "the quick brown fox jumps over the lazy dog. ";
  text.resize(4096);
  std::vector<std::byte> input(4096);
  std::memcpy(input.data(), text.data(), 4096);
  auto compressed = lz_compress(input);
  EXPECT_LT(compressed.size(), 2048u);
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(lz_decompress(compressed, out).ok());
  EXPECT_EQ(out, input);
}

TEST(LzTest, TruncatedStreamDetected) {
  std::vector<std::byte> input(4096, std::byte{0});
  auto compressed = lz_compress(input);
  compressed.resize(compressed.size() / 2);
  std::vector<std::byte> out(4096);
  EXPECT_EQ(lz_decompress(compressed, out).code(), StatusCode::kDataLoss);
}

TEST(LzTest, GarbageStreamDoesNotCrash) {
  Rng rng(77);
  std::vector<std::byte> garbage(512);
  for (auto& b : garbage) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  std::vector<std::byte> out(4096);
  // Must either succeed (valid by chance) or fail cleanly — never UB.
  (void)lz_decompress(garbage, out);
}

// Property sweep: round-trip over (random_fraction, size) grid.
class LzRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(LzRoundTrip, RoundTripsExactly) {
  const auto [random_fraction, size] = GetParam();
  for (std::uint64_t page = 0; page < 16; ++page) {
    std::vector<std::byte> input(size);
    workloads::fill_page(input, page, random_fraction, /*seed=*/99);
    auto compressed = lz_compress(input);
    std::vector<std::byte> out(size);
    ASSERT_TRUE(lz_decompress(compressed, out).ok());
    ASSERT_EQ(out, input) << "r=" << random_fraction << " size=" << size
                          << " page=" << page;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ContentGrid, LzRoundTrip,
    ::testing::Combine(::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 1.0),
                       ::testing::Values(1u, 100u, 512u, 4096u, 16384u)));

TEST(LzTest, MoreRandomContentCompressesWorse) {
  std::size_t prev = 0;
  for (double r : {0.0, 0.3, 0.6, 1.0}) {
    std::size_t total = 0;
    for (std::uint64_t page = 0; page < 8; ++page) {
      std::vector<std::byte> input(4096);
      workloads::fill_page(input, page, r, 1);
      total += lz_compress(input).size();
    }
    EXPECT_GT(total, prev) << "r=" << r;
    prev = total;
  }
}

// ---- page compressor ---------------------------------------------------------

TEST(PageCompressorTest, BucketsAscend) {
  auto two = buckets_for(GranularityMode::kTwo);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two[0], 2048u);
  auto four = buckets_for(GranularityMode::kFour);
  ASSERT_EQ(four.size(), 4u);
  EXPECT_EQ(four[0], 512u);
}

TEST(PageCompressorTest, HighlyCompressibleLandsInSmallBucket) {
  PageCompressor pc(GranularityMode::kFour);
  std::vector<std::byte> page(kPageSize, std::byte{7});
  auto cp = pc.compress(page);
  EXPECT_FALSE(cp.is_raw);
  EXPECT_EQ(cp.bucket, 512u);
  EXPECT_DOUBLE_EQ(cp.ratio(), 8.0);
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(pc.decompress(cp, out).ok());
  EXPECT_EQ(out, page);
}

TEST(PageCompressorTest, IncompressibleFallsBackToRaw) {
  PageCompressor pc(GranularityMode::kFour);
  Rng rng(3);
  std::vector<std::byte> page(kPageSize);
  for (auto& b : page) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  auto cp = pc.compress(page);
  EXPECT_TRUE(cp.is_raw);
  EXPECT_EQ(cp.bucket, kPageSize);
  EXPECT_DOUBLE_EQ(cp.ratio(), 1.0);
  std::vector<std::byte> out(kPageSize);
  ASSERT_TRUE(pc.decompress(cp, out).ok());
  EXPECT_EQ(out, page);
}

TEST(PageCompressorTest, FourGranularityNeverWorseThanTwo) {
  PageCompressor two(GranularityMode::kTwo);
  PageCompressor four(GranularityMode::kFour);
  for (double r : {0.05, 0.2, 0.4, 0.6}) {
    for (std::uint64_t page = 0; page < 8; ++page) {
      std::vector<std::byte> bytes(kPageSize);
      workloads::fill_page(bytes, page, r, 17);
      EXPECT_LE(four.compress(bytes).bucket, two.compress(bytes).bucket);
    }
  }
}

TEST(PageCompressorTest, DecompressRejectsWrongOutputSize) {
  PageCompressor pc;
  std::vector<std::byte> page(kPageSize, std::byte{1});
  auto cp = pc.compress(page);
  std::vector<std::byte> small(100);
  EXPECT_EQ(pc.decompress(cp, small).code(), StatusCode::kInvalidArgument);
}

TEST(ZswapTest, ZbudCapsEffectiveRatioAtTwo) {
  // Even a 10:1-compressible page only saves half a frame under zbud.
  EXPECT_EQ(zswap_zbud_footprint(400), kPageSize / 2);
  EXPECT_EQ(zswap_zbud_footprint(2048), kPageSize / 2);
  EXPECT_EQ(zswap_zbud_footprint(2049), kPageSize);
  EXPECT_EQ(zswap_zbud_footprint(4096), kPageSize);
}

// Round-trip property across both modes and content classes.
class PageRoundTrip
    : public ::testing::TestWithParam<std::tuple<GranularityMode, double>> {};

TEST_P(PageRoundTrip, RoundTripsExactly) {
  const auto [mode, r] = GetParam();
  PageCompressor pc(mode);
  for (std::uint64_t page = 0; page < 32; ++page) {
    std::vector<std::byte> bytes(kPageSize);
    workloads::fill_page(bytes, page, r, 23);
    auto cp = pc.compress(bytes);
    std::vector<std::byte> out(kPageSize);
    ASSERT_TRUE(pc.decompress(cp, out).ok());
    ASSERT_EQ(out, bytes);
    EXPECT_GE(cp.ratio(), 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ModesAndContent, PageRoundTrip,
    ::testing::Combine(::testing::Values(GranularityMode::kTwo,
                                         GranularityMode::kFour),
                       ::testing::Values(0.0, 0.2, 0.5, 0.8, 1.0)));

}  // namespace
}  // namespace dm::compress
