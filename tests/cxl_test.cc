// Cache-coherent CXL-class tier battery (DESIGN.md §14).
//
// Part 1 exercises the MSI-style protocol directly: fill states, dirty
// write-back on remote load, back-invalidation on remote store, in-place
// Shared->Exclusive upgrades, LRU eviction write-back, bulk region
// transactions, and the TSO store buffer (forwarding, fences, FIFO drain).
//
// Part 2 is the litmus battery. In SC mode (store buffer off) every
// completed operation is globally visible, so the observable outcomes are
// exactly the sequentializations: we enumerate *every* interleaving of the
// classic shapes (SB, LB, MP: 6 each; IRIW: 180), execute each against the
// protocol one operation at a time, check each run against a trivial
// sequential-memory oracle, and pin the aggregate outcome sets — (0,0) for
// SB, (1,1) for LB, (1,0) for MP and the disagreeing-readers IRIW outcome
// never appear. In TSO mode a delay/drain grid drives the store buffer into
// every architecturally-allowed SB outcome including the relaxed (0,0);
// fences restore SC; LB/MP/IRIW keep their SC sets.
//
// Part 3 covers the page tier (slot pool over directory lines) and the
// swap-manager integration: DRAM -> CXL demotion on eviction, sub-page
// in-place faults, hotness promotion, pool spill to the RDMA backend, and
// flush_all draining. A seeded soak pins byte-identical metrics across
// same-seed runs and dumps a snapshot for ci.sh's cross-process diff.
#include <gtest/gtest.h>

#include <array>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/checksum.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "core/ldmc.h"
#include "cxl/coherence.h"
#include "cxl/page_tier.h"
#include "net/fabric.h"
#include "obs/metrics_hub.h"
#include "sim/simulator.h"
#include "sim/span_sink.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "workloads/page_content.h"

namespace dm::cxl {
namespace {

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> bytes(n);
  for (auto& b : bytes) b = static_cast<std::byte>(rng.next_below(256));
  return bytes;
}

// Raw fabric + directory + per-node agents, no cluster machinery: the
// protocol under a microscope. Node 0 is the home; agents live on 1..N.
struct CxlRig {
  explicit CxlRig(std::size_t agent_count = 2, CxlAgent::Config base = {}) {
    for (net::NodeId n = 0; n < 5; ++n) fabric.add_node(n);
    CxlDirectory::Config dc;
    dc.home = 0;
    dc.line_count = 64;
    dir = std::make_unique<CxlDirectory>(fabric, dc);
    for (std::size_t i = 0; i < agent_count; ++i) {
      auto ac = base;
      ac.node = static_cast<net::NodeId>(i + 1);
      agents.push_back(std::make_unique<CxlAgent>(*dir, ac));
    }
  }

  CxlAgent& agent(std::size_t i) { return *agents.at(i); }

  sim::Simulator sim;
  net::Fabric fabric{sim};
  std::unique_ptr<CxlDirectory> dir;
  std::vector<std::unique_ptr<CxlAgent>> agents;
};

// --- protocol unit tests -----------------------------------------------------

TEST(CxlProtocolTest, LoadMissInstallsSharedCleanLine) {
  CxlRig rig;
  std::array<std::byte, kLineBytes> out;
  out.fill(std::byte{0xEE});
  ASSERT_TRUE(rig.agent(0).load_sync(5, 0, out).ok());
  EXPECT_EQ(rig.agent(0).state_of(5), LineState::kShared);
  EXPECT_FALSE(rig.agent(0).line_dirty(5));
  EXPECT_EQ(rig.dir->sharer_count(5), 1u);
  EXPECT_EQ(rig.dir->owner_of(5), net::kInvalidNode);
  for (std::byte b : out) EXPECT_EQ(b, std::byte{0});  // fresh backing is zero
  EXPECT_EQ(rig.agent(0).metrics().counter_value("cxl.fills"), 1u);
}

TEST(CxlProtocolTest, StoreMissGrantsExclusiveDirtyAndHitsLocally) {
  CxlRig rig;
  const std::byte v{0xAB};
  ASSERT_TRUE(rig.agent(0).store_sync(7, 3, {&v, 1}).ok());
  EXPECT_EQ(rig.agent(0).state_of(7), LineState::kExclusive);
  EXPECT_TRUE(rig.agent(0).line_dirty(7));
  EXPECT_EQ(rig.dir->owner_of(7), rig.agent(0).node());

  const std::uint64_t reads_before =
      rig.fabric.metrics().counter_value("fabric.cxl_reads");
  std::array<std::byte, kLineBytes> out{};
  ASSERT_TRUE(rig.agent(0).load_sync(7, 0, out).ok());
  EXPECT_EQ(out[3], v);
  EXPECT_EQ(out[0], std::byte{0});
  // The hit never touched the fabric.
  EXPECT_EQ(rig.fabric.metrics().counter_value("fabric.cxl_reads"),
            reads_before);
  EXPECT_GE(rig.agent(0).metrics().counter_value("cxl.load_hits"), 1u);
}

TEST(CxlProtocolTest, RemoteLoadDowngradesDirtyOwnerThroughWriteBack) {
  CxlRig rig;
  const std::byte v{0x5A};
  ASSERT_TRUE(rig.agent(0).store_sync(9, 0, {&v, 1}).ok());

  std::array<std::byte, kLineBytes> out{};
  ASSERT_TRUE(rig.agent(1).load_sync(9, 0, out).ok());
  EXPECT_EQ(out[0], v);  // the dirty value travelled writer -> home -> reader
  EXPECT_EQ(rig.agent(0).state_of(9), LineState::kShared);
  EXPECT_FALSE(rig.agent(0).line_dirty(9));
  EXPECT_EQ(rig.agent(1).state_of(9), LineState::kShared);
  EXPECT_EQ(rig.dir->owner_of(9), net::kInvalidNode);
  EXPECT_EQ(rig.dir->sharer_count(9), 2u);
  EXPECT_EQ(rig.dir->backing_line(9)[0], v);  // home copy is current again
  EXPECT_GE(rig.dir->metrics().counter_value("cxl.dir.writebacks"), 1u);
  EXPECT_GE(rig.dir->metrics().counter_value("cxl.dir.downgrades"), 1u);
}

TEST(CxlProtocolTest, StoreBackInvalidatesEverySharer) {
  CxlRig rig(3);
  std::array<std::byte, kLineBytes> out{};
  ASSERT_TRUE(rig.agent(0).load_sync(11, 0, out).ok());
  ASSERT_TRUE(rig.agent(1).load_sync(11, 0, out).ok());
  ASSERT_TRUE(rig.agent(2).load_sync(11, 0, out).ok());
  EXPECT_EQ(rig.dir->sharer_count(11), 3u);

  const std::uint64_t fills_before =
      rig.agent(0).metrics().counter_value("cxl.fills");
  const std::byte v{0x77};
  ASSERT_TRUE(rig.agent(0).store_sync(11, 0, {&v, 1}).ok());
  EXPECT_EQ(rig.agent(0).state_of(11), LineState::kExclusive);
  EXPECT_EQ(rig.agent(1).state_of(11), LineState::kInvalid);
  EXPECT_EQ(rig.agent(2).state_of(11), LineState::kInvalid);
  EXPECT_EQ(rig.dir->owner_of(11), rig.agent(0).node());
  EXPECT_GE(rig.dir->metrics().counter_value("cxl.dir.invalidations"), 2u);
  // The writer held a Shared copy: in-place upgrade, no data re-fill.
  EXPECT_EQ(rig.agent(0).metrics().counter_value("cxl.fills"), fills_before);
  EXPECT_EQ(rig.agent(0).metrics().counter_value("cxl.upgrades"), 1u);
}

TEST(CxlProtocolTest, SubLineStoresMergeWithinTheLine) {
  CxlRig rig;
  const auto a = pattern(4, 1);
  const auto b = pattern(4, 2);
  ASSERT_TRUE(rig.agent(0).store_sync(13, 0, a).ok());
  ASSERT_TRUE(rig.agent(0).store_sync(13, 8, b).ok());
  std::array<std::byte, kLineBytes> out{};
  ASSERT_TRUE(rig.agent(1).load_sync(13, 0, out).ok());
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i], a[i]);
    EXPECT_EQ(out[8 + i], b[i]);
  }
  EXPECT_EQ(out[4], std::byte{0});
}

TEST(CxlProtocolTest, LruEvictionWritesBackDirtyLines) {
  CxlAgent::Config small;
  small.cache_lines = 2;
  CxlRig rig(1, small);
  const std::byte v{0xC4};
  ASSERT_TRUE(rig.agent(0).store_sync(1, 0, {&v, 1}).ok());
  ASSERT_TRUE(rig.agent(0).store_sync(2, 0, {&v, 1}).ok());
  ASSERT_TRUE(rig.agent(0).store_sync(3, 0, {&v, 1}).ok());
  rig.sim.run_until(rig.sim.now() + kMilli);  // let the trim chain settle

  EXPECT_LE(rig.agent(0).cached_lines(), 2u);
  EXPECT_EQ(rig.agent(0).state_of(1), LineState::kInvalid);
  EXPECT_EQ(rig.dir->owner_of(1), net::kInvalidNode);
  EXPECT_EQ(rig.dir->backing_line(1)[0], v);  // dirty victim wrote back
  EXPECT_GE(rig.agent(0).metrics().counter_value("cxl.evict_writebacks"), 1u);
}

TEST(CxlProtocolTest, CleanSharedEvictionIsSilent) {
  CxlAgent::Config small;
  small.cache_lines = 2;
  CxlRig rig(1, small);
  std::array<std::byte, kLineBytes> out{};
  ASSERT_TRUE(rig.agent(0).load_sync(20, 0, out).ok());
  ASSERT_TRUE(rig.agent(0).load_sync(21, 0, out).ok());
  ASSERT_TRUE(rig.agent(0).load_sync(22, 0, out).ok());
  rig.sim.run_until(rig.sim.now() + kMilli);

  EXPECT_LE(rig.agent(0).cached_lines(), 2u);
  EXPECT_EQ(rig.agent(0).state_of(20), LineState::kInvalid);
  // Shared drops ride no fabric transaction (clean data needs no
  // write-back and no permission change at the home).
  EXPECT_EQ(rig.fabric.metrics().counter_value("fabric.cxl_writes"), 0u);
  EXPECT_EQ(rig.dir->sharer_count(20), 0u);
}

TEST(CxlProtocolTest, RegionWriteInvalidatesCachedCopiesAndRoundTrips) {
  CxlRig rig;
  std::array<std::byte, kLineBytes> out{};
  ASSERT_TRUE(rig.agent(1).load_sync(33, 0, out).ok());  // stale copy

  const auto page = pattern(4 * kLineBytes, 3);
  ASSERT_TRUE(rig.agent(0).write_region_sync(32, page).ok());
  EXPECT_EQ(rig.agent(1).state_of(33), LineState::kInvalid);
  for (std::size_t l = 0; l < 4; ++l)
    EXPECT_EQ(rig.dir->backing_line(32 + l)[0], page[l * kLineBytes]);

  std::vector<std::byte> back(4 * kLineBytes);
  ASSERT_TRUE(rig.agent(1).read_region_sync(32, back).ok());
  EXPECT_EQ(back, page);
  EXPECT_EQ(rig.agent(0).metrics().counter_value("cxl.region_writes"), 1u);
  EXPECT_EQ(rig.agent(1).metrics().counter_value("cxl.region_reads"), 1u);
  // Bulk ops bypass the cache: nothing was installed.
  EXPECT_EQ(rig.agent(1).cached_lines(), 0u);
}

TEST(CxlProtocolTest, RegionReadCollectsDirtyLinesFromOwners) {
  CxlRig rig;
  const std::byte v{0x9D};
  ASSERT_TRUE(rig.agent(0).store_sync(40, 0, {&v, 1}).ok());

  std::vector<std::byte> back(4 * kLineBytes);
  ASSERT_TRUE(rig.agent(1).read_region_sync(40, back).ok());
  EXPECT_EQ(back[0], v);  // the dirty owner settled before the bulk read
  EXPECT_EQ(rig.dir->backing_line(40)[0], v);
}

TEST(CxlProtocolTest, OutOfRangeLineFailsCleanly) {
  CxlRig rig;
  std::array<std::byte, kLineBytes> out{};
  const LineId bad = rig.dir->line_count() + 3;
  EXPECT_FALSE(rig.agent(0).load_sync(bad, 0, out).ok());
  EXPECT_FALSE(rig.dir->line_busy(bad));
  EXPECT_EQ(rig.agent(0).state_of(bad), LineState::kInvalid);
}

TEST(CxlProtocolTest, HomeFailureSurfacesErrorAndReleasesTheLine) {
  CxlRig rig;
  rig.fabric.set_node_up(0, false);
  std::array<std::byte, kLineBytes> out{};
  EXPECT_FALSE(rig.agent(0).load_sync(4, 0, out).ok());
  EXPECT_FALSE(rig.dir->line_busy(4));
  const std::byte v{1};
  EXPECT_FALSE(rig.agent(0).store_sync(4, 0, {&v, 1}).ok());
  EXPECT_FALSE(rig.dir->line_busy(4));
}

TEST(CxlProtocolTest, LoadHitCostsExactlyTheHitLatency) {
  CxlRig rig;
  std::array<std::byte, kLineBytes> out{};
  ASSERT_TRUE(rig.agent(0).load_sync(6, 0, out).ok());
  const SimTime before = rig.sim.now();
  ASSERT_TRUE(rig.agent(0).load_sync(6, 0, out).ok());
  EXPECT_EQ(rig.sim.now() - before, rig.agents[0]->config().hit_ns);
}

// --- edge cases: departed/dead holders, teardown, spans ----------------------

TEST(CxlEdgeTest, LineStateNamesAreStable) {
  EXPECT_EQ(to_string(LineState::kInvalid), "invalid");
  EXPECT_EQ(to_string(LineState::kShared), "shared");
  EXPECT_EQ(to_string(LineState::kExclusive), "exclusive");
}

TEST(CxlEdgeTest, SnoopToDepartedAgentDropsTheStaleEntry) {
  CxlRig rig(3);
  const std::byte v{0x3C};
  ASSERT_TRUE(rig.agent(1).store_sync(17, 0, {&v, 1}).ok());
  // The agent departs without releasing its dirty line: the directory keeps
  // a stale owner entry, and the unreleased copy is lost by definition.
  rig.agents[1].reset();
  std::array<std::byte, kLineBytes> out{};
  ASSERT_TRUE(rig.agent(0).load_sync(17, 0, out).ok());
  EXPECT_EQ(rig.dir->owner_of(17), net::kInvalidNode);
  EXPECT_EQ(rig.dir->sharer_count(17), 1u);  // only the new reader
}

TEST(CxlEdgeTest, SnoopToDeadNodeDropsTheHolder) {
  CxlRig rig(3);
  const std::byte v{0x44};
  ASSERT_TRUE(rig.agent(1).store_sync(18, 0, {&v, 1}).ok());
  rig.fabric.set_node_up(rig.agent(1).node(), false);
  // The store must still succeed: the unreachable holder's copy is
  // unrecoverable, the home copy stands, the directory entry is dropped.
  const std::byte w{0x45};
  ASSERT_TRUE(rig.agent(0).store_sync(18, 0, {&w, 1}).ok());
  EXPECT_EQ(rig.dir->owner_of(18), rig.agent(0).node());
}

TEST(CxlEdgeTest, RegionOpsRejectOutOfRangeAndEmpty) {
  CxlRig rig;
  const auto page = pattern(2 * kLineBytes, 4);
  EXPECT_FALSE(rig.agent(0).write_region_sync(rig.dir->line_count() - 1,
                                              page).ok());
  std::vector<std::byte> out(kLineBytes);
  EXPECT_FALSE(rig.agent(0).read_region_sync(rig.dir->line_count(), out).ok());
  EXPECT_FALSE(rig.agent(0).write_region_sync(0, {}).ok());
  EXPECT_FALSE(rig.dir->line_busy(0));
}

TEST(CxlEdgeTest, HomeFailureFailsRegionOpsAndReleasesLocks) {
  CxlRig rig;
  const auto page = pattern(2 * kLineBytes, 5);
  std::vector<std::byte> back(2 * kLineBytes);
  rig.fabric.set_node_up(0, false);
  EXPECT_FALSE(rig.agent(0).write_region_sync(8, page).ok());
  EXPECT_FALSE(rig.agent(0).read_region_sync(8, back).ok());
  // The range locks were released on the error path: once the home heals,
  // the same range works first try.
  rig.fabric.set_node_up(0, true);
  ASSERT_TRUE(rig.agent(0).write_region_sync(8, page).ok());
  ASSERT_TRUE(rig.agent(0).read_region_sync(8, back).ok());
  EXPECT_EQ(back, page);
}

TEST(CxlEdgeTest, QueuedSameLineOpsHitAfterTheLockClears) {
  CxlRig rig;
  int done_count = 0;
  std::array<std::byte, kLineBytes> out_a{};
  std::array<std::byte, kLineBytes> out_b{};
  auto count_ok = [&done_count](const Status& s) {
    ASSERT_TRUE(s.ok());
    ++done_count;
  };
  // Both loads issue before the simulator runs: the second queues on the
  // line lock and is served by the re-check hit once the first fills.
  rig.agent(0).load(25, 0, out_a, count_ok);
  rig.agent(0).load(25, 0, out_b, count_ok);
  rig.sim.run_until(rig.sim.now() + kMilli);
  ASSERT_EQ(done_count, 2);
  EXPECT_EQ(rig.agent(0).metrics().counter_value("cxl.fills"), 1u);
  EXPECT_GE(rig.agent(0).metrics().counter_value("cxl.load_hits"), 1u);

  const std::byte v{0x7E};
  rig.agent(0).store(26, 0, {&v, 1}, count_ok);
  rig.agent(0).store(26, 1, {&v, 1}, count_ok);
  rig.sim.run_until(rig.sim.now() + kMilli);
  ASSERT_EQ(done_count, 4);
  EXPECT_GE(rig.agent(0).metrics().counter_value("cxl.store_hits"), 1u);
}

TEST(CxlEdgeTest, TeardownMidOperationReleasesEveryLock) {
  CxlRig rig(2);
  // Agent 1 holds line 0 busy with an in-flight store; agent 0 queues a
  // region op behind it, then tears down before the lock is granted.
  const std::byte v{0x51};
  bool store_done = false;
  rig.agent(1).store(0, 0, {&v, 1},
                     [&store_done](const Status&) { store_done = true; });
  const auto page = pattern(2 * kLineBytes, 6);
  rig.agent(0).write_region(0, page, [](const Status&) {
    FAIL() << "completion must not fire after teardown";
  });
  std::array<std::byte, kLineBytes> out{};
  rig.agent(0).load(7, 0, out, [](const Status&) {
    FAIL() << "completion must not fire after teardown";
  });
  rig.agents[0].reset();
  rig.sim.run_until(rig.sim.now() + kMilli);
  EXPECT_TRUE(store_done);
  for (LineId line = 0; line < 8; ++line)
    EXPECT_FALSE(rig.dir->line_busy(line)) << line;
  // The abandoned locks are actually free: a fresh agent can use the range.
  CxlAgent::Config config;
  config.node = 4;
  CxlAgent late(*rig.dir, config);
  EXPECT_TRUE(late.write_region_sync(0, page).ok());
}

// Passive recorder proving the protocol opens/closes spans when traced.
struct SpanRecorder final : sim::SpanSink {
  std::uint64_t begin_span(std::uint64_t, std::uint32_t,
                           std::string_view subsystem,
                           std::string_view name) override {
    names.emplace_back(std::string(subsystem) + "/" + std::string(name));
    return names.size();
  }
  void end_span(std::uint64_t span) override { ended.push_back(span); }
  void event(std::uint64_t, std::uint32_t, std::string_view,
             std::string_view) override {}
  std::vector<std::string> names;
  std::vector<std::uint64_t> ended;
};

TEST(CxlEdgeTest, TracedOperationsOpenAndCloseProtocolSpans) {
  CxlRig rig;
  SpanRecorder spans;
  rig.dir->set_span_sink(&spans);
  EXPECT_EQ(rig.dir->span_sink(), &spans);
  const std::byte v{0x2B};
  ASSERT_TRUE(rig.agent(0).store_sync(30, 0, {&v, 1}, /*trace=*/77).ok());
  std::array<std::byte, kLineBytes> out{};
  ASSERT_TRUE(rig.agent(1).load_sync(30, 0, out, /*trace=*/77).ok());
  const auto page = pattern(kLineBytes, 7);
  ASSERT_TRUE(rig.agent(0).write_region_sync(31, page, /*trace=*/77).ok());
  std::vector<std::byte> back(kLineBytes);
  ASSERT_TRUE(rig.agent(0).read_region_sync(31, back, /*trace=*/77).ok());
  ASSERT_GE(spans.names.size(), 4u);
  EXPECT_EQ(spans.ended.size(), spans.names.size());  // every span closed
  auto has = [&spans](const std::string& name) {
    for (const auto& n : spans.names)
      if (n == name) return true;
    return false;
  };
  EXPECT_TRUE(has("cxl/cxl.upgrade"));
  EXPECT_TRUE(has("cxl/cxl.fill"));
  EXPECT_TRUE(has("cxl/cxl.region_write"));
  EXPECT_TRUE(has("cxl/cxl.region_read"));
}

// --- TSO store-buffer unit tests ---------------------------------------------

CxlAgent::Config tso_config(SimTime drain = 2 * kMicro) {
  CxlAgent::Config config;
  config.store_buffer = true;
  config.drain_ns = drain;
  return config;
}

TEST(CxlStoreBufferTest, ForwardsBufferedStoreToCoveredLoad) {
  CxlRig rig(1, tso_config(/*drain=*/100 * kMicro));
  const std::byte v{0x42};
  ASSERT_TRUE(rig.agent(0).store_sync(5, 4, {&v, 1}).ok());
  EXPECT_EQ(rig.agent(0).store_buffer_depth(), 1u);

  std::byte out{};
  ASSERT_TRUE(rig.agent(0).load_sync(5, 4, {&out, 1}).ok());
  EXPECT_EQ(out, v);  // straight from the buffer, before global visibility
  EXPECT_EQ(rig.agent(0).metrics().counter_value("cxl.sb_forwards"), 1u);
  EXPECT_EQ(rig.dir->owner_of(5), net::kInvalidNode);  // not yet drained
}

TEST(CxlStoreBufferTest, PartialOverlapDrainsBeforeLoading) {
  CxlRig rig(1, tso_config(/*drain=*/100 * kMicro));
  const auto two = pattern(2, 4);
  ASSERT_TRUE(rig.agent(0).store_sync(6, 0, two).ok());

  // Load [1, 3) overlaps the buffered [0, 2) but is not covered by it:
  // the buffer must drain first, then the load sees store byte + memory.
  std::array<std::byte, 2> out{};
  ASSERT_TRUE(rig.agent(0).load_sync(6, 1, out).ok());
  EXPECT_EQ(out[0], two[1]);
  EXPECT_EQ(out[1], std::byte{0});
  EXPECT_EQ(rig.agent(0).store_buffer_depth(), 0u);
  EXPECT_EQ(rig.agent(0).metrics().counter_value("cxl.sb_forwards"), 0u);
}

TEST(CxlStoreBufferTest, FenceDrainsFifoAndPublishes) {
  CxlRig rig(2, tso_config(/*drain=*/100 * kMicro));
  const std::byte a{1}, b{2};
  ASSERT_TRUE(rig.agent(0).store_sync(7, 0, {&a, 1}).ok());
  ASSERT_TRUE(rig.agent(0).store_sync(8, 0, {&b, 1}).ok());
  EXPECT_EQ(rig.agent(0).store_buffer_depth(), 2u);

  ASSERT_TRUE(rig.agent(0).fence_sync().ok());
  EXPECT_EQ(rig.agent(0).store_buffer_depth(), 0u);
  EXPECT_EQ(rig.dir->owner_of(7), rig.agent(0).node());
  EXPECT_EQ(rig.dir->owner_of(8), rig.agent(0).node());

  std::byte out{};
  ASSERT_TRUE(rig.agent(1).load_sync(7, 0, {&out, 1}).ok());
  EXPECT_EQ(out, a);
  ASSERT_TRUE(rig.agent(1).load_sync(8, 0, {&out, 1}).ok());
  EXPECT_EQ(out, b);
  EXPECT_EQ(rig.agent(0).metrics().counter_value("cxl.sb_drains"), 2u);
}

// --- litmus battery ----------------------------------------------------------
//
// Two shared variables x, y live at lines 0 and 1 (byte 0). Threads are
// agents on distinct nodes. Outcomes are the final register vectors,
// serialized "r0,r1,..." for set comparison.

constexpr LineId kX = 0;
constexpr LineId kY = 1;

struct LitmusOp {
  bool is_store;
  LineId line;
  int value;  // stores
  int reg;    // loads
};

LitmusOp St(LineId line, int value) { return {true, line, value, -1}; }
LitmusOp Ld(LineId line, int reg) { return {false, line, 0, reg}; }

using LitmusProgram = std::vector<std::vector<LitmusOp>>;

LitmusProgram sb_shape() {
  return {{St(kX, 1), Ld(kY, 0)}, {St(kY, 1), Ld(kX, 1)}};
}
LitmusProgram lb_shape() {
  return {{Ld(kX, 0), St(kY, 1)}, {Ld(kY, 1), St(kX, 1)}};
}
LitmusProgram mp_shape() {
  return {{St(kX, 1), St(kY, 1)}, {Ld(kY, 0), Ld(kX, 1)}};
}
LitmusProgram iriw_shape() {
  return {{St(kX, 1)},
          {St(kY, 1)},
          {Ld(kX, 0), Ld(kY, 1)},
          {Ld(kY, 2), Ld(kX, 3)}};
}

std::string outcome_key(const std::vector<int>& regs) {
  std::string key;
  for (std::size_t i = 0; i < regs.size(); ++i) {
    if (i > 0) key += ',';
    key += std::to_string(regs[i]);
  }
  return key;
}

// Enumerates every merge of the per-thread op sequences (program order
// preserved) and hands each complete interleaving to `visit`.
void enumerate_interleavings(
    const std::vector<std::size_t>& sizes, std::vector<int>& prefix,
    std::vector<std::size_t>& taken,
    const std::function<void(const std::vector<int>&)>& visit) {
  bool complete = true;
  for (std::size_t t = 0; t < sizes.size(); ++t) {
    if (taken[t] < sizes[t]) {
      complete = false;
      ++taken[t];
      prefix.push_back(static_cast<int>(t));
      enumerate_interleavings(sizes, prefix, taken, visit);
      prefix.pop_back();
      --taken[t];
    }
  }
  if (complete) visit(prefix);
}

struct ScResult {
  std::set<std::string> outcomes;
  std::size_t interleavings = 0;
  std::string log;  // one outcome line per interleaving, enumeration order
};

// SC mode: every operation completes (is globally visible) before the next
// one issues, so running each interleaving's ops sequentially through the
// protocol is exact. Each run is checked against a sequential-memory
// oracle; the caller pins the aggregate outcome set.
ScResult run_sc_litmus(const LitmusProgram& threads, int reg_count) {
  ScResult result;
  std::vector<std::size_t> sizes;
  sizes.reserve(threads.size());
  for (const auto& ops : threads) sizes.push_back(ops.size());
  std::vector<int> prefix;
  std::vector<std::size_t> taken(threads.size(), 0);

  enumerate_interleavings(
      sizes, prefix, taken, [&](const std::vector<int>& order) {
        ++result.interleavings;
        CxlRig rig(threads.size());
        std::vector<int> regs(reg_count, 0);
        std::vector<int> oracle_regs(reg_count, 0);
        std::map<LineId, int> oracle_memory;
        std::vector<std::size_t> next(threads.size(), 0);
        for (int t : order) {
          const LitmusOp& op = threads[t][next[t]++];
          CxlAgent& agent = rig.agent(t);
          if (op.is_store) {
            const std::byte v{static_cast<unsigned char>(op.value)};
            EXPECT_TRUE(agent.store_sync(op.line, 0, {&v, 1}).ok());
            oracle_memory[op.line] = op.value;
          } else {
            std::byte out{};
            EXPECT_TRUE(agent.load_sync(op.line, 0, {&out, 1}).ok());
            regs[op.reg] = std::to_integer<int>(out);
            auto it = oracle_memory.find(op.line);
            oracle_regs[op.reg] = it == oracle_memory.end() ? 0 : it->second;
          }
        }
        EXPECT_EQ(regs, oracle_regs)
            << "protocol diverged from the sequential oracle";
        const std::string key = outcome_key(regs);
        result.outcomes.insert(key);
        result.log += key + "\n";
      });
  return result;
}

TEST(CxlLitmusScTest, StoreBufferingShapeForbidsZeroZero) {
  const ScResult r = run_sc_litmus(sb_shape(), 2);
  EXPECT_EQ(r.interleavings, 6u);
  EXPECT_EQ(r.outcomes, (std::set<std::string>{"0,1", "1,0", "1,1"}));
}

TEST(CxlLitmusScTest, LoadBufferingShapeForbidsOneOne) {
  const ScResult r = run_sc_litmus(lb_shape(), 2);
  EXPECT_EQ(r.interleavings, 6u);
  EXPECT_EQ(r.outcomes, (std::set<std::string>{"0,0", "0,1", "1,0"}));
}

TEST(CxlLitmusScTest, MessagePassingShapeForbidsStaleData) {
  const ScResult r = run_sc_litmus(mp_shape(), 2);
  EXPECT_EQ(r.interleavings, 6u);
  EXPECT_EQ(r.outcomes, (std::set<std::string>{"0,0", "0,1", "1,1"}));
}

TEST(CxlLitmusScTest, IriwReadersNeverDisagreeOnStoreOrder) {
  const ScResult r = run_sc_litmus(iriw_shape(), 4);
  EXPECT_EQ(r.interleavings, 180u);
  // The disagreeing-readers outcome — T2 concludes x-then-y (r0=1, r1=0)
  // while T3 concludes y-then-x (r2=1, r3=0) — is the one IRIW shape no
  // sequentialization admits. Every other register vector is SC-reachable.
  EXPECT_EQ(r.outcomes.count("1,0,1,0"), 0u);
  EXPECT_EQ(r.outcomes.size(), 15u);
  EXPECT_EQ(r.outcomes.count("0,0,0,0"), 1u);
  EXPECT_EQ(r.outcomes.count("1,1,1,1"), 1u);
}

// TSO mode: threads run concurrently as asynchronous op chains; stores
// retire into the per-agent buffer and drain in the background. A grid of
// per-thread start delays and drain latencies steers the race
// deterministically into each architecturally-allowed outcome.

struct TsoState {
  std::vector<CxlAgent*> agents;
  LitmusProgram threads;
  bool fence_after_store = false;
  std::vector<int> regs;
  std::array<std::array<std::byte, 4>, 4> bufs{};
  std::size_t remaining = 0;
  bool all_done = false;

  static void step(std::shared_ptr<TsoState> st, std::size_t t,
                   std::size_t i) {
    if (i == st->threads[t].size()) {
      if (--st->remaining == 0) st->all_done = true;
      return;
    }
    const LitmusOp& op = st->threads[t][i];
    CxlAgent* agent = st->agents[t];
    std::byte* slot = &st->bufs[t][i];
    if (op.is_store) {
      *slot = static_cast<std::byte>(op.value);
      agent->store(op.line, 0, std::span<const std::byte>(slot, 1),
                   [st, t, i, agent](const Status&) {
                     if (st->fence_after_store) {
                       agent->fence(
                           [st, t, i](const Status&) { step(st, t, i + 1); });
                     } else {
                       step(st, t, i + 1);
                     }
                   });
    } else {
      agent->load(op.line, 0, std::span<std::byte>(slot, 1),
                  [st, t, i, slot](const Status&) {
                    st->regs[st->threads[t][i].reg] =
                        std::to_integer<int>(*slot);
                    step(st, t, i + 1);
                  });
    }
  }
};

std::string run_tso_litmus(const LitmusProgram& threads, int reg_count,
                           SimTime drain, const std::vector<SimTime>& delays,
                           bool fence_after_store = false) {
  CxlRig rig(threads.size(), tso_config(drain));
  auto st = std::make_shared<TsoState>();
  st->threads = threads;
  st->fence_after_store = fence_after_store;
  st->regs.assign(reg_count, 0);
  st->remaining = threads.size();
  for (auto& agent : rig.agents) st->agents.push_back(agent.get());
  for (std::size_t t = 0; t < threads.size(); ++t)
    rig.sim.schedule_at(delays[t],
                        [st, t]() { TsoState::step(st, t, 0); });
  EXPECT_TRUE(rig.sim.run_until_flag(st->all_done, 1 * kSecond));
  return outcome_key(st->regs);
}

const std::vector<SimTime> kDrains = {0, 50 * kMicro};

std::vector<std::vector<SimTime>> two_thread_delays() {
  return {{0, 0}, {0, 12 * kMicro}, {12 * kMicro, 0}};
}
std::vector<std::vector<SimTime>> four_thread_delays() {
  return {{0, 0, 0, 0},
          {0, 12 * kMicro, 3 * kMicro, 9 * kMicro},
          {12 * kMicro, 0, 9 * kMicro, 3 * kMicro}};
}

std::set<std::string> tso_grid(const LitmusProgram& threads, int reg_count,
                               const std::vector<std::vector<SimTime>>& delays,
                               bool fence_after_store = false) {
  std::set<std::string> outcomes;
  for (SimTime drain : kDrains)
    for (const auto& d : delays)
      outcomes.insert(
          run_tso_litmus(threads, reg_count, drain, d, fence_after_store));
  return outcomes;
}

TEST(CxlLitmusTsoTest, StoreBufferingAdmitsTheRelaxedOutcome) {
  const auto outcomes = tso_grid(sb_shape(), 2, two_thread_delays());
  // The TSO-only relaxation: both loads beat both drains.
  EXPECT_EQ(outcomes.count("0,0"), 1u);
  // And the grid still reaches the SC outcomes.
  EXPECT_EQ(outcomes.count("0,1"), 1u);
  EXPECT_EQ(outcomes.count("1,0"), 1u);
}

TEST(CxlLitmusTsoTest, FencesRestoreSequentialConsistencyForSb) {
  const auto outcomes =
      tso_grid(sb_shape(), 2, two_thread_delays(), /*fence=*/true);
  EXPECT_EQ(outcomes.count("0,0"), 0u);  // the relaxation is fenced away
  for (const auto& o : outcomes)
    EXPECT_TRUE(o == "0,1" || o == "1,0" || o == "1,1") << o;
}

TEST(CxlLitmusTsoTest, LoadBufferingStaysSc) {
  const auto outcomes = tso_grid(lb_shape(), 2, two_thread_delays());
  EXPECT_EQ(outcomes.count("1,1"), 0u);
  for (const auto& o : outcomes)
    EXPECT_TRUE(o == "0,0" || o == "0,1" || o == "1,0") << o;
}

TEST(CxlLitmusTsoTest, MessagePassingStaysSc) {
  // The FIFO buffer drains x before y, so a reader that observes y = 1 can
  // never then read x = 0.
  const auto outcomes = tso_grid(mp_shape(), 2, two_thread_delays());
  EXPECT_EQ(outcomes.count("1,0"), 0u);
  for (const auto& o : outcomes)
    EXPECT_TRUE(o == "0,0" || o == "0,1" || o == "1,1") << o;
}

TEST(CxlLitmusTsoTest, IriwReadersStayCoherent) {
  // Store visibility is a single directory-serialized event, so readers on
  // different nodes cannot disagree about the store order even under TSO.
  const auto outcomes = tso_grid(iriw_shape(), 4, four_thread_delays());
  EXPECT_EQ(outcomes.count("1,0,1,0"), 0u);
}

// --- determinism: litmus battery + protocol soak -----------------------------

std::string litmus_battery_log() {
  std::ostringstream log;
  log << "SB-SC\n" << run_sc_litmus(sb_shape(), 2).log;
  log << "LB-SC\n" << run_sc_litmus(lb_shape(), 2).log;
  log << "MP-SC\n" << run_sc_litmus(mp_shape(), 2).log;
  log << "IRIW-SC\n" << run_sc_litmus(iriw_shape(), 4).log;
  const auto grids = two_thread_delays();
  for (SimTime drain : kDrains)
    for (const auto& d : grids) {
      log << "SB-TSO drain=" << drain << " d0=" << d[0] << " d1=" << d[1]
          << " -> " << run_tso_litmus(sb_shape(), 2, drain, d) << "\n";
      log << "MP-TSO drain=" << drain << " d0=" << d[0] << " d1=" << d[1]
          << " -> " << run_tso_litmus(mp_shape(), 2, drain, d) << "\n";
    }
  return log.str();
}

// Seeded protocol soak: three TSO agents hammer 64 lines with a mix of
// loads, stores, fences and region ops, then everything settles through a
// bulk read and the merged metrics + final backing digest are returned.
std::string run_cxl_soak(std::uint64_t seed) {
  CxlAgent::Config config = tso_config();
  config.cache_lines = 16;
  CxlRig rig(3, config);
  obs::MetricsHub hub;
  hub.add("net", &rig.fabric.metrics());
  hub.add("cxl", &rig.dir->metrics());
  for (auto& agent : rig.agents)
    hub.add("node." + std::to_string(agent->node()), &agent->metrics());

  Rng rng(seed);
  for (int i = 0; i < 1500; ++i) {
    CxlAgent& agent = rig.agent(rng.next_below(rig.agents.size()));
    const LineId line = rng.next_below(64);
    const std::uint64_t op = rng.next_below(100);
    if (op < 55) {
      std::array<std::byte, 8> out{};
      EXPECT_TRUE(agent.load_sync(line, 8 * rng.next_below(8), out).ok());
    } else if (op < 88) {
      std::array<std::byte, 8> data{};
      for (auto& b : data) b = static_cast<std::byte>(rng.next_below(256));
      EXPECT_TRUE(agent.store_sync(line, 8 * rng.next_below(8), data).ok());
    } else if (op < 94) {
      EXPECT_TRUE(agent.fence_sync().ok());
    } else {
      const LineId first = 4 * rng.next_below(16);
      std::vector<std::byte> region(4 * kLineBytes);
      if (rng.next_below(2) == 0) {
        for (auto& b : region) b = static_cast<std::byte>(rng.next_below(256));
        EXPECT_TRUE(agent.write_region_sync(first, region).ok());
      } else {
        EXPECT_TRUE(agent.read_region_sync(first, region).ok());
      }
    }
  }
  for (auto& agent : rig.agents) EXPECT_TRUE(agent->fence_sync().ok());
  // Settle every dirty copy back to the home, then digest the backing.
  std::vector<std::byte> all(64 * kLineBytes);
  EXPECT_TRUE(rig.agent(0).read_region_sync(0, all).ok());
  std::ostringstream out;
  out << hub.snapshot_json() << "\nbacking=" << fnv1a(all) << "\n";
  return out.str();
}

TEST(CxlDeterminismTest, SoakIsByteIdenticalAcrossSameSeedRuns) {
  const std::string a = run_cxl_soak(7);
  const std::string b = run_cxl_soak(7);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, run_cxl_soak(8));  // the seed actually steers the run
}

TEST(CxlDeterminismTest, LitmusBatteryIsByteIdenticalAcrossRuns) {
  const std::string a = litmus_battery_log();
  const std::string b = litmus_battery_log();
  EXPECT_EQ(a, b);

  // CI hook (ci.sh --cxl-only): dump battery + soak for the cross-process
  // same-seed diff.
  // dm-lint: allow(det-getenv) — CI artifact path only, never sim state.
  if (const char* path = std::getenv("DM_CXL_SNAPSHOT")) {
    std::ofstream dump(path, std::ios::trunc);
    ASSERT_TRUE(dump.is_open()) << path;
    dump << a << run_cxl_soak(4242);
  }
}

// --- page tier ---------------------------------------------------------------

struct TierRig {
  explicit TierRig(std::size_t pool_pages = 4, std::size_t page_bytes = 512)
      : rig(1) {
    CxlPageTier::Config config;
    config.pool_pages = pool_pages;
    config.page_bytes = page_bytes;
    tier = std::make_unique<CxlPageTier>(rig.agent(0), config);
  }
  CxlRig rig;
  std::unique_ptr<CxlPageTier> tier;
};

TEST(CxlPageTierTest, DemotePromoteRoundTripsBytes) {
  TierRig t;
  const auto page = pattern(512, 21);
  ASSERT_TRUE(t.tier->demote(7, page).ok());
  EXPECT_TRUE(t.tier->contains(7));
  EXPECT_EQ(t.tier->used(), 1u);

  std::vector<std::byte> out(512);
  ASSERT_TRUE(t.tier->promote(7, out).ok());
  EXPECT_EQ(out, page);
  EXPECT_FALSE(t.tier->contains(7));
  EXPECT_EQ(t.tier->used(), 0u);
}

TEST(CxlPageTierTest, PoolEnforcesCapacityAndUniqueness) {
  TierRig t(/*pool_pages=*/2);
  const auto page = pattern(512, 22);
  ASSERT_TRUE(t.tier->demote(1, page).ok());
  ASSERT_TRUE(t.tier->demote(2, page).ok());
  EXPECT_TRUE(t.tier->full());
  EXPECT_EQ(t.tier->demote(3, page).code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(t.tier->demote(1, page).code(), StatusCode::kAlreadyExists);
  std::vector<std::byte> out(512);
  EXPECT_EQ(t.tier->promote(9, out).code(), StatusCode::kNotFound);
}

TEST(CxlPageTierTest, ColdestTracksLineTouches) {
  TierRig t;
  const auto page = pattern(512, 23);
  ASSERT_TRUE(t.tier->demote(1, page).ok());
  ASSERT_TRUE(t.tier->demote(2, page).ok());
  ASSERT_TRUE(t.tier->demote(3, page).ok());
  EXPECT_EQ(t.tier->coldest(), 1u);
  ASSERT_TRUE(t.tier->touch_line(1, 0, /*write=*/false).ok());
  EXPECT_EQ(t.tier->coldest(), 2u);
  EXPECT_EQ(t.tier->touches(1), 1u);
}

TEST(CxlPageTierTest, WriteTouchedPagePromotesIntact) {
  TierRig t;
  const auto page = pattern(512, 24);
  ASSERT_TRUE(t.tier->demote(5, page).ok());
  // Dirty a few lines through the coherent read-modify-write path; the
  // write-backs must not corrupt the page image.
  ASSERT_TRUE(t.tier->touch_line(5, 0, /*write=*/true).ok());
  ASSERT_TRUE(t.tier->touch_line(5, 3, /*write=*/true).ok());
  std::vector<std::byte> out(512);
  ASSERT_TRUE(t.tier->promote(5, out).ok());
  EXPECT_EQ(out, page);
}

// --- swap-manager tiering ----------------------------------------------------
//
// DRAM -> CXL -> RDMA/disk: eviction victims land in the coherent pool,
// sub-page faults run in place over load/store, hot pages promote back to
// DRAM, and pool overflow spills the coldest page down to the backend.

struct SwapTierRig {
  SwapTierRig(std::uint64_t resident_pages, std::size_t pool_pages,
              std::uint64_t promote_threshold)
      : setup(swap::make_system(swap::SystemKind::kFastSwap, resident_pages)) {
    core::DmSystem::Config config;
    config.node_count = 4;
    config.node.shm.arena_bytes = 16 * MiB;
    config.node.recv.arena_bytes = 16 * MiB;
    config.node.disk.capacity_bytes = 128 * MiB;
    config.service = setup.service;
    config.cxl_region_bytes = 4 * MiB;
    config.cxl_home = 1;  // remote to the app node, like the paper's Fig 1
    system = std::make_unique<core::DmSystem>(config);
    system->start();
    client = &system->create_server(0, 64 * MiB, setup.ldmc);

    CxlPageTier::Config tier_config;
    tier_config.pool_pages = pool_pages;
    tier_config.page_bytes = swap::kPageBytes;
    tier = std::make_unique<CxlPageTier>(system->create_cxl_agent(0),
                                         tier_config);
    auto swap_config = setup.swap;
    swap_config.cxl_tier = tier.get();
    swap_config.cxl_promote_threshold = promote_threshold;
    manager = std::make_unique<swap::SwapManager>(
        *client, swap_config, [](std::uint64_t page, std::span<std::byte> out) {
          workloads::fill_page(out, page, 0.3, 11);
        });
  }

  std::uint64_t checksum_of(std::uint64_t page) {
    std::vector<std::byte> bytes(swap::kPageBytes);
    workloads::fill_page(bytes, page, 0.3, 11);
    return fnv1a(bytes);
  }

  swap::SystemSetup setup;
  std::unique_ptr<core::DmSystem> system;
  core::Ldmc* client = nullptr;
  std::unique_ptr<CxlPageTier> tier;
  std::unique_ptr<swap::SwapManager> manager;
};

TEST(CxlSwapTierTest, EvictionVictimsDemoteIntoThePool) {
  SwapTierRig rig(/*resident=*/8, /*pool=*/16, /*threshold=*/100);
  for (std::uint64_t p = 0; p < 24; ++p)
    ASSERT_TRUE(rig.manager->touch(p).ok());
  EXPECT_GT(rig.manager->cxl_pooled(), 0u);
  EXPECT_GT(rig.manager->metrics().counter_value("swap.cxl.demotions"), 0u);

  // A pooled page faults in place: one line transaction, page stays put.
  ASSERT_TRUE(rig.tier->coldest().has_value());
  const std::uint64_t pooled = *rig.tier->coldest();
  ASSERT_TRUE(rig.manager->in_cxl(pooled));
  ASSERT_TRUE(rig.manager->touch(pooled).ok());
  EXPECT_TRUE(rig.manager->in_cxl(pooled));
  EXPECT_FALSE(rig.manager->is_resident(pooled));
  EXPECT_GT(rig.manager->metrics().counter_value("swap.cxl.line_faults"), 0u);

  // Harvest-pressure hook: shed pushes pool pages down to the backend, and
  // they come back intact from there.
  ASSERT_TRUE(rig.manager->shed_cxl(rig.manager->cxl_pooled()).ok());
  EXPECT_EQ(rig.manager->cxl_pooled(), 0u);
  ASSERT_TRUE(rig.manager->touch(pooled).ok());
  auto bytes = rig.manager->resident_bytes(pooled);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(fnv1a(*bytes), rig.checksum_of(pooled));
}

TEST(CxlSwapTierTest, HotPooledPagesPromoteBackToDram) {
  SwapTierRig rig(/*resident=*/8, /*pool=*/16, /*threshold=*/3);
  for (std::uint64_t p = 0; p < 24; ++p)
    ASSERT_TRUE(rig.manager->touch(p).ok());
  ASSERT_TRUE(rig.tier->coldest().has_value());
  const std::uint64_t hot = *rig.tier->coldest();
  ASSERT_TRUE(rig.manager->in_cxl(hot));
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(rig.manager->touch(hot).ok());
  EXPECT_FALSE(rig.manager->in_cxl(hot));
  EXPECT_TRUE(rig.manager->is_resident(hot));
  EXPECT_GE(rig.manager->metrics().counter_value("swap.cxl.promotions"), 1u);
  auto bytes = rig.manager->resident_bytes(hot);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(fnv1a(*bytes), rig.checksum_of(hot));
}

TEST(CxlSwapTierTest, FullPoolSpillsColdestToBackendIntact) {
  SwapTierRig rig(/*resident=*/8, /*pool=*/4, /*threshold=*/1);
  for (std::uint64_t p = 0; p < 32; ++p)
    ASSERT_TRUE(rig.manager->touch(p).ok());
  EXPECT_LE(rig.manager->cxl_pooled(), 4u);
  EXPECT_GT(rig.manager->metrics().counter_value("swap.cxl.spills"), 0u);
  // Every page survives the three-deep tier shuffle.
  for (std::uint64_t p = 0; p < 32; ++p) {
    ASSERT_TRUE(rig.manager->touch(p).ok());
    if (!rig.manager->is_resident(p)) {  // touch may have promoted or faulted
      ASSERT_TRUE(rig.manager->touch(p).ok());
    }
    auto bytes = rig.manager->resident_bytes(p);
    ASSERT_TRUE(bytes.ok()) << "page " << p;
    EXPECT_EQ(fnv1a(*bytes), rig.checksum_of(p)) << "page " << p;
  }
}

TEST(CxlSwapTierTest, FlushAllDrainsThePool) {
  SwapTierRig rig(/*resident=*/8, /*pool=*/16, /*threshold=*/100);
  for (std::uint64_t p = 0; p < 24; ++p)
    ASSERT_TRUE(rig.manager->touch(p).ok());
  ASSERT_GT(rig.manager->cxl_pooled(), 0u);
  ASSERT_TRUE(rig.manager->flush_all().ok());
  EXPECT_EQ(rig.manager->cxl_pooled(), 0u);
  ASSERT_TRUE(rig.manager->touch(3).ok());
  auto bytes = rig.manager->resident_bytes(3);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(fnv1a(*bytes), rig.checksum_of(3));
}

}  // namespace
}  // namespace dm::cxl
