// Tests for the workload layer: content generation, the Table 1 catalog,
// and the trace drivers.
#include <gtest/gtest.h>

#include "common/checksum.h"
#include "common/rng.h"
#include "compress/lz.h"
#include "core/dm_system.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"
#include "workloads/driver.h"
#include "workloads/page_content.h"

namespace dm::workloads {
namespace {

TEST(PageContentTest, DeterministicPerPageAndSeed) {
  std::vector<std::byte> a(4096), b(4096), c(4096), d(4096);
  fill_page(a, 5, 0.3, 1);
  fill_page(b, 5, 0.3, 1);
  fill_page(c, 6, 0.3, 1);
  fill_page(d, 5, 0.3, 2);
  EXPECT_EQ(a, b);
  EXPECT_NE(fnv1a(a), fnv1a(c));
  EXPECT_NE(fnv1a(a), fnv1a(d));
}

TEST(PageContentTest, RandomFractionControlsCompressedSize) {
  std::size_t previous = 0;
  for (double r : {0.1, 0.4, 0.8}) {
    std::vector<std::byte> page(4096);
    std::size_t total = 0;
    for (std::uint64_t id = 0; id < 16; ++id) {
      fill_page(page, id, r, 3);
      total += compress::lz_compress(page).size();
    }
    EXPECT_GT(total, previous);
    previous = total;
  }
}

TEST(AppCatalogTest, TenAppsWithPaperScaleNumbers) {
  auto apps = app_catalog();
  ASSERT_EQ(apps.size(), 10u);
  for (const auto& app : apps) {
    EXPECT_GE(app.working_set_gb, 25.0) << app.name;
    EXPECT_LE(app.working_set_gb, 30.0) << app.name;
    EXPECT_GE(app.input_gb, 12.0) << app.name;
    EXPECT_LE(app.input_gb, 20.0) << app.name;
    EXPECT_GT(app.cpu_ns_per_access, 0) << app.name;
  }
}

TEST(AppCatalogTest, LookupByName) {
  ASSERT_NE(find_app("PageRank"), nullptr);
  EXPECT_EQ(find_app("PageRank")->kind, AppKind::kGraph);
  ASSERT_NE(find_app("Memcached"), nullptr);
  EXPECT_EQ(find_app("Memcached")->kind, AppKind::kKeyValue);
  EXPECT_EQ(find_app("NotAnApp"), nullptr);
}

TEST(AppCatalogTest, EvaluationAppsPresent) {
  // Fig 7 apps + Fig 8 apps + Fig 10 apps must all exist.
  for (const char* name :
       {"PageRank", "LogisticRegression", "TunkRank", "KMeans", "SVM",
        "Redis", "Memcached", "VoltDB", "ConnectedComponents"})
    EXPECT_NE(find_app(name), nullptr) << name;
}

struct DriverRig {
  explicit DriverRig(std::uint64_t resident_pages) {
    core::DmSystem::Config config;
    config.node_count = 4;
    config.node.shm.arena_bytes = 16 * MiB;
    config.node.recv.arena_bytes = 16 * MiB;
    config.node.disk.capacity_bytes = 128 * MiB;
    auto setup = swap::make_system(swap::SystemKind::kFastSwap,
                                   resident_pages);
    config.service = setup.service;
    system = std::make_unique<core::DmSystem>(config);
    system->start();
    auto& client = system->create_server(0, 64 * MiB, setup.ldmc);
    const AppSpec* spec = find_app("LogisticRegression");
    manager = std::make_unique<swap::SwapManager>(client, setup.swap,
                                                  content_for(*spec, 1));
  }
  std::unique_ptr<core::DmSystem> system;
  std::unique_ptr<swap::SwapManager> manager;
};

TEST(DriverTest, FullResidencyRunsWithoutRefaults) {
  DriverRig rig(256);
  AppSpec spec = *find_app("LogisticRegression");
  spec.iterations = 3;
  Rng rng(5);
  auto result = run_iterative(*rig.manager, spec, 128, rng);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.accesses, 3u * 128u);
  // Only cold faults.
  EXPECT_EQ(result.faults, 128u);
  EXPECT_GT(result.elapsed, 0);
}

TEST(DriverTest, MemoryPressureCausesRefaults) {
  DriverRig rig(64);  // 50% of the working set
  AppSpec spec = *find_app("LogisticRegression");
  spec.iterations = 3;
  Rng rng(5);
  auto result = run_iterative(*rig.manager, spec, 128, rng);
  ASSERT_TRUE(result.status.ok());
  EXPECT_GT(result.faults, 128u);  // refaults beyond cold misses
}

TEST(DriverTest, PressureSlowsCompletion) {
  AppSpec spec = *find_app("LogisticRegression");
  spec.iterations = 2;
  auto run = [&](std::uint64_t resident) {
    DriverRig rig(resident);
    Rng rng(5);
    auto result = run_iterative(*rig.manager, spec, 128, rng);
    EXPECT_TRUE(result.status.ok());
    return result.elapsed;
  };
  EXPECT_LT(run(256), run(64));
}

TEST(DriverTest, KvThroughputAndWindows) {
  DriverRig rig(96);
  const AppSpec* spec = find_app("Memcached");
  Rng rng(5);
  std::vector<std::uint64_t> windows;
  auto result = run_kv_timed(
      *rig.manager, *spec, 128, /*duration=*/50 * kMilli,
      /*window=*/10 * kMilli,
      [&](std::size_t index, std::uint64_t ops) {
        ASSERT_EQ(index, windows.size());
        windows.push_back(ops);
      },
      rng);
  ASSERT_TRUE(result.status.ok());
  std::uint64_t total = 0;
  for (auto ops : windows) total += ops;
  EXPECT_EQ(total, result.accesses);
  EXPECT_GE(windows.size(), 5u);
}

TEST(DriverTest, KvOpsComplete) {
  DriverRig rig(128);
  const AppSpec* spec = find_app("Redis");
  Rng rng(5);
  auto result = run_kv(*rig.manager, *spec, 128, 2000, rng);
  ASSERT_TRUE(result.status.ok());
  EXPECT_EQ(result.accesses, 2000u);
  EXPECT_GT(result.ops_per_second(), 0.0);
}

}  // namespace
}  // namespace dm::workloads
