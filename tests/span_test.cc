// Tests for the causal span substrate: SpanTracer parenting and critical-path
// breakdown, Chrome trace export determinism, completed-trace eviction, the
// flight recorder's rings and dump files, and end-to-end span chains through
// a DmSystem swap fault (the chain must cross the faulting and serving node).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "core/ldmc.h"
#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "sim/simulator.h"
#include "sim/span_sink.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"
#include "workloads/driver.h"

namespace dm {
namespace {

// ---- SpanTracer mechanics ---------------------------------------------------

TEST(SpanTracer, ParentingFollowsNesting) {
  sim::Simulator sim;
  obs::SpanTracer tracer(sim);
  const std::uint64_t trace = 7;
  const std::uint64_t root = tracer.begin_span(trace, 0, "swap", "swap.fault");
  const std::uint64_t child = tracer.begin_span(trace, 0, "net", "rpc.get");
  tracer.end_span(child);
  tracer.end_span(root);

  const auto* spans = tracer.spans(trace);
  ASSERT_NE(spans, nullptr);
  ASSERT_EQ(spans->size(), 2u);
  EXPECT_EQ((*spans)[0].parent, 0u);
  EXPECT_EQ((*spans)[0].depth, 0u);
  EXPECT_EQ((*spans)[1].parent, root);
  EXPECT_EQ((*spans)[1].depth, 1u);
  EXPECT_EQ(tracer.completed_traces(), std::vector<std::uint64_t>{trace});
}

TEST(SpanTracer, UntracedSpansAreDropped) {
  sim::Simulator sim;
  obs::SpanTracer tracer(sim);
  EXPECT_EQ(tracer.begin_span(0, 0, "swap", "swap.fault"), 0u);
  tracer.end_span(0);  // must be a safe no-op
  EXPECT_EQ(tracer.spans_recorded(), 0u);
  EXPECT_EQ(tracer.spans_dropped(), 1u);
  EXPECT_TRUE(tracer.completed_traces().empty());
}

TEST(SpanTracer, BreakdownAttributesEveryInstantExactlyOnce) {
  sim::Simulator sim;
  obs::SpanTracer tracer(sim);
  const std::uint64_t trace = 9;
  std::uint64_t root = 0, child = 0;
  // Root [0, 400); child [100, 300) on another subsystem. Self times:
  // swap = 400 - 200 = 200, net = 200.
  sim.schedule_after(0, [&] {
    // dm-lint: allow(span-unclosed) — closed by a later scheduled event.
    root = tracer.begin_span(trace, 0, "swap", "swap.fault");
  });
  sim.schedule_after(100, [&] {
    // dm-lint: allow(span-unclosed) — closed by a later scheduled event.
    child = tracer.begin_span(trace, 0, "net", "rpc.get");
  });
  sim.schedule_after(300, [&] { tracer.end_span(child); });
  sim.schedule_after(400, [&] { tracer.end_span(root); });
  sim.run_until(kMilli);

  const obs::SpanTracer::Breakdown b = tracer.breakdown(trace);
  EXPECT_EQ(b.total, 400);
  EXPECT_EQ(b.by_subsystem.at("swap"), 200);
  EXPECT_EQ(b.by_subsystem.at("net"), 200);
  SimTime sum = 0;
  for (const auto& [subsystem, ns] : b.by_subsystem) sum += ns;
  EXPECT_EQ(sum, b.total);
  EXPECT_EQ(b.span_counts.at("swap.swap.fault"), 1u);
  EXPECT_EQ(b.span_counts.at("net.rpc.get"), 1u);
}

TEST(SpanTracer, CompletedTraceEvictionIsFifoAndCounted) {
  sim::Simulator sim;
  obs::SpanTracer::Config config;
  config.max_traces = 2;
  obs::SpanTracer tracer(sim, config);
  for (std::uint64_t trace = 1; trace <= 3; ++trace) {
    const std::uint64_t span = tracer.begin_span(trace, 0, "swap", "x");
    tracer.end_span(span);
  }
  EXPECT_EQ(tracer.traces_evicted(), 1u);
  const auto completed = tracer.completed_traces();
  EXPECT_EQ(completed, (std::vector<std::uint64_t>{2, 3}));
  EXPECT_EQ(tracer.spans(1), nullptr);  // oldest trace evicted
}

TEST(SpanTracer, ChromeTraceJsonIsDeterministic) {
  auto build = [] {
    sim::Simulator sim;
    obs::SpanTracer tracer(sim);
    std::uint64_t a = 0, b = 0;
    // dm-lint: allow(span-unclosed) — closed by later scheduled events.
    sim.schedule_after(10, [&] { a = tracer.begin_span(5, 1, "swap", "swap.fault"); });
    // dm-lint: allow(span-unclosed) — closed by later scheduled events.
    sim.schedule_after(20, [&] { b = tracer.begin_span(5, 2, "remote", "rpc.get"); });
    sim.schedule_after(30, [&] { tracer.end_span(b); });
    sim.schedule_after(40, [&] { tracer.end_span(a); });
    sim.run_until(kMilli);
    return tracer.chrome_trace_json();
  };
  const std::string first = build();
  EXPECT_EQ(first, build());
  EXPECT_NE(first.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(first.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(first.find("swap.fault"), std::string::npos);
  EXPECT_NE(first.find("\"pid\": 1"), std::string::npos);  // pid = node id
  EXPECT_NE(first.find("\"pid\": 2"), std::string::npos);
}

TEST(SpanTracer, DrainCompletedFeedsProfilerOnce) {
  sim::Simulator sim;
  obs::SpanTracer tracer(sim);
  sim.schedule_after(0, [&] {
    const std::uint64_t span = tracer.begin_span(3, 0, "swap", "swap.fault");
    sim.schedule_after(250, [&tracer, span] { tracer.end_span(span); });
  });
  sim.run_until(kMilli);

  obs::Profiler profiler(sim);
  EXPECT_EQ(profiler.ingest_all(tracer), 1u);
  EXPECT_EQ(profiler.ingest_all(tracer), 0u);  // drained
  ASSERT_EQ(profiler.roots().count("swap.fault"), 1u);
  EXPECT_EQ(profiler.roots().at("swap.fault").count, 1u);
  EXPECT_EQ(profiler.roots().at("swap.fault").total_ns, 250);
  EXPECT_EQ(profiler.by_subsystem().at("swap"), 250);
}

// ---- FlightRecorder ---------------------------------------------------------

TEST(FlightRecorder, RingIsBoundedPerNode) {
  sim::Simulator sim;
  obs::FlightRecorder::Config config;
  config.capacity_per_node = 4;
  obs::FlightRecorder recorder(sim, config);
  for (int i = 0; i < 10; ++i)
    recorder.record_event(i, 1, 0, "test", "event " + std::to_string(i));
  EXPECT_EQ(recorder.record_count(0), 4u);
  EXPECT_EQ(recorder.dropped(0), 6u);
  // Oldest-first dump keeps only the newest four records.
  const std::string json = recorder.dump_json(0, "test");
  EXPECT_EQ(json.find("event 5"), std::string::npos);
  EXPECT_NE(json.find("event 6"), std::string::npos);
  EXPECT_NE(json.find("event 9"), std::string::npos);
  EXPECT_NE(json.find("\"reason\": \"test\""), std::string::npos);
}

TEST(FlightRecorder, TracerForwardsClosedSpansPerNode) {
  sim::Simulator sim;
  obs::SpanTracer tracer(sim);
  obs::FlightRecorder recorder(sim);
  tracer.set_flight_recorder(&recorder);

  const std::uint64_t a = tracer.begin_span(11, 0, "swap", "swap.fault");
  const std::uint64_t b = tracer.begin_span(11, 2, "remote", "rpc.get");
  tracer.end_span(b);
  tracer.end_span(a);
  tracer.event(11, 0, "chaos", "crash scheduled");

  EXPECT_EQ(recorder.node_count(), 2u);
  EXPECT_EQ(recorder.record_count(0), 2u);  // span + event on node 0
  EXPECT_EQ(recorder.record_count(2), 1u);
  EXPECT_NE(recorder.dump_json(0, "x").find("swap.fault"), std::string::npos);
  EXPECT_NE(recorder.dump_json(2, "x").find("rpc.get"), std::string::npos);
}

TEST(FlightRecorder, DumpAllWritesOneFilePerNode) {
  sim::Simulator sim;
  obs::FlightRecorder recorder(sim);
  recorder.record_event(10, 1, 0, "test", "a");
  recorder.record_event(20, 1, 3, "test", "b");

  const std::string dir = testing::TempDir() + "flight_dump_test";
  ASSERT_EQ(std::system(("mkdir -p " + dir).c_str()), 0);
  EXPECT_EQ(recorder.dump_all(dir, "unit-test"), 2u);
  for (const int node : {0, 3}) {
    std::ifstream in(dir + "/flight_" + std::to_string(node) + ".json");
    ASSERT_TRUE(in.good()) << "missing flight_" << node << ".json";
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("\"reason\": \"unit-test\""),
              std::string::npos);
  }
}

// ---- end-to-end: spans across a real swap fault -----------------------------

TEST(SpanIntegration, SwapFaultTraceCrossesNodes) {
  auto setup = swap::make_system(swap::SystemKind::kFastSwap, 8);
  setup.ldmc.shm_fraction = 0.0;  // place every page remotely: spans must
                                  // cross the wire for this test to mean much
  core::DmSystem::Config config;
  config.node_count = 2;
  config.node.shm.arena_bytes = 4 * MiB;
  config.node.recv.arena_bytes = 8 * MiB;
  config.service = setup.service;
  config.seed = 99;
  core::DmSystem system(config);

  obs::SpanTracer tracer(system.simulator());
  system.set_span_sink(&tracer);
  system.start();

  auto& client = system.create_server(0, 4 * MiB, setup.ldmc);
  workloads::AppSpec app = *workloads::find_app("LogisticRegression");
  swap::SwapManager manager(client, setup.swap,
                            workloads::content_for(app, 99));
  manager.set_span_sink(&tracer);

  // Two passes over more pages than fit residently: the second pass faults
  // pages back in from the remote backend over RPC.
  for (int pass = 0; pass < 2; ++pass)
    for (std::uint64_t p = 0; p < 48; ++p) ASSERT_TRUE(manager.touch(p).ok());
  system.run_for(100 * kMilli);

  // At least one completed fault trace exists whose span chain includes the
  // swap root on the faulting node and some remote-side span on the server.
  bool cross_node_fault = false;
  for (const std::uint64_t trace : tracer.completed_traces()) {
    const auto* spans = tracer.spans(trace);
    if (spans == nullptr || spans->empty()) continue;
    if ((*spans)[0].name != "swap.fault") continue;
    bool remote_side = false;
    for (const auto& span : *spans)
      if (span.node != (*spans)[0].node) remote_side = true;
    if (remote_side) cross_node_fault = true;
  }
  EXPECT_TRUE(cross_node_fault)
      << "no fault trace crossed nodes; completed="
      << tracer.completed_traces().size();

  // The critical-path invariant holds for every completed trace.
  for (const std::uint64_t trace : tracer.completed_traces()) {
    const obs::SpanTracer::Breakdown b = tracer.breakdown(trace);
    SimTime sum = 0;
    for (const auto& [subsystem, ns] : b.by_subsystem) sum += ns;
    EXPECT_EQ(sum, b.total) << "trace " << trace;
  }
}

TEST(SpanIntegration, AttachedSinkDoesNotPerturbEventOrder) {
  auto run = [](bool traced) {
    core::DmSystem::Config config;
    config.node_count = 2;
    config.node.shm.arena_bytes = 4 * MiB;
    config.node.recv.arena_bytes = 8 * MiB;
    config.seed = 41;
    core::DmSystem system(config);
    obs::SpanTracer tracer(system.simulator());
    if (traced) system.set_span_sink(&tracer);
    system.start();
    auto& client = system.create_server(0, 2 * MiB);
    std::vector<std::byte> page(4096, std::byte{0x5a});
    for (mem::EntryId id = 0; id < 32; ++id)
      EXPECT_TRUE(client.put_sync(id, page).ok());
    system.run_for(200 * kMilli);
    return system.hub().snapshot_json();
  };
  // Span recording is passive: metrics snapshots must be byte-identical
  // with and without the sink attached.
  EXPECT_EQ(run(false), run(true));
}

}  // namespace
}  // namespace dm
