// Adversarial/fuzz tests: torn control-plane messages, garbage RPC frames,
// random fault storms, and random operation sequences checked against
// reference models. Everything is seeded and deterministic.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "core/node_service.h"
#include "core/repair_service.h"
#include "mem/memory_map.h"
#include "net/connection_manager.h"
#include "net/fabric.h"
#include "net/rpc.h"
#include "net/wire.h"
#include "sim/failure_injector.h"
#include "sim/simulator.h"
#include "workloads/page_content.h"

namespace dm::net {
namespace {

class FuzzFixture : public ::testing::Test {
 protected:
  FuzzFixture() : fabric_(sim_), cm_(fabric_), ep0_(sim_, 0), ep1_(sim_, 1) {
    fabric_.add_node(0);
    fabric_.add_node(1);
    cm_.register_endpoint(&ep0_);
    cm_.register_endpoint(&ep1_);
    EXPECT_TRUE(cm_.ensure_control_channel(0, 1).ok());
  }

  sim::Simulator sim_;
  Fabric fabric_;
  ConnectionManager cm_;
  RpcEndpoint ep0_, ep1_;
};

// Deliver random garbage frames straight into an endpoint's receive path:
// must never crash, and must never fabricate a successful reply.
TEST_F(FuzzFixture, GarbageFramesAreIgnoredSafely) {
  auto qp = cm_.ensure_data_channel(0, 1);
  ASSERT_TRUE(qp.ok());
  // Route the raw frames into ep1's RPC dispatcher (as if a buggy or
  // malicious peer wrote junk on the control channel).
  ep1_.attach_channel(fabric_.peer_of(*qp));
  Rng rng(1234);
  int spurious_replies = 0;
  ep0_.handle(1, [&](NodeId, WireReader&) -> StatusOr<std::vector<std::byte>> {
    return std::vector<std::byte>{};
  });
  for (int i = 0; i < 2000; ++i) {
    std::vector<std::byte> frame(rng.next_below(64));
    for (auto& b : frame) b = static_cast<std::byte>(rng.next_u64() & 0xff);
    // Inject via a raw QP send into ep1's dispatcher.
    bool sent = false;
    ASSERT_TRUE((*qp)->post_send(frame, [&](const Completion&) {
      sent = true;
    }).ok());
    ASSERT_TRUE(sim_.run_until_flag(sent));
  }
  sim_.run_until(sim_.now() + kSecond);
  EXPECT_EQ(spurious_replies, 0);
  EXPECT_EQ(ep0_.inflight(), 0u);
  EXPECT_EQ(ep1_.inflight(), 0u);
}

// Truncated *valid-looking* request frames (kind/callid/method but cut
// payloads): server must drop them; the client's call times out cleanly.
TEST_F(FuzzFixture, TruncatedRequestsTimeOutCleanly) {
  ep1_.handle(7, [](NodeId, WireReader& r) -> StatusOr<std::vector<std::byte>> {
    (void)r.u64();
    DM_RETURN_IF_ERROR(r.status());
    return std::vector<std::byte>{};
  });
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    // A legitimate call with randomly truncated payload bytes still settles
    // (ok or error), exactly once.
    WireWriter w;
    w.put_u64(rng.next_u64());
    auto payload = std::move(w).take();
    payload.resize(rng.next_below(payload.size() + 1));
    int settled = 0;
    ep0_.call(1, 7, payload, 10 * kMilli,
              [&](StatusOr<std::vector<std::byte>>) { ++settled; });
    sim_.run_until(sim_.now() + 20 * kMilli);
    ASSERT_EQ(settled, 1) << "call " << i;
  }
  EXPECT_EQ(ep0_.inflight(), 0u);
}

// Every RPC issued during a random crash/recover storm settles exactly once.
TEST_F(FuzzFixture, CallsAlwaysSettleUnderFaultStorm) {
  ep1_.handle(3, [](NodeId, WireReader&) -> StatusOr<std::vector<std::byte>> {
    return std::vector<std::byte>{};
  });
  Rng rng(42);
  sim::FailureInjector inject(sim_);
  // Node 1 flaps every ~5 ms over a 500 ms window.
  bool up = true;
  inject.poisson(rng, 0, 500 * kMilli, 5 * kMilli, [&]() {
    up = !up;
    fabric_.set_node_up(1, up);
  });

  int issued = 0;
  int settled = 0;
  for (SimTime t = 0; t < 500 * kMilli; t += kMilli) {
    sim_.schedule_at(t, [&]() {
      ++issued;
      ep0_.call(1, 3, {}, 8 * kMilli,
                [&](StatusOr<std::vector<std::byte>>) { ++settled; });
    });
  }
  sim_.run_until(2 * kSecond);
  fabric_.set_node_up(1, true);
  sim_.run_until(sim_.now() + kSecond);
  EXPECT_EQ(issued, 500);
  EXPECT_EQ(settled, issued);  // exactly-once settlement
  EXPECT_EQ(ep0_.inflight(), 0u);
}

// One-sided ops during flapping: each posted op completes exactly once and
// successful writes always leave the exact payload in the region.
TEST_F(FuzzFixture, OneSidedOpsCompleteExactlyOnceUnderFaults) {
  std::vector<std::byte> region(64 * KiB);
  auto rkey = fabric_.register_memory(1, region);
  ASSERT_TRUE(rkey.ok());
  Rng rng(7);

  int outstanding = 0;
  int completions = 0;
  int successes = 0;
  std::map<std::uint64_t, std::vector<std::byte>> expected;

  QueuePair* qp = nullptr;
  for (int i = 0; i < 400; ++i) {
    if (qp == nullptr || qp->in_error()) {
      fabric_.set_node_up(1, true);
      auto fresh = cm_.ensure_data_channel(0, 1);
      ASSERT_TRUE(fresh.ok());
      qp = *fresh;
    }
    const std::uint64_t offset = rng.next_below(15) * 4096;
    std::vector<std::byte> payload(4096);
    for (auto& b : payload) b = static_cast<std::byte>(rng.next_u64() & 0xff);
    ++outstanding;
    auto copy = payload;
    ASSERT_TRUE(qp->post_write(
                       *rkey, offset, payload,
                       [&, offset, copy](const Completion& c) {
                         ++completions;
                         if (c.status.ok()) {
                           ++successes;
                           expected[offset] = copy;
                         }
                       })
                    .ok());
    if (rng.bernoulli(0.1)) fabric_.set_node_up(1, false);
    sim_.run_until(sim_.now() + 100 * kMicro);
  }
  fabric_.set_node_up(1, true);
  sim_.run_until(sim_.now() + kSecond);
  EXPECT_EQ(completions, outstanding);
  EXPECT_GT(successes, 0);
  // Note: with concurrent writes to the same offset the last *successful*
  // completion wins; our sequential post/drain loop guarantees ordering.
  for (const auto& [offset, bytes] : expected) {
    EXPECT_TRUE(std::equal(bytes.begin(), bytes.end(),
                           region.begin() + static_cast<std::ptrdiff_t>(offset)))
        << "offset " << offset;
  }
}

}  // namespace
}  // namespace dm::net

// ---- system-level property invariants under random faults -------------------

namespace dm::core {
namespace {

std::vector<std::byte> fuzz_page(std::uint64_t id) {
  std::vector<std::byte> bytes(4096);
  workloads::fill_page(bytes, id, 0.5, 7);
  return bytes;
}

// Random operation sequence against a cluster whose node 2 flaps randomly,
// checked against a shadow model. Property invariants:
//   (1) every acknowledged live key stays readable with correct bytes once
//       the cluster heals;
//   (2) no committed remote location ever holds more replicas than the
//       configured replication factor (repair/top-up must not over-shoot).
TEST(SystemPropertyFuzz, LiveKeysReadableAndReplicasBounded) {
  DmSystem::Config config;
  config.node_count = 4;
  config.node.shm.arena_bytes = 2 * MiB;
  config.node.recv.arena_bytes = 8 * MiB;
  config.node.disk.capacity_bytes = 64 * MiB;
  config.service.rdmc.replication = 2;
  config.service.rdmc.min_replicas = 1;
  config.rpc_retry.max_attempts = 2;
  config.repair.enabled = true;
  DmSystem system(config);
  system.start();
  LdmcOptions options;
  options.shm_fraction = 0.3;
  auto& client = system.create_server(0, 64 * MiB, options);

  // Flap only node 2: nodes 1 and 3 stay up, so with the min-replicas floor
  // of 1 every remote entry keeps at least one live copy.
  Rng flap_rng(9001);
  bool node2_up = true;
  system.failures().poisson(flap_rng, 0, 400 * kMilli, 40 * kMilli, [&]() {
    node2_up = !node2_up;
    if (node2_up)
      system.recover_node(2);
    else
      system.crash_node(2);
  });

  Rng op_rng(4242);
  std::map<mem::EntryId, std::uint64_t> shadow;
  mem::EntryId next_key = 1;
  const std::size_t replication = config.service.rdmc.replication;
  for (int round = 0; round < 40; ++round) {
    const std::uint64_t dice = op_rng.next_below(10);
    if (dice < 6 || shadow.empty()) {
      const mem::EntryId key = next_key++;
      if (client.put_sync(key, fuzz_page(key)).ok()) shadow[key] = key;
    } else if (dice < 8) {
      auto it = shadow.begin();
      std::advance(it, op_rng.next_below(shadow.size()));
      std::vector<std::byte> out(4096);
      (void)client.get_sync(it->first, out);  // transient failures allowed
    } else {
      // Removes are only safe against reachable tiers mid-storm (freeing a
      // remote replica on a down host is not atomic); local tiers always are.
      auto it = shadow.begin();
      std::advance(it, op_rng.next_below(shadow.size()));
      auto loc = client.map().lookup(it->first);
      if (loc.ok() && loc->tier != mem::Tier::kRemote &&
          client.remove_sync(it->first).ok())
        shadow.erase(it);
    }
    // Invariant (2) holds at every step, not just at the end.
    client.map().for_each([&](mem::EntryId, const mem::EntryLocation& loc) {
      EXPECT_LE(loc.replicas.size(), replication);
    });
    system.run_for(10 * kMilli);
  }

  // Heal and converge: membership re-detects node 2, repair scans restore
  // placement.
  if (!node2_up) system.recover_node(2);
  system.run_for(15 * kSecond);
  for (int round = 0; round < 4; ++round) {
    bool scanned = false;
    system.repair(0).scan_tick([&]() { scanned = true; });
    ASSERT_TRUE(system.simulator().run_until_flag(scanned));
    system.run_for(500 * kMilli);
  }

  ASSERT_GT(shadow.size(), 10u);
  for (const auto& [key, content] : shadow) {
    std::vector<std::byte> out(4096);
    ASSERT_TRUE(client.get_sync(key, out).ok()) << "key " << key;
    EXPECT_EQ(out, fuzz_page(content)) << "key " << key;
  }
  client.map().for_each([&](mem::EntryId, const mem::EntryLocation& loc) {
    EXPECT_LE(loc.replicas.size(), replication);
  });
}


// Seeded EC fuzz: the same adversarial shape as the replication property
// fuzz, but every remote put is a (k=2, r=1) stripe and node 2 flaps under
// a Poisson schedule. Invariants:
//   (1) no committed stripe ever exceeds k+r shards, and shard indices
//       within a stripe are always unique;
//   (2) once the cluster heals, every acknowledged key reads back
//       byte-exact (through reconstruction where a shard is still absent).
TEST(SystemPropertyFuzz, EcStripesBoundedAndKeysReadable) {
  constexpr std::size_t kEcK = 2;
  constexpr std::size_t kEcR = 1;
  DmSystem::Config config;
  config.node_count = 5;
  config.node.shm.arena_bytes = 2 * MiB;
  config.node.recv.arena_bytes = 8 * MiB;
  config.node.disk.capacity_bytes = 64 * MiB;
  config.service.rdmc.ec_k = kEcK;
  config.service.rdmc.ec_r = kEcR;
  config.service.rdmc.min_shards = kEcK;
  config.rpc_retry.max_attempts = 2;
  config.repair.enabled = true;
  DmSystem system(config);
  system.start();
  LdmcOptions options;
  options.shm_fraction = 0.3;
  auto& client = system.create_server(0, 64 * MiB, options);

  // Flap only node 2: the other hosts stay up, so every stripe keeps at
  // least k live shards and remains readable throughout.
  Rng flap_rng(31337);
  bool node2_up = true;
  system.failures().poisson(flap_rng, 0, 400 * kMilli, 40 * kMilli, [&]() {
    node2_up = !node2_up;
    if (node2_up)
      system.recover_node(2);
    else
      system.crash_node(2);
  });

  Rng op_rng(0xEC);
  std::map<mem::EntryId, std::uint64_t> shadow;
  mem::EntryId next_key = 1;
  for (int round = 0; round < 40; ++round) {
    const std::uint64_t dice = op_rng.next_below(10);
    if (dice < 6 || shadow.empty()) {
      const mem::EntryId key = next_key++;
      if (client.put_sync(key, fuzz_page(key)).ok()) shadow[key] = key;
    } else if (dice < 8) {
      auto it = shadow.begin();
      std::advance(it, op_rng.next_below(shadow.size()));
      std::vector<std::byte> out(4096);
      (void)client.get_sync(it->first, out);  // transient failures allowed
    } else {
      auto it = shadow.begin();
      std::advance(it, op_rng.next_below(shadow.size()));
      auto loc = client.map().lookup(it->first);
      if (loc.ok() && loc->tier != mem::Tier::kRemote &&
          client.remove_sync(it->first).ok())
        shadow.erase(it);
    }
    // Invariant (1) holds at every step, not just at the end.
    client.map().for_each([&](mem::EntryId, const mem::EntryLocation& loc) {
      if (loc.tier != mem::Tier::kRemote || loc.ec_k == 0) return;
      EXPECT_LE(loc.replicas.size(),
                static_cast<std::size_t>(loc.ec_k) + loc.ec_r);
      std::set<std::uint32_t> shards;
      for (const auto& replica : loc.replicas) shards.insert(replica.shard);
      EXPECT_EQ(shards.size(), loc.replicas.size());
    });
    system.run_for(10 * kMilli);
  }

  if (!node2_up) system.recover_node(2);
  system.run_for(15 * kSecond);
  for (int round = 0; round < 4; ++round) {
    bool scanned = false;
    system.repair(0).scan_tick([&]() { scanned = true; });
    ASSERT_TRUE(system.simulator().run_until_flag(scanned));
    system.run_for(500 * kMilli);
  }

  ASSERT_GT(shadow.size(), 10u);
  for (const auto& [key, content] : shadow) {
    std::vector<std::byte> out(4096);
    ASSERT_TRUE(client.get_sync(key, out).ok()) << "key " << key;
    EXPECT_EQ(out, fuzz_page(content)) << "key " << key;
  }
}

}  // namespace
}  // namespace dm::core
