// Tests for the swap layer: resident-set management, batching, PBS,
// compression integration, baseline behaviours, and page integrity.
#include <gtest/gtest.h>

#include "common/checksum.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "core/ldmc.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "swap/zswap_cache.h"
#include "workloads/page_content.h"

namespace dm::swap {
namespace {

struct Rig {
  explicit Rig(SystemSetup system_setup, std::size_t nodes = 4,
               double content_random = 0.3)
      : setup(std::move(system_setup)) {
    core::DmSystem::Config config;
    config.node_count = nodes;
    config.node.shm.arena_bytes = 16 * MiB;
    config.node.recv.arena_bytes = 16 * MiB;
    config.node.disk.capacity_bytes = 128 * MiB;
    config.service = this->setup.service;
    system = std::make_unique<core::DmSystem>(config);
    system->start();
    client = &system->create_server(0, 64 * MiB, this->setup.ldmc);
    const double r = content_random;
    manager = std::make_unique<SwapManager>(
        *client, this->setup.swap,
        [r](std::uint64_t page, std::span<std::byte> out) {
          workloads::fill_page(out, page, r, 11);
        });
  }

  SystemSetup setup;
  std::unique_ptr<core::DmSystem> system;
  core::Ldmc* client = nullptr;
  std::unique_ptr<SwapManager> manager;
};

std::uint64_t expected_checksum(std::uint64_t page, double r = 0.3) {
  std::vector<std::byte> bytes(kPageBytes);
  workloads::fill_page(bytes, page, r, 11);
  return fnv1a(bytes);
}

TEST(SwapManagerTest, ResidentHitsDoNotFault) {
  Rig rig(make_system(SystemKind::kFastSwap, 64));
  for (std::uint64_t p = 0; p < 32; ++p)
    ASSERT_TRUE(rig.manager->touch(p).ok());
  const std::uint64_t cold = rig.manager->faults();
  EXPECT_EQ(cold, 32u);
  for (std::uint64_t p = 0; p < 32; ++p)
    ASSERT_TRUE(rig.manager->touch(p).ok());
  EXPECT_EQ(rig.manager->faults(), cold);  // all hits
}

TEST(SwapManagerTest, ExceedingResidencySwapsOutLru) {
  Rig rig(make_system(SystemKind::kFastSwap, 16));
  for (std::uint64_t p = 0; p < 32; ++p)
    ASSERT_TRUE(rig.manager->touch(p).ok());
  EXPECT_LE(rig.manager->resident_count(), 16u);
  EXPECT_GT(rig.manager->swap_outs(), 0u);
  // Oldest pages got evicted.
  EXPECT_FALSE(rig.manager->is_resident(0));
  EXPECT_TRUE(rig.manager->is_resident(31));
}

TEST(SwapManagerTest, SwappedPageComesBackIntact) {
  Rig rig(make_system(SystemKind::kFastSwap, 16));
  for (std::uint64_t p = 0; p < 64; ++p)
    ASSERT_TRUE(rig.manager->touch(p).ok());
  // Page 0 was swapped out; touch it again and verify contents.
  ASSERT_FALSE(rig.manager->is_resident(0));
  ASSERT_TRUE(rig.manager->touch(0).ok());
  auto bytes = rig.manager->resident_bytes(0);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(fnv1a(*bytes), expected_checksum(0));
}

TEST(SwapManagerTest, PbsRestoresWholeBatch) {
  auto setup = make_system(SystemKind::kFastSwap, 16);
  setup.swap.batch_pages = 8;
  Rig rig(setup);
  for (std::uint64_t p = 0; p < 32; ++p)
    ASSERT_TRUE(rig.manager->touch(p).ok());
  // Pages 0..15 are out (in two batches of 8). One fault on page 0 must
  // bring its whole batch resident.
  const std::uint64_t ins_before = rig.manager->swap_ins();
  ASSERT_TRUE(rig.manager->touch(0).ok());
  EXPECT_EQ(rig.manager->swap_ins() - ins_before, 8u);
  EXPECT_EQ(rig.manager->metrics().counter_value("swap.pbs_batch_ins"), 1u);
}

TEST(SwapManagerTest, NoPbsRestoresSinglePage) {
  auto setup = make_system(SystemKind::kFastSwapNoPbs, 16);
  Rig rig(setup);
  for (std::uint64_t p = 0; p < 32; ++p)
    ASSERT_TRUE(rig.manager->touch(p).ok());
  const std::uint64_t ins_before = rig.manager->swap_ins();
  ASSERT_TRUE(rig.manager->touch(0).ok());
  EXPECT_EQ(rig.manager->swap_ins() - ins_before, 1u);
}

TEST(SwapManagerTest, BatchingReducesMessages) {
  auto batched = make_system(SystemKind::kFastSwap, 16);
  batched.ldmc.shm_fraction = 0.0;  // force RDMA so messages are visible
  batched.swap.compression = CompressionMode::kOff;
  Rig rig_batched(batched);
  for (std::uint64_t p = 0; p < 64; ++p)
    ASSERT_TRUE(rig_batched.manager->touch(p).ok());
  const auto batched_msgs =
      rig_batched.system->fabric().metrics().counter_value("fabric.writes");

  auto per_page = batched;
  per_page.swap.batch_pages = 1;
  Rig rig_single(per_page);
  for (std::uint64_t p = 0; p < 64; ++p)
    ASSERT_TRUE(rig_single.manager->touch(p).ok());
  const auto single_msgs =
      rig_single.system->fabric().metrics().counter_value("fabric.writes");

  EXPECT_LT(batched_msgs, single_msgs / 2);
}

TEST(SwapManagerTest, CompressionShrinksStoredBytes) {
  auto compressed = make_system(SystemKind::kFastSwap, 16);
  Rig rig_c(compressed, 4, /*content_random=*/0.1);
  for (std::uint64_t p = 0; p < 64; ++p)
    ASSERT_TRUE(rig_c.manager->touch(p).ok());
  const auto logical =
      rig_c.manager->metrics().counter_value("swap.logical_bytes");
  const auto stored =
      rig_c.manager->metrics().counter_value("swap.compressed_bytes");
  ASSERT_GT(logical, 0u);
  EXPECT_LT(stored, logical / 2);  // highly compressible content
}

TEST(SwapManagerTest, LinuxBaselineNeverTouchesFabricOrShm) {
  Rig rig(make_system(SystemKind::kLinux, 16), 2);
  for (std::uint64_t p = 0; p < 64; ++p)
    ASSERT_TRUE(rig.manager->touch(p).ok());
  ASSERT_TRUE(rig.manager->touch(0).ok());  // swap-in from disk
  EXPECT_EQ(rig.system->fabric().metrics().counter_value("fabric.writes"),
            0u);
  EXPECT_EQ(rig.client->puts_to_shm(), 0u);
  EXPECT_GT(rig.client->puts_to_disk(), 0u);
  auto bytes = rig.manager->resident_bytes(0);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(fnv1a(*bytes), expected_checksum(0));
}

TEST(SwapManagerTest, InfiniswapUsesRemoteNotShm) {
  Rig rig(make_system(SystemKind::kInfiniswap, 16));
  for (std::uint64_t p = 0; p < 64; ++p)
    ASSERT_TRUE(rig.manager->touch(p).ok());
  EXPECT_EQ(rig.client->puts_to_shm(), 0u);
  EXPECT_GT(rig.client->puts_to_remote(), 0u);
  EXPECT_GT(rig.manager->metrics().counter_value("swap.backup_writes"), 0u);
}

TEST(SwapManagerTest, FastSwapFasterThanLinuxUnderPressure) {
  auto run = [](SystemKind kind) {
    Rig rig(make_system(kind, 32));
    auto& sim = rig.system->simulator();
    const SimTime start = sim.now();
    // Two passes over a 64-page working set at 50% residency.
    for (int iter = 0; iter < 2; ++iter)
      for (std::uint64_t p = 0; p < 64; ++p)
        EXPECT_TRUE(rig.manager->touch(p).ok());
    return sim.now() - start;
  };
  const SimTime fastswap = run(SystemKind::kFastSwap);
  const SimTime linux_time = run(SystemKind::kLinux);
  EXPECT_LT(fastswap * 5, linux_time);  // order-of-magnitude class gap
}

TEST(SwapManagerTest, FlushAllEvictsEverything) {
  Rig rig(make_system(SystemKind::kFastSwap, 64));
  for (std::uint64_t p = 0; p < 32; ++p)
    ASSERT_TRUE(rig.manager->touch(p).ok());
  ASSERT_TRUE(rig.manager->flush_all().ok());
  EXPECT_EQ(rig.manager->resident_count(), 0u);
  // Everything still retrievable.
  for (std::uint64_t p = 0; p < 32; ++p)
    ASSERT_TRUE(rig.manager->touch(p).ok());
  auto bytes = rig.manager->resident_bytes(31);
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(fnv1a(*bytes), expected_checksum(31));
}

// Property test: random access traces across all systems keep every page
// bit-identical to its generator output.
class SwapIntegrity : public ::testing::TestWithParam<SystemKind> {};

TEST_P(SwapIntegrity, RandomTracePreservesAllPages) {
  Rig rig(make_system(GetParam(), 24), 4);
  Rng rng(31337);
  const std::uint64_t kPages = 96;
  for (int step = 0; step < 600; ++step) {
    const std::uint64_t page = rng.next_below(kPages);
    ASSERT_TRUE(rig.manager->touch(page, rng.bernoulli(0.2)).ok())
        << "step " << step;
    auto bytes = rig.manager->resident_bytes(page);
    ASSERT_TRUE(bytes.ok());
    ASSERT_EQ(fnv1a(*bytes), expected_checksum(page)) << "page " << page;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSystems, SwapIntegrity,
                         ::testing::Values(SystemKind::kFastSwap,
                                           SystemKind::kFastSwapNoPbs,
                                           SystemKind::kInfiniswap,
                                           SystemKind::kNbdx,
                                           SystemKind::kLinux,
                                           SystemKind::kZswap),
                         [](const auto& param_info) {
                           std::string name{to_string(param_info.param)};
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

// ---- zswap -----------------------------------------------------------------

TEST(ZswapCacheTest, PutTakeRoundTrip) {
  ZswapCache cache(64 * KiB);
  std::vector<std::byte> page(kPageBytes);
  workloads::fill_page(page, 1, 0.1, 5);
  auto writebacks = cache.put(1, page);
  ASSERT_TRUE(writebacks.ok());
  EXPECT_TRUE(writebacks->empty());
  EXPECT_TRUE(cache.contains(1));
  EXPECT_GT(cache.used_bytes(), 0u);

  std::vector<std::byte> out(kPageBytes);
  EXPECT_TRUE(cache.take(1, out));
  EXPECT_EQ(out, page);
  EXPECT_FALSE(cache.contains(1));  // zswap frees on load
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(ZswapCacheTest, IncompressiblePageRejected) {
  ZswapCache cache(64 * KiB);
  Rng rng(3);
  std::vector<std::byte> page(kPageBytes);
  for (auto& b : page) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  auto writebacks = cache.put(9, page);
  ASSERT_TRUE(writebacks.ok());
  ASSERT_EQ(writebacks->size(), 1u);  // bounced straight down-tier
  EXPECT_EQ((*writebacks)[0].page, 9u);
  EXPECT_EQ((*writebacks)[0].bytes, page);
  EXPECT_FALSE(cache.contains(9));
}

TEST(ZswapCacheTest, PoolPressureWritesBackOldest) {
  ZswapCache cache(8 * KiB);  // room for ~4 zbud half-frames
  std::vector<std::byte> page(kPageBytes);
  std::vector<std::uint64_t> written_back;
  for (std::uint64_t p = 0; p < 8; ++p) {
    workloads::fill_page(page, p, 0.05, 5);
    auto writebacks = cache.put(p, page);
    ASSERT_TRUE(writebacks.ok());
    for (const auto& wb : *writebacks) written_back.push_back(wb.page);
  }
  EXPECT_FALSE(written_back.empty());
  // Oldest-first order.
  for (std::size_t i = 1; i < written_back.size(); ++i)
    EXPECT_LT(written_back[i - 1], written_back[i]);
  // Written-back bytes are the original raw pages.
  EXPECT_LE(cache.used_bytes(), cache.capacity_bytes());
}

TEST(ZswapCacheTest, InvalidateDropsEntry) {
  ZswapCache cache(64 * KiB);
  std::vector<std::byte> page(kPageBytes);
  workloads::fill_page(page, 1, 0.1, 5);
  ASSERT_TRUE(cache.put(1, page).ok());
  cache.invalidate(1);
  EXPECT_FALSE(cache.contains(1));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(ZswapSystemTest, HitsAvoidDiskFaults) {
  auto setup = make_system(SystemKind::kZswap, 40);
  Rig rig(setup, 2, /*content_random=*/0.1);
  // Working set of 64 pages over a resident budget of 32 (40 minus the
  // 8-page pool): plenty of pressure, compressible content.
  for (int iter = 0; iter < 3; ++iter)
    for (std::uint64_t p = 0; p < 64; ++p)
      ASSERT_TRUE(rig.manager->touch(p).ok());
  EXPECT_GT(rig.manager->metrics().counter_value("swap.zswap_hits"), 0u);
}

TEST(ZswapSystemTest, FasterThanLinuxOnCompressibleWorkload) {
  auto run = [](SystemKind kind) {
    Rig rig(make_system(kind, 40), 2, /*content_random=*/0.05);
    auto& sim = rig.system->simulator();
    const SimTime start = sim.now();
    for (int iter = 0; iter < 3; ++iter)
      for (std::uint64_t p = 0; p < 64; ++p)
        EXPECT_TRUE(rig.manager->touch(p).ok());
    return sim.now() - start;
  };
  EXPECT_LT(run(SystemKind::kZswap), run(SystemKind::kLinux));
}

TEST(SystemsTest, RatioPresetsNamedCorrectly) {
  EXPECT_EQ(make_fastswap_ratio(1.0, 10).name, "FS-SM");
  EXPECT_EQ(make_fastswap_ratio(0.9, 10).name, "FS-9:1");
  EXPECT_EQ(make_fastswap_ratio(0.7, 10).name, "FS-7:3");
  EXPECT_EQ(make_fastswap_ratio(0.5, 10).name, "FS-5:5");
  EXPECT_EQ(make_fastswap_ratio(0.0, 10).name, "FS-RDMA");
}

TEST(SystemsTest, PresetsEncodePaperSemantics) {
  auto fastswap = make_system(SystemKind::kFastSwap, 10);
  EXPECT_TRUE(fastswap.swap.proactive_batch_swap_in);
  EXPECT_GT(fastswap.swap.batch_pages, 1u);

  auto infiniswap = make_system(SystemKind::kInfiniswap, 10);
  EXPECT_EQ(infiniswap.ldmc.shm_fraction, 0.0);
  EXPECT_TRUE(infiniswap.swap.disk_backup);
  EXPECT_GT(infiniswap.swap.extra_op_overhead, 0);

  auto linux_swap = make_system(SystemKind::kLinux, 10);
  EXPECT_FALSE(linux_swap.ldmc.allow_remote);
}

}  // namespace
}  // namespace dm::swap
