// dm_lint end-to-end tests: every rule must fire on its seeded fixture at
// the expected (file, line), the escape hatch and the clean file must stay
// silent, the real tree must lint clean, and the output must be stable.
//
// DM_LINT_FIXTURE_DIR / DM_LINT_SOURCE_ROOT are injected by
// tests/CMakeLists.txt so the test is independent of the build directory.
#include <algorithm>
#include <iterator>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "dm_lint_core.h"

namespace dm::lint {
namespace {

std::vector<Diagnostic> run_on_fixtures() {
  Options options;
  options.root = DM_LINT_FIXTURE_DIR;
  return run(options);
}

struct Expected {
  const char* file;
  int line;
  const char* rule;
};

// Keep in sync with tests/lint_fixtures/ — each entry is one seeded
// violation. Sorted by (file, line, rule), matching analyzer output order.
const Expected kExpected[] = {
    {"src/common/bad_layering.h", 5, kRuleLayerDep},
    {"src/core/bad_determinism.cc", 11, kRuleRand},
    {"src/core/bad_determinism.cc", 14, kRuleRand},
    {"src/core/bad_determinism.cc", 15, kRuleRand},
    {"src/core/bad_determinism.cc", 16, kRuleRand},
    {"src/core/bad_determinism.cc", 20, kRuleWallclock},
    {"src/core/bad_determinism.cc", 22, kRuleWallclock},
    {"src/core/bad_determinism.cc", 26, kRuleGetenv},
    {"src/core/bad_determinism.cc", 30, kRulePtrHash},
    {"src/core/bad_determinism.cc", 34, kRulePtrHash},
    {"src/core/bad_include.cc", 7, kRuleIncludeDirect},
    {"src/core/bad_status.cc", 10, kRuleStatusDiscard},
    {"src/mem/bad_test_include.cc", 3, kRuleLayerTestInclude},
    {"src/obs/bad_span.cc", 12, kRuleSpanUnclosed},
    {"src/obs/bad_unordered.cc", 12, kRuleUnorderedIter},
};

TEST(LintFixturesTest, EverySeededViolationIsDetected) {
  const auto diags = run_on_fixtures();
  ASSERT_EQ(diags.size(), std::size(kExpected)) << to_text(diags);
  for (std::size_t i = 0; i < std::size(kExpected); ++i) {
    EXPECT_EQ(diags[i].file, kExpected[i].file) << "at index " << i;
    EXPECT_EQ(diags[i].line, kExpected[i].line) << "at index " << i;
    EXPECT_EQ(diags[i].rule, kExpected[i].rule) << "at index " << i;
    EXPECT_FALSE(diags[i].message.empty());
  }
}

TEST(LintFixturesTest, AllowMarkerAndCleanFileProduceNoFindings) {
  for (const Diagnostic& d : run_on_fixtures()) {
    EXPECT_NE(d.file, "src/core/allow_escape.cc") << to_text({d});
    EXPECT_NE(d.file, "src/core/clean.cc") << to_text({d});
  }
}

TEST(LintFixturesTest, OutputIsSortedAndStableAcrossRuns) {
  const auto first = run_on_fixtures();
  const auto second = run_on_fixtures();
  EXPECT_EQ(to_json(first), to_json(second));
  EXPECT_TRUE(std::is_sorted(
      first.begin(), first.end(), [](const Diagnostic& a, const Diagnostic& b) {
        return std::tie(a.file, a.line, a.rule) <
               std::tie(b.file, b.line, b.rule);
      }));
}

TEST(LintFixturesTest, JsonFollowsBenchConventions) {
  const auto diags = run_on_fixtures();
  const std::string json = to_json(diags);
  EXPECT_NE(json.find("\"tool\": \"dm_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"det-rand\""), std::string::npos);
  EXPECT_TRUE(json.ends_with("\n"));
}

// The real tree must stay violation-free: this is the same scan `ci.sh
// --lint-only` runs, kept as a ctest so a stray rand() or layering
// back-edge fails the default suite too, not just CI.
TEST(LintTreeTest, SourceTreeIsClean) {
  Options options;
  options.root = DM_LINT_SOURCE_ROOT;
  const auto diags = run(options);
  EXPECT_TRUE(diags.empty()) << to_text(diags);
}

}  // namespace
}  // namespace dm::lint
