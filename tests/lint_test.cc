// dm_lint end-to-end tests: every rule must fire on its seeded fixture at
// the expected (file, line), the escape hatch and the clean file must stay
// silent, the real tree must lint clean, and the output must be stable.
//
// Alongside the fixture goldens there are temp-tree tests: parser edge
// cases (CRLF, empty files, unterminated raw strings, multi-line macros)
// and mutation tests that delete one leg of an RPC or metric contract and
// assert the analyzer notices.
//
// DM_LINT_FIXTURE_DIR / DM_LINT_SOURCE_ROOT are injected by
// tests/CMakeLists.txt so the test is independent of the build directory.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "dm_lint_core.h"

namespace dm::lint {
namespace {

std::vector<Diagnostic> run_on_fixtures() {
  Options options;
  options.root = DM_LINT_FIXTURE_DIR;
  return run(options);
}

struct Expected {
  const char* file;
  int line;
  const char* rule;
};

// Keep in sync with tests/lint_fixtures/ — each entry is one seeded
// violation. Sorted by (file, line, rule), matching analyzer output order.
const Expected kExpected[] = {
    {"ci.sh", 4, kRuleMetricContract},
    {"src/cluster/bad_rpc_contract.cc", 7, kRuleRpcContract},
    {"src/common/bad_layering.h", 5, kRuleLayerDep},
    {"src/core/bad_determinism.cc", 11, kRuleRand},
    {"src/core/bad_determinism.cc", 14, kRuleRand},
    {"src/core/bad_determinism.cc", 15, kRuleRand},
    {"src/core/bad_determinism.cc", 16, kRuleRand},
    {"src/core/bad_determinism.cc", 20, kRuleWallclock},
    {"src/core/bad_determinism.cc", 22, kRuleWallclock},
    {"src/core/bad_determinism.cc", 26, kRuleGetenv},
    {"src/core/bad_determinism.cc", 30, kRulePtrHash},
    {"src/core/bad_determinism.cc", 34, kRulePtrHash},
    {"src/core/bad_include.cc", 7, kRuleIncludeDirect},
    {"src/core/bad_status.cc", 10, kRuleStatusDiscard},
    {"src/core/bad_status_branch.cc", 13, kRuleStatusDiscard},
    {"src/cxl/bad_lock_cycle.cc", 15, kRuleLockOrder},
    {"src/cxl/bad_lock_cycle.cc", 22, kRuleLockOrder},
    {"src/cxl/bad_lock_range.cc", 16, kRuleLockOrder},
    {"src/cxl/bad_lock_unannotated.cc", 12, kRuleLockOrder},
    {"src/mem/bad_test_include.cc", 3, kRuleLayerTestInclude},
    {"src/obs/bad_metrics.cc", 17, kRuleMetricContract},
    {"src/obs/bad_metrics.cc", 18, kRuleMetricContract},
    {"src/obs/bad_metrics.cc", 19, kRuleMetricContract},
    {"src/obs/bad_span.cc", 12, kRuleSpanUnclosed},
    {"src/obs/bad_span_branch.cc", 15, kRuleSpanUnclosed},
    {"src/obs/bad_unordered.cc", 12, kRuleUnorderedIter},
};

TEST(LintFixturesTest, EverySeededViolationIsDetected) {
  const auto diags = run_on_fixtures();
  ASSERT_EQ(diags.size(), std::size(kExpected)) << to_text(diags);
  for (std::size_t i = 0; i < std::size(kExpected); ++i) {
    EXPECT_EQ(diags[i].file, kExpected[i].file) << "at index " << i;
    EXPECT_EQ(diags[i].line, kExpected[i].line) << "at index " << i;
    EXPECT_EQ(diags[i].rule, kExpected[i].rule) << "at index " << i;
    EXPECT_FALSE(diags[i].message.empty());
  }
}

TEST(LintFixturesTest, AllowMarkerAndCleanFileProduceNoFindings) {
  for (const Diagnostic& d : run_on_fixtures()) {
    EXPECT_NE(d.file, "src/core/allow_escape.cc") << to_text({d});
    EXPECT_NE(d.file, "src/core/clean.cc") << to_text({d});
  }
}

TEST(LintFixturesTest, OutputIsSortedAndStableAcrossRuns) {
  const auto first = run_on_fixtures();
  const auto second = run_on_fixtures();
  EXPECT_EQ(to_json(first), to_json(second));
  EXPECT_TRUE(std::is_sorted(
      first.begin(), first.end(), [](const Diagnostic& a, const Diagnostic& b) {
        return std::tie(a.file, a.line, a.rule) <
               std::tie(b.file, b.line, b.rule);
      }));
}

TEST(LintFixturesTest, JsonFollowsVersionedSchema) {
  const auto diags = run_on_fixtures();
  const std::string json = to_json(diags);
  EXPECT_NE(json.find("\"tool\": \"dm_lint\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_version\": 2"), std::string::npos);
  EXPECT_NE(json.find("\"rules\": ["), std::string::npos);
  EXPECT_NE(json.find("\"rule\": \"det-rand\""), std::string::npos);
  EXPECT_TRUE(json.ends_with("\n"));
  // Every catalogued rule appears with a non-empty description.
  for (const RuleInfo& info : rule_catalog()) {
    EXPECT_NE(json.find("\"rule\": \"" + std::string(info.rule) + "\""),
              std::string::npos)
        << info.rule;
    EXPECT_STRNE(info.description, "") << info.rule;
  }
}

TEST(LintFixturesTest, MetricRegistryListsUniverseEmissions) {
  Options options;
  options.root = DM_LINT_FIXTURE_DIR;
  const RunResult result = run_full(options);
  EXPECT_NE(result.metric_registry.find("\"schema_version\": 2"),
            std::string::npos);
  // Counter from bad_metrics.cc and the span from bad_span_branch.cc.
  EXPECT_NE(result.metric_registry.find("\"fix.requests\""),
            std::string::npos);
  EXPECT_NE(result.metric_registry.find("\"fix.probe\""), std::string::npos);
}

// The real tree must stay violation-free: this is the same scan `ci.sh
// --lint-only` runs, kept as a ctest so a stray rand() or layering
// back-edge fails the default suite too, not just CI.
TEST(LintTreeTest, SourceTreeIsClean) {
  Options options;
  options.root = DM_LINT_SOURCE_ROOT;
  const auto diags = run(options);
  EXPECT_TRUE(diags.empty()) << to_text(diags);
}

// ---- temp-tree harness for edge-case and mutation tests -------------------

class TempTree {
 public:
  explicit TempTree(const std::string& tag)
      : root_(std::filesystem::path(::testing::TempDir()) /
              ("dm_lint_" + tag)) {
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
  }
  ~TempTree() {
    std::error_code ec;
    std::filesystem::remove_all(root_, ec);
  }

  void write(const std::string& rel, const std::string& content) {
    const std::filesystem::path p = root_ / rel;
    std::filesystem::create_directories(p.parent_path());
    std::ofstream out(p, std::ios::binary);
    out << content;
  }

  std::vector<Diagnostic> lint() const {
    Options options;
    options.root = root_.string();
    return run(options);
  }

 private:
  std::filesystem::path root_;
};

std::vector<Diagnostic> of_rule(const std::vector<Diagnostic>& diags,
                                const char* rule) {
  std::vector<Diagnostic> out;
  std::copy_if(diags.begin(), diags.end(), std::back_inserter(out),
               [&](const Diagnostic& d) { return d.rule == rule; });
  return out;
}

TEST(LintEdgeCaseTest, CrlfLineEndingsKeepLineNumbers) {
  TempTree tree("crlf");
  tree.write("src/core/a.cc",
             "int noise();\r\n"
             "int f() {\r\n"
             "  return rand();\r\n"
             "}\r\n");
  const auto diags = of_rule(tree.lint(), kRuleRand);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "src/core/a.cc");
  EXPECT_EQ(diags[0].line, 3);
}

TEST(LintEdgeCaseTest, DegenerateInputsDoNotCrashOrMisfire) {
  TempTree tree("degenerate");
  tree.write("src/core/empty.cc", "");
  // Unterminated raw string: everything after it is literal text and must
  // not be scanned as code (the rand() below is inside the string).
  tree.write("src/core/raw.cc",
             "const char* blob = R\"(unterminated\n"
             "rand();\n");
  // Multi-line macro: preprocessor logical lines are invisible to the
  // statement grouper, including the braces inside them.
  tree.write("src/core/macro.cc",
             "#define WRAP(x) \\\n"
             "  do {          \\\n"
             "    (x);        \\\n"
             "  } while (0)\n"
             "void f() { WRAP(1); }\n");
  EXPECT_TRUE(tree.lint().empty()) << to_text(tree.lint());
}

// Contract mutation: a complete RPC method (label + handle + call) passes;
// deleting the dispatch leg from a copy of the tree is caught.
TEST(LintMutationTest, DeletedRpcDispatchBranchIsCaught) {
  const std::string decl =
      "enum MutRpcMethod : unsigned {\n"
      "  kRpcMutPing = 1,\n"
      "};\n";
  const std::string label = "void reg() { label_method(kRpcMutPing); }\n";
  const std::string serve = "void serve(Ep& ep) { ep.handle(kRpcMutPing, cb); }\n";
  const std::string client = "void probe(Ep& ep) { ep.call(7, kRpcMutPing, {}); }\n";

  TempTree complete("rpc_complete");
  complete.write("src/cluster/proto.h", decl);
  complete.write("src/cluster/use.cc", label + serve + client);
  EXPECT_TRUE(of_rule(complete.lint(), kRuleRpcContract).empty());

  TempTree mutated("rpc_mutated");
  mutated.write("src/cluster/proto.h", decl);
  mutated.write("src/cluster/use.cc", label + client);  // dispatch deleted
  const auto diags = of_rule(mutated.lint(), kRuleRpcContract);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "src/cluster/proto.h");
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_NE(diags[0].message.find("handle() dispatch"), std::string::npos);
}

// Contract mutation: a read with a live emission passes; deleting the
// emission from a copy of the tree orphans the read and is caught.
TEST(LintMutationTest, DeletedMetricEmissionIsCaught) {
  const std::string emit = "void f(M& m) { ++m.counter(\"mut.hits\"); }\n";
  const std::string read =
      "void g(const M& m) { (void)m.counter_value(\"mut.hits\"); }\n";

  TempTree complete("metric_complete");
  complete.write("src/obs/emit.cc", emit);
  complete.write("src/obs/read.cc", read);
  EXPECT_TRUE(of_rule(complete.lint(), kRuleMetricContract).empty());

  TempTree mutated("metric_mutated");
  mutated.write("src/obs/emit.cc", "void f(M&) {}\n");  // emission deleted
  mutated.write("src/obs/read.cc", read);
  const auto diags = of_rule(mutated.lint(), kRuleMetricContract);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "src/obs/read.cc");
  EXPECT_NE(diags[0].message.find("no code emits"), std::string::npos);
}

}  // namespace
}  // namespace dm::lint
