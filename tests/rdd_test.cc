// Tests for the mini-Spark RDD layer and DAHI off-heap caching.
#include <gtest/gtest.h>

#include "common/units.h"
#include "core/dm_system.h"
#include "rddcache/mini_spark.h"

namespace dm::rdd {
namespace {

core::DmSystem::Config cluster_config() {
  core::DmSystem::Config config;
  config.node_count = 4;
  config.node.shm.arena_bytes = 16 * MiB;
  config.node.recv.arena_bytes = 16 * MiB;
  config.node.disk.capacity_bytes = 128 * MiB;
  config.service.rdmc.replication = 1;
  return config;
}

RddPtr make_dataset(std::size_t partitions, std::size_t records) {
  return Rdd::source("dataset", partitions, records,
                     [](std::size_t p, std::size_t i) {
                       return static_cast<Record>(p * 1000003 + i);
                     });
}

Record expected_sum(std::size_t partitions, std::size_t records,
                    auto transform) {
  Record total = 0;
  for (std::size_t p = 0; p < partitions; ++p)
    for (std::size_t i = 0; i < records; ++i)
      total += transform(static_cast<Record>(p * 1000003 + i));
  return total;
}

TEST(RddTest, LineageComputesCorrectValues) {
  auto rdd = make_dataset(4, 100)
                 ->map("double", [](Record r) { return r * 2; })
                 ->filter("even-ish", [](Record r) { return r % 3 != 0; });
  std::uint64_t ops = 0;
  auto records = rdd->compute(2, &ops);
  EXPECT_GT(ops, 0u);
  for (Record r : records) {
    EXPECT_EQ(r % 2, 0);
    EXPECT_NE(r % 3, 0);
  }
}

TEST(RddTest, IdsAreUniqueAndKindsTracked) {
  auto a = make_dataset(1, 1);
  auto b = a->map("m", [](Record r) { return r; });
  auto c = b->filter("f", [](Record) { return true; });
  EXPECT_NE(a->id(), b->id());
  EXPECT_NE(b->id(), c->id());
  EXPECT_EQ(a->kind(), Rdd::Kind::kSource);
  EXPECT_EQ(b->kind(), Rdd::Kind::kMap);
  EXPECT_EQ(c->kind(), Rdd::Kind::kFilter);
  EXPECT_EQ(c->parent(), b);
}

TEST(MiniSparkTest, SumActionCorrect) {
  core::DmSystem system(cluster_config());
  system.start();
  MiniSpark spark(system, {});
  auto rdd = make_dataset(8, 500);
  auto total = spark.sum(rdd);
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(*total, expected_sum(8, 500, [](Record r) { return r; }));
}

TEST(MiniSparkTest, CachedRddHitsOnSecondAction) {
  core::DmSystem system(cluster_config());
  system.start();
  MiniSpark::Config config;
  config.executor.cache_bytes = 64 * MiB;  // everything fits
  MiniSpark spark(system, config);
  auto rdd = make_dataset(8, 500);
  rdd->cache();
  ASSERT_TRUE(spark.sum(rdd).ok());
  EXPECT_EQ(spark.total_hits(), 0u);
  ASSERT_TRUE(spark.sum(rdd).ok());
  EXPECT_EQ(spark.total_hits(), 8u);
  EXPECT_EQ(spark.total_recomputes(), 0u);
}

TEST(MiniSparkTest, VanillaRecomputesOnOverflow) {
  core::DmSystem system(cluster_config());
  system.start();
  MiniSpark::Config config;
  config.executors = 2;
  // Partition = 4000 records * 8B = 32 KB; budget holds only 2 partitions.
  config.executor.cache_bytes = 64 * KiB;
  config.executor.overflow = OverflowPolicy::kRecompute;
  MiniSpark spark(system, config);
  auto rdd = make_dataset(16, 4000);
  rdd->cache();
  ASSERT_TRUE(spark.sum(rdd).ok());
  ASSERT_TRUE(spark.sum(rdd).ok());
  EXPECT_GT(spark.total_recomputes(), 0u);
  EXPECT_EQ(spark.total_offheap_fetches(), 0u);
}

TEST(MiniSparkTest, DahiServesOverflowOffHeap) {
  core::DmSystem system(cluster_config());
  system.start();
  MiniSpark::Config config;
  config.executors = 2;
  config.executor.cache_bytes = 64 * KiB;
  config.executor.overflow = OverflowPolicy::kDahi;
  MiniSpark spark(system, config);
  auto rdd = make_dataset(16, 4000);
  rdd->cache();
  auto first = spark.sum(rdd);
  ASSERT_TRUE(first.ok());
  auto second = spark.sum(rdd);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);  // off-heap copies are intact
  EXPECT_GT(spark.total_offheap_fetches(), 0u);
  EXPECT_EQ(spark.total_recomputes(), 0u);
}

TEST(MiniSparkTest, SpillDiskServesOverflowCorrectly) {
  core::DmSystem system(cluster_config());
  system.start();
  MiniSpark::Config config;
  config.executors = 2;
  config.executor.cache_bytes = 64 * KiB;
  config.executor.overflow = OverflowPolicy::kSpillDisk;
  MiniSpark spark(system, config);
  auto rdd = make_dataset(16, 4000);
  rdd->cache();
  auto first = spark.sum(rdd);
  auto second = spark.sum(rdd);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_GT(spark.total_offheap_fetches(), 0u);
}

TEST(MiniSparkTest, DahiFasterThanRecomputeOnReuse) {
  auto run = [](OverflowPolicy policy) {
    core::DmSystem system(cluster_config());
    system.start();
    MiniSpark::Config config;
    config.executors = 2;
    config.executor.cache_bytes = 64 * KiB;
    config.executor.overflow = policy;
    MiniSpark spark(system, config);
    // Expensive lineage: map chain amplifies recompute cost.
    auto rdd = make_dataset(16, 4000);
    auto derived = rdd->map("m1", [](Record r) { return r * 3 + 1; })
                       ->map("m2", [](Record r) { return r ^ 0x5a5a; });
    derived->cache();
    auto& sim = system.simulator();
    EXPECT_TRUE(spark.sum(derived).ok());
    const SimTime start = sim.now();
    for (int iter = 0; iter < 4; ++iter) EXPECT_TRUE(spark.sum(derived).ok());
    return sim.now() - start;
  };
  const SimTime dahi = run(OverflowPolicy::kDahi);
  const SimTime vanilla = run(OverflowPolicy::kRecompute);
  EXPECT_LT(dahi, vanilla);
}

TEST(MiniSparkTest, CountAction) {
  core::DmSystem system(cluster_config());
  system.start();
  MiniSpark spark(system, {});
  auto rdd = make_dataset(4, 250)->filter(
      "half", [](Record r) { return r % 2 == 0; });
  auto count = spark.count(rdd);
  ASSERT_TRUE(count.ok());
  // Records are p*1000003 + i with i in [0,250): exactly half even per
  // partition parity pattern — verify against direct computation.
  std::uint64_t expected = 0;
  for (std::size_t p = 0; p < 4; ++p)
    for (std::size_t i = 0; i < 250; ++i)
      if ((static_cast<Record>(p * 1000003 + i)) % 2 == 0) ++expected;
  EXPECT_EQ(*count, expected);
}

TEST(MiniSparkTest, ReduceByKeyCorrectness) {
  core::DmSystem system(cluster_config());
  system.start();
  MiniSpark spark(system, {});

  // Records p*1000003 + i; key by value mod 7; sum per key.
  auto rdd = make_dataset(6, 300);
  auto reduced = spark.reduce_by_key(
      rdd, [](Record r) { return static_cast<std::uint64_t>(r % 7); },
      [](Record a, Record b) { return a + b; }, 4);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ((*reduced)->partitions(), 4u);

  // The sum over reduced records equals the sum over the input.
  auto reduced_total = spark.sum(*reduced);
  auto input_total = spark.sum(rdd);
  ASSERT_TRUE(reduced_total.ok());
  ASSERT_TRUE(input_total.ok());
  EXPECT_EQ(*reduced_total, *input_total);

  // Exactly 7 keys survive across all output partitions.
  auto key_count = spark.count(*reduced);
  ASSERT_TRUE(key_count.ok());
  EXPECT_EQ(*key_count, 7u);
}

TEST(MiniSparkTest, ReduceByKeyUsesCachedParents) {
  core::DmSystem system(cluster_config());
  system.start();
  MiniSpark::Config config;
  config.executors = 2;
  config.executor.cache_bytes = 64 * KiB;
  config.executor.overflow = OverflowPolicy::kDahi;
  MiniSpark spark(system, config);

  auto rdd = make_dataset(16, 4000);
  rdd->cache();
  ASSERT_TRUE(spark.sum(rdd).ok());  // materialize + cache/overflow

  const auto fetches_before = spark.total_offheap_fetches();
  auto reduced = spark.reduce_by_key(
      rdd, [](Record r) { return static_cast<std::uint64_t>(r & 0xf); },
      [](Record a, Record b) { return std::max(a, b); }, 2);
  ASSERT_TRUE(reduced.ok());
  // The shuffle's map side read overflowed parents from DAHI, not lineage.
  EXPECT_GT(spark.total_offheap_fetches(), fetches_before);
  EXPECT_EQ(spark.total_recomputes(), 0u);
}

TEST(MiniSparkTest, ShuffleOutputIsCacheableRdd) {
  core::DmSystem system(cluster_config());
  system.start();
  MiniSpark spark(system, {});
  auto rdd = make_dataset(4, 200);
  auto reduced = spark.reduce_by_key(
      rdd, [](Record r) { return static_cast<std::uint64_t>(r % 32); },
      [](Record a, Record b) { return a + b; }, 3);
  ASSERT_TRUE(reduced.ok());
  (*reduced)->cache();
  auto first = spark.sum(*reduced);
  auto second = spark.sum(*reduced);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
  EXPECT_GT(spark.total_hits(), 0u);
}

TEST(MiniSparkTest, JoinMatchesReferenceComputation) {
  core::DmSystem system(cluster_config());
  system.start();
  MiniSpark spark(system, {});

  // left: records 0..199 per partition base; right: multiples of 3.
  auto left = Rdd::source("users", 4, 200, [](std::size_t p, std::size_t i) {
    return static_cast<Record>(p * 1000 + i);
  });
  auto right = Rdd::source("orders", 3, 150, [](std::size_t p, std::size_t i) {
    return static_cast<Record>((p * 150 + i) * 3);
  });
  auto key_mod = [](Record r) { return static_cast<std::uint64_t>(r % 97); };
  auto joined = spark.join(
      left, right, key_mod, key_mod,
      [](Record l, Record r) { return l * 100000 + r; }, 4);
  ASSERT_TRUE(joined.ok());

  // Reference: brute-force nested loop.
  std::uint64_t expect_count = 0;
  Record expect_sum = 0;
  for (std::size_t lp = 0; lp < 4; ++lp) {
    for (std::size_t li = 0; li < 200; ++li) {
      const Record l = static_cast<Record>(lp * 1000 + li);
      for (std::size_t rp = 0; rp < 3; ++rp) {
        for (std::size_t ri = 0; ri < 150; ++ri) {
          const Record r = static_cast<Record>((rp * 150 + ri) * 3);
          if (l % 97 == r % 97) {
            ++expect_count;
            expect_sum += l * 100000 + r;
          }
        }
      }
    }
  }
  auto count = spark.count(*joined);
  auto sum = spark.sum(*joined);
  ASSERT_TRUE(count.ok());
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(*count, expect_count);
  EXPECT_EQ(*sum, expect_sum);
}

TEST(MiniSparkTest, JoinWithNoMatchingKeysIsEmpty) {
  core::DmSystem system(cluster_config());
  system.start();
  MiniSpark spark(system, {});
  auto evens = Rdd::source("evens", 2, 50, [](std::size_t p, std::size_t i) {
    return static_cast<Record>((p * 50 + i) * 2);
  });
  auto odds = Rdd::source("odds", 2, 50, [](std::size_t p, std::size_t i) {
    return static_cast<Record>((p * 50 + i) * 2 + 1);
  });
  auto identity = [](Record r) { return static_cast<std::uint64_t>(r); };
  auto joined = spark.join(evens, odds, identity, identity,
                           [](Record l, Record) { return l; }, 2);
  ASSERT_TRUE(joined.ok());
  auto count = spark.count(*joined);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 0u);
}

TEST(MiniSparkTest, ExecutorsSpreadAcrossNodes) {
  core::DmSystem system(cluster_config());
  system.start();
  MiniSpark::Config config;
  config.executors = 8;
  MiniSpark spark(system, config);
  std::set<net::NodeId> hosts;
  for (std::size_t i = 0; i < spark.executor_count(); ++i)
    hosts.insert(spark.executor(i).client().service().node().id());
  EXPECT_EQ(hosts.size(), 4u);
}

}  // namespace
}  // namespace dm::rdd
