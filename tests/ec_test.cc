// Erasure-coding battery (Hydra-style resilient remote memory).
//
// Part 1 exercises the pure Reed–Solomon codec: GF(2^8) field axioms, the
// systematic-matrix structure, round-trip identity across every supported
// (k, r) shape, reconstruction from *every* r-subset of losses, corrupted
// shard detection, and a seeded codec fuzz loop. Part 2 drives the codec
// through the cluster: EC puts stripe across distinct nodes, degraded reads
// reconstruct around crashes and partitions, the repair scan re-encodes
// lost shards, and the whole path stays deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "core/dm_system.h"
#include "core/ldmc.h"
#include "core/node_service.h"
#include "core/repair_service.h"
#include "ec/gf256.h"
#include "ec/rs_codec.h"
#include "mem/memory_map.h"
#include "workloads/page_content.h"

namespace dm::ec {
namespace {

std::vector<std::byte> pattern_bytes(std::size_t len, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> bytes(len);
  for (auto& b : bytes) b = static_cast<std::byte>(rng.next_below(256));
  return bytes;
}

// --- GF(2^8) field axioms ----------------------------------------------------

TEST(Gf256Test, MultiplicativeInversesExhaustive) {
  for (int a = 1; a < 256; ++a) {
    const auto ua = static_cast<std::uint8_t>(a);
    EXPECT_EQ(gf_mul(ua, gf_inv(ua)), 1) << "a=" << a;
    EXPECT_EQ(gf_div(ua, ua), 1) << "a=" << a;
    EXPECT_EQ(gf_div(1, ua), gf_inv(ua)) << "a=" << a;
  }
  EXPECT_EQ(gf_mul(0, 77), 0);
  EXPECT_EQ(gf_mul(77, 0), 0);
  EXPECT_EQ(gf_mul(1, 213), 213);
}

TEST(Gf256Test, RingAxiomsSampled) {
  Rng rng(41);
  for (int i = 0; i < 4096; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const auto b = static_cast<std::uint8_t>(rng.next_below(256));
    const auto c = static_cast<std::uint8_t>(rng.next_below(256));
    EXPECT_EQ(gf_mul(a, b), gf_mul(b, a));
    EXPECT_EQ(gf_mul(a, gf_mul(b, c)), gf_mul(gf_mul(a, b), c));
    // Distributivity over the field's addition (xor).
    EXPECT_EQ(gf_mul(a, static_cast<std::uint8_t>(b ^ c)),
              gf_mul(a, b) ^ gf_mul(a, c));
  }
}

TEST(Gf256Test, PowMatchesRepeatedMultiplication) {
  Rng rng(43);
  for (int i = 0; i < 256; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next_below(256));
    const std::size_t n = rng.next_below(12);
    std::uint8_t expect = 1;
    for (std::size_t j = 0; j < n; ++j) expect = gf_mul(expect, a);
    EXPECT_EQ(gf_pow(a, n), expect) << "a=" << int(a) << " n=" << n;
  }
}

TEST(Gf256Test, MulAddMatchesScalarLoop) {
  Rng rng(47);
  std::vector<std::uint8_t> in(513), out(513), expect(513);
  for (auto& b : in) b = static_cast<std::uint8_t>(rng.next_below(256));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next_below(256));
  expect = out;
  const std::uint8_t coeff = 0x8e;
  for (std::size_t i = 0; i < in.size(); ++i)
    expect[i] = static_cast<std::uint8_t>(expect[i] ^ gf_mul(coeff, in[i]));
  gf_mul_add(coeff, in.data(), out.data(), in.size());
  EXPECT_EQ(out, expect);
}

// --- codec construction and structure ---------------------------------------

TEST(RsCodecTest, MakeRejectsInvalidShapes) {
  EXPECT_FALSE(RsCodec::make(0, 2).ok());
  EXPECT_FALSE(RsCodec::make(200, 56).ok());
  EXPECT_TRUE(RsCodec::make(1, 0).ok());
  EXPECT_TRUE(RsCodec::make(128, 127).ok());
}

TEST(RsCodecTest, SystematicMatrixTopIsIdentity) {
  auto codec = RsCodec::make(5, 3);
  ASSERT_TRUE(codec.ok());
  for (std::size_t i = 0; i < 5; ++i) {
    auto row = codec->matrix_row(i);
    for (std::size_t j = 0; j < 5; ++j)
      EXPECT_EQ(row[j], i == j ? 1 : 0) << "row " << i << " col " << j;
  }
}

TEST(RsCodecTest, ShardSizeArithmetic) {
  EXPECT_EQ(RsCodec::shard_size(4096, 4), 1024u);
  EXPECT_EQ(RsCodec::shard_size(4096, 3), 1366u);  // ceil
  EXPECT_EQ(RsCodec::shard_size(1, 8), 1u);
  EXPECT_EQ(RsCodec::shard_size(0, 4), 1u);  // never zero-sized shards
}

// --- round-trip identity across supported shapes -----------------------------

TEST(RsCodecTest, RoundTripIdentityAcrossShapes) {
  const std::size_t ks[] = {1, 2, 3, 4, 6, 8, 10, 16};
  const std::size_t rs[] = {0, 1, 2, 3, 4};
  const std::size_t lens[] = {1, 7, 1024, 4096, 4097};
  for (std::size_t k : ks) {
    for (std::size_t r : rs) {
      auto codec = RsCodec::make(k, r);
      ASSERT_TRUE(codec.ok()) << "k=" << k << " r=" << r;
      for (std::size_t len : lens) {
        const auto data = pattern_bytes(len, k * 131 + r * 17 + len);
        auto shards = codec->encode(data);
        ASSERT_TRUE(shards.ok());
        ASSERT_EQ(shards->size(), k + r);
        const std::size_t want = RsCodec::shard_size(len, k);
        for (const auto& shard : *shards) EXPECT_EQ(shard.size(), want);
        auto back = codec->decode(*shards, len);
        ASSERT_TRUE(back.ok()) << "k=" << k << " r=" << r << " len=" << len;
        EXPECT_EQ(*back, data) << "k=" << k << " r=" << r << " len=" << len;
      }
    }
  }
}

// --- reconstruction from every r-subset of losses ----------------------------

void every_loss_subset(std::size_t k, std::size_t r) {
  auto codec = RsCodec::make(k, r);
  ASSERT_TRUE(codec.ok());
  const auto data = pattern_bytes(4096, 1000 * k + r);
  auto encoded = codec->encode(data);
  ASSERT_TRUE(encoded.ok());
  const std::size_t total = k + r;
  // Every subset of shard indices with size <= r, enumerated by bitmask.
  for (std::uint32_t mask = 0; mask < (1u << total); ++mask) {
    const auto losses =
        static_cast<std::size_t>(__builtin_popcount(mask));
    if (losses == 0 || losses > r) continue;
    auto shards = *encoded;
    for (std::size_t i = 0; i < total; ++i)
      if (mask & (1u << i)) shards[i].clear();
    ASSERT_TRUE(codec->reconstruct(shards).ok())
        << "k=" << k << " r=" << r << " mask=" << mask;
    for (std::size_t i = 0; i < total; ++i)
      EXPECT_EQ(shards[i], (*encoded)[i])
          << "k=" << k << " r=" << r << " mask=" << mask << " shard " << i;
    auto back = codec->decode(shards, data.size());
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, data);
  }
  // One loss beyond r is unrecoverable and must say so (not garbage).
  if (r + 1 <= total) {
    auto shards = *encoded;
    for (std::size_t i = 0; i <= r; ++i) shards[i].clear();
    EXPECT_EQ(codec->reconstruct(shards).code(), StatusCode::kDataLoss);
  }
}

TEST(RsCodecTest, ReconstructsFromEveryLossSubset21) {
  every_loss_subset(2, 1);
}
TEST(RsCodecTest, ReconstructsFromEveryLossSubset42) {
  every_loss_subset(4, 2);
}
TEST(RsCodecTest, ReconstructsFromEveryLossSubset33) {
  every_loss_subset(3, 3);
}

// --- corruption detection ----------------------------------------------------

TEST(RsCodecTest, VerifyDetectsSingleByteCorruptionInEveryShard) {
  auto codec = RsCodec::make(4, 2);
  ASSERT_TRUE(codec.ok());
  const auto data = pattern_bytes(2048, 99);
  auto shards = codec->encode(data);
  ASSERT_TRUE(shards.ok());
  auto clean = codec->verify(*shards);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(*clean);
  Rng rng(17);
  for (std::size_t s = 0; s < shards->size(); ++s) {
    auto corrupted = *shards;
    const std::size_t at = rng.next_below(corrupted[s].size());
    corrupted[s][at] ^= std::byte{0x40};
    auto flagged = codec->verify(corrupted);
    ASSERT_TRUE(flagged.ok());
    EXPECT_FALSE(*flagged) << "corruption in shard " << s << " missed";
  }
}

TEST(RsCodecTest, VerifyRequiresAllShards) {
  auto codec = RsCodec::make(3, 2);
  ASSERT_TRUE(codec.ok());
  auto shards = codec->encode(pattern_bytes(512, 5));
  ASSERT_TRUE(shards.ok());
  (*shards)[1].clear();
  EXPECT_EQ(codec->verify(*shards).status().code(),
            StatusCode::kInvalidArgument);
}

// --- seeded codec fuzz -------------------------------------------------------

TEST(RsCodecFuzz, RandomShapesLossesAndLengthsRoundTrip) {
  Rng rng(0xEC0DEC);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t k = 1 + rng.next_below(10);
    const std::size_t r = rng.next_below(5);
    const std::size_t len = 1 + rng.next_below(8192);
    auto codec = RsCodec::make(k, r);
    ASSERT_TRUE(codec.ok());
    const auto data = pattern_bytes(len, 0xF00D + iter);
    auto shards = codec->encode(data);
    ASSERT_TRUE(shards.ok());
    // Drop a random subset of at most r shards.
    const std::size_t losses = rng.next_below(r + 1);
    std::set<std::size_t> dropped;
    while (dropped.size() < losses)
      dropped.insert(rng.next_below(k + r));
    for (std::size_t i : dropped) (*shards)[i].clear();
    auto back = codec->decode(*shards, len);
    ASSERT_TRUE(back.ok())
        << "iter=" << iter << " k=" << k << " r=" << r << " len=" << len;
    EXPECT_EQ(*back, data) << "iter=" << iter;
  }
}

}  // namespace
}  // namespace dm::ec

// ---- Part 2: the codec wired through the cluster ----------------------------

namespace dm::core {
namespace {

std::vector<std::byte> page_data(std::uint64_t id, double r = 0.5) {
  std::vector<std::byte> bytes(4096);
  workloads::fill_page(bytes, id, r, 7);
  return bytes;
}

DmSystem::Config ec_config(std::size_t nodes, std::size_t k, std::size_t r,
                           std::size_t min_shards = 0) {
  DmSystem::Config config;
  config.node_count = nodes;
  config.node.shm.arena_bytes = 4 * MiB;
  config.node.recv.arena_bytes = 8 * MiB;
  config.node.disk.capacity_bytes = 64 * MiB;
  config.service.rdmc.ec_k = k;
  config.service.rdmc.ec_r = r;
  config.service.rdmc.min_shards = min_shards;
  return config;
}

LdmcOptions remote_only() {
  LdmcOptions options;
  options.shm_fraction = 0.0;
  options.allow_disk = false;
  return options;
}

// An EC put stripes k+r shards across k+r *distinct* nodes, records the
// stripe shape and per-shard checksums in the committed location, and the
// fault-free read returns exact bytes without any decode.
TEST(EcSystemTest, PutStripesAcrossDistinctNodesAndReadsBack) {
  DmSystem system(ec_config(7, 4, 2));
  system.start();
  auto& client = system.create_server(0, 64 * MiB, remote_only());

  const auto data = page_data(1);
  ASSERT_TRUE(client.put_sync(1, data).ok());
  auto loc = client.map().lookup(1);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->tier, mem::Tier::kRemote);
  EXPECT_EQ(loc->ec_k, 4);
  EXPECT_EQ(loc->ec_r, 2);
  EXPECT_FALSE(loc->degraded);
  ASSERT_EQ(loc->replicas.size(), 6u);
  ASSERT_EQ(loc->shard_checksums.size(), 6u);
  std::set<net::NodeId> hosts;
  std::set<std::uint32_t> shards;
  for (const auto& replica : loc->replicas) {
    hosts.insert(replica.node);
    shards.insert(replica.shard);
    // 4 KiB across k=4 -> 1 KiB shards, not whole copies.
    EXPECT_EQ(replica.block_size, 1024u);
  }
  EXPECT_EQ(hosts.size(), 6u);   // one shard per node
  EXPECT_EQ(shards.size(), 6u);  // every shard index placed exactly once

  std::vector<std::byte> out(4096);
  ASSERT_TRUE(client.get_sync(1, out).ok());
  EXPECT_EQ(out, data);
  // Fault-free: served by direct shard reads, no reconstruction.
  EXPECT_EQ(system.service(0).metrics().counter_value("ec.degraded_reads"),
            0u);
  EXPECT_GE(system.service(0).metrics().counter_value("ec.encodes"), 1u);
}

// Crash any r shard hosts: every entry remains readable with exact bytes
// via reconstruction, and the decode is visible in the ec.* metrics.
TEST(EcSystemTest, DegradedReadReconstructsAfterShardHostCrashes) {
  DmSystem system(ec_config(7, 4, 2));
  system.start();
  auto& client = system.create_server(0, 64 * MiB, remote_only());

  const auto data = page_data(2);
  ASSERT_TRUE(client.put_sync(2, data).ok());
  auto loc = client.map().lookup(2);
  ASSERT_TRUE(loc.ok());

  // Crash the hosts of two *data* shards (worst case for the fast path).
  std::vector<net::NodeId> victims;
  for (const auto& replica : loc->replicas)
    if (replica.shard < 2) victims.push_back(replica.node);
  ASSERT_EQ(victims.size(), 2u);
  for (net::NodeId victim : victims)
    for (std::size_t i = 0; i < system.node_count(); ++i)
      if (system.node(i).id() == victim) system.crash_node(i);

  std::vector<std::byte> out(4096);
  ASSERT_TRUE(client.get_sync(2, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_GE(system.service(0).metrics().counter_value("ec.degraded_reads"),
            1u);
}

// A partitioned (up but unreachable) shard host also falls back to the
// degraded path — the fast path discovers the failure in flight.
TEST(EcSystemTest, DegradedReadReconstructsAroundPartition) {
  DmSystem system(ec_config(6, 2, 2));
  system.start();
  auto& client = system.create_server(0, 64 * MiB, remote_only());

  const auto data = page_data(3);
  ASSERT_TRUE(client.put_sync(3, data).ok());
  auto loc = client.map().lookup(3);
  ASSERT_TRUE(loc.ok());
  const net::NodeId self = system.node(0).id();
  net::NodeId shard0_host = net::kInvalidNode;
  for (const auto& replica : loc->replicas)
    if (replica.shard == 0) shard0_host = replica.node;
  ASSERT_NE(shard0_host, net::kInvalidNode);
  system.fabric().set_link_up(self, shard0_host, false);
  system.fabric().set_link_up(shard0_host, self, false);

  std::vector<std::byte> out(4096);
  ASSERT_TRUE(client.get_sync(3, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_GE(system.service(0).metrics().counter_value("ec.degraded_reads"),
            1u);

  system.fabric().set_link_up(self, shard0_host, true);
  system.fabric().set_link_up(shard0_host, self, true);
}

// Sub-page reads on the fast path: a range that lives inside one shard
// reads only that shard, byte-exact.
TEST(EcSystemTest, RangeReadsServeFromCoveringShards) {
  DmSystem system(ec_config(7, 4, 2));
  system.start();
  auto& client = system.create_server(0, 64 * MiB, remote_only());
  const auto data = page_data(4);
  ASSERT_TRUE(client.put_sync(4, data).ok());

  // Within shard 1 (bytes 1024..2047), and straddling shards 2/3.
  std::vector<std::byte> mid(256);
  ASSERT_TRUE(client.get_range_sync(4, 1500, mid).ok());
  EXPECT_TRUE(std::equal(mid.begin(), mid.end(), data.begin() + 1500));
  std::vector<std::byte> straddle(1024);
  ASSERT_TRUE(client.get_range_sync(4, 2560, straddle).ok());
  EXPECT_TRUE(
      std::equal(straddle.begin(), straddle.end(), data.begin() + 2560));
}

// The repair scan re-encodes the shards lost to a crash onto fresh nodes:
// the stripe returns to k+r distinct live hosts, the degraded flag clears,
// and ec.shards_repaired counts the re-encoded shards.
TEST(EcSystemTest, RepairScanReencodesLostShards) {
  auto config = ec_config(8, 4, 2, /*min_shards=*/4);
  config.repair.enabled = true;
  config.repair.scan_period = 500 * kMilli;
  DmSystem system(config);
  system.start();
  auto& client = system.create_server(0, 64 * MiB, remote_only());

  const auto data = page_data(5);
  ASSERT_TRUE(client.put_sync(5, data).ok());
  auto loc = client.map().lookup(5);
  ASSERT_TRUE(loc.ok());
  const net::NodeId victim = loc->replicas.front().node;
  const std::uint32_t lost_shard = loc->replicas.front().shard;
  for (std::size_t i = 0; i < system.node_count(); ++i)
    if (system.node(i).id() == victim) system.crash_node(i);

  // Let failure detection fire and the repair scans run.
  system.run_for(15 * kSecond);

  loc = client.map().lookup(5);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->replicas.size(), 6u);
  EXPECT_FALSE(loc->degraded);
  std::set<std::uint32_t> shards;
  for (const auto& replica : loc->replicas) {
    shards.insert(replica.shard);
    EXPECT_NE(replica.node, victim);
  }
  EXPECT_TRUE(shards.count(lost_shard)) << "lost shard not re-encoded";
  EXPECT_EQ(shards.size(), 6u);
  EXPECT_GE(system.total_counter("ec.shards_repaired"), 1u);

  std::vector<std::byte> out(4096);
  ASSERT_TRUE(client.get_sync(5, out).ok());
  EXPECT_EQ(out, data);
}

// min_shards floor: with only k+1 candidate hosts alive, the put degrades
// to a short stripe (still >= k) instead of failing, and repair tops it
// back up once capacity returns.
TEST(EcSystemTest, ShortPlacementDegradesToMinShards) {
  DmSystem system(ec_config(7, 2, 2, /*min_shards=*/2));
  system.start();
  auto& client = system.create_server(0, 64 * MiB, remote_only());

  // Kill three nodes; 3 candidates remain (self excluded) for 4 shards.
  system.crash_node(4);
  system.crash_node(5);
  system.crash_node(6);
  system.run_for(10 * kSecond);

  ASSERT_TRUE(client.put_sync(6, page_data(6)).ok());
  auto loc = client.map().lookup(6);
  ASSERT_TRUE(loc.ok());
  ASSERT_EQ(loc->tier, mem::Tier::kRemote);
  EXPECT_EQ(loc->replicas.size(), 3u);
  EXPECT_TRUE(loc->degraded);

  std::vector<std::byte> out(4096);
  ASSERT_TRUE(client.get_sync(6, out).ok());
  EXPECT_EQ(out, page_data(6));

  // Capacity returns; one scan restores the full stripe.
  system.recover_node(4);
  system.recover_node(5);
  system.recover_node(6);
  system.run_for(10 * kSecond);
  bool scanned = false;
  system.repair(0).scan_tick([&]() { scanned = true; });
  ASSERT_TRUE(system.simulator().run_until_flag(scanned));
  loc = client.map().lookup(6);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->replicas.size(), 4u);
  EXPECT_FALSE(loc->degraded);
}

// EC memory economics (the Hydra claim): hosted bytes across the cluster
// for (k=4, r=2) stay at ~1.5x the logical bytes — strictly below the 2x
// floor of replication factor 2.
TEST(EcSystemTest, MemoryOverheadBeatsReplication) {
  DmSystem system(ec_config(8, 4, 2));
  system.start();
  auto& client = system.create_server(0, 64 * MiB, remote_only());
  constexpr std::uint64_t kEntries = 32;
  std::uint64_t logical = 0;
  for (std::uint64_t id = 0; id < kEntries; ++id) {
    ASSERT_TRUE(client.put_sync(id, page_data(id)).ok());
    logical += 4096;
  }
  std::uint64_t hosted = 0;
  client.map().for_each([&](mem::EntryId, const mem::EntryLocation& loc) {
    for (const auto& replica : loc.replicas) hosted += replica.block_size;
  });
  const double overhead =
      static_cast<double>(hosted) / static_cast<double>(logical);
  EXPECT_NEAR(overhead, 1.5, 0.01);  // (k+r)/k with 1 KiB shards
}

// Same-seed determinism at the system level: two identical EC runs with
// crashes and repair produce byte-identical metric exports.
TEST(EcSystemTest, SameSeedRunsAreByteIdentical) {
  auto run = [](std::uint64_t seed) {
    auto config = ec_config(7, 4, 2, /*min_shards=*/4);
    config.seed = seed;
    config.repair.enabled = true;
    config.repair.scan_period = 500 * kMilli;
    DmSystem system(config);
    system.start();
    auto& client = system.create_server(0, 64 * MiB, remote_only());
    for (std::uint64_t id = 0; id < 12; ++id)
      EXPECT_TRUE(client.put_sync(id, page_data(id)).ok());
    system.crash_node(3);
    system.run_for(12 * kSecond);
    std::vector<std::byte> out(4096);
    for (std::uint64_t id = 0; id < 12; ++id)
      EXPECT_TRUE(client.get_sync(id, out).ok());
    return system.hub().snapshot_json();
  };
  const std::string a = run(777);
  const std::string b = run(777);
  EXPECT_EQ(a, b);
  EXPECT_NE(run(778), a);  // the seed actually steers the run
}

}  // namespace
}  // namespace dm::core
