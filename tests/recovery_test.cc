// Targeted fault-recovery regressions (§IV.D hardening): crash during a
// replicated put, partition during a failover read, repair racing an
// eviction, and backoff-capped retries ending in the degraded disk
// fallback. Each scenario is deterministic — faults are scheduled at fixed
// virtual times against a seeded cluster.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/checksum.h"
#include "common/histogram.h"
#include "common/status.h"
#include "core/dm_system.h"
#include "core/ldmc.h"
#include "core/node_service.h"
#include "mem/memory_map.h"
#include "core/repair_service.h"
#include "sim/chaos_schedule.h"
#include "swap/swap_manager.h"
#include "workloads/page_content.h"

namespace dm::core {
namespace {

std::vector<std::byte> page_data(std::uint64_t id, double r = 0.5) {
  std::vector<std::byte> bytes(4096);
  workloads::fill_page(bytes, id, r, 7);
  return bytes;
}

DmSystem::Config cluster_config(std::size_t nodes, std::size_t replication,
                                std::size_t min_replicas = 0) {
  DmSystem::Config config;
  config.node_count = nodes;
  config.node.shm.arena_bytes = 4 * MiB;
  config.node.recv.arena_bytes = 8 * MiB;
  config.node.disk.capacity_bytes = 64 * MiB;
  config.service.rdmc.replication = replication;
  config.service.rdmc.min_replicas = min_replicas;
  return config;
}

LdmcOptions remote_only() {
  LdmcOptions options;
  options.shm_fraction = 0.0;
  options.allow_disk = false;
  return options;
}

// A node crashing in the middle of the §IV.D replicated-put transaction
// must leave no partial state: either the put commits (and the data is
// readable, failing over around the crashed replica) or it rolls back (and
// the entry is not mapped at all).
TEST(RecoveryTest, CrashDuringReplicatedPutRollsBackOrCommits) {
  DmSystem system(cluster_config(5, 3));
  system.start();
  auto& client = system.create_server(0, 64 * MiB, remote_only());

  const auto data = page_data(1);
  bool completed = false;
  Status result;
  client.put(1, data, [&](const Status& s) {
    result = s;
    completed = true;
  });
  // Mid-transaction: after placement + alloc RPCs have been issued, before
  // all replica writes have settled.
  system.simulator().schedule_at(system.simulator().now() + 30 * kMicro,
                                 [&]() { system.crash_node(2); });
  ASSERT_TRUE(system.simulator().run_until_flag(completed));

  if (result.ok()) {
    auto loc = client.map().lookup(1);
    ASSERT_TRUE(loc.ok());
    EXPECT_EQ(loc->tier, mem::Tier::kRemote);
    std::vector<std::byte> out(4096);
    ASSERT_TRUE(client.get_sync(1, out).ok());
    EXPECT_EQ(out, data);
  } else {
    // All-or-nothing: a failed transaction must not leave the entry mapped.
    EXPECT_FALSE(client.map().contains(1));
  }

  // The cluster stays usable: after recovery and re-detection, a fresh put
  // reaches the full factor.
  system.recover_node(2);
  system.run_for(10 * kSecond);
  ASSERT_TRUE(client.put_sync(2, page_data(2)).ok());
  EXPECT_EQ(client.map().lookup(2)->replicas.size(), 3u);
}

// A partition between the reader and the first replica host must cost one
// failover hop, not an error: the read is served from the second replica.
TEST(RecoveryTest, PartitionDuringFailoverRead) {
  DmSystem system(cluster_config(4, 2));
  system.start();
  auto& client = system.create_server(0, 64 * MiB, remote_only());

  const auto data = page_data(3);
  ASSERT_TRUE(client.put_sync(3, data).ok());
  auto loc = client.map().lookup(3);
  ASSERT_TRUE(loc.ok());
  ASSERT_EQ(loc->replicas.size(), 2u);

  const net::NodeId self = system.node(0).id();
  const net::NodeId first = loc->replicas.front().node;
  system.fabric().set_link_up(self, first, false);
  system.fabric().set_link_up(first, self, false);

  std::vector<std::byte> out(4096);
  ASSERT_TRUE(client.get_sync(3, out).ok());
  EXPECT_EQ(out, data);
  EXPECT_GE(system.node(0).recv_pool().metrics().counter_value(
                "rdmc.read_failovers"),
            1u);

  // Healed: reads work again (from either side).
  system.fabric().set_link_up(self, first, true);
  system.fabric().set_link_up(first, self, true);
  std::fill(out.begin(), out.end(), std::byte{0});
  ASSERT_TRUE(client.get_sync(3, out).ok());
  EXPECT_EQ(out, data);
}

// Repair must never resurrect an entry the application removed while the
// repair was in flight, and must free the blocks it provisionally wrote.
TEST(RecoveryTest, RepairRacingEvictionDoesNotResurrect) {
  DmSystem system(cluster_config(3, 2, /*min_replicas=*/1));
  system.start();
  LdmcOptions options;
  options.shm_fraction = 0.0;  // remote first, disk fallback allowed
  auto& client = system.create_server(0, 64 * MiB, options);
  const cluster::ServerId server = client.server();

  // Cut node 0 off so the put degrades to disk.
  const net::NodeId self = system.node(0).id();
  for (std::size_t peer = 1; peer < 3; ++peer) {
    system.fabric().set_link_up(self, system.node(peer).id(), false);
    system.fabric().set_link_up(system.node(peer).id(), self, false);
  }
  ASSERT_TRUE(client.put_sync(7, page_data(7)).ok());
  auto loc = client.map().lookup(7);
  ASSERT_TRUE(loc.ok());
  ASSERT_EQ(loc->tier, mem::Tier::kDisk);
  ASSERT_TRUE(loc->degraded);
  for (std::size_t peer = 1; peer < 3; ++peer) {
    system.fabric().set_link_up(self, system.node(peer).id(), true);
    system.fabric().set_link_up(system.node(peer).id(), self, true);
  }
  system.run_for(1 * kSecond);

  // Start the re-promotion, then remove the entry before it completes.
  bool repaired = false;
  system.service(0).repair_entry(server, 7,
                                 [&](const Status&) { repaired = true; });
  ASSERT_TRUE(client.remove_sync(7).ok());
  ASSERT_TRUE(system.simulator().run_until_flag(repaired));
  system.run_for(1 * kSecond);

  EXPECT_FALSE(client.map().contains(7));
  EXPECT_EQ(system.service(0).metrics().counter_value("ldms.repair_stale"),
            1u);
  // The provisional replicas were freed — no leaked hosted blocks anywhere.
  std::size_t hosted = 0;
  for (std::size_t i = 0; i < system.node_count(); ++i)
    hosted += system.service(i).rdms().hosted_blocks();
  EXPECT_EQ(hosted, 0u);
}

// When every remote candidate is dead, bounded retries with capped backoff
// must end in the degraded disk fallback — not an error and not an
// unbounded retry storm.
TEST(RecoveryTest, BackoffCapReachedThenDiskFallback) {
  auto config = cluster_config(3, 2);
  config.rpc_retry.max_attempts = 4;
  config.rpc_retry.base_backoff = 1 * kMilli;
  config.rpc_retry.max_backoff = 2 * kMilli;  // cap reached by attempt 3
  DmSystem system(config);
  system.start();
  LdmcOptions options;
  options.shm_fraction = 0.0;
  auto& client = system.create_server(0, 64 * MiB, options);

  // Both peers die; membership has not noticed yet, so placement still
  // targets them and every alloc RPC must retry until the policy gives up.
  system.crash_node(1);
  system.crash_node(2);
  ASSERT_TRUE(client.put_sync(9, page_data(9)).ok());

  auto loc = client.map().lookup(9);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->tier, mem::Tier::kDisk);
  EXPECT_TRUE(loc->degraded);
  EXPECT_EQ(system.service(0).metrics().counter_value(
                "ldms.degraded_to_disk"),
            1u);

  auto& rpc_metrics = system.node(0).rpc().metrics();
  EXPECT_GE(rpc_metrics.counter_value("rpc.retries"), 2u);
  const Histogram* backoff = rpc_metrics.find_histogram("net.backoff_ns");
  ASSERT_NE(backoff, nullptr);
  EXPECT_GE(backoff->count(), 2u);
  // Capped: no recorded backoff exceeds the policy ceiling.
  EXPECT_LE(backoff->max(),
            static_cast<std::uint64_t>(config.rpc_retry.backoff_ceiling()));
}

// A degraded put (short replica set accepted under the min_replicas floor)
// is topped back up to the full factor by the repair scan once capacity
// returns, and the degraded flag clears.
TEST(RecoveryTest, DegradedPutToppedUpByRepairScan) {
  DmSystem system(cluster_config(4, 2, /*min_replicas=*/1));
  system.start();
  auto& client = system.create_server(0, 64 * MiB, remote_only());

  // Lose all but one candidate, and let membership notice.
  system.crash_node(2);
  system.crash_node(3);
  system.run_for(10 * kSecond);

  ASSERT_TRUE(client.put_sync(11, page_data(11)).ok());
  auto loc = client.map().lookup(11);
  ASSERT_TRUE(loc.ok());
  ASSERT_EQ(loc->tier, mem::Tier::kRemote);
  ASSERT_EQ(loc->replicas.size(), 1u);
  ASSERT_TRUE(loc->degraded);
  EXPECT_GE(system.service(0).metrics().counter_value(
                "ldms.put_remote_degraded"),
            1u);

  // Capacity returns; one repair scan restores the factor.
  system.recover_node(2);
  system.recover_node(3);
  system.run_for(10 * kSecond);
  bool scanned = false;
  system.repair(0).scan_tick([&]() { scanned = true; });
  ASSERT_TRUE(system.simulator().run_until_flag(scanned));

  loc = client.map().lookup(11);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->replicas.size(), 2u);
  EXPECT_FALSE(loc->degraded);
  EXPECT_GE(system.service(0).metrics().counter_value("repair.requeued"), 1u);
  EXPECT_GE(system.service(0).metrics().counter_value("repair.completed"),
            1u);
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(client.get_sync(11, out).ok());
  EXPECT_EQ(out, page_data(11));
}

// --- live region migration (cluster balancing) -------------------------------

// Index of the node whose id is `id` (ids and indices coincide today, but
// the tests shouldn't bake that in).
std::size_t node_index(DmSystem& system, net::NodeId id) {
  for (std::size_t i = 0; i < system.node_count(); ++i)
    if (system.node(i).id() == id) return i;
  ADD_FAILURE() << "unknown node id " << id;
  return 0;
}

// The replica host (excluding the client's own node) carrying the most of
// the client's entries — the natural migration source.
net::NodeId busiest_host(Ldmc& client, net::NodeId self) {
  std::map<net::NodeId, int> counts;
  client.map().for_each([&](mem::EntryId, const mem::EntryLocation& loc) {
    if (loc.tier != mem::Tier::kRemote) return;
    for (const auto& replica : loc.replicas)
      if (replica.node != self) ++counts[replica.node];
  });
  net::NodeId best = net::kInvalidNode;
  int most = 0;
  for (const auto& [node, count] : counts) {
    if (count > most) {
      best = node;
      most = count;
    }
  }
  return best;
}

// Live migration is copy-then-redirect: every get issued while entries are
// being migrated off a node — and every get afterwards — must return the
// exact pre-migration bytes, and the vacated node ends up hosting none of
// them.
TEST(RecoveryTest, MigrationServesPreMigrationBytesThroughout) {
  DmSystem system(cluster_config(4, 1));
  system.start();
  auto& client = system.create_server(0, 64 * MiB, remote_only());
  constexpr std::uint64_t kEntries = 24;
  for (std::uint64_t id = 0; id < kEntries; ++id)
    ASSERT_TRUE(client.put_sync(id, page_data(id)).ok());

  const net::NodeId self = system.node(0).id();
  const net::NodeId hot = busiest_host(client, self);
  ASSERT_NE(hot, net::kInvalidNode);
  const std::size_t hot_index = node_index(system, hot);
  const std::size_t on_hot =
      client.map().entries_with_replica_on(hot).size();
  ASSERT_GT(on_hot, 0u);

  // Kick the offload, then read every entry while the migrations are in
  // flight — get_sync drives the simulator, so these reads interleave with
  // the copy-then-redirect steps.
  std::size_t accepted = 0;
  bool offload_done = false;
  system.service(hot_index).offload_hot_node(kEntries, [&](std::size_t n) {
    accepted = n;
    offload_done = true;
  });
  std::vector<std::byte> out(4096);
  for (std::uint64_t id = 0; id < kEntries; ++id) {
    ASSERT_TRUE(client.get_sync(id, out).ok()) << "entry " << id;
    EXPECT_EQ(out, page_data(id)) << "entry " << id;
  }
  ASSERT_TRUE(system.simulator().run_until_flag(offload_done));
  EXPECT_EQ(accepted, on_hot);
  system.run_for(2 * kSecond);

  // Redirect complete: the hot node hosts none of the client's entries, the
  // owner counted the moves, and every entry still reads pre-migration
  // bytes from its new home.
  EXPECT_TRUE(client.map().entries_with_replica_on(hot).empty());
  auto& owner_metrics = system.service(0).metrics();
  EXPECT_EQ(owner_metrics.counter_value("ldms.migrated_entries"), on_hot);
  EXPECT_EQ(owner_metrics.counter_value("placement.rebalance_moves"), on_hot);
  const Histogram* migrate_ns =
      owner_metrics.find_histogram("cluster.migrate_ns");
  ASSERT_NE(migrate_ns, nullptr);
  EXPECT_EQ(migrate_ns->count(), on_hot);
  for (std::uint64_t id = 0; id < kEntries; ++id) {
    ASSERT_TRUE(client.get_sync(id, out).ok()) << "entry " << id;
    EXPECT_EQ(out, page_data(id)) << "entry " << id;
    auto loc = client.map().lookup(id);
    ASSERT_TRUE(loc.ok());
    for (const auto& replica : loc->replicas) EXPECT_NE(replica.node, hot);
  }
}

// A crash in the middle of a migration round must never lose the source
// copy: the old replica is freed only after the new location commits, so
// whichever side dies mid-flight, every entry stays readable with exact
// pre-migration bytes and no data-loss event fires.
TEST(RecoveryTest, CrashMidMigrationNeverLosesSourceCopy) {
  DmSystem system(cluster_config(5, 2));
  system.start();
  auto& client = system.create_server(0, 64 * MiB, remote_only());
  constexpr std::uint64_t kEntries = 16;
  for (std::uint64_t id = 0; id < kEntries; ++id)
    ASSERT_TRUE(client.put_sync(id, page_data(id)).ok());

  const net::NodeId self = system.node(0).id();
  const net::NodeId hot = busiest_host(client, self);
  ASSERT_NE(hot, net::kInvalidNode);
  const std::size_t hot_index = node_index(system, hot);
  ASSERT_FALSE(client.map().entries_with_replica_on(hot).empty());

  // Scripted chaos: the migration source crashes 25 us into the offload —
  // after the migrate-region RPC lands, while the copy-then-redirect steps
  // are in flight — and stays down for 200 ms.
  sim::ChaosSchedule::Hooks hooks;
  hooks.crash_node = [&](sim::ChaosSchedule::NodeRef n) {
    system.crash_node(n);
  };
  hooks.recover_node = [&](sim::ChaosSchedule::NodeRef n) {
    system.recover_node(n);
  };
  sim::ChaosSchedule chaos(system.failures(), hooks);
  chaos.crash(system.simulator().now() + 25 * kMicro, hot, 200 * kMilli);

  bool offload_done = false;
  system.service(hot_index).offload_hot_node(
      kEntries, [&](std::size_t) { offload_done = true; });
  ASSERT_TRUE(system.simulator().run_until_flag(offload_done));
  system.run_for(2 * kSecond);
  EXPECT_EQ(chaos.crashes_fired(), 1u);

  // Conservation: replication 2 plus commit-before-free means the single
  // crash can't orphan anything — no service saw data loss, and every
  // entry reads back its pre-migration bytes (the source node is up again
  // by now, so even unmigrated entries are reachable).
  std::uint64_t lost = 0;
  for (std::size_t i = 0; i < system.node_count(); ++i)
    lost += system.service(i).data_loss_entries();
  EXPECT_EQ(lost, 0u);
  std::vector<std::byte> out(4096);
  for (std::uint64_t id = 0; id < kEntries; ++id) {
    ASSERT_TRUE(client.get_sync(id, out).ok()) << "entry " << id;
    EXPECT_EQ(out, page_data(id)) << "entry " << id;
  }
}

// --- crash during a write-back flush (adaptive swap-path engine) ------------

swap::SwapManager::Config wb_swap_config() {
  swap::SwapManager::Config config;
  config.resident_pages = 16;
  config.batch_pages = 8;
  config.compression = swap::CompressionMode::kFourGranularity;
  config.writeback_batches = 4;
  // Long deadline: batches sit staged until the barrier, so the crash is
  // guaranteed to land while acknowledged pages are only in DRAM staging.
  config.writeback_flush_delay = 50 * kMilli;
  return config;
}

void swap_content(std::uint64_t page, std::span<std::byte> out) {
  workloads::fill_page(out, page, 0.4, 23);
}

std::uint64_t swap_checksum(std::uint64_t page) {
  std::vector<std::byte> bytes(4096);
  swap_content(page, bytes);
  return fnv1a(bytes);
}

// Every remote candidate dies while swap-out batches are staged in the
// write-back buffer. The barrier's flushes must retry, give up, and land in
// the degraded disk fallback: the barrier succeeds, no acknowledged page is
// lost, and every page is durable (if degraded) down-tier.
TEST(RecoveryTest, CrashDuringWriteBackFlushFallsBackToDisk) {
  auto config = cluster_config(3, 2, /*min_replicas=*/1);
  config.rpc_retry.max_attempts = 3;
  config.rpc_retry.base_backoff = 500 * kMicro;
  config.rpc_retry.max_backoff = 2 * kMilli;
  DmSystem system(config);
  system.start();
  LdmcOptions options;
  options.shm_fraction = 0.0;  // all batches remote => the crash hits them
  auto& client = system.create_server(0, 64 * MiB, options);
  swap::SwapManager manager(client, wb_swap_config(), swap_content);

  for (std::uint64_t p = 0; p < 48; ++p)
    ASSERT_TRUE(manager.touch(p, /*write=*/true).ok());
  ASSERT_GT(manager.wb_staged_batches(), 0u);

  // Both remote peers die; membership has not noticed, so the flush puts
  // still target them and must fail over to the local disk, degraded.
  system.crash_node(1);
  system.crash_node(2);
  ASSERT_TRUE(manager.wb_barrier().ok());
  EXPECT_EQ(manager.wb_staged_batches(), 0u);
  EXPECT_EQ(manager.wb_in_flight(), 0u);
  EXPECT_GE(manager.metrics().counter_value("swap.degraded_batches"), 1u);
  EXPECT_GE(system.service(0).metrics().counter_value(
                "ldms.degraded_to_disk"),
            1u);

  // No acknowledged page lost: every page is recoverable with exact bytes.
  for (std::uint64_t p = 0; p < 48; ++p) {
    ASSERT_TRUE(manager.touch(p).ok()) << "page " << p;
    auto bytes = manager.resident_bytes(p);
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(fnv1a(*bytes), swap_checksum(p)) << "page " << p;
  }
}

// Same crash, but with the disk fallback disabled: the flush puts fail
// outright. The write-back machinery must roll every staged page back to
// resident+dirty — the barrier reports the failure, but nothing is lost,
// and once capacity returns a plain flush drains everything.
TEST(RecoveryTest, CrashDuringWriteBackFlushRollsBackWithoutLoss) {
  auto config = cluster_config(3, 2, /*min_replicas=*/1);
  config.rpc_retry.max_attempts = 3;
  config.rpc_retry.base_backoff = 500 * kMicro;
  config.rpc_retry.max_backoff = 2 * kMilli;
  DmSystem system(config);
  system.start();
  LdmcOptions options;
  options.shm_fraction = 0.0;
  options.allow_disk = false;  // no fallback tier at all
  auto& client = system.create_server(0, 64 * MiB, options);
  swap::SwapManager manager(client, wb_swap_config(), swap_content);

  for (std::uint64_t p = 0; p < 48; ++p)
    ASSERT_TRUE(manager.touch(p, /*write=*/true).ok());
  ASSERT_GT(manager.wb_staged_batches(), 0u);

  system.crash_node(1);
  system.crash_node(2);
  const Status barrier = manager.wb_barrier();
  EXPECT_FALSE(barrier.ok());
  EXPECT_GE(manager.metrics().counter_value("swap.wb.flush_failures"), 1u);
  EXPECT_EQ(manager.wb_staged_batches(), 0u);
  EXPECT_EQ(manager.wb_in_flight(), 0u);

  // Conservation: every page survives, either resident (rolled back,
  // dirty again) or still backed by an entry that flushed before the
  // crash. Resident copies carry exact bytes.
  for (std::uint64_t p = 0; p < 48; ++p) {
    ASSERT_TRUE(manager.is_resident(p) || manager.is_backed(p))
        << "page " << p << " lost";
    if (manager.is_resident(p)) {
      auto bytes = manager.resident_bytes(p);
      ASSERT_TRUE(bytes.ok());
      EXPECT_EQ(fnv1a(*bytes), swap_checksum(p)) << "page " << p;
    }
  }

  // Capacity returns; the rolled-back pages drain through a normal flush
  // and everything reads back intact.
  system.recover_node(1);
  system.recover_node(2);
  system.run_for(10 * kSecond);
  ASSERT_TRUE(manager.flush_all().ok());
  EXPECT_EQ(manager.resident_count(), 0u);
  for (std::uint64_t p = 0; p < 48; ++p) {
    ASSERT_TRUE(manager.touch(p).ok()) << "page " << p;
    auto bytes = manager.resident_bytes(p);
    ASSERT_TRUE(bytes.ok());
    EXPECT_EQ(fnv1a(*bytes), swap_checksum(p)) << "page " << p;
  }
}

// --- erasure-coded shard repair under fire -----------------------------------

DmSystem::Config ec_cluster_config(std::size_t nodes, std::size_t k,
                                   std::size_t r, std::size_t min_shards) {
  DmSystem::Config config;
  config.node_count = nodes;
  config.node.shm.arena_bytes = 4 * MiB;
  config.node.recv.arena_bytes = 8 * MiB;
  config.node.disk.capacity_bytes = 64 * MiB;
  config.service.rdmc.ec_k = k;
  config.service.rdmc.ec_r = r;
  config.service.rdmc.min_shards = min_shards;
  return config;
}

// A node crashing in the middle of an EC shard repair (after the surviving
// shards were read, while the re-encoded shard is being placed) must leave
// the stripe either topped up or still-degraded-but-readable — never
// corrupted, never below k live shards, and never leaking provisional
// blocks. A later scan completes the repair.
TEST(RecoveryTest, CrashDuringShardRepairNeverLosesData) {
  DmSystem system(ec_cluster_config(8, 2, 2, /*min_shards=*/2));
  system.start();
  auto& client = system.create_server(0, 64 * MiB, remote_only());
  const cluster::ServerId server = client.server();

  const auto data = page_data(21);
  ASSERT_TRUE(client.put_sync(21, data).ok());
  auto loc = client.map().lookup(21);
  ASSERT_TRUE(loc.ok());
  ASSERT_EQ(loc->replicas.size(), 4u);

  // Lose one shard host; let membership notice.
  const net::NodeId first_victim = loc->replicas[0].node;
  system.crash_node(node_index(system, first_victim));
  system.run_for(10 * kSecond);

  // Kick the repair, and crash a *second* shard host mid-repair — 30 us in,
  // after the survivor reads have been issued.
  loc = client.map().lookup(21);
  ASSERT_TRUE(loc.ok());
  net::NodeId second_victim = net::kInvalidNode;
  for (const auto& replica : loc->replicas)
    if (system.fabric().node_up(replica.node)) {
      second_victim = replica.node;
      break;
    }
  ASSERT_NE(second_victim, net::kInvalidNode);
  bool repaired = false;
  system.service(0).repair_entry(server, 21,
                                 [&](const Status&) { repaired = true; });
  system.simulator().schedule_at(
      system.simulator().now() + 30 * kMicro,
      [&]() { system.crash_node(node_index(system, second_victim)); });
  ASSERT_TRUE(system.simulator().run_until_flag(repaired));
  system.run_for(10 * kSecond);

  // Whatever the interleaving, the bytes survive: k=2 shards still live.
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(client.get_sync(21, out).ok());
  EXPECT_EQ(out, data);
  std::uint64_t lost = 0;
  for (std::size_t i = 0; i < system.node_count(); ++i)
    lost += system.service(i).data_loss_entries();
  EXPECT_EQ(lost, 0u);

  // Further scans finish the job: full stripe on live nodes, byte-exact.
  for (int round = 0; round < 4; ++round) {
    bool scanned = false;
    system.repair(0).scan_tick([&]() { scanned = true; });
    ASSERT_TRUE(system.simulator().run_until_flag(scanned));
    system.run_for(1 * kSecond);
  }
  loc = client.map().lookup(21);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->replicas.size(), 4u);
  EXPECT_FALSE(loc->degraded);
  std::set<std::uint32_t> shards;
  for (const auto& replica : loc->replicas) {
    EXPECT_TRUE(system.fabric().node_up(replica.node));
    shards.insert(replica.shard);
  }
  EXPECT_EQ(shards.size(), 4u);
  std::fill(out.begin(), out.end(), std::byte{0});
  ASSERT_TRUE(client.get_sync(21, out).ok());
  EXPECT_EQ(out, data);
}

// Shard repair must never resurrect an entry removed while the re-encode
// was in flight — the stale re-check frees the freshly placed shards.
TEST(RecoveryTest, ShardRepairRacingRemovalDoesNotResurrect) {
  DmSystem system(ec_cluster_config(8, 2, 2, /*min_shards=*/2));
  system.start();
  auto& client = system.create_server(0, 64 * MiB, remote_only());
  const cluster::ServerId server = client.server();

  ASSERT_TRUE(client.put_sync(22, page_data(22)).ok());
  auto loc = client.map().lookup(22);
  ASSERT_TRUE(loc.ok());
  const std::size_t crashed = node_index(system, loc->replicas[0].node);
  system.crash_node(crashed);

  // Start the shard repair immediately (the fabric already knows the node
  // is gone; waiting for membership would let the automatic node-down
  // repair top the stripe up first), and remove the entry mid-repair — after the
  // survivor reads and the re-encode, while the fresh shard is being
  // placed. The repair's commit must then detect the removal and free the
  // shard it just wrote instead of resurrecting the entry.
  bool repaired = false;
  system.service(0).repair_entry(server, 22,
                                 [&](const Status&) { repaired = true; });
  bool removed = false;
  system.simulator().schedule_at(system.simulator().now() + 12 * kMicro,
                                 [&]() {
                                   client.remove(22, [&](const Status& s) {
                                     EXPECT_TRUE(s.ok());
                                     removed = true;
                                   });
                                 });
  ASSERT_TRUE(system.simulator().run_until_flag(repaired));
  ASSERT_TRUE(system.simulator().run_until_flag(removed));
  system.run_for(1 * kSecond);

  EXPECT_FALSE(client.map().contains(22));
  EXPECT_GE(system.service(0).metrics().counter_value("ldms.repair_stale"),
            1u);
  // No leaked hosted blocks on any live node (recover the crashed node
  // first: its pool dropped with the crash, recovery just re-registers it
  // empty so the census covers the whole cluster).
  system.recover_node(crashed);
  std::size_t hosted = 0;
  for (std::size_t i = 0; i < system.node_count(); ++i)
    hosted += system.service(i).rdms().hosted_blocks();
  EXPECT_EQ(hosted, 0u);
}

}  // namespace
}  // namespace dm::core
