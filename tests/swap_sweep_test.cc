// Parameterized property sweeps over the swap layer configuration space:
// (batch window x compression mode x resident fraction) and zswap pools,
// checking integrity and conservation invariants on every combination.
#include <gtest/gtest.h>

#include <tuple>

#include "common/checksum.h"
#include "common/rng.h"
#include "core/dm_system.h"
#include "core/ldmc.h"
#include "core/node_service.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "workloads/page_content.h"

namespace dm::swap {
namespace {

constexpr std::uint64_t kWorkingSet = 96;
constexpr double kContentRandom = 0.25;

struct SweepRig {
  explicit SweepRig(SwapManager::Config swap_config,
                    core::LdmcOptions ldmc = {}) {
    core::DmSystem::Config config;
    config.node_count = 4;
    config.node.shm.arena_bytes = 8 * MiB;
    config.node.recv.arena_bytes = 8 * MiB;
    config.node.disk.capacity_bytes = 64 * MiB;
    config.service.rdmc.replication = 1;
    system = std::make_unique<core::DmSystem>(config);
    system->start();
    client = &system->create_server(0, 64 * MiB, ldmc);
    manager = std::make_unique<SwapManager>(
        *client, swap_config, [](std::uint64_t page, std::span<std::byte> out) {
          workloads::fill_page(out, page, kContentRandom, 13);
        });
  }
  std::unique_ptr<core::DmSystem> system;
  core::Ldmc* client = nullptr;
  std::unique_ptr<SwapManager> manager;
};

std::uint64_t expected_checksum(std::uint64_t page) {
  std::vector<std::byte> bytes(kPageBytes);
  workloads::fill_page(bytes, page, kContentRandom, 13);
  return fnv1a(bytes);
}

using SweepParam = std::tuple<std::size_t /*batch*/, int /*compression*/,
                              std::uint64_t /*resident*/, bool /*pbs*/>;

class SwapSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SwapSweep, MixedTraceKeepsEveryPageIntact) {
  const auto [batch, compression, resident, pbs] = GetParam();
  SwapManager::Config config;
  config.resident_pages = resident;
  config.batch_pages = batch;
  config.proactive_batch_swap_in = pbs;
  config.compression = static_cast<CompressionMode>(compression);
  SweepRig rig(config);

  Rng rng(4242);
  for (int step = 0; step < 500; ++step) {
    std::uint64_t page;
    if (rng.bernoulli(0.5)) {
      page = rng.next_below(kWorkingSet);  // uniform
    } else {
      page = step % kWorkingSet;  // scan component
    }
    const bool write = rng.bernoulli(0.3);
    ASSERT_TRUE(rig.manager->touch(page, write).ok()) << "step " << step;
    // Invariant: resident set bounded.
    ASSERT_LE(rig.manager->resident_count(), resident);
    // Invariant: the touched page is resident and intact.
    auto bytes = rig.manager->resident_bytes(page);
    ASSERT_TRUE(bytes.ok());
    ASSERT_EQ(fnv1a(*bytes), expected_checksum(page)) << "page " << page;
  }
  // Invariant: every page ever touched is still reachable and intact.
  for (std::uint64_t page = 0; page < kWorkingSet; ++page) {
    ASSERT_TRUE(rig.manager->touch(page).ok());
    auto bytes = rig.manager->resident_bytes(page);
    ASSERT_TRUE(bytes.ok());
    ASSERT_EQ(fnv1a(*bytes), expected_checksum(page)) << "final " << page;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ConfigGrid, SwapSweep,
    ::testing::Combine(::testing::Values<std::size_t>(1, 4, 8),
                       ::testing::Values(0, 1, 2),  // off / 2-gran / 4-gran
                       ::testing::Values<std::uint64_t>(24, 48),
                       ::testing::Bool()));

class ZswapSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ZswapSweep, PoolSizesPreserveIntegrity) {
  SwapManager::Config config;
  config.resident_pages = 32;
  config.batch_pages = 8;
  config.compression = CompressionMode::kOff;
  config.zswap_pool_bytes = GetParam();
  core::LdmcOptions ldmc;
  ldmc.shm_fraction = 0.0;
  ldmc.allow_remote = false;  // zswap fronts the disk, as in the kernel
  SweepRig rig(config, ldmc);

  Rng rng(555);
  for (int step = 0; step < 400; ++step) {
    const std::uint64_t page = rng.next_below(kWorkingSet);
    ASSERT_TRUE(rig.manager->touch(page, rng.bernoulli(0.3)).ok());
    auto bytes = rig.manager->resident_bytes(page);
    ASSERT_TRUE(bytes.ok());
    ASSERT_EQ(fnv1a(*bytes), expected_checksum(page));
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ZswapSweep,
                         ::testing::Values(4 * KiB, 32 * KiB, 128 * KiB));

}  // namespace
}  // namespace dm::swap
