// Endurance test: hours of virtual time, multiple tenants across the
// stack (swap + KV cache + mini-Spark), a rolling fault schedule, periodic
// eviction/ballooning monitors, and regular full integrity audits.
//
// This is the closest thing to the paper's production setting the suite
// runs: everything on at once, nothing allowed to corrupt, leak, or
// deadlock.
#include <gtest/gtest.h>

#include "common/checksum.h"
#include "common/rng.h"
#include "core/dm_system.h"
#include "kvstore/kv_store.h"
#include "rddcache/mini_spark.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "workloads/driver.h"
#include "workloads/page_content.h"

namespace dm {
namespace {

TEST(EnduranceTest, MixedTenantsSurviveRollingFaults) {
  core::DmSystem::Config config;
  config.node_count = 6;
  config.group_size = 6;
  config.node.shm.arena_bytes = 16 * MiB;
  config.node.recv.arena_bytes = 16 * MiB;
  config.node.disk.capacity_bytes = 128 * MiB;
  config.service.rdmc.replication = 3;
  config.service.eviction.enabled = true;
  config.service.leader_candidates = true;
  core::DmSystem system(config);
  system.start();

  // Tenant 1: FastSwap ML job on node 0.
  auto swap_setup = swap::make_system(swap::SystemKind::kFastSwap, 48);
  swap_setup.service.rdmc.replication = 3;
  auto& swap_client = system.create_server(0, 16 * MiB, swap_setup.ldmc);
  swap::SwapManager memory(swap_client, swap_setup.swap,
                           [](std::uint64_t page, std::span<std::byte> out) {
                             workloads::fill_page(out, page, 0.3, 71);
                           });

  // Tenant 2: KV cache on node 1.
  kv::KvStore::Config kv_config;
  kv_config.hot_bytes = 64 * KiB;
  auto& kv_client = system.create_server(1, 16 * MiB);
  kv::KvStore store(kv_client, kv_config);

  // Tenant 3: mini-Spark with DAHI on nodes 2-3.
  rdd::MiniSpark::Config spark_config;
  spark_config.executors = 2;
  spark_config.executor.cache_bytes = 48 * KiB;
  spark_config.executor.overflow = rdd::OverflowPolicy::kDahi;
  rdd::MiniSpark spark(system, spark_config);
  auto dataset = rdd::Rdd::source("endurance", 12, 3000,
                                  [](std::size_t p, std::size_t i) {
                                    return static_cast<rdd::Record>(
                                        p * 524287 + i * 31);
                                  });
  dataset->cache();
  rdd::Record expected_sum = 0;
  for (std::size_t p = 0; p < 12; ++p)
    for (std::size_t i = 0; i < 3000; ++i)
      expected_sum += static_cast<rdd::Record>(p * 524287 + i * 31);

  Rng rng(0xE17D);
  constexpr int kRounds = 12;
  // Nodes 4 and 5 take turns failing (never a swap/kv/spark host).
  std::size_t flaky = 4;

  for (int round = 0; round < kRounds; ++round) {
    // Fault in odd rounds, recover in even ones.
    if (round % 2 == 1) {
      system.crash_node(flaky);
    } else if (round > 0) {
      system.recover_node(flaky);
      flaky = flaky == 4 ? 5 : 4;
    }

    // Swap tenant: a burst of mixed page touches.
    for (int i = 0; i < 300; ++i) {
      const std::uint64_t page = rng.next_below(96);
      ASSERT_TRUE(memory.touch(page, rng.bernoulli(0.25)).ok())
          << "round " << round << " touch " << i;
    }

    // KV tenant: skewed sets/gets.
    std::vector<std::byte> value(4096);
    for (int i = 0; i < 120; ++i) {
      const int k = static_cast<int>(rng.next_below(48));
      if (rng.bernoulli(0.4)) {
        workloads::fill_page(value, k, 0.4, 1000 + round);
        ASSERT_TRUE(store.set("key" + std::to_string(k), value).ok());
      } else {
        (void)store.get("key" + std::to_string(k));
      }
    }

    // Spark tenant: one job per round; the answer never changes.
    auto sum = spark.sum(dataset);
    ASSERT_TRUE(sum.ok()) << "round " << round;
    ASSERT_EQ(*sum, expected_sum) << "round " << round;

    // Background time: heartbeats, repairs, monitors, candidate refreshes.
    system.run_for(2 * kSecond);

    // Full swap-tenant integrity audit.
    std::vector<std::byte> expect(swap::kPageBytes);
    for (std::uint64_t page = 0; page < 96; ++page) {
      if (!memory.is_resident(page)) continue;
      auto bytes = memory.resident_bytes(page);
      ASSERT_TRUE(bytes.ok());
      workloads::fill_page(expect, page, 0.3, 71);
      ASSERT_EQ(fnv1a(*bytes), fnv1a(expect))
          << "round " << round << " page " << page;
    }
  }

  // Nothing was lost despite six crash/recover cycles.
  EXPECT_EQ(system.service(0).data_loss_entries(), 0u);
  EXPECT_EQ(system.service(1).data_loss_entries(), 0u);
  // Over an hour of simulated activity ran (heartbeats dominate).
  EXPECT_GT(system.simulator().now(), 20 * kSecond);
}

}  // namespace
}  // namespace dm
