// Tests for cluster coordination: placement policies, group directory,
// membership heartbeats, and leader election.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "cluster/group.h"
#include "cluster/harvester.h"
#include "cluster/membership.h"
#include "cluster/node.h"
#include "cluster/placement.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/connection_manager.h"
#include "net/fabric.h"
#include "sim/simulator.h"

namespace dm::cluster {
namespace {

// ---- placement policies -------------------------------------------------------

std::vector<CandidateNode> candidates(std::size_t n, std::uint64_t free_each) {
  std::vector<CandidateNode> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back({static_cast<net::NodeId>(i), free_each});
  return out;
}

class PlacementPolicyTest
    : public ::testing::TestWithParam<PlacementPolicyKind> {};

TEST_P(PlacementPolicyTest, PicksDistinctNodes) {
  auto policy = make_placement_policy(GetParam());
  Rng rng(1);
  auto pool = candidates(8, 1 * MiB);
  for (int round = 0; round < 100; ++round) {
    auto picked = policy->pick(pool, 3, 4096, rng);
    ASSERT_TRUE(picked.ok());
    ASSERT_EQ(picked->size(), 3u);
    std::set<net::NodeId> unique(picked->begin(), picked->end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST_P(PlacementPolicyTest, SkipsTooSmallCandidates) {
  auto policy = make_placement_policy(GetParam());
  Rng rng(2);
  std::vector<CandidateNode> pool{{0, 100}, {1, 1 * MiB}, {2, 1 * MiB},
                                  {3, 1 * MiB}};
  for (int round = 0; round < 50; ++round) {
    auto picked = policy->pick(pool, 3, 4096, rng);
    ASSERT_TRUE(picked.ok());
    for (net::NodeId n : *picked) EXPECT_NE(n, 0u);
  }
}

TEST_P(PlacementPolicyTest, FailsWhenNotEnoughEligible) {
  auto policy = make_placement_policy(GetParam());
  Rng rng(3);
  auto pool = candidates(2, 1 * MiB);
  EXPECT_EQ(policy->pick(pool, 3, 4096, rng).status().code(),
            StatusCode::kResourceExhausted);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PlacementPolicyTest,
    ::testing::Values(PlacementPolicyKind::kRandom,
                      PlacementPolicyKind::kRoundRobin,
                      PlacementPolicyKind::kWeightedRoundRobin,
                      PlacementPolicyKind::kPowerOfTwoChoices,
                      PlacementPolicyKind::kLoadAware),
    [](const auto& param_info) {
      std::string name(to_string(param_info.param));
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(PlacementTest, RoundRobinCyclesEvenly) {
  auto policy = make_placement_policy(PlacementPolicyKind::kRoundRobin);
  Rng rng(4);
  auto pool = candidates(6, 1 * MiB);
  std::map<net::NodeId, int> counts;
  for (int round = 0; round < 60; ++round) {
    auto picked = policy->pick(pool, 1, 4096, rng);
    ASSERT_TRUE(picked.ok());
    ++counts[picked->front()];
  }
  for (const auto& [node, count] : counts) EXPECT_EQ(count, 10);
}

TEST(PlacementTest, PowerOfTwoBalancesLoad) {
  // Simulated placement over 16 nodes with declining free memory: p2c must
  // keep the spread (max-min) much tighter than random.
  auto run = [](PlacementPolicyKind kind) {
    auto policy = make_placement_policy(kind);
    Rng rng(5);
    std::vector<CandidateNode> pool = candidates(16, 10 * MiB);
    std::vector<std::uint64_t> load(16, 0);
    for (int i = 0; i < 2000; ++i) {
      auto picked = policy->pick(pool, 1, 4096, rng);
      if (!picked.ok()) break;
      const auto n = picked->front();
      load[n] += 4096;
      pool[n].free_bytes -= 4096;
    }
    const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
    return *hi - *lo;
  };
  EXPECT_LE(run(PlacementPolicyKind::kPowerOfTwoChoices),
            run(PlacementPolicyKind::kRandom));
}

TEST(PlacementTest, WeightedRrFavorsFreeNodes) {
  auto policy = make_placement_policy(PlacementPolicyKind::kWeightedRoundRobin);
  Rng rng(6);
  std::vector<CandidateNode> pool{{0, 9 * MiB}, {1, 1 * MiB}};
  int node0 = 0;
  for (int i = 0; i < 1000; ++i) {
    auto picked = policy->pick(pool, 1, 4096, rng);
    ASSERT_TRUE(picked.ok());
    if (picked->front() == 0) ++node0;
  }
  EXPECT_GT(node0, 800);  // ~90% expected
}

// ---- load-aware placement -------------------------------------------------------

TEST(LoadAwareTest, ScoreDiscountsPressure) {
  // Equal free memory: the pressured donor scores strictly lower, and the
  // discount is gentle — 256 window ops halve the score, they don't zero it.
  CandidateNode idle{0, 1 * MiB, 0};
  CandidateNode busy{1, 1 * MiB, 256};
  CandidateNode thrashing{2, 1 * MiB, 100000};
  EXPECT_EQ(load_aware_score(idle), 1 * MiB);
  EXPECT_EQ(load_aware_score(busy), 512 * KiB);
  EXPECT_LT(load_aware_score(thrashing), load_aware_score(busy));
  EXPECT_GE(load_aware_score(thrashing), 1u);  // hot donors stay pickable
}

TEST(LoadAwareTest, ScoreTradesFreeMemoryAgainstPressure) {
  // A busy donor with much more free memory still outranks an idle donor
  // with little: pressure discounts, it does not disqualify.
  CandidateNode small_idle{0, 1 * MiB, 0};
  CandidateNode big_busy{1, 16 * MiB, 256};  // halved -> 8 MiB effective
  EXPECT_GT(load_aware_score(big_busy), load_aware_score(small_idle));
}

TEST(LoadAwareTest, RankOrdersByScoreThenNodeId) {
  std::vector<CandidateNode> pool{
      {7, 2 * MiB, 0},    // score 2 MiB
      {3, 4 * MiB, 256},  // score 2 MiB (tie with node 7 -> id breaks it)
      {5, 8 * MiB, 0},    // score 8 MiB
      {1, 100, 0},        // too small for a 4 KiB region
      {2, 1 * MiB, 0},    // score 1 MiB
  };
  auto ranked = load_aware_rank(pool, 4096);
  ASSERT_EQ(ranked.size(), 4u);
  EXPECT_EQ(ranked[0].node, 5u);
  EXPECT_EQ(ranked[1].node, 3u);  // ties resolve by ascending node id
  EXPECT_EQ(ranked[2].node, 7u);
  EXPECT_EQ(ranked[3].node, 2u);
  // Pure function of the snapshot: ranking twice gives the same order.
  auto again = load_aware_rank(pool, 4096);
  for (std::size_t i = 0; i < ranked.size(); ++i)
    EXPECT_EQ(ranked[i].node, again[i].node);
}

TEST(LoadAwareTest, ZeroPressureReproducesPowerOfTwo) {
  // Regression pin for the static behaviour: with every pressure at zero,
  // kLoadAware must consume the rng stream identically to
  // kPowerOfTwoChoices and pick the same winners — turning load-awareness
  // off is a no-op, not a different policy.
  auto load_aware = make_placement_policy(PlacementPolicyKind::kLoadAware);
  auto p2c = make_placement_policy(PlacementPolicyKind::kPowerOfTwoChoices);
  Rng rng_a(17);
  Rng rng_b(17);
  std::vector<CandidateNode> pool;
  for (std::size_t i = 0; i < 16; ++i)
    pool.push_back({static_cast<net::NodeId>(i), (i + 1) * MiB, 0});
  for (int round = 0; round < 200; ++round) {
    auto a = load_aware->pick(pool, 3, 4096, rng_a);
    auto b = p2c->pick(pool, 3, 4096, rng_b);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(*a, *b);
    // Drift the pool deterministically so the pin covers many shapes.
    pool[static_cast<std::size_t>(round) % pool.size()].free_bytes += 64 * KiB;
  }
}

TEST(LoadAwareTest, PressureFlipsTheDuel) {
  // Two candidates, so every pick duels them directly: p2c always keeps
  // the bigger donor, load-aware flips to the smaller one once pressure
  // discounts the bigger below it.
  std::vector<CandidateNode> pool{{0, 8 * MiB, 4 * 256},  // score 8/5 MiB
                                  {1, 4 * MiB, 0}};       // score 4 MiB
  auto load_aware = make_placement_policy(PlacementPolicyKind::kLoadAware);
  auto p2c = make_placement_policy(PlacementPolicyKind::kPowerOfTwoChoices);
  for (int round = 0; round < 50; ++round) {
    Rng rng_a(round);
    Rng rng_b(round);
    auto a = load_aware->pick(pool, 1, 4096, rng_a);
    auto b = p2c->pick(pool, 1, 4096, rng_b);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->front(), 1u);
    EXPECT_EQ(b->front(), 0u);
  }
}

// ---- harvester ------------------------------------------------------------------

NodeLoad make_load(net::NodeId node, std::uint64_t pressure,
                   std::uint64_t hosted = 1 * MiB,
                   std::uint64_t capacity = 4 * MiB,
                   std::uint64_t free_bytes = 3 * MiB) {
  NodeLoad load;
  load.node = node;
  load.donated_capacity = capacity;
  load.donated_free = free_bytes;
  load.hosted_bytes = hosted;
  load.pressure = pressure;
  return load;
}

TEST(HarvesterTest, QuietClusterPlansNothing) {
  Harvester harvester(Harvester::Config{});
  // Everyone below the absolute pressure floor: one stray fault on an
  // otherwise idle cluster must not trigger migrations.
  std::vector<NodeLoad> loads{make_load(0, 1), make_load(1, 0),
                              make_load(2, 2)};
  EXPECT_TRUE(harvester.plan(loads).empty());
  EXPECT_EQ(harvester.plans(), 1u);
  EXPECT_EQ(harvester.migrations_planned(), 0u);
}

TEST(HarvesterTest, HotNodesRankedByPressureThenId) {
  Harvester::Config config;
  config.max_actions_per_tick = 8;
  Harvester harvester(config);
  // Five idle nodes keep the cluster mean low enough (350) that all three
  // loaded nodes clear the 2x-mean hot threshold.
  std::vector<NodeLoad> loads{make_load(0, 0),    make_load(1, 900),
                              make_load(2, 0),    make_load(3, 900),
                              make_load(4, 1000), make_load(5, 0),
                              make_load(6, 0),    make_load(7, 0)};
  auto actions = harvester.plan(loads);
  ASSERT_EQ(actions.size(), 3u);
  EXPECT_EQ(actions[0].node, 4u);  // hottest first
  EXPECT_EQ(actions[1].node, 1u);  // tie at 900 -> ascending node id
  EXPECT_EQ(actions[2].node, 3u);
  for (const auto& action : actions) {
    EXPECT_EQ(action.kind, HarvestAction::Kind::kMigrateOff);
    EXPECT_EQ(action.max_entries, config.migrate_entries_per_action);
  }
}

TEST(HarvesterTest, SkipsDownAndNonHostingNodes) {
  Harvester harvester(Harvester::Config{});
  auto down = make_load(0, 5000);
  down.up = false;
  auto empty_host = make_load(1, 5000, /*hosted=*/0);
  // Idle up nodes drag the mean down so pressure 5000 clears the hot
  // threshold; the down node must not count toward that mean.
  std::vector<NodeLoad> loads{down, empty_host, make_load(2, 5000),
                              make_load(3, 0), make_load(4, 0)};
  auto actions = harvester.plan(loads);
  ASSERT_EQ(actions.size(), 1u);
  EXPECT_EQ(actions[0].node, 2u);
}

TEST(HarvesterTest, ReclaimOnlyBelowFreeWatermark) {
  Harvester harvester(Harvester::Config{});
  // Node 0 hot with a nearly-full donated pool (free 1/8 <= 0.25 watermark)
  // -> migrate + reclaim. Node 1 hot with a half-empty pool -> migrate only.
  std::vector<NodeLoad> loads{
      make_load(0, 5000, 1 * MiB, 8 * MiB, 1 * MiB),
      make_load(1, 4000, 1 * MiB, 8 * MiB, 4 * MiB),
      make_load(2, 0),
      make_load(3, 0),
      make_load(4, 0),
      make_load(5, 0),
  };
  auto actions = harvester.plan(loads);
  ASSERT_EQ(actions.size(), 3u);
  EXPECT_EQ(actions[0].kind, HarvestAction::Kind::kMigrateOff);
  EXPECT_EQ(actions[0].node, 0u);
  EXPECT_EQ(actions[1].kind, HarvestAction::Kind::kReclaimSlab);
  EXPECT_EQ(actions[1].node, 0u);
  EXPECT_EQ(actions[2].kind, HarvestAction::Kind::kMigrateOff);
  EXPECT_EQ(actions[2].node, 1u);
  EXPECT_EQ(harvester.reclaims_planned(), 1u);
}

TEST(HarvesterTest, HotRatioComparesAgainstClusterMean) {
  // Pressure 100 everywhere: nobody is 2x the mean, nothing to harvest —
  // uniform load is balance, not heat.
  Harvester harvester(Harvester::Config{});
  std::vector<NodeLoad> uniform{make_load(0, 100), make_load(1, 100),
                                make_load(2, 100), make_load(3, 100)};
  EXPECT_TRUE(harvester.plan(uniform).empty());
  // Same total pressure concentrated on one node: that node is hot.
  std::vector<NodeLoad> skewed{make_load(0, 400), make_load(1, 0),
                               make_load(2, 0), make_load(3, 0)};
  auto actions = harvester.plan(skewed);
  ASSERT_FALSE(actions.empty());
  EXPECT_EQ(actions[0].node, 0u);
}

TEST(HarvesterTest, MaxActionsCapsTheRound) {
  Harvester::Config config;
  config.max_actions_per_tick = 2;
  Harvester harvester(config);
  // Two hot nodes with exhausted pools would plan 2 migrations + 2 reclaims
  // uncapped; the per-tick cap must clip the round at 2 actions.
  std::vector<NodeLoad> loads;
  for (net::NodeId n = 0; n < 8; ++n) {
    const std::uint64_t pressure = n < 2 ? 4000 + n : 0;
    loads.push_back(make_load(n, pressure, 1 * MiB, 8 * MiB, 0));
  }
  auto actions = harvester.plan(loads);
  EXPECT_EQ(actions.size(), 2u);
}

TEST(HarvesterTest, PlanIsDeterministic) {
  std::vector<NodeLoad> loads{make_load(0, 300), make_load(1, 700),
                              make_load(2, 0), make_load(3, 700)};
  Harvester a(Harvester::Config{});
  Harvester b(Harvester::Config{});
  auto plan_a = a.plan(loads);
  auto plan_b = b.plan(loads);
  ASSERT_EQ(plan_a.size(), plan_b.size());
  for (std::size_t i = 0; i < plan_a.size(); ++i) {
    EXPECT_EQ(plan_a[i].kind, plan_b[i].kind);
    EXPECT_EQ(plan_a[i].node, plan_b[i].node);
    EXPECT_EQ(plan_a[i].max_entries, plan_b[i].max_entries);
  }
}

// ---- group directory ------------------------------------------------------------

TEST(GroupDirectoryTest, PartitionsEvenly) {
  std::vector<net::NodeId> nodes(32);
  std::iota(nodes.begin(), nodes.end(), 0);
  GroupDirectory dir(nodes, 8);
  EXPECT_EQ(dir.group_count(), 4u);
  std::size_t total = 0;
  for (GroupId g = 0; g < 4; ++g) {
    EXPECT_EQ(dir.members(g).size(), 8u);
    total += dir.members(g).size();
  }
  EXPECT_EQ(total, 32u);
  for (net::NodeId n : nodes) {
    const GroupId g = dir.group_of(n);
    const auto& members = dir.members(g);
    EXPECT_NE(std::find(members.begin(), members.end(), n), members.end());
  }
}

TEST(GroupDirectoryTest, MoveNode) {
  std::vector<net::NodeId> nodes{0, 1, 2, 3};
  GroupDirectory dir(nodes, 2);
  const GroupId from = dir.group_of(3);
  const GroupId to = from == 0 ? 1 : 0;
  dir.move_node(3, to);
  EXPECT_EQ(dir.group_of(3), to);
  EXPECT_EQ(dir.members(to).size(), 3u);
  EXPECT_EQ(dir.members(from).size(), 1u);
}

TEST(GroupDirectoryTest, RegroupPullsFromRichestGroup) {
  std::vector<net::NodeId> nodes{0, 1, 2, 3, 4, 5};
  GroupDirectory dir(nodes, 2);  // 3 groups of 2
  // Group of node 1 has lots of free memory.
  auto free_of = [](net::NodeId n) -> std::uint64_t {
    return n == 1 || n == 4 ? 100 * MiB : 1 * MiB;
  };
  const GroupId starved = dir.group_of(0) ;
  auto moved = dir.regroup_into(starved, free_of);
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(dir.group_of(*moved), starved);
}

TEST(GroupDirectoryTest, RegroupFailsWhenNoDonor) {
  std::vector<net::NodeId> nodes{0};
  GroupDirectory dir(nodes, 4);
  EXPECT_FALSE(dir.regroup_into(0, [](net::NodeId) { return 1ULL; })
                   .has_value());
}

// ---- membership + election -------------------------------------------------------

class ClusterFixture : public ::testing::Test {
 protected:
  ClusterFixture()
      : fabric_(sim_), connections_(fabric_) {
    for (net::NodeId id = 0; id < 4; ++id) {
      cluster::Node::Config config;
      config.recv.arena_bytes = 4 * MiB;
      nodes_.push_back(std::make_unique<Node>(sim_, fabric_, connections_, id,
                                              config));
    }
    std::vector<net::NodeId> all{0, 1, 2, 3};
    for (auto& node : nodes_) node->join_group(0, all);
    // Pre-establish control channels (the heartbeats need them).
    for (net::NodeId a = 0; a < 4; ++a) {
      for (net::NodeId b = 0; b < 4; ++b) {
        if (a == b) continue;
        EXPECT_TRUE(connections_.ensure_control_channel(a, b).ok());
      }
    }
  }

  void start_all() {
    for (auto& node : nodes_) {
      node->membership().start();
      node->election()->start();
    }
  }

  sim::Simulator sim_;
  net::Fabric fabric_;
  net::ConnectionManager connections_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(ClusterFixture, HeartbeatsMarkPeersAlive) {
  start_all();
  sim_.run_until(2 * kSecond);
  for (auto& node : nodes_)
    for (net::NodeId peer : node->membership().peers())
      EXPECT_TRUE(node->membership().alive(peer));
}

TEST_F(ClusterFixture, HeartbeatsCarryFreeBytes) {
  start_all();
  sim_.run_until(2 * kSecond);
  // All recv pools are empty, so advertised free == capacity.
  EXPECT_EQ(nodes_[0]->membership().last_known_free(1),
            nodes_[1]->donatable_free_bytes());
}

TEST_F(ClusterFixture, QueryFreePointQueryRefreshesState) {
  // No heartbeat loop: the one-shot point query alone must fetch the peer's
  // report and refresh the cached liveness/free state.
  bool answered = false;
  nodes_[0]->membership().query_free(
      1, [&](StatusOr<Membership::FreeReport> report) {
        ASSERT_TRUE(report.ok());
        EXPECT_EQ(report->free_bytes, nodes_[1]->donatable_free_bytes());
        answered = true;
      });
  sim_.run_until(1 * kSecond);
  EXPECT_TRUE(answered);
  EXPECT_EQ(nodes_[0]->membership().last_known_free(1),
            nodes_[1]->donatable_free_bytes());
}

TEST_F(ClusterFixture, QueryFreeFailsOnDeadPeer) {
  fabric_.set_node_up(1, false);
  bool answered = false;
  nodes_[0]->membership().query_free(
      1, [&](StatusOr<Membership::FreeReport> report) {
        EXPECT_FALSE(report.ok());
        answered = true;
      });
  sim_.run_until(1 * kSecond);
  EXPECT_TRUE(answered);
}

TEST_F(ClusterFixture, CrashDetectedWithinTimeout) {
  start_all();
  sim_.run_until(2 * kSecond);
  int down_events = 0;
  nodes_[0]->membership().on_peer_down([&](net::NodeId peer) {
    EXPECT_EQ(peer, 3u);
    ++down_events;
  });
  fabric_.set_node_up(3, false);
  sim_.run_until(sim_.now() + 3 * kSecond);
  EXPECT_FALSE(nodes_[0]->membership().alive(3));
  EXPECT_EQ(down_events, 1);
}

TEST_F(ClusterFixture, RecoveryDetected) {
  start_all();
  sim_.run_until(2 * kSecond);
  fabric_.set_node_up(3, false);
  sim_.run_until(sim_.now() + 3 * kSecond);
  ASSERT_FALSE(nodes_[0]->membership().alive(3));

  int up_events = 0;
  nodes_[0]->membership().on_peer_up([&](net::NodeId) { ++up_events; });
  fabric_.set_node_up(3, true);
  sim_.run_until(sim_.now() + 3 * kSecond);
  EXPECT_TRUE(nodes_[0]->membership().alive(3));
  EXPECT_EQ(up_events, 1);
}

TEST_F(ClusterFixture, ElectionConvergesToOneLeader) {
  start_all();
  sim_.run_until(3 * kSecond);
  const net::NodeId leader = nodes_[0]->election()->leader();
  EXPECT_NE(leader, net::kInvalidNode);
  for (auto& node : nodes_)
    EXPECT_EQ(node->election()->leader(), leader);
}

TEST_F(ClusterFixture, LeaderFailureTriggersReelection) {
  start_all();
  sim_.run_until(3 * kSecond);
  const net::NodeId old_leader = nodes_[0]->election()->leader();

  fabric_.set_node_up(old_leader, false);
  sim_.run_until(sim_.now() + 5 * kSecond);

  for (auto& node : nodes_) {
    if (node->id() == old_leader) continue;
    EXPECT_NE(node->election()->leader(), old_leader);
    EXPECT_NE(node->election()->leader(), net::kInvalidNode);
  }
  // Survivors agree.
  net::NodeId agreed = net::kInvalidNode;
  for (auto& node : nodes_) {
    if (node->id() == old_leader) continue;
    if (agreed == net::kInvalidNode) agreed = node->election()->leader();
    EXPECT_EQ(node->election()->leader(), agreed);
  }
}

TEST_F(ClusterFixture, ElectionPrefersMaxFreeMemory) {
  // Give node 2 by far the largest donatable pool by draining others.
  start_all();
  for (auto& node : nodes_) {
    if (node->id() == 2) continue;
    // Consume most of the recv pool so the advertised free drops.
    while (node->recv_pool().used_bytes() + 64 * KiB <=
           node->recv_pool().capacity_bytes() / 8)
      ASSERT_TRUE(node->recv_pool().allocate(65536).ok());
  }
  sim_.run_until(5 * kSecond);
  // Re-run an election now that heartbeats carry the skewed numbers.
  nodes_[0]->election()->start();
  sim_.run_until(sim_.now() + 2 * kSecond);
  EXPECT_EQ(nodes_[0]->election()->leader(), 2u);
}

// ---- virtual server / node -------------------------------------------------------

TEST_F(ClusterFixture, ServerDonationFlowsIntoPool) {
  auto& server = nodes_[0]->add_server(1, ServerKind::kVm, 100 * MiB, 0.10);
  EXPECT_EQ(server.donated_bytes(), 10 * MiB);
  EXPECT_EQ(server.resident_budget(), 90 * MiB);
  EXPECT_EQ(nodes_[0]->shm().donation_of(1), 10 * MiB);

  ASSERT_TRUE(nodes_[0]->set_server_donation(1, 0.40).ok());
  EXPECT_EQ(nodes_[0]->shm().donation_of(1), 40 * MiB);
}

TEST_F(ClusterFixture, DonationShrinkFailsWhenPoolHoldsData) {
  nodes_[0]->add_server(1, ServerKind::kContainer, 1 * MiB, 0.10);
  std::vector<std::byte> data(4096, std::byte{1});
  ASSERT_TRUE(nodes_[0]->shm().put(1, 7, data).ok());
  EXPECT_FALSE(nodes_[0]->set_server_donation(1, 0.0).ok());
  // The failed attempt must not corrupt the server's fraction.
  EXPECT_DOUBLE_EQ(nodes_[0]->find_server(1)->donation_fraction(), 0.10);
}

}  // namespace
}  // namespace dm::cluster
