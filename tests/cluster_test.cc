// Tests for cluster coordination: placement policies, group directory,
// membership heartbeats, and leader election.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "cluster/group.h"
#include "cluster/membership.h"
#include "cluster/node.h"
#include "cluster/placement.h"
#include "common/rng.h"
#include "common/status.h"
#include "net/connection_manager.h"
#include "net/fabric.h"
#include "sim/simulator.h"

namespace dm::cluster {
namespace {

// ---- placement policies -------------------------------------------------------

std::vector<CandidateNode> candidates(std::size_t n, std::uint64_t free_each) {
  std::vector<CandidateNode> out;
  for (std::size_t i = 0; i < n; ++i)
    out.push_back({static_cast<net::NodeId>(i), free_each});
  return out;
}

class PlacementPolicyTest
    : public ::testing::TestWithParam<PlacementPolicyKind> {};

TEST_P(PlacementPolicyTest, PicksDistinctNodes) {
  auto policy = make_placement_policy(GetParam());
  Rng rng(1);
  auto pool = candidates(8, 1 * MiB);
  for (int round = 0; round < 100; ++round) {
    auto picked = policy->pick(pool, 3, 4096, rng);
    ASSERT_TRUE(picked.ok());
    ASSERT_EQ(picked->size(), 3u);
    std::set<net::NodeId> unique(picked->begin(), picked->end());
    EXPECT_EQ(unique.size(), 3u);
  }
}

TEST_P(PlacementPolicyTest, SkipsTooSmallCandidates) {
  auto policy = make_placement_policy(GetParam());
  Rng rng(2);
  std::vector<CandidateNode> pool{{0, 100}, {1, 1 * MiB}, {2, 1 * MiB},
                                  {3, 1 * MiB}};
  for (int round = 0; round < 50; ++round) {
    auto picked = policy->pick(pool, 3, 4096, rng);
    ASSERT_TRUE(picked.ok());
    for (net::NodeId n : *picked) EXPECT_NE(n, 0u);
  }
}

TEST_P(PlacementPolicyTest, FailsWhenNotEnoughEligible) {
  auto policy = make_placement_policy(GetParam());
  Rng rng(3);
  auto pool = candidates(2, 1 * MiB);
  EXPECT_EQ(policy->pick(pool, 3, 4096, rng).status().code(),
            StatusCode::kResourceExhausted);
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PlacementPolicyTest,
    ::testing::Values(PlacementPolicyKind::kRandom,
                      PlacementPolicyKind::kRoundRobin,
                      PlacementPolicyKind::kWeightedRoundRobin,
                      PlacementPolicyKind::kPowerOfTwoChoices),
    [](const auto& param_info) {
      return std::string(to_string(param_info.param)) == "round-robin"
                 ? "round_robin"
                 : std::string(to_string(param_info.param)) == "weighted-rr"
                       ? "weighted_rr"
                       : std::string(to_string(param_info.param)) ==
                                 "power-of-two"
                             ? "power_of_two"
                             : "random";
    });

TEST(PlacementTest, RoundRobinCyclesEvenly) {
  auto policy = make_placement_policy(PlacementPolicyKind::kRoundRobin);
  Rng rng(4);
  auto pool = candidates(6, 1 * MiB);
  std::map<net::NodeId, int> counts;
  for (int round = 0; round < 60; ++round) {
    auto picked = policy->pick(pool, 1, 4096, rng);
    ASSERT_TRUE(picked.ok());
    ++counts[picked->front()];
  }
  for (const auto& [node, count] : counts) EXPECT_EQ(count, 10);
}

TEST(PlacementTest, PowerOfTwoBalancesLoad) {
  // Simulated placement over 16 nodes with declining free memory: p2c must
  // keep the spread (max-min) much tighter than random.
  auto run = [](PlacementPolicyKind kind) {
    auto policy = make_placement_policy(kind);
    Rng rng(5);
    std::vector<CandidateNode> pool = candidates(16, 10 * MiB);
    std::vector<std::uint64_t> load(16, 0);
    for (int i = 0; i < 2000; ++i) {
      auto picked = policy->pick(pool, 1, 4096, rng);
      if (!picked.ok()) break;
      const auto n = picked->front();
      load[n] += 4096;
      pool[n].free_bytes -= 4096;
    }
    const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
    return *hi - *lo;
  };
  EXPECT_LE(run(PlacementPolicyKind::kPowerOfTwoChoices),
            run(PlacementPolicyKind::kRandom));
}

TEST(PlacementTest, WeightedRrFavorsFreeNodes) {
  auto policy = make_placement_policy(PlacementPolicyKind::kWeightedRoundRobin);
  Rng rng(6);
  std::vector<CandidateNode> pool{{0, 9 * MiB}, {1, 1 * MiB}};
  int node0 = 0;
  for (int i = 0; i < 1000; ++i) {
    auto picked = policy->pick(pool, 1, 4096, rng);
    ASSERT_TRUE(picked.ok());
    if (picked->front() == 0) ++node0;
  }
  EXPECT_GT(node0, 800);  // ~90% expected
}

// ---- group directory ------------------------------------------------------------

TEST(GroupDirectoryTest, PartitionsEvenly) {
  std::vector<net::NodeId> nodes(32);
  std::iota(nodes.begin(), nodes.end(), 0);
  GroupDirectory dir(nodes, 8);
  EXPECT_EQ(dir.group_count(), 4u);
  std::size_t total = 0;
  for (GroupId g = 0; g < 4; ++g) {
    EXPECT_EQ(dir.members(g).size(), 8u);
    total += dir.members(g).size();
  }
  EXPECT_EQ(total, 32u);
  for (net::NodeId n : nodes) {
    const GroupId g = dir.group_of(n);
    const auto& members = dir.members(g);
    EXPECT_NE(std::find(members.begin(), members.end(), n), members.end());
  }
}

TEST(GroupDirectoryTest, MoveNode) {
  std::vector<net::NodeId> nodes{0, 1, 2, 3};
  GroupDirectory dir(nodes, 2);
  const GroupId from = dir.group_of(3);
  const GroupId to = from == 0 ? 1 : 0;
  dir.move_node(3, to);
  EXPECT_EQ(dir.group_of(3), to);
  EXPECT_EQ(dir.members(to).size(), 3u);
  EXPECT_EQ(dir.members(from).size(), 1u);
}

TEST(GroupDirectoryTest, RegroupPullsFromRichestGroup) {
  std::vector<net::NodeId> nodes{0, 1, 2, 3, 4, 5};
  GroupDirectory dir(nodes, 2);  // 3 groups of 2
  // Group of node 1 has lots of free memory.
  auto free_of = [](net::NodeId n) -> std::uint64_t {
    return n == 1 || n == 4 ? 100 * MiB : 1 * MiB;
  };
  const GroupId starved = dir.group_of(0) ;
  auto moved = dir.regroup_into(starved, free_of);
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(dir.group_of(*moved), starved);
}

TEST(GroupDirectoryTest, RegroupFailsWhenNoDonor) {
  std::vector<net::NodeId> nodes{0};
  GroupDirectory dir(nodes, 4);
  EXPECT_FALSE(dir.regroup_into(0, [](net::NodeId) { return 1ULL; })
                   .has_value());
}

// ---- membership + election -------------------------------------------------------

class ClusterFixture : public ::testing::Test {
 protected:
  ClusterFixture()
      : fabric_(sim_), connections_(fabric_) {
    for (net::NodeId id = 0; id < 4; ++id) {
      cluster::Node::Config config;
      config.recv.arena_bytes = 4 * MiB;
      nodes_.push_back(std::make_unique<Node>(sim_, fabric_, connections_, id,
                                              config));
    }
    std::vector<net::NodeId> all{0, 1, 2, 3};
    for (auto& node : nodes_) node->join_group(0, all);
    // Pre-establish control channels (the heartbeats need them).
    for (net::NodeId a = 0; a < 4; ++a) {
      for (net::NodeId b = 0; b < 4; ++b) {
        if (a == b) continue;
        EXPECT_TRUE(connections_.ensure_control_channel(a, b).ok());
      }
    }
  }

  void start_all() {
    for (auto& node : nodes_) {
      node->membership().start();
      node->election()->start();
    }
  }

  sim::Simulator sim_;
  net::Fabric fabric_;
  net::ConnectionManager connections_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

TEST_F(ClusterFixture, HeartbeatsMarkPeersAlive) {
  start_all();
  sim_.run_until(2 * kSecond);
  for (auto& node : nodes_)
    for (net::NodeId peer : node->membership().peers())
      EXPECT_TRUE(node->membership().alive(peer));
}

TEST_F(ClusterFixture, HeartbeatsCarryFreeBytes) {
  start_all();
  sim_.run_until(2 * kSecond);
  // All recv pools are empty, so advertised free == capacity.
  EXPECT_EQ(nodes_[0]->membership().last_known_free(1),
            nodes_[1]->donatable_free_bytes());
}

TEST_F(ClusterFixture, CrashDetectedWithinTimeout) {
  start_all();
  sim_.run_until(2 * kSecond);
  int down_events = 0;
  nodes_[0]->membership().on_peer_down([&](net::NodeId peer) {
    EXPECT_EQ(peer, 3u);
    ++down_events;
  });
  fabric_.set_node_up(3, false);
  sim_.run_until(sim_.now() + 3 * kSecond);
  EXPECT_FALSE(nodes_[0]->membership().alive(3));
  EXPECT_EQ(down_events, 1);
}

TEST_F(ClusterFixture, RecoveryDetected) {
  start_all();
  sim_.run_until(2 * kSecond);
  fabric_.set_node_up(3, false);
  sim_.run_until(sim_.now() + 3 * kSecond);
  ASSERT_FALSE(nodes_[0]->membership().alive(3));

  int up_events = 0;
  nodes_[0]->membership().on_peer_up([&](net::NodeId) { ++up_events; });
  fabric_.set_node_up(3, true);
  sim_.run_until(sim_.now() + 3 * kSecond);
  EXPECT_TRUE(nodes_[0]->membership().alive(3));
  EXPECT_EQ(up_events, 1);
}

TEST_F(ClusterFixture, ElectionConvergesToOneLeader) {
  start_all();
  sim_.run_until(3 * kSecond);
  const net::NodeId leader = nodes_[0]->election()->leader();
  EXPECT_NE(leader, net::kInvalidNode);
  for (auto& node : nodes_)
    EXPECT_EQ(node->election()->leader(), leader);
}

TEST_F(ClusterFixture, LeaderFailureTriggersReelection) {
  start_all();
  sim_.run_until(3 * kSecond);
  const net::NodeId old_leader = nodes_[0]->election()->leader();

  fabric_.set_node_up(old_leader, false);
  sim_.run_until(sim_.now() + 5 * kSecond);

  for (auto& node : nodes_) {
    if (node->id() == old_leader) continue;
    EXPECT_NE(node->election()->leader(), old_leader);
    EXPECT_NE(node->election()->leader(), net::kInvalidNode);
  }
  // Survivors agree.
  net::NodeId agreed = net::kInvalidNode;
  for (auto& node : nodes_) {
    if (node->id() == old_leader) continue;
    if (agreed == net::kInvalidNode) agreed = node->election()->leader();
    EXPECT_EQ(node->election()->leader(), agreed);
  }
}

TEST_F(ClusterFixture, ElectionPrefersMaxFreeMemory) {
  // Give node 2 by far the largest donatable pool by draining others.
  start_all();
  for (auto& node : nodes_) {
    if (node->id() == 2) continue;
    // Consume most of the recv pool so the advertised free drops.
    while (node->recv_pool().used_bytes() + 64 * KiB <=
           node->recv_pool().capacity_bytes() / 8)
      ASSERT_TRUE(node->recv_pool().allocate(65536).ok());
  }
  sim_.run_until(5 * kSecond);
  // Re-run an election now that heartbeats carry the skewed numbers.
  nodes_[0]->election()->start();
  sim_.run_until(sim_.now() + 2 * kSecond);
  EXPECT_EQ(nodes_[0]->election()->leader(), 2u);
}

// ---- virtual server / node -------------------------------------------------------

TEST_F(ClusterFixture, ServerDonationFlowsIntoPool) {
  auto& server = nodes_[0]->add_server(1, ServerKind::kVm, 100 * MiB, 0.10);
  EXPECT_EQ(server.donated_bytes(), 10 * MiB);
  EXPECT_EQ(server.resident_budget(), 90 * MiB);
  EXPECT_EQ(nodes_[0]->shm().donation_of(1), 10 * MiB);

  ASSERT_TRUE(nodes_[0]->set_server_donation(1, 0.40).ok());
  EXPECT_EQ(nodes_[0]->shm().donation_of(1), 40 * MiB);
}

TEST_F(ClusterFixture, DonationShrinkFailsWhenPoolHoldsData) {
  nodes_[0]->add_server(1, ServerKind::kContainer, 1 * MiB, 0.10);
  std::vector<std::byte> data(4096, std::byte{1});
  ASSERT_TRUE(nodes_[0]->shm().put(1, 7, data).ok());
  EXPECT_FALSE(nodes_[0]->set_server_donation(1, 0.0).ok());
  // The failed attempt must not corrupt the server's fraction.
  EXPECT_DOUBLE_EQ(nodes_[0]->find_server(1)->donation_fraction(), 0.10);
}

}  // namespace
}  // namespace dm::cluster
