// Tests for the simulated block device and swap extent allocator.
#include <gtest/gtest.h>

#include "common/status.h"
#include "common/units.h"
#include "sim/simulator.h"
#include "storage/block_device.h"

namespace dm::storage {
namespace {

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 131 + seed) & 0xff);
  return v;
}

TEST(BlockDeviceTest, WriteReadRoundTrip) {
  sim::Simulator sim;
  BlockDevice disk(sim, {.capacity_bytes = 1 * MiB});
  auto data = pattern(4096);
  ASSERT_TRUE(disk.write_sync(8192, data).ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(disk.read_sync(8192, out).ok());
  EXPECT_EQ(out, data);
}

TEST(BlockDeviceTest, OutOfRangeRejected) {
  sim::Simulator sim;
  BlockDevice disk(sim, {.capacity_bytes = 64 * KiB});
  std::vector<std::byte> buf(4096);
  EXPECT_FALSE(disk.write_sync(62 * KiB, buf).ok());
  EXPECT_FALSE(disk.read_sync(62 * KiB, buf).ok());
}

TEST(BlockDeviceTest, RandomAccessPaysSeek) {
  sim::Simulator sim;
  BlockDevice::Config config{.capacity_bytes = 64 * MiB};
  BlockDevice disk(sim, config);
  std::vector<std::byte> buf(4096);

  // First access starts at the head position (sequential); the far jump
  // pays a seek.
  ASSERT_TRUE(disk.read_sync(0, buf).ok());
  const SimTime after_first = sim.now();
  ASSERT_TRUE(disk.read_sync(32 * MiB, buf).ok());
  const SimTime random_cost = sim.now() - after_first;
  EXPECT_GE(random_cost, config.model.seek_ns);

  // Sequential follow-up: no seek.
  const SimTime before_seq = sim.now();
  ASSERT_TRUE(disk.read_sync(32 * MiB + 4096, buf).ok());
  const SimTime seq_cost = sim.now() - before_seq;
  EXPECT_LT(seq_cost, config.model.seek_ns / 10);
  EXPECT_GE(disk.metrics().counter_value("disk.seeks"), 1u);
  EXPECT_GE(disk.metrics().counter_value("disk.sequential"), 2u);
}

TEST(BlockDeviceTest, QueueSerializesRequests) {
  sim::Simulator sim;
  BlockDevice disk(sim, {.capacity_bytes = 16 * MiB});
  std::vector<std::byte> a(4096), b(4096);
  SimTime first_done = 0, second_done = 0;
  int pending = 2;
  ASSERT_TRUE(disk.read(0, a, [&](const Status&, SimTime t) {
    first_done = t;
    --pending;
  }).ok());
  ASSERT_TRUE(disk.read(8 * MiB, b, [&](const Status&, SimTime t) {
    second_done = t;
    --pending;
  }).ok());
  while (pending > 0) ASSERT_TRUE(sim.step());
  EXPECT_GT(second_done, first_done);  // served one at a time
}

TEST(BlockDeviceTest, AsyncWriteLandsAtCompletion) {
  sim::Simulator sim;
  BlockDevice disk(sim, {.capacity_bytes = 1 * MiB});
  auto data = pattern(512);
  bool completed = false;
  ASSERT_TRUE(disk.write(0, data, [&](const Status& s, SimTime) {
    EXPECT_TRUE(s.ok());
    completed = true;
  }).ok());
  ASSERT_TRUE(sim.run_until_flag(completed));
  std::vector<std::byte> out(512);
  ASSERT_TRUE(disk.read_sync(0, out).ok());
  EXPECT_EQ(out, data);
}

TEST(SwapExtentTest, AllocatesDistinctSlots) {
  SwapExtentAllocator alloc(64 * KiB, 4096);
  EXPECT_EQ(alloc.total_slots(), 16u);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 16; ++i) {
    auto slot = alloc.allocate();
    ASSERT_TRUE(slot.ok());
    EXPECT_TRUE(seen.insert(*slot).second);
    EXPECT_EQ(*slot % 4096, 0u);
  }
  EXPECT_FALSE(alloc.allocate().ok());
  EXPECT_EQ(alloc.used_slots(), 16u);
}

TEST(SwapExtentTest, ReleaseRecyclesLifo) {
  SwapExtentAllocator alloc(64 * KiB, 4096);
  auto a = alloc.allocate();
  auto b = alloc.allocate();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  alloc.release(*a);
  auto c = alloc.allocate();
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, *a);  // LIFO reuse keeps the swap area hot
  EXPECT_EQ(alloc.used_slots(), 2u);
}

}  // namespace
}  // namespace dm::storage
