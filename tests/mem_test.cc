// Tests for the memory substrate: slab allocator, shared memory pool,
// registered buffer pool, and the disaggregated memory map.
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/status.h"
#include "mem/buffer_pool.h"
#include "mem/memory_map.h"
#include "mem/shared_memory_pool.h"
#include "mem/slab_allocator.h"
#include "net/fabric.h"
#include "sim/simulator.h"

namespace dm::mem {
namespace {

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = static_cast<std::byte>((i * 37 + seed) & 0xff);
  return v;
}

// ---- SlabAllocator --------------------------------------------------------------

TEST(SlabAllocatorTest, AllocateAndFree) {
  std::vector<std::byte> arena(256 * KiB);
  SlabAllocator alloc(arena);
  auto a = alloc.allocate(4096);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(alloc.used_bytes(), 4096u);
  EXPECT_EQ(alloc.live_blocks(), 1u);
  ASSERT_TRUE(alloc.free(*a).ok());
  EXPECT_EQ(alloc.used_bytes(), 0u);
}

TEST(SlabAllocatorTest, RoundsUpToSizeClass) {
  std::vector<std::byte> arena(256 * KiB);
  SlabAllocator alloc(arena);
  auto a = alloc.allocate(700);  // -> 1024 class
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(*alloc.block_size(*a), 1024u);
  EXPECT_EQ(alloc.used_bytes(), 1024u);
}

TEST(SlabAllocatorTest, RejectsOversized) {
  std::vector<std::byte> arena(256 * KiB);
  SlabAllocator alloc(arena);
  EXPECT_EQ(alloc.allocate(128 * KiB).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SlabAllocatorTest, DistinctNonOverlappingBlocks) {
  std::vector<std::byte> arena(256 * KiB);
  SlabAllocator alloc(arena);
  std::set<std::uint64_t> offsets;
  for (int i = 0; i < 32; ++i) {
    auto a = alloc.allocate(4096);
    ASSERT_TRUE(a.ok());
    EXPECT_TRUE(offsets.insert(*a).second);
    EXPECT_EQ(*a % 4096, 0u);
  }
}

TEST(SlabAllocatorTest, ExhaustionThenReuse) {
  std::vector<std::byte> arena(64 * KiB);  // exactly one slab
  SlabAllocator alloc(arena);
  std::vector<std::uint64_t> blocks;
  while (true) {
    auto a = alloc.allocate(4096);
    if (!a.ok()) {
      EXPECT_EQ(a.status().code(), StatusCode::kResourceExhausted);
      break;
    }
    blocks.push_back(*a);
  }
  EXPECT_EQ(blocks.size(), 16u);
  ASSERT_TRUE(alloc.free(blocks.back()).ok());
  EXPECT_TRUE(alloc.allocate(4096).ok());
}

TEST(SlabAllocatorTest, DoubleFreeRejected) {
  std::vector<std::byte> arena(64 * KiB);
  SlabAllocator alloc(arena);
  auto a = alloc.allocate(512);
  ASSERT_TRUE(alloc.free(*a).ok());
  EXPECT_FALSE(alloc.free(*a).ok());
}

TEST(SlabAllocatorTest, EmptySlabRebindsToOtherClass) {
  std::vector<std::byte> arena(64 * KiB);  // one slab
  SlabAllocator alloc(arena);
  auto a = alloc.allocate(512);
  ASSERT_TRUE(a.ok());
  // Slab bound to 512; a 4096 allocation cannot fit (no free slab).
  EXPECT_FALSE(alloc.allocate(4096).ok());
  ASSERT_TRUE(alloc.free(*a).ok());
  // Slab returned to the free list; now 4096 works.
  EXPECT_TRUE(alloc.allocate(4096).ok());
}

TEST(SlabAllocatorTest, RandomizedChurnPreservesInvariants) {
  std::vector<std::byte> arena(1 * MiB);
  SlabAllocator alloc(arena);
  Rng rng(42);
  std::vector<std::uint64_t> live;
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.bernoulli(0.6)) {
      const std::size_t size = 1u << rng.uniform(9, 12);  // 512..4096
      auto a = alloc.allocate(size);
      if (a.ok()) live.push_back(*a);
    } else {
      const std::size_t idx =
          static_cast<std::size_t>(rng.next_below(live.size()));
      ASSERT_TRUE(alloc.free(live[idx]).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_EQ(alloc.live_blocks(), live.size());
    ASSERT_LE(alloc.used_bytes(), alloc.capacity_bytes());
  }
  for (auto offset : live) ASSERT_TRUE(alloc.free(offset).ok());
  EXPECT_EQ(alloc.used_bytes(), 0u);
  EXPECT_EQ(alloc.slack_bytes(), 0u);
}

// ---- SharedMemoryPool --------------------------------------------------------------

TEST(SharedMemoryPoolTest, DonationGatesCapacity) {
  SharedMemoryPool pool({.arena_bytes = 1 * MiB, .slab = {}});
  auto data = pattern(4096);
  // No donations yet: put is rejected.
  EXPECT_EQ(pool.put(1, 100, data).code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(pool.set_donation(1, 64 * KiB).ok());
  EXPECT_TRUE(pool.put(1, 100, data).ok());
  EXPECT_EQ(pool.total_donated(), 64 * KiB);
  EXPECT_EQ(pool.donation_of(1), 64 * KiB);
}

TEST(SharedMemoryPoolTest, PutGetRemoveRoundTrip) {
  SharedMemoryPool pool({.arena_bytes = 1 * MiB, .slab = {}});
  ASSERT_TRUE(pool.set_donation(1, 512 * KiB).ok());
  auto data = pattern(3000);
  ASSERT_TRUE(pool.put(1, 5, data).ok());
  EXPECT_TRUE(pool.contains(1, 5));
  EXPECT_EQ(*pool.stored_size(1, 5), 3000u);

  std::vector<std::byte> out(3000);
  ASSERT_TRUE(pool.get(1, 5, out).ok());
  EXPECT_EQ(out, data);

  std::vector<std::byte> range(100);
  ASSERT_TRUE(pool.get_range(1, 5, 1000, range).ok());
  EXPECT_TRUE(std::equal(range.begin(), range.end(), data.begin() + 1000));

  ASSERT_TRUE(pool.remove(1, 5).ok());
  EXPECT_FALSE(pool.contains(1, 5));
  EXPECT_EQ(pool.get(1, 5, out).code(), StatusCode::kNotFound);
}

TEST(SharedMemoryPoolTest, DuplicatePutRejected) {
  SharedMemoryPool pool({.arena_bytes = 1 * MiB, .slab = {}});
  ASSERT_TRUE(pool.set_donation(1, 512 * KiB).ok());
  auto data = pattern(128);
  ASSERT_TRUE(pool.put(1, 5, data).ok());
  EXPECT_EQ(pool.put(1, 5, data).code(), StatusCode::kAlreadyExists);
}

TEST(SharedMemoryPoolTest, PerServerNamespaces) {
  SharedMemoryPool pool({.arena_bytes = 1 * MiB, .slab = {}});
  ASSERT_TRUE(pool.set_donation(1, 256 * KiB).ok());
  ASSERT_TRUE(pool.set_donation(2, 256 * KiB).ok());
  auto a = pattern(100, 1), b = pattern(100, 2);
  ASSERT_TRUE(pool.put(1, 5, a).ok());
  ASSERT_TRUE(pool.put(2, 5, b).ok());
  std::vector<std::byte> out(100);
  ASSERT_TRUE(pool.get(2, 5, out).ok());
  EXPECT_EQ(out, b);
}

TEST(SharedMemoryPoolTest, LruEvictionOrder) {
  SharedMemoryPool pool({.arena_bytes = 1 * MiB, .slab = {}});
  ASSERT_TRUE(pool.set_donation(1, 512 * KiB).ok());
  auto data = pattern(64);
  ASSERT_TRUE(pool.put(1, 10, data).ok());
  ASSERT_TRUE(pool.put(1, 11, data).ok());
  ASSERT_TRUE(pool.put(1, 12, data).ok());
  // Touch 10 so 11 becomes LRU.
  std::vector<std::byte> out(64);
  ASSERT_TRUE(pool.get(1, 10, out).ok());
  ServerId owner = 0;
  EntryId id = 0;
  auto evicted = pool.evict_lru(&owner, &id);
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ(owner, 1u);
  EXPECT_EQ(id, 11u);
  EXPECT_EQ(*evicted, data);
  EXPECT_FALSE(pool.contains(1, 11));
}

TEST(SharedMemoryPoolTest, LruEntryPreservesFull64BitIds) {
  // Regression: the packed pool key keeps only the low 48 id bits. lru_entry
  // used to decode (owner, id) from the key, so hash-derived 64-bit ids (the
  // KV store's) came back truncated and the spill path deleted entries the
  // owner's map still pointed at.
  SharedMemoryPool pool({.arena_bytes = 1 * MiB, .slab = {}});
  ASSERT_TRUE(pool.set_donation(1, 512 * KiB).ok());
  const EntryId wide = 0xdeadbeefcafe0123ULL;  // high 16 bits non-zero
  auto data = pattern(64);
  ASSERT_TRUE(pool.put(1, wide, data).ok());
  ASSERT_TRUE(pool.contains(1, wide));

  auto lru = pool.lru_entry();
  ASSERT_TRUE(lru.has_value());
  EXPECT_EQ(lru->first, 1u);
  EXPECT_EQ(lru->second, wide);

  ServerId owner = 0;
  EntryId id = 0;
  auto evicted = pool.evict_lru(&owner, &id);
  ASSERT_TRUE(evicted.ok());
  EXPECT_EQ(owner, 1u);
  EXPECT_EQ(id, wide);
  EXPECT_EQ(*evicted, data);
  EXPECT_FALSE(pool.contains(1, wide));
}

TEST(SharedMemoryPoolTest, ShrinkBelowStoredFails) {
  SharedMemoryPool pool({.arena_bytes = 1 * MiB, .slab = {}});
  ASSERT_TRUE(pool.set_donation(1, 64 * KiB).ok());
  auto data = pattern(4096);
  ASSERT_TRUE(pool.put(1, 1, data).ok());
  EXPECT_EQ(pool.set_donation(1, 0).code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(pool.remove(1, 1).ok());
  EXPECT_TRUE(pool.set_donation(1, 0).ok());
}

TEST(SharedMemoryPoolTest, GrowDonationAdmitsMore) {
  SharedMemoryPool pool({.arena_bytes = 1 * MiB, .slab = {}});
  ASSERT_TRUE(pool.set_donation(1, 4096).ok());
  auto data = pattern(4096);
  ASSERT_TRUE(pool.put(1, 1, data).ok());
  EXPECT_EQ(pool.put(1, 2, data).code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(pool.set_donation(1, 16 * KiB).ok());
  EXPECT_TRUE(pool.put(1, 2, data).ok());
}

// ---- RegisteredBufferPool ------------------------------------------------------------

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : fabric_(sim_) { fabric_.add_node(0); }
  sim::Simulator sim_;
  net::Fabric fabric_;
};

TEST_F(BufferPoolTest, AllocatesAndRegistersSlabs) {
  RegisteredBufferPool pool(fabric_, 0,
                            {.arena_bytes = 1 * MiB, .slab_bytes = 256 * KiB});
  EXPECT_EQ(fabric_.registered_region_count(0), 0u);
  auto block = pool.allocate(4096);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(fabric_.registered_region_count(0), 1u);
  EXPECT_EQ(pool.registered_bytes(), 256 * KiB);
  EXPECT_EQ(block->size, 4096u);
  EXPECT_NE(block->rkey, net::kInvalidRKey);
}

TEST_F(BufferPoolTest, BlockBytesWritable) {
  RegisteredBufferPool pool(fabric_, 0, {.arena_bytes = 1 * MiB});
  auto block = pool.allocate(512);
  ASSERT_TRUE(block.ok());
  auto span = pool.block_bytes(*block);
  EXPECT_EQ(span.size(), 512u);
  span[0] = std::byte{42};
  EXPECT_EQ(pool.block_bytes(*block)[0], std::byte{42});
}

TEST_F(BufferPoolTest, FreeAndDoubleFree) {
  RegisteredBufferPool pool(fabric_, 0, {.arena_bytes = 1 * MiB});
  auto block = pool.allocate(4096);
  ASSERT_TRUE(pool.free(*block).ok());
  EXPECT_FALSE(pool.free(*block).ok());
}

TEST_F(BufferPoolTest, DeregisterRequiresEmptySlab) {
  RegisteredBufferPool pool(fabric_, 0, {.arena_bytes = 1 * MiB});
  auto block = pool.allocate(4096);
  ASSERT_TRUE(block.ok());
  EXPECT_EQ(pool.deregister_slab(block->slab).code(),
            StatusCode::kFailedPrecondition);
  ASSERT_TRUE(pool.free(*block).ok());
  ASSERT_TRUE(pool.deregister_slab(block->slab).ok());
  EXPECT_EQ(fabric_.registered_region_count(0), 0u);
  EXPECT_EQ(pool.active_slabs(), 0u);
}

TEST_F(BufferPoolTest, BlocksInSlabListsLiveOnly) {
  RegisteredBufferPool pool(fabric_, 0, {.arena_bytes = 1 * MiB});
  auto a = pool.allocate(4096);
  auto b = pool.allocate(4096);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->slab, b->slab);
  EXPECT_EQ(pool.blocks_in_slab(a->slab).size(), 2u);
  ASSERT_TRUE(pool.free(*a).ok());
  EXPECT_EQ(pool.blocks_in_slab(a->slab).size(), 1u);
}

TEST_F(BufferPoolTest, LeastLoadedSlabPrefersEmptier) {
  RegisteredBufferPool pool(
      fabric_, 0,
      {.arena_bytes = 1 * MiB, .slab_bytes = 64 * KiB,
       .size_classes = {4096}});
  // Fill slab 1 fully (16 blocks), slab 2 with one block.
  std::vector<BlockRef> first;
  for (int i = 0; i < 16; ++i) {
    auto b = pool.allocate(4096);
    ASSERT_TRUE(b.ok());
    first.push_back(*b);
  }
  auto lone = pool.allocate(4096);
  ASSERT_TRUE(lone.ok());
  EXPECT_NE(lone->slab, first[0].slab);
  auto least = pool.least_loaded_slab();
  ASSERT_TRUE(least.has_value());
  EXPECT_EQ(*least, lone->slab);
}

TEST_F(BufferPoolTest, ExhaustionReported) {
  RegisteredBufferPool pool(
      fabric_, 0,
      {.arena_bytes = 128 * KiB, .slab_bytes = 64 * KiB,
       .size_classes = {65536}});
  EXPECT_TRUE(pool.allocate(65536).ok());
  EXPECT_TRUE(pool.allocate(65536).ok());
  EXPECT_EQ(pool.allocate(65536).status().code(),
            StatusCode::kResourceExhausted);
}

// ---- SendStagingPool ----------------------------------------------------------------

TEST(SendStagingPoolTest, BumpAllocatesAndResets) {
  SendStagingPool pool(1024);
  auto a = pool.stage(400);
  ASSERT_TRUE(a.ok());
  auto b = pool.stage(600);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(pool.staged_bytes(), 1000u);
  // Regions are contiguous and ordered (bump allocation).
  EXPECT_EQ(a->data() + 400, b->data());
  EXPECT_EQ(pool.stage(100).status().code(), StatusCode::kResourceExhausted);
  pool.reset();
  EXPECT_EQ(pool.staged_bytes(), 0u);
  EXPECT_TRUE(pool.stage(1024).ok());
}

// ---- MemoryMap --------------------------------------------------------------------

EntryLocation remote_loc(std::initializer_list<net::NodeId> nodes) {
  EntryLocation loc;
  loc.tier = Tier::kRemote;
  loc.logical_size = 4096;
  loc.stored_size = 2048;
  for (net::NodeId n : nodes) loc.replicas.push_back({n, 1, 0, 0, 2048});
  return loc;
}

TEST(MemoryMapTest, CommitLookupRemove) {
  MemoryMap map;
  EXPECT_FALSE(map.contains(7));
  map.commit(7, remote_loc({1, 2, 3}));
  ASSERT_TRUE(map.contains(7));
  auto loc = map.lookup(7);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->tier, Tier::kRemote);
  EXPECT_EQ(loc->replicas.size(), 3u);
  ASSERT_TRUE(map.remove(7).ok());
  EXPECT_EQ(map.remove(7).code(), StatusCode::kNotFound);
  EXPECT_EQ(map.size(), 0u);
}

TEST(MemoryMapTest, CommitReplacesAtomically) {
  MemoryMap map;
  map.commit(1, remote_loc({1, 2, 3}));
  EntryLocation shm;
  shm.tier = Tier::kSharedMemory;
  map.commit(1, shm);
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(map.lookup(1)->tier, Tier::kSharedMemory);
}

TEST(MemoryMapTest, EntriesWithReplicaOnNode) {
  MemoryMap map(4);
  map.commit(1, remote_loc({1, 2, 3}));
  map.commit(2, remote_loc({2, 3, 4}));
  map.commit(3, remote_loc({4, 5, 6}));
  EntryLocation disk;
  disk.tier = Tier::kDisk;
  map.commit(4, disk);
  auto on2 = map.entries_with_replica_on(2);
  std::sort(on2.begin(), on2.end());
  EXPECT_EQ(on2, (std::vector<EntryId>{1, 2}));
  EXPECT_TRUE(map.entries_with_replica_on(9).empty());
}

TEST(MemoryMapTest, ShardsSpreadEntries) {
  MemoryMap map(16);
  for (EntryId id = 0; id < 1000; ++id) map.commit(id, EntryLocation{});
  EXPECT_EQ(map.size(), 1000u);
  for (EntryId id = 0; id < 1000; ++id) EXPECT_TRUE(map.contains(id));
}

TEST(MemoryMapTest, ForEachVisitsAll) {
  MemoryMap map(8);
  for (EntryId id = 0; id < 100; ++id) map.commit(id, EntryLocation{});
  std::size_t visited = 0;
  map.for_each([&](EntryId, const EntryLocation&) { ++visited; });
  EXPECT_EQ(visited, 100u);
}

// The paper's §IV.C arithmetic: tracking 2 TB of remote memory at 4 KiB
// entries needs gigabytes of map per server — the motivation for sharding
// and group-scoped sharing. Verify our per-entry metadata cost implies the
// same order of magnitude.
TEST(MemoryMapTest, ScalabilityArithmeticMatchesPaper) {
  MemoryMap map(16);
  const std::size_t sample = 10000;
  for (EntryId id = 0; id < sample; ++id) map.commit(id, remote_loc({1, 2, 3}));
  const double bytes_per_entry =
      static_cast<double>(map.approx_bytes()) / sample;
  // 2 TB / 4 KiB = 536.9M entries.
  const double entries_for_2tb = 2.0 * 1024 * 1024 * 1024 * 1024 / 4096;
  const double map_gb =
      bytes_per_entry * entries_for_2tb / (1024.0 * 1024 * 1024);
  // The paper says ~5 GB with 8-byte metadata; our richer record (checksum,
  // replicas, tier) costs more per entry, but must stay in the "several to
  // tens of GB" bracket that makes the scalability point.
  EXPECT_GT(map_gb, 2.0);
  EXPECT_LT(map_gb, 200.0);
}

}  // namespace
}  // namespace dm::mem
