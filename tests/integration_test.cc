// Whole-system integration tests: multiple tenants sharing one cluster,
// failures mid-workload, regrouping, and cross-layer determinism.
#include <gtest/gtest.h>

#include "common/checksum.h"
#include "common/rng.h"
#include "core/dm_system.h"
#include "core/node_service.h"
#include "mem/memory_map.h"
#include "rddcache/mini_spark.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"
#include "workloads/driver.h"
#include "workloads/page_content.h"

namespace dm {
namespace {

core::DmSystem::Config big_cluster(std::size_t nodes = 8) {
  core::DmSystem::Config config;
  config.node_count = nodes;
  config.group_size = 4;
  config.node.shm.arena_bytes = 16 * MiB;
  config.node.recv.arena_bytes = 16 * MiB;
  config.node.disk.capacity_bytes = 128 * MiB;
  return config;
}

TEST(IntegrationTest, TwoTenantsShareTheCluster) {
  auto config = big_cluster(4);
  config.service.rdmc.replication = 1;
  core::DmSystem system(config);
  system.start();

  auto fastswap = swap::make_system(swap::SystemKind::kFastSwap, 32);
  auto& client_a = system.create_server(0, 64 * MiB, fastswap.ldmc);
  auto& client_b = system.create_server(1, 64 * MiB, fastswap.ldmc);

  const workloads::AppSpec* lr = workloads::find_app("LogisticRegression");
  const workloads::AppSpec* kv = workloads::find_app("Memcached");
  swap::SwapManager mem_a(client_a, fastswap.swap,
                          workloads::content_for(*lr, 1));
  swap::SwapManager mem_b(client_b, fastswap.swap,
                          workloads::content_for(*kv, 2));

  Rng rng_a(1), rng_b(2);
  workloads::AppSpec lr_small = *lr;
  lr_small.iterations = 2;
  auto result_a = workloads::run_iterative(mem_a, lr_small, 64, rng_a);
  auto result_b = workloads::run_kv(mem_b, *kv, 64, 2000, rng_b);
  EXPECT_TRUE(result_a.status.ok());
  EXPECT_TRUE(result_b.status.ok());
  EXPECT_GT(result_a.faults, 0u);
}

TEST(IntegrationTest, NodeCrashDuringSwapWorkloadIsSurvivable) {
  auto config = big_cluster(5);
  config.service.rdmc.replication = 3;  // §IV.D triple replica
  core::DmSystem system(config);
  system.start();

  auto setup = swap::make_system(swap::SystemKind::kFastSwap, 24);
  setup.ldmc.shm_fraction = 0.0;  // everything remote: worst case for crash
  setup.service.rdmc.replication = 3;
  // Rebuild with replication: the rig must use the same service config.
  auto& client = system.create_server(0, 64 * MiB, setup.ldmc);
  swap::SwapManager manager(
      client, setup.swap, [](std::uint64_t page, std::span<std::byte> out) {
        workloads::fill_page(out, page, 0.3, 9);
      });

  for (std::uint64_t p = 0; p < 96; ++p)
    ASSERT_TRUE(manager.touch(p).ok());

  // Crash a replica host mid-run (not node 0, the client's host).
  std::size_t victim = 1;
  system.crash_node(victim);
  system.run_for(5 * kSecond);  // detection + repair

  // Every page must still be retrievable and intact.
  for (std::uint64_t p = 0; p < 96; ++p) {
    ASSERT_TRUE(manager.touch(p).ok()) << p;
    auto bytes = manager.resident_bytes(p);
    ASSERT_TRUE(bytes.ok());
    std::vector<std::byte> expect(swap::kPageBytes);
    workloads::fill_page(expect, p, 0.3, 9);
    ASSERT_EQ(fnv1a(*bytes), fnv1a(expect)) << p;
  }
  EXPECT_EQ(system.service(0).data_loss_entries(), 0u);
}

TEST(IntegrationTest, GroupsLimitCandidateSets) {
  auto config = big_cluster(8);
  config.group_size = 4;
  config.service.rdmc.replication = 3;
  core::DmSystem system(config);
  system.start();

  core::LdmcOptions remote_only;
  remote_only.shm_fraction = 0.0;
  auto& client = system.create_server(0, 64 * MiB, remote_only);
  std::vector<std::byte> data(4096, std::byte{5});
  for (mem::EntryId id = 0; id < 16; ++id)
    ASSERT_TRUE(client.put_sync(id, data).ok());

  // All replicas must live inside node 0's group.
  const auto& members =
      system.groups().members(system.groups().group_of(0));
  std::set<net::NodeId> group_set(members.begin(), members.end());
  client.map().for_each([&](mem::EntryId, const mem::EntryLocation& loc) {
    for (const auto& replica : loc.replicas)
      EXPECT_TRUE(group_set.count(replica.node) > 0)
          << "replica on " << replica.node << " outside group";
  });
}

TEST(IntegrationTest, RegroupingMovesDonorIntoStarvedGroup) {
  auto config = big_cluster(8);
  config.group_size = 4;
  core::DmSystem system(config);
  system.start();
  auto& groups = system.groups();
  const cluster::GroupId starved = groups.group_of(0);
  const std::size_t before = groups.members(starved).size();
  auto moved = groups.regroup_into(starved, [&](net::NodeId n) {
    for (std::size_t i = 0; i < system.node_count(); ++i)
      if (system.node(i).id() == n)
        return system.node(i).donatable_free_bytes();
    return std::uint64_t{0};
  });
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(groups.members(starved).size(), before + 1);
  EXPECT_EQ(groups.group_of(*moved), starved);
}

TEST(IntegrationTest, DynamicRegroupingRescuesStarvedGroup) {
  auto config = big_cluster(8);
  config.group_size = 4;
  config.service.rdmc.replication = 1;
  config.node.recv.arena_bytes = 1 * MiB;
  core::DmSystem system(config);
  system.start();

  // Starve group 0: consume nearly all donatable memory on node 0's peers.
  const auto& members = system.groups().members(system.groups().group_of(0));
  for (net::NodeId member : members) {
    for (std::size_t i = 0; i < system.node_count(); ++i) {
      if (system.node(i).id() != member) continue;
      auto& pool = system.node(i).recv_pool();
      while (pool.capacity_bytes() - pool.used_bytes() >= 64 * KiB) {
        auto block = pool.allocate(65536);
        if (!block.ok()) break;
      }
    }
  }
  system.run_for(2 * kSecond);  // let heartbeats report the pressure

  const std::size_t before = members.size();
  auto moved = system.regroup_tick();
  ASSERT_TRUE(moved.has_value());
  EXPECT_EQ(system.groups().members(system.groups().group_of(0)).size(),
            before + 1);
  system.run_for(2 * kSecond);  // heartbeats to the new member

  // Node 0 can now place remotely again (on the donor).
  core::LdmcOptions remote_only;
  remote_only.shm_fraction = 0.0;
  remote_only.allow_disk = false;
  auto& client = system.create_server(0, 64 * MiB, remote_only);
  std::vector<std::byte> data(4096, std::byte{3});
  ASSERT_TRUE(client.put_sync(1, data).ok());
  auto loc = client.map().lookup(1);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->replicas.front().node, *moved);
}

TEST(IntegrationTest, AutomaticRegroupWatermark) {
  auto config = big_cluster(8);
  config.group_size = 4;
  config.node.recv.arena_bytes = 1 * MiB;
  config.regroup_low_watermark = 0.2;
  core::DmSystem system(config);
  system.start();

  // Starve group 0 below the 20% watermark.
  const auto members = system.groups().members(system.groups().group_of(0));
  for (net::NodeId member : members) {
    for (std::size_t i = 0; i < system.node_count(); ++i) {
      if (system.node(i).id() != member) continue;
      auto& pool = system.node(i).recv_pool();
      while (true) {
        auto block = pool.allocate(65536);
        if (!block.ok()) break;
      }
    }
  }
  system.run_for(5 * kSecond);  // periodic watermark check fires
  EXPECT_GE(system.regroups(), 1u);
}

TEST(IntegrationTest, SparkAndSwapCoexist) {
  auto config = big_cluster(4);
  config.service.rdmc.replication = 1;
  core::DmSystem system(config);
  system.start();

  // Tenant 1: mini-Spark with DAHI.
  rdd::MiniSpark::Config spark_config;
  spark_config.executors = 2;
  spark_config.executor.cache_bytes = 64 * KiB;
  spark_config.executor.overflow = rdd::OverflowPolicy::kDahi;
  rdd::MiniSpark spark(system, spark_config);
  auto dataset = rdd::Rdd::source("data", 8, 4000,
                                  [](std::size_t p, std::size_t i) {
                                    return static_cast<rdd::Record>(p + i);
                                  });
  dataset->cache();

  // Tenant 2: swap workload on another node.
  auto setup = swap::make_system(swap::SystemKind::kFastSwap, 24);
  auto& swap_client = system.create_server(2, 64 * MiB, setup.ldmc);
  swap::SwapManager manager(
      swap_client, setup.swap,
      [](std::uint64_t page, std::span<std::byte> out) {
        workloads::fill_page(out, page, 0.4, 3);
      });

  auto sum1 = spark.sum(dataset);
  for (std::uint64_t p = 0; p < 64; ++p)
    ASSERT_TRUE(manager.touch(p).ok());
  auto sum2 = spark.sum(dataset);
  ASSERT_TRUE(sum1.ok());
  ASSERT_TRUE(sum2.ok());
  EXPECT_EQ(*sum1, *sum2);
}

TEST(IntegrationTest, WholeStackDeterminism) {
  auto run_once = [] {
    auto config = big_cluster(4);
    config.service.rdmc.replication = 2;
    core::DmSystem system(config);
    system.start();
    auto setup = swap::make_system(swap::SystemKind::kFastSwap, 32);
    setup.ldmc.shm_fraction = 0.5;
    auto& client = system.create_server(0, 64 * MiB, setup.ldmc);
    swap::SwapManager manager(
        client, setup.swap, [](std::uint64_t page, std::span<std::byte> out) {
          workloads::fill_page(out, page, 0.35, 21);
        });
    const workloads::AppSpec* spec = workloads::find_app("PageRank");
    workloads::AppSpec small = *spec;
    small.iterations = 2;
    Rng rng(99);
    auto result = workloads::run_iterative(manager, small, 96, rng);
    EXPECT_TRUE(result.status.ok());
    return std::pair{result.elapsed, result.faults};
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dm
