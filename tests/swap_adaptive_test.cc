// Tests for the adaptive swap-path engine: the pattern classifier and
// window controller as pure units, the adaptive policies end to end on a
// live system, compression admission control, write-back staging, and the
// knobs-off regression pinning the default configurations to seed-state
// behavioural goldens.
#include <gtest/gtest.h>

#include "common/checksum.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "core/ldmc.h"
#include "swap/pattern_tracker.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "workloads/page_content.h"

namespace dm::swap {
namespace {

// --- PatternTracker ---------------------------------------------------------

TEST(PatternTrackerTest, ColdStartIsUnknown) {
  PatternTracker tracker(32);
  EXPECT_EQ(tracker.classify(), AccessPattern::kUnknown);
  for (std::uint64_t p = 0; p < tracker.min_samples(); ++p) {
    EXPECT_EQ(tracker.classify(), AccessPattern::kUnknown);
    tracker.record(p);
  }
  // min_samples deltas recorded (one fewer than records): one more tips it.
  tracker.record(tracker.min_samples());
  EXPECT_NE(tracker.classify(), AccessPattern::kUnknown);
}

TEST(PatternTrackerTest, UnitStrideIsSequential) {
  PatternTracker tracker(16);
  for (std::uint64_t p = 100; p < 120; ++p) tracker.record(p);
  EXPECT_EQ(tracker.classify(), AccessPattern::kSequential);
  EXPECT_EQ(tracker.dominant_stride(), 1);
}

TEST(PatternTrackerTest, ConstantNonUnitStrideIsStrided) {
  PatternTracker tracker(16);
  for (std::uint64_t p = 0; p < 80; p += 4) tracker.record(p);
  EXPECT_EQ(tracker.classify(), AccessPattern::kStrided);
  EXPECT_EQ(tracker.dominant_stride(), 4);
}

TEST(PatternTrackerTest, ScatteredAddressesAreRandom) {
  PatternTracker tracker(32);
  Rng rng(5);
  for (int i = 0; i < 64; ++i) tracker.record(rng.next_below(100000));
  EXPECT_EQ(tracker.classify(), AccessPattern::kRandom);
  EXPECT_EQ(tracker.dominant_stride(), 0);
}

// The PBS-subsampling case the forward-stream rule exists for: a
// sequential scan observed through batch swap-in faults shows mixed small
// positive deltas (1, window, window/2, ...) with no single dominant value.
TEST(PatternTrackerTest, MixedSmallForwardStridesAreSequential) {
  PatternTracker tracker(32, /*max_stride=*/32);
  std::uint64_t page = 0;
  Rng rng(6);
  for (int i = 0; i < 64; ++i) {
    page += 1 + rng.next_below(16);  // deltas 1..16, rarely repeating
    tracker.record(page);
  }
  EXPECT_EQ(tracker.classify(), AccessPattern::kSequential);
}

TEST(PatternTrackerTest, LargeForwardJumpsAreNotSequential) {
  PatternTracker tracker(32, /*max_stride=*/32);
  std::uint64_t page = 0;
  Rng rng(7);
  for (int i = 0; i < 64; ++i) {
    page += 100 + rng.next_below(1000);  // forward but far beyond a window
    tracker.record(page);
  }
  EXPECT_EQ(tracker.classify(), AccessPattern::kRandom);
}

TEST(PatternTrackerTest, HistoryWindowForgetsOldPhase) {
  PatternTracker tracker(16);
  Rng rng(8);
  for (int i = 0; i < 40; ++i) tracker.record(rng.next_below(100000));
  ASSERT_EQ(tracker.classify(), AccessPattern::kRandom);
  // 16 sequential faults overwrite the entire ring.
  for (std::uint64_t p = 500; p < 517; ++p) tracker.record(p);
  EXPECT_EQ(tracker.classify(), AccessPattern::kSequential);
}

// --- AdaptiveWindow ---------------------------------------------------------

TEST(AdaptiveWindowTest, GrowthRequiresFullHysteresisStreak) {
  AdaptiveWindow window({.min_pages = 1, .max_pages = 32, .start_pages = 8,
                         .hysteresis = 4});
  for (int i = 0; i < 3; ++i) window.update(AccessPattern::kSequential);
  EXPECT_EQ(window.current(), 8u);  // streak not complete
  window.update(AccessPattern::kSequential);
  EXPECT_EQ(window.current(), 16u);
}

TEST(AdaptiveWindowTest, RandomBreaksGrowStreak) {
  AdaptiveWindow window({.min_pages = 1, .max_pages = 32, .start_pages = 8,
                         .hysteresis = 4});
  for (int i = 0; i < 3; ++i) window.update(AccessPattern::kSequential);
  window.update(AccessPattern::kRandom);  // resets the grow streak
  for (int i = 0; i < 3; ++i) window.update(AccessPattern::kSequential);
  EXPECT_EQ(window.current(), 8u);
  window.update(AccessPattern::kSequential);
  EXPECT_EQ(window.current(), 16u);
}

TEST(AdaptiveWindowTest, ShrinksToFloorUnderSustainedRandom) {
  AdaptiveWindow window({.min_pages = 1, .max_pages = 32, .start_pages = 8,
                         .hysteresis = 2});
  for (int i = 0; i < 100; ++i) window.update(AccessPattern::kRandom);
  EXPECT_EQ(window.current(), 1u);
}

TEST(AdaptiveWindowTest, GrowsToCeilingUnderSustainedSequential) {
  AdaptiveWindow window({.min_pages = 1, .max_pages = 32, .start_pages = 8,
                         .hysteresis = 2});
  for (int i = 0; i < 100; ++i) window.update(AccessPattern::kSequential);
  EXPECT_EQ(window.current(), 32u);
}

TEST(AdaptiveWindowTest, StridedHoldsAndBreaksBothStreaks) {
  AdaptiveWindow window({.min_pages = 1, .max_pages = 32, .start_pages = 8,
                         .hysteresis = 2});
  window.update(AccessPattern::kSequential);
  window.update(AccessPattern::kStrided);
  window.update(AccessPattern::kSequential);
  EXPECT_EQ(window.current(), 8u);  // strided reset the streak both times
  window.update(AccessPattern::kRandom);
  window.update(AccessPattern::kStrided);
  window.update(AccessPattern::kRandom);
  EXPECT_EQ(window.current(), 8u);
}

TEST(AdaptiveWindowTest, StartClampedIntoBounds) {
  AdaptiveWindow window({.min_pages = 2, .max_pages = 8, .start_pages = 64,
                         .hysteresis = 2});
  EXPECT_EQ(window.current(), 8u);
}

// --- end-to-end adaptive behaviour ------------------------------------------

struct Rig {
  explicit Rig(SystemSetup system_setup, double content_random = 0.3)
      : setup(std::move(system_setup)) {
    core::DmSystem::Config config;
    config.node_count = 4;
    config.node.shm.arena_bytes = 16 * MiB;
    config.node.recv.arena_bytes = 16 * MiB;
    config.node.disk.capacity_bytes = 128 * MiB;
    config.service = this->setup.service;
    system = std::make_unique<core::DmSystem>(config);
    system->start();
    client = &system->create_server(0, 64 * MiB, this->setup.ldmc);
    const double r = content_random;
    manager = std::make_unique<SwapManager>(
        *client, this->setup.swap,
        [r](std::uint64_t page, std::span<std::byte> out) {
          workloads::fill_page(out, page, r, 11);
        });
  }

  SimTime elapsed() const { return system->simulator().now(); }

  SystemSetup setup;
  std::unique_ptr<core::DmSystem> system;
  core::Ldmc* client = nullptr;
  std::unique_ptr<SwapManager> manager;
};

void run_sequential(Rig& rig, int steps, std::uint64_t space) {
  for (int s = 0; s < steps; ++s)
    ASSERT_TRUE(
        rig.manager->touch(static_cast<std::uint64_t>(s) % space).ok());
}

void run_random(Rig& rig, int steps, std::uint64_t space,
                std::uint64_t seed) {
  Rng rng(seed);
  for (int s = 0; s < steps; ++s)
    ASSERT_TRUE(rig.manager->touch(rng.next_below(space)).ok());
}

TEST(AdaptiveSwapTest, SequentialScanGrowsWindowAndBeatsFixedPbs) {
  Rig fixed(make_system(SystemKind::kFastSwap, 32));
  run_sequential(fixed, 1200, 128);

  auto setup = make_system(SystemKind::kFastSwapAdaptive, 32);
  setup.swap.writeback_batches = 0;       // isolate the PBS policy
  setup.swap.compression_admission = false;
  Rig adaptive(setup);
  run_sequential(adaptive, 1200, 128);

  // The window grew past the fixed 8-page default. (The final verdict may
  // read "strided" rather than "sequential": once the window hits its
  // ceiling, the scan faults exactly once per window, so the fault deltas
  // become one constant stride — the window holds there, by design.)
  EXPECT_GT(adaptive.manager->current_window(), 8u);
  EXPECT_NE(adaptive.manager->current_pattern(), AccessPattern::kRandom);
  // ...and bigger batches mean fewer faults for the same scan.
  EXPECT_LT(adaptive.manager->faults(), fixed.manager->faults());
}

TEST(AdaptiveSwapTest, RandomAccessShrinksWindowAndSuppressesFanout) {
  auto setup = make_system(SystemKind::kFastSwapAdaptive, 32);
  setup.swap.writeback_batches = 0;
  setup.swap.compression_admission = false;
  Rig rig(setup);
  run_random(rig, 1200, 128, 99);

  EXPECT_EQ(rig.manager->current_window(),
            rig.manager->config().min_batch_pages);
  EXPECT_EQ(rig.manager->current_pattern(), AccessPattern::kRandom);
  EXPECT_GT(rig.manager->metrics().counter_value("swap.pbs.fanout_skips"),
            0u);
  // Fan-out suppression means faults restore one page, not a batch.
  EXPECT_GT(rig.manager->metrics().counter_value("swap.single_page_ins"),
            0u);
}

TEST(AdaptiveSwapTest, RandomAccessCheaperThanFixedPbs) {
  Rig fixed(make_system(SystemKind::kFastSwap, 32));
  run_random(fixed, 1200, 128, 99);

  auto setup = make_system(SystemKind::kFastSwapAdaptive, 32);
  setup.swap.compression_admission = false;
  Rig adaptive(setup);
  run_random(adaptive, 1200, 128, 99);

  // Not polluting the resident set with batch siblings pays off twice:
  // fewer wasted swap-ins and less virtual time on the fault path.
  EXPECT_LT(adaptive.manager->swap_ins(), fixed.manager->swap_ins());
  EXPECT_LT(adaptive.elapsed(), fixed.elapsed());
}

TEST(AdaptiveSwapTest, WindowCeilingClampedToResidentBudget) {
  auto setup = make_system(SystemKind::kFastSwapAdaptive, 16);
  setup.swap.max_batch_pages = 64;  // larger than the budget allows
  Rig rig(setup);
  EXPECT_LE(rig.manager->config().max_batch_pages, 8u);
  run_sequential(rig, 600, 64);  // must not livelock in make_room
  EXPECT_LE(rig.manager->current_window(),
            rig.manager->config().max_batch_pages);
}

// --- compression admission control ------------------------------------------

TEST(AdaptiveSwapTest, IncompressibleContentSkipsLzPass) {
  auto setup = make_system(SystemKind::kFastSwap, 32);
  setup.swap.compression_admission = true;
  Rig rig(setup, /*content_random=*/1.0);
  run_sequential(rig, 600, 96);

  auto& m = rig.manager->metrics();
  EXPECT_GT(m.counter_value("swap.admit.skip"), 0u);
  EXPECT_EQ(m.counter_value("swap.admit.accept"), 0u);
  // Skipped pages are stored raw: compressed == logical bytes.
  EXPECT_EQ(m.counter_value("swap.compressed_bytes"),
            m.counter_value("swap.logical_bytes"));
}

TEST(AdaptiveSwapTest, CompressibleContentAdmitsEverything) {
  auto setup = make_system(SystemKind::kFastSwap, 32);
  setup.swap.compression_admission = true;
  Rig rig(setup, /*content_random=*/0.2);
  run_sequential(rig, 600, 96);

  auto& m = rig.manager->metrics();
  EXPECT_GT(m.counter_value("swap.admit.accept"), 0u);
  EXPECT_EQ(m.counter_value("swap.admit.skip"), 0u);
  EXPECT_LT(m.counter_value("swap.compressed_bytes"),
            m.counter_value("swap.logical_bytes"));
}

TEST(AdaptiveSwapTest, AdmissionSavesTimeOnIncompressibleContent) {
  auto base = make_system(SystemKind::kFastSwap, 32);
  Rig without(base, /*content_random=*/1.0);
  run_sequential(without, 600, 96);

  auto admitted = base;
  admitted.swap.compression_admission = true;
  Rig with(admitted, /*content_random=*/1.0);
  run_sequential(with, 600, 96);

  // The probe replaces the full (wasted) LZ pass on every stored page.
  EXPECT_LT(with.elapsed(), without.elapsed());
  // And the stored outcome is the same: everything raw.
  EXPECT_EQ(with.manager->metrics().counter_value("swap.compressed_bytes"),
            without.manager->metrics().counter_value(
                "swap.compressed_bytes"));
}

TEST(AdaptiveSwapTest, AdmittedPagesRoundTripIntact) {
  auto setup = make_system(SystemKind::kFastSwapAdaptive, 16);
  Rig rig(setup, /*content_random=*/0.3);
  for (std::uint64_t p = 0; p < 64; ++p)
    ASSERT_TRUE(rig.manager->touch(p).ok());
  for (std::uint64_t p = 0; p < 64; ++p) {
    ASSERT_TRUE(rig.manager->touch(p).ok());
    auto bytes = rig.manager->resident_bytes(p);
    ASSERT_TRUE(bytes.ok());
    std::vector<std::byte> expect(kPageBytes);
    workloads::fill_page(expect, p, 0.3, 11);
    EXPECT_EQ(fnv1a(*bytes), fnv1a(expect)) << "page " << p;
  }
}

// --- write-back staging ------------------------------------------------------

TEST(AdaptiveSwapTest, RewriteHeavyTraceCoalescesStagedPages) {
  auto setup = make_system(SystemKind::kFastSwap, 16);
  setup.swap.writeback_batches = 8;
  setup.swap.writeback_flush_delay = 200 * kMicro;  // long staging window
  Rig rig(setup);
  // Two working-set halves: touching B evicts dirty A pages into staging,
  // then rewriting A immediately invalidates the staged copies.
  for (int round = 0; round < 6; ++round) {
    for (std::uint64_t p = 0; p < 16; ++p)
      ASSERT_TRUE(rig.manager->touch(p, true).ok());
    for (std::uint64_t p = 16; p < 32; ++p)
      ASSERT_TRUE(rig.manager->touch(p, true).ok());
  }
  auto& m = rig.manager->metrics();
  EXPECT_GT(m.counter_value("swap.wb.coalesced"), 0u);
  EXPECT_GT(m.counter_value("swap.wb.staged"), 0u);
}

TEST(AdaptiveSwapTest, StagedFaultsServedFromBuffer) {
  auto setup = make_system(SystemKind::kFastSwap, 16);
  setup.swap.writeback_batches = 8;
  setup.swap.writeback_flush_delay = 500 * kMicro;
  Rig rig(setup);
  // Fill past the budget so pages 0.. get staged, then fault them back
  // immediately — before the flush deadline.
  for (std::uint64_t p = 0; p < 32; ++p)
    ASSERT_TRUE(rig.manager->touch(p, true).ok());
  ASSERT_TRUE(rig.manager->touch(0).ok());
  EXPECT_GT(rig.manager->metrics().counter_value("swap.wb.hits"), 0u);
}

TEST(AdaptiveSwapTest, BarrierDrainsStagingBuffer) {
  auto setup = make_system(SystemKind::kFastSwap, 16);
  setup.swap.writeback_batches = 8;
  setup.swap.writeback_flush_delay = 500 * kMicro;
  Rig rig(setup);
  for (std::uint64_t p = 0; p < 48; ++p)
    ASSERT_TRUE(rig.manager->touch(p, true).ok());
  EXPECT_GT(rig.manager->wb_staged_batches(), 0u);
  ASSERT_TRUE(rig.manager->wb_barrier().ok());
  EXPECT_EQ(rig.manager->wb_staged_batches(), 0u);
  EXPECT_EQ(rig.manager->wb_in_flight(), 0u);
  // Pages staged before the barrier are durable down-tier now.
  for (std::uint64_t p = 0; p < 48; ++p) {
    ASSERT_TRUE(rig.manager->touch(p).ok());
    auto bytes = rig.manager->resident_bytes(p);
    ASSERT_TRUE(bytes.ok());
    std::vector<std::byte> expect(kPageBytes);
    workloads::fill_page(expect, p, 0.3, 11);
    EXPECT_EQ(fnv1a(*bytes), fnv1a(expect));
  }
}

TEST(AdaptiveSwapTest, BoundedBufferNeverExceedsConfiguredBatches) {
  auto setup = make_system(SystemKind::kFastSwap, 16);
  setup.swap.writeback_batches = 2;
  setup.swap.writeback_flush_delay = 500 * kMicro;
  Rig rig(setup);
  Rng rng(3);
  for (int s = 0; s < 800; ++s) {
    ASSERT_TRUE(
        rig.manager->touch(rng.next_below(64), rng.bernoulli(0.5)).ok());
    ASSERT_LE(rig.manager->wb_staged_batches(), 2u);
  }
  ASSERT_TRUE(rig.manager->flush_all().ok());
  EXPECT_EQ(rig.manager->wb_staged_batches(), 0u);
}

// --- knobs-off regression ----------------------------------------------------
//
// The adaptive engine must be invisible when its knobs are off: these
// goldens (fault/swap counts, elapsed virtual time, and an FNV-1a hash of
// the full metrics dump) were captured from the pre-engine seed tree with
// the exact same trace. Any drift in a default configuration fails here.

struct Golden {
  const char* name;
  std::uint64_t faults;
  std::uint64_t swap_ins;
  std::uint64_t swap_outs;
  std::uint64_t elapsed_ns;
  std::uint64_t metrics_hash;
};

// Metrics hashes re-pinned when histogram percentile interpolation was
// fixed (bucket-boundary rounding): the event stream — counts and elapsed
// virtual time — is untouched, only the rendered p50/p99 text changed.
constexpr Golden kSeedGoldens[] = {
    {"FastSwap", 368ull, 1225ull, 34ull, 1001059535ull,
     18166210987420522657ull},
    {"FastSwap-noPBS", 430ull, 334ull, 23ull, 1000708389ull,
     11431939923952573242ull},
    {"Infiniswap", 368ull, 1225ull, 34ull, 1013738433ull,
     4251567144484363009ull},
    {"Linux", 368ull, 1225ull, 34ull, 1721164065ull,
     3902519442920250884ull},
};

TEST(AdaptiveSwapTest, KnobsOffMatchesSeedGoldensByteForByte) {
  const SystemKind kinds[] = {SystemKind::kFastSwap,
                              SystemKind::kFastSwapNoPbs,
                              SystemKind::kInfiniswap, SystemKind::kLinux};
  for (std::size_t i = 0; i < std::size(kinds); ++i) {
    Rig rig(make_system(kinds[i], 32));
    Rng rng(2024);
    for (int step = 0; step < 400; ++step) {
      const std::uint64_t page =
          rng.bernoulli(0.5) ? rng.next_below(96)
                             : static_cast<std::uint64_t>(step % 96);
      ASSERT_TRUE(rig.manager->touch(page, rng.bernoulli(0.3)).ok());
    }
    ASSERT_TRUE(rig.manager->flush_all().ok());
    for (std::uint64_t p = 0; p < 96; ++p)
      ASSERT_TRUE(rig.manager->touch(p).ok());

    const Golden& golden = kSeedGoldens[i];
    EXPECT_STREQ(rig.setup.name.c_str(), golden.name);
    EXPECT_EQ(rig.manager->faults(), golden.faults) << golden.name;
    EXPECT_EQ(rig.manager->swap_ins(), golden.swap_ins) << golden.name;
    EXPECT_EQ(rig.manager->swap_outs(), golden.swap_outs) << golden.name;
    EXPECT_EQ(static_cast<std::uint64_t>(rig.elapsed()), golden.elapsed_ns)
        << golden.name;
    const std::string dump = rig.manager->metrics().to_string();
    EXPECT_EQ(fnv1a(std::as_bytes(std::span(dump.data(), dump.size()))),
              golden.metrics_hash)
        << golden.name << " metrics drifted:\n" << dump;
  }
}

}  // namespace
}  // namespace dm::swap