// Deterministic chaos soak (§IV.D hardening, end to end).
//
// A seeded ChaosSchedule drives a Poisson crash/repair storm plus a full
// client-side network partition over a 5-node cluster while a memcached-like
// workload (fresh-key puts + reads of the live key set) runs on node 0.
// The schedule's can_crash guard enforces the single-failure discipline a
// replication factor of 2 can survive, so the test can assert *zero* data
// loss — every live key readable with correct bytes once the cluster heals —
// while still exercising retry-with-backoff, the degraded disk fallback,
// and background re-replication.
//
// Determinism: the same seed must produce a byte-identical cluster metrics
// snapshot across two full runs (the chaos analogue of the simulator's
// bit-identical guarantee).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/checksum.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "core/node_service.h"
#include "core/repair_service.h"
#include "mem/memory_map.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "sim/chaos_schedule.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "workloads/page_content.h"

namespace dm::core {
namespace {

std::vector<std::byte> page_data(std::uint64_t id) {
  std::vector<std::byte> bytes(4096);
  workloads::fill_page(bytes, id, 0.5, 7);
  return bytes;
}

struct SoakResult {
  std::string metrics_json;
  std::uint64_t crashes = 0;
  std::uint64_t skipped = 0;
  std::uint64_t retries = 0;
  std::uint64_t disk_fallbacks = 0;
  std::uint64_t repairs_completed = 0;
  std::uint64_t transient_read_failures = 0;
  std::size_t keys = 0;
  bool all_reads_served = false;
  bool data_intact = false;
  bool placement_restored = false;
};

SoakResult run_soak(std::uint64_t seed) {
  DmSystem::Config config;
  config.node_count = 5;
  config.seed = seed;
  config.node.shm.arena_bytes = 2 * MiB;
  config.node.recv.arena_bytes = 16 * MiB;
  config.node.disk.capacity_bytes = 64 * MiB;
  config.service.rdmc.replication = 2;
  config.service.rdmc.min_replicas = 1;  // degraded-mode writes allowed
  config.rpc_retry.max_attempts = 3;
  config.rpc_retry.base_backoff = 500 * kMicro;
  config.rpc_retry.max_backoff = 2 * kMilli;
  config.connect_backoff.max_attempts = 3;
  config.connect_backoff.base_backoff = 1 * kMilli;
  config.connect_backoff.max_backoff = 8 * kMilli;
  config.repair.enabled = true;
  // Fast scans: repair must finish topping up between storm events, or the
  // can_crash guard (which protects last-live-replica entries) would veto
  // most of the storm.
  config.repair.scan_period = 100 * kMilli;
  config.repair.max_repairs_per_scan = 64;
  DmSystem system(config);
  system.start();

  LdmcOptions options;
  options.shm_fraction = 0.2;  // mostly remote, some shm — all tiers in play
  auto& client = system.create_server(0, 64 * MiB, options);

  // Chaos: storm over nodes 1–4 (node 0 hosts the client and is never
  // crashed), plus one full partition of node 0 mid-soak to force the
  // degraded disk fallback.
  sim::ChaosSchedule::Hooks hooks;
  hooks.crash_node = [&](sim::ChaosSchedule::NodeRef n) {
    system.crash_node(n);
  };
  hooks.recover_node = [&](sim::ChaosSchedule::NodeRef n) {
    system.recover_node(n);
  };
  hooks.set_link_up = [&](sim::ChaosSchedule::NodeRef a,
                          sim::ChaosSchedule::NodeRef b, bool up) {
    system.fabric().set_link_up(a, b, up);
  };
  hooks.set_latency_scale = [&](double scale) {
    system.fabric().set_latency_scale(scale);
  };
  hooks.set_message_loss = [&](double p) {
    system.fabric().set_message_loss(p);
  };
  // Single-failure discipline for replication factor 2: never crash while
  // another node is down, and never kill the last live replica of any entry.
  hooks.can_crash = [&](sim::ChaosSchedule::NodeRef victim) {
    for (std::size_t i = 1; i < system.node_count(); ++i)
      if (!system.fabric().node_up(system.node(i).id())) return false;
    bool safe = true;
    client.map().for_each([&](mem::EntryId, const mem::EntryLocation& loc) {
      if (loc.tier != mem::Tier::kRemote) return;
      bool other_live = false;
      for (const auto& r : loc.replicas)
        if (r.node != victim && system.fabric().node_up(r.node))
          other_live = true;
      if (!other_live) safe = false;
    });
    return safe;
  };

  sim::ChaosSchedule chaos(system.failures(), hooks);
  Rng chaos_rng(seed ^ 0xc4a05);
  const SimTime storm_start = system.simulator().now() + 100 * kMilli;
  chaos.poisson_crash_storm(chaos_rng, storm_start,
                            storm_start + 3 * kSecond,
                            /*mean_interval=*/400 * kMilli,
                            /*outage=*/150 * kMilli, {1, 2, 3, 4});
  // Mid-soak: node 0 loses the whole fabric for 60 ms — remote puts must
  // degrade to disk, reads may fail transiently but never lose data.
  chaos.partition(storm_start + 1200 * kMilli, {0}, {1, 2, 3, 4},
                  60 * kMilli);
  // A latency spike and a loss window stress the retry/backoff machinery.
  chaos.latency_spike(storm_start + 1800 * kMilli, 4.0, 100 * kMilli);
  chaos.packet_loss(storm_start + 2200 * kMilli, 0.05, 100 * kMilli);

  // Memcached-like workload: fresh-key puts plus reads over the live key
  // set. No overwrites or removes mid-storm (an overwrite is remove+put,
  // and removes against unreachable replica hosts are not atomic).
  Rng workload_rng(seed ^ 0x7a3);
  std::map<mem::EntryId, std::uint64_t> shadow;  // key -> content id
  mem::EntryId next_key = 1;
  SoakResult result;
  const SimTime soak_end = storm_start + 3500 * kMilli;
  while (system.simulator().now() < soak_end) {
    for (int i = 0; i < 2; ++i) {
      const mem::EntryId key = next_key++;
      if (client.put_sync(key, page_data(key)).ok()) shadow[key] = key;
    }
    for (int i = 0; i < 3 && !shadow.empty(); ++i) {
      auto it = shadow.begin();
      std::advance(it, workload_rng.next_below(shadow.size()));
      std::vector<std::byte> out(4096);
      if (!client.get_sync(it->first, out).ok())
        ++result.transient_read_failures;  // must be served after heal
    }
    system.run_for(10 * kMilli);
  }

  // Heal: let membership re-detect recovered nodes, then give the repair
  // scans time to top everything back up and re-promote disk entries.
  system.run_for(15 * kSecond);
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = 0; i < system.node_count(); ++i) {
      bool scanned = false;
      system.repair(i).scan_tick([&]() { scanned = true; });
      (void)system.simulator().run_until_flag(scanned);
    }
    system.run_for(500 * kMilli);
  }

  // Every key ever acknowledged must now be served with correct bytes.
  result.all_reads_served = true;
  result.data_intact = true;
  for (const auto& [key, content] : shadow) {
    std::vector<std::byte> out(4096);
    if (!client.get_sync(key, out).ok()) {
      result.all_reads_served = false;
      continue;
    }
    if (out != page_data(content)) result.data_intact = false;
  }

  // Replication factor restored everywhere, nothing still degraded.
  result.placement_restored = true;
  client.map().for_each([&](mem::EntryId, const mem::EntryLocation& loc) {
    if (loc.degraded) result.placement_restored = false;
    if (loc.tier == mem::Tier::kRemote &&
        loc.replicas.size() < config.service.rdmc.replication)
      result.placement_restored = false;
  });

  result.keys = shadow.size();
  result.crashes = chaos.crashes_fired();
  result.skipped = chaos.skipped_crashes();
  for (std::size_t i = 0; i < system.node_count(); ++i)
    result.retries +=
        system.node(i).rpc().metrics().counter_value("rpc.retries");
  result.disk_fallbacks = system.total_counter("ldms.degraded_to_disk");
  result.repairs_completed = system.total_counter("repair.completed");
  result.metrics_json = system.hub().snapshot_json();
  return result;
}

TEST(ChaosSoakTest, SurvivesCrashStormWithZeroDataLoss) {
  const SoakResult r = run_soak(1905);
  std::printf("soak: crashes=%llu skipped=%llu keys=%zu retries=%llu "
              "disk_fallbacks=%llu repairs=%llu transient_read_failures=%llu\n",
              static_cast<unsigned long long>(r.crashes),
              static_cast<unsigned long long>(r.skipped), r.keys,
              static_cast<unsigned long long>(r.retries),
              static_cast<unsigned long long>(r.disk_fallbacks),
              static_cast<unsigned long long>(r.repairs_completed),
              static_cast<unsigned long long>(r.transient_read_failures));

  // The storm actually happened.
  EXPECT_GE(r.crashes, 3u);
  EXPECT_GT(r.keys, 100u);

  // Acceptance: at least one instance of each §IV.D hardening mechanism.
  EXPECT_GE(r.retries, 1u) << "no retry-with-backoff observed";
  EXPECT_GE(r.disk_fallbacks, 1u) << "no degraded disk fallback observed";
  EXPECT_GE(r.repairs_completed, 1u) << "no background re-replication";

  // Zero data loss: every acknowledged key served, bytes intact, and the
  // intended placement fully restored after the heal.
  EXPECT_TRUE(r.all_reads_served);
  EXPECT_TRUE(r.data_intact);
  EXPECT_TRUE(r.placement_restored);
}

TEST(ChaosSoakTest, SameSeedProducesIdenticalMetricSnapshots) {
  const SoakResult a = run_soak(77);
  const SoakResult b = run_soak(77);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.skipped, b.skipped);
  EXPECT_EQ(a.keys, b.keys);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.transient_read_failures, b.transient_read_failures);
  // The strong form: the merged cluster snapshot (every counter and
  // histogram on every node) is byte-identical.
  EXPECT_EQ(a.metrics_json, b.metrics_json);
}

// --- swap-layer chaos soak (adaptive engine + write-back under fire) --------
//
// The full adaptive swap path — pattern-aware PBS, admission control, and
// the write-back staging buffer — paging over a 5-node cluster while a
// seeded crash storm takes out backend nodes and a partition cuts node 0
// off entirely. Faults and flushes may fail transiently mid-storm; the
// acceptance bar is the same as the KV soak's: once the cluster heals,
// every page ever written is recoverable with exact bytes, and the same
// seed replays to identical swap counters.

struct SwapSoakResult {
  std::uint64_t crashes = 0;
  std::uint64_t transient_fault_failures = 0;
  std::uint64_t wb_staged = 0;
  std::uint64_t degraded_batches = 0;
  std::uint64_t faults = 0;
  std::uint64_t swap_ins = 0;
  std::uint64_t swap_outs = 0;
  std::uint64_t metrics_hash = 0;
  bool data_intact = false;
};

SwapSoakResult run_swap_soak(std::uint64_t seed) {
  DmSystem::Config config;
  config.node_count = 5;
  config.seed = seed;
  config.node.shm.arena_bytes = 2 * MiB;
  config.node.recv.arena_bytes = 16 * MiB;
  config.node.disk.capacity_bytes = 64 * MiB;
  config.service.rdmc.replication = 2;
  config.service.rdmc.min_replicas = 1;
  config.rpc_retry.max_attempts = 3;
  config.rpc_retry.base_backoff = 500 * kMicro;
  config.rpc_retry.max_backoff = 2 * kMilli;
  config.repair.enabled = true;
  config.repair.scan_period = 100 * kMilli;
  config.repair.max_repairs_per_scan = 64;
  DmSystem system(config);
  system.start();

  LdmcOptions options;
  options.shm_fraction = 0.2;  // most batches remote => exposed to crashes
  auto& client = system.create_server(0, 64 * MiB, options);

  auto setup = swap::make_system(swap::SystemKind::kFastSwapAdaptive, 24);
  setup.swap.writeback_flush_delay = 5 * kMilli;
  swap::SwapManager manager(
      client, setup.swap, [](std::uint64_t page, std::span<std::byte> out) {
        workloads::fill_page(out, page, 0.4, 29);
      });

  sim::ChaosSchedule::Hooks hooks;
  hooks.crash_node = [&](sim::ChaosSchedule::NodeRef n) {
    system.crash_node(n);
  };
  hooks.recover_node = [&](sim::ChaosSchedule::NodeRef n) {
    system.recover_node(n);
  };
  hooks.set_link_up = [&](sim::ChaosSchedule::NodeRef a,
                          sim::ChaosSchedule::NodeRef b, bool up) {
    system.fabric().set_link_up(a, b, up);
  };
  hooks.set_latency_scale = [&](double scale) {
    system.fabric().set_latency_scale(scale);
  };
  hooks.set_message_loss = [&](double p) {
    system.fabric().set_message_loss(p);
  };
  hooks.can_crash = [&](sim::ChaosSchedule::NodeRef victim) {
    for (std::size_t i = 1; i < system.node_count(); ++i)
      if (!system.fabric().node_up(system.node(i).id())) return false;
    bool safe = true;
    client.map().for_each([&](mem::EntryId, const mem::EntryLocation& loc) {
      if (loc.tier != mem::Tier::kRemote) return;
      bool other_live = false;
      for (const auto& r : loc.replicas)
        if (r.node != victim && system.fabric().node_up(r.node))
          other_live = true;
      if (!other_live) safe = false;
    });
    return safe;
  };

  sim::ChaosSchedule chaos(system.failures(), hooks);
  Rng chaos_rng(seed ^ 0x5afe);
  const SimTime storm_start = system.simulator().now() + 100 * kMilli;
  chaos.poisson_crash_storm(chaos_rng, storm_start,
                            storm_start + 2 * kSecond,
                            /*mean_interval=*/400 * kMilli,
                            /*outage=*/150 * kMilli, {1, 2, 3, 4});
  // Node 0 loses the fabric mid-storm: write-back flushes in flight must
  // retry into the degraded disk fallback, not drop pages.
  chaos.partition(storm_start + 800 * kMilli, {0}, {1, 2, 3, 4},
                  60 * kMilli);

  SwapSoakResult result;
  Rng workload_rng(seed ^ 0x90e);
  const std::uint64_t page_space = 96;
  const SimTime soak_end = storm_start + 2500 * kMilli;
  std::uint64_t cursor = 0;
  while (system.simulator().now() < soak_end) {
    // Mixed phases, like real paging: sequential runs with random jumps.
    std::uint64_t page;
    if (workload_rng.bernoulli(0.6)) {
      page = cursor++ % page_space;
    } else {
      page = workload_rng.next_below(page_space);
    }
    if (!manager.touch(page, workload_rng.bernoulli(0.4)).ok())
      ++result.transient_fault_failures;  // storm-window fault; retried below
    system.run_for(1 * kMilli);
  }

  // Heal, then drain: barrier every staged batch and give repair time to
  // restore placement.
  system.run_for(15 * kSecond);
  (void)manager.wb_barrier();
  for (int round = 0; round < 3; ++round) {
    for (std::size_t i = 0; i < system.node_count(); ++i) {
      bool scanned = false;
      system.repair(i).scan_tick([&]() { scanned = true; });
      (void)system.simulator().run_until_flag(scanned);
    }
    system.run_for(500 * kMilli);
  }

  // Zero page loss: every page in the space reads back with exact bytes.
  result.data_intact = true;
  for (std::uint64_t p = 0; p < page_space; ++p) {
    if (!manager.touch(p).ok()) {
      result.data_intact = false;
      continue;
    }
    auto bytes = manager.resident_bytes(p);
    std::vector<std::byte> expect(4096);
    workloads::fill_page(expect, p, 0.4, 29);
    if (!bytes.ok() || fnv1a(*bytes) != fnv1a(expect))
      result.data_intact = false;
  }

  result.crashes = chaos.crashes_fired();
  result.wb_staged = manager.metrics().counter_value("swap.wb.staged");
  result.degraded_batches =
      manager.metrics().counter_value("swap.degraded_batches");
  result.faults = manager.faults();
  result.swap_ins = manager.swap_ins();
  result.swap_outs = manager.swap_outs();
  const std::string dump = manager.metrics().to_string();
  result.metrics_hash =
      fnv1a(std::as_bytes(std::span(dump.data(), dump.size())));
  return result;
}

TEST(ChaosSwapSoakTest, WriteBackStormLosesNoAcknowledgedPage) {
  const SwapSoakResult r = run_swap_soak(811);
  std::printf("swap soak: crashes=%llu staged=%llu degraded=%llu "
              "faults=%llu transient=%llu\n",
              static_cast<unsigned long long>(r.crashes),
              static_cast<unsigned long long>(r.wb_staged),
              static_cast<unsigned long long>(r.degraded_batches),
              static_cast<unsigned long long>(r.faults),
              static_cast<unsigned long long>(r.transient_fault_failures));
  EXPECT_GE(r.crashes, 2u);                  // the storm happened
  EXPECT_GT(r.wb_staged, 0u);                // the staging buffer was used
  EXPECT_TRUE(r.data_intact);                // and nothing was lost
}

TEST(ChaosSwapSoakTest, SameSeedSwapSoakIsByteIdentical) {
  const SwapSoakResult a = run_swap_soak(88);
  const SwapSoakResult b = run_swap_soak(88);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.faults, b.faults);
  EXPECT_EQ(a.swap_ins, b.swap_ins);
  EXPECT_EQ(a.swap_outs, b.swap_outs);
  EXPECT_EQ(a.transient_fault_failures, b.transient_fault_failures);
  EXPECT_EQ(a.metrics_hash, b.metrics_hash);
}

// --- erasure-coded chaos soak (Hydra-style resilience under fire) -----------
//
// The same Poisson crash storm + partition + latency/loss windows as the
// replication soak, but every remote put is striped (k=2, r=2) across four
// distinct nodes instead of copied. The can_crash guard enforces the
// EC-survivable discipline — never take a node down if any stripe would drop
// below k live shard hosts — so the acceptance bar is absolute: zero data
// loss (every acknowledged key byte-exact after the heal, reconstructed
// through the degraded path where needed), every stripe re-encoded back to
// k+r shards, and the whole run byte-identical under the same seed.

struct EcSoakResult {
  std::string metrics_json;
  std::uint64_t crashes = 0;
  std::uint64_t skipped = 0;
  std::uint64_t degraded_reads = 0;
  std::uint64_t shards_repaired = 0;
  std::uint64_t transient_read_failures = 0;
  std::size_t keys = 0;
  bool all_reads_served = false;
  bool data_intact = false;
  bool stripes_restored = false;
};

EcSoakResult run_ec_soak(std::uint64_t seed) {
  constexpr std::size_t kEcK = 2;
  constexpr std::size_t kEcR = 2;
  DmSystem::Config config;
  config.node_count = 7;
  config.seed = seed;
  config.node.shm.arena_bytes = 2 * MiB;
  config.node.recv.arena_bytes = 16 * MiB;
  config.node.disk.capacity_bytes = 64 * MiB;
  config.service.rdmc.ec_k = kEcK;
  config.service.rdmc.ec_r = kEcR;
  config.service.rdmc.min_shards = kEcK;  // degraded short stripes allowed
  config.rpc_retry.max_attempts = 3;
  config.rpc_retry.base_backoff = 500 * kMicro;
  config.rpc_retry.max_backoff = 2 * kMilli;
  config.connect_backoff.max_attempts = 3;
  config.connect_backoff.base_backoff = 1 * kMilli;
  config.connect_backoff.max_backoff = 8 * kMilli;
  config.repair.enabled = true;
  config.repair.scan_period = 100 * kMilli;
  config.repair.max_repairs_per_scan = 64;
  DmSystem system(config);
  system.start();

  LdmcOptions options;
  options.shm_fraction = 0.2;
  auto& client = system.create_server(0, 64 * MiB, options);

  sim::ChaosSchedule::Hooks hooks;
  hooks.crash_node = [&](sim::ChaosSchedule::NodeRef n) {
    system.crash_node(n);
  };
  hooks.recover_node = [&](sim::ChaosSchedule::NodeRef n) {
    system.recover_node(n);
  };
  hooks.set_link_up = [&](sim::ChaosSchedule::NodeRef a,
                          sim::ChaosSchedule::NodeRef b, bool up) {
    system.fabric().set_link_up(a, b, up);
  };
  hooks.set_latency_scale = [&](double scale) {
    system.fabric().set_latency_scale(scale);
  };
  hooks.set_message_loss = [&](double p) {
    system.fabric().set_message_loss(p);
  };
  // EC-survivable discipline: a crash is vetoed if any stripe would be left
  // with fewer than k live shard hosts (counting the victim as down).
  hooks.can_crash = [&](sim::ChaosSchedule::NodeRef victim) {
    bool safe = true;
    client.map().for_each([&](mem::EntryId, const mem::EntryLocation& loc) {
      if (loc.tier != mem::Tier::kRemote || loc.ec_k == 0) return;
      std::size_t live = 0;
      for (const auto& r : loc.replicas)
        if (r.node != victim && system.fabric().node_up(r.node)) ++live;
      if (live < loc.ec_k) safe = false;
    });
    return safe;
  };

  sim::ChaosSchedule chaos(system.failures(), hooks);
  Rng chaos_rng(seed ^ 0xec5704);
  const SimTime storm_start = system.simulator().now() + 100 * kMilli;
  chaos.poisson_crash_storm(chaos_rng, storm_start,
                            storm_start + 3 * kSecond,
                            /*mean_interval=*/400 * kMilli,
                            /*outage=*/150 * kMilli, {1, 2, 3, 4, 5, 6});
  chaos.partition(storm_start + 1200 * kMilli, {0}, {1, 2, 3, 4, 5, 6},
                  60 * kMilli);
  chaos.latency_spike(storm_start + 1800 * kMilli, 4.0, 100 * kMilli);
  chaos.packet_loss(storm_start + 2200 * kMilli, 0.05, 100 * kMilli);

  Rng workload_rng(seed ^ 0x7a3);
  std::map<mem::EntryId, std::uint64_t> shadow;
  mem::EntryId next_key = 1;
  EcSoakResult result;
  const SimTime soak_end = storm_start + 3500 * kMilli;
  while (system.simulator().now() < soak_end) {
    for (int i = 0; i < 2; ++i) {
      const mem::EntryId key = next_key++;
      if (client.put_sync(key, page_data(key)).ok()) shadow[key] = key;
    }
    for (int i = 0; i < 3 && !shadow.empty(); ++i) {
      auto it = shadow.begin();
      std::advance(it, workload_rng.next_below(shadow.size()));
      std::vector<std::byte> out(4096);
      if (!client.get_sync(it->first, out).ok())
        ++result.transient_read_failures;
    }
    system.run_for(10 * kMilli);
  }

  system.run_for(15 * kSecond);
  for (int round = 0; round < 5; ++round) {
    for (std::size_t i = 0; i < system.node_count(); ++i) {
      bool scanned = false;
      system.repair(i).scan_tick([&]() { scanned = true; });
      (void)system.simulator().run_until_flag(scanned);
    }
    system.run_for(500 * kMilli);
  }

  // Zero data loss: every acknowledged key readable, byte-exact — through
  // reconstruction if its direct shards are still being repaired.
  result.all_reads_served = true;
  result.data_intact = true;
  for (const auto& [key, content] : shadow) {
    std::vector<std::byte> out(4096);
    if (!client.get_sync(key, out).ok()) {
      result.all_reads_served = false;
      continue;
    }
    if (out != page_data(content)) result.data_intact = false;
  }

  // Every stripe back to k+r shards on distinct hosts, nothing degraded.
  result.stripes_restored = true;
  client.map().for_each([&](mem::EntryId, const mem::EntryLocation& loc) {
    if (loc.degraded) result.stripes_restored = false;
    if (loc.tier != mem::Tier::kRemote || loc.ec_k == 0) return;
    if (loc.replicas.size() <
        static_cast<std::size_t>(loc.ec_k) + loc.ec_r)
      result.stripes_restored = false;
    std::set<std::uint32_t> shards;
    for (const auto& r : loc.replicas) shards.insert(r.shard);
    if (shards.size() != loc.replicas.size()) result.stripes_restored = false;
  });

  result.keys = shadow.size();
  result.crashes = chaos.crashes_fired();
  result.skipped = chaos.skipped_crashes();
  result.degraded_reads = system.total_counter("ec.degraded_reads");
  result.shards_repaired = system.total_counter("ec.shards_repaired");
  result.metrics_json = system.hub().snapshot_json();
  return result;
}

TEST(ChaosEcSoakTest, EcCrashStormLosesNoAcknowledgedKey) {
  const EcSoakResult r = run_ec_soak(2604);
  std::printf("ec soak: crashes=%llu skipped=%llu keys=%zu "
              "degraded_reads=%llu shards_repaired=%llu "
              "transient_read_failures=%llu\n",
              static_cast<unsigned long long>(r.crashes),
              static_cast<unsigned long long>(r.skipped), r.keys,
              static_cast<unsigned long long>(r.degraded_reads),
              static_cast<unsigned long long>(r.shards_repaired),
              static_cast<unsigned long long>(r.transient_read_failures));

  // The storm actually happened, and the EC machinery actually fired.
  EXPECT_GE(r.crashes, 3u);
  EXPECT_GT(r.keys, 100u);
  EXPECT_GE(r.degraded_reads, 1u) << "no reconstruction exercised";
  EXPECT_GE(r.shards_repaired, 1u) << "no shard re-encoded onto fresh nodes";

  // Absolute acceptance: zero loss, full stripes restored.
  EXPECT_TRUE(r.all_reads_served);
  EXPECT_TRUE(r.data_intact);
  EXPECT_TRUE(r.stripes_restored);
}

TEST(ChaosEcSoakTest, SameSeedEcSoakIsByteIdentical) {
  const EcSoakResult a = run_ec_soak(91);
  const EcSoakResult b = run_ec_soak(91);
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.keys, b.keys);
  EXPECT_EQ(a.degraded_reads, b.degraded_reads);
  EXPECT_EQ(a.shards_repaired, b.shards_repaired);
  EXPECT_EQ(a.transient_read_failures, b.transient_read_failures);
  EXPECT_EQ(a.metrics_json, b.metrics_json);

  // CI hook (ci.sh --ec-only): dump the snapshot for the cross-process
  // same-seed diff.
  // dm-lint: allow(det-getenv) — CI artifact path only, never sim state.
  if (const char* path = std::getenv("DM_EC_SNAPSHOT")) {
    std::ofstream dump(path, std::ios::trunc);
    ASSERT_TRUE(dump.is_open()) << path;
    dump << a.metrics_json;
  }
}

// --- flight-recorder soak (crash-time forensics) ----------------------------
//
// The span tracer and flight recorder ride the KV soak: every closed span
// lands in a bounded per-node ring, and the first chaos crash dumps
// flight_<node>.json for every node with records. The acceptance bar is the
// observability issue's: a crash-time dump exists, the captured span chain
// crosses at least two nodes (the same trace appears in different nodes'
// rings), and the dumps are byte-identical across two same-seed runs.

struct FlightSoakResult {
  std::uint64_t crashes = 0;
  std::size_t files_at_crash = 0;
  std::string crash_reason;
  std::map<std::uint32_t, std::string> crash_dumps;  // node -> dump_json
};

// Extracts every `"trace": "<origin>:<seq>"` label from one flight dump.
std::vector<std::string> trace_labels(const std::string& dump) {
  std::vector<std::string> labels;
  const std::string key = "\"trace\": \"";
  for (std::size_t pos = dump.find(key); pos != std::string::npos;
       pos = dump.find(key, pos + 1)) {
    const std::size_t start = pos + key.size();
    const std::size_t end = dump.find('"', start);
    if (end == std::string::npos) break;
    labels.push_back(dump.substr(start, end - start));
  }
  return labels;
}

FlightSoakResult run_flight_soak(std::uint64_t seed, const std::string& dir) {
  std::filesystem::create_directories(dir);
  DmSystem::Config config;
  config.node_count = 5;
  config.seed = seed;
  config.node.shm.arena_bytes = 2 * MiB;
  config.node.recv.arena_bytes = 16 * MiB;
  config.node.disk.capacity_bytes = 64 * MiB;
  config.service.rdmc.replication = 2;
  config.service.rdmc.min_replicas = 1;
  config.rpc_retry.max_attempts = 3;
  config.rpc_retry.base_backoff = 500 * kMicro;
  config.rpc_retry.max_backoff = 2 * kMilli;
  DmSystem system(config);
  system.start();

  obs::SpanTracer tracer(system.simulator());
  obs::FlightRecorder flight(system.simulator());
  tracer.set_flight_recorder(&flight);
  system.set_span_sink(&tracer);

  LdmcOptions options;
  options.shm_fraction = 0.1;  // nearly everything crosses the wire
  auto& client = system.create_server(0, 64 * MiB, options);

  FlightSoakResult result;
  system.failures().set_fault_listener([&](std::string_view label) {
    if (label.rfind("chaos.crash.", 0) != 0) return;
    if (!result.crash_dumps.empty()) return;  // keep the first crash only
    result.crash_reason = std::string(label);
    result.files_at_crash = flight.dump_all(dir, label);
    for (std::uint32_t n = 0; n < system.node_count(); ++n)
      if (flight.record_count(n) > 0)
        result.crash_dumps[n] = flight.dump_json(n, label);
  });

  sim::ChaosSchedule::Hooks hooks;
  hooks.crash_node = [&](sim::ChaosSchedule::NodeRef n) {
    system.crash_node(n);
  };
  hooks.recover_node = [&](sim::ChaosSchedule::NodeRef n) {
    system.recover_node(n);
  };
  hooks.can_crash = [&](sim::ChaosSchedule::NodeRef) {
    for (std::size_t i = 1; i < system.node_count(); ++i)
      if (!system.fabric().node_up(system.node(i).id())) return false;
    return true;
  };

  sim::ChaosSchedule chaos(system.failures(), hooks);
  Rng chaos_rng(seed ^ 0xf117);
  const SimTime storm_start = system.simulator().now() + 100 * kMilli;
  chaos.poisson_crash_storm(chaos_rng, storm_start,
                            storm_start + 1500 * kMilli,
                            /*mean_interval=*/300 * kMilli,
                            /*outage=*/100 * kMilli, {1, 2, 3, 4});

  Rng workload_rng(seed ^ 0xf2);
  std::vector<mem::EntryId> keys;
  mem::EntryId next_key = 1;
  const SimTime soak_end = storm_start + 1800 * kMilli;
  while (system.simulator().now() < soak_end) {
    const mem::EntryId key = next_key++;
    if (client.put_sync(key, page_data(key)).ok()) keys.push_back(key);
    for (int i = 0; i < 2 && !keys.empty(); ++i) {
      std::vector<std::byte> out(4096);
      (void)client.get_sync(keys[workload_rng.next_below(keys.size())], out);
    }
    system.run_for(10 * kMilli);
  }

  result.crashes = chaos.crashes_fired();
  return result;
}

TEST(ChaosFlightTest, CrashDumpsFlightRecordsSpanningNodes) {
  const std::string dir =
      (std::filesystem::path(testing::TempDir()) / "chaos_flight").string();
  const FlightSoakResult r = run_flight_soak(4242, dir);
  std::printf("flight soak: crashes=%llu files=%zu reason=%s nodes=%zu\n",
              static_cast<unsigned long long>(r.crashes), r.files_at_crash,
              r.crash_reason.c_str(), r.crash_dumps.size());

  // A crash fired and dumped at least one flight file at crash time.
  ASSERT_GE(r.crashes, 1u);
  ASSERT_GE(r.files_at_crash, 1u);
  EXPECT_EQ(r.crash_reason.rfind("chaos.crash.", 0), 0u);

  // The files landed on disk with the dm_flight format and the crash reason.
  ASSERT_FALSE(r.crash_dumps.empty());
  const std::uint32_t first_node = r.crash_dumps.begin()->first;
  std::ifstream in(dir + "/flight_" + std::to_string(first_node) + ".json");
  ASSERT_TRUE(in.good());
  std::stringstream file_contents;
  file_contents << in.rdbuf();
  EXPECT_NE(file_contents.str().find("\"tool\": \"dm_flight\""),
            std::string::npos);
  EXPECT_NE(file_contents.str().find(r.crash_reason), std::string::npos);

  // The captured span chain crosses nodes: some trace label shows up in at
  // least two different nodes' rings (caller span + remote dispatch span).
  std::map<std::string, std::set<std::uint32_t>> nodes_by_trace;
  for (const auto& [node, dump] : r.crash_dumps)
    for (const auto& label : trace_labels(dump))
      nodes_by_trace[label].insert(node);
  bool crosses = false;
  for (const auto& [label, nodes] : nodes_by_trace)
    if (nodes.size() >= 2) crosses = true;
  EXPECT_TRUE(crosses) << "no trace spans more than one node's ring";
}

TEST(ChaosFlightTest, SameSeedCrashDumpsAreByteIdentical) {
  const std::string base =
      (std::filesystem::path(testing::TempDir()) / "chaos_flight_det")
          .string();
  const FlightSoakResult a = run_flight_soak(909, base + "_a");
  const FlightSoakResult b = run_flight_soak(909, base + "_b");
  EXPECT_EQ(a.crashes, b.crashes);
  EXPECT_EQ(a.files_at_crash, b.files_at_crash);
  EXPECT_EQ(a.crash_reason, b.crash_reason);
  ASSERT_FALSE(a.crash_dumps.empty());
  EXPECT_EQ(a.crash_dumps, b.crash_dumps);
}

}  // namespace
}  // namespace dm::core
