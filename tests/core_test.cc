// End-to-end tests for the disaggregated memory core: tier routing, atomic
// replication, failover, repair, eviction drains, and data integrity.
#include <gtest/gtest.h>

#include "common/checksum.h"
#include "common/status.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "core/node_service.h"
#include "mem/memory_map.h"
#include "workloads/page_content.h"

namespace dm::core {
namespace {

std::vector<std::byte> page_data(std::uint64_t id, double r = 0.5) {
  std::vector<std::byte> bytes(4096);
  workloads::fill_page(bytes, id, r, 7);
  return bytes;
}

core::DmSystem::Config small_cluster(std::size_t nodes = 4) {
  core::DmSystem::Config config;
  config.node_count = nodes;
  config.node.shm.arena_bytes = 4 * MiB;
  config.node.recv.arena_bytes = 8 * MiB;
  config.node.disk.capacity_bytes = 64 * MiB;
  config.service.rdmc.replication = 3;
  return config;
}

TEST(DmSystemTest, BringUpAndTopology) {
  DmSystem system(small_cluster(6));
  system.start();
  EXPECT_EQ(system.node_count(), 6u);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_TRUE(system.node(i).up());
}

TEST(DmSystemTest, ShmFirstPutServedAtDramSpeed) {
  DmSystem system(small_cluster());
  system.start();
  auto& client = system.create_server(0, 64 * MiB);

  const auto data = page_data(1);
  const SimTime before = system.simulator().now();
  ASSERT_TRUE(client.put_sync(1, data).ok());
  const SimTime put_cost = system.simulator().now() - before;

  EXPECT_EQ(client.puts_to_shm(), 1u);
  EXPECT_EQ(client.map().lookup(1)->tier, mem::Tier::kSharedMemory);
  // Served locally: far below one RDMA round trip.
  EXPECT_LT(put_cost, 2 * kMicro);

  std::vector<std::byte> out(4096);
  ASSERT_TRUE(client.get_sync(1, out).ok());
  EXPECT_EQ(out, data);
}

TEST(DmSystemTest, RemotePutIsReplicatedOnDistinctNodes) {
  auto config = small_cluster();
  DmSystem system(config);
  system.start();
  LdmcOptions options;
  options.shm_fraction = 0.0;  // force remote
  auto& client = system.create_server(0, 64 * MiB, options);

  const auto data = page_data(2);
  ASSERT_TRUE(client.put_sync(2, data).ok());
  auto loc = client.map().lookup(2);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->tier, mem::Tier::kRemote);
  ASSERT_EQ(loc->replicas.size(), 3u);
  std::set<net::NodeId> nodes;
  for (const auto& r : loc->replicas) {
    nodes.insert(r.node);
    EXPECT_NE(r.node, system.node(0).id());  // never self
  }
  EXPECT_EQ(nodes.size(), 3u);

  std::vector<std::byte> out(4096);
  ASSERT_TRUE(client.get_sync(2, out).ok());
  EXPECT_EQ(out, data);
}

TEST(DmSystemTest, RemoteGetFailsOverWhenReplicaDies) {
  DmSystem system(small_cluster());
  system.start();
  LdmcOptions options;
  options.shm_fraction = 0.0;
  auto& client = system.create_server(0, 64 * MiB, options);

  const auto data = page_data(3);
  ASSERT_TRUE(client.put_sync(3, data).ok());
  auto loc = client.map().lookup(3);
  ASSERT_TRUE(loc.ok());

  // Kill the first replica host; the read must fail over.
  const net::NodeId dead = loc->replicas.front().node;
  system.fabric().set_node_up(dead, false);
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(client.get_sync(3, out).ok());
  EXPECT_EQ(out, data);
}

TEST(DmSystemTest, TwoSidedReadFallbackReturnsSameBytes) {
  DmSystem system(small_cluster());
  system.start();
  LdmcOptions options;
  options.shm_fraction = 0.0;  // force remote
  auto& client = system.create_server(0, 64 * MiB, options);

  const auto data = page_data(11);
  ASSERT_TRUE(client.put_sync(11, data).ok());
  auto loc = client.map().lookup(11);
  ASSERT_TRUE(loc.ok());

  // The control-channel (kRpcReadBlock) path must return the same bytes
  // the one-sided RDMA READ would.
  std::vector<std::byte> out(4096);
  Status result = InternalError("pending");
  system.service(0).rdmc().read_twosided(
      loc->replicas, 0, out, [&](const Status& s) { result = s; });
  system.run_for(kSecond);
  ASSERT_TRUE(result.ok()) << result;
  EXPECT_EQ(out, data);
}

TEST(DmSystemTest, TwoSidedReadFailsOverAndServesSubRange) {
  DmSystem system(small_cluster());
  system.start();
  LdmcOptions options;
  options.shm_fraction = 0.0;
  auto& client = system.create_server(0, 64 * MiB, options);

  const auto data = page_data(12);
  ASSERT_TRUE(client.put_sync(12, data).ok());
  auto loc = client.map().lookup(12);
  ASSERT_TRUE(loc.ok());
  ASSERT_EQ(loc->replicas.size(), 3u);

  // Kill the first replica host: the two-sided read fails over, and a
  // sub-range request returns exactly the requested slice.
  system.fabric().set_node_up(loc->replicas.front().node, false);
  std::vector<std::byte> out(512);
  Status result = InternalError("pending");
  system.service(0).rdmc().read_twosided(
      loc->replicas, 1024, out, [&](const Status& s) { result = s; });
  system.run_for(2 * kSecond);
  ASSERT_TRUE(result.ok()) << result;
  EXPECT_EQ(std::vector<std::byte>(data.begin() + 1024,
                                   data.begin() + 1024 + 512),
            out);
}

TEST(DmSystemTest, RepairRestoresReplicationFactor) {
  DmSystem system(small_cluster(5));
  system.start();
  LdmcOptions options;
  options.shm_fraction = 0.0;
  auto& client = system.create_server(0, 64 * MiB, options);

  const auto data = page_data(4);
  ASSERT_TRUE(client.put_sync(4, data).ok());
  const net::NodeId dead = client.map().lookup(4)->replicas.front().node;

  system.crash_node(dead);
  // Let failure detection + repair run.
  system.run_for(10 * kSecond);

  auto loc = client.map().lookup(4);
  ASSERT_TRUE(loc.ok());
  EXPECT_EQ(loc->replicas.size(), 3u);
  for (const auto& r : loc->replicas) EXPECT_NE(r.node, dead);
  EXPECT_GE(system.service(0).metrics().counter_value(
                "ldms.repaired_entries"), 1u);
  EXPECT_EQ(system.service(0).data_loss_entries(), 0u);

  std::vector<std::byte> out(4096);
  ASSERT_TRUE(client.get_sync(4, out).ok());
  EXPECT_EQ(out, data);
}

TEST(DmSystemTest, ShmOverflowSpillsLruToRemote) {
  auto config = small_cluster();
  config.node.shm.arena_bytes = 256 * KiB;  // tiny pool
  DmSystem system(config);
  system.start();
  LdmcOptions options;
  options.shm_fraction = 1.0;
  // Server donates 10% of 2.5 MiB = 256 KiB (matches the arena).
  auto& client = system.create_server(0, 2560 * KiB, options);

  // Write enough 4 KiB entries to overflow the pool several times.
  for (std::uint64_t id = 0; id < 256; ++id)
    ASSERT_TRUE(client.put_sync(id, page_data(id)).ok()) << id;

  EXPECT_GT(system.service(0).metrics().counter_value(
                "ldms.spilled_to_remote"), 0u);
  // Every entry must still be readable and intact, wherever it lives.
  std::vector<std::byte> out(4096);
  for (std::uint64_t id = 0; id < 256; ++id) {
    ASSERT_TRUE(client.get_sync(id, out).ok()) << id;
    ASSERT_EQ(fnv1a(out), fnv1a(page_data(id))) << id;
  }
}

TEST(DmSystemTest, FallsBackToDiskWhenClusterFull) {
  auto config = small_cluster(2);  // one peer only
  config.node.shm.arena_bytes = 64 * KiB;
  config.node.recv.arena_bytes = 256 * KiB;
  config.service.rdmc.replication = 1;
  DmSystem system(config);
  system.start();
  auto& client = system.create_server(0, 640 * KiB);

  // Overflow shm (64 KiB donated) and the peer's 256 KiB recv pool.
  for (std::uint64_t id = 0; id < 256; ++id)
    ASSERT_TRUE(client.put_sync(id, page_data(id)).ok()) << id;
  EXPECT_GT(client.puts_to_disk(), 0u);

  std::vector<std::byte> out(4096);
  for (std::uint64_t id = 0; id < 256; ++id) {
    ASSERT_TRUE(client.get_sync(id, out).ok()) << id;
    ASSERT_EQ(fnv1a(out), fnv1a(page_data(id))) << id;
  }
}

TEST(DmSystemTest, RatioRoutingSplitsTraffic) {
  DmSystem system(small_cluster());
  system.start();
  LdmcOptions options;
  options.shm_fraction = 0.7;
  auto& client = system.create_server(0, 64 * MiB, options);
  for (std::uint64_t id = 0; id < 100; ++id)
    ASSERT_TRUE(client.put_sync(id, page_data(id)).ok());
  EXPECT_EQ(client.puts_to_shm(), 70u);
  EXPECT_EQ(client.puts_to_remote(), 30u);
}

TEST(DmSystemTest, RemoveFreesEveryTier) {
  DmSystem system(small_cluster());
  system.start();
  LdmcOptions remote_only;
  remote_only.shm_fraction = 0.0;
  auto& client = system.create_server(0, 64 * MiB, remote_only);

  ASSERT_TRUE(client.put_sync(1, page_data(1)).ok());
  const auto replicas = client.map().lookup(1)->replicas;
  ASSERT_TRUE(client.remove_sync(1).ok());
  EXPECT_FALSE(client.contains(1));
  // Hosted blocks must be gone on the replica nodes.
  for (const auto& replica : replicas) {
    for (std::size_t i = 0; i < system.node_count(); ++i) {
      if (system.node(i).id() != replica.node) continue;
      EXPECT_EQ(system.service(i).rdms().hosted_blocks(), 0u);
    }
  }
}

TEST(DmSystemTest, GetOnMissingEntryFails) {
  DmSystem system(small_cluster());
  system.start();
  auto& client = system.create_server(0, 64 * MiB);
  std::vector<std::byte> out(4096);
  EXPECT_EQ(client.get_sync(99, out).code(), StatusCode::kNotFound);
  EXPECT_EQ(client.remove_sync(99).code(), StatusCode::kNotFound);
}

TEST(DmSystemTest, OverwriteReplacesContents) {
  DmSystem system(small_cluster());
  system.start();
  auto& client = system.create_server(0, 64 * MiB);
  ASSERT_TRUE(client.put_sync(1, page_data(1)).ok());
  const auto newer = page_data(999);
  ASSERT_TRUE(client.put_sync(1, newer).ok());
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(client.get_sync(1, out).ok());
  EXPECT_EQ(out, newer);
}

TEST(DmSystemTest, ChecksumVerificationCatchesNothingOnHealthyPath) {
  DmSystem system(small_cluster());
  system.start();
  LdmcOptions options;
  options.verify_checksums = true;
  options.shm_fraction = 0.5;
  auto& client = system.create_server(0, 64 * MiB, options);
  std::vector<std::byte> out(4096);
  for (std::uint64_t id = 0; id < 50; ++id) {
    ASSERT_TRUE(client.put_sync(id, page_data(id)).ok());
    ASSERT_TRUE(client.get_sync(id, out).ok());
  }
}

TEST(DmSystemTest, GetRangeReadsSubEntry) {
  DmSystem system(small_cluster());
  system.start();
  LdmcOptions remote_only;
  remote_only.shm_fraction = 0.0;
  auto& client = system.create_server(0, 64 * MiB, remote_only);
  const auto data = page_data(1);
  ASSERT_TRUE(client.put_sync(1, data).ok());
  std::vector<std::byte> out(256);
  ASSERT_TRUE(client.get_range_sync(1, 1024, out).ok());
  EXPECT_TRUE(std::equal(out.begin(), out.end(), data.begin() + 1024));
  EXPECT_EQ(client.get_range_sync(1, 4000, out).code(),
            StatusCode::kInvalidArgument);
}

TEST(DmSystemTest, EvictionDrainMigratesHostedEntries) {
  auto config = small_cluster(4);
  config.service.rdmc.replication = 1;
  DmSystem system(config);
  system.start();
  LdmcOptions remote_only;
  remote_only.shm_fraction = 0.0;
  auto& client = system.create_server(0, 64 * MiB, remote_only);

  // Place several entries remotely.
  for (std::uint64_t id = 0; id < 32; ++id)
    ASSERT_TRUE(client.put_sync(id, page_data(id)).ok());

  // Find a node hosting blocks and drain one of its slabs.
  for (std::size_t i = 1; i < system.node_count(); ++i) {
    auto& service = system.service(i);
    if (service.rdms().hosted_blocks() == 0) continue;
    auto slab = system.node(i).recv_pool().least_loaded_slab();
    ASSERT_TRUE(slab.has_value());
    bool drained = false;
    Status drain_status;
    service.rdms().drain_slab(*slab, [&](const Status& s) {
      drain_status = s;
      drained = true;
    });
    ASSERT_TRUE(system.simulator().run_until_flag(
        drained, system.simulator().now() + 60 * kSecond));
    EXPECT_TRUE(drain_status.ok()) << drain_status;
    break;
  }

  // All entries still intact after migration.
  std::vector<std::byte> out(4096);
  for (std::uint64_t id = 0; id < 32; ++id) {
    ASSERT_TRUE(client.get_sync(id, out).ok()) << id;
    ASSERT_EQ(fnv1a(out), fnv1a(page_data(id))) << id;
  }
  EXPECT_GE(system.total_counter("ldms.migrated_entries"), 1u);
}

TEST(DmSystemTest, BallooningAdviceEmittedForHotServer) {
  auto config = small_cluster();
  config.service.eviction.enabled = true;
  config.service.eviction.remote_rate_threshold = 8;
  config.service.eviction.auto_balloon = true;
  DmSystem system(config);
  system.start();
  auto& client = system.create_server(0, 64 * MiB);
  const double before =
      system.node(0).find_server(client.server())->donation_fraction();

  for (std::uint64_t id = 0; id < 64; ++id)
    ASSERT_TRUE(client.put_sync(id, page_data(id)).ok());
  system.service(0).eviction_tick();

  EXPECT_GE(system.service(0).metrics().counter_value(
                "eviction.balloon_advice"), 1u);
  const double after =
      system.node(0).find_server(client.server())->donation_fraction();
  EXPECT_LT(after, before);
}

TEST(DmSystemTest, NvmTierSitsBetweenRemoteAndDisk) {
  auto config = small_cluster(2);  // one starved peer
  config.node.shm.arena_bytes = 64 * KiB;
  config.node.recv.arena_bytes = 256 * KiB;
  config.node.nvm.capacity_bytes = 1 * MiB;  // enable the NVM tier
  config.service.rdmc.replication = 1;
  DmSystem system(config);
  system.start();
  auto& client = system.create_server(0, 640 * KiB);

  // Overflow shm (64 KiB) and the peer's 256 KiB recv pool: the next stop
  // is NVM, and only past 1 MiB of NVM does anything reach the disk.
  for (std::uint64_t id = 0; id < 256; ++id)
    ASSERT_TRUE(client.put_sync(id, page_data(id)).ok()) << id;
  EXPECT_GT(client.puts_to_nvm(), 0u);

  std::vector<std::byte> out(4096);
  for (std::uint64_t id = 0; id < 256; ++id) {
    ASSERT_TRUE(client.get_sync(id, out).ok()) << id;
    ASSERT_EQ(fnv1a(out), fnv1a(page_data(id))) << id;
  }
  // Remove an NVM entry and verify its extent is reusable.
  mem::EntryId nvm_entry = 0;
  client.map().for_each([&](mem::EntryId id, const mem::EntryLocation& loc) {
    if (loc.tier == mem::Tier::kNvm) nvm_entry = id;
  });
  ASSERT_TRUE(client.remove_sync(nvm_entry).ok());
  EXPECT_FALSE(client.contains(nvm_entry));
}

TEST(DmSystemTest, NvmFasterThanDiskForOverflow) {
  auto run = [](bool with_nvm) {
    auto config = small_cluster(2);
    config.node.shm.arena_bytes = 64 * KiB;
    config.node.recv.arena_bytes = 256 * KiB;
    if (with_nvm) config.node.nvm.capacity_bytes = 8 * MiB;
    config.service.rdmc.replication = 1;
    DmSystem system(config);
    system.start();
    auto& client = system.create_server(0, 640 * KiB);
    const SimTime start = system.simulator().now();
    std::vector<std::byte> out(4096);
    for (std::uint64_t id = 0; id < 128; ++id) {
      EXPECT_TRUE(client.put_sync(id, page_data(id)).ok());
    }
    for (std::uint64_t id = 0; id < 128; ++id)
      EXPECT_TRUE(client.get_sync(id, out).ok());
    return system.simulator().now() - start;
  };
  EXPECT_LT(run(true) * 2, run(false));
}

TEST(DmSystemTest, LeaderCandidateSetsServePlacement) {
  auto config = small_cluster(5);
  config.service.leader_candidates = true;
  DmSystem system(config);
  system.start();

  LdmcOptions remote_only;
  remote_only.shm_fraction = 0.0;
  auto& client = system.create_server(0, 64 * MiB, remote_only);
  for (mem::EntryId id = 0; id < 32; ++id)
    ASSERT_TRUE(client.put_sync(id, page_data(id)).ok()) << id;

  // The leader answered candidate queries, and some node refreshed its
  // cache from it.
  EXPECT_GT(system.total_counter("candidates.queries_served"), 0u);
  EXPECT_GT(system.total_counter("candidates.leader_refreshes"), 0u);

  std::vector<std::byte> out(4096);
  for (mem::EntryId id = 0; id < 32; ++id) {
    ASSERT_TRUE(client.get_sync(id, out).ok());
    ASSERT_EQ(fnv1a(out), fnv1a(page_data(id)));
  }
}

TEST(DmSystemTest, LeaderCandidatesSurviveLeaderCrash) {
  auto config = small_cluster(5);
  config.service.leader_candidates = true;
  DmSystem system(config);
  system.start();
  LdmcOptions remote_only;
  remote_only.shm_fraction = 0.0;
  auto& client = system.create_server(0, 64 * MiB, remote_only);
  ASSERT_TRUE(client.put_sync(1, page_data(1)).ok());

  // Kill the current leader; elections move it and refreshes recover.
  const net::NodeId leader = system.node(0).election()->leader();
  for (std::size_t i = 0; i < system.node_count(); ++i)
    if (system.node(i).id() == leader) system.crash_node(i);
  system.run_for(8 * kSecond);

  for (mem::EntryId id = 100; id < 116; ++id)
    ASSERT_TRUE(client.put_sync(id, page_data(id)).ok()) << id;
  std::vector<std::byte> out(4096);
  ASSERT_TRUE(client.get_sync(100, out).ok());
}

TEST(DmSystemTest, AsyncPutsOverlapAndAllComplete) {
  DmSystem system(small_cluster());
  system.start();
  LdmcOptions remote_only;
  remote_only.shm_fraction = 0.0;
  auto& client = system.create_server(0, 64 * MiB, remote_only);

  // Post 32 puts without waiting between them: the RDMA data/control plane
  // pipelines them; every callback fires exactly once.
  std::vector<std::vector<std::byte>> payloads;
  for (std::uint64_t id = 0; id < 32; ++id) payloads.push_back(page_data(id));
  int completed = 0;
  for (std::uint64_t id = 0; id < 32; ++id) {
    client.put(id, payloads[id], [&](const Status& s) {
      EXPECT_TRUE(s.ok());
      ++completed;
    });
  }
  const SimTime deadline = system.simulator().now() + 10 * kSecond;
  while (completed < 32 && system.simulator().now() < deadline)
    ASSERT_TRUE(system.simulator().step());
  EXPECT_EQ(completed, 32);

  // Pipelining: total virtual time far below 32 sequential round trips.
  std::vector<std::byte> out(4096);
  for (std::uint64_t id = 0; id < 32; ++id) {
    ASSERT_TRUE(client.get_sync(id, out).ok());
    ASSERT_EQ(fnv1a(out), fnv1a(page_data(id)));
  }
}

TEST(DmSystemTest, AsyncGetsOverlapCorrectly) {
  DmSystem system(small_cluster());
  system.start();
  LdmcOptions remote_only;
  remote_only.shm_fraction = 0.0;
  auto& client = system.create_server(0, 64 * MiB, remote_only);
  for (std::uint64_t id = 0; id < 16; ++id)
    ASSERT_TRUE(client.put_sync(id, page_data(id)).ok());

  std::vector<std::vector<std::byte>> outs(16,
                                           std::vector<std::byte>(4096));
  int completed = 0;
  for (std::uint64_t id = 0; id < 16; ++id) {
    client.get(id, outs[id], [&](const Status& s) {
      EXPECT_TRUE(s.ok());
      ++completed;
    });
  }
  while (completed < 16) ASSERT_TRUE(system.simulator().step());
  for (std::uint64_t id = 0; id < 16; ++id)
    ASSERT_EQ(fnv1a(outs[id]), fnv1a(page_data(id))) << id;
}

TEST(DmSystemTest, RecoveredNodeRebootsEmpty) {
  DmSystem system(small_cluster(5));
  system.start();
  LdmcOptions remote_only;
  remote_only.shm_fraction = 0.0;
  auto& client = system.create_server(0, 64 * MiB, remote_only);
  for (mem::EntryId id = 0; id < 16; ++id)
    ASSERT_TRUE(client.put_sync(id, page_data(id)).ok());

  std::size_t victim = 1;
  for (std::size_t i = 1; i < system.node_count(); ++i)
    if (system.service(i).rdms().hosted_blocks() > 0) victim = i;
  ASSERT_GT(system.service(victim).rdms().hosted_blocks(), 0u);

  system.crash_node(victim);
  system.run_for(8 * kSecond);  // repair replaces the lost replicas
  system.recover_node(victim);
  EXPECT_EQ(system.service(victim).rdms().hosted_blocks(), 0u);
  EXPECT_EQ(system.node(victim).recv_pool().used_bytes(), 0u);
  system.run_for(3 * kSecond);

  // The rebooted node can host again.
  auto& client2 = system.create_server(victim == 2 ? 3 : 2, 64 * MiB,
                                       remote_only);
  for (mem::EntryId id = 100; id < 116; ++id)
    ASSERT_TRUE(client2.put_sync(id, page_data(id)).ok());
  std::vector<std::byte> out(4096);
  for (mem::EntryId id = 0; id < 16; ++id)
    ASSERT_TRUE(client.get_sync(id, out).ok()) << id;
}

TEST(DmSystemTest, UtilizationReportReflectsState) {
  DmSystem system(small_cluster(3));
  system.start();
  auto& client = system.create_server(0, 64 * MiB);
  ASSERT_TRUE(client.put_sync(1, page_data(1)).ok());
  const std::string report = system.utilization_report();
  // Three node rows plus the header, and node 0's pool shows usage.
  EXPECT_EQ(std::count(report.begin(), report.end(), '\n'), 4);
  EXPECT_NE(report.find("4.0KiB"), std::string::npos);
  system.crash_node(2);
  const std::string after = system.utilization_report();
  EXPECT_NE(after.find("  n "), std::string::npos);  // a down node row
}

TEST(DmSystemTest, DeterministicAcrossRuns) {
  auto run_once = [] {
    DmSystem system(small_cluster());
    system.start();
    LdmcOptions options;
    options.shm_fraction = 0.5;
    auto& client = system.create_server(0, 64 * MiB, options);
    for (std::uint64_t id = 0; id < 64; ++id) {
      EXPECT_TRUE(client.put_sync(id, page_data(id)).ok());
    }
    std::vector<std::byte> out(4096);
    for (std::uint64_t id = 0; id < 64; ++id)
      EXPECT_TRUE(client.get_sync(id, out).ok());
    return system.simulator().now();
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace dm::core
