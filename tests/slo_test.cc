// Tests for the declarative SLO engine: spec grammar, window abstention,
// burn-rate paging, ratio objectives, alert hooks, and determinism of the
// alert stream across identical seeded runs.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/units.h"
#include "obs/metrics_hub.h"
#include "obs/slo.h"
#include "sim/simulator.h"

namespace dm {
namespace {

struct SloRig {
  sim::Simulator sim;
  MetricsRegistry registry;
  obs::MetricsHub hub;
  obs::SloMonitor monitor{sim, hub};

  SloRig() { hub.add("node.0", &registry); }
};

// ---- grammar ----------------------------------------------------------------

TEST(SloGrammar, AcceptsTheDocumentedForms) {
  SloRig rig;
  EXPECT_TRUE(rig.monitor
                  .add_spec("fault_p99: p99 swap.fault_ns < 2ms over 500ms")
                  .ok());
  EXPECT_TRUE(rig.monitor.add_spec("mean rpc.rtt.get < 40us over 1s").ok());
  EXPECT_TRUE(
      rig.monitor
          .add_spec("degraded: ratio swap.degraded swap.batches < 0.05 over 1s")
          .ok());
  EXPECT_TRUE(rig.monitor.add_spec("rate rpc.timeouts < 10 over 2s").ok());
  EXPECT_EQ(rig.monitor.spec_count(), 4u);
}

TEST(SloGrammar, RejectsMalformedSpecs) {
  SloRig rig;
  const char* bad[] = {
      "",                                        // empty
      "p42 swap.fault_ns < 2ms over 500ms",      // unknown aggregate
      "p99 swap.fault_ns < 2ms",                 // missing window
      "p99 swap.fault_ns > 2ms over 500ms",      // only '<' supported
      "p99 swap.fault_ns < cheese over 500ms",   // bad threshold
      "p99 swap.fault_ns < 2ms over 0ms",        // zero window
      "p99 swap.fault_ns < 2ms over 500parsecs", // bad unit
      "ratio a < 0.5 over 1s",                   // ratio needs two counters
  };
  for (const char* spec : bad) {
    const Status status = rig.monitor.add_spec(spec);
    EXPECT_FALSE(status.ok()) << "accepted: " << spec;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << spec;
  }
  EXPECT_EQ(rig.monitor.spec_count(), 0u);
}

// ---- window semantics -------------------------------------------------------

TEST(SloWindows, AbstainsUntilAFullWindowExists) {
  SloRig rig;
  ASSERT_TRUE(
      rig.monitor.add_spec("hot: p99 swap.fault_ns < 100 over 300ms").ok());
  // Record violating samples immediately: still no alert until one snapshot
  // is at least a full window old.
  rig.registry.histogram("swap.fault_ns.backend").record(5000);
  rig.monitor.evaluate_now();  // t=0: snapshot only
  EXPECT_TRUE(rig.monitor.alerts().empty());

  rig.sim.schedule_after(100 * kMilli, [&] { rig.monitor.evaluate_now(); });
  rig.sim.run_until(150 * kMilli);
  EXPECT_TRUE(rig.monitor.alerts().empty());  // window not yet elapsed

  rig.registry.histogram("swap.fault_ns.backend").record(5000);
  rig.sim.schedule_after(200 * kMilli, [&] { rig.monitor.evaluate_now(); });
  rig.sim.run_until(400 * kMilli);  // t=350: baseline at t=0 is 350ms old
  ASSERT_EQ(rig.monitor.alerts().size(), 1u);
  EXPECT_EQ(rig.monitor.alerts()[0].spec, "hot");
  EXPECT_GE(rig.monitor.alerts()[0].value, 100.0);
  EXPECT_EQ(rig.monitor.alerts()[0].streak, 1u);
  EXPECT_FALSE(rig.monitor.alerts()[0].page);
}

TEST(SloWindows, QuietMetricBelowThresholdNeverAlerts) {
  SloRig rig;
  ASSERT_TRUE(
      rig.monitor.add_spec("ok: p99 swap.fault_ns < 10000 over 100ms").ok());
  for (int tick = 1; tick <= 10; ++tick) {
    rig.registry.histogram("swap.fault_ns.backend").record(500);
    rig.sim.schedule_at(tick * 50 * kMilli,
                        [&] { rig.monitor.evaluate_now(); });
    rig.sim.run_until(tick * 50 * kMilli + 1);
  }
  EXPECT_TRUE(rig.monitor.alerts().empty());
  EXPECT_GT(rig.monitor.metrics().counter_value("slo.evaluations"), 0u);
  EXPECT_EQ(rig.monitor.metrics().counter_value("slo.violations"), 0u);
}

// ---- burn-rate paging -------------------------------------------------------

TEST(SloBurn, SustainedViolationEscalatesToPage) {
  SloRig rig;
  ASSERT_TRUE(
      rig.monitor.add_spec("burn: p99 swap.fault_ns < 100 over 100ms").ok());
  rig.monitor.start();  // default period 100ms, burn threshold 3

  // Keep the histogram hot across every window.
  struct Feeder {
    SloRig* rig;
    void operator()() const {
      rig->registry.histogram("swap.fault_ns.backend").record(9999);
      rig->sim.schedule_after(20 * kMilli, *this);
    }
  };
  rig.sim.schedule_after(0, Feeder{&rig});
  rig.sim.run_until(1000 * kMilli);

  const auto& alerts = rig.monitor.alerts();
  ASSERT_GE(alerts.size(), 3u);
  EXPECT_FALSE(alerts[0].page);  // streak 1
  EXPECT_FALSE(alerts[1].page);  // streak 2
  EXPECT_TRUE(alerts[2].page);   // streak 3 = burn threshold
  EXPECT_EQ(alerts[2].streak, 3u);
  EXPECT_GT(rig.monitor.metrics().counter_value("slo.pages"), 0u);
  EXPECT_GT(rig.monitor.metrics().counter_value("slo.violations.burn"), 0u);
  const std::string text = rig.monitor.alerts_text();
  EXPECT_NE(text.find("burn"), std::string::npos);
  EXPECT_NE(text.find("PAGE"), std::string::npos);
  rig.monitor.stop();
}

TEST(SloBurn, AlertHookFiresOnEveryViolation) {
  SloRig rig;
  ASSERT_TRUE(
      rig.monitor.add_spec("hook: count swap.faults < 5 over 100ms").ok());
  std::vector<obs::SloMonitor::Alert> seen;
  rig.monitor.set_alert_hook(
      [&](const obs::SloMonitor::Alert& alert) { seen.push_back(alert); });
  rig.monitor.start();
  struct Feeder {
    SloRig* rig;
    void operator()() const {
      rig->registry.counter("swap.faults") += 3;
      rig->sim.schedule_after(10 * kMilli, *this);
    }
  };
  rig.sim.schedule_after(0, Feeder{&rig});
  rig.sim.run_until(500 * kMilli);
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.size(), rig.monitor.alerts().size());
  EXPECT_EQ(seen.front().spec, "hook");
}

// ---- ratio objectives -------------------------------------------------------

TEST(SloRatio, DegradedBatchRatioAlertsOnlyAboveFraction) {
  SloRig rig;
  ASSERT_TRUE(rig.monitor
                  .add_spec("deg: ratio swap.degraded swap.batches "
                            "< 0.5 over 100ms")
                  .ok());
  rig.monitor.start();
  // 1 degraded per 4 batches = 0.25 < 0.5: quiet.
  struct Feeder {
    SloRig* rig;
    void operator()() const {
      rig->registry.counter("swap.batches") += 4;
      rig->registry.counter("swap.degraded") += 1;
      rig->sim.schedule_after(20 * kMilli, *this);
    }
  };
  rig.sim.schedule_after(0, Feeder{&rig});
  rig.sim.run_until(400 * kMilli);
  EXPECT_TRUE(rig.monitor.alerts().empty());

  // Flip to all-degraded: the windowed ratio crosses 0.5 and alerts.
  struct BadFeeder {
    SloRig* rig;
    void operator()() const {
      rig->registry.counter("swap.batches") += 4;
      rig->registry.counter("swap.degraded") += 4;
      rig->sim.schedule_after(20 * kMilli, *this);
    }
  };
  rig.sim.schedule_after(0, BadFeeder{&rig});
  rig.sim.run_until(900 * kMilli);
  ASSERT_FALSE(rig.monitor.alerts().empty());
  EXPECT_EQ(rig.monitor.alerts().front().spec, "deg");
  EXPECT_GE(rig.monitor.alerts().front().value, 0.5);
  rig.monitor.stop();
}

// ---- determinism ------------------------------------------------------------

TEST(SloDeterminism, AlertStreamIsByteIdenticalAcrossIdenticalRuns) {
  auto run = [] {
    SloRig rig;
    EXPECT_TRUE(
        rig.monitor.add_spec("d: p99 swap.fault_ns < 100 over 100ms").ok());
    EXPECT_TRUE(
        rig.monitor.add_spec("r: rate swap.faults < 1 over 100ms").ok());
    rig.monitor.start();
    struct Feeder {
      SloRig* rig;
      void operator()() const {
        rig->registry.histogram("swap.fault_ns.backend").record(7777);
        rig->registry.counter("swap.faults") += 2;
        rig->sim.schedule_after(30 * kMilli, *this);
      }
    };
    rig.sim.schedule_after(0, Feeder{&rig});
    rig.sim.run_until(800 * kMilli);
    return rig.monitor.alerts_text();
  };
  const std::string first = run();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, run());
}

}  // namespace
}  // namespace dm
