// Unit tests for src/common: status, rng, histogram, lru, units, checksum,
// metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "common/checksum.h"
#include "common/histogram.h"
#include "common/lru.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"

namespace dm {
namespace {

// ---- Status -----------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("missing entry");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.to_string(), "NOT_FOUND: missing entry");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (int c = 0; c <= 10; ++c) {
    EXPECT_NE(to_string(static_cast<StatusCode>(c)), "UNKNOWN");
  }
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = ResourceExhaustedError("full");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  auto owned = *std::move(v);
  EXPECT_EQ(*owned, 5);
}

// ---- Rng --------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 3);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(RngTest, UniformCoversRange) {
  Rng rng(9);
  std::map<std::uint64_t, int> seen;
  for (int i = 0; i < 20000; ++i) ++seen[rng.uniform(3, 10)];
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(seen.begin()->first, 3u);
  EXPECT_EQ(seen.rbegin()->first, 10u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ExponentialMeanRoughlyCorrect) {
  Rng rng(13);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(100.0);
  EXPECT_NEAR(sum / n, 100.0, 3.0);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(15);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, orig);
}

TEST(ZipfTest, SamplesWithinRange) {
  Rng rng(17);
  ZipfGenerator zipf(1000, 0.99);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.next(rng), 1000u);
}

TEST(ZipfTest, SkewConcentratesMass) {
  Rng rng(19);
  ZipfGenerator zipf(1000, 0.99);
  std::uint64_t top10 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (zipf.next(rng) < 10) ++top10;
  // With theta=0.99 the top-10 keys of 1000 should get a large share.
  EXPECT_GT(static_cast<double>(top10) / n, 0.25);
}

TEST(ZipfTest, LowThetaIsNearUniform) {
  Rng rng(21);
  ZipfGenerator zipf(100, 0.01);
  std::uint64_t top10 = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (zipf.next(rng) < 10) ++top10;
  EXPECT_NEAR(static_cast<double>(top10) / n, 0.10, 0.05);
}

// ---- Histogram ----------------------------------------------------------------

TEST(HistogramTest, EmptyHistogram) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.min(), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_EQ(h.mean(), 42.0);
}

TEST(HistogramTest, PercentileWithinBucketError) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 10000; ++v) h.record(v);
  const auto p50 = static_cast<double>(h.p50());
  // Log-bucketed: <= ~13% relative error (one sub-bucket).
  EXPECT_NEAR(p50, 5000.0, 5000.0 * 0.15);
  const auto p99 = static_cast<double>(h.p99());
  EXPECT_NEAR(p99, 9900.0, 9900.0 * 0.15);
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  a.record(10);
  b.record(1000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(HistogramTest, RecordNWeights) {
  Histogram h;
  h.record_n(100, 5);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 500u);
}

// ---- LruTracker ---------------------------------------------------------------

TEST(LruTest, EvictsLeastRecent) {
  LruTracker<int> lru;
  lru.touch(1);
  lru.touch(2);
  lru.touch(3);
  lru.touch(1);  // refresh 1
  EXPECT_EQ(lru.evict_lru(), std::optional<int>(2));
  EXPECT_EQ(lru.evict_lru(), std::optional<int>(3));
  EXPECT_EQ(lru.evict_lru(), std::optional<int>(1));
  EXPECT_EQ(lru.evict_lru(), std::nullopt);
}

TEST(LruTest, EraseRemoves) {
  LruTracker<int> lru;
  lru.touch(1);
  lru.touch(2);
  EXPECT_TRUE(lru.erase(1));
  EXPECT_FALSE(lru.erase(1));
  EXPECT_EQ(lru.size(), 1u);
  EXPECT_EQ(lru.peek_lru(), std::optional<int>(2));
}

TEST(LruTest, PeekDoesNotRemove) {
  LruTracker<int> lru;
  lru.touch(7);
  EXPECT_EQ(lru.peek_lru(), std::optional<int>(7));
  EXPECT_EQ(lru.size(), 1u);
}

TEST(LruTest, ManyKeysOrderPreserved) {
  LruTracker<int> lru;
  for (int i = 0; i < 100; ++i) lru.touch(i);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(lru.evict_lru(), std::optional<int>(i));
}

// ---- units --------------------------------------------------------------------

TEST(UnitsTest, FormatBytes) {
  EXPECT_EQ(format_bytes(617), "617B");
  EXPECT_EQ(format_bytes(4 * KiB), "4.0KiB");
  EXPECT_EQ(format_bytes(3 * GiB / 2), "1.5GiB");
}

TEST(UnitsTest, FormatDuration) {
  EXPECT_EQ(format_duration(800), "800ns");
  EXPECT_EQ(format_duration(1500 * kMicro), "1.50ms");
  EXPECT_EQ(format_duration(2 * kMicro + 500), "2.50us");
}

// ---- checksum -------------------------------------------------------------------

TEST(ChecksumTest, DeterministicAndSensitive) {
  std::vector<std::byte> a(100, std::byte{1});
  std::vector<std::byte> b(100, std::byte{1});
  EXPECT_EQ(fnv1a(a), fnv1a(b));
  b[50] = std::byte{2};
  EXPECT_NE(fnv1a(a), fnv1a(b));
}

TEST(ChecksumTest, EmptyHasKnownValue) {
  EXPECT_EQ(fnv1a({}), 0xcbf29ce484222325ULL);
}

// ---- metrics --------------------------------------------------------------------

TEST(MetricsTest, CountersStartAtZero) {
  MetricsRegistry m;
  EXPECT_EQ(m.counter_value("x"), 0u);
  ++m.counter("x");
  m.counter("x") += 4;
  EXPECT_EQ(m.counter_value("x"), 5u);
}

TEST(MetricsTest, HistogramsByName) {
  MetricsRegistry m;
  m.histogram("lat").record(100);
  ASSERT_NE(m.find_histogram("lat"), nullptr);
  EXPECT_EQ(m.find_histogram("lat")->count(), 1u);
  EXPECT_EQ(m.find_histogram("nope"), nullptr);
}

TEST(MetricsTest, ToStringListsCounters) {
  MetricsRegistry m;
  m.counter("a") = 1;
  m.counter("b") = 2;
  EXPECT_EQ(m.to_string(), "a=1\nb=2\n");
}

}  // namespace
}  // namespace dm
