// Unit tests for the discrete-event simulator and failure injector.
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/failure_injector.h"
#include "sim/latency_model.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace dm::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_FALSE(sim.has_pending());
}

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule_at(100, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, CallbackMaySchedule) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] {
    ++fired;
    sim.schedule_after(5, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 15);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_TRUE(sim.has_pending());
}

TEST(SimulatorTest, RunUntilFlagStopsOnFlag) {
  Simulator sim;
  bool flag = false;
  sim.schedule_at(10, [&] { flag = true; });
  sim.schedule_at(1000, [] {});
  EXPECT_TRUE(sim.run_until_flag(flag));
  EXPECT_EQ(sim.now(), 10);
  EXPECT_TRUE(sim.has_pending());
}

TEST(SimulatorTest, RunUntilFlagReportsDryQueue) {
  Simulator sim;
  bool flag = false;
  sim.schedule_at(10, [] {});
  EXPECT_FALSE(sim.run_until_flag(flag));
}

TEST(SimulatorTest, RunUntilFlagHonorsDeadline) {
  Simulator sim;
  bool flag = false;
  // Self-perpetuating ticker that never sets the flag.
  std::function<void()> tick = [&] { sim.schedule_after(10, tick); };
  sim.schedule_after(10, tick);
  EXPECT_FALSE(sim.run_until_flag(flag, 500));
  EXPECT_GT(sim.now(), 400);
}

TEST(SimulatorTest, AdvanceMovesClockWithoutEvents) {
  Simulator sim;
  sim.advance(100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, LateEventDoesNotRewindClock) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_at(10, [&] { seen = sim.now(); });
  sim.advance(50);  // clock passes the queued event
  sim.run();
  EXPECT_EQ(seen, 50);  // fired late, not in the past
  EXPECT_EQ(sim.now(), 50);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

// ---- latency model -----------------------------------------------------------

TEST(LatencyModelTest, CostScalesWithBytes) {
  CostModel rdma{1500, 6.0};
  const SimTime small = rdma.cost(64);
  const SimTime page = rdma.cost(4096);
  EXPECT_GT(page, small);
  EXPECT_GE(small, 1500);
}

TEST(LatencyModelTest, TierOrderingHolds) {
  LatencyModel m;
  const SimTime shm = m.shared_memory.cost(4096);
  const SimTime rdma = m.rdma.cost(4096);
  const SimTime disk = m.disk.seek_ns + m.disk.transfer(4096);
  EXPECT_LT(shm, rdma);
  EXPECT_LT(rdma, disk);
  // Paper-scale gaps: shm is ~an order of magnitude under RDMA, RDMA is
  // orders of magnitude under a random disk access.
  EXPECT_GT(rdma / shm, 3);
  EXPECT_GT(disk / rdma, 500);
}

TEST(LatencyModelTest, BatchingAmortizesOverhead) {
  LatencyModel m;
  // One 32 KiB message vs eight 4 KiB messages.
  const SimTime batched = m.rdma.cost(8 * 4096);
  const SimTime individual = 8 * m.rdma.cost(4096);
  EXPECT_LT(batched, individual);
}

// ---- failure injector -----------------------------------------------------------

TEST(FailureInjectorTest, OneShotFires) {
  Simulator sim;
  FailureInjector inject(sim);
  bool fired = false;
  inject.at(100, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 100);
}

TEST(FailureInjectorTest, OutageFailsThenRepairs) {
  Simulator sim;
  FailureInjector inject(sim);
  std::vector<std::pair<SimTime, bool>> events;
  inject.outage(100, 50, [&] { events.emplace_back(sim.now(), false); },
                [&] { events.emplace_back(sim.now(), true); });
  sim.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (std::pair<SimTime, bool>{100, false}));
  EXPECT_EQ(events[1], (std::pair<SimTime, bool>{150, true}));
}

TEST(FailureInjectorTest, PoissonProducesEventsInWindow) {
  Simulator sim;
  FailureInjector inject(sim);
  Rng rng(3);
  int count = 0;
  SimTime last = 0;
  inject.poisson(rng, 0, 100000, 1000, [&] {
    ++count;
    EXPECT_GE(sim.now(), last);
    last = sim.now();
  });
  sim.run();
  // Mean interval 1000 over 100000 window: expect ~100 events.
  EXPECT_GT(count, 50);
  EXPECT_LT(count, 200);
  EXPECT_LT(last, 100000);
}

// ---- tracer ---------------------------------------------------------------

TEST(TracerTest, RecordsAndFormats) {
  Tracer tracer(8);
  tracer.record(1500, "fabric.write", "node0 -> node1, 4096B");
  tracer.record(3000, "fabric.read", "node0 <- node2, 512B");
  EXPECT_EQ(tracer.size(), 2u);
  auto recent = tracer.recent(10);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].category, "fabric.write");
  EXPECT_EQ(recent[1].at, 3000);
  const std::string text = tracer.to_string();
  EXPECT_NE(text.find("fabric.write"), std::string::npos);
  EXPECT_NE(text.find("4096B"), std::string::npos);
}

TEST(TracerTest, RingDropsOldest) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i)
    tracer.record(i, "cat", std::to_string(i));
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  auto recent = tracer.recent(4);
  EXPECT_EQ(recent.front().detail, "6");
  EXPECT_EQ(recent.back().detail, "9");
}

TEST(TracerTest, FilterByCategory) {
  Tracer tracer;
  tracer.record(1, "a", "x");
  tracer.record(2, "b", "y");
  tracer.record(3, "a", "z");
  auto only_a = tracer.by_category("a");
  ASSERT_EQ(only_a.size(), 2u);
  EXPECT_EQ(only_a[1].detail, "z");
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

}  // namespace
}  // namespace dm::sim
