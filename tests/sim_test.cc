// Unit tests for the discrete-event simulator and failure injector.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "sim/chaos_schedule.h"
#include "sim/scenario.h"
#include "sim/failure_injector.h"
#include "sim/latency_model.h"
#include "sim/simulator.h"
#include "sim/trace.h"

namespace dm::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), 0);
  EXPECT_FALSE(sim.has_pending());
}

TEST(SimulatorTest, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(30, [&] { order.push_back(3); });
  sim.schedule_at(10, [&] { order.push_back(1); });
  sim.schedule_at(20, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30);
}

TEST(SimulatorTest, TiesBreakByInsertionOrder) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) sim.schedule_at(100, [&order, i] { order.push_back(i); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, CallbackMaySchedule) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] {
    ++fired;
    sim.schedule_after(5, [&] { ++fired; });
  });
  sim.run();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.now(), 15);
}

TEST(SimulatorTest, RunUntilStopsAtDeadline) {
  Simulator sim;
  int fired = 0;
  sim.schedule_at(10, [&] { ++fired; });
  sim.schedule_at(100, [&] { ++fired; });
  sim.run_until(50);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_TRUE(sim.has_pending());
}

TEST(SimulatorTest, RunUntilFlagStopsOnFlag) {
  Simulator sim;
  bool flag = false;
  sim.schedule_at(10, [&] { flag = true; });
  sim.schedule_at(1000, [] {});
  EXPECT_TRUE(sim.run_until_flag(flag));
  EXPECT_EQ(sim.now(), 10);
  EXPECT_TRUE(sim.has_pending());
}

TEST(SimulatorTest, RunUntilFlagReportsDryQueue) {
  Simulator sim;
  bool flag = false;
  sim.schedule_at(10, [] {});
  EXPECT_FALSE(sim.run_until_flag(flag));
}

TEST(SimulatorTest, RunUntilFlagHonorsDeadline) {
  Simulator sim;
  bool flag = false;
  // Self-perpetuating ticker that never sets the flag.
  std::function<void()> tick = [&] { sim.schedule_after(10, tick); };
  sim.schedule_after(10, tick);
  EXPECT_FALSE(sim.run_until_flag(flag, 500));
  EXPECT_GT(sim.now(), 400);
}

TEST(SimulatorTest, AdvanceMovesClockWithoutEvents) {
  Simulator sim;
  sim.advance(100);
  EXPECT_EQ(sim.now(), 100);
}

TEST(SimulatorTest, LateEventDoesNotRewindClock) {
  Simulator sim;
  SimTime seen = -1;
  sim.schedule_at(10, [&] { seen = sim.now(); });
  sim.advance(50);  // clock passes the queued event
  sim.run();
  EXPECT_EQ(seen, 50);  // fired late, not in the past
  EXPECT_EQ(sim.now(), 50);
}

TEST(SimulatorTest, CountsExecutedEvents) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.executed_events(), 7u);
}

// ---- latency model -----------------------------------------------------------

TEST(LatencyModelTest, CostScalesWithBytes) {
  CostModel rdma{1500, 6.0};
  const SimTime small = rdma.cost(64);
  const SimTime page = rdma.cost(4096);
  EXPECT_GT(page, small);
  EXPECT_GE(small, 1500);
}

TEST(LatencyModelTest, TierOrderingHolds) {
  LatencyModel m;
  const SimTime shm = m.shared_memory.cost(4096);
  const SimTime rdma = m.rdma.cost(4096);
  const SimTime disk = m.disk.seek_ns + m.disk.transfer(4096);
  EXPECT_LT(shm, rdma);
  EXPECT_LT(rdma, disk);
  // Paper-scale gaps: shm is ~an order of magnitude under RDMA, RDMA is
  // orders of magnitude under a random disk access.
  EXPECT_GT(rdma / shm, 3);
  EXPECT_GT(disk / rdma, 500);
}

TEST(LatencyModelTest, BatchingAmortizesOverhead) {
  LatencyModel m;
  // One 32 KiB message vs eight 4 KiB messages.
  const SimTime batched = m.rdma.cost(8 * 4096);
  const SimTime individual = 8 * m.rdma.cost(4096);
  EXPECT_LT(batched, individual);
}

// ---- failure injector -----------------------------------------------------------

TEST(FailureInjectorTest, OneShotFires) {
  Simulator sim;
  FailureInjector inject(sim);
  bool fired = false;
  inject.at(100, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.now(), 100);
}

TEST(FailureInjectorTest, OutageFailsThenRepairs) {
  Simulator sim;
  FailureInjector inject(sim);
  std::vector<std::pair<SimTime, bool>> events;
  inject.outage(100, 50, [&] { events.emplace_back(sim.now(), false); },
                [&] { events.emplace_back(sim.now(), true); });
  sim.run();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], (std::pair<SimTime, bool>{100, false}));
  EXPECT_EQ(events[1], (std::pair<SimTime, bool>{150, true}));
}

TEST(FailureInjectorTest, PoissonProducesEventsInWindow) {
  Simulator sim;
  FailureInjector inject(sim);
  Rng rng(3);
  int count = 0;
  SimTime last = 0;
  inject.poisson(rng, 0, 100000, 1000, [&] {
    ++count;
    EXPECT_GE(sim.now(), last);
    last = sim.now();
  });
  sim.run();
  // Mean interval 1000 over 100000 window: expect ~100 events.
  EXPECT_GT(count, 50);
  EXPECT_LT(count, 200);
  EXPECT_LT(last, 100000);
}

// Regression: the action used to be copied into every scheduled firing, so a
// mutable lambda carrying state (crash counters, toggles) saw a fresh copy
// of its initial state each time. The action must be shared.
TEST(FailureInjectorTest, PoissonSharesStatefulActionAcrossFirings) {
  Simulator sim;
  FailureInjector inject(sim);
  Rng rng(7);
  int observed_max = 0;
  int total = 0;
  inject.poisson(rng, 0, 50000, 1000,
                 [&observed_max, &total, counter = 0]() mutable {
                   ++counter;
                   ++total;
                   observed_max = std::max(observed_max, counter);
                 });
  sim.run();
  ASSERT_GT(total, 1);
  // With a per-event copy the counter would reset to 0 before each firing
  // and observed_max would stay 1.
  EXPECT_EQ(observed_max, total);
}

// ---- chaos schedule --------------------------------------------------------

struct ChaosRecorder {
  std::vector<std::pair<SimTime, std::string>> events;

  ChaosSchedule::Hooks hooks(Simulator& sim) {
    ChaosSchedule::Hooks h;
    h.crash_node = [this, &sim](ChaosSchedule::NodeRef n) {
      events.emplace_back(sim.now(), "crash " + std::to_string(n));
    };
    h.recover_node = [this, &sim](ChaosSchedule::NodeRef n) {
      events.emplace_back(sim.now(), "recover " + std::to_string(n));
    };
    h.set_link_up = [this, &sim](ChaosSchedule::NodeRef a,
                                 ChaosSchedule::NodeRef b, bool up) {
      events.emplace_back(sim.now(), std::string(up ? "up " : "down ") +
                                         std::to_string(a) + "-" +
                                         std::to_string(b));
    };
    h.set_latency_scale = [this, &sim](double scale) {
      events.emplace_back(sim.now(),
                          "latency " + std::to_string(scale));
    };
    h.set_message_loss = [this, &sim](double p) {
      events.emplace_back(sim.now(), "loss " + std::to_string(p));
    };
    return h;
  }
};

TEST(ChaosScheduleTest, CrashFiresAndRecoversOnTime) {
  Simulator sim;
  FailureInjector inject(sim);
  ChaosRecorder rec;
  ChaosSchedule chaos(inject, rec.hooks(sim));
  chaos.crash(100, 3, 50);
  sim.run();
  ASSERT_EQ(rec.events.size(), 2u);
  EXPECT_EQ(rec.events[0], (std::pair<SimTime, std::string>{100, "crash 3"}));
  EXPECT_EQ(rec.events[1],
            (std::pair<SimTime, std::string>{150, "recover 3"}));
  EXPECT_EQ(chaos.crashes_fired(), 1u);
  EXPECT_EQ(chaos.skipped_crashes(), 0u);
}

TEST(ChaosScheduleTest, PartitionCutsEveryCrossLinkBothWaysThenHeals) {
  Simulator sim;
  FailureInjector inject(sim);
  ChaosRecorder rec;
  ChaosSchedule chaos(inject, rec.hooks(sim));
  chaos.partition(10, {0, 1}, {2}, 30);
  sim.run();
  // 2 cross pairs x 2 directions, once down and once up.
  std::size_t downs = 0, ups = 0;
  for (const auto& [when, what] : rec.events) {
    if (what.rfind("down ", 0) == 0) {
      EXPECT_EQ(when, 10);
      ++downs;
    } else if (what.rfind("up ", 0) == 0) {
      EXPECT_EQ(when, 40);
      ++ups;
    }
  }
  EXPECT_EQ(downs, 4u);
  EXPECT_EQ(ups, 4u);
  EXPECT_EQ(chaos.partitions_fired(), 1u);
}

TEST(ChaosScheduleTest, LatencyAndLossWindowsRestoreNominal) {
  Simulator sim;
  FailureInjector inject(sim);
  ChaosRecorder rec;
  ChaosSchedule chaos(inject, rec.hooks(sim));
  chaos.latency_spike(100, 8.0, 50);
  chaos.packet_loss(200, 0.25, 50);
  sim.run();
  ASSERT_EQ(rec.events.size(), 4u);
  EXPECT_EQ(rec.events[0].second, "latency " + std::to_string(8.0));
  EXPECT_EQ(rec.events[1].second, "latency " + std::to_string(1.0));
  EXPECT_EQ(rec.events[2].second, "loss " + std::to_string(0.25));
  EXPECT_EQ(rec.events[3].second, "loss " + std::to_string(0.0));
  EXPECT_EQ(chaos.latency_spikes_fired(), 1u);
  EXPECT_EQ(chaos.loss_windows_fired(), 1u);
}

TEST(ChaosScheduleTest, StormIsDeterministicForASeed) {
  auto run_storm = [](std::uint64_t seed) {
    Simulator sim;
    FailureInjector inject(sim);
    ChaosRecorder rec;
    ChaosSchedule chaos(inject, rec.hooks(sim));
    Rng rng(seed);
    chaos.poisson_crash_storm(rng, 0, 200 * kMilli, 10 * kMilli, 2 * kMilli,
                              {1, 2, 3, 4});
    sim.run();
    return rec.events;
  };
  const auto a = run_storm(42);
  const auto b = run_storm(42);
  const auto c = run_storm(43);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(ChaosScheduleTest, GuardVetoesCrashWithoutPerturbingSchedule) {
  Simulator sim;
  FailureInjector inject(sim);
  ChaosRecorder rec;
  auto hooks = rec.hooks(sim);
  hooks.can_crash = [](ChaosSchedule::NodeRef n) { return n != 2; };
  ChaosSchedule chaos(inject, hooks);
  Rng rng(5);
  chaos.poisson_crash_storm(rng, 0, 500 * kMilli, 10 * kMilli, 2 * kMilli,
                            {1, 2, 3});
  sim.run();
  EXPECT_GT(chaos.skipped_crashes(), 0u);
  EXPECT_GT(chaos.crashes_fired(), 0u);
  for (const auto& [when, what] : rec.events) {
    EXPECT_NE(what, "crash 2");
    EXPECT_NE(what, "recover 2");
  }
}

// ---- tracer ---------------------------------------------------------------

TEST(TracerTest, RecordsAndFormats) {
  Tracer tracer(8);
  tracer.record(1500, "fabric.write", "node0 -> node1, 4096B");
  tracer.record(3000, "fabric.read", "node0 <- node2, 512B");
  EXPECT_EQ(tracer.size(), 2u);
  auto recent = tracer.recent(10);
  ASSERT_EQ(recent.size(), 2u);
  EXPECT_EQ(recent[0].category, "fabric.write");
  EXPECT_EQ(recent[1].at, 3000);
  const std::string text = tracer.to_string();
  EXPECT_NE(text.find("fabric.write"), std::string::npos);
  EXPECT_NE(text.find("4096B"), std::string::npos);
}

TEST(TracerTest, RingDropsOldest) {
  Tracer tracer(4);
  for (int i = 0; i < 10; ++i)
    tracer.record(i, "cat", std::to_string(i));
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  auto recent = tracer.recent(4);
  EXPECT_EQ(recent.front().detail, "6");
  EXPECT_EQ(recent.back().detail, "9");
}

TEST(TracerTest, FilterByCategory) {
  Tracer tracer;
  tracer.record(1, "a", "x");
  tracer.record(2, "b", "y");
  tracer.record(3, "a", "z");
  auto only_a = tracer.by_category("a");
  ASSERT_EQ(only_a.size(), 2u);
  EXPECT_EQ(only_a[1].detail, "z");
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
}

// ---- ScenarioEngine -------------------------------------------------------

ScenarioEngine::Config small_scenario(std::uint64_t seed) {
  ScenarioEngine::Config config;
  config.seed = seed;
  config.node_count = 8;
  config.initial_tenants = 3;
  config.max_tenants = 10;
  config.mean_arrival_gap = 200 * kMilli;
  config.mean_lifetime = 1 * kSecond;
  config.min_working_set = 16;
  config.max_working_set = 64;
  config.mean_op_gap = 1 * kMilli;
  config.duration = 4 * kSecond;
  return config;
}

std::vector<ScenarioEngine::Op> drain(ScenarioEngine& engine) {
  std::vector<ScenarioEngine::Op> ops;
  for (;;) {
    auto op = engine.next();
    if (op.kind == ScenarioEngine::Op::Kind::kDone) break;
    ops.push_back(op);
  }
  return ops;
}

TEST(ScenarioEngineTest, SameConfigYieldsIdenticalOpStream) {
  ScenarioEngine a(small_scenario(99));
  ScenarioEngine b(small_scenario(99));
  a.start(5 * kSecond);
  b.start(5 * kSecond);
  auto ops_a = drain(a);
  auto ops_b = drain(b);
  ASSERT_EQ(ops_a.size(), ops_b.size());
  ASSERT_GT(ops_a.size(), 100u);
  for (std::size_t i = 0; i < ops_a.size(); ++i) {
    EXPECT_EQ(ops_a[i].kind, ops_b[i].kind) << i;
    EXPECT_EQ(ops_a[i].at, ops_b[i].at) << i;
    EXPECT_EQ(ops_a[i].tenant, ops_b[i].tenant) << i;
    EXPECT_EQ(ops_a[i].home, ops_b[i].home) << i;
    EXPECT_EQ(ops_a[i].working_set, ops_b[i].working_set) << i;
    EXPECT_EQ(ops_a[i].index, ops_b[i].index) << i;
    EXPECT_EQ(ops_a[i].write, ops_b[i].write) << i;
  }
  // A different seed must not replay the same schedule.
  ScenarioEngine c(small_scenario(100));
  c.start(5 * kSecond);
  auto ops_c = drain(c);
  bool differs = ops_c.size() != ops_a.size();
  for (std::size_t i = 0; !differs && i < ops_a.size(); ++i)
    differs = ops_a[i].at != ops_c[i].at || ops_a[i].kind != ops_c[i].kind;
  EXPECT_TRUE(differs);
}

TEST(ScenarioEngineTest, OpsAreWellFormedAndTimeOrdered) {
  auto config = small_scenario(7);
  ScenarioEngine engine(config);
  engine.start(0);
  auto ops = drain(engine);
  using Kind = ScenarioEngine::Op::Kind;
  SimTime last = 0;
  std::map<ScenarioEngine::TenantId, std::uint64_t> live;  // tenant -> ws
  for (const auto& op : ops) {
    EXPECT_GE(op.at, last);
    EXPECT_LE(op.at, config.duration);
    last = op.at;
    switch (op.kind) {
      case Kind::kSpawn:
        EXPECT_EQ(live.count(op.tenant), 0u);
        EXPECT_LT(op.home, config.node_count);
        EXPECT_GE(op.working_set, config.min_working_set);
        EXPECT_LE(op.working_set, config.max_working_set);
        live[op.tenant] = op.working_set;
        break;
      case Kind::kAccess:
        ASSERT_EQ(live.count(op.tenant), 1u);
        EXPECT_LT(op.index, live[op.tenant]);
        break;
      case Kind::kRetire:
        EXPECT_EQ(live.erase(op.tenant), 1u);
        break;
      case Kind::kDone:
        break;
    }
  }
  // Every spawned tenant retires by the horizon.
  EXPECT_TRUE(live.empty());
  EXPECT_EQ(engine.tenants_spawned(), engine.tenants_retired());
  EXPECT_LE(engine.tenants_spawned(), config.max_tenants);
  EXPECT_GE(engine.tenants_spawned(), config.initial_tenants);
  EXPECT_EQ(engine.active_tenants(), 0u);
}

TEST(ScenarioEngineTest, RetireNowCancelsATenantsRemainingOps) {
  ScenarioEngine engine(small_scenario(3));
  engine.start(0);
  // First op is a spawn of tenant 0 at t=0.
  auto first = engine.next();
  ASSERT_EQ(first.kind, ScenarioEngine::Op::Kind::kSpawn);
  engine.retire_now(first.tenant);
  auto second = engine.next();
  EXPECT_EQ(second.kind, ScenarioEngine::Op::Kind::kRetire);
  EXPECT_EQ(second.tenant, first.tenant);
  for (const auto& op : drain(engine)) EXPECT_NE(op.tenant, first.tenant);
}

TEST(ScenarioEngineTest, DiurnalWaveStaysInBandAndRepeats) {
  auto config = small_scenario(1);
  config.diurnal_depth = 0.5;
  config.diurnal_period = 8 * kSecond;
  ScenarioEngine engine(config);
  engine.start(0);
  for (SimTime t = 0; t <= 2 * config.diurnal_period; t += 100 * kMilli) {
    const double m = engine.load_multiplier(t);
    EXPECT_GE(m, 1.0 - config.diurnal_depth);
    EXPECT_LE(m, 1.0 + config.diurnal_depth);
    EXPECT_DOUBLE_EQ(m, engine.load_multiplier(t + config.diurnal_period));
  }
  auto flat = small_scenario(1);
  flat.diurnal_depth = 0.0;
  ScenarioEngine steady(flat);
  steady.start(0);
  EXPECT_DOUBLE_EQ(steady.load_multiplier(3 * kSecond), 1.0);
}

}  // namespace
}  // namespace dm::sim
