// Model-based randomized tests: drive a component with a random operation
// stream and check every observable against a simple reference model.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <unordered_map>

#include "common/rng.h"
#include "mem/buffer_pool.h"
#include "mem/memory_map.h"
#include "mem/shared_memory_pool.h"
#include "net/fabric.h"

namespace dm::mem {
namespace {

std::vector<std::byte> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  return v;
}

// MemoryMap vs std::unordered_map reference, including replica queries.
TEST(MemoryMapModelTest, MatchesReferenceOverRandomOps) {
  Rng rng(101);
  MemoryMap map(8);
  std::unordered_map<EntryId, EntryLocation> reference;

  auto random_location = [&]() {
    EntryLocation loc;
    const int tier = static_cast<int>(rng.next_below(3));
    loc.tier = static_cast<Tier>(tier);
    loc.logical_size = 4096;
    loc.stored_size = static_cast<std::uint32_t>(rng.uniform(1, 4096));
    loc.checksum = rng.next_u64();
    if (loc.tier == Tier::kRemote) {
      const std::size_t replicas = 1 + rng.next_below(3);
      for (std::size_t i = 0; i < replicas; ++i)
        loc.replicas.push_back(
            {static_cast<net::NodeId>(rng.next_below(6)), rng.next_u64(),
             rng.next_below(1 << 20), 0, 4096});
    } else if (loc.tier == Tier::kDisk) {
      loc.disk_offset = rng.next_below(1 << 24);
    }
    return loc;
  };

  for (int step = 0; step < 20000; ++step) {
    const EntryId id = rng.next_below(300);
    switch (rng.next_below(4)) {
      case 0: {  // commit
        auto loc = random_location();
        map.commit(id, loc);
        reference[id] = loc;
        break;
      }
      case 1: {  // lookup
        auto got = map.lookup(id);
        auto ref = reference.find(id);
        ASSERT_EQ(got.ok(), ref != reference.end());
        if (got.ok()) {
          ASSERT_EQ(got->tier, ref->second.tier);
          ASSERT_EQ(got->stored_size, ref->second.stored_size);
          ASSERT_EQ(got->checksum, ref->second.checksum);
          ASSERT_EQ(got->replicas, ref->second.replicas);
        }
        break;
      }
      case 2: {  // remove
        const bool existed = reference.erase(id) > 0;
        ASSERT_EQ(map.remove(id).ok(), existed);
        break;
      }
      case 3: {  // replica query against reference scan
        const auto node = static_cast<net::NodeId>(rng.next_below(6));
        auto got = map.entries_with_replica_on(node);
        std::size_t expect = 0;
        for (const auto& [rid, loc] : reference) {
          if (loc.tier != Tier::kRemote) continue;
          for (const auto& replica : loc.replicas)
            if (replica.node == node) {
              ++expect;
              break;
            }
        }
        ASSERT_EQ(got.size(), expect);
        break;
      }
    }
    ASSERT_EQ(map.size(), reference.size());
  }
}

// SharedMemoryPool vs a byte-accurate reference.
TEST(SharedPoolModelTest, MatchesReferenceOverRandomOps) {
  Rng rng(202);
  SharedMemoryPool pool({.arena_bytes = 2 * MiB, .slab = {}});
  ASSERT_TRUE(pool.set_donation(1, 1 * MiB).ok());
  ASSERT_TRUE(pool.set_donation(2, 512 * KiB).ok());

  std::map<std::pair<ServerId, EntryId>, std::vector<std::byte>> reference;

  for (int step = 0; step < 8000; ++step) {
    const ServerId owner = 1 + static_cast<ServerId>(rng.next_below(2));
    const EntryId id = rng.next_below(200);
    const auto key = std::pair{owner, id};
    switch (rng.next_below(3)) {
      case 0: {  // put
        auto data = random_bytes(rng, 1 + rng.next_below(4096));
        Status s = pool.put(owner, id, data);
        if (reference.count(key) > 0) {
          ASSERT_EQ(s.code(), StatusCode::kAlreadyExists);
        } else if (s.ok()) {
          reference[key] = std::move(data);
        }
        break;
      }
      case 1: {  // get
        auto ref = reference.find(key);
        std::vector<std::byte> out(4096);
        Status s = pool.get(owner, id, out);
        ASSERT_EQ(s.ok(), ref != reference.end());
        if (s.ok()) {
          ASSERT_TRUE(std::equal(ref->second.begin(), ref->second.end(),
                                 out.begin()));
        }
        break;
      }
      case 2: {  // remove
        const bool existed = reference.erase(key) > 0;
        ASSERT_EQ(pool.remove(owner, id).ok(), existed);
        break;
      }
    }
    ASSERT_EQ(pool.entry_count(), reference.size());
  }

  // Drain through LRU eviction: every eviction must return exact bytes.
  while (pool.entry_count() > 0) {
    ServerId owner = 0;
    EntryId id = 0;
    auto bytes = pool.evict_lru(&owner, &id);
    ASSERT_TRUE(bytes.ok());
    auto ref = reference.find({owner, id});
    ASSERT_NE(ref, reference.end());
    ASSERT_EQ(*bytes, ref->second);
    reference.erase(ref);
  }
}

// RegisteredBufferPool invariants under random churn: no block overlap, all
// registered bytes tracked, slab counts consistent with the fabric.
TEST(BufferPoolModelTest, NoOverlapAndConsistentRegistration) {
  sim::Simulator sim;
  net::Fabric fabric(sim);
  fabric.add_node(0);
  RegisteredBufferPool pool(
      fabric, 0, {.arena_bytes = 2 * MiB, .slab_bytes = 128 * KiB});
  Rng rng(303);

  struct Live {
    BlockRef ref;
  };
  std::vector<Live> live;
  for (int step = 0; step < 6000; ++step) {
    if (live.empty() || rng.bernoulli(0.6)) {
      auto block = pool.allocate(
          static_cast<std::uint32_t>(512u << rng.next_below(4)));
      if (!block.ok()) continue;
      // No overlap with any live block in the same slab.
      for (const auto& other : live) {
        if (other.ref.slab != block->slab) continue;
        const bool disjoint =
            block->offset + block->size <= other.ref.offset ||
            other.ref.offset + other.ref.size <= block->offset;
        ASSERT_TRUE(disjoint);
      }
      live.push_back({*block});
    } else {
      const std::size_t idx =
          static_cast<std::size_t>(rng.next_below(live.size()));
      ASSERT_TRUE(pool.free(live[idx].ref).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_EQ(pool.registered_bytes(),
              fabric.registered_bytes(0));
    ASSERT_EQ(pool.active_slabs(), fabric.registered_region_count(0));
  }
  for (const auto& block : live) ASSERT_TRUE(pool.free(block.ref).ok());
  EXPECT_EQ(pool.used_bytes(), 0u);
}

}  // namespace
}  // namespace dm::mem
