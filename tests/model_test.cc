// Model-based randomized tests: drive a component with a random operation
// stream and check every observable against a simple reference model.
//
// The second half of this file is the swap-path model checker: it replays
// seeded fault/evict/flush traces through a full SwapManager (real
// simulator, real tiers, real compression) and, in lockstep, through
// SwapOracle — a pure-function reference that mirrors the paging layer's
// membership semantics (resident set, dirty set, swap-cache backing, batch
// composition, LRU order, the adaptive-PBS policy state machines, and the
// admission-control decision). Seventeen numbered properties (P1–P17) are
// asserted along the trace; see SwapModelChecker::check_*.
#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "common/checksum.h"
#include "common/lru.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/dm_system.h"
#include "core/ldmc.h"
#include "core/node_service.h"
#include "cxl/coherence.h"
#include "cxl/page_tier.h"
#include "mem/buffer_pool.h"
#include "mem/memory_map.h"
#include "mem/shared_memory_pool.h"
#include "net/fabric.h"
#include "sim/simulator.h"
#include "swap/pattern_tracker.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "workloads/page_content.h"

namespace dm::mem {
namespace {

std::vector<std::byte> random_bytes(Rng& rng, std::size_t n) {
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng.next_u64() & 0xff);
  return v;
}

// MemoryMap vs std::unordered_map reference, including replica queries.
TEST(MemoryMapModelTest, MatchesReferenceOverRandomOps) {
  Rng rng(101);
  MemoryMap map(8);
  std::unordered_map<EntryId, EntryLocation> reference;

  auto random_location = [&]() {
    EntryLocation loc;
    const int tier = static_cast<int>(rng.next_below(3));
    loc.tier = static_cast<Tier>(tier);
    loc.logical_size = 4096;
    loc.stored_size = static_cast<std::uint32_t>(rng.uniform(1, 4096));
    loc.checksum = rng.next_u64();
    if (loc.tier == Tier::kRemote) {
      const std::size_t replicas = 1 + rng.next_below(3);
      for (std::size_t i = 0; i < replicas; ++i)
        loc.replicas.push_back(
            {static_cast<net::NodeId>(rng.next_below(6)), rng.next_u64(),
             rng.next_below(1 << 20), 0, 4096});
    } else if (loc.tier == Tier::kDisk) {
      loc.disk_offset = rng.next_below(1 << 24);
    }
    return loc;
  };

  for (int step = 0; step < 20000; ++step) {
    const EntryId id = rng.next_below(300);
    switch (rng.next_below(4)) {
      case 0: {  // commit
        auto loc = random_location();
        map.commit(id, loc);
        reference[id] = loc;
        break;
      }
      case 1: {  // lookup
        auto got = map.lookup(id);
        auto ref = reference.find(id);
        ASSERT_EQ(got.ok(), ref != reference.end());
        if (got.ok()) {
          ASSERT_EQ(got->tier, ref->second.tier);
          ASSERT_EQ(got->stored_size, ref->second.stored_size);
          ASSERT_EQ(got->checksum, ref->second.checksum);
          ASSERT_EQ(got->replicas, ref->second.replicas);
        }
        break;
      }
      case 2: {  // remove
        const bool existed = reference.erase(id) > 0;
        ASSERT_EQ(map.remove(id).ok(), existed);
        break;
      }
      case 3: {  // replica query against reference scan
        const auto node = static_cast<net::NodeId>(rng.next_below(6));
        auto got = map.entries_with_replica_on(node);
        std::size_t expect = 0;
        for (const auto& [rid, loc] : reference) {
          if (loc.tier != Tier::kRemote) continue;
          for (const auto& replica : loc.replicas)
            if (replica.node == node) {
              ++expect;
              break;
            }
        }
        ASSERT_EQ(got.size(), expect);
        break;
      }
    }
    ASSERT_EQ(map.size(), reference.size());
  }
}

// SharedMemoryPool vs a byte-accurate reference.
TEST(SharedPoolModelTest, MatchesReferenceOverRandomOps) {
  Rng rng(202);
  SharedMemoryPool pool({.arena_bytes = 2 * MiB, .slab = {}});
  ASSERT_TRUE(pool.set_donation(1, 1 * MiB).ok());
  ASSERT_TRUE(pool.set_donation(2, 512 * KiB).ok());

  std::map<std::pair<ServerId, EntryId>, std::vector<std::byte>> reference;

  for (int step = 0; step < 8000; ++step) {
    const ServerId owner = 1 + static_cast<ServerId>(rng.next_below(2));
    const EntryId id = rng.next_below(200);
    const auto key = std::pair{owner, id};
    switch (rng.next_below(3)) {
      case 0: {  // put
        auto data = random_bytes(rng, 1 + rng.next_below(4096));
        Status s = pool.put(owner, id, data);
        if (reference.count(key) > 0) {
          ASSERT_EQ(s.code(), StatusCode::kAlreadyExists);
        } else if (s.ok()) {
          reference[key] = std::move(data);
        }
        break;
      }
      case 1: {  // get
        auto ref = reference.find(key);
        std::vector<std::byte> out(4096);
        Status s = pool.get(owner, id, out);
        ASSERT_EQ(s.ok(), ref != reference.end());
        if (s.ok()) {
          ASSERT_TRUE(std::equal(ref->second.begin(), ref->second.end(),
                                 out.begin()));
        }
        break;
      }
      case 2: {  // remove
        const bool existed = reference.erase(key) > 0;
        ASSERT_EQ(pool.remove(owner, id).ok(), existed);
        break;
      }
    }
    ASSERT_EQ(pool.entry_count(), reference.size());
  }

  // Drain through LRU eviction: every eviction must return exact bytes.
  while (pool.entry_count() > 0) {
    ServerId owner = 0;
    EntryId id = 0;
    auto bytes = pool.evict_lru(&owner, &id);
    ASSERT_TRUE(bytes.ok());
    auto ref = reference.find({owner, id});
    ASSERT_NE(ref, reference.end());
    ASSERT_EQ(*bytes, ref->second);
    reference.erase(ref);
  }
}

// RegisteredBufferPool invariants under random churn: no block overlap, all
// registered bytes tracked, slab counts consistent with the fabric.
TEST(BufferPoolModelTest, NoOverlapAndConsistentRegistration) {
  sim::Simulator sim;
  net::Fabric fabric(sim);
  fabric.add_node(0);
  RegisteredBufferPool pool(
      fabric, 0, {.arena_bytes = 2 * MiB, .slab_bytes = 128 * KiB});
  Rng rng(303);

  struct Live {
    BlockRef ref;
  };
  std::vector<Live> live;
  for (int step = 0; step < 6000; ++step) {
    if (live.empty() || rng.bernoulli(0.6)) {
      auto block = pool.allocate(
          static_cast<std::uint32_t>(512u << rng.next_below(4)));
      if (!block.ok()) continue;
      // No overlap with any live block in the same slab.
      for (const auto& other : live) {
        if (other.ref.slab != block->slab) continue;
        const bool disjoint =
            block->offset + block->size <= other.ref.offset ||
            other.ref.offset + other.ref.size <= block->offset;
        ASSERT_TRUE(disjoint);
      }
      live.push_back({*block});
    } else {
      const std::size_t idx =
          static_cast<std::size_t>(rng.next_below(live.size()));
      ASSERT_TRUE(pool.free(live[idx].ref).ok());
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(idx));
    }
    ASSERT_EQ(pool.registered_bytes(),
              fabric.registered_bytes(0));
    ASSERT_EQ(pool.active_slabs(), fabric.registered_region_count(0));
  }
  for (const auto& block : live) ASSERT_TRUE(pool.free(block.ref).ok());
  EXPECT_EQ(pool.used_bytes(), 0u);
}

}  // namespace
}  // namespace dm::mem

namespace dm::swap {
namespace {

// Per-page content: every fourth page is incompressible (random bytes),
// the rest compress well — so one trace exercises both admission-control
// branches. Pure function of the page id, like all swap content.
constexpr double kCompressibleFraction = 0.15;
double page_random_fraction(std::uint64_t page) {
  return page % 4 == 0 ? 1.0 : kCompressibleFraction;
}

void model_content(std::uint64_t page, std::span<std::byte> out) {
  workloads::fill_page(out, page, page_random_fraction(page), 17);
}

std::uint64_t model_checksum(std::uint64_t page) {
  std::vector<std::byte> bytes(kPageBytes);
  model_content(page, bytes);
  return fnv1a(bytes);
}

// ---------------------------------------------------------------------------
// SwapOracle: pure-function reference model of SwapManager's membership
// semantics. No simulator, no I/O, no bytes — it tracks WHICH pages are
// where (resident / dirty / backed / batch members / LRU order) and what
// the policy state machines decide, which is exactly what the checker
// compares against the real implementation.
//
// Deliberately out of scope (checked by other means or other tests): fault
// latencies, the zswap tier (model configs run with zswap off), and the
// write-back buffer's asynchronous flush timing — a successful flush does
// not change page membership, so the oracle is exact even with staging on.
// ---------------------------------------------------------------------------
class SwapOracle {
 public:
  struct Counters {
    std::uint64_t faults = 0;
    std::uint64_t swap_ins = 0;
    std::uint64_t swap_outs = 0;
    std::uint64_t cold_faults = 0;
    std::uint64_t clean_drops = 0;
    std::uint64_t pbs_batch_ins = 0;
    std::uint64_t single_page_ins = 0;
    std::uint64_t fanout_skips = 0;
    std::uint64_t admit_accept = 0;
    std::uint64_t admit_skip = 0;
    std::uint64_t swapped_out_pages = 0;
  };

  // `config` must be the manager's post-construction config (the ctor
  // clamps max_batch_pages), i.e. manager.config().
  explicit SwapOracle(const SwapManager::Config& config) : config_(config) {
    if (config_.adaptive_pbs) {
      pattern_.emplace(config_.pattern_history,
                       static_cast<std::int64_t>(config_.max_batch_pages));
      window_.emplace(AdaptiveWindow::Config{
          config_.min_batch_pages, config_.max_batch_pages,
          std::clamp(config_.batch_pages, config_.min_batch_pages,
                     config_.max_batch_pages),
          config_.pattern_hysteresis});
    }
  }

  void touch(std::uint64_t page, bool write) {
    if (resident_.count(page) > 0) {
      lru_.touch(page);
      if (write) {
        dirty_.insert(page);
        invalidate(page);
      }
      return;
    }
    ++c_.faults;
    if (config_.adaptive_pbs) {
      pattern_->record(page);
      window_->update(pattern_->classify());
    }
    if (backed_.count(page) > 0) {
      fault_backed(page);
    } else {
      make_room(1);
      resident_.insert(page);
      lru_.touch(page);
      ++c_.cold_faults;
    }
    if (write) {
      dirty_.insert(page);
      invalidate(page);
    }
  }

  void flush_all() {
    while (!resident_.empty()) evict_for_space();
  }

  std::size_t window() const {
    return window_ ? window_->current() : config_.batch_pages;
  }
  AccessPattern pattern() const {
    return pattern_ ? pattern_->classify() : AccessPattern::kUnknown;
  }

  const Counters& counters() const { return c_; }
  const std::set<std::uint64_t>& resident() const { return resident_; }
  const std::set<std::uint64_t>& dirty() const { return dirty_; }
  const std::map<std::uint64_t, mem::EntryId>& backed() const {
    return backed_;
  }

 private:
  void invalidate(std::uint64_t page) {
    auto it = backed_.find(page);
    if (it == backed_.end()) return;
    const mem::EntryId entry = it->second;
    backed_.erase(it);
    auto& members = batches_.at(entry);
    members.erase(std::find(members.begin(), members.end(), page));
    if (members.empty()) batches_.erase(entry);
  }

  void fault_backed(std::uint64_t page) {
    const mem::EntryId entry = backed_.at(page);
    bool pbs = config_.proactive_batch_swap_in;
    if (pbs && config_.adaptive_pbs &&
        pattern_->classify() == AccessPattern::kRandom) {
      pbs = false;
      ++c_.fanout_skips;
    }
    std::vector<std::uint64_t> restore;
    if (pbs) {
      for (std::uint64_t member : batches_.at(entry))
        if (resident_.count(member) == 0) restore.push_back(member);
      ++c_.pbs_batch_ins;
    } else {
      restore.push_back(page);
      ++c_.single_page_ins;
    }
    make_room(restore.size());
    for (std::uint64_t member : restore) {
      resident_.insert(member);
      lru_.touch(member);
      ++c_.swap_ins;
    }
  }

  void make_room(std::size_t incoming) {
    while (resident_.size() + incoming > config_.resident_pages)
      evict_for_space();
  }

  void evict_for_space() {
    const std::size_t window_pages =
        config_.adaptive_pbs ? window_->current() : config_.batch_pages;
    std::vector<std::uint64_t> to_write;
    while (to_write.size() < window_pages && !lru_.empty()) {
      const std::uint64_t victim = *lru_.evict_lru();
      const bool clean =
          dirty_.count(victim) == 0 && backed_.count(victim) > 0;
      if (clean) {
        resident_.erase(victim);
        ++c_.clean_drops;
        if (to_write.empty()) break;
        continue;
      }
      to_write.push_back(victim);
    }
    if (to_write.empty()) return;
    for (std::uint64_t page : to_write) {
      resident_.erase(page);
      dirty_.erase(page);
    }
    store_batch(to_write);
  }

  void store_batch(const std::vector<std::uint64_t>& pages) {
    const mem::EntryId entry = next_batch_++;
    for (std::uint64_t page : pages) {
      if (config_.compression != CompressionMode::kOff &&
          config_.compression_admission) {
        std::vector<std::byte> bytes(kPageBytes);
        model_content(page, bytes);
        const double entropy =
            compress::sample_entropy(bytes, config_.admission_probe_bytes);
        ++(entropy <= config_.admission_max_entropy ? c_.admit_accept
                                                    : c_.admit_skip);
      }
      backed_.emplace(page, entry);
      batches_[entry].push_back(page);
    }
    ++c_.swap_outs;
    c_.swapped_out_pages += pages.size();
  }

  SwapManager::Config config_;
  std::optional<PatternTracker> pattern_;
  std::optional<AdaptiveWindow> window_;
  std::set<std::uint64_t> resident_;
  std::set<std::uint64_t> dirty_;
  LruTracker<std::uint64_t> lru_;
  std::map<std::uint64_t, mem::EntryId> backed_;
  std::map<mem::EntryId, std::vector<std::uint64_t>> batches_;
  mem::EntryId next_batch_ = 1;
  Counters c_;
};

// ---------------------------------------------------------------------------
// The checker: builds a real system + SwapManager and an oracle from the
// same config, replays a seeded trace of mixed sequential / strided /
// random phases with writes and occasional flush/barrier events, and
// asserts the properties after every step.
// ---------------------------------------------------------------------------
class SwapModelChecker {
 public:
  SwapModelChecker(SystemSetup setup, std::uint64_t seed,
                   std::uint64_t page_space = 128)
      : page_space_(page_space), rng_(seed) {
    core::DmSystem::Config config;
    config.node_count = 4;
    config.node.shm.arena_bytes = 16 * MiB;
    config.node.recv.arena_bytes = 16 * MiB;
    config.node.disk.capacity_bytes = 128 * MiB;
    config.service = setup.service;
    system_ = std::make_unique<core::DmSystem>(config);
    system_->start();
    auto& client = system_->create_server(0, 64 * MiB, setup.ldmc);
    manager_ = std::make_unique<SwapManager>(client, setup.swap,
                                             model_content);
    oracle_ = std::make_unique<SwapOracle>(manager_->config());
  }

  void run(int steps) {
    int remaining = 0;
    int mode = 0;
    std::uint64_t cursor = 0;
    std::uint64_t stride = 1;
    for (int step = 0; step < steps; ++step) {
      if (remaining == 0) {
        mode = static_cast<int>(rng_.next_below(3));
        remaining = 16 + static_cast<int>(rng_.next_below(48));
        cursor = rng_.next_below(page_space_);
        stride = 2 + rng_.next_below(6);
      }
      --remaining;
      std::uint64_t page = 0;
      switch (mode) {
        case 0: page = cursor++ % page_space_; break;            // sequential
        case 1: page = (cursor += stride) % page_space_; break;  // strided
        default: page = rng_.next_below(page_space_); break;     // random
      }
      const bool write = rng_.bernoulli(0.3);
      touched_.insert(page);

      // P1: every touch on a healthy system succeeds.
      ASSERT_TRUE(manager_->touch(page, write).ok())
          << "step " << step << " page " << page;
      oracle_->touch(page, write);

      check_step(step, page);
      if (step % 64 == 63) check_full(step);

      if (rng_.bernoulli(0.005)) {
        // P16: the barrier drains the write-back buffer completely.
        ASSERT_TRUE(manager_->wb_barrier().ok());
        ASSERT_EQ(manager_->wb_staged_batches(), 0u);
        ASSERT_EQ(manager_->wb_in_flight(), 0u);
      } else if (rng_.bernoulli(0.003)) {
        // P17: flush_all empties the resident set; every touched page must
        // come back intact afterwards (checked by the next faults + the
        // final sweep below).
        ASSERT_TRUE(manager_->flush_all().ok());
        oracle_->flush_all();
        ASSERT_EQ(manager_->resident_count(), 0u);
        ASSERT_EQ(oracle_->resident().size(), 0u);
        ASSERT_EQ(manager_->wb_staged_batches(), 0u);
      }
    }
    check_full(steps);

    // Final integrity sweep (P17's second half): every page ever touched
    // is still recoverable with generator-exact contents.
    for (std::uint64_t page : touched_) {
      ASSERT_TRUE(manager_->touch(page).ok());
      auto bytes = manager_->resident_bytes(page);
      ASSERT_TRUE(bytes.ok());
      ASSERT_EQ(fnv1a(*bytes), model_checksum(page)) << "page " << page;
    }
  }

  SwapManager& manager() { return *manager_; }
  core::DmSystem& system() { return *system_; }

 private:
  void check_step(int step, std::uint64_t page) {
    const auto& c = oracle_->counters();
    auto& m = manager_->metrics();
    // P2: the touched page is resident afterwards.
    ASSERT_TRUE(manager_->is_resident(page)) << "step " << step;
    // P3: fault count matches the oracle.
    ASSERT_EQ(manager_->faults(), c.faults) << "step " << step;
    // P4 / P5: swap-in and swap-out counts match.
    ASSERT_EQ(manager_->swap_ins(), c.swap_ins) << "step " << step;
    ASSERT_EQ(manager_->swap_outs(), c.swap_outs) << "step " << step;
    // P6: resident-set size matches.
    ASSERT_EQ(manager_->resident_count(), oracle_->resident().size());
    // P7: the resident budget is never exceeded.
    ASSERT_LE(manager_->resident_count(),
              manager_->config().resident_pages);
    // P12: service-path counters match.
    ASSERT_EQ(m.counter_value("swap.cold_faults"), c.cold_faults);
    ASSERT_EQ(m.counter_value("swap.clean_drops"), c.clean_drops);
    ASSERT_EQ(m.counter_value("swap.swapped_out_pages"),
              c.swapped_out_pages);
    // P13: the PBS/single-page fan-out decisions match.
    ASSERT_EQ(m.counter_value("swap.pbs_batch_ins"), c.pbs_batch_ins);
    ASSERT_EQ(m.counter_value("swap.single_page_ins"), c.single_page_ins);
    ASSERT_EQ(m.counter_value("swap.pbs.fanout_skips"), c.fanout_skips);
    // P14: every admission-control decision matches the oracle's entropy
    // recomputation.
    ASSERT_EQ(m.counter_value("swap.admit.accept"), c.admit_accept);
    ASSERT_EQ(m.counter_value("swap.admit.skip"), c.admit_skip);
    // P15: the adaptive window agrees and stays within its bounds.
    ASSERT_EQ(manager_->current_window(), oracle_->window());
    if (manager_->config().adaptive_pbs) {
      ASSERT_GE(manager_->current_window(),
                manager_->config().min_batch_pages);
      ASSERT_LE(manager_->current_window(),
                manager_->config().max_batch_pages);
      ASSERT_EQ(manager_->current_pattern(), oracle_->pattern());
    }
    // P16 (bound half): the staging buffer respects its configured bound.
    ASSERT_LE(manager_->wb_staged_batches(),
              std::max<std::size_t>(manager_->config().writeback_batches,
                                    1));
  }

  void check_full(int step) {
    // P6 (membership half) / P8 / P9 / P10, swept over the whole page
    // space every 64 steps.
    for (std::uint64_t page = 0; page < page_space_; ++page) {
      ASSERT_EQ(manager_->is_resident(page),
                oracle_->resident().count(page) > 0)
          << "step " << step << " page " << page;
      // P8: swap-cache backing matches.
      ASSERT_EQ(manager_->is_backed(page),
                oracle_->backed().count(page) > 0)
          << "step " << step << " page " << page;
      // P9: dirty state matches.
      ASSERT_EQ(manager_->is_dirty(page), oracle_->dirty().count(page) > 0)
          << "step " << step << " page " << page;
    }
    ASSERT_EQ(manager_->backed_count(), oracle_->backed().size());
    // P10: conservation — no touched page is ever lost; each is resident,
    // backed down-tier, or both.
    for (std::uint64_t page : touched_) {
      ASSERT_TRUE(manager_->is_resident(page) || manager_->is_backed(page))
          << "page " << page << " lost at step " << step;
    }
    // P11: every resident page holds generator-exact bytes.
    for (std::uint64_t page : touched_) {
      if (!manager_->is_resident(page)) continue;
      auto bytes = manager_->resident_bytes(page);
      ASSERT_TRUE(bytes.ok());
      ASSERT_EQ(fnv1a(*bytes), model_checksum(page)) << "page " << page;
    }
  }

  std::uint64_t page_space_;
  Rng rng_;
  std::unique_ptr<core::DmSystem> system_;
  std::unique_ptr<SwapManager> manager_;
  std::unique_ptr<SwapOracle> oracle_;
  std::set<std::uint64_t> touched_;
};

SystemSetup small_setup(SystemKind kind, std::uint64_t resident = 32) {
  auto setup = make_system(kind, resident);
  return setup;
}

TEST(SwapModelTest, FastSwapFixedWindowMatchesOracle) {
  SwapModelChecker checker(small_setup(SystemKind::kFastSwap), 1001);
  checker.run(1500);
}

TEST(SwapModelTest, NoPbsMatchesOracle) {
  SwapModelChecker checker(small_setup(SystemKind::kFastSwapNoPbs), 1002);
  checker.run(1500);
}

TEST(SwapModelTest, PerPageBatchingMatchesOracle) {
  auto setup = small_setup(SystemKind::kFastSwap);
  setup.swap.batch_pages = 1;
  SwapModelChecker checker(setup, 1003);
  checker.run(1000);
}

TEST(SwapModelTest, AdaptivePbsMatchesOracle) {
  auto setup = small_setup(SystemKind::kFastSwap);
  setup.swap.adaptive_pbs = true;
  SwapModelChecker checker(setup, 1004);
  checker.run(1500);
}

TEST(SwapModelTest, CompressionAdmissionMatchesOracle) {
  auto setup = small_setup(SystemKind::kFastSwap);
  setup.swap.compression_admission = true;
  SwapModelChecker checker(setup, 1005);
  checker.run(1500);
}

TEST(SwapModelTest, WriteBackStagingMatchesOracle) {
  auto setup = small_setup(SystemKind::kFastSwap);
  setup.swap.writeback_batches = 4;
  SwapModelChecker checker(setup, 1006);
  checker.run(1500);
}

TEST(SwapModelTest, FullAdaptiveEngineMatchesOracle) {
  SwapModelChecker checker(small_setup(SystemKind::kFastSwapAdaptive), 1007);
  checker.run(2000);
}

TEST(SwapModelTest, FullAdaptiveEngineMatchesOracleAcrossSeeds) {
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    SwapModelChecker checker(small_setup(SystemKind::kFastSwapAdaptive),
                             seed);
    checker.run(800);
  }
}

TEST(SwapModelTest, UncompressedBaselineWithWriteBackMatchesOracle) {
  auto setup = small_setup(SystemKind::kInfiniswap);
  setup.swap.disk_backup = false;  // keep the oracle's scope exact
  setup.swap.writeback_batches = 2;
  setup.swap.adaptive_pbs = true;
  SwapModelChecker checker(setup, 1008);
  checker.run(1200);
}

// P-determinism: the same seeded trace replayed twice produces the exact
// same counters and a byte-identical metrics dump — the property the
// chaos/recovery suites rely on for reproducing schedules.
TEST(SwapModelTest, SameSeedReplaysAreByteIdentical) {
  auto run_once = [](std::uint64_t seed) {
    SwapModelChecker checker(small_setup(SystemKind::kFastSwapAdaptive),
                             seed);
    checker.run(700);
    const std::string dump = checker.manager().metrics().to_string();
    return std::tuple(checker.manager().faults(),
                      checker.manager().swap_ins(),
                      checker.manager().swap_outs(),
                      checker.system().simulator().now(),
                      fnv1a(std::as_bytes(
                          std::span(dump.data(), dump.size()))));
  };
  EXPECT_EQ(run_once(4242), run_once(4242));
}

}  // namespace
}  // namespace dm::swap

// --- erasure-coded stripe invariants (Hydra-style EC model checker) ----------
//
// A seeded op stream (EC puts, reads, guarded crashes/recoveries, repair
// scans) runs against a live cluster while four invariants are re-checked
// after every step:
//   E1  every EC stripe carries unique shard indices, at most k+r of them;
//   E2  any entry with >= k live shard hosts is readable, byte-exact —
//       including through the degraded reconstruction path;
//   E3  a repair scan never decreases any stripe's surviving-shard count;
//   E4  degraded reads return bytes identical to the fault-free read
//       (checked implicitly by E2's byte-exact comparison both before and
//       after faults).
namespace dm::core {
namespace {

std::vector<std::byte> ec_page(std::uint64_t id) {
  std::vector<std::byte> bytes(4096);
  workloads::fill_page(bytes, id, 0.5, 7);
  return bytes;
}

TEST(EcModelTest, StripeInvariantsHoldOverRandomOps) {
  constexpr std::size_t kEcK = 2;
  constexpr std::size_t kEcR = 2;
  DmSystem::Config config;
  config.node_count = 8;
  config.node.shm.arena_bytes = 4 * MiB;
  config.node.recv.arena_bytes = 16 * MiB;
  config.node.disk.capacity_bytes = 64 * MiB;
  config.service.rdmc.ec_k = kEcK;
  config.service.rdmc.ec_r = kEcR;
  config.service.rdmc.min_shards = kEcK;
  DmSystem system(config);
  system.start();
  LdmcOptions options;
  options.shm_fraction = 0.0;
  options.allow_disk = false;
  auto& client = system.create_server(0, 64 * MiB, options);

  Rng rng(20260809);
  std::set<mem::EntryId> live_keys;
  std::vector<std::size_t> down_nodes;
  mem::EntryId next_key = 1;

  auto live_shards = [&](const mem::EntryLocation& loc) {
    std::size_t live = 0;
    for (const auto& replica : loc.replicas)
      if (system.fabric().node_up(replica.node)) ++live;
    return live;
  };
  // E1 for every live key, plus the E2 readability/byte-exactness check.
  auto check_stripes = [&]() {
    for (mem::EntryId key : live_keys) {
      auto loc = client.map().lookup(key);
      ASSERT_TRUE(loc.ok()) << "key " << key;
      if (loc->tier != mem::Tier::kRemote) continue;
      ASSERT_EQ(loc->ec_k, kEcK);
      std::set<std::uint32_t> shards;
      for (const auto& replica : loc->replicas) {
        EXPECT_LT(replica.shard, kEcK + kEcR);
        shards.insert(replica.shard);
      }
      EXPECT_EQ(shards.size(), loc->replicas.size())
          << "duplicate shard index on key " << key;
      EXPECT_LE(loc->replicas.size(), kEcK + kEcR);
      if (live_shards(*loc) >= kEcK) {
        std::vector<std::byte> out(4096);
        ASSERT_TRUE(client.get_sync(key, out).ok())
            << "key " << key << " unreadable with >= k live shards";
        EXPECT_EQ(out, ec_page(key)) << "key " << key;
      }
    }
  };

  for (int step = 0; step < 120; ++step) {
    const std::size_t op = rng.next_below(10);
    if (op < 4) {  // put a fresh key
      const mem::EntryId key = next_key++;
      if (client.put_sync(key, ec_page(key)).ok()) live_keys.insert(key);
    } else if (op < 7 && !live_keys.empty()) {  // read a random key
      auto it = live_keys.begin();
      std::advance(it, rng.next_below(live_keys.size()));
      std::vector<std::byte> out(4096);
      if (client.get_sync(*it, out).ok()) {
        EXPECT_EQ(out, ec_page(*it));
      }
    } else if (op == 7 && down_nodes.size() < kEcR) {  // guarded crash
      const std::size_t victim = 1 + rng.next_below(7);
      bool ok = system.fabric().node_up(system.node(victim).id());
      client.map().for_each(
          [&](mem::EntryId, const mem::EntryLocation& loc) {
            if (loc.tier != mem::Tier::kRemote || loc.ec_k == 0) return;
            std::size_t live = 0;
            for (const auto& replica : loc.replicas)
              if (replica.node != system.node(victim).id() &&
                  system.fabric().node_up(replica.node))
                ++live;
            if (live < kEcK) ok = false;
          });
      if (ok) {
        system.crash_node(victim);
        down_nodes.push_back(victim);
      }
    } else if (op == 8 && !down_nodes.empty()) {  // recover
      system.recover_node(down_nodes.back());
      down_nodes.pop_back();
    } else {  // repair scan; E3: surviving counts never decrease
      std::map<mem::EntryId, std::size_t> before;
      for (mem::EntryId key : live_keys) {
        auto loc = client.map().lookup(key);
        if (loc.ok() && loc->tier == mem::Tier::kRemote)
          before[key] = live_shards(*loc);
      }
      bool scanned = false;
      system.repair(0).scan_tick([&]() { scanned = true; });
      ASSERT_TRUE(system.simulator().run_until_flag(scanned));
      for (const auto& [key, count] : before) {
        auto loc = client.map().lookup(key);
        ASSERT_TRUE(loc.ok());
        EXPECT_GE(live_shards(*loc), count)
            << "repair shrank key " << key << "'s surviving shards";
      }
    }
    system.run_for(20 * kMilli);
    check_stripes();
  }

  // Heal completely and re-verify everything one last time.
  for (std::size_t node : down_nodes) system.recover_node(node);
  down_nodes.clear();
  system.run_for(10 * kSecond);
  check_stripes();
  EXPECT_GT(live_keys.size(), 20u);
}

}  // namespace
}  // namespace dm::core

// --- CXL tier invariants (DESIGN.md §14) -------------------------------------
//
// A seeded fault/evict trace drives a SwapManager whose eviction path tiers
// DRAM -> CXL -> RDMA backend, and five tier invariants are checked after
// every step:
//
//   T1  exclusivity: a page in the CXL pool is neither resident nor backed
//       down-tier — the pool holds the sole authoritative copy.
//   T2  integrity: promotion/demotion never loses the latest bytes; every
//       resident page always matches its generator image.
//   T3  line faults stay off the page path: a sub-threshold touch of a
//       pooled page moves only fabric.cxl_* counters, never swap_ins/outs.
//   T4  pool bound: the pool never exceeds its configured capacity.
//   T5  conservation: after flush_all, the pool is empty and every page
//       ever touched comes back intact from the durable tiers.

namespace dm::cxl {
namespace {

struct CxlModelRig {
  CxlModelRig(std::uint64_t resident_pages, std::size_t pool_pages,
              std::uint64_t promote_threshold)
      : setup(swap::make_system(swap::SystemKind::kFastSwap, resident_pages)) {
    core::DmSystem::Config config;
    config.node_count = 4;
    config.node.shm.arena_bytes = 16 * MiB;
    config.node.recv.arena_bytes = 16 * MiB;
    config.node.disk.capacity_bytes = 128 * MiB;
    config.service = setup.service;
    config.cxl_region_bytes = 4 * MiB;
    config.cxl_home = 1;
    system = std::make_unique<core::DmSystem>(config);
    system->start();
    client = &system->create_server(0, 64 * MiB, setup.ldmc);
    CxlPageTier::Config tier_config;
    tier_config.pool_pages = pool_pages;
    tier_config.page_bytes = swap::kPageBytes;
    tier = std::make_unique<CxlPageTier>(system->create_cxl_agent(0),
                                         tier_config);
    auto swap_config = setup.swap;
    swap_config.cxl_tier = tier.get();
    swap_config.cxl_promote_threshold = promote_threshold;
    manager = std::make_unique<swap::SwapManager>(
        *client, swap_config, [](std::uint64_t page, std::span<std::byte> out) {
          workloads::fill_page(out, page, 0.3, 11);
        });
  }

  std::uint64_t checksum_of(std::uint64_t page) {
    std::vector<std::byte> bytes(swap::kPageBytes);
    workloads::fill_page(bytes, page, 0.3, 11);
    return fnv1a(bytes);
  }

  swap::SystemSetup setup;
  std::unique_ptr<core::DmSystem> system;
  core::Ldmc* client = nullptr;
  std::unique_ptr<CxlPageTier> tier;
  std::unique_ptr<swap::SwapManager> manager;
};

TEST(CxlTierModelTest, InvariantsHoldOverSeededTrace) {
  constexpr std::uint64_t kPages = 40;
  constexpr std::size_t kPool = 8;
  CxlModelRig rig(/*resident=*/8, kPool, /*threshold=*/3);
  Rng rng(517);

  auto check_invariants = [&]() {
    std::size_t pooled = 0;
    for (std::uint64_t p = 0; p < kPages; ++p) {
      if (!rig.manager->in_cxl(p)) continue;
      ++pooled;
      // T1: the pool copy is the only copy.
      EXPECT_FALSE(rig.manager->is_resident(p)) << "page " << p;
      EXPECT_FALSE(rig.manager->is_backed(p)) << "page " << p;
    }
    EXPECT_EQ(pooled, rig.manager->cxl_pooled());
    EXPECT_LE(pooled, kPool);  // T4
  };

  for (int step = 0; step < 400; ++step) {
    const std::uint64_t page = rng.next_below(kPages);
    const bool write = rng.next_below(4) == 0;
    ASSERT_TRUE(rig.manager->touch(page, write).ok());
    if (rng.next_below(50) == 0 && rig.manager->cxl_pooled() > 0) {
      ASSERT_TRUE(rig.manager->shed_cxl(1).ok());
    }
    check_invariants();
    // T2 (sampled): the page just touched, wherever it landed, is intact.
    if (rig.manager->is_resident(page)) {
      auto bytes = rig.manager->resident_bytes(page);
      ASSERT_TRUE(bytes.ok());
      EXPECT_EQ(fnv1a(*bytes), rig.checksum_of(page)) << "page " << page;
    }
  }

  // T5: flush drains every tier above the durable one, and nothing is lost.
  ASSERT_TRUE(rig.manager->flush_all().ok());
  EXPECT_EQ(rig.manager->cxl_pooled(), 0u);
  for (std::uint64_t p = 0; p < kPages; ++p) {
    ASSERT_TRUE(rig.manager->touch(p).ok());
    auto bytes = rig.manager->resident_bytes(p);
    ASSERT_TRUE(bytes.ok()) << "page " << p;
    EXPECT_EQ(fnv1a(*bytes), rig.checksum_of(p)) << "page " << p;
  }
}

TEST(CxlTierModelTest, LineFaultsNeverTouchThePagePath) {
  CxlModelRig rig(/*resident=*/8, /*pool=*/16, /*threshold=*/100);
  for (std::uint64_t p = 0; p < 24; ++p)
    ASSERT_TRUE(rig.manager->touch(p).ok());

  std::uint64_t pooled = ~0ull;
  for (std::uint64_t p = 0; p < 24; ++p)
    if (rig.manager->in_cxl(p)) pooled = p;
  ASSERT_NE(pooled, ~0ull);

  auto& fabric_metrics = rig.system->fabric().metrics();
  const std::uint64_t swap_ins = rig.manager->swap_ins();
  const std::uint64_t swap_outs = rig.manager->swap_outs();
  const std::uint64_t cxl_reads =
      fabric_metrics.counter_value("fabric.cxl_reads");
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(rig.manager->touch(pooled, /*write=*/true).ok());
    ASSERT_TRUE(rig.manager->in_cxl(pooled));  // threshold never reached
  }
  // T3: eight sub-page faults rode the coherent line port exclusively.
  EXPECT_EQ(rig.manager->swap_ins(), swap_ins);
  EXPECT_EQ(rig.manager->swap_outs(), swap_outs);
  EXPECT_GT(fabric_metrics.counter_value("fabric.cxl_reads"), cxl_reads);
  EXPECT_GT(rig.manager->metrics().counter_value("swap.cxl.line_faults"), 0u);
}

}  // namespace
}  // namespace dm::cxl
