#!/usr/bin/env bash
# Fixture: a CI gate spec referencing a metric inside an emitted family
# ("fix.*") that no code actually emits. Line asserted by lint_test.cc.
check_slo "fix.ghost.latency <= 10ms"
