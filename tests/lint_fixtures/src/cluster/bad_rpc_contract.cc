// Fixture: an RPC method enumerator with no label_method entry, no
// handle() dispatch, and no call() site anywhere in the tree.
// Line numbers are asserted by tests/lint_test.cc.
namespace dm::cluster {

enum FixtureRpcMethod : unsigned {
  kRpcOrphanPing = 900,  // line 7: rpc-contract (all three legs missing)
};

}  // namespace dm::cluster
