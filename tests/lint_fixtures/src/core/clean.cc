// Fixture: negative control. Deterministic, layered, status-checked, and
// include-hygienic — must produce zero findings.
#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"

namespace dm::core {

Status advance(SimTime step);

Status run_epoch(Rng& rng, SimTime step) {
  if (rng.bernoulli(0.5)) return advance(step);
  Status s = advance(2 * step);
  return s;
}

}  // namespace dm::core
