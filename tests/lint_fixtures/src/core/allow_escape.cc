// Fixture: the `dm-lint: allow(...)` escape hatch. Every violation below
// carries a marker, so this file must produce zero findings.
#include <cstdlib>

namespace dm::core {

int sanctioned_entropy() {
  // dm-lint: allow(det-rand)
  return rand();  // covered by the marker on the line above
}

const char* sanctioned_env() {
  return getenv("HOME");  // dm-lint: allow(det-getenv)
}

}  // namespace dm::core
