// Fixture: a Status-returning call whose result is dropped on the floor.
// Line numbers are asserted by tests/lint_test.cc.
#include "common/status.h"

namespace dm::core {

Status flush_journal();

void shutdown_node() {
  flush_journal();  // line 10: status-discard
}

}  // namespace dm::core
