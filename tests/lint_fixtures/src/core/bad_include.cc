// Fixture: names a project vocabulary type without including its header
// directly (IWYU-lite). Line numbers are asserted by tests/lint_test.cc.
#include "common/status.h"

namespace dm::core {

Status wait_a_while(SimTime deadline);  // line 7: include-direct (SimTime)

}  // namespace dm::core
