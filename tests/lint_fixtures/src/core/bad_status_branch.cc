// Fixture: a Status result consumed on one branch only — the fall-through
// path reaches the function exit without ever looking at it, which the
// branch-sensitive upgrade of status-discard catches.
// Line numbers are asserted by tests/lint_test.cc.
#include "common/status.h"

namespace dm::core {

Status do_work();
bool verbose();

void run_once() {
  Status st = do_work();  // line 13: unchecked on the quiet path
  if (verbose()) {
    (void)st.ok();
  }
}

}  // namespace dm::core
