// Fixture: every determinism-source ban in one file. Line numbers are
// asserted by tests/lint_test.cc — keep edits in sync.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

namespace dm::core {

int roll_dice() {
  return rand() % 6;  // line 11: det-rand (libc rand)
}

std::mt19937 make_engine() {        // line 14: det-rand (engine type)
  std::random_device seed_source;   // line 15: det-rand (hardware seed)
  return std::mt19937(seed_source());
}

long stamp_now() {
  auto wall = std::chrono::system_clock::now();  // line 20: det-wallclock
  (void)wall;
  return time(nullptr);  // line 22: det-wallclock (libc time)
}

const char* probe_environment() {
  return getenv("DM_FIXTURE_MODE");  // line 26: det-getenv
}

std::size_t identity_key(const void* p) {
  return std::hash<const void*>{}(p);  // line 30: det-ptr-hash
}

unsigned long long address_of(const int* p) {
  return reinterpret_cast<std::uintptr_t>(p);  // line 34: det-ptr-hash
}

}  // namespace dm::core
