// Fixture: a range lock annotated `ascending` whose index expression walks
// the range backwards — the annotation's self-edge exemption requires the
// index to be provably ascending, and this one is not.
// Line numbers are asserted by tests/lint_test.cc.
namespace dm::cxl {

struct Directory {
  template <typename Fn>
  void lock(unsigned line, Fn fn);
};

void sweep_backwards(Directory* dir, unsigned first, unsigned count) {
  for (unsigned idx = 0; idx < count; ++idx) {
    const unsigned line = first + count - idx - 1;
    // dm-lock: order(fix.line, ascending)
    dir->lock(line, [] {});  // line 16: not provably ascending
  }
}

}  // namespace dm::cxl
