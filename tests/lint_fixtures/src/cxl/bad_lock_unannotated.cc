// Fixture: callback-style lock acquisition (held region = the callback
// body) with no `// dm-lock: order(...)` annotation naming its level.
// Line numbers are asserted by tests/lint_test.cc.
namespace dm::cxl {

struct Directory {
  template <typename Fn>
  void lock(unsigned line, Fn fn);
};

void touch_line(Directory& dir) {
  dir.lock(7, [] {});  // line 12: lock-order (unannotated callback)
}

}  // namespace dm::cxl
