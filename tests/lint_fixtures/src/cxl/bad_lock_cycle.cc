// Fixture: two functions acquire the same pair of annotated locks in
// opposite orders, closing a cycle in the global lock-order graph.
// Line numbers are asserted by tests/lint_test.cc.
#include <mutex>

namespace dm::cxl {

std::mutex mu_a;
std::mutex mu_b;

void forward_order() {
  // dm-lock: order(fix.a)
  std::lock_guard<std::mutex> ga(mu_a);
  // dm-lock: order(fix.b)
  std::lock_guard<std::mutex> gb(mu_b);  // line 15: edge fix.a -> fix.b
}

void backward_order() {
  // dm-lock: order(fix.b)
  std::lock_guard<std::mutex> gb(mu_b);
  // dm-lock: order(fix.a)
  std::lock_guard<std::mutex> ga(mu_a);  // line 22: edge fix.b -> fix.a
}

}  // namespace dm::cxl
