// Fixture: a layering back-edge — common is the root of the DAG and may
// depend on nothing, so including a core header is rejected.
#pragma once

#include "core/ldmc.h"  // line 5: layer-dep (common -> core back-edge)
