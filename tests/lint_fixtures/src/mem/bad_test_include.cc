// Fixture: src/ reaching into the test tree. Production code must never
// include test helpers.
#include "tests/lint_helpers.h"  // line 3: layer-test-include

namespace dm::mem {}
