// Fixture: a span leaked on the early-return path — end_span exists, but a
// branch exits the function before reaching it, which the CFG-based upgrade
// of span-unclosed catches.
// Line numbers are asserted by tests/lint_test.cc.
namespace dm::obs {

struct FixtureTracer {
  int begin_span(const char* subsystem, const char* name);
  void end_span(int id);
};

bool hot_path();

void probe(FixtureTracer& t) {
  const int id = t.begin_span("fix", "probe");  // line 15: leaks on return
  if (hot_path()) {
    return;
  }
  t.end_span(id);
}

}  // namespace dm::obs
