// Fixture: metric-contract violations — one name emitted as both counter
// and histogram, one name breaking the lowercase-dotted convention, and a
// read of a metric no code emits.
// Line numbers are asserted by tests/lint_test.cc.
#include <cstdint>

namespace dm::obs {

struct FixtureMetrics {
  std::uint64_t& counter(const char* name);
  void histogram(const char* name, double v);
  std::uint64_t counter_value(const char* name) const;
};

void emit_some(FixtureMetrics& m) {
  ++m.counter("fix.requests");
  m.histogram("fix.requests", 1.0);      // line 17: collides with counter
  ++m.counter("fix.BadName");            // line 18: naming convention
  (void)m.counter_value("fix.missing");  // line 19: orphaned read
}

}  // namespace dm::obs
