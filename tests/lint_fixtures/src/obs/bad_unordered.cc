// Fixture: iterating an unordered container in an exporting file (src/obs/
// is exporting by path). Line numbers are asserted by tests/lint_test.cc.
#include <string>
#include <unordered_map>

namespace dm::obs {

std::unordered_map<std::string, int> counters_;

std::string export_counters() {
  std::string out;
  for (const auto& [name, value] : counters_) {  // line 12: det-unordered-iter
    out += name;
  }
  return out;
}

}  // namespace dm::obs
