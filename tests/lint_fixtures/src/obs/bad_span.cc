// Fixture: raw begin_span member call with no end_span reachable in the
// enclosing block. Line numbers are asserted by tests/lint_test.cc.
#include <cstdint>

#include "sim/span_sink.h"

namespace dm::obs {

std::uint64_t leak_a_span(sim::SpanSink* sink) {
  std::uint64_t span = 0;
  if (sink != nullptr) {
    span = sink->begin_span(7, 0, "swap", "fixture");  // line 12: span-unclosed
  }
  return span;
}

}  // namespace dm::obs
