// Targeted tests for failure paths and maintenance machinery not covered
// by the module suites: drain stalls, connection teardown, the §IV.F
// policy-1 watermark drain end-to-end, and membership lifecycle.
#include <gtest/gtest.h>

#include "common/checksum.h"
#include "common/status.h"
#include "core/dm_system.h"
#include "core/node_service.h"
#include "net/connection_manager.h"
#include "net/fabric.h"
#include "net/rpc.h"
#include "sim/simulator.h"
#include "workloads/page_content.h"

namespace dm::core {
namespace {

std::vector<std::byte> page_data(std::uint64_t id) {
  std::vector<std::byte> bytes(4096);
  workloads::fill_page(bytes, id, 0.5, 7);
  return bytes;
}

core::DmSystem::Config cluster(std::size_t nodes = 4) {
  core::DmSystem::Config config;
  config.node_count = nodes;
  config.node.shm.arena_bytes = 4 * MiB;
  config.node.recv.arena_bytes = 8 * MiB;
  config.node.disk.capacity_bytes = 64 * MiB;
  config.service.rdmc.replication = 1;
  return config;
}

TEST(CoverageTest, DrainFailsCleanlyWhenOwnerUnreachable) {
  DmSystem system(cluster());
  system.start();
  LdmcOptions remote_only;
  remote_only.shm_fraction = 0.0;
  auto& client = system.create_server(0, 64 * MiB, remote_only);
  for (mem::EntryId id = 0; id < 8; ++id)
    ASSERT_TRUE(client.put_sync(id, page_data(id)).ok());

  // Find a hosting node, then kill the *owner* (node 0) so the eviction
  // notice cannot be delivered: the drain must settle with an error, not
  // hang.
  for (std::size_t i = 1; i < system.node_count(); ++i) {
    auto& service = system.service(i);
    if (service.rdms().hosted_blocks() == 0) continue;
    auto slab = system.node(i).recv_pool().least_loaded_slab();
    ASSERT_TRUE(slab.has_value());
    system.fabric().set_node_up(0, false);
    bool settled = false;
    Status result;
    service.rdms().drain_slab(*slab, [&](const Status& s) {
      result = s;
      settled = true;
    });
    ASSERT_TRUE(system.simulator().run_until_flag(
        settled, system.simulator().now() + 10 * kSecond));
    EXPECT_FALSE(result.ok());
    EXPECT_EQ(service.rdms().active_drains(), 0u);  // retryable
    break;
  }
}

TEST(CoverageTest, DoubleDrainRejected) {
  DmSystem system(cluster());
  system.start();
  LdmcOptions remote_only;
  remote_only.shm_fraction = 0.0;
  auto& client = system.create_server(0, 64 * MiB, remote_only);
  for (mem::EntryId id = 0; id < 8; ++id)
    ASSERT_TRUE(client.put_sync(id, page_data(id)).ok());
  for (std::size_t i = 1; i < system.node_count(); ++i) {
    auto& service = system.service(i);
    if (service.rdms().hosted_blocks() == 0) continue;
    auto slab = system.node(i).recv_pool().least_loaded_slab();
    bool first_done = false;
    service.rdms().drain_slab(*slab, [&](const Status&) { first_done = true; });
    bool second_done = false;
    Status second;
    service.rdms().drain_slab(*slab, [&](const Status& s) {
      second = s;
      second_done = true;
    });
    EXPECT_TRUE(second_done);  // rejected synchronously
    EXPECT_EQ(second.code(), StatusCode::kFailedPrecondition);
    ASSERT_TRUE(system.simulator().run_until_flag(
        first_done, system.simulator().now() + 30 * kSecond));
    break;
  }
}

// §IV.F policy 1 end-to-end: a node donating memory while its own servers
// overflow to remote starts draining receive-pool slabs.
TEST(CoverageTest, EvictionPolicyOneDrainsUnderPressure) {
  auto config = cluster(3);
  config.node.recv.arena_bytes = 512 * KiB;  // small donated pool
  config.service.eviction.enabled = true;
  config.service.eviction.period = 200 * kMilli;
  config.service.eviction.low_free_watermark = 0.9;  // drain aggressively
  config.service.eviction.remote_rate_threshold = 4;
  DmSystem system(config);
  system.start();

  // Node 1 hosts remote data from node 0...
  LdmcOptions remote_only;
  remote_only.shm_fraction = 0.0;
  auto& client0 = system.create_server(0, 64 * MiB, remote_only);
  for (mem::EntryId id = 0; id < 48; ++id)
    ASSERT_TRUE(client0.put_sync(id, page_data(id)).ok());

  // ...while node 1's own tenant also overflows to remote memory: policy 1
  // says node 1 should reclaim donated slabs.
  auto& client1 = system.create_server(1, 64 * MiB, remote_only);
  for (mem::EntryId id = 100; id < 148; ++id)
    ASSERT_TRUE(client1.put_sync(id, page_data(id)).ok());
  system.run_for(2 * kSecond);  // several monitor periods

  EXPECT_GT(system.total_counter("eviction.slab_drains"), 0u);
  // Migrated entries stay intact.
  std::vector<std::byte> out(4096);
  for (mem::EntryId id = 0; id < 48; ++id) {
    ASSERT_TRUE(client0.get_sync(id, out).ok()) << id;
    ASSERT_EQ(fnv1a(out), fnv1a(page_data(id))) << id;
  }
}

TEST(CoverageTest, ConnectionManagerDropNodeTearsDownChannels) {
  sim::Simulator sim;
  net::Fabric fabric(sim);
  fabric.add_node(0);
  fabric.add_node(1);
  fabric.add_node(2);
  net::ConnectionManager cm(fabric);
  net::RpcEndpoint ep0(sim, 0), ep1(sim, 1), ep2(sim, 2);
  cm.register_endpoint(&ep0);
  cm.register_endpoint(&ep1);
  cm.register_endpoint(&ep2);
  ASSERT_TRUE(cm.ensure_data_channel(0, 1).ok());
  ASSERT_TRUE(cm.ensure_data_channel(0, 2).ok());
  ASSERT_TRUE(cm.ensure_data_channel(1, 2).ok());
  EXPECT_EQ(cm.established_pairs(), 3u);

  cm.drop_node(2);
  EXPECT_EQ(cm.established_pairs(), 1u);
  EXPECT_FALSE(ep0.has_channel(2));
  EXPECT_FALSE(ep2.has_channel(0));
  EXPECT_TRUE(ep0.has_channel(1));
}

TEST(CoverageTest, MembershipStopHaltsHeartbeats) {
  DmSystem system(cluster(2));
  system.start();
  auto& membership = system.node(0).membership();
  membership.stop();
  const auto before =
      system.fabric().metrics().counter_value("fabric.sends");
  // Only node 1's heartbeats (to node 0) remain.
  system.run_for(1 * kSecond);
  const auto after = system.fabric().metrics().counter_value("fabric.sends");
  // Node 0 stopped pinging: traffic roughly halves (1 pinger + replies).
  EXPECT_LT(after - before, 40u);
  membership.start();
  system.run_for(1 * kSecond);
  EXPECT_GT(system.fabric().metrics().counter_value("fabric.sends"), after);
}

TEST(CoverageTest, SpillOrphanEntriesAreDroppedDefensively) {
  DmSystem system(cluster());
  system.start();
  auto& client = system.create_server(0, 64 * MiB);
  ASSERT_TRUE(client.put_sync(1, page_data(1)).ok());
  // Corrupt the invariant deliberately: pool entry without a map entry.
  ASSERT_TRUE(client.map().remove(1).ok());
  // Force pool pressure so the orphan becomes the spill victim.
  auto& shm = system.node(0).shm();
  ASSERT_TRUE(shm.contains(client.server(), 1));
  bool done = false;
  bool progressed = false;
  // Private path exercised indirectly: fill the pool via more puts until
  // spills happen; the orphan must be discarded without crashing.
  for (mem::EntryId id = 2; id < 2000 && shm.contains(client.server(), 1);
       ++id)
    ASSERT_TRUE(client.put_sync(id, page_data(id)).ok());
  (void)done;
  (void)progressed;
  EXPECT_FALSE(shm.contains(client.server(), 1));
  EXPECT_GT(system.service(0).metrics().counter_value("ldms.spill_orphan"),
            0u);
}

}  // namespace
}  // namespace dm::core
