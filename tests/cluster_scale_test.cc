// Cluster-scale soak (§I, §IV.E–F): 128 nodes, zipfian multi-tenant churn
// driven by the seeded ScenarioEngine, with the full adaptive stack on —
// load-aware placement, the harvester's live migration + slab reclaim, and
// §IV.C dynamic regrouping.
//
// Three properties are pinned:
//   * zero data loss — every KV get returns the exact bytes of the last
//     set (shadow-map verified), every retiring tenant reads its state
//     back intact, and no node service ever records a data-loss event;
//   * seed determinism — two runs of the identical scenario produce
//     byte-identical MetricsHub snapshots (the property ci.sh --scale-only
//     re-checks across processes via DM_SCALE_SNAPSHOT dumps);
//   * observability across migration — a traced get over a region that
//     live-migrated yields a span chain crossing at least two distinct
//     nodes, none of them the vacated one.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/units.h"
#include "cluster/placement.h"
#include "core/dm_system.h"
#include "core/ldmc.h"
#include "mem/memory_map.h"
#include "core/node_service.h"
#include "kvstore/kv_store.h"
#include "obs/span.h"
#include "sim/scenario.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"
#include "workloads/driver.h"

namespace dm::core {
namespace {

// The bench_cluster_scale "adaptive" configuration, scaled down in duration:
// every lever that moves data around at runtime is on, so the soak covers
// placement, harvesting, migration, reclaim, eviction and regrouping at once.
DmSystem::Config adaptive_config(std::size_t nodes,
                                 const swap::SystemSetup& setup) {
  DmSystem::Config config;
  config.node_count = nodes;
  config.group_size = 16;
  config.node.shm.arena_bytes = 256 * KiB;
  config.node.recv.arena_bytes = 1 * MiB;
  config.node.disk.capacity_bytes = 24 * MiB;
  config.service = setup.service;
  config.seed = 42;
  config.harvest_enabled = true;
  config.harvest_period = 500 * kMilli;
  config.harvest.hot_ratio = 3.0;
  config.harvest.min_pressure = 64;
  config.harvest.migrate_entries_per_action = 8;
  config.harvest.max_actions_per_tick = 2;
  config.harvest.reclaim_free_watermark = 0.45;
  config.regroup_low_watermark = 0.5;
  config.regroup_check_period = 500 * kMilli;
  return config;
}

swap::SystemSetup adaptive_setup() {
  auto setup = swap::make_system(swap::SystemKind::kFastSwap, 48);
  setup.service.rdmc.placement = cluster::PlacementPolicyKind::kLoadAware;
  setup.swap.compression = swap::CompressionMode::kOff;
  setup.service.eviction.enabled = true;
  return setup;
}

// Deterministic KV value: a pure function of (tenant, index, version), so
// the shadow map only has to remember the version to know the exact bytes.
std::vector<std::byte> value_for(std::uint32_t tenant, std::uint32_t index,
                                 std::uint32_t version) {
  std::vector<std::byte> bytes(1024);
  for (std::size_t i = 0; i < bytes.size(); ++i)
    bytes[i] = static_cast<std::byte>(
        (tenant * 31u + index * 7u + version * 131u + i) & 0xffu);
  return bytes;
}

std::string key_of(std::uint32_t tenant, std::uint32_t index) {
  return "t" + std::to_string(tenant) + "-k" + std::to_string(index);
}

struct SoakOutcome {
  std::string snapshot;        // hub().snapshot_json() at end of soak
  std::uint64_t tenants = 0;   // spawned over the scenario
  std::uint64_t kv_gets = 0;   // verified byte-for-byte
  std::uint64_t kv_mismatches = 0;
  std::uint64_t op_failures = 0;  // any set/get/touch/erase that errored
  std::uint64_t faults = 0;
  std::uint64_t data_loss = 0;
  std::uint64_t rebalance_moves = 0;
  std::uint64_t migrated = 0;
  std::uint64_t offload_requests = 0;
};

SoakOutcome run_soak() {
  constexpr std::size_t kNodes = 128;
  auto setup = adaptive_setup();
  DmSystem system(adaptive_config(kNodes, setup));
  system.start();
  // Idle donors: every node contributes donated capacity, so imbalance is
  // purely the scenario's zipfian home skew.
  for (std::size_t n = 0; n < system.node_count(); ++n)
    (void)system.create_server(n, 8 * MiB);

  sim::ScenarioEngine::Config scenario;
  scenario.seed = 7;
  scenario.node_count = kNodes;
  scenario.initial_tenants = 16;
  scenario.max_tenants = 32;
  scenario.mean_arrival_gap = 250 * kMilli;
  scenario.mean_lifetime = 4 * kSecond;
  scenario.min_working_set = 96;
  scenario.max_working_set = 384;
  scenario.node_skew = 0.8;
  scenario.mean_op_gap = 2 * kMilli;
  scenario.duration = 5 * kSecond;
  sim::ScenarioEngine engine(scenario);

  auto& sim = system.simulator();
  engine.start(sim.now());

  // Mixed tenant population: even tenants are KV caches (shadow-map
  // verified on every read), odd tenants run the swap path.
  struct Tenant {
    Ldmc* client = nullptr;
    std::unique_ptr<kv::KvStore> kv;
    std::map<std::uint32_t, std::uint32_t> shadow;  // index -> version
    std::unique_ptr<swap::SwapManager> swap;
  };
  std::map<sim::ScenarioEngine::TenantId, Tenant> tenants;
  workloads::AppSpec app = *workloads::find_app("LogisticRegression");
  SoakOutcome out;

  auto verify_kv = [&](std::uint32_t id, Tenant& tenant, std::uint32_t index) {
    auto got = tenant.kv->get(key_of(id, index));
    ++out.kv_gets;
    if (!got.ok()) {
      ++out.op_failures;
      if (out.op_failures <= 5)
        ADD_FAILURE() << "kv get " << key_of(id, index) << ": "
                      << got.status().message();
      return;
    }
    if (*got != value_for(id, index, tenant.shadow.at(index)))
      ++out.kv_mismatches;
  };

  for (;;) {
    const auto op = engine.next();
    if (op.kind == sim::ScenarioEngine::Op::Kind::kDone) break;
    if (op.at > sim.now()) sim.run_until(op.at);
    switch (op.kind) {
      case sim::ScenarioEngine::Op::Kind::kSpawn: {
        auto& tenant = tenants[op.tenant];
        tenant.client = &system.create_server(
            op.home % system.node_count(), 4 * MiB, setup.ldmc);
        if (op.tenant % 2 == 0) {
          kv::KvStore::Config kv_config;
          kv_config.hot_bytes = 16 * KiB;  // force overflow into DM
          tenant.kv =
              std::make_unique<kv::KvStore>(*tenant.client, kv_config);
        } else {
          tenant.swap = std::make_unique<swap::SwapManager>(
              *tenant.client, setup.swap,
              workloads::content_for(app, 1000 + op.tenant));
        }
        break;
      }
      case sim::ScenarioEngine::Op::Kind::kAccess: {
        auto it = tenants.find(op.tenant);
        if (it == tenants.end()) break;
        auto& tenant = it->second;
        if (tenant.kv != nullptr) {
          auto shadow = tenant.shadow.find(op.index);
          if (op.write || shadow == tenant.shadow.end()) {
            const std::uint32_t version =
                shadow == tenant.shadow.end() ? 1 : shadow->second + 1;
            const Status stored =
                tenant.kv->set(key_of(op.tenant, op.index),
                               value_for(op.tenant, op.index, version));
            if (stored.ok()) {
              tenant.shadow[op.index] = version;
            } else {
              ++out.op_failures;
              if (out.op_failures <= 5)
                ADD_FAILURE() << "kv set " << key_of(op.tenant, op.index)
                              << ": " << stored.message();
            }
          } else {
            verify_kv(op.tenant, tenant, op.index);
          }
        } else if (tenant.swap != nullptr) {
          if (!tenant.swap->touch(op.index, op.write).ok())
            ++out.op_failures;
        }
        break;
      }
      case sim::ScenarioEngine::Op::Kind::kRetire: {
        auto it = tenants.find(op.tenant);
        if (it == tenants.end()) break;
        auto& tenant = it->second;
        if (tenant.kv != nullptr) {
          // Exit audit: every key the shadow map remembers must read back
          // its exact last-written bytes, then erase cleanly.
          for (const auto& [index, version] : tenant.shadow) {
            verify_kv(op.tenant, tenant, index);
            if (!tenant.kv->erase(key_of(op.tenant, index)).ok())
              ++out.op_failures;
          }
        }
        if (tenant.swap != nullptr) out.faults += tenant.swap->faults();
        // Free remaining backing entries in deterministic order.
        std::vector<mem::EntryId> entries;
        tenant.client->map().for_each(
            [&entries](mem::EntryId id, const mem::EntryLocation&) {
              entries.push_back(id);
            });
        std::sort(entries.begin(), entries.end());
        for (mem::EntryId id : entries)
          (void)tenant.client->remove_sync(id);
        tenants.erase(it);
        break;
      }
      case sim::ScenarioEngine::Op::Kind::kDone:
        break;
    }
  }
  // Settle in-flight migrations/drains, then audit the survivors too.
  system.run_for(1 * kSecond);
  for (auto& [id, tenant] : tenants) {
    if (tenant.swap != nullptr) out.faults += tenant.swap->faults();
    if (tenant.kv == nullptr) continue;
    for (const auto& [index, version] : tenant.shadow)
      verify_kv(id, tenant, index);
  }

  out.snapshot = system.hub().snapshot_json();
  out.tenants = engine.tenants_spawned();
  for (std::size_t i = 0; i < system.node_count(); ++i)
    out.data_loss += system.service(i).data_loss_entries();
  out.rebalance_moves = system.total_counter("placement.rebalance_moves");
  out.migrated = system.total_counter("ldms.migrated_entries");
  out.offload_requests = system.total_counter("harvest.offload_requests");
  return out;
}

TEST(ClusterScaleSoakTest, ZipfianChurnAt128NodesIsLossFreeAndDeterministic) {
  const SoakOutcome first = run_soak();

  // The scenario actually exercised the machinery end to end.
  EXPECT_GE(first.tenants, 20u);
  EXPECT_GT(first.kv_gets, 0u);
  EXPECT_GT(first.faults, 0u);
  EXPECT_GT(first.offload_requests, 0u);  // harvester fired
  EXPECT_GT(first.rebalance_moves, 0u);   // and scheduled live migrations

  // Zero data loss: no mismatched KV read, no failed operation, no
  // data-loss event on any node service.
  EXPECT_EQ(first.kv_mismatches, 0u);
  EXPECT_EQ(first.op_failures, 0u);
  EXPECT_EQ(first.data_loss, 0u);

  // Seed determinism: the identical scenario replayed against a fresh
  // cluster produces a byte-identical metrics snapshot.
  const SoakOutcome second = run_soak();
  EXPECT_EQ(first.tenants, second.tenants);
  EXPECT_EQ(first.kv_gets, second.kv_gets);
  EXPECT_EQ(first.faults, second.faults);
  EXPECT_EQ(first.rebalance_moves, second.rebalance_moves);
  EXPECT_EQ(first.snapshot, second.snapshot);

  // CI hook (ci.sh --scale-only): dump the snapshot for the cross-process
  // same-seed diff.
  // dm-lint: allow(det-getenv) — CI artifact path only, never sim state.
  if (const char* path = std::getenv("DM_SCALE_SNAPSHOT")) {
    std::ofstream dump(path, std::ios::trunc);
    ASSERT_TRUE(dump.is_open()) << path;
    dump << first.snapshot;
  }
}

// Observability across migration: each copy-then-redirect runs under its
// own trace, and that span chain must cross nodes — the owner's read of the
// source copy plus the alloc dispatch on the new host. A traced get issued
// after the cutover must still produce a span chain, and none of its spans
// may touch the vacated node.
TEST(ClusterScaleSoakTest, TracedGetCrossesMigratedRegion) {
  DmSystem::Config config;
  config.node_count = 4;
  config.node.shm.arena_bytes = 4 * MiB;
  config.node.recv.arena_bytes = 8 * MiB;
  config.node.disk.capacity_bytes = 64 * MiB;
  config.service.rdmc.replication = 1;
  DmSystem system(config);
  obs::SpanTracer tracer(system.simulator());
  system.set_span_sink(&tracer);
  system.start();
  LdmcOptions options;
  options.shm_fraction = 0.0;
  options.allow_disk = false;
  auto& client = system.create_server(0, 64 * MiB, options);
  constexpr std::uint64_t kEntries = 8;
  std::vector<std::byte> page(4096);
  for (std::uint64_t id = 0; id < kEntries; ++id) {
    for (std::size_t i = 0; i < page.size(); ++i)
      page[i] = static_cast<std::byte>((id * 17 + i) & 0xff);
    ASSERT_TRUE(client.put_sync(id, page).ok());
  }

  // Vacate the busiest replica host.
  const net::NodeId self = system.node(0).id();
  std::map<net::NodeId, int> hosted;
  client.map().for_each([&](mem::EntryId, const mem::EntryLocation& loc) {
    for (const auto& replica : loc.replicas)
      if (replica.node != self) ++hosted[replica.node];
  });
  ASSERT_FALSE(hosted.empty());
  const net::NodeId hot =
      std::max_element(hosted.begin(), hosted.end(),
                       [](const auto& a, const auto& b) {
                         return a.second < b.second;
                       })
          ->first;
  std::size_t hot_index = 0;
  for (std::size_t i = 0; i < system.node_count(); ++i)
    if (system.node(i).id() == hot) hot_index = i;
  const auto moved = client.map().entries_with_replica_on(hot);
  ASSERT_FALSE(moved.empty());
  bool offload_done = false;
  system.service(hot_index).offload_hot_node(
      kEntries, [&](std::size_t) { offload_done = true; });
  ASSERT_TRUE(system.simulator().run_until_flag(offload_done));
  system.run_for(1 * kSecond);
  ASSERT_TRUE(client.map().entries_with_replica_on(hot).empty());

  // The setup puts ran untraced, so every retained trace belongs to a
  // migration. At least one chain must cross from the owner (which reads
  // the source copy) to a node that is neither the owner nor the vacated
  // source — the new host's alloc dispatch.
  const auto owner_node = static_cast<std::uint32_t>(self);
  bool cross_node_migration = false;
  for (std::uint64_t trace_id : tracer.completed_traces()) {
    const auto* spans = tracer.spans(trace_id);
    if (spans == nullptr) continue;
    bool has_owner = false;
    bool has_new_host = false;
    for (const auto& span : *spans) {
      if (span.node == owner_node) has_owner = true;
      if (span.node != owner_node &&
          span.node != static_cast<std::uint32_t>(hot))
        has_new_host = true;
    }
    if (has_owner && has_new_host) cross_node_migration = true;
  }
  EXPECT_TRUE(cross_node_migration)
      << "no migration span chain crossed from the owner to a new host";

  // Traced get over a migrated entry: the chain exists, carries the
  // correct bytes, and never touches the vacated node.
  const mem::EntryId target = moved.front();
  const net::TraceId trace = system.node(0).next_trace_id();
  std::vector<std::byte> got(4096);
  ASSERT_TRUE(client.get_sync(target, got, trace).ok());
  for (std::size_t i = 0; i < got.size(); ++i)
    ASSERT_EQ(got[i], static_cast<std::byte>((target * 17 + i) & 0xff));
  const auto* get_spans = tracer.spans(static_cast<std::uint64_t>(trace));
  ASSERT_NE(get_spans, nullptr);
  ASSERT_FALSE(get_spans->empty());
  for (const auto& span : *get_spans)
    EXPECT_NE(span.node, static_cast<std::uint32_t>(hot));
}

}  // namespace
}  // namespace dm::core
