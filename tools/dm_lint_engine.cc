#include "dm_lint_engine.h"

#include <algorithm>
#include <utility>

namespace dm::lint {
namespace {

// Preprocessor logical lines (directive plus '\'-continuations) are
// invisible to the statement grouper: a macro body's braces must not
// desynchronize the tree.
std::vector<char> preprocessor_mask(const SourceFile& file) {
  std::vector<char> mask(file.code.size(), 0);
  bool continuation = false;
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& raw = file.lines[li];
    bool directive = continuation;
    if (!directive) {
      const auto first = file.code[li].find_first_not_of(" \t");
      directive = first != std::string::npos && file.code[li][first] == '#';
    }
    mask[li] = directive ? 1 : 0;
    continuation = directive && !raw.empty() && raw.back() == '\\';
  }
  return mask;
}

struct Parser {
  const SourceFile& file;
  std::vector<char> mask;
  std::size_t li = 0;
  std::size_t ci = 0;

  bool done() const { return li >= file.code.size(); }
};

// Parses statements until a closing '}' (consumed) or end of file.
// Returns the line of the closing brace (or the last line seen).
int parse_children(Parser& p, std::vector<StmtNode>* out) {
  std::string text;
  int start_line = 0;
  int last_line = static_cast<int>(p.li) + 1;
  int paren = 0;
  bool pending_space = false;
  std::vector<StmtNode> pending_args;

  auto append_char = [&](char c, int line) {
    if (text.empty()) {
      start_line = line;
    } else if (pending_space) {
      text += ' ';
    }
    pending_space = false;
    text += c;
    last_line = line;
  };
  auto flush_stmt = [&] {
    if (!text.empty()) {
      StmtNode s;
      s.text = std::move(text);
      s.line = start_line;
      s.end_line = last_line;
      for (const StmtNode& a : pending_args) {
        s.end_line = std::max(s.end_line, a.end_line);
      }
      s.children = std::move(pending_args);
      out->push_back(std::move(s));
    }
    text.clear();
    pending_args.clear();
    paren = 0;
    pending_space = false;
  };

  while (!p.done()) {
    if (p.ci == 0 && p.mask[p.li]) {
      ++p.li;
      continue;
    }
    const std::string& line = p.file.code[p.li];
    if (p.ci >= line.size()) {
      p.ci = 0;
      ++p.li;
      pending_space = true;
      continue;
    }
    const char c = line[p.ci];
    const int ln = static_cast<int>(p.li) + 1;
    ++p.ci;
    if (c == ' ' || c == '\t') {
      pending_space = true;
      continue;
    }
    if (c == '(' || c == '[') {
      ++paren;
      append_char(c, ln);
      continue;
    }
    if (c == ')' || c == ']') {
      if (paren > 0) --paren;
      append_char(c, ln);
      continue;
    }
    if (c == ';' && paren == 0) {
      last_line = ln;
      flush_stmt();
      continue;
    }
    if (c == '{') {
      if (paren > 0 || (!text.empty() && text.back() == '=')) {
        // Argument/braced-init block: belongs to the carrying statement.
        StmtNode blk;
        blk.is_block = true;
        blk.arg_block = true;
        blk.line = ln;
        blk.end_line = parse_children(p, &blk.children);
        pending_args.push_back(std::move(blk));
        pending_space = true;
        continue;
      }
      StmtNode blk;
      blk.is_block = true;
      blk.line = text.empty() ? ln : start_line;
      blk.text = std::move(text);
      // Rare: argument blocks inside a block *header* (a lambda in an if
      // condition). Fold their text so tokens stay visible.
      for (const StmtNode& a : pending_args) {
        blk.text += " { " + flat_text(a) + " }";
      }
      text.clear();
      pending_args.clear();
      paren = 0;
      pending_space = false;
      blk.end_line = parse_children(p, &blk.children);
      last_line = blk.end_line;
      out->push_back(std::move(blk));
      continue;
    }
    if (c == '}') {
      flush_stmt();
      return ln;
    }
    append_char(c, ln);
  }
  flush_stmt();
  return last_line;
}

std::string first_token_after_template(const std::string& text) {
  std::size_t start = 0;
  std::size_t end = 0;
  for (std::size_t i = 0;;) {
    while (i < text.size() && text[i] == ' ') ++i;
    start = i;
    while (i < text.size() && is_ident_char(text[i])) ++i;
    end = i;
    if (text.compare(start, end - start, "template") == 0 &&
        end - start == 8) {
      while (i < text.size() && text[i] == ' ') ++i;
      if (i < text.size() && text[i] == '<') {
        const auto past = skip_angles(text, i);
        if (past == std::string::npos) break;
        i = past;
        continue;
      }
    }
    break;
  }
  return text.substr(start, end - start);
}

}  // namespace

std::vector<StmtNode> build_statement_tree(const SourceFile& file) {
  Parser p{file, preprocessor_mask(file)};
  std::vector<StmtNode> tree;
  while (!p.done()) parse_children(p, &tree);
  return tree;
}

BlockKind classify_block(const StmtNode& node) {
  const std::string& text = node.text;
  if (node.arg_block) return BlockKind::kScope;
  const std::string first = first_token_after_template(text);
  if (first == "if") return BlockKind::kIf;
  if (first == "else") {
    // "else if (...)" parses as one header.
    std::size_t i = text.find("else") + 4;
    while (i < text.size() && text[i] == ' ') ++i;
    if (text.compare(i, 2, "if") == 0 &&
        (i + 2 >= text.size() || !is_ident_char(text[i + 2]))) {
      return BlockKind::kElseIf;
    }
    return BlockKind::kElse;
  }
  if (first == "for") return BlockKind::kFor;
  if (first == "while") return BlockKind::kWhile;
  if (first == "do") return BlockKind::kDo;
  if (first == "switch") return BlockKind::kSwitch;
  if (first == "try") return BlockKind::kTry;
  if (first == "catch") return BlockKind::kCatch;
  if (first == "return" || first == "co_return" || first == "throw") {
    return BlockKind::kReturn;
  }
  if (first == "case" || first == "default" || first.empty()) {
    return BlockKind::kScope;
  }
  if (first == "namespace" || first == "class" || first == "struct" ||
      first == "enum" || first == "union" || first == "extern") {
    return BlockKind::kAggregate;
  }
  if (contains_token(text, "operator")) return BlockKind::kFunction;
  // A top-level '=' before the first '(' marks a bound lambda (deferred
  // body); otherwise any parenthesized header is a function-like
  // definition (function, method, constructor with init list).
  int depth = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[') {
      if (c == '(' && depth == 0) return BlockKind::kFunction;
      ++depth;
    } else if (c == ')' || c == ']') {
      --depth;
    } else if (c == '=' && depth == 0) {
      return BlockKind::kLambdaVar;
    }
  }
  return BlockKind::kScope;
}

std::string flat_text(const StmtNode& node) {
  std::string out = node.text;
  for (const StmtNode& child : node.children) {
    if (!out.empty()) out += ' ';
    out += flat_text(child);
  }
  return out;
}

bool contains_token(std::string_view text, std::string_view token) {
  for (std::size_t pos = 0;;) {
    const auto at = text.find(token, pos);
    if (at == std::string_view::npos) return false;
    pos = at + 1;
    const bool left_ok = at == 0 || !is_ident_char(text[at - 1]);
    const auto end = at + token.size();
    const bool right_ok = end >= text.size() || !is_ident_char(text[end]);
    if (left_ok && right_ok) return true;
  }
}

namespace {

void collect_functions_walk(const std::vector<StmtNode>& nodes,
                            std::vector<FunctionUnit>* out) {
  for (const StmtNode& node : nodes) {
    if (node.is_block && !node.arg_block) {
      const BlockKind kind = classify_block(node);
      if (kind == BlockKind::kFunction || kind == BlockKind::kLambdaVar) {
        out->push_back({&node, node.text, node.line});
      }
      collect_functions_walk(node.children, out);
      continue;
    }
    if (node.is_block && node.arg_block) {
      // Bare argument block at statement position (unusual): recurse.
      collect_functions_walk(node.children, out);
      continue;
    }
    // Plain statement: its argument blocks are lambda/braced-init bodies.
    // Lambda bodies are deferred functions of their own.
    for (const StmtNode& arg : node.children) {
      if (!arg.children.empty()) {
        out->push_back({&arg, node.text, arg.line});
      }
      collect_functions_walk(arg.children, out);
    }
  }
}

// CFG builder: edges to the virtual exit use kExitSentinel and are
// remapped once the node count is final.
constexpr int kExitSentinel = -1;

struct CfgBuilder {
  Cfg cfg;
  std::vector<std::pair<int, int>> edges;

  int add_node(const StmtNode& s) {
    Cfg::Node n;
    n.stmt = &s;
    if (s.is_block && !s.arg_block) {
      // Branch headers: the node is the *condition* only — body statements
      // get their own nodes, so folding them in here would make the bypass
      // edge through the header look like it consumes body tokens.
      n.flat = s.text;
      for (const StmtNode& c : s.children) {
        if (c.arg_block) n.flat += ' ' + flat_text(c);
      }
    } else {
      n.flat = flat_text(s);
    }
    n.line = s.line;
    n.end_line = s.end_line;
    cfg.nodes.push_back(std::move(n));
    return static_cast<int>(cfg.nodes.size()) - 1;
  }
  void link(const std::vector<int>& preds, int to) {
    for (int p : preds) edges.emplace_back(p, to);
  }

  struct Ctx {
    std::vector<int>* breaks = nullptr;
    int continue_target = kExitSentinel;  // sentinel: treat as terminal
    bool continue_is_break = false;
  };

  static std::string stmt_first_token(const std::string& text) {
    std::size_t i = 0;
    while (i < text.size() && text[i] == ' ') ++i;
    std::size_t start = i;
    while (i < text.size() && is_ident_char(text[i])) ++i;
    return text.substr(start, i - start);
  }

  std::vector<int> seq(const std::vector<StmtNode>& stmts,
                       std::vector<int> preds, Ctx ctx) {
    for (std::size_t i = 0; i < stmts.size(); ++i) {
      const StmtNode& s = stmts[i];
      if (!s.is_block || s.arg_block) {
        // Plain statement (argument blocks folded into its flat text) or a
        // stray argument block at statement position.
        const int id = add_node(s);
        link(preds, id);
        const std::string first = stmt_first_token(s.text);
        if (first == "return" || first == "co_return" || first == "throw") {
          edges.emplace_back(id, kExitSentinel);
          preds.clear();
        } else if (first == "break") {
          if (ctx.breaks != nullptr) {
            ctx.breaks->push_back(id);
          } else {
            edges.emplace_back(id, kExitSentinel);
          }
          preds.clear();
        } else if (first == "continue") {
          if (ctx.continue_is_break && ctx.breaks != nullptr) {
            ctx.breaks->push_back(id);
          } else {
            edges.emplace_back(id, ctx.continue_target);
          }
          preds.clear();
        } else {
          preds = {id};
        }
        continue;
      }
      const BlockKind kind = classify_block(s);
      switch (kind) {
        case BlockKind::kIf: {
          const int cond = add_node(s);
          link(preds, cond);
          std::vector<int> outs = seq(s.children, {cond}, ctx);
          int prev_cond = cond;
          bool has_else = false;
          while (i + 1 < stmts.size() && stmts[i + 1].is_block &&
                 !stmts[i + 1].arg_block) {
            const BlockKind next = classify_block(stmts[i + 1]);
            if (next == BlockKind::kElseIf) {
              ++i;
              const int c2 = add_node(stmts[i]);
              edges.emplace_back(prev_cond, c2);
              auto branch = seq(stmts[i].children, {c2}, ctx);
              outs.insert(outs.end(), branch.begin(), branch.end());
              prev_cond = c2;
              continue;
            }
            if (next == BlockKind::kElse) {
              ++i;
              auto branch = seq(stmts[i].children, {prev_cond}, ctx);
              outs.insert(outs.end(), branch.begin(), branch.end());
              has_else = true;
            }
            break;
          }
          if (!has_else) outs.push_back(prev_cond);
          preds = std::move(outs);
          break;
        }
        case BlockKind::kFor:
        case BlockKind::kWhile: {
          const int cond = add_node(s);
          link(preds, cond);
          std::vector<int> breaks;
          Ctx inner;
          inner.breaks = &breaks;
          inner.continue_target = cond;
          auto body_out = seq(s.children, {cond}, inner);
          link(body_out, cond);  // back edge
          preds = {cond};
          preds.insert(preds.end(), breaks.begin(), breaks.end());
          break;
        }
        case BlockKind::kDo: {
          // Body runs at least once; continue approximated as break (it
          // reaches the trailing while, which may exit).
          std::vector<int> breaks;
          Ctx inner;
          inner.breaks = &breaks;
          inner.continue_is_break = true;
          preds = seq(s.children, std::move(preds), inner);
          preds.insert(preds.end(), breaks.begin(), breaks.end());
          break;
        }
        case BlockKind::kSwitch: {
          const int cond = add_node(s);
          link(preds, cond);
          std::vector<int> breaks;
          Ctx inner = ctx;
          inner.breaks = &breaks;
          auto body_out = seq(s.children, {cond}, inner);
          // No-case-matched bypass plus fallthrough and break exits.
          preds = {cond};
          preds.insert(preds.end(), body_out.begin(), body_out.end());
          preds.insert(preds.end(), breaks.begin(), breaks.end());
          break;
        }
        case BlockKind::kTry:
        case BlockKind::kCatch:
        case BlockKind::kElse:    // dangling else (no preceding if): scope
        case BlockKind::kElseIf:
        case BlockKind::kScope: {
          preds = seq(s.children, std::move(preds), ctx);
          break;
        }
        case BlockKind::kReturn: {
          const int id = add_node(s);
          // Fold the braced-init body into the node.
          cfg.nodes[id].flat = flat_text(s);
          link(preds, id);
          edges.emplace_back(id, kExitSentinel);
          preds.clear();
          break;
        }
        case BlockKind::kFunction:
        case BlockKind::kLambdaVar:
        case BlockKind::kAggregate: {
          // Nested definition: opaque single node (its body may run never
          // or later); analyzed separately as its own function unit. The
          // body folds into the flat — a deferred lambda that consumes a
          // token (`done = [..]{ end_span(..); }`) counts as a hand-off.
          const int id = add_node(s);
          cfg.nodes[id].flat = flat_text(s);
          link(preds, id);
          preds = {id};
          break;
        }
      }
    }
    return preds;
  }
};

}  // namespace

std::vector<FunctionUnit> collect_functions(
    const std::vector<StmtNode>& tree) {
  std::vector<FunctionUnit> out;
  collect_functions_walk(tree, &out);
  return out;
}

Cfg build_cfg(const FunctionUnit& fn) {
  CfgBuilder b;
  CfgBuilder::Ctx ctx;
  // Virtual entry: remember which nodes start the function.
  const std::size_t before = b.cfg.nodes.size();
  std::vector<int> outs = b.seq(fn.body->children, {}, ctx);
  (void)before;
  for (int p : outs) b.edges.emplace_back(p, kExitSentinel);
  b.cfg.exit_id = static_cast<int>(b.cfg.nodes.size());
  b.cfg.succ.assign(b.cfg.nodes.size() + 1, {});
  for (auto [from, to] : b.edges) {
    if (from < 0) continue;  // dangling (empty pred set start)
    const int target = to == kExitSentinel ? b.cfg.exit_id : to;
    b.cfg.succ[from].push_back(target);
  }
  return b.cfg;
}

bool path_to_exit_avoids(const Cfg& cfg, int from, std::string_view token) {
  // Entry-to-first-node edges are implicit: node 0 is the first statement
  // (seq() numbers nodes in flow order from the entry).
  std::vector<int> stack;
  std::vector<char> visited(cfg.nodes.size() + 1, 0);
  auto push = [&](int id) {
    if (id >= 0 && id <= cfg.exit_id && !visited[id]) {
      visited[id] = 1;
      stack.push_back(id);
    }
  };
  if (from < 0) {
    if (cfg.nodes.empty()) return true;  // empty body: entry falls to exit
    push(0);
  } else {
    if (from >= static_cast<int>(cfg.nodes.size())) return false;
    for (int s : cfg.succ[from]) push(s);
  }
  while (!stack.empty()) {
    const int id = stack.back();
    stack.pop_back();
    if (id == cfg.exit_id) return true;
    if (contains_token(cfg.nodes[id].flat, token)) continue;  // blocked
    for (int s : cfg.succ[id]) push(s);
  }
  return false;
}

int node_at_line(const Cfg& cfg, int line) {
  int best = -1;
  int best_span = 0;
  for (std::size_t i = 0; i < cfg.nodes.size(); ++i) {
    const Cfg::Node& n = cfg.nodes[i];
    if (line < n.line || line > n.end_line) continue;
    const int span = n.end_line - n.line;
    if (best < 0 || span < best_span) {
      best = static_cast<int>(i);
      best_span = span;
    }
  }
  return best;
}

std::string final_call_name(const std::string& s) {
  std::size_t i = 0;
  auto skip_ws = [&] {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  };
  auto read_ident = [&]() -> std::string {
    skip_ws();
    if (i >= s.size() || !is_ident_start(s[i])) return "";
    std::size_t start = i;
    while (i < s.size() && is_ident_char(s[i])) ++i;
    return s.substr(start, i - start);
  };
  auto skip_parens = [&]() -> bool {
    skip_ws();
    if (i >= s.size() || s[i] != '(') return false;
    int depth = 0;
    for (; i < s.size(); ++i) {
      if (s[i] == '(') ++depth;
      if (s[i] == ')' && --depth == 0) {
        ++i;
        return true;
      }
    }
    return false;
  };
  std::string last;
  for (;;) {
    std::string ident = read_ident();
    if (ident.empty()) return "";
    skip_ws();
    if (i + 1 < s.size() && s[i] == ':' && s[i + 1] == ':') {
      i += 2;
      continue;  // qualified name, keep reading
    }
    if (i < s.size() && s[i] == '(') {
      last = ident;
      if (!skip_parens()) return "";
      skip_ws();
      if (i >= s.size()) return last;  // statement ends at the call
      if (s[i] == '.') {
        ++i;
        continue;
      }
      if (i + 1 < s.size() && s[i] == '-' && s[i + 1] == '>') {
        i += 2;
        continue;
      }
      return "";  // trailing operator: not a bare call statement
    }
    if (i < s.size() && s[i] == '.') {
      ++i;
      continue;
    }
    if (i + 1 < s.size() && s[i] == '-' && s[i + 1] == '>') {
      i += 2;
      continue;
    }
    return "";  // two adjacent identifiers (a declaration) or an operator
  }
}

}  // namespace dm::lint
