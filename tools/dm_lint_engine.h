// dm_lint statement/CFG engine.
//
// The v1 analyzer matched tokens and lines; the flow-aware rules
// (lock-order, branch-sensitive status/span) need to know *where control
// can go*. This layer builds, per file, a brace/paren-matched statement
// tree from the blanked code view, and per function an intra-procedural
// control-flow graph over its statements. No libclang: the parser is a
// single pass over the code view that
//
//   * groups text into statements at ';' (paren depth 0),
//   * opens a child block at '{' — a *body* block when the brace sits at
//     paren depth 0 (if/for/function/...), an *argument* block when it
//     sits inside an unclosed '(' (lambda or braced-init argument, e.g.
//     the callback of CxlDirectory::lock),
//   * skips preprocessor logical lines (including '\'-continuations), so
//     a macro body spanning the grouper cannot desynchronize the braces.
//
// The CFG models structured control flow: if/else chains branch, loops
// get a zero-iteration bypass edge and a back edge, switch bodies get a
// no-case-matched bypass, return/throw edge to the function exit,
// break/continue to their targets. Nested functions (lambdas bound to
// variables, local structs) are opaque single nodes in the enclosing
// CFG — their bodies may run never or later — and are analyzed as
// functions of their own. Argument blocks *are* folded into their
// carrying statement's flat text: a completion callback that closes a
// span counts as closing it, matching the instrumentation idiom.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "dm_lint_model.h"

namespace dm::lint {

struct StmtNode {
  std::string text;   // statement text / block header, whitespace-collapsed
  int line = 0;       // 1-based line of the first character
  int end_line = 0;   // last line covered, children included
  bool is_block = false;   // has a body ({...} at paren depth 0)
  bool arg_block = false;  // block opened inside an unclosed '(' or
                           // braced-init: belongs to the carrying statement
  // For a body block: its statements. For a plain statement: any argument
  // blocks (lambda bodies, braced-init lists) it carries, in order.
  std::vector<StmtNode> children;
};

// Parses the whole file (preprocessor logical lines skipped).
std::vector<StmtNode> build_statement_tree(const SourceFile& file);

enum class BlockKind {
  kIf,
  kElseIf,
  kElse,
  kFor,
  kWhile,
  kDo,
  kSwitch,
  kTry,
  kCatch,
  kScope,      // bare braces, case bodies, ...
  kFunction,   // free/member function or constructor definition
  kLambdaVar,  // `auto cb = [...](...) {...}` — deferred body
  kAggregate,  // class/struct/enum/union/namespace/extern block
  kReturn,     // `return T{...}` — a braced-init return, terminal
};

BlockKind classify_block(const StmtNode& node);

// `node.text` plus every child's text, recursively, joined with spaces.
std::string flat_text(const StmtNode& node);

// Whole-token containment ("end_span" does not match "append_end_spans").
bool contains_token(std::string_view text, std::string_view token);

struct FunctionUnit {
  const StmtNode* body = nullptr;  // the block node (children = statements)
  std::string header;              // signature text
  int line = 0;
};

// Every function-like body in the tree, lambdas and nested local structs
// included, in source order.
std::vector<FunctionUnit> collect_functions(const std::vector<StmtNode>& tree);

// Control-flow graph over one function body. Node ids index `nodes`;
// `exit_id` is a virtual exit (== nodes.size()) with no CfgNode.
struct Cfg {
  struct Node {
    const StmtNode* stmt = nullptr;
    std::string flat;  // statement text with argument blocks folded in
    int line = 0;
    int end_line = 0;
  };
  std::vector<Node> nodes;
  std::vector<std::vector<int>> succ;  // size nodes.size() + 1 (exit empty)
  int exit_id = 0;
};

Cfg build_cfg(const FunctionUnit& fn);

// True if some path from a successor of `from` reaches the exit without
// passing through any node whose flat text whole-token-contains `token`.
// (`from` itself is not inspected.) With `from == -1`, paths start at the
// function entry and every node is inspected.
bool path_to_exit_avoids(const Cfg& cfg, int from, std::string_view token);

// The node covering source line `line` (smallest enclosing statement), or
// -1. Argument blocks resolve to their carrying statement.
int node_at_line(const Cfg& cfg, int line);

// If `s` is exactly a call chain (`a.b(...).c(...)`, `foo(...)`,
// `ns::foo(...)`) returns the name of the final call, else "".
std::string final_call_name(const std::string& s);

}  // namespace dm::lint
