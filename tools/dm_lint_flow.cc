#include "dm_lint_flow.h"

#include <algorithm>
#include <array>
#include <tuple>

#include "dm_lint_core.h"

namespace dm::lint {
namespace {

// ---------------------------------------------------------------------------
// Shared text helpers.
// ---------------------------------------------------------------------------

bool token_at(const std::string& line, std::size_t at, std::size_t len) {
  const bool left = at == 0 || !is_ident_char(line[at - 1]);
  const bool right = at + len >= line.size() || !is_ident_char(line[at + len]);
  return left && right;
}

// Call-site harvest: every string literal inside the parenthesized argument
// list of a `name(...)` call. The paren match runs over the code view (so
// parens inside literals are invisible) and crosses lines; with
// `skip_var_ident` one identifier may sit between the token and the '('
// (`SpanScope guard(...)`).
struct CallLits {
  int line = 0;  // line of the call token
  std::vector<const StringLit*> lits;
};

std::vector<CallLits> find_calls(const SourceFile& file, std::string_view name,
                                 bool skip_var_ident) {
  std::vector<CallLits> calls;
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    for (std::size_t pos = 0;;) {
      const auto at = line.find(name, pos);
      if (at == std::string::npos) break;
      pos = at + 1;
      if (!token_at(line, at, name.size())) continue;
      // Cursor walk: skip whitespace (across lines), optionally one
      // identifier, then require '('.
      std::size_t cl = li;
      std::size_t cc = at + name.size();
      auto skip_ws = [&]() -> bool {
        for (;;) {
          if (cl >= file.code.size()) return false;
          const std::string& l = file.code[cl];
          if (cc >= l.size()) {
            ++cl;
            cc = 0;
            continue;
          }
          if (l[cc] == ' ' || l[cc] == '\t') {
            ++cc;
            continue;
          }
          return true;
        }
      };
      if (!skip_ws()) continue;
      if (skip_var_ident && is_ident_start(file.code[cl][cc])) {
        while (cc < file.code[cl].size() && is_ident_char(file.code[cl][cc])) {
          ++cc;
        }
        if (!skip_ws()) continue;
      }
      if (file.code[cl][cc] != '(') continue;
      // Match the argument parens.
      const std::size_t open_l = cl;
      const std::size_t open_c = cc;
      int depth = 0;
      std::size_t end_l = open_l;
      std::size_t end_c = open_c;
      bool closed = false;
      for (std::size_t l2 = open_l; l2 < file.code.size() && !closed; ++l2) {
        const std::string& l = file.code[l2];
        for (std::size_t c2 = l2 == open_l ? open_c : 0; c2 < l.size(); ++c2) {
          if (l[c2] == '(') ++depth;
          if (l[c2] == ')' && --depth == 0) {
            end_l = l2;
            end_c = c2;
            closed = true;
            break;
          }
        }
      }
      if (!closed) continue;
      CallLits call;
      call.line = static_cast<int>(li) + 1;
      for (const StringLit& lit : file.strings) {
        const auto p = std::make_pair(static_cast<std::size_t>(lit.line - 1),
                                      static_cast<std::size_t>(lit.col));
        if (p > std::make_pair(open_l, open_c) &&
            p < std::make_pair(end_l, end_c)) {
          call.lits.push_back(&lit);
        }
      }
      calls.push_back(std::move(call));
    }
  }
  return calls;
}

}  // namespace

FileAnalysis analyze_file(const SourceFile& file) {
  FileAnalysis fa;
  if (file.is_script) return fa;
  fa.tree = build_statement_tree(file);
  fa.functions = collect_functions(fa.tree);
  return fa;
}

// ---------------------------------------------------------------------------
// Branch-sensitive status rule.
// ---------------------------------------------------------------------------
namespace {

// Leftmost assignment '=' at paren/bracket depth 0 that is not part of a
// comparison or compound operator.
std::size_t find_assign(const std::string& text) {
  int depth = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '(' || c == '[') ++depth;
    if (c == ')' || c == ']') --depth;
    if (c != '=' || depth != 0) continue;
    if (i + 1 < text.size() && text[i + 1] == '=') {
      ++i;
      continue;
    }
    const char p = i > 0 ? text[i - 1] : '\0';
    if (p == '=' || p == '<' || p == '>' || p == '!' || p == '+' || p == '-' ||
        p == '*' || p == '/' || p == '%' || p == '&' || p == '|' || p == '^') {
      continue;
    }
    return i;
  }
  return std::string::npos;
}

std::string first_decl_token(const std::string& text, std::size_t* next) {
  std::size_t i = *next;
  while (i < text.size() && text[i] == ' ') ++i;
  std::size_t start = i;
  while (i < text.size() && is_ident_char(text[i])) ++i;
  *next = i;
  return text.substr(start, i - start);
}

// `auto st = f(...)` / `Status st = f(...)` / `StatusOr<T> r = chain()`:
// returns the bound variable name, or "" if this is not such a declaration.
std::string parse_status_decl(const std::string& text,
                              const std::set<std::string>& status_names) {
  std::size_t cursor = 0;
  std::string tok = first_decl_token(text, &cursor);
  while (tok == "const" || tok == "static" || tok == "constexpr" ||
         tok == "inline") {
    tok = first_decl_token(text, &cursor);
  }
  const bool typed = tok == "Status" || tok == "StatusOr";
  if (!typed && tok != "auto") return "";
  const auto eq = find_assign(text);
  if (eq == std::string::npos) return "";
  // Variable: trailing identifier before '='.
  std::size_t e = eq;
  while (e > 0 && (text[e - 1] == ' ' || text[e - 1] == '&')) --e;
  std::size_t s = e;
  while (s > 0 && is_ident_char(text[s - 1])) --s;
  if (s == e || !is_ident_start(text[s])) return "";
  const std::string var = text.substr(s, e - s);
  if (typed) return var;
  // auto: the initializer must be a call to a Status-returning name.
  const std::string name = final_call_name(text.substr(eq + 1));
  if (name.empty() || status_names.count(name) == 0) return "";
  return var;
}

}  // namespace

void check_status_branches(const SourceFile& file, const FileAnalysis& fa,
                           const std::set<std::string>& status_names,
                           const Reporter& report) {
  for (const FunctionUnit& fn : fa.functions) {
    const Cfg cfg = build_cfg(fn);
    for (std::size_t id = 0; id < cfg.nodes.size(); ++id) {
      const Cfg::Node& node = cfg.nodes[id];
      if (node.stmt->is_block) continue;  // headers consume in the condition
      const std::string var = parse_status_decl(node.stmt->text, status_names);
      if (var.empty()) continue;
      if (path_to_exit_avoids(cfg, static_cast<int>(id), var)) {
        report(file, node.line, kRuleStatusDiscard,
               "Status result '" + var +
                   "' is never consumed on some control-flow path (check, "
                   "return, or propagate it on every branch)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Branch-sensitive span rule.
// ---------------------------------------------------------------------------
namespace {

// Legacy fallback for sites outside any recognized function body: scan to
// the end of the innermost enclosing block for an end_span token.
bool span_closed_in_block(const SourceFile& file, std::size_t start_line,
                          std::size_t start_col) {
  int depth = 0;
  for (std::size_t li = start_line; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    for (std::size_t i = li == start_line ? start_col : 0; i < line.size();
         ++i) {
      const char c = line[i];
      if (c == '{') ++depth;
      if (c == '}' && --depth < 0) return false;
      if (c == 'e' && line.compare(i, 8, "end_span") == 0 &&
          token_at(line, i, 8)) {
        return true;
      }
    }
  }
  return false;
}

const FunctionUnit* innermost_unit(const FileAnalysis& fa, int line) {
  const FunctionUnit* best = nullptr;
  for (const FunctionUnit& fn : fa.functions) {
    if (line < fn.body->line || line > fn.body->end_line) continue;
    if (best == nullptr ||
        fn.body->end_line - fn.body->line <
            best->body->end_line - best->body->line) {
      best = &fn;
    }
  }
  return best;
}

}  // namespace

void check_span_flow(const SourceFile& file, const FileAnalysis& fa,
                     const Reporter& report) {
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    for (std::size_t pos = 0;;) {
      const auto at = line.find("begin_span", pos);
      if (at == std::string::npos) break;
      pos = at + 1;
      if (!token_at(line, at, 10)) continue;
      // Only member calls open spans; declarations and out-of-line
      // definitions (`SpanTracer::begin_span(`) are not sites.
      std::size_t b = at;
      while (b > 0 && (line[b - 1] == ' ' || line[b - 1] == '\t')) --b;
      const bool member =
          b > 0 && (line[b - 1] == '.' ||
                    (line[b - 1] == '>' && b > 1 && line[b - 2] == '-'));
      if (!member) continue;
      std::size_t after = at + 10;
      while (after < line.size() &&
             (line[after] == ' ' || line[after] == '\t')) {
        ++after;
      }
      if (after >= line.size() || line[after] != '(') continue;
      const int site_line = static_cast<int>(li) + 1;
      const FunctionUnit* fn = innermost_unit(fa, site_line);
      bool leaked;
      if (fn == nullptr) {
        leaked = !span_closed_in_block(file, li, at + 10);
      } else {
        const Cfg cfg = build_cfg(*fn);
        const int id = node_at_line(cfg, site_line);
        if (id < 0) {
          leaked = !span_closed_in_block(file, li, at + 10);
        } else if (contains_token(cfg.nodes[id].flat, "end_span")) {
          leaked = false;  // closed by a callback in the same statement
        } else {
          leaked = path_to_exit_avoids(cfg, id, "end_span");
        }
      }
      if (leaked) {
        report(file, site_line, kRuleSpanUnclosed,
               "begin_span with no end_span on every path to the function "
               "exit (prefer sim::SpanScope; async hand-offs that close the "
               "span elsewhere need an explicit allow marker)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Lock order.
// ---------------------------------------------------------------------------
namespace {

struct Acquisition {
  std::string level;
  bool callback = false;   // held region = the statement's argument blocks
  bool annotated = false;
  bool ascending = false;
  std::string first_arg;   // index expression, for the ascending proof
};

// Splits `args` (the text between the call parens) at top-level commas and
// returns the trimmed pieces.
std::vector<std::string> split_args(const std::string& args) {
  std::vector<std::string> out;
  int depth = 0;
  std::string cur;
  for (char c : args) {
    if (c == '(' || c == '[' || c == '{') ++depth;
    if (c == ')' || c == ']' || c == '}') --depth;
    if (c == ',' && depth == 0) {
      out.push_back(cur);
      cur.clear();
      continue;
    }
    cur += c;
  }
  out.push_back(cur);
  for (std::string& a : out) {
    const auto f = a.find_first_not_of(" \t");
    const auto l = a.find_last_not_of(" \t");
    a = f == std::string::npos ? "" : a.substr(f, l - f + 1);
  }
  if (out.size() == 1 && out[0].empty()) out.clear();
  return out;
}

// Trailing identifier of an expression ("mu_a" from "fix::mu_a").
std::string trailing_ident(const std::string& expr, std::size_t end) {
  std::size_t e = end;
  while (e > 0 && (expr[e - 1] == ' ' || expr[e - 1] == '\t')) --e;
  std::size_t s = e;
  while (s > 0 && is_ident_char(expr[s - 1])) --s;
  if (s == e || !is_ident_start(expr[s])) return "";
  return expr.substr(s, e - s);
}

std::string fallback_level(const SourceFile& file, const std::string& var) {
  const std::string mod = file.module.empty() ? "file" : file.module;
  return mod + "." + (var.empty() ? "expr" : var);
}

std::vector<Acquisition> detect_acquisitions(const SourceFile& file,
                                             const StmtNode& stmt) {
  std::vector<Acquisition> acqs;
  const std::string& text = stmt.text;
  const auto note = file.lock_notes.find(stmt.line);
  const bool annotated = note != file.lock_notes.end();

  auto matching_close = [&](std::size_t open) -> std::size_t {
    int depth = 0;
    for (std::size_t i = open; i < text.size(); ++i) {
      if (text[i] == '(' || text[i] == '[') ++depth;
      if ((text[i] == ')' || text[i] == ']') && --depth == 0) return i;
    }
    return std::string::npos;
  };

  // Member lock calls: `x.lock(...)`, `x->lock_range(...)`.
  for (const char* name : {"lock", "lock_range"}) {
    const std::size_t len = std::string_view(name).size();
    for (std::size_t pos = 0;;) {
      const auto at = text.find(name, pos);
      if (at == std::string::npos) break;
      pos = at + 1;
      if (!token_at(text, at, len)) continue;
      std::size_t b = at;
      while (b > 0 && text[b - 1] == ' ') --b;
      const bool member =
          b > 0 && (text[b - 1] == '.' ||
                    (text[b - 1] == '>' && b > 1 && text[b - 2] == '-'));
      if (!member) continue;
      std::size_t open = at + len;
      while (open < text.size() && text[open] == ' ') ++open;
      if (open >= text.size() || text[open] != '(') continue;
      const auto close = matching_close(open);
      if (close == std::string::npos) continue;
      const auto args =
          split_args(text.substr(open + 1, close - open - 1));
      const std::string obj =
          trailing_ident(text, b - (text[b - 1] == '.' ? 1 : 2));
      Acquisition acq;
      acq.callback = !args.empty();
      acq.annotated = annotated;
      acq.ascending = annotated && note->second.ascending;
      acq.level = annotated ? note->second.level : fallback_level(file, obj);
      if (!args.empty()) acq.first_arg = args.front();
      acqs.push_back(std::move(acq));
    }
  }

  // Guard declarations: `std::lock_guard<std::mutex> g(mu)`,
  // `std::scoped_lock g(a, b)`, `std::unique_lock<std::mutex> g(mu)`.
  for (const char* guard : {"lock_guard", "scoped_lock", "unique_lock"}) {
    const std::size_t len = std::string_view(guard).size();
    for (std::size_t pos = 0;;) {
      const auto at = text.find(guard, pos);
      if (at == std::string::npos) break;
      pos = at + 1;
      if (!token_at(text, at, len)) continue;
      std::size_t i = at + len;
      while (i < text.size() && text[i] == ' ') ++i;
      if (i < text.size() && text[i] == '<') {
        const auto past = skip_angles(text, i);
        if (past == std::string::npos) continue;
        i = past;
      }
      while (i < text.size() && text[i] == ' ') ++i;
      std::size_t name_start = i;
      while (i < text.size() && is_ident_char(text[i])) ++i;
      if (i == name_start) continue;  // no guard variable: a type mention
      while (i < text.size() && text[i] == ' ') ++i;
      if (i >= text.size() || text[i] != '(') continue;
      const auto close = matching_close(i);
      if (close == std::string::npos) continue;
      for (const std::string& arg :
           split_args(text.substr(i + 1, close - i - 1))) {
        const std::string mu = trailing_ident(arg, arg.size());
        if (mu.empty()) continue;
        Acquisition acq;
        acq.annotated = annotated;
        acq.level = annotated ? note->second.level : fallback_level(file, mu);
        acqs.push_back(std::move(acq));
      }
    }
  }
  return acqs;
}

bool has_increment(const std::string& flat, const std::string& v) {
  for (std::size_t pos = 0;;) {
    const auto at = flat.find(v, pos);
    if (at == std::string::npos) return false;
    pos = at + 1;
    if (!token_at(flat, at, v.size())) continue;
    if (at >= 2 && flat.compare(at - 2, 2, "++") == 0) return true;
    const std::string tail = flat.substr(at + v.size());
    for (const char* pat : {"++", " + 1", "+ 1", " +1", "+1", " += 1",
                            "+= 1", " ++"}) {
      const std::size_t plen = std::string_view(pat).size();
      if (tail.compare(0, plen, pat) != 0) continue;
      // Numeric patterns must not continue into a longer literal ("+ 10").
      if (plen < tail.size() && is_ident_char(tail[plen]) &&
          tail[plen - 1] == '1') {
        continue;
      }
      return true;
    }
  }
}

bool provably_ascending(const std::string& first_arg,
                        const std::string& fn_flat) {
  // Tokenize the index expression into identifiers and operators.
  std::vector<std::string> toks;
  for (std::size_t i = 0; i < first_arg.size();) {
    const char c = first_arg[i];
    if (c == ' ' || c == '\t') {
      ++i;
      continue;
    }
    if (is_ident_char(c)) {
      std::size_t s = i;
      while (i < first_arg.size() && is_ident_char(first_arg[i])) ++i;
      toks.push_back(first_arg.substr(s, i - s));
      continue;
    }
    toks.push_back(std::string(1, c));
    ++i;
  }
  std::vector<std::string> candidates;
  if (toks.size() == 1 && is_ident_start(toks[0][0])) {
    candidates.push_back(toks[0]);
  } else if (toks.size() == 3 && toks[1] == "+" &&
             is_ident_start(toks[0][0]) && is_ident_start(toks[2][0])) {
    candidates.push_back(toks[0]);
    candidates.push_back(toks[2]);
  } else {
    return false;  // not `v` or `base + v`
  }
  for (const std::string& v : candidates) {
    if (has_increment(fn_flat, v)) return true;
  }
  return false;
}

struct LockWalker {
  const SourceFile& file;
  LockGraph* graph;
  const Reporter& report;

  void walk(const std::vector<StmtNode>& stmts,
            std::vector<std::string> held, const std::string& fn_flat) {
    for (const StmtNode& stmt : stmts) {
      if (stmt.is_block && !stmt.arg_block) {
        const BlockKind kind = classify_block(stmt);
        if (kind == BlockKind::kFunction || kind == BlockKind::kLambdaVar) {
          walk(stmt.children, {}, flat_text(stmt));  // deferred/new frame
        } else if (kind == BlockKind::kAggregate) {
          walk(stmt.children, {}, fn_flat);
        } else {
          walk(stmt.children, held, fn_flat);  // copies: guards stay scoped
        }
        continue;
      }
      if (stmt.is_block && stmt.arg_block) {
        walk(stmt.children, {}, fn_flat);
        continue;
      }
      const auto acqs = detect_acquisitions(file, stmt);
      if (acqs.empty()) {
        // Plain statement: its lambdas run later, without our locks.
        for (const StmtNode& arg : stmt.children) {
          walk(arg.children, {}, flat_text(arg));
        }
        continue;
      }
      bool any_callback = false;
      for (const Acquisition& acq : acqs) {
        if (acq.callback && !acq.annotated) {
          report(file, stmt.line, kRuleLockOrder,
                 "callback-style lock acquisition without a "
                 "// dm-lock: order(<level>) annotation (the held region is "
                 "the callback body; name its lock level)");
        }
        if (acq.ascending && acq.callback &&
            !provably_ascending(acq.first_arg, fn_flat)) {
          report(file, stmt.line, kRuleLockOrder,
                 "range lock annotated 'ascending' but index '" +
                     acq.first_arg +
                     "' is not provably ascending (expected `v` or "
                     "`base + v` with v incremented in this function)");
        }
        for (const std::string& h : held) {
          if (h == acq.level && acq.ascending) continue;  // proven above
          graph->edges.emplace(std::make_pair(h, acq.level),
                               LockGraph::Site{&file, stmt.line});
        }
        any_callback = any_callback || acq.callback;
      }
      std::vector<std::string> inner = held;
      for (const Acquisition& acq : acqs) inner.push_back(acq.level);
      if (any_callback) {
        for (const StmtNode& arg : stmt.children) {
          walk(arg.children, inner, fn_flat);
        }
      } else {
        held = std::move(inner);  // guards hold to end of block
      }
    }
  }
};

}  // namespace

void collect_lock_order(const SourceFile& file, const FileAnalysis& fa,
                        LockGraph* graph, const Reporter& report) {
  if (file.is_script) return;
  LockWalker walker{file, graph, report};
  walker.walk(fa.tree, {}, "");
}

void check_lock_cycles(const LockGraph& graph, const Reporter& report) {
  // Adjacency over levels; an edge A->B closes a cycle iff B reaches A.
  std::map<std::string, std::set<std::string>> adj;
  for (const auto& [edge, site] : graph.edges) adj[edge.first].insert(edge.second);
  auto reaches = [&](const std::string& from, const std::string& to) {
    std::set<std::string> seen;
    std::vector<std::string> stack{from};
    while (!stack.empty()) {
      const std::string at = stack.back();
      stack.pop_back();
      if (at == to) return true;
      if (!seen.insert(at).second) continue;
      const auto it = adj.find(at);
      if (it == adj.end()) continue;
      for (const std::string& next : it->second) stack.push_back(next);
    }
    return false;
  };
  for (const auto& [edge, site] : graph.edges) {
    if (reaches(edge.second, edge.first)) {
      report(*site.file, site.line, kRuleLockOrder,
             "lock-order cycle: acquires '" + edge.second +
                 "' while holding '" + edge.first +
                 "' and a path from '" + edge.second + "' back to '" +
                 edge.first + "' exists in the global lock-order graph");
    }
  }
}

// ---------------------------------------------------------------------------
// RPC contract.
// ---------------------------------------------------------------------------
namespace {

std::vector<std::string> rpc_tokens(const std::string& text) {
  std::vector<std::string> out;
  for (std::size_t pos = 0;;) {
    const auto at = text.find("kRpc", pos);
    if (at == std::string::npos) break;
    pos = at + 1;
    if (at > 0 && is_ident_char(text[at - 1])) continue;
    std::size_t i = at;
    while (i < text.size() && is_ident_char(text[i])) ++i;
    if (i - at > 4) out.push_back(text.substr(at, i - at));
  }
  return out;
}

void collect_rpc_stmts(const SourceFile& file,
                       const std::vector<StmtNode>& stmts,
                       RpcContract* state) {
  for (const StmtNode& stmt : stmts) {
    if (stmt.is_block) {
      collect_rpc_stmts(file, stmt.children, state);
      continue;
    }
    const std::string flat = flat_text(stmt);
    const auto methods = rpc_tokens(flat);
    if (methods.empty()) {
      for (const StmtNode& arg : stmt.children) {
        collect_rpc_stmts(file, arg.children, state);
      }
      continue;
    }
    const bool lab = contains_token(flat, "label_method");
    const bool han = contains_token(flat, "handle");
    const bool cal = contains_token(flat, "call");
    for (const std::string& m : methods) {
      if (lab) state->labeled.insert(m);
      if (han) state->handled.insert(m);
      if (cal) state->called.insert(m);
    }
  }
}

}  // namespace

void collect_rpc_contract(const SourceFile& file, const FileAnalysis& fa,
                          RpcContract* state) {
  if (file.is_script || !file.in_src) return;
  // Declarations: a kRpc* enumerator given an explicit value.
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    for (std::size_t pos = 0;;) {
      const auto at = line.find("kRpc", pos);
      if (at == std::string::npos) break;
      pos = at + 1;
      if (at > 0 && is_ident_char(line[at - 1])) continue;
      std::size_t i = at;
      while (i < line.size() && is_ident_char(line[i])) ++i;
      if (i - at <= 4) continue;
      std::size_t j = i;
      while (j < line.size() && (line[j] == ' ' || line[j] == '\t')) ++j;
      if (j < line.size() && line[j] == '=' &&
          (j + 1 >= line.size() || line[j + 1] != '=')) {
        state->decls.emplace(
            line.substr(at, i - at),
            RpcContract::Decl{&file, static_cast<int>(li) + 1});
      }
    }
  }
  collect_rpc_stmts(file, fa.tree, state);
}

void check_rpc_contract(const RpcContract& state, const Reporter& report) {
  for (const auto& [method, decl] : state.decls) {
    std::string missing;
    if (state.labeled.count(method) == 0) {
      missing += "label_method (rpc.rtt metric label)";
    }
    if (state.handled.count(method) == 0) {
      if (!missing.empty()) missing += ", ";
      missing += "handle() dispatch";
    }
    if (state.called.count(method) == 0) {
      if (!missing.empty()) missing += ", ";
      missing += "call() site";
    }
    if (!missing.empty()) {
      report(*decl.file, decl.line, kRuleRpcContract,
             "rpc method '" + method + "' is missing: " + missing);
    }
  }
}

// ---------------------------------------------------------------------------
// Metric contract.
// ---------------------------------------------------------------------------
namespace {

bool lower_dotted(const std::string& name, bool trailing_dot_ok,
                  std::size_t min_components) {
  if (name.empty()) return false;
  if (!(name[0] >= 'a' && name[0] <= 'z')) return false;
  std::size_t components = 1;
  bool prev_dot = false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    if (c == '.') {
      if (prev_dot || i == 0) return false;
      prev_dot = true;
      ++components;
      continue;
    }
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
      return false;
    }
    prev_dot = false;
  }
  if (prev_dot) {  // trailing dot: a prefix emission
    if (!trailing_dot_ok) return false;
    --components;  // the dangling dot opened no component
  }
  return components >= min_components;
}

bool universe_file(const SourceFile& file) {
  return file.rel.rfind("src/", 0) == 0 || file.rel.rfind("tools/", 0) == 0 ||
         file.rel.rfind("bench/", 0) == 0;
}

void add_emission(const SourceFile& file, int line, const std::string& name,
                  const std::string& kind, MetricContract* state,
                  const Reporter& report) {
  if (name.empty() || !is_ident_start(name[0])) return;  // glue like "."
  const bool universe = universe_file(file);
  const bool prefix = name.back() == '.';
  MetricContract::Emission em{{&file, line}, kind, universe};
  if (universe && !lower_dotted(name, true, prefix ? 1 : 2)) {
    report(file, line, kRuleMetricContract,
           "metric/span name \"" + name +
               "\" violates the naming convention (lowercase dotted "
               "components, at least two for full names)");
  }
  if (prefix) {
    state->prefixes[name].push_back(em);
  } else {
    state->names[name].push_back(em);
  }
  if (universe) {
    state->first_components.insert(name.substr(0, name.find('.')));
  }
}

const std::set<std::string>& file_extension_words() {
  static const std::set<std::string> k = {
      "sh",   "cc",  "h",    "o",     "out",  "json", "md",   "txt",
      "py",   "yml", "yaml", "cmake", "log",  "gcda", "gcno", "cpp",
      "hpp",  "cmd", "csv"};
  return k;
}

// ci.sh and friends: pull metric-shaped tokens out of gate specs. Filtering
// to first components the code actually emits happens at check time (the
// universe may not be collected yet).
void collect_script_tokens(const SourceFile& file, MetricContract* state) {
  for (std::size_t li = 0; li < file.lines.size(); ++li) {
    std::string text = file.lines[li];
    if (!file.comments[li].empty() &&
        text.size() > file.comments[li].size()) {
      text.resize(text.size() - file.comments[li].size() - 1);
    } else if (!file.comments[li].empty()) {
      continue;
    }
    const auto word = [](char c) {
      return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
             (c >= '0' && c <= '9') || c == '_' || c == '.';
    };
    for (std::size_t i = 0; i < text.size();) {
      if (!word(text[i])) {
        ++i;
        continue;
      }
      std::size_t s = i;
      while (i < text.size() && word(text[i])) ++i;
      const std::string run = text.substr(s, i - s);
      const char before = s > 0 ? text[s - 1] : '\0';
      const char after = i < text.size() ? text[i] : '\0';
      if (before == '/' || before == '$' || after == '/') continue;
      if (run.find('.') == std::string::npos) continue;
      if (!lower_dotted(run, false, 2)) continue;
      const auto last_dot = run.rfind('.');
      if (file_extension_words().count(run.substr(last_dot + 1)) > 0) {
        continue;
      }
      state->script_reads.emplace_back(
          run, MetricContract::Site{&file, static_cast<int>(li) + 1});
    }
  }
}

}  // namespace

void collect_metric_contract(const SourceFile& file, const FileAnalysis& fa,
                             MetricContract* state, const Reporter& report) {
  (void)fa;
  if (file.is_script) {
    collect_script_tokens(file, state);
    return;
  }
  for (const CallLits& call : find_calls(file, "counter", false)) {
    for (const StringLit* lit : call.lits) {
      add_emission(file, lit->line, lit->text, "counter", state, report);
    }
  }
  for (const CallLits& call : find_calls(file, "histogram", false)) {
    for (const StringLit* lit : call.lits) {
      add_emission(file, lit->line, lit->text, "histogram", state, report);
    }
  }
  // Spans: the last two literals are (subsystem, name); with only the
  // subsystem literal present the name is dynamic, so record a prefix.
  for (bool scoped : {false, true}) {
    const char* token = scoped ? "SpanScope" : "begin_span";
    for (const CallLits& call : find_calls(file, token, scoped)) {
      if (call.lits.empty() || call.lits.back()->text.empty()) continue;
      std::string name;
      if (call.lits.size() >= 2) {
        name = call.lits[call.lits.size() - 2]->text + "." +
               call.lits.back()->text;
      } else {
        name = call.lits.back()->text + ".";
      }
      add_emission(file, call.lits.back()->line, name, "span", state, report);
    }
  }
  for (const char* reader : {"counter_value", "find_histogram",
                             "total_counter"}) {
    for (const CallLits& call : find_calls(file, reader, false)) {
      for (const StringLit* lit : call.lits) {
        state->reads.emplace_back(
            lit->text, MetricContract::Site{&file, lit->line});
      }
    }
  }
}

namespace {

// Shape for read-side names: like the emission convention but the interior
// components may start with digits ("node.0.rpc.rtt.heartbeat").
bool read_shape(const std::string& name) {
  if (name.empty() || !(name[0] >= 'a' && name[0] <= 'z')) return false;
  bool prev_dot = false;
  std::size_t components = 1;
  for (char c : name) {
    if (c == '.') {
      if (prev_dot) return false;
      prev_dot = true;
      ++components;
      continue;
    }
    if (!((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '_')) {
      return false;
    }
    prev_dot = false;
  }
  return !prev_dot && components >= 2;
}

bool resolves(const MetricContract& state, const std::string& name,
              const SourceFile* reader) {
  std::vector<std::string> candidates{name};
  std::string stripped = name;
  for (int strip = 0; strip < 2; ++strip) {
    const auto dot = stripped.find('.');
    if (dot == std::string::npos) break;
    stripped = stripped.substr(dot + 1);
    if (stripped.find('.') == std::string::npos) break;  // too short now
    candidates.push_back(stripped);
  }
  auto visible = [&](const MetricContract::Emission& em) {
    return em.universe || em.site.file == reader;
  };
  for (const std::string& c : candidates) {
    const auto it = state.names.find(c);
    if (it != state.names.end() &&
        std::any_of(it->second.begin(), it->second.end(), visible)) {
      return true;
    }
    for (const auto& [pfx, ems] : state.prefixes) {
      if (!std::any_of(ems.begin(), ems.end(), visible)) continue;
      if (c.size() > pfx.size() && c.compare(0, pfx.size(), pfx) == 0) {
        return true;
      }
      if (c + "." == pfx) return true;  // read of the family name itself
    }
  }
  return false;
}

}  // namespace

void check_metric_contract(const MetricContract& state,
                           const Reporter& report) {
  // Counter/histogram collisions among universe emissions.
  for (const auto& [name, ems] : state.names) {
    const MetricContract::Emission* first_counter = nullptr;
    const MetricContract::Emission* first_histogram = nullptr;
    for (const MetricContract::Emission& em : ems) {
      if (!em.universe) continue;
      if (em.kind == "counter" && first_counter == nullptr) {
        first_counter = &em;
      }
      if (em.kind == "histogram" && first_histogram == nullptr) {
        first_histogram = &em;
      }
    }
    if (first_counter == nullptr || first_histogram == nullptr) continue;
    const auto key = [](const MetricContract::Emission* e) {
      return std::make_pair(e->site.file->rel, e->site.line);
    };
    const MetricContract::Emission* older =
        key(first_counter) < key(first_histogram) ? first_counter
                                                  : first_histogram;
    const MetricContract::Emission* newer =
        older == first_counter ? first_histogram : first_counter;
    report(*newer->site.file, newer->site.line, kRuleMetricContract,
           "metric '" + name + "' emitted as " + newer->kind +
               " but already emitted as " + older->kind + " at " +
               older->site.file->rel + ":" +
               std::to_string(older->site.line));
  }
  // Orphaned reads.
  for (const auto& [name, site] : state.reads) {
    if (!read_shape(name)) continue;  // dynamic/ad-hoc names are not checked
    if (!resolves(state, name, site.file)) {
      report(*site.file, site.line, kRuleMetricContract,
             "reads metric '" + name + "' that no code emits");
    }
  }
  // Gate specs in scripts: only tokens inside an emitted metric family are
  // treated as metric references at all.
  for (const auto& [name, site] : state.script_reads) {
    const std::string head = name.substr(0, name.find('.'));
    if (state.first_components.count(head) == 0) continue;
    if (!resolves(state, name, site.file)) {
      report(*site.file, site.line, kRuleMetricContract,
             "gate spec references metric '" + name +
                 "' that no code emits");
    }
  }
}

std::string metric_registry_json(const MetricContract& state) {
  // One entry per (name, kind): the first universe emission site.
  std::map<std::pair<std::string, std::string>, MetricContract::Site> rows;
  std::map<std::pair<std::string, std::string>, MetricContract::Site> prows;
  auto fold = [](const std::map<std::string,
                                std::vector<MetricContract::Emission>>& src,
                 std::map<std::pair<std::string, std::string>,
                          MetricContract::Site>* dst) {
    for (const auto& [name, ems] : src) {
      for (const MetricContract::Emission& em : ems) {
        if (!em.universe) continue;
        dst->emplace(std::make_pair(name, em.kind), em.site);
      }
    }
  };
  fold(state.names, &rows);
  fold(state.prefixes, &prows);
  std::string out = "{\n\"tool\": \"dm_lint\",\n\"schema_version\": 2,\n";
  auto emit = [&](const char* key,
                  const std::map<std::pair<std::string, std::string>,
                                 MetricContract::Site>& src) {
    out += std::string("\"") + key + "\": [\n";
    std::size_t i = 0;
    for (const auto& [nk, site] : src) {
      out += "{\"name\": \"" + json_escape(nk.first) + "\", \"kind\": \"" +
             json_escape(nk.second) + "\", \"file\": \"" +
             json_escape(site.file->rel) +
             "\", \"line\": " + std::to_string(site.line) + "}";
      out += (++i < src.size()) ? ",\n" : "\n";
    }
    out += "]";
  };
  emit("metrics", rows);
  out += ",\n";
  emit("prefixes", prows);
  out += "\n}\n";
  return out;
}

}  // namespace dm::lint
