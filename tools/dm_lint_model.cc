#include "dm_lint_model.h"

#include <array>
#include <cctype>
#include <cstdio>
#include <sstream>
#include <string_view>

namespace dm::lint {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

std::size_t skip_angles(const std::string& s, std::size_t pos) {
  int depth = 0;
  for (std::size_t i = pos; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>' && --depth == 0) return i + 1;
  }
  return std::string::npos;
}

std::string module_of(const std::string& rel) {
  const auto slash = rel.find('/');
  if (slash == std::string::npos) return "";
  const std::string head = rel.substr(0, slash);
  if (head != "src") return head;
  const auto second = rel.find('/', slash + 1);
  if (second == std::string::npos) return "";
  return rel.substr(slash + 1, second - slash - 1);
}

namespace {

void parse_allow_markers(SourceFile& file) {
  for (std::size_t i = 0; i < file.comments.size(); ++i) {
    const std::string& comment = file.comments[i];
    auto at = comment.find("dm-lint:");
    if (at == std::string::npos) continue;
    at = comment.find("allow(", at);
    if (at == std::string::npos) continue;
    const auto close = comment.find(')', at);
    if (close == std::string::npos) continue;
    std::string list = comment.substr(at + 6, close - at - 6);
    std::stringstream ss(list);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      const auto first = rule.find_first_not_of(" \t");
      const auto last = rule.find_last_not_of(" \t");
      if (first == std::string::npos) continue;
      rule = rule.substr(first, last - first + 1);
      // The marker covers its own line and the line below, so both
      // trailing-comment and line-above styles work.
      file.allow[rule].insert(static_cast<int>(i) + 1);
      file.allow[rule].insert(static_cast<int>(i) + 2);
    }
  }
}

// `// dm-lock: order(<level>[, ascending])` — the annotation grammar the
// lock-order rule reads at callback-style acquisition sites. The marker
// covers its own line and the line below, like allow().
void parse_lock_markers(SourceFile& file) {
  for (std::size_t i = 0; i < file.comments.size(); ++i) {
    const std::string& comment = file.comments[i];
    auto at = comment.find("dm-lock:");
    if (at == std::string::npos) continue;
    at = comment.find("order(", at);
    if (at == std::string::npos) continue;
    const auto close = comment.find(')', at);
    if (close == std::string::npos) continue;
    std::string list = comment.substr(at + 6, close - at - 6);
    LockAnnotation note;
    std::stringstream ss(list);
    std::string part;
    while (std::getline(ss, part, ',')) {
      const auto first = part.find_first_not_of(" \t");
      const auto last = part.find_last_not_of(" \t");
      if (first == std::string::npos) continue;
      part = part.substr(first, last - first + 1);
      if (part == "ascending") {
        note.ascending = true;
      } else if (note.level.empty()) {
        note.level = part;
      }
    }
    if (note.level.empty()) continue;
    file.lock_notes[static_cast<int>(i) + 1] = note;
    file.lock_notes[static_cast<int>(i) + 2] = note;
  }
}

// Blanks comments and literal contents, capturing string literals and
// per-line comment text. Tracks block comments and raw string literals
// across lines; an unterminated raw string or block comment simply blanks
// through end of file (the analyzer must stay well-defined on any input).
void strip_literals(SourceFile& file) {
  enum class State { kCode, kBlockComment, kRawString };
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"
  file.code.resize(file.lines.size());
  file.comments.resize(file.lines.size());
  for (std::size_t li = 0; li < file.lines.size(); ++li) {
    const std::string& in = file.lines[li];
    std::string out(in.size(), ' ');
    std::string comment;
    for (std::size_t i = 0; i < in.size();) {
      if (state == State::kBlockComment) {
        if (in.compare(i, 2, "*/") == 0) {
          state = State::kCode;
          i += 2;
        } else {
          comment += in[i];
          ++i;
        }
        continue;
      }
      if (state == State::kRawString) {
        const std::string closer = ")" + raw_delim + "\"";
        if (in.compare(i, closer.size(), closer) == 0) {
          state = State::kCode;
          out[i + closer.size() - 1] = '"';
          i += closer.size();
        } else {
          ++i;
        }
        continue;
      }
      const char c = in[i];
      if (c == '/' && i + 1 < in.size() && in[i + 1] == '/') {
        comment += in.substr(i + 2);
        break;  // rest of line is comment
      }
      if (c == '/' && i + 1 < in.size() && in[i + 1] == '*') {
        state = State::kBlockComment;
        i += 2;
        continue;
      }
      if (c == 'R' && i + 1 < in.size() && in[i + 1] == '"' &&
          (i == 0 || !is_ident_char(in[i - 1]))) {
        const auto open = in.find('(', i + 2);
        if (open != std::string::npos) {
          raw_delim = in.substr(i + 2, open - i - 2);
          out[i] = 'R';
          out[i + 1] = '"';
          state = State::kRawString;
          i = open + 1;
          continue;
        }
      }
      if (c == '"') {
        out[i] = '"';
        const std::size_t open = i;
        ++i;
        while (i < in.size() && in[i] != '"') {
          i += (in[i] == '\\') ? 2 : 1;
        }
        if (i < in.size()) {
          out[i] = '"';
          StringLit lit;
          lit.line = static_cast<int>(li) + 1;
          lit.col = static_cast<int>(open);
          lit.text = in.substr(open + 1, i - open - 1);
          file.strings.push_back(std::move(lit));
        }
        ++i;
        continue;
      }
      if (c == '\'' && i > 0 && is_ident_char(in[i - 1])) {
        ++i;  // digit separator (1'000'000), not a char literal
        continue;
      }
      if (c == '\'') {
        out[i] = '\'';
        ++i;
        while (i < in.size() && in[i] != '\'') {
          i += (in[i] == '\\') ? 2 : 1;
        }
        if (i < in.size()) out[i] = '\'';
        ++i;
        continue;
      }
      out[i] = c;
      ++i;
    }
    file.code[li] = std::move(out);
    file.comments[li] = std::move(comment);
  }
}

void parse_includes(SourceFile& file) {
  for (std::size_t li = 0; li < file.lines.size(); ++li) {
    const std::string& line = file.lines[li];
    const auto hash = line.find_first_not_of(" \t");
    if (hash == std::string::npos || line[hash] != '#') continue;
    const auto inc = line.find("include", hash);
    if (inc == std::string::npos) continue;
    const auto open = line.find('"', inc);
    if (open == std::string::npos) continue;
    const auto close = line.find('"', open + 1);
    if (close == std::string::npos) continue;
    file.includes.emplace_back(static_cast<int>(li) + 1,
                               line.substr(open + 1, close - open - 1));
  }
}

void collect_unordered_names(SourceFile& file) {
  for (const std::string& line : file.code) {
    for (std::size_t pos = 0;;) {
      auto at = line.find("unordered_", pos);
      if (at == std::string::npos) break;
      pos = at + 1;
      if (at > 0 && is_ident_char(line[at - 1])) continue;
      std::size_t i = at;
      while (i < line.size() && is_ident_char(line[i])) ++i;
      const std::string kind = line.substr(at, i - at);
      if (kind != "unordered_map" && kind != "unordered_set" &&
          kind != "unordered_multimap" && kind != "unordered_multiset") {
        continue;
      }
      while (i < line.size() && line[i] == ' ') ++i;
      if (i >= line.size() || line[i] != '<') continue;
      i = skip_angles(line, i);
      if (i == std::string::npos) continue;
      while (i < line.size() &&
             (line[i] == ' ' || line[i] == '&' || line[i] == '*')) {
        ++i;
      }
      std::size_t name_start = i;
      while (i < line.size() && is_ident_char(line[i])) ++i;
      if (i > name_start && is_ident_start(line[name_start])) {
        file.unordered_names.insert(line.substr(name_start, i - name_start));
      }
    }
  }
}

void collect_fwd_decls(SourceFile& file) {
  for (const std::string& line : file.code) {
    for (const char* kw : {"class", "struct"}) {
      for (std::size_t pos = 0;;) {
        auto at = line.find(kw, pos);
        if (at == std::string::npos) break;
        pos = at + 1;
        const std::size_t kwlen = std::string_view(kw).size();
        if (at > 0 && is_ident_char(line[at - 1])) continue;
        if (at + kwlen >= line.size() || line[at + kwlen] != ' ') continue;
        std::size_t i = at + kwlen + 1;
        const std::size_t name_start = i;
        while (i < line.size() && is_ident_char(line[i])) ++i;
        const std::size_t name_end = i;
        while (i < line.size() && line[i] == ' ') ++i;
        if (i < line.size() && line[i] == ';' && name_end > name_start) {
          file.fwd_decls.insert(line.substr(name_start, name_end - name_start));
        }
      }
    }
  }
}

// Files that produce exported artifacts: obs snapshots, bench JSON, the
// RPC wire format. Detected by path and by the tokens those emitters use.
void detect_exporting(SourceFile& file) {
  if (file.rel.rfind("src/obs/", 0) == 0 || file.rel.rfind("bench/", 0) == 0 ||
      file.rel == "src/net/wire.h") {
    file.exporting = true;
    return;
  }
  static const std::array<const char*, 7> kMarkers = {
      "json_escape", "snapshot_json", "prometheus_text", "to_json",
      "WireWriter",  "BenchJson",     "export_json"};
  for (const std::string& line : file.code) {
    for (const char* marker : kMarkers) {
      const auto at = line.find(marker);
      if (at == std::string::npos) continue;
      const bool left_ok = at == 0 || !is_ident_char(line[at - 1]);
      const auto end = at + std::string_view(marker).size();
      const bool right_ok = end >= line.size() || !is_ident_char(line[end]);
      if (left_ok && right_ok) {
        file.exporting = true;
        return;
      }
    }
  }
}

// Scripts: the comment view is everything after an unquoted '#'; allow
// markers work there so a justified exception can sit next to its line.
void preprocess_script(SourceFile& file) {
  file.comments.resize(file.lines.size());
  for (std::size_t li = 0; li < file.lines.size(); ++li) {
    const std::string& in = file.lines[li];
    bool in_single = false;
    bool in_double = false;
    for (std::size_t i = 0; i < in.size(); ++i) {
      const char c = in[i];
      if (c == '\'' && !in_double) in_single = !in_single;
      if (c == '"' && !in_single) in_double = !in_double;
      if (c == '#' && !in_single && !in_double) {
        file.comments[li] = in.substr(i + 1);
        break;
      }
    }
  }
  parse_allow_markers(file);
}

}  // namespace

void preprocess(SourceFile& file) {
  if (file.is_script) {
    preprocess_script(file);
    return;
  }
  parse_includes(file);
  strip_literals(file);
  parse_allow_markers(file);
  parse_lock_markers(file);
  collect_unordered_names(file);
  collect_fwd_decls(file);
  detect_exporting(file);
}

std::vector<Token> tokenize(const SourceFile& file) {
  std::vector<Token> tokens;
  char prev = '\0';
  char prev2 = '\0';
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    for (std::size_t i = 0; i < line.size();) {
      const char c = line[i];
      if (c == ' ' || c == '\t') {
        ++i;
        continue;
      }
      if (is_ident_start(c)) {
        std::size_t start = i;
        while (i < line.size() && is_ident_char(line[i])) ++i;
        Token t;
        t.text = line.substr(start, i - start);
        t.line = static_cast<int>(li) + 1;
        t.prev = prev;
        t.prev2 = prev2;
        // Next significant char: rest of this line, else '\0' (a call
        // paren split across lines is rare enough to ignore).
        for (std::size_t j = i; j < line.size(); ++j) {
          if (line[j] != ' ' && line[j] != '\t') {
            t.next = line[j];
            break;
          }
        }
        prev2 = prev;
        prev = t.text.back();
        tokens.push_back(std::move(t));
        continue;
      }
      prev2 = prev;
      prev = c;
      ++i;
    }
  }
  return tokens;
}

bool is_member_access(const Token& t) {
  return t.prev == '.' || (t.prev == '>' && t.prev2 == '-');
}

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace dm::lint
