// dm_lint file model: the per-file preprocessed views every rule layer
// shares.
//
// A SourceFile carries the raw lines plus derived views built once at load
// time: a "code" view with comments and string/char literal contents
// blanked to spaces (so token matching never fires inside a literal), the
// per-line comment text (where `dm-lint: allow(...)` and `dm-lock: ...`
// markers live), the captured string literals with their positions (the
// metric/span name harvest reads these), the include list, and small
// per-file fact sets (unordered-container names, forward declarations).
//
// Script files (ci.sh) get a reduced model: raw lines plus '#' comment
// text; the C++ views stay empty and the C++ rules skip them.
#pragma once

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace dm::lint {

bool is_ident_char(char c);
bool is_ident_start(char c);

// Matches a balanced <...> starting at `pos` (which must point at '<').
// Returns the index one past the closing '>', or npos.
std::size_t skip_angles(const std::string& s, std::size_t pos);

// A string literal captured during comment/literal stripping. `line` is
// 1-based, `col` is the 0-based column of the opening quote on that line.
// Raw strings and literals spanning lines keep the position of their
// opening quote; only single-line contents are captured verbatim (the
// metric-name rules only care about single-line names).
struct StringLit {
  int line = 0;
  int col = 0;
  std::string text;
};

// `// dm-lock: order(<level>[, ascending])` annotation: names the lock
// level a callback-style acquisition takes, and optionally asserts the
// site acquires multiple locks of that level in ascending order.
struct LockAnnotation {
  std::string level;
  bool ascending = false;
};

struct SourceFile {
  std::string rel;                 // root-relative path, '/' separators
  std::string module;              // "common", "swap", ... or "tests" etc.
  bool in_src = false;
  bool is_script = false;          // ci.sh: raw lines + '#' comments only
  std::vector<std::string> lines;  // raw
  std::vector<std::string> code;   // literals/comments blanked
  std::vector<std::string> comments;              // comment text per line
  std::vector<StringLit> strings;                 // captured literals
  std::vector<std::pair<int, std::string>> includes;  // (line, quoted path)
  // rule -> lines on which the rule is explicitly allowed
  std::map<std::string, std::set<int>> allow;
  // line -> lock annotation covering it (a marker covers its own line and
  // the line below, mirroring allow()).
  std::map<int, LockAnnotation> lock_notes;
  std::set<std::string> unordered_names;  // vars/accessors of unordered type
  std::set<std::string> fwd_decls;        // `class X;` / `struct X;`
  bool exporting = false;  // produces exported artifacts (JSON, wire, ...)
};

// "src/common/status.h" -> "common"; "tests/foo.cc" -> "tests"; "ci.sh"
// -> "".
std::string module_of(const std::string& rel);

// Builds every derived view on `file` from file.lines (which must already
// be populated, with trailing '\r' stripped). For scripts only the comment
// view and markers are built.
void preprocess(SourceFile& file);

// One identifier token from the code view, with enough neighbor context to
// tell calls from member accesses.
struct Token {
  std::string text;
  int line = 0;       // 1-based
  char prev = '\0';   // previous significant char ('\0' at start)
  char prev2 = '\0';  // the one before that (detects "->")
  char next = '\0';   // next significant char
};

std::vector<Token> tokenize(const SourceFile& file);

bool is_member_access(const Token& t);

// RFC 8259 escaping, mirroring bench_util.h so lint JSON and bench JSON
// obey the same conventions.
std::string json_escape(const std::string& raw);

}  // namespace dm::lint
