// dm_top — cluster observability console for the simulated DM system.
//
// Builds a seeded cluster, drives a mixed put/get workload across every
// node, and renders the operator view assembled by the MetricsHub: a
// per-node table of tier hits and access-latency percentiles, the RPC
// round-trip summary, and (on request) the raw machine-readable exports.
//
// Usage:
//   dm_top [--nodes N] [--servers-per-node N] [--ops N] [--seed S]
//          [--json] [--prom] [--trace-out FILE] [--flight-dir DIR]
//          [--slo SPEC]... [--chaos]
//
// --json / --prom dump the merged snapshot in JSON / Prometheus text
// exposition format instead of the table (both are deterministic for a
// fixed seed, so they diff cleanly across runs).
//
// Diagnosis mode (see README "Diagnosing a slow fault"):
//   --trace-out FILE   attach a causal span tracer and write the Chrome
//                      trace-event JSON (load in Perfetto / about:tracing);
//                      also prints the slowest trace's critical path.
//   --flight-dir DIR   keep per-node flight-recorder rings and dump
//                      flight_<node>.json into DIR at exit (and at every
//                      injected fault when --chaos is on).
//   --slo SPEC         evaluate a declarative SLO (repeatable), e.g.
//                      "p99 rpc.rtt < 40us over 200ms"; alerts print on
//                      exit and the process exits 1 if any page fired.
//   --chaos            crash a node mid-workload (with recovery), so the
//                      fault machinery above has something to show.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/dm_system.h"
#include "core/ldmc.h"
#include "core/node_service.h"
#include "obs/flight_recorder.h"
#include "obs/slo.h"
#include "obs/span.h"
#include "sim/chaos_schedule.h"
#include "sim/failure_injector.h"

namespace {

using namespace dm;

struct Options {
  std::size_t nodes = 4;
  std::size_t servers_per_node = 1;
  std::uint64_t ops = 400;
  std::uint64_t seed = 42;
  bool json = false;
  bool prom = false;
  std::string trace_out;
  std::string flight_dir;
  std::vector<std::string> slos;
  bool chaos = false;
};

std::uint64_t parse_u64(const char* s, const char* flag) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "dm_top: bad value for %s: %s\n", flag, s);
    std::exit(2);
  }
  return v;
}

Options parse(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dm_top: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--nodes") == 0) {
      opt.nodes = parse_u64(next("--nodes"), "--nodes");
    } else if (std::strcmp(argv[i], "--servers-per-node") == 0) {
      opt.servers_per_node =
          parse_u64(next("--servers-per-node"), "--servers-per-node");
    } else if (std::strcmp(argv[i], "--ops") == 0) {
      opt.ops = parse_u64(next("--ops"), "--ops");
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opt.seed = parse_u64(next("--seed"), "--seed");
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opt.json = true;
    } else if (std::strcmp(argv[i], "--prom") == 0) {
      opt.prom = true;
    } else if (std::strcmp(argv[i], "--trace-out") == 0) {
      opt.trace_out = next("--trace-out");
    } else if (std::strcmp(argv[i], "--flight-dir") == 0) {
      opt.flight_dir = next("--flight-dir");
    } else if (std::strcmp(argv[i], "--slo") == 0) {
      opt.slos.emplace_back(next("--slo"));
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      opt.chaos = true;
    } else {
      std::fprintf(stderr,
                   "usage: dm_top [--nodes N] [--servers-per-node N] "
                   "[--ops N] [--seed S] [--json] [--prom] "
                   "[--trace-out FILE] [--flight-dir DIR] [--slo SPEC]... "
                   "[--chaos]\n");
      std::exit(2);
    }
  }
  return opt;
}

std::string ns_str(std::uint64_t ns) {
  char buf[32];
  if (ns >= 1000000)
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(ns) / 1e6);
  else if (ns >= 1000)
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  else
    std::snprintf(buf, sizeof(buf), "%lluns",
                  static_cast<unsigned long long>(ns));
  return buf;
}

// One "top" frame: per node, tier-hit counters and get-latency
// percentiles pulled from the merged hub snapshot.
void render_table(core::DmSystem& system) {
  const MetricsRegistry merged = system.hub().merged();
  std::printf("t=%.3fms  sources=%zu  scrapes=%llu\n",
              static_cast<double>(system.simulator().now()) / 1e6,
              system.hub().source_count(),
              static_cast<unsigned long long>(system.hub().scrape_count()));
  std::printf(
      "%-5s %9s %9s %9s %9s | %-21s %-21s %-21s\n", "node", "put:shm",
      "remote", "disk", "nvm", "get shm p50/p99", "get remote p50/p99",
      "get disk p50/p99");
  for (std::size_t i = 0; i < system.node_count(); ++i) {
    const std::string p = "node." + std::to_string(system.node(i).id());
    auto counter = [&](const char* name) {
      return merged.counter_value(p + "." + name);
    };
    auto quantiles = [&](const char* tier) {
      const Histogram* h =
          merged.find_histogram(p + ".ldms.get_ns." + tier);
      if (h == nullptr || h->count() == 0) return std::string("-");
      return ns_str(h->p50()) + "/" + ns_str(h->p99());
    };
    std::printf("%-5u %9llu %9llu %9llu %9llu | %-21s %-21s %-21s\n",
                system.node(i).id(),
                static_cast<unsigned long long>(counter("ldms.put_shm")),
                static_cast<unsigned long long>(counter("ldms.put_remote")),
                static_cast<unsigned long long>(counter("ldms.put_disk")),
                static_cast<unsigned long long>(counter("ldms.put_nvm")),
                quantiles("shm").c_str(), quantiles("remote").c_str(),
                quantiles("disk").c_str());
  }
  // Cluster-wide RPC round-trips, one row per labeled method.
  std::printf("\nrpc round-trips (all nodes):\n");
  bool any = false;
  for (const auto& [name, h] : merged.histograms()) {
    const auto pos = name.find(".rpc.rtt.");
    if (pos == std::string::npos || h.count() == 0) continue;
    // Aggregate across nodes by method label.
    any = true;
  }
  if (any) {
    // Merge per-node histograms by method label for a compact summary.
    std::map<std::string, Histogram> by_method;
    for (const auto& [name, h] : merged.histograms()) {
      const auto pos = name.find(".rpc.rtt.");
      if (pos == std::string::npos) continue;
      by_method[name.substr(pos + 9)].merge(h);
    }
    for (const auto& [method, h] : by_method) {
      if (h.count() == 0) continue;
      std::printf("  %-18s calls=%-8llu p50=%-10s p99=%-10s max=%s\n",
                  method.c_str(),
                  static_cast<unsigned long long>(h.count()),
                  ns_str(h.p50()).c_str(), ns_str(h.p99()).c_str(),
                  ns_str(h.max()).c_str());
    }
  } else {
    std::printf("  (none recorded)\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse(argc, argv);

  core::DmSystem::Config config;
  config.node_count = opt.nodes;
  // Small shm arena so the default workload spills across tiers and the
  // table shows remote/disk traffic, not just shm hits.
  config.node.shm.arena_bytes = 256 * KiB;
  config.node.recv.arena_bytes = 16 * MiB;
  config.node.disk.capacity_bytes = 64 * MiB;
  config.seed = opt.seed;
  core::DmSystem system(config);
  system.start();

  // Diagnosis instrumentation (all optional; absent flags leave the run
  // byte-identical to an uninstrumented one).
  const bool want_spans = !opt.trace_out.empty() || !opt.flight_dir.empty();
  std::unique_ptr<obs::SpanTracer> tracer;
  std::unique_ptr<obs::FlightRecorder> flight;
  if (want_spans) {
    tracer = std::make_unique<obs::SpanTracer>(system.simulator());
    if (!opt.flight_dir.empty()) {
      flight = std::make_unique<obs::FlightRecorder>(system.simulator());
      tracer->set_flight_recorder(flight.get());
    }
    system.set_span_sink(tracer.get());
  }
  std::unique_ptr<obs::SloMonitor> slo;
  if (!opt.slos.empty()) {
    slo = std::make_unique<obs::SloMonitor>(system.simulator(),
                                            system.hub());
    for (const std::string& spec : opt.slos) {
      const Status added = slo->add_spec(spec);
      if (!added.ok()) {
        std::fprintf(stderr, "dm_top: bad --slo spec \"%s\": %s\n",
                     spec.c_str(), added.to_string().c_str());
        return 2;
      }
    }
    slo->start();
  }
  std::unique_ptr<sim::ChaosSchedule> chaos;
  if (opt.chaos) {
    if (flight != nullptr) {
      // Crash-time dump: snapshot every ring the moment the fault fires,
      // before repair traffic overwrites the recent history.
      system.failures().set_fault_listener([&](std::string_view label) {
        (void)flight->dump_all(opt.flight_dir, std::string(label));
      });
    }
    sim::ChaosSchedule::Hooks hooks;
    hooks.crash_node = [&](sim::ChaosSchedule::NodeRef n) {
      system.crash_node(n);
    };
    hooks.recover_node = [&](sim::ChaosSchedule::NodeRef n) {
      system.recover_node(n);
    };
    chaos = std::make_unique<sim::ChaosSchedule>(system.failures(),
                                                 std::move(hooks));
    // One mid-workload crash of the last node, healed shortly after.
    chaos->crash(50 * kMilli, static_cast<sim::ChaosSchedule::NodeRef>(
                                  system.node(opt.nodes - 1).id()),
                 100 * kMilli);
  }

  // One server per node; a mixed shm/remote split (paper's FS-1:1 point)
  // so both the shm and remote tier columns move.
  core::LdmcOptions mixed;
  mixed.shm_fraction = 0.5;
  std::vector<core::Ldmc*> clients;
  for (std::size_t n = 0; n < opt.nodes; ++n)
    for (std::size_t s = 0; s < opt.servers_per_node; ++s)
      clients.push_back(&system.create_server(n, 8 * MiB, mixed));

  Rng rng(mix64(opt.seed ^ 0x70D0ULL));
  std::vector<std::byte> page(4096);
  std::vector<std::byte> out(4096);
  for (std::uint64_t op = 0; op < opt.ops; ++op) {
    auto& client = *clients[op % clients.size()];
    const mem::EntryId entry = op / clients.size();
    for (auto& b : page)
      b = static_cast<std::byte>(rng.next_below(256));
    if (!client.put_sync(entry, page).ok()) continue;
    if (op % 3 == 0) (void)client.get_sync(entry, out);
  }
  system.run_for(100 * kMilli);  // let scrapes/heartbeats settle

  int exit_code = 0;
  if (tracer != nullptr && !opt.trace_out.empty()) {
    std::ofstream file(opt.trace_out,
                       std::ios::binary | std::ios::trunc);
    if (!file) {
      std::fprintf(stderr, "dm_top: cannot write %s\n",
                   opt.trace_out.c_str());
      return 2;
    }
    file << tracer->chrome_trace_json();
  }
  if (flight != nullptr) {
    // Explicit operator request: dump every ring as it stands at exit.
    (void)flight->dump_all(opt.flight_dir, "dm_top");
  }
  if (slo != nullptr) {
    const std::string alerts = slo->alerts_text();
    std::printf("\nslo alerts (%zu):\n%s", slo->alerts().size(),
                alerts.empty() ? "  (none)\n" : alerts.c_str());
    for (const auto& alert : slo->alerts())
      if (alert.page) exit_code = 1;
  }

  if (opt.json) {
    std::fputs(system.hub().snapshot_json().c_str(), stdout);
    return exit_code;
  }
  if (opt.prom) {
    std::fputs(system.hub().prometheus_text().c_str(), stdout);
    return exit_code;
  }
  render_table(system);

  if (tracer != nullptr) {
    // Critical path of the slowest completed trace: where did the virtual
    // time actually go? (The same accounting the profiler aggregates.)
    std::uint64_t slowest_trace = 0;
    obs::SpanTracer::Breakdown slowest;
    for (std::uint64_t trace : tracer->completed_traces()) {
      obs::SpanTracer::Breakdown b = tracer->breakdown(trace);
      if (slowest_trace == 0 || b.total > slowest.total) {
        slowest_trace = trace;
        slowest = std::move(b);
      }
    }
    if (slowest_trace != 0) {
      const auto* spans = tracer->spans(slowest_trace);
      const std::string root =
          spans != nullptr && !spans->empty() ? (*spans)[0].name : "?";
      std::printf("\nslowest trace %s (%s, %s total), critical path:\n",
                  obs::span_trace_label(slowest_trace).c_str(),
                  root.c_str(),
                  ns_str(static_cast<std::uint64_t>(slowest.total)).c_str());
      for (const auto& [subsystem, ns] : slowest.by_subsystem)
        std::printf("  %-10s %s\n", subsystem.c_str(),
                    ns_str(static_cast<std::uint64_t>(ns)).c_str());
    }
  }
  return exit_code;
}
