// dm_lint CLI: run the project invariant checks over the tree.
//
//   dm_lint [--json] [--metric-registry] [--root DIR]
//           [--no-default-skips] [path...]
//
// With no paths, scans {src, bench, tests, tools, examples} plus ci.sh
// under --root (default "."), skipping the seeded-violation fixture tree
// and build directories. Output is sorted by (file, line, rule) and
// byte-stable across runs; --json emits the same findings in the
// schema_version 2 machine-readable format (rule catalog included).
// --metric-registry prints the generated metric/span name registry for
// the scanned tree instead of findings and always exits 0.
// Exit status: 0 clean, 1 findings, 2 usage error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dm_lint_core.h"

int main(int argc, char** argv) {
  dm::lint::Options options;
  bool json = false;
  bool registry = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--metric-registry") == 0) {
      registry = true;
    } else if (std::strcmp(arg, "--root") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dm_lint: --root needs a directory\n");
        return 2;
      }
      options.root = argv[++i];
    } else if (std::strcmp(arg, "--no-default-skips") == 0) {
      options.use_default_skips = false;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: dm_lint [--json] [--metric-registry] [--root DIR] "
          "[--no-default-skips] [path...]\n");
      return 0;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "dm_lint: unknown flag '%s'\n", arg);
      return 2;
    } else {
      options.paths.emplace_back(arg);
    }
  }

  const dm::lint::RunResult result = dm::lint::run_full(options);
  if (registry) {
    std::fputs(result.metric_registry.c_str(), stdout);
    return 0;
  }
  if (json) {
    std::fputs(dm::lint::to_json(result.diagnostics).c_str(), stdout);
  } else {
    std::fputs(dm::lint::to_text(result.diagnostics).c_str(), stdout);
    std::fprintf(stderr, "dm_lint: %zu finding%s\n",
                 result.diagnostics.size(),
                 result.diagnostics.size() == 1 ? "" : "s");
  }
  return result.diagnostics.empty() ? 0 : 1;
}
