// dm_lint CLI: run the project invariant checks over the tree.
//
//   dm_lint [--json] [--root DIR] [--no-default-skips] [path...]
//
// With no paths, scans {src, bench, tests, tools, examples} under --root
// (default "."), skipping the seeded-violation fixture tree and build
// directories. Output is sorted by (file, line, rule) and byte-stable
// across runs; --json emits the same findings in the machine-readable
// format the bench snapshots use. Exit status: 0 clean, 1 findings,
// 2 usage error.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dm_lint_core.h"

int main(int argc, char** argv) {
  dm::lint::Options options;
  bool json = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--json") == 0) {
      json = true;
    } else if (std::strcmp(arg, "--root") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "dm_lint: --root needs a directory\n");
        return 2;
      }
      options.root = argv[++i];
    } else if (std::strcmp(arg, "--no-default-skips") == 0) {
      options.use_default_skips = false;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::printf(
          "usage: dm_lint [--json] [--root DIR] [--no-default-skips] "
          "[path...]\n");
      return 0;
    } else if (arg[0] == '-') {
      std::fprintf(stderr, "dm_lint: unknown flag '%s'\n", arg);
      return 2;
    } else {
      options.paths.emplace_back(arg);
    }
  }

  const std::vector<dm::lint::Diagnostic> diags = dm::lint::run(options);
  if (json) {
    std::fputs(dm::lint::to_json(diags).c_str(), stdout);
  } else {
    std::fputs(dm::lint::to_text(diags).c_str(), stdout);
    std::fprintf(stderr, "dm_lint: %zu finding%s\n", diags.size(),
                 diags.size() == 1 ? "" : "s");
  }
  return diags.empty() ? 0 : 1;
}
