// dm_lint flow & protocol rules: the analyses that need the statement/CFG
// engine (dm_lint_engine.h) or cross-file protocol state.
//
//  * lock-order      — every lock acquisition site (CxlDirectory::lock /
//    lock_range callbacks, std::mutex / lock_guard / scoped_lock) is given
//    a level: the `// dm-lock: order(<level>[, ascending])` annotation
//    when present, else `<module>.<variable>`. Acquiring B while lexically
//    holding A adds edge A -> B to a global lock-order graph; any edge
//    that closes a cycle is a finding. Callback-style acquisition without
//    an annotation is a finding (the held region is the callback body, so
//    the level cannot be inferred reliably). A site annotated `ascending`
//    may take many locks of one level but must be provably ascending: its
//    index argument is `v` or `base + v` and the enclosing function
//    increments v (`v + 1`, `++v`, `v++`, `v += 1`). The analysis is
//    lexical and intra-procedural: locks taken by callees are invisible,
//    which is exactly why multi-lock loops carry the ascending annotation.
//  * rpc-contract    — every `kRpc*` enumerator declared with a value must
//    have all three protocol legs somewhere in the scanned tree: a
//    label_method registration (which names its rpc.rtt.<label> metric),
//    a handle() dispatch registration, and a call() site. A method with a
//    missing leg is dead or unobservable protocol surface.
//  * metric-contract — metric/span name literals are harvested at the
//    known emission calls (counter(, histogram(, begin_span(, SpanScope)
//    into a registry; a name emitted as both counter and histogram is a
//    collision, a name violating the lowercase dotted convention is a
//    finding, and a read site (counter_value(, find_histogram(,
//    total_counter() or a metric-shaped token in ci.sh gate specs that
//    resolves to no emitted name (exact, or under an emitted prefix like
//    "rpc.rtt.", with up to two hub components stripped) is an orphan.
//  * branch-sensitive status/span — a Status/StatusOr bound by a local
//    declaration must be consumed on every path to the function exit; a
//    raw begin_span must have an end_span on every path (a completion
//    callback inside the same statement counts). Both use the per-function
//    CFG, so an early return that skips the check/close is caught.
//
// The global rules (cycle/contract checks) only run on full-tree scans;
// path-restricted scans would see half a protocol and report nonsense.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "dm_lint_engine.h"
#include "dm_lint_model.h"

namespace dm::lint {

// Findings are routed through the driver so allow() markers apply.
using Reporter =
    std::function<void(const SourceFile&, int, const char*, std::string)>;

// Statement tree + function units, built once per file by the driver.
struct FileAnalysis {
  std::vector<StmtNode> tree;
  std::vector<FunctionUnit> functions;
};

FileAnalysis analyze_file(const SourceFile& file);

// ---------------------------------------------------------------------------
// Branch-sensitive rules (per file).
// ---------------------------------------------------------------------------
void check_status_branches(const SourceFile& file, const FileAnalysis& fa,
                           const std::set<std::string>& status_names,
                           const Reporter& report);

void check_span_flow(const SourceFile& file, const FileAnalysis& fa,
                     const Reporter& report);

// ---------------------------------------------------------------------------
// Lock order.
// ---------------------------------------------------------------------------
struct LockGraph {
  struct Site {
    const SourceFile* file = nullptr;
    int line = 0;
  };
  // (held level, acquired level) -> first site that created the edge.
  std::map<std::pair<std::string, std::string>, Site> edges;
};

// Extracts this file's acquisition sites into `graph` and reports the
// per-site findings (unannotated callback acquisition, unprovable
// ascending range lock).
void collect_lock_order(const SourceFile& file, const FileAnalysis& fa,
                        LockGraph* graph, const Reporter& report);

// Reports every edge that closes a cycle, at the edge's site.
void check_lock_cycles(const LockGraph& graph, const Reporter& report);

// ---------------------------------------------------------------------------
// RPC contract.
// ---------------------------------------------------------------------------
struct RpcContract {
  struct Decl {
    const SourceFile* file = nullptr;
    int line = 0;
  };
  std::map<std::string, Decl> decls;  // kRpcX -> enumerator site
  std::set<std::string> labeled;      // has a label_method leg
  std::set<std::string> handled;      // has a handle() dispatch leg
  std::set<std::string> called;       // has a call() site
};

void collect_rpc_contract(const SourceFile& file, const FileAnalysis& fa,
                          RpcContract* state);
void check_rpc_contract(const RpcContract& state, const Reporter& report);

// ---------------------------------------------------------------------------
// Metric contract + generated registry.
// ---------------------------------------------------------------------------
struct MetricContract {
  struct Site {
    const SourceFile* file = nullptr;
    int line = 0;
  };
  struct Emission {
    Site site;
    std::string kind;  // "counter" | "histogram" | "span"
    bool universe = false;  // src/ | tools/ | bench/ (tests are ad hoc)
  };
  std::map<std::string, std::vector<Emission>> names;     // full names
  std::map<std::string, std::vector<Emission>> prefixes;  // "rpc.rtt." ...
  std::vector<std::pair<std::string, Site>> reads;
  // Metric-shaped tokens from scripts (ci.sh gate specs); filtered against
  // first_components at check time, once the whole tree is collected.
  std::vector<std::pair<std::string, Site>> script_reads;
  std::set<std::string> first_components;  // of universe emissions
};

// Harvests emissions/reads; reports convention violations at emission
// sites (universe files only). Handles both C++ files and ci.sh.
void collect_metric_contract(const SourceFile& file, const FileAnalysis& fa,
                             MetricContract* state, const Reporter& report);
// Reports counter/histogram collisions and orphaned reads.
void check_metric_contract(const MetricContract& state,
                           const Reporter& report);
// The generated registry: every universe metric/prefix/span name with its
// kind and first emission site, sorted, as schema_version 2 JSON.
std::string metric_registry_json(const MetricContract& state);

}  // namespace dm::lint
