#include "dm_lint_core.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <string_view>
#include <tuple>
#include <utility>

#include "dm_lint_engine.h"
#include "dm_lint_flow.h"
#include "dm_lint_model.h"

namespace dm::lint {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Layering table: transitive closure of the CMake link graph. A module may
// include itself and anything in its set. Unknown src/ modules are an error
// so a new subsystem has to be placed in the DAG deliberately.
// ---------------------------------------------------------------------------
const std::map<std::string, std::set<std::string>>& layer_table() {
  static const std::map<std::string, std::set<std::string>> kTable = [] {
    std::map<std::string, std::set<std::string>> t;
    t["common"] = {};
    t["sim"] = {"common"};
    t["obs"] = {"sim", "common"};
    t["net"] = {"sim", "common"};
    t["storage"] = {"sim", "common"};
    t["compress"] = {"common"};
    t["ec"] = {"common"};
    t["mem"] = {"net", "sim", "common"};
    t["cxl"] = {"net", "sim", "common"};
    t["cluster"] = {"mem", "net", "storage", "sim", "common"};
    t["core"] = {"cluster", "cxl", "ec", "mem", "net", "storage", "obs",
                 "sim", "common"};
    t["swap"] = t["core"];
    t["swap"].insert({"core", "compress"});
    t["kvstore"] = t["swap"];
    t["kvstore"].erase("compress");
    t["rddcache"] = t["kvstore"];
    t["workloads"] = t["swap"];
    t["workloads"].insert("swap");
    for (auto& [name, deps] : t) deps.insert(name);
    return t;
  }();
  return kTable;
}

// ---------------------------------------------------------------------------
// include-direct token map: distinctive project names -> owning header.
// A file whose code names one of these must include the header directly
// (IWYU-lite); transitive pulls rot when intermediate headers slim down.
// ---------------------------------------------------------------------------
const std::map<std::string, std::string>& owner_table() {
  static const std::map<std::string, std::string> kOwners = {
      {"Status", "common/status.h"},
      {"StatusOr", "common/status.h"},
      {"StatusCode", "common/status.h"},
      {"SimTime", "common/units.h"},
      {"MetricsRegistry", "common/metrics.h"},
      {"Histogram", "common/histogram.h"},
      {"Rng", "common/rng.h"},
      {"ZipfGenerator", "common/rng.h"},
      {"LruTracker", "common/lru.h"},
      {"Logger", "common/logging.h"},
      {"fnv1a", "common/checksum.h"},
      {"Simulator", "sim/simulator.h"},
      {"Tracer", "sim/trace.h"},
      {"FailureInjector", "sim/failure_injector.h"},
      {"ChaosSchedule", "sim/chaos_schedule.h"},
      {"LatencyModel", "sim/latency_model.h"},
      {"WireReader", "net/wire.h"},
      {"WireWriter", "net/wire.h"},
      {"Fabric", "net/fabric.h"},
      {"RpcEndpoint", "net/rpc.h"},
      {"RetryPolicy", "net/retry_policy.h"},
      {"ConnectionManager", "net/connection_manager.h"},
      {"BlockDevice", "storage/block_device.h"},
      {"SwapExtentAllocator", "storage/block_device.h"},
      {"SlabAllocator", "mem/slab_allocator.h"},
      {"BufferPool", "mem/buffer_pool.h"},
      {"SharedMemoryPool", "mem/shared_memory_pool.h"},
      {"MemoryMap", "mem/memory_map.h"},
      {"EntryLocation", "mem/memory_map.h"},
      {"RemoteReplica", "mem/memory_map.h"},
      {"RsCodec", "ec/rs_codec.h"},
      {"gf_mul_add", "ec/gf256.h"},
      {"CxlDirectory", "cxl/coherence.h"},
      {"CxlAgent", "cxl/coherence.h"},
      {"LineState", "cxl/coherence.h"},
      {"CxlPageTier", "cxl/page_tier.h"},
      {"PlacementPolicy", "cluster/placement.h"},
      {"PlacementPolicyKind", "cluster/placement.h"},
      {"Harvester", "cluster/harvester.h"},
      {"NodeLoad", "cluster/harvester.h"},
      {"HarvestAction", "cluster/harvester.h"},
      {"ScenarioEngine", "sim/scenario.h"},
      {"Membership", "cluster/membership.h"},
      {"GroupDirectory", "cluster/group.h"},
      {"LeaderElection", "cluster/group.h"},
      {"VirtualServer", "cluster/virtual_server.h"},
      {"Ldmc", "core/ldmc.h"},
      {"Rdmc", "core/rdmc.h"},
      {"Rdms", "core/rdms.h"},
      {"NodeService", "core/node_service.h"},
      {"LdmcOptions", "core/node_service.h"},
      {"DmSystem", "core/dm_system.h"},
      {"RepairService", "core/repair_service.h"},
      {"PageCompressor", "compress/page_compressor.h"},
      {"CompressedPage", "compress/page_compressor.h"},
      {"SwapManager", "swap/swap_manager.h"},
      {"PatternTracker", "swap/pattern_tracker.h"},
      {"AdaptiveWindow", "swap/pattern_tracker.h"},
      {"SystemSetup", "swap/systems.h"},
      {"SystemKind", "swap/systems.h"},
      {"ZswapCache", "swap/zswap_cache.h"},
      {"KvStore", "kvstore/kv_store.h"},
      {"SpanSink", "sim/span_sink.h"},
      {"SpanScope", "sim/span_sink.h"},
      {"SpanTracer", "obs/span.h"},
      {"FlightRecorder", "obs/flight_recorder.h"},
      {"SloMonitor", "obs/slo.h"},
      {"Profiler", "obs/profiler.h"},
      {"MetricsHub", "obs/metrics_hub.h"},
      {"MiniSpark", "rddcache/mini_spark.h"},
      {"AppSpec", "workloads/app_catalog.h"},
  };
  return kOwners;
}

// Determinism token sets. Function-like names are only flagged when called
// (next significant char '('; not a member access), type-like names on any
// use.
const std::set<std::string>& banned_rand_calls() {
  static const std::set<std::string> k = {"rand", "srand", "rand_r",
                                          "drand48", "lrand48", "srandom"};
  return k;
}
const std::set<std::string>& banned_rand_types() {
  static const std::set<std::string> k = {
      "random_device", "mt19937",      "mt19937_64",
      "minstd_rand",   "minstd_rand0", "default_random_engine",
      "ranlux24",      "ranlux48",     "knuth_b"};
  return k;
}
const std::set<std::string>& banned_clock_calls() {
  static const std::set<std::string> k = {
      "time",      "clock",     "gettimeofday", "clock_gettime",
      "localtime", "gmtime",    "mktime",       "strftime",
      "timespec_get"};
  return k;
}
const std::set<std::string>& banned_clock_types() {
  static const std::set<std::string> k = {"system_clock", "steady_clock",
                                          "high_resolution_clock"};
  return k;
}
const std::set<std::string>& banned_env_calls() {
  static const std::set<std::string> k = {"getenv", "secure_getenv", "setenv",
                                          "putenv", "unsetenv"};
  return k;
}

// ---------------------------------------------------------------------------
// Statement reconstruction for the bare-call status-discard check: split
// the code view into `...;` statements at paren depth 0, flushing on braces
// so lambda and function bodies are analyzed as their own statements. (The
// branch-sensitive variant lives in dm_lint_flow.cc on the real statement
// tree; this splitter stays for the cheap unbound-call scan.)
// ---------------------------------------------------------------------------
struct Statement {
  std::string text;
  int line = 0;  // line of the statement's first character
};

std::vector<Statement> split_statements(const SourceFile& file) {
  std::vector<Statement> statements;
  std::string current;
  int start_line = 0;
  int depth = 0;
  auto flush = [&](bool terminated) {
    if (terminated && !current.empty()) {
      statements.push_back({current, start_line});
    }
    current.clear();
    depth = 0;
  };
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    for (char c : line) {
      if (c == '{' || c == '}') {
        flush(false);
        continue;
      }
      if (c == '(' || c == '[') ++depth;
      if (c == ')' || c == ']') --depth;
      if (c == ';' && depth <= 0) {
        flush(true);
        continue;
      }
      if (current.empty()) {
        if (c == ' ' || c == '\t') continue;
        start_line = static_cast<int>(li) + 1;
      }
      current += c;
    }
    if (!current.empty()) current += ' ';
  }
  return statements;
}

bool starts_with_keyword(const std::string& s) {
  static const std::set<std::string> kKeywords = {
      "return",   "if",      "for",     "while",   "do",      "switch",
      "case",     "else",    "break",   "continue", "using",  "typedef",
      "template", "namespace", "class", "struct",  "enum",    "public",
      "private",  "protected", "static_assert", "throw", "delete", "new",
      "co_return", "co_await", "goto",  "default", "friend",  "extern",
      "constexpr", "inline",  "static", "virtual", "explicit", "operator"};
  std::size_t i = 0;
  while (i < s.size() && is_ident_char(s[i])) ++i;
  return kKeywords.count(s.substr(0, i)) > 0;
}

// ---------------------------------------------------------------------------
// Declared Status/StatusOr-returning function names (the status-discard
// vocabulary). Names that also appear with a void declaration anywhere are
// dropped: callback-style overloads (e.g. an async void read() beside a
// sync Status read()) would otherwise false-positive.
// ---------------------------------------------------------------------------
void collect_status_decls(const SourceFile& file,
                          std::set<std::string>* status_names,
                          std::set<std::string>* void_names) {
  for (const std::string& line : file.code) {
    for (std::size_t pos = 0;;) {
      auto at = line.find("Status", pos);
      auto vat = line.find("void", pos);
      const bool is_void = vat != std::string::npos &&
                           (at == std::string::npos || vat < at);
      if (is_void) at = vat;
      if (at == std::string::npos) break;
      const std::size_t kwlen = is_void ? 4 : 6;
      pos = at + 1;
      if (at > 0 && is_ident_char(line[at - 1])) continue;
      std::size_t i = at + kwlen;
      if (!is_void) {
        // Status, StatusOr<...>, StatusCode (the latter is not a
        // must-consume vocabulary type).
        if (i + 1 < line.size() && line.compare(i, 2, "Or") == 0) {
          i += 2;
          while (i < line.size() && line[i] == ' ') ++i;
          if (i >= line.size() || line[i] != '<') continue;
          i = skip_angles(line, i);
          if (i == std::string::npos) continue;
        } else if (i < line.size() && is_ident_char(line[i])) {
          continue;  // StatusCode, StatusXyz
        }
      } else if (i < line.size() && is_ident_char(line[i])) {
        continue;
      }
      while (i < line.size() && (line[i] == ' ' || line[i] == '&')) ++i;
      std::size_t name_start = i;
      while (i < line.size() && is_ident_char(line[i])) ++i;
      if (i == name_start || !is_ident_start(line[name_start])) continue;
      while (i < line.size() && line[i] == ' ') ++i;
      if (i >= line.size() || line[i] != '(') continue;
      const std::string name = line.substr(name_start, i - name_start);
      if (name == "operator") continue;
      (is_void ? void_names : status_names)->insert(name);
    }
  }
}

// ---------------------------------------------------------------------------
// Diagnostics plumbing.
// ---------------------------------------------------------------------------
class Analyzer {
 public:
  explicit Analyzer(const Options& options) : options_(options) {}

  RunResult run();

 private:
  void load_tree();
  void load_file(const fs::path& path, const std::string& rel);
  void check_determinism(const SourceFile& file);
  void check_unordered_iteration(const SourceFile& file);
  void check_layering(const SourceFile& file);
  void check_status_discard(const SourceFile& file);
  void check_include_direct(const SourceFile& file);
  void report(const SourceFile& file, int line, const char* rule,
              std::string message);

  const Options& options_;
  std::vector<SourceFile> files_;
  std::set<std::string> status_names_;
  std::map<std::string, const SourceFile*> by_rel_;
  std::vector<Diagnostic> diags_;
};

void Analyzer::report(const SourceFile& file, int line, const char* rule,
                      std::string message) {
  auto allowed = [&](const char* r) {
    auto it = file.allow.find(r);
    return it != file.allow.end() && it->second.count(line) > 0;
  };
  if (allowed(rule) || allowed("all")) return;
  diags_.push_back({file.rel, line, rule, std::move(message)});
}

void Analyzer::load_file(const fs::path& path, const std::string& rel) {
  std::ifstream in(path);
  if (!in) return;
  SourceFile file;
  file.rel = rel;
  file.module = module_of(rel);
  file.in_src = rel.rfind("src/", 0) == 0;
  file.is_script = rel.size() > 3 && rel.compare(rel.size() - 3, 3, ".sh") == 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    file.lines.push_back(line);
  }
  preprocess(file);
  files_.push_back(std::move(file));
}

void Analyzer::load_tree() {
  std::vector<std::string> roots = options_.paths;
  if (roots.empty()) {
    // ci.sh rides along so the metric-contract rule can check its gate
    // specs (SLO strings, coverage greps) against the emitted names.
    roots = {"src", "bench", "tests", "tools", "examples", "ci.sh"};
  }
  std::vector<std::string> skips = options_.skip;
  if (options_.use_default_skips) {
    skips.emplace_back("lint_fixtures");
    skips.emplace_back("build");
  }
  const fs::path base(options_.root);
  std::vector<fs::path> candidates;
  for (const std::string& root : roots) {
    const fs::path p = fs::path(root).is_absolute() ? fs::path(root)
                                                    : base / root;
    std::error_code ec;
    if (fs::is_regular_file(p, ec)) {
      candidates.push_back(p);
    } else if (fs::is_directory(p, ec)) {
      for (auto it = fs::recursive_directory_iterator(p, ec);
           it != fs::recursive_directory_iterator(); it.increment(ec)) {
        if (!it->is_regular_file(ec)) continue;
        const auto ext = it->path().extension().string();
        if (ext == ".h" || ext == ".cc") candidates.push_back(it->path());
      }
    }
  }
  for (const fs::path& p : candidates) {
    std::error_code ec;
    std::string rel = fs::relative(p, base, ec).generic_string();
    if (ec || rel.empty() || rel.rfind("..", 0) == 0) {
      rel = p.generic_string();
    }
    const bool skipped =
        std::any_of(skips.begin(), skips.end(), [&](const std::string& s) {
          return rel.find(s) != std::string::npos;
        });
    if (!skipped) load_file(p, rel);
  }
  std::sort(files_.begin(), files_.end(),
            [](const SourceFile& a, const SourceFile& b) {
              return a.rel < b.rel;
            });
}

void Analyzer::check_determinism(const SourceFile& file) {
  // The simulator layer is the one place virtual time and seeded
  // randomness are minted, so it is exempt from the source bans (its own
  // hygiene is covered by review and the escape-hatch comments elsewhere).
  if (file.rel.rfind("src/sim/", 0) == 0) return;
  for (const Token& t : tokenize(file)) {
    if (is_member_access(t)) continue;  // sim.time(), cfg.clock() etc.
    if (t.next == '(' && banned_rand_calls().count(t.text) > 0) {
      report(file, t.line, kRuleRand,
             "call to non-deterministic '" + t.text +
                 "' (use dm::Rng seeded from the run config)");
    } else if (banned_rand_types().count(t.text) > 0) {
      report(file, t.line, kRuleRand,
             "non-deterministic engine '" + t.text +
                 "' (use dm::Rng seeded from the run config)");
    } else if (t.next == '(' && banned_clock_calls().count(t.text) > 0) {
      report(file, t.line, kRuleWallclock,
             "wall-clock call '" + t.text +
                 "' (use sim::Simulator virtual time)");
    } else if (banned_clock_types().count(t.text) > 0) {
      report(file, t.line, kRuleWallclock,
             "wall clock '" + t.text +
                 "' (use sim::Simulator virtual time)");
    } else if (t.next == '(' && banned_env_calls().count(t.text) > 0) {
      report(file, t.line, kRuleGetenv,
             "environment-dependent call '" + t.text +
                 "' (thread configuration through explicit options)");
    }
  }
  // Pointer-identity hashing/ordering: std::hash<T*> and
  // reinterpret_cast<uintptr_t> make iteration order depend on allocation
  // addresses, which vary run to run.
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    for (std::size_t pos = 0;;) {
      auto at = line.find("hash", pos);
      if (at == std::string::npos) break;
      pos = at + 1;
      if (at > 0 && is_ident_char(line[at - 1])) continue;
      std::size_t i = at + 4;
      while (i < line.size() && line[i] == ' ') ++i;
      if (i >= line.size() || line[i] != '<') continue;
      const auto end = skip_angles(line, i);
      if (end == std::string::npos) continue;
      if (line.substr(i, end - i).find('*') != std::string::npos) {
        report(file, static_cast<int>(li) + 1, kRulePtrHash,
               "hashing a pointer value (order depends on allocation "
               "addresses; key on a stable id instead)");
      }
    }
    for (std::size_t pos = 0;;) {
      auto at = line.find("reinterpret_cast", pos);
      if (at == std::string::npos) break;
      pos = at + 1;
      std::size_t i = at + 16;
      while (i < line.size() && line[i] == ' ') ++i;
      if (i >= line.size() || line[i] != '<') continue;
      const auto end = skip_angles(line, i);
      if (end == std::string::npos) continue;
      if (line.substr(i, end - i).find("uintptr_t") != std::string::npos) {
        report(file, static_cast<int>(li) + 1, kRulePtrHash,
               "pointer-to-integer conversion (address-dependent value; "
               "key on a stable id instead)");
      }
    }
  }
}

void Analyzer::check_unordered_iteration(const SourceFile& file) {
  if (!file.exporting) return;
  // The paired header's unordered members are visible to this .cc.
  std::set<std::string> names = file.unordered_names;
  if (file.rel.size() > 3 && file.rel.ends_with(".cc")) {
    const std::string pair = file.rel.substr(0, file.rel.size() - 3) + ".h";
    auto it = by_rel_.find(pair);
    if (it != by_rel_.end()) {
      names.insert(it->second->unordered_names.begin(),
                   it->second->unordered_names.end());
    }
  }
  if (names.empty()) return;
  for (std::size_t li = 0; li < file.code.size(); ++li) {
    const std::string& line = file.code[li];
    for (std::size_t pos = 0;;) {
      auto at = line.find("for", pos);
      if (at == std::string::npos) break;
      pos = at + 1;
      if (at > 0 && is_ident_char(line[at - 1])) continue;
      if (at + 3 < line.size() && is_ident_char(line[at + 3])) continue;
      std::size_t i = line.find('(', at);
      if (i == std::string::npos) continue;
      // Find the range-for ':' at depth 1 (skipping "::").
      int depth = 0;
      std::size_t colon = std::string::npos;
      std::size_t close = std::string::npos;
      for (std::size_t j = i; j < line.size(); ++j) {
        if (line[j] == '(') ++depth;
        if (line[j] == ')' && --depth == 0) {
          close = j;
          break;
        }
        if (line[j] == ':' && depth == 1) {
          if (j + 1 < line.size() && line[j + 1] == ':') {
            ++j;
            continue;
          }
          if (j > 0 && line[j - 1] == ':') continue;
          if (colon == std::string::npos) colon = j;
        }
      }
      if (colon == std::string::npos || close == std::string::npos) continue;
      std::string expr = line.substr(colon + 1, close - colon - 1);
      // Strip trailing call parens, then take the trailing identifier:
      // `registry->counters()` -> counters, `sources_` -> sources_.
      auto last = expr.find_last_not_of(" \t");
      if (last == std::string::npos) continue;
      expr.resize(last + 1);
      if (expr.ends_with("()")) expr.resize(expr.size() - 2);
      last = expr.find_last_not_of(" \t");
      if (last == std::string::npos) continue;
      std::size_t start = last + 1;
      while (start > 0 && is_ident_char(expr[start - 1])) --start;
      const std::string name = expr.substr(start, last + 1 - start);
      if (!name.empty() && names.count(name) > 0) {
        report(file, static_cast<int>(li) + 1, kRuleUnorderedIter,
               "iterating unordered container '" + name +
                   "' in an exporting file (sort into a vector or use an "
                   "ordered map before emitting)");
      }
    }
  }
}

void Analyzer::check_layering(const SourceFile& file) {
  const auto& table = layer_table();
  const bool known_src_module =
      file.in_src && table.count(file.module) > 0;
  if (file.in_src && !known_src_module && !file.includes.empty()) {
    report(file, file.includes.front().first, kRuleLayerDep,
           "module 'src/" + file.module +
               "' is not in the layering table (tools/dm_lint_core.cc); "
               "place it in the dependency DAG first");
    return;
  }
  for (const auto& [line, inc] : file.includes) {
    if (inc.find("..") != std::string::npos) {
      report(file, line, kRuleLayerTestInclude,
             "relative include escapes the include root: \"" + inc + "\"");
      continue;
    }
    if (file.in_src &&
        (inc.rfind("tests/", 0) == 0 || inc.rfind("bench/", 0) == 0)) {
      report(file, line, kRuleLayerTestInclude,
             "src/ must not include test or bench headers: \"" + inc + "\"");
      continue;
    }
    if (!known_src_module) continue;  // tests/bench/tools may include all
    const auto slash = inc.find('/');
    if (slash == std::string::npos) continue;  // same-directory include
    const std::string target = inc.substr(0, slash);
    if (table.count(target) == 0) continue;  // not a project module path
    const auto& allowed = table.at(file.module);
    if (allowed.count(target) == 0) {
      report(file, line, kRuleLayerDep,
             "'" + file.module + "' must not depend on '" + target +
                 "' (dependency DAG: common -> sim -> {mem,net,storage} -> "
                 "cluster -> core -> {swap,kvstore,rddcache} -> workloads)");
    }
  }
}

void Analyzer::check_status_discard(const SourceFile& file) {
  for (const Statement& s : split_statements(file)) {
    const std::string& text = s.text;
    if (text.empty() || text[0] == '#' || text[0] == '(') continue;
    if (starts_with_keyword(text)) continue;
    // Any top-level '=' means the result is bound somewhere (the
    // branch-sensitive rule then checks the binding is consumed).
    int depth = 0;
    bool has_assign = false;
    for (std::size_t i = 0; i < text.size(); ++i) {
      const char c = text[i];
      if (c == '(' || c == '[' || c == '<') ++depth;
      if (c == ')' || c == ']' || c == '>') --depth;
      if (c == '=' && depth <= 0) has_assign = true;
    }
    if (has_assign) continue;
    const std::string name = final_call_name(text);
    if (name.empty() || status_names_.count(name) == 0) continue;
    report(file, s.line, kRuleStatusDiscard,
           "result of Status-returning '" + name +
               "' is discarded (assign, check, or return it)");
  }
}

void Analyzer::check_include_direct(const SourceFile& file) {
  // Identity of this file in include-path terms ("common/status.h" for
  // src/common/status.h) plus its own header pair.
  std::string self = file.rel;
  if (self.rfind("src/", 0) == 0) self = self.substr(4);
  std::string pair;
  if (self.ends_with(".cc")) pair = self.substr(0, self.size() - 3) + ".h";
  std::set<std::string> included;
  for (const auto& [line, inc] : file.includes) included.insert(inc);

  std::map<std::string, int> first_use;  // owner header -> first line
  std::map<std::string, std::string> use_token;
  for (const Token& t : tokenize(file)) {
    auto it = owner_table().find(t.text);
    if (it == owner_table().end()) continue;
    if (is_member_access(t)) continue;
    const std::string& owner = it->second;
    if (owner == self || owner == pair) continue;
    if (included.count(owner) > 0) continue;
    if (file.fwd_decls.count(t.text) > 0) continue;
    if (first_use.emplace(owner, t.line).second) use_token[owner] = t.text;
  }
  for (const auto& [owner, line] : first_use) {
    report(file, line, kRuleIncludeDirect,
           "uses '" + use_token[owner] + "' but does not include \"" + owner +
               "\" directly (include what you use)");
  }
}

RunResult Analyzer::run() {
  load_tree();
  std::set<std::string> void_names;
  for (const SourceFile& file : files_) {
    by_rel_[file.rel] = &file;
    collect_status_decls(file, &status_names_, &void_names);
  }
  // Names with a void overload anywhere (async callback twins) are
  // ambiguous at token level, as are names shared with std container
  // methods (a project `Status erase(key)` vs `map.erase(it)`); the
  // [[nodiscard]] types still catch those at compile time.
  static const std::set<std::string> kContainerMethods = {
      "erase",   "insert",  "clear",   "find",    "count",   "swap",
      "merge",   "extract", "at",      "emplace", "assign",  "resize",
      "reserve", "push_back", "pop_back", "push_front", "pop_front"};
  for (const std::string& name : void_names) status_names_.erase(name);
  for (const std::string& name : kContainerMethods) status_names_.erase(name);

  const Reporter reporter = [this](const SourceFile& file, int line,
                                   const char* rule, std::string message) {
    report(file, line, rule, std::move(message));
  };
  LockGraph lock_graph;
  RpcContract rpc;
  MetricContract metrics;
  for (const SourceFile& file : files_) {
    const FileAnalysis fa = analyze_file(file);
    if (!file.is_script) {
      check_determinism(file);
      check_unordered_iteration(file);
      check_layering(file);
      check_status_discard(file);
      check_include_direct(file);
      check_status_branches(file, fa, status_names_, reporter);
      check_span_flow(file, fa, reporter);
      collect_lock_order(file, fa, &lock_graph, reporter);
      collect_rpc_contract(file, fa, &rpc);
    }
    collect_metric_contract(file, fa, &metrics, reporter);
  }
  // Cross-file contract rules need the whole protocol in view; a scan
  // restricted to explicit paths would report half a tree as missing.
  if (options_.paths.empty()) {
    check_lock_cycles(lock_graph, reporter);
    check_rpc_contract(rpc, reporter);
    check_metric_contract(metrics, reporter);
  }

  std::sort(diags_.begin(), diags_.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  diags_.erase(std::unique(diags_.begin(), diags_.end()), diags_.end());
  RunResult result;
  result.diagnostics = std::move(diags_);
  result.metric_registry = metric_registry_json(metrics);
  return result;
}

}  // namespace

const std::vector<RuleInfo>& rule_catalog() {
  static const std::vector<RuleInfo> kRules = {
      {kRuleRand,
       "no libc/std randomness outside the simulator; use dm::Rng"},
      {kRuleWallclock, "no wall clocks; use sim::Simulator virtual time"},
      {kRuleGetenv, "no environment probing; thread options explicitly"},
      {kRulePtrHash,
       "no pointer-identity hashing or pointer-to-integer ordering"},
      {kRuleUnorderedIter,
       "no unordered-container iteration in files that export artifacts"},
      {kRuleLayerDep,
       "project includes must follow the module dependency DAG"},
      {kRuleLayerTestInclude,
       "src/ must not include test or bench headers"},
      {kRuleStatusDiscard,
       "Status/StatusOr results must be consumed on every path"},
      {kRuleIncludeDirect,
       "include what you use: name a project type, include its header"},
      {kRuleSpanUnclosed,
       "begin_span must reach an end_span on every path to the exit"},
      {kRuleLockOrder,
       "the global lock-order graph must stay acyclic; callback-style "
       "acquisitions carry dm-lock annotations; range locks are provably "
       "ascending"},
      {kRuleRpcContract,
       "every kRpc* method has label_method, handle(), and call() legs"},
      {kRuleMetricContract,
       "metric/span names: no counter/histogram collisions, "
       "convention-clean, every read and gate spec resolves to an emission"},
  };
  return kRules;
}

RunResult run_full(const Options& options) { return Analyzer(options).run(); }

std::vector<Diagnostic> run(const Options& options) {
  return Analyzer(options).run().diagnostics;
}

std::string to_text(const std::vector<Diagnostic>& diags) {
  std::string out;
  for (const Diagnostic& d : diags) {
    out += d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
           d.message + "\n";
  }
  return out;
}

std::string to_json(const std::vector<Diagnostic>& diags) {
  std::string out =
      "{\n\"tool\": \"dm_lint\",\n\"schema_version\": 2,\n\"rules\": [\n";
  const auto& rules = rule_catalog();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out += "{\"rule\": \"" + json_escape(rules[i].rule) +
           "\", \"description\": \"" + json_escape(rules[i].description) +
           "\"}";
    out += (i + 1 < rules.size()) ? ",\n" : "\n";
  }
  out += "],\n\"diagnostics\": [\n";
  for (std::size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    out += "{\"file\": \"" + json_escape(d.file) +
           "\", \"line\": " + std::to_string(d.line) + ", \"rule\": \"" +
           json_escape(d.rule) + "\", \"message\": \"" +
           json_escape(d.message) + "\"}";
    out += (i + 1 < diags.size()) ? ",\n" : "\n";
  }
  out += "]\n}\n";
  return out;
}

}  // namespace dm::lint
