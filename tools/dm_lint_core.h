// dm_lint: project-invariant static analysis (determinism, layering,
// status hygiene, include hygiene).
//
// The reproduction's results are seeded sim-time runs pinned to
// byte-identical outputs, so the invariants that keep replays honest are
// enforced mechanically rather than by review:
//
//  * determinism  — no wall clocks, libc/std randomness, environment
//    probing, or pointer-identity hashing outside the simulator's own
//    sources of time and the documented escape hatches; no iteration over
//    unordered containers in files that produce exported artifacts
//    (obs snapshots, bench JSON, wire encoding).
//  * layering     — project includes must follow the dependency DAG that
//    the CMake link graph encodes (common -> sim -> {mem,net,storage} ->
//    cluster -> core -> {swap,kvstore,rddcache} -> workloads, with obs and
//    compress as leaves under core/swap); src/ never includes test or
//    bench headers.
//  * status       — calls to Status/StatusOr-returning functions must
//    consume the result (the [[nodiscard]] types catch this at compile
//    time; the lint rule catches it in code that is not compiled in every
//    configuration, e.g. fixtures and gated paths).
//  * includes     — IWYU-lite: a file that names a project type includes
//    that type's header directly instead of leaning on transitive pulls.
//  * spans        — a raw member call to begin_span must have a matching
//    end_span reachable in its enclosing block (async hand-offs that close
//    the span elsewhere carry an explicit allow marker); prefer the
//    sim::SpanScope guard, which the rule never flags.
//
// The analyzer is deliberately token/line-level (no libclang): it
// preprocesses comments and string literals away, then matches tokens, so
// it is fast, dependency-free, and deterministic. False positives are
// suppressed in place with `// dm-lint: allow(<rule>[, <rule>...])` on the
// offending line or the line directly above it.
#pragma once

#include <string>
#include <vector>

namespace dm::lint {

// One finding. `file` is root-relative with '/' separators; diagnostics
// are sorted by (file, line, rule) and deduplicated, so output is stable
// across runs and platforms.
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  friend bool operator==(const Diagnostic& a, const Diagnostic& b) {
    return a.file == b.file && a.line == b.line && a.rule == b.rule;
  }
};

struct Options {
  // Directory that reported paths are made relative to.
  std::string root = ".";
  // Paths (relative to root, or absolute) to scan; directories recurse
  // over *.h / *.cc. Empty = the project default set
  // {src, bench, tests, tools, examples}.
  std::vector<std::string> paths;
  // Path substrings to skip (matched against the root-relative path).
  // Defaults to the fixture tree and build directories; see run().
  std::vector<std::string> skip;
  bool use_default_skips = true;
};

// Rule identifiers (also the spelling used in allow() comments).
inline constexpr const char* kRuleRand = "det-rand";
inline constexpr const char* kRuleWallclock = "det-wallclock";
inline constexpr const char* kRuleGetenv = "det-getenv";
inline constexpr const char* kRulePtrHash = "det-ptr-hash";
inline constexpr const char* kRuleUnorderedIter = "det-unordered-iter";
inline constexpr const char* kRuleLayerDep = "layer-dep";
inline constexpr const char* kRuleLayerTestInclude = "layer-test-include";
inline constexpr const char* kRuleStatusDiscard = "status-discard";
inline constexpr const char* kRuleIncludeDirect = "include-direct";
inline constexpr const char* kRuleSpanUnclosed = "span-unclosed";

// Runs every rule over the configured tree and returns the sorted,
// deduplicated findings.
std::vector<Diagnostic> run(const Options& options);

// "file:line: [rule] message" lines, one per diagnostic.
std::string to_text(const std::vector<Diagnostic>& diags);

// Machine-readable export matching the bench_util.h JSON conventions
// (RFC 8259 escaping, sorted entries, trailing newline).
std::string to_json(const std::vector<Diagnostic>& diags);

}  // namespace dm::lint
