// dm_lint: project-invariant static analysis (determinism, layering,
// status hygiene, include hygiene).
//
// The reproduction's results are seeded sim-time runs pinned to
// byte-identical outputs, so the invariants that keep replays honest are
// enforced mechanically rather than by review:
//
//  * determinism  — no wall clocks, libc/std randomness, environment
//    probing, or pointer-identity hashing outside the simulator's own
//    sources of time and the documented escape hatches; no iteration over
//    unordered containers in files that produce exported artifacts
//    (obs snapshots, bench JSON, wire encoding).
//  * layering     — project includes must follow the dependency DAG that
//    the CMake link graph encodes (common -> sim -> {mem,net,storage} ->
//    cluster -> core -> {swap,kvstore,rddcache} -> workloads, with obs and
//    compress as leaves under core/swap); src/ never includes test or
//    bench headers.
//  * status       — calls to Status/StatusOr-returning functions must
//    consume the result (the [[nodiscard]] types catch this at compile
//    time; the lint rule catches it in code that is not compiled in every
//    configuration, e.g. fixtures and gated paths).
//  * includes     — IWYU-lite: a file that names a project type includes
//    that type's header directly instead of leaning on transitive pulls.
//  * spans        — a raw member call to begin_span must have an end_span
//    on every control-flow path to the function exit (async hand-offs that
//    close the span elsewhere carry an explicit allow marker); prefer the
//    sim::SpanScope guard, which the rule never flags.
//  * lock-order   — lock acquisition sites form a global lock-order graph;
//    cycles, unannotated callback-style acquisitions, and range locks that
//    are not provably ascending are findings (dm_lint_flow.h).
//  * rpc-contract — every kRpc* enumerator must have a label_method
//    registration, a handle() dispatch, and a call() site.
//  * metric-contract — metric/span names are harvested into a registry;
//    collisions, convention violations, and reads or gate specs naming
//    metrics no code emits are findings.
//
// The analyzer needs no libclang: files are preprocessed into a blanked
// code view (dm_lint_model.h), then analyzed token/line-level or, for the
// flow-aware rules, over a statement tree + per-function CFG built by
// dm_lint_engine.h. Output is deterministic; false positives are
// suppressed in place with `// dm-lint: allow(<rule>[, <rule>...])` on the
// offending line or the line directly above it.
#pragma once

#include <string>
#include <vector>

namespace dm::lint {

// One finding. `file` is root-relative with '/' separators; diagnostics
// are sorted by (file, line, rule) and deduplicated, so output is stable
// across runs and platforms.
struct Diagnostic {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;

  friend bool operator==(const Diagnostic& a, const Diagnostic& b) {
    return a.file == b.file && a.line == b.line && a.rule == b.rule;
  }
};

struct Options {
  // Directory that reported paths are made relative to.
  std::string root = ".";
  // Paths (relative to root, or absolute) to scan; directories recurse
  // over *.h / *.cc. Empty = the project default set
  // {src, bench, tests, tools, examples}.
  std::vector<std::string> paths;
  // Path substrings to skip (matched against the root-relative path).
  // Defaults to the fixture tree and build directories; see run().
  std::vector<std::string> skip;
  bool use_default_skips = true;
};

// Rule identifiers (also the spelling used in allow() comments).
inline constexpr const char* kRuleRand = "det-rand";
inline constexpr const char* kRuleWallclock = "det-wallclock";
inline constexpr const char* kRuleGetenv = "det-getenv";
inline constexpr const char* kRulePtrHash = "det-ptr-hash";
inline constexpr const char* kRuleUnorderedIter = "det-unordered-iter";
inline constexpr const char* kRuleLayerDep = "layer-dep";
inline constexpr const char* kRuleLayerTestInclude = "layer-test-include";
inline constexpr const char* kRuleStatusDiscard = "status-discard";
inline constexpr const char* kRuleIncludeDirect = "include-direct";
inline constexpr const char* kRuleSpanUnclosed = "span-unclosed";
inline constexpr const char* kRuleLockOrder = "lock-order";
inline constexpr const char* kRuleRpcContract = "rpc-contract";
inline constexpr const char* kRuleMetricContract = "metric-contract";

// Rule id -> one-line description, embedded in the schema_version 2 JSON
// so report consumers never need this header.
struct RuleInfo {
  const char* rule;
  const char* description;
};
const std::vector<RuleInfo>& rule_catalog();

// Runs every rule over the configured tree and returns the sorted,
// deduplicated findings. The cross-file contract rules (lock-order
// cycles, rpc-contract, metric-contract resolution) only run when
// `options.paths` is empty: a path-restricted scan sees half a protocol.
std::vector<Diagnostic> run(const Options& options);

// run() plus the generated metric/span registry for the scanned tree.
struct RunResult {
  std::vector<Diagnostic> diagnostics;
  std::string metric_registry;  // schema_version 2 JSON, trailing newline
};
RunResult run_full(const Options& options);

// "file:line: [rule] message" lines, one per diagnostic.
std::string to_text(const std::vector<Diagnostic>& diags);

// Machine-readable export matching the bench_util.h JSON conventions
// (RFC 8259 escaping, sorted entries, trailing newline). Top level:
// {"tool", "schema_version": 2, "rules": [...], "diagnostics": [...]}.
std::string to_json(const std::vector<Diagnostic>& diags);

}  // namespace dm::lint
