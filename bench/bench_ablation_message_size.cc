// Ablation (§IV.H) — DAHI transfer message size m.
//
// "It is worth to experiment window based message batching with both
// different window size d and different message size m." The batching
// bench sweeps d for the swap path; this one sweeps the DAHI chunk size
// (window d x 8 KiB Accelio messages collapsed into one m-byte transfer)
// for RDD partition caching and reports job time and fabric message counts.
#include <cstdio>

#include "bench_util.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "rddcache/mini_spark.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Ablation: DAHI message size m (§IV.H)",
      "bigger chunks cut message counts; returns diminish past ~64 KiB");

  std::printf("%10s %16s %12s %14s\n", "m", "job-time", "rdma-msgs",
              "offheap-gets");
  for (std::uint64_t chunk : {8 * KiB, 16 * KiB, 32 * KiB, 64 * KiB,
                              128 * KiB}) {
    core::DmSystem::Config config;
    config.node_count = 4;
    config.node.shm.arena_bytes = 1 * MiB;  // small: chunks go remote
    config.node.recv.arena_bytes = 64 * MiB;
    config.node.recv.size_classes = {512,   1024,  2048,  4096, 8192,
                                     16384, 32768, 65536, 131072};
    config.node.recv.slab_bytes = 256 * KiB;
    config.service.rdmc.replication = 1;
    core::DmSystem system(config);
    system.start();

    rdd::MiniSpark::Config spark_config;
    spark_config.executors = 4;
    spark_config.ldmc.shm_fraction = 0.0;  // chunks travel over the fabric
    spark_config.executor.cache_bytes = 32 * KiB;
    spark_config.executor.overflow = rdd::OverflowPolicy::kDahi;
    spark_config.executor.dahi_chunk_bytes = chunk;
    rdd::MiniSpark spark(system, spark_config);

    auto dataset = rdd::Rdd::source(
        "data", 16, 8000, [](std::size_t p, std::size_t i) {
          return static_cast<rdd::Record>(p * 131 + i);
        });
    dataset->cache();

    auto& sim = system.simulator();
    const SimTime start = sim.now();
    for (int iter = 0; iter < 4; ++iter) {
      auto sum = spark.sum(dataset);
      if (!sum.ok()) {
        std::printf("job failed at m=%llu: %s\n",
                    static_cast<unsigned long long>(chunk),
                    sum.status().to_string().c_str());
        return 1;
      }
    }
    std::printf("%9s %16s %12llu %14llu\n", format_bytes(chunk).c_str(),
                format_duration(sim.now() - start).c_str(),
                static_cast<unsigned long long>(
                    system.fabric().metrics().counter_value(
                        "fabric.messages")),
                static_cast<unsigned long long>(
                    spark.total_offheap_fetches()));
  }
  return 0;
}
