// Ablation (§IV.H) — window-based batching sweep: completion time and
// RDMA message count as the swap-out window d grows from 1 (per-page,
// Infiniswap-style) to 16 pages per message.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Ablation: batching window d (§IV.H)",
      "bigger windows amortize per-message overhead; diminishing returns");

  workloads::AppSpec app = *workloads::find_app("LogisticRegression");
  app.iterations = 3;
  constexpr std::uint64_t kPages = 512;
  constexpr std::uint64_t kResident = kPages / 2;

  std::printf("%6s %16s %14s %14s\n", "d", "completion", "rdma-msgs",
              "msg-bytes(MB)");
  for (std::size_t d : {1u, 2u, 4u, 8u, 16u}) {
    auto setup = swap::make_system(swap::SystemKind::kFastSwap, kResident);
    setup.ldmc.shm_fraction = 0.0;  // all traffic over the fabric
    setup.swap.batch_pages = d;
    auto rig = bench::make_swap_rig(setup, app);
    Rng rng(31);
    auto result = workloads::run_iterative(*rig.manager, app, kPages, rng);
    if (!result.status.ok()) {
      std::printf("run failed at d=%zu: %s\n", d,
                  result.status.to_string().c_str());
      return 1;
    }
    const auto msgs =
        rig.system->fabric().metrics().counter_value("fabric.messages");
    const double mb =
        static_cast<double>(rig.system->fabric().metrics().counter_value(
            "fabric.bytes_transferred")) /
        (1024.0 * 1024.0);
    std::printf("%6zu %16s %14llu %14.1f\n", d,
                format_duration(result.elapsed).c_str(),
                static_cast<unsigned long long>(msgs), mb);
  }
  return 0;
}
