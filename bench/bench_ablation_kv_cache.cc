// Ablation (§II.B/§III) — key-value caching over disaggregated memory.
//
// Sweeps the hot-tier budget for a fixed dataset and zipfian request mix,
// comparing a conventional bounded cache (overflow dropped; misses pay the
// database, modeled as a disk read) with the disaggregated-memory cache
// (overflow parked in the shared pool / remote memory). The paper's claim:
// partial disaggregation turns capacity misses from disk-priced into
// memory-priced.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "kvstore/kv_store.h"
#include "workloads/page_content.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Ablation: KV cache with/without disaggregated memory (§II.B)",
      "DM converts capacity misses from database cost to memory cost");

  constexpr int kKeys = 256;
  constexpr int kRequests = 20000;

  std::printf("%10s %16s %16s %10s %12s\n", "hot-tier", "cache-only",
              "with-DM", "speedup", "DB-queries");
  for (std::uint64_t hot : {64 * KiB, 128 * KiB, 256 * KiB, 512 * KiB}) {
    SimTime elapsed[2] = {0, 0};
    std::uint64_t db_queries_without = 0;
    for (int mode = 0; mode < 2; ++mode) {
      core::DmSystem::Config cluster;
      cluster.node_count = 4;
      cluster.node.shm.arena_bytes = 16 * MiB;
      cluster.node.recv.arena_bytes = 16 * MiB;
      cluster.service.rdmc.replication = 1;
      core::DmSystem system(cluster);
      system.start();
      auto& client = system.create_server(0, 64 * MiB);

      kv::KvStore::Config config;
      config.hot_bytes = hot;
      config.use_disaggregated_memory = mode == 1;
      kv::KvStore store(client, config);

      std::vector<std::byte> value(4096);
      for (int k = 0; k < kKeys; ++k) {
        workloads::fill_page(value, k, 0.4, 77);
        (void)store.set("obj:" + std::to_string(k), value);
      }

      auto& sim = system.simulator();
      auto& disk = system.node(0).disk();
      Rng rng(9);
      ZipfGenerator keys(kKeys, 0.99);
      std::uint64_t db_queries = 0;
      std::vector<std::byte> buf(4096);
      const SimTime start = sim.now();
      for (int r = 0; r < kRequests; ++r) {
        const auto k = static_cast<int>(keys.next(rng));
        auto got = store.get("obj:" + std::to_string(k));
        if (!got.ok()) {
          ++db_queries;
          (void)disk.read_sync(rng.next_below(1024) * 4096, buf);
          workloads::fill_page(value, k, 0.4, 77);
          (void)store.set("obj:" + std::to_string(k), value);
        }
      }
      elapsed[mode] = sim.now() - start;
      if (mode == 0) db_queries_without = db_queries;
    }
    std::printf("%10s %16s %16s %9.1fx %12llu\n",
                format_bytes(hot).c_str(),
                format_duration(elapsed[0]).c_str(),
                format_duration(elapsed[1]).c_str(),
                bench::ratio(elapsed[0], elapsed[1]),
                static_cast<unsigned long long>(db_queries_without));
  }
  std::printf("\n(DB-queries = misses the cache-only configuration sent to "
              "the database; the DM configuration answers them from "
              "disaggregated memory instead)\n");
  return 0;
}
