// Ablation (§VI) — the full memory hierarchy, tier by tier.
//
// §VI frames disaggregation as extending DRAM "to the faster tier(s) in
// the memory hierarchy before resorting to the slower external storage
// tier". This bench runs one workload against progressively deeper
// hierarchies — disk only; +NVM; +remote memory; +node shared pool — and
// reports completion time plus where the overflow landed. Every tier added
// above the disk absorbs traffic at a faster price point.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "core/dm_system.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Ablation: hierarchy depth (shm / remote / NVM / disk, §VI)",
      "each added tier absorbs overflow at a faster price point");

  workloads::AppSpec app = *workloads::find_app("LogisticRegression");
  app.iterations = 3;
  constexpr std::uint64_t kPages = 512;
  constexpr std::uint64_t kResident = kPages / 2;

  struct Depth {
    const char* name;
    bool shm;
    bool remote;
    bool nvm;
  };
  const Depth depths[] = {
      {"disk only", false, false, false},
      {"+remote", false, true, false},
      {"+remote+NVM", false, true, true},
      {"+shared pool", true, true, true},
  };

  std::printf("%-14s %16s %8s %8s %8s %8s\n", "Hierarchy", "completion",
              "shm", "remote", "nvm", "disk");
  for (const Depth& depth : depths) {
    auto setup = swap::make_system(swap::SystemKind::kFastSwap, kResident);
    setup.ldmc.shm_fraction = depth.shm ? 1.0 : 0.0;
    setup.ldmc.allow_remote = depth.remote;

    core::DmSystem::Config config;
    config.node_count = 4;
    config.node.shm.arena_bytes = 32 * MiB;
    config.node.recv.arena_bytes = 128 * KiB;  // remote tier fills up
    config.node.recv.slab_bytes = 64 * KiB;
    config.node.disk.capacity_bytes = 256 * MiB;
    if (depth.nvm) config.node.nvm.capacity_bytes = 4 * MiB;
    config.service = setup.service;
    core::DmSystem system(config);
    system.start();
    // 6 MiB allocation -> ~614 KiB shared-pool donation when enabled.
    auto& client = system.create_server(0, 6 * MiB, setup.ldmc);
    swap::SwapManager memory(client, setup.swap,
                             workloads::content_for(app, 3));
    Rng rng(29);
    auto result = workloads::run_iterative(memory, app, kPages, rng);
    if (!result.status.ok()) {
      std::printf("run failed (%s): %s\n", depth.name,
                  result.status.to_string().c_str());
      return 1;
    }
    std::printf("%-14s %16s %8llu %8llu %8llu %8llu\n", depth.name,
                format_duration(result.elapsed).c_str(),
                static_cast<unsigned long long>(client.puts_to_shm()),
                static_cast<unsigned long long>(client.puts_to_remote()),
                static_cast<unsigned long long>(client.puts_to_nvm()),
                static_cast<unsigned long long>(client.puts_to_disk()));
  }
  std::printf("\n(note: with DIMM-class NVM parameters the local NVM tier "
              "can outrun remote DRAM — §VI's open question of which "
              "memory/network/storage combination wins is parameter-"
              "dependent; sweep config.node.nvm.model to explore it)\n");
  return 0;
}
