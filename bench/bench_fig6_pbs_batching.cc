// Figure 6 — completion time of FastSwap with proactive batch swap-in (PBS)
// vs FastSwap without PBS vs Infiniswap vs Linux disk swap, across four
// disaggregated-memory workload sizes.
//
// Paper shape: FastSwap+PBS < FastSwap w/o PBS < Infiniswap << Linux at
// every size, with the gap growing as more of the working set spills.
#include <cstdio>

#include "bench_util.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Figure 6: batch swap-in (PBS) effect across DM workload sizes",
      "FastSwap+PBS < FastSwap w/o PBS < Infiniswap << Linux");

  workloads::AppSpec app = *workloads::find_app("LogisticRegression");
  app.iterations = 3;
  constexpr std::uint64_t kResident = 128;

  const std::uint64_t working_sets[] = {192, 256, 384, 512};
  const swap::SystemKind systems[] = {
      swap::SystemKind::kFastSwap, swap::SystemKind::kFastSwapNoPbs,
      swap::SystemKind::kInfiniswap, swap::SystemKind::kLinux};

  std::printf("%-12s %16s %16s %16s %16s %9s\n", "WSet(pages)",
              "FastSwap+PBS", "FS-noPBS", "Infiniswap", "Linux", "PBS-gain");
  for (std::uint64_t pages : working_sets) {
    SimTime elapsed[4] = {0, 0, 0, 0};
    for (int s = 0; s < 4; ++s) {
      auto setup = swap::make_system(systems[s], kResident);
      bench::SwapRigOptions options;
      options.server_bytes = 2 * MiB;  // most spill goes to remote memory
      auto rig = bench::make_swap_rig(setup, app, options);
      Rng rng(13);
      auto result = workloads::run_iterative(*rig.manager, app, pages, rng);
      if (!result.status.ok()) {
        std::printf("run failed (%s): %s\n", setup.name.c_str(),
                    result.status.to_string().c_str());
        return 1;
      }
      elapsed[s] = result.elapsed;
    }
    std::printf("%-12llu %16s %16s %16s %16s %8.2fx\n",
                static_cast<unsigned long long>(pages),
                format_duration(elapsed[0]).c_str(),
                format_duration(elapsed[1]).c_str(),
                format_duration(elapsed[2]).c_str(),
                format_duration(elapsed[3]).c_str(),
                bench::ratio(elapsed[1], elapsed[0]));
  }
  std::printf("\n(PBS-gain = FastSwap w/o PBS over FastSwap+PBS)\n");
  return 0;
}
