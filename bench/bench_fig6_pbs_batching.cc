// Figure 6 — completion time of FastSwap with proactive batch swap-in (PBS)
// vs FastSwap without PBS vs Infiniswap vs Linux disk swap, across four
// disaggregated-memory workload sizes. A fifth series runs the adaptive
// swap-path engine (pattern-aware PBS window + compression admission +
// write-back batching) on top of the FastSwap configuration.
//
// Paper shape: FastSwap+PBS < FastSwap w/o PBS < Infiniswap << Linux at
// every size, with the gap growing as more of the working set spills.
// Reproduction extension: FS-Adaptive <= FastSwap+PBS on this sequential
// iterative workload, since the tracker grows the PBS window past the
// fixed default.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/units.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Figure 6: batch swap-in (PBS) effect across DM workload sizes",
      "FastSwap+PBS < FastSwap w/o PBS < Infiniswap << Linux");

  workloads::AppSpec app = *workloads::find_app("LogisticRegression");
  app.iterations = 3;
  constexpr std::uint64_t kResident = 128;

  const std::uint64_t working_sets[] = {192, 256, 384, 512};
  const swap::SystemKind systems[] = {
      swap::SystemKind::kFastSwap, swap::SystemKind::kFastSwapAdaptive,
      swap::SystemKind::kFastSwapNoPbs, swap::SystemKind::kInfiniswap,
      swap::SystemKind::kLinux};
  constexpr int kSystems = 5;

  bench::BenchJson json("fig6_pbs_batching");
  std::printf("%-12s %14s %14s %14s %14s %14s %9s %10s\n", "WSet(pages)",
              "FastSwap+PBS", "FS-Adaptive", "FS-noPBS", "Infiniswap",
              "Linux", "PBS-gain", "Adpt-gain");
  for (std::uint64_t pages : working_sets) {
    SimTime elapsed[kSystems] = {};
    for (int s = 0; s < kSystems; ++s) {
      auto setup = swap::make_system(systems[s], kResident);
      bench::SwapRigOptions options;
      options.server_bytes = 2 * MiB;  // most spill goes to remote memory
      auto rig = bench::make_swap_rig(setup, app, options);
      Rng rng(13);
      auto result = workloads::run_iterative(*rig.manager, app, pages, rng);
      if (!result.status.ok()) {
        std::printf("run failed (%s): %s\n", setup.name.c_str(),
                    result.status.to_string().c_str());
        return 1;
      }
      if (auto st = rig.manager->flush_all(); !st.ok()) {
        std::printf("flush failed (%s): %s\n", setup.name.c_str(),
                    st.to_string().c_str());
        return 1;
      }
      elapsed[s] = result.elapsed;
      json.add_system(setup.name + "/ws=" + std::to_string(pages),
                      *rig.system);
    }
    std::printf("%-12llu %14s %14s %14s %14s %14s %8.2fx %9.2fx\n",
                static_cast<unsigned long long>(pages),
                format_duration(elapsed[0]).c_str(),
                format_duration(elapsed[1]).c_str(),
                format_duration(elapsed[2]).c_str(),
                format_duration(elapsed[3]).c_str(),
                format_duration(elapsed[4]).c_str(),
                bench::ratio(elapsed[2], elapsed[0]),
                bench::ratio(elapsed[0], elapsed[1]));
  }
  std::printf(
      "\n(PBS-gain = FastSwap w/o PBS over FastSwap+PBS; Adpt-gain = "
      "FastSwap+PBS over FS-Adaptive)\n");
  if (!json.write()) {
    std::printf("failed to write %s\n", json.path().c_str());
    return 1;
  }
  std::printf("metrics written to %s\n", json.path().c_str());
  return 0;
}
