// Profile substrate — virtual-time profiler over the FastSwap fault path.
//
// Attaches the causal span tracer to a FastSwap rig, runs an iterative
// workload, and folds every completed fault trace into the obs::Profiler.
// The printed table (and BENCH_profile_substrate.json) answers "where does
// a fault's virtual time go": per-subsystem self-time (swap bookkeeping,
// compression CPU, the wire, remote dispatch, device I/O) plus the
// event-loop throughput of the simulation substrate itself.
//
// The bench also *checks* the accounting: the tracer's critical-path sweep
// attributes every instant of a fault's root span to exactly one subsystem,
// so the per-subsystem components must sum (within 1%) to the end-to-end
// swap fault time the swap.fault_ns.* histograms measured independently.
// A violation exits non-zero — this file doubles as the acceptance gate for
// the span substrate.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>

#include "bench_util.h"
#include "common/histogram.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/units.h"
#include "obs/profiler.h"
#include "obs/span.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"
#include "workloads/driver.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Profile substrate: per-subsystem attribution of fault time",
      "(reproduction extension; no figure — feeds the span/profiler gate)");

  constexpr std::uint64_t kSeed = 42;
  constexpr std::uint64_t kResident = 128;
  constexpr std::uint64_t kPages = 384;

  workloads::AppSpec app = *workloads::find_app("LogisticRegression");
  app.iterations = 2;

  auto setup = swap::make_system(swap::SystemKind::kFastSwap, kResident);
  bench::SwapRigOptions options;
  options.server_bytes = 2 * MiB;  // most spill goes to remote memory
  options.seed = kSeed;
  auto rig = bench::make_swap_rig(setup, app, options);

  obs::SpanTracer tracer(rig.sim());
  rig.system->set_span_sink(&tracer);
  rig.manager->set_span_sink(&tracer);
  obs::Profiler profiler(rig.sim());

  Rng rng(13);
  auto result = workloads::run_iterative(*rig.manager, app, kPages, rng);
  if (!result.status.ok()) {
    std::printf("run failed: %s\n", result.status.to_string().c_str());
    return 1;
  }
  // Ingest everything into the profiler (the JSON reports the whole run),
  // but keep a separate per-subsystem tally over fault-rooted traces only:
  // background writeback flushes carry their own traces, and mixing their
  // wire time into the fault table would push the shares past 100%.
  const auto completed = tracer.drain_completed();
  std::map<std::string, SimTime> fault_by_subsystem;
  SimTime fault_components_ns = 0;
  for (const auto& done : completed) {
    profiler.ingest(done);
    if (done.root_name != "swap.fault") continue;
    for (const auto& [subsystem, ns] : done.breakdown.by_subsystem) {
      fault_by_subsystem[subsystem] += ns;
      fault_components_ns += ns;
    }
  }
  const std::size_t ingested = completed.size();

  // Independent measurement: total fault time and count straight from the
  // swap layer's histograms (recorded outside the span machinery).
  std::uint64_t measured_ns = 0;
  std::uint64_t measured_faults = 0;
  for (const auto& [name, hist] : rig.manager->metrics().histograms()) {
    if (name.rfind("swap.fault_ns.", 0) != 0) continue;
    measured_ns += hist.sum();
    measured_faults += hist.count();
  }

  const auto root = profiler.roots().find("swap.fault");
  const std::uint64_t attributed =
      root != profiler.roots().end()
          ? static_cast<std::uint64_t>(root->second.total_ns)
          : 0;
  const std::uint64_t root_count =
      root != profiler.roots().end() ? root->second.count : 0;

  std::printf("traces ingested      %zu\n", ingested);
  std::printf("faults (histograms)  %llu, %s total\n",
              static_cast<unsigned long long>(measured_faults),
              format_duration(static_cast<SimTime>(measured_ns)).c_str());
  std::printf("faults (span roots)  %llu, %s attributed\n",
              static_cast<unsigned long long>(root_count),
              format_duration(static_cast<SimTime>(attributed)).c_str());
  std::printf("event loop           %llu events, %.0f events/virtual-sec\n",
              static_cast<unsigned long long>(profiler.window_events()),
              profiler.events_per_virtual_second());
  std::printf("\nper-subsystem self time on the fault critical path:\n");
  for (const auto& [subsystem, ns] : fault_by_subsystem) {
    const double share =
        attributed > 0
            ? 100.0 * static_cast<double>(ns) / static_cast<double>(attributed)
            : 0.0;
    std::printf("  %-10s %14s  %5.1f%%  (%s/fault)\n", subsystem.c_str(),
                format_duration(ns).c_str(), share,
                format_duration(root_count > 0
                                    ? ns / static_cast<SimTime>(root_count)
                                    : 0)
                    .c_str());
  }

  const std::string json = profiler.to_json("profile_substrate", kSeed);
  const char* path = "BENCH_profile_substrate.json";
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("failed to write %s\n", path);
    return 1;
  }
  std::fputs(json.c_str(), f);
  std::fclose(f);
  std::printf("\nprofile written to %s\n", path);

  // Acceptance gate: components sum to the measured end-to-end fault time.
  if (measured_faults == 0 || root_count != measured_faults) {
    std::printf("FAIL: span roots (%llu) != measured faults (%llu)\n",
                static_cast<unsigned long long>(root_count),
                static_cast<unsigned long long>(measured_faults));
    return 1;
  }
  const double drift =
      measured_ns > 0
          ? std::abs(static_cast<double>(attributed) -
                     static_cast<double>(measured_ns)) /
                static_cast<double>(measured_ns)
          : 0.0;
  const double component_drift =
      measured_ns > 0
          ? std::abs(static_cast<double>(fault_components_ns) -
                     static_cast<double>(measured_ns)) /
                static_cast<double>(measured_ns)
          : 0.0;
  std::printf("attribution drift    %.4f%% roots, %.4f%% components "
              "(gate: 1%%)\n",
              100.0 * drift, 100.0 * component_drift);
  if (drift > 0.01 || component_drift > 0.01) {
    std::printf("FAIL: attributed fault time drifts >1%% from measured\n");
    return 1;
  }
  std::printf("OK: per-subsystem components sum to measured fault time\n");
  return 0;
}
