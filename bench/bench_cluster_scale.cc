// Cluster-scale multi-tenant scenario (§I, §IV.E–F) — node-count scaling.
//
// The paper's §I imbalance argument is a *scaling* claim: skewed tenant
// placement gets worse as clusters grow, because a static placement policy
// keeps piling tenants onto the same few machines while the rest idle. This
// bench drives a seeded ScenarioEngine — tenants arriving/departing with
// zipf-skewed homes and working sets, diurnal load — against 16/64/128-node
// clusters in two modes:
//
//   static    power-of-two-choices placement, no harvesting, no regrouping
//             (the seed system's §IV.E configuration);
//   adaptive  load-aware placement (pressure-discounted donor weights) +
//             the cluster harvester (live migration off hot nodes, slab
//             reclaim) + §IV.C dynamic regrouping.
//
// Reported per configuration: p99 page-fault latency across all tenants,
// the fraction of overflow absorbed by remote memory vs the swap disk
// (harvest efficiency), migration/reclaim activity, and the p99/16-node
// degradation ratio — the acceptance series of BENCH_cluster_scale.json.
#include <cstdio>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/histogram.h"
#include "common/units.h"
#include "cluster/placement.h"
#include "core/dm_system.h"
#include "core/ldmc.h"
#include "mem/memory_map.h"
#include "sim/scenario.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"

namespace {

using namespace dm;

constexpr std::uint64_t kResidentPages = 48;

struct ScaleResult {
  std::size_t nodes = 0;
  std::uint64_t p99_fault_ns = 0;
  std::uint64_t p50_fault_ns = 0;
  std::uint64_t faults = 0;
  double remote_share = 0.0;  // overflow absorbed by remote memory
  std::uint64_t rebalance_moves = 0;
  std::uint64_t reclaimed_pages = 0;
  std::uint64_t migrate_p99_ns = 0;
  std::uint64_t tenants = 0;
  std::uint64_t regroups = 0;
  std::uint64_t offload_req = 0;
  std::uint64_t migrated = 0;
  std::uint64_t migrate_put_failed = 0;
};

struct ModeFlags {
  bool load_aware = false;
  bool harvest = false;
  bool regroup = false;
};

ScaleResult run_scale(std::size_t nodes, ModeFlags mode) {
  auto setup = swap::make_system(swap::SystemKind::kFastSwap, kResidentPages);
  setup.service.rdmc.placement =
      mode.load_aware ? cluster::PlacementPolicyKind::kLoadAware
                      : cluster::PlacementPolicyKind::kPowerOfTwoChoices;
  // Raw 4 KiB pages: compression would quadruple the donated capacity and
  // hide the saturation the scaling comparison is about.
  setup.swap.compression = swap::CompressionMode::kOff;
  // §IV.F node behaviour in both modes: a donor whose local servers are
  // overflowing while its donated pool is nearly exhausted drains a slab,
  // force-migrating hosted entries. This is what placing onto a busy node
  // costs — and what pressure-aware placement and proactive harvesting are
  // supposed to avoid.
  setup.service.eviction.enabled = true;

  core::DmSystem::Config config;
  config.node_count = nodes;
  config.group_size = 16;
  config.node.shm.arena_bytes = 256 * KiB;
  config.node.recv.arena_bytes = 1 * MiB;
  config.node.disk.capacity_bytes = 24 * MiB;
  config.service = setup.service;
  config.seed = 42;
  if (mode.harvest) {
    config.harvest_enabled = true;
    config.harvest_period = 500 * kMilli;
    // Conservative plan: only clear outliers (3x mean pressure) get
    // relieved, a few entries at a time — aggressive shuffling within a
    // capacity-bound group steals donor space tenants are about to need.
    config.harvest.hot_ratio = 3.0;
    config.harvest.min_pressure = 64;
    config.harvest.migrate_entries_per_action = 8;
    config.harvest.max_actions_per_tick = 2;
    config.harvest.reclaim_free_watermark = 0.45;
  }
  if (mode.regroup) {
    config.regroup_low_watermark = 0.5;
    config.regroup_check_period = 500 * kMilli;
  }
  core::DmSystem system(config);
  system.start();

  // One idle tenant per node: their untouched allocations fund the donated
  // pools (the paper's idle neighbours), so every node is a donor and the
  // imbalance is purely the scenario's home skew.
  for (std::size_t n = 0; n < system.node_count(); ++n)
    (void)system.create_server(n, 8 * MiB);

  // Weak scaling: the tenant population grows with the cluster, and the
  // zipf home skew concentrates it on low node ids either way.
  sim::ScenarioEngine::Config scenario;
  scenario.seed = 7;
  scenario.node_count = static_cast<std::uint32_t>(nodes);
  scenario.initial_tenants = static_cast<std::uint32_t>(nodes / 8);
  scenario.max_tenants = static_cast<std::uint32_t>(nodes / 4);
  scenario.mean_arrival_gap = 250 * kMilli;
  scenario.mean_lifetime = 8 * kSecond;
  scenario.min_working_set = 96;
  scenario.max_working_set = 384;
  scenario.node_skew = 0.8;
  scenario.mean_op_gap = 2 * kMilli;
  scenario.duration = 10 * kSecond;
  sim::ScenarioEngine engine(scenario);

  auto& sim = system.simulator();
  engine.start(sim.now());

  struct Tenant {
    core::Ldmc* client = nullptr;
    std::unique_ptr<swap::SwapManager> manager;
  };
  std::map<sim::ScenarioEngine::TenantId, Tenant> tenants;
  workloads::AppSpec app = *workloads::find_app("LogisticRegression");
  Histogram fault_ns;

  for (;;) {
    const auto op = engine.next();
    if (op.kind == sim::ScenarioEngine::Op::Kind::kDone) break;
    if (op.at > sim.now()) sim.run_until(op.at);
    switch (op.kind) {
      case sim::ScenarioEngine::Op::Kind::kSpawn: {
        auto& tenant = tenants[op.tenant];
        tenant.client = &system.create_server(
            op.home % system.node_count(), 4 * MiB, setup.ldmc);
        tenant.manager = std::make_unique<swap::SwapManager>(
            *tenant.client, setup.swap,
            workloads::content_for(app, 1000 + op.tenant));
        break;
      }
      case sim::ScenarioEngine::Op::Kind::kAccess: {
        auto it = tenants.find(op.tenant);
        if (it == tenants.end() || it->second.manager == nullptr) break;
        auto& manager = *it->second.manager;
        const std::uint64_t faults_before = manager.faults();
        const SimTime t0 = sim.now();
        if (!manager.touch(op.index, op.write).ok()) {
          std::fprintf(stderr, "tenant %u touch failed\n", op.tenant);
          std::exit(1);
        }
        if (manager.faults() > faults_before)
          fault_ns.record(static_cast<std::uint64_t>(sim.now() - t0));
        break;
      }
      case sim::ScenarioEngine::Op::Kind::kRetire: {
        auto it = tenants.find(op.tenant);
        if (it == tenants.end()) break;
        // Departing tenant: free every backing entry (sorted for a
        // deterministic RPC order), then drop the swap state.
        std::vector<mem::EntryId> entries;
        it->second.client->map().for_each(
            [&entries](mem::EntryId id, const mem::EntryLocation&) {
              entries.push_back(id);
            });
        std::sort(entries.begin(), entries.end());
        for (mem::EntryId id : entries)
          (void)it->second.client->remove_sync(id);
        tenants.erase(it);
        break;
      }
      case sim::ScenarioEngine::Op::Kind::kDone:
        break;
    }
  }

  ScaleResult result;
  result.nodes = nodes;
  result.p99_fault_ns = fault_ns.p99();
  result.p50_fault_ns = fault_ns.p50();
  result.faults = fault_ns.count();
  const std::uint64_t remote = system.total_counter("ldms.put_remote");
  const std::uint64_t to_disk =
      system.total_counter("ldms.remote_overflow_to_disk");
  result.remote_share =
      remote + to_disk > 0
          ? static_cast<double>(remote) / static_cast<double>(remote + to_disk)
          : 1.0;
  result.rebalance_moves = system.total_counter("placement.rebalance_moves");
  result.reclaimed_pages = system.total_counter("harvest.reclaimed_pages");
  std::uint64_t migrate_p99 = 0;
  for (std::size_t n = 0; n < system.node_count(); ++n) {
    const Histogram* h =
        system.service(n).metrics().find_histogram("cluster.migrate_ns");
    if (h != nullptr && h->p99() > migrate_p99) migrate_p99 = h->p99();
  }
  result.migrate_p99_ns = migrate_p99;
  result.tenants = engine.tenants_spawned();
  result.regroups = system.regroups();
  result.offload_req = system.total_counter("harvest.offload_requests");
  result.migrated = system.total_counter("ldms.migrated_entries");
  result.migrate_put_failed = system.total_counter("ldms.migrate_put_failed");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dm;
  bench::print_header(
      "Cluster scaling: scenario-driven tenants, static vs adaptive (§I)",
      "load-aware placement + harvesting keep p99 bounded as nodes grow");

  // Debug mode: `bench_cluster_scale <nodes> [l][h][g]` runs one
  // configuration with the named levers (load-aware/harvest/regroup).
  if (argc == 3) {
    ModeFlags mode;
    for (const char* c = argv[2]; *c; ++c) {
      if (*c == 'l') mode.load_aware = true;
      if (*c == 'h') mode.harvest = true;
      if (*c == 'g') mode.regroup = true;
    }
    const auto r = run_scale(static_cast<std::size_t>(std::atoi(argv[1])), mode);
    std::printf(
        "p99 %llu ns, remote-share %.3f, moves %llu, reclaimed %llu, "
        "regroups %llu, offload-req %llu, migrated %llu, mig-put-fail %llu\n",
        static_cast<unsigned long long>(r.p99_fault_ns), r.remote_share,
        static_cast<unsigned long long>(r.rebalance_moves),
        static_cast<unsigned long long>(r.reclaimed_pages),
        static_cast<unsigned long long>(r.regroups),
        static_cast<unsigned long long>(r.offload_req),
        static_cast<unsigned long long>(r.migrated),
        static_cast<unsigned long long>(r.migrate_put_failed));
    return 0;
  }

  const std::vector<std::size_t> kNodeCounts = {16, 64, 128};
  std::map<std::string, std::vector<ScaleResult>> series;
  for (bool adaptive : {false, true}) {
    const std::string mode = adaptive ? "adaptive" : "static";
    std::printf("\n-- %s --\n", mode.c_str());
    for (std::size_t nodes : kNodeCounts) {
      const auto r = run_scale(
          nodes, adaptive ? ModeFlags{true, true, true} : ModeFlags{});
      series[mode].push_back(r);
      std::printf(
          "%4zu nodes: %5llu tenants-spawned, %7llu faults, "
          "p99 fault %-10s remote-share %5.1f%%  moves %llu  reclaimed %llu\n",
          nodes, static_cast<unsigned long long>(r.tenants),
          static_cast<unsigned long long>(r.faults),
          format_duration(static_cast<SimTime>(r.p99_fault_ns)).c_str(),
          100.0 * r.remote_share,
          static_cast<unsigned long long>(r.rebalance_moves),
          static_cast<unsigned long long>(r.reclaimed_pages));
    }
  }

  // Acceptance series: p99 degradation relative to each mode's own
  // 16-node baseline. The adaptive machinery must hold 128 nodes within
  // 2x of its 16-node p99; static placement is expected to blow past it.
  auto degradation = [](const std::vector<ScaleResult>& r) {
    return r.front().p99_fault_ns > 0
               ? static_cast<double>(r.back().p99_fault_ns) /
                     static_cast<double>(r.front().p99_fault_ns)
               : 0.0;
  };
  const double static_deg = degradation(series["static"]);
  const double adaptive_deg = degradation(series["adaptive"]);
  std::printf("\np99(128)/p99(16): static %.2fx, adaptive %.2fx %s\n",
              static_deg, adaptive_deg,
              adaptive_deg <= 2.0 ? "(within 2x bound)" : "(EXCEEDS 2x bound)");

  FILE* f = std::fopen("BENCH_cluster_scale.json", "w");
  if (f == nullptr) return 1;
  std::fprintf(f, "{\n\"bench\": \"cluster_scale\",\n\"series\": {\n");
  bool first_mode = true;
  for (const auto& [mode, results] : series) {
    std::fprintf(f, "%s\"%s\": [\n", first_mode ? "" : ",\n",
                 bench::json_escape(mode).c_str());
    first_mode = false;
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& r = results[i];
      std::fprintf(
          f,
          "{\"nodes\": %zu, \"tenants\": %llu, \"faults\": %llu, "
          "\"p50_fault_ns\": %llu, \"p99_fault_ns\": %llu, "
          "\"remote_share\": %.4f, \"rebalance_moves\": %llu, "
          "\"reclaimed_pages\": %llu, \"migrate_p99_ns\": %llu}%s\n",
          r.nodes, static_cast<unsigned long long>(r.tenants),
          static_cast<unsigned long long>(r.faults),
          static_cast<unsigned long long>(r.p50_fault_ns),
          static_cast<unsigned long long>(r.p99_fault_ns), r.remote_share,
          static_cast<unsigned long long>(r.rebalance_moves),
          static_cast<unsigned long long>(r.reclaimed_pages),
          static_cast<unsigned long long>(r.migrate_p99_ns),
          i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "]");
  }
  std::fprintf(f,
               "\n},\n\"p99_degradation_static\": %.4f,\n"
               "\"p99_degradation_adaptive\": %.4f,\n"
               "\"adaptive_within_2x\": %s\n}\n",
               static_deg, adaptive_deg,
               adaptive_deg <= 2.0 ? "true" : "false");
  std::fclose(f);
  std::printf("wrote BENCH_cluster_scale.json\n");
  return 0;
}
