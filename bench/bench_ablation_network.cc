// Ablation (§III) — when does full memory disaggregation become feasible?
//
// The paper argues full disaggregation "will be feasible when remote memory
// access speed is comparable to local memory speed". This bench sweeps the
// fabric from hard-drive-era Ethernet to a hypothetical DRAM-speed
// interconnect and measures an all-remote configuration (FS-RDMA) against
// the node-local pool (FS-SM): the ratio between them is the price of
// going fully remote at each network generation.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "swap/swap_manager.h"
#include "workloads/app_catalog.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Ablation: network speed vs full-disaggregation viability (§III)",
      "FS-RDMA approaches FS-SM as the fabric approaches DRAM speed");

  workloads::AppSpec app = *workloads::find_app("LogisticRegression");
  app.iterations = 3;
  constexpr std::uint64_t kPages = 512;
  constexpr std::uint64_t kResident = kPages / 2;

  struct Generation {
    const char* name;
    SimTime overhead_ns;
    double gib_per_s;
  };
  const Generation generations[] = {
      {"10GbE+iWARP", 10000, 1.0},
      {"IB-QDR", 3000, 3.5},
      {"IB-FDR (paper)", 1500, 6.0},
      {"IB-HDR", 800, 22.0},
      {"CXL-class", 300, 40.0},
      {"DRAM-speed", 100, 18.0},
  };

  std::printf("%-16s %16s %16s %12s\n", "Fabric", "FS-RDMA", "FS-SM",
              "penalty");
  for (const auto& generation : generations) {
    SimTime elapsed[2] = {0, 0};
    for (int mode = 0; mode < 2; ++mode) {
      auto setup = swap::make_fastswap_ratio(mode == 0 ? 0.0 : 1.0,
                                             kResident);
      bench::SwapRigOptions options;
      auto rig_config = [&] {
        core::DmSystem::Config config;
        config.node_count = 4;
        config.node.shm.arena_bytes = 32 * MiB;
        config.node.recv.arena_bytes = 32 * MiB;
        config.node.disk.capacity_bytes = 128 * MiB;
        config.service = setup.service;
        config.fabric.latency.rdma = {generation.overhead_ns,
                                      generation.gib_per_s};
        config.fabric.latency.rdma_send = {generation.overhead_ns + 500,
                                           generation.gib_per_s};
        return config;
      }();
      core::DmSystem system(rig_config);
      system.start();
      auto& client = system.create_server(0, 256 * MiB, setup.ldmc);
      swap::SwapManager memory(client, setup.swap,
                               workloads::content_for(app, 42));
      Rng rng(19);
      auto result = workloads::run_iterative(memory, app, kPages, rng);
      if (!result.status.ok()) {
        std::printf("run failed: %s\n", result.status.to_string().c_str());
        return 1;
      }
      elapsed[mode] = result.elapsed;
    }
    std::printf("%-16s %16s %16s %11.2fx\n", generation.name,
                format_duration(elapsed[0]).c_str(),
                format_duration(elapsed[1]).c_str(),
                bench::ratio(elapsed[0], elapsed[1]));
  }
  std::printf("\n(penalty = FS-RDMA completion / FS-SM completion; 1.0x "
              "means remote memory is as good as the node-local pool — the "
              "paper's feasibility bar for full disaggregation)\n");
  return 0;
}
