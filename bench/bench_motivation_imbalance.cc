// Motivation study (§I) — memory usage imbalance in a virtualized cluster.
//
// The paper motivates disaggregation with production observations: clusters
// see "an average of 30% idle memory during 70% of the running time, and of
// the 80% memory allocated, only 50% on average is used". This bench
// recreates that situation synthetically: a 32-node cluster hosting 80
// heterogeneous VMs whose allocations are sized for estimated peak demand
// (plus safety margin) while their actual working sets fluctuate —
// iterative phases, diurnal load, and noise — then reports the same
// statistics, plus the harvestable-memory view a disaggregated memory
// system would exploit.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"

namespace {

constexpr std::size_t kNodes = 32;
constexpr std::size_t kVms = 80;
constexpr double kNodeMemoryGb = 64.0;
constexpr int kSamplesPerDay = 24 * 60;  // per-minute sampling

struct Vm {
  std::size_t node;
  double allocated_gb;
  double base_fraction;   // typical working-set share of the allocation
  double amplitude;       // diurnal swing
  double phase;           // where in the day its peak falls
};

}  // namespace

int main() {
  using namespace dm;
  bench::print_header(
      "Motivation (§I): memory usage imbalance in a virtualized cluster",
      "~30% idle during ~70% of time; of ~80% allocated, ~50% used");

  Rng rng(2026);
  std::vector<Vm> vms;
  std::vector<double> node_allocated(kNodes, 0.0);
  for (std::size_t i = 0; i < kVms; ++i) {
    Vm vm;
    // Peak-estimated allocations: 8..32 GB, padded the way operators do.
    vm.allocated_gb = 8.0 + static_cast<double>(rng.next_below(25));
    vm.base_fraction = 0.40 + 0.3 * rng.next_double();
    vm.amplitude = 0.15 + 0.20 * rng.next_double();
    // Most guests follow the shared business-day cycle (correlated load is
    // what makes cluster-level idle time swing rather than average out);
    // the rest peak at random hours.
    vm.phase = rng.bernoulli(0.7) ? 0.3 + 0.05 * (rng.next_double() - 0.5)
                                  : rng.next_double();
    // First-fit by remaining capacity.
    std::size_t best = 0;
    for (std::size_t n = 1; n < kNodes; ++n)
      if (node_allocated[n] < node_allocated[best]) best = n;
    vm.node = best;
    node_allocated[best] += vm.allocated_gb;
    vms.push_back(vm);
  }

  const double total_capacity = kNodes * kNodeMemoryGb;
  double total_allocated = 0;
  for (double a : node_allocated) total_allocated += a;

  double sum_used_fraction = 0;       // used / allocated, cluster-wide
  double sum_idle_fraction = 0;       // idle allocated memory fraction
  int samples_over_30pct_idle = 0;
  double min_node_util = 1.0, max_node_util = 0.0;
  double harvest_gb_sum = 0;

  for (int s = 0; s < kSamplesPerDay; ++s) {
    const double day_pos = static_cast<double>(s) / kSamplesPerDay;
    double used_total = 0;
    std::vector<double> node_used(kNodes, 0.0);
    for (const Vm& vm : vms) {
      const double diurnal =
          vm.amplitude * std::sin(2 * 3.14159265 * (day_pos - vm.phase));
      const double noise = 0.05 * (rng.next_double() - 0.5);
      double fraction = vm.base_fraction + diurnal + noise;
      fraction = std::clamp(fraction, 0.05, 1.0);
      const double used = fraction * vm.allocated_gb;
      used_total += used;
      node_used[vm.node] += used;
    }
    const double used_fraction = used_total / total_allocated;
    const double idle_fraction = 1.0 - used_fraction;
    sum_used_fraction += used_fraction;
    sum_idle_fraction += idle_fraction;
    if (idle_fraction >= 0.30) ++samples_over_30pct_idle;
    harvest_gb_sum += total_allocated - used_total;
    for (std::size_t n = 0; n < kNodes; ++n) {
      if (node_allocated[n] <= 0) continue;
      const double util = node_used[n] / node_allocated[n];
      min_node_util = std::min(min_node_util, util);
      max_node_util = std::max(max_node_util, util);
    }
  }

  std::printf("cluster: %zu nodes x %.0f GB, %zu VMs, %.0f GB allocated "
              "(%.0f%% of capacity)\n",
              kNodes, kNodeMemoryGb, kVms, total_allocated,
              100.0 * total_allocated / total_capacity);
  std::printf("over one simulated day (per-minute samples):\n");
  std::printf("  average used / allocated        : %.0f%%   (paper: ~50%%)\n",
              100.0 * sum_used_fraction / kSamplesPerDay);
  std::printf("  average idle allocated memory   : %.0f%%   (paper: ~30%%)\n",
              100.0 * sum_idle_fraction / kSamplesPerDay);
  std::printf("  time with >=30%% idle            : %.0f%%   (paper: ~70%%)\n",
              100.0 * samples_over_30pct_idle / kSamplesPerDay);
  std::printf("  per-node utilization spread     : %.0f%% .. %.0f%%\n",
              100.0 * min_node_util, 100.0 * max_node_util);
  std::printf("  harvestable by disaggregation   : %.0f GB on average\n",
              harvest_gb_sum / kSamplesPerDay);
  std::printf("\nThe spread is the paper's opportunity: servers paging while "
              "neighbours idle. The disaggregated memory system turns the "
              "harvestable pool into the shared-memory and remote tiers.\n");
  return 0;
}
