// Ablation — where Zswap sits between Linux swap and FastSwap.
//
// The paper uses Zswap as the compression baseline (Fig 3). This bench
// runs it as a full system: Linux disk swap < Zswap (compressed RAM cache
// absorbs part of the spill) < FastSwap (node-level + remote disaggregated
// memory), across content compressibility levels — Zswap's edge over Linux
// shrinks as pages get harder to compress, FastSwap's does not.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/units.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Ablation: Zswap as a system (Linux < Zswap < FastSwap)",
      "compressed RAM cache helps; disaggregated memory helps more");

  workloads::AppSpec base = *workloads::find_app("LogisticRegression");
  base.iterations = 3;
  constexpr std::uint64_t kPages = 256;
  constexpr std::uint64_t kResident = kPages / 2;

  std::printf("%12s %16s %16s %16s %12s %12s\n", "content", "Linux", "Zswap",
              "FastSwap", "Zswap-gain", "FS-gain");
  for (double r : {0.05, 0.3, 0.8}) {
    workloads::AppSpec app = base;
    app.random_fraction = r;
    SimTime elapsed[3] = {0, 0, 0};
    const swap::SystemKind kinds[] = {swap::SystemKind::kLinux,
                                      swap::SystemKind::kZswap,
                                      swap::SystemKind::kFastSwap};
    for (int s = 0; s < 3; ++s) {
      auto setup = swap::make_system(kinds[s], kResident);
      bench::SwapRigOptions options;
      options.server_bytes = 6 * MiB;
      auto rig = bench::make_swap_rig(setup, app, options);
      Rng rng(3);
      auto result = workloads::run_iterative(*rig.manager, app, kPages, rng);
      if (!result.status.ok()) {
        std::printf("run failed (%s): %s\n", setup.name.c_str(),
                    result.status.to_string().c_str());
        return 1;
      }
      elapsed[s] = result.elapsed;
    }
    std::printf("%11.2f %16s %16s %16s %11.2fx %11.1fx\n", r,
                format_duration(elapsed[0]).c_str(),
                format_duration(elapsed[1]).c_str(),
                format_duration(elapsed[2]).c_str(),
                bench::ratio(elapsed[0], elapsed[1]),
                bench::ratio(elapsed[0], elapsed[2]));
  }
  std::printf("\n(content = incompressible fraction of page bytes)\n");
  return 0;
}
