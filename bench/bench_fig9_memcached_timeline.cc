// Figure 9 — Memcached (ETC, 50% configuration) throughput timeline after
// the working set has been pushed out to disaggregated memory (cold restart
// recovery).
//
// Paper shape over its 300 s window: FastSwap+PBS snaps back to peak
// throughput almost immediately; FastSwap w/o PBS needs >150 s; Infiniswap
// recovers to only ~60% of peak. The reproduction's working set is ~4000x
// smaller than the testbed's (3 MiB vs ~13 GB), so the whole recovery plays
// out ~4000x faster; the timeline below is scaled to a 240 ms window with
// 12 ms buckets, preserving the relative recovery dynamics (which system
// ramps first and to what fraction of peak).
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/units.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Figure 9: Memcached ETC recovery timeline (50% config, 300s)",
      "PBS recovers almost instantly; no-PBS slowly; Infiniswap partial");

  constexpr std::uint64_t kPages = 768;
  constexpr std::uint64_t kResident = kPages / 2;
  constexpr SimTime kDuration = 240 * kMilli;  // ~= paper's 300 s, scaled
  constexpr SimTime kWindow = 12 * kMilli;     // ~= paper's 15 s buckets
  const std::size_t windows = kDuration / kWindow;

  const workloads::AppSpec* app = workloads::find_app("Memcached");

  std::map<std::string, std::vector<double>> series;
  std::vector<std::string> order;
  bench::BenchJson snapshots("fig9_memcached_timeline");
  for (auto kind : {swap::SystemKind::kFastSwap,
                    swap::SystemKind::kFastSwapAdaptive,
                    swap::SystemKind::kFastSwapNoPbs,
                    swap::SystemKind::kInfiniswap}) {
    auto setup = swap::make_system(kind, kResident);
    bench::SwapRigOptions options;
    options.server_bytes = 2 * MiB;  // most backing lives in remote memory
    auto rig = bench::make_swap_rig(setup, *app, options);
    // Build the working set, then flush everything out: the cold restart.
    Rng rng(23);
    for (std::uint64_t p = 0; p < kPages; ++p) (void)rig.manager->touch(p);
    if (auto flushed = rig.manager->flush_all(); !flushed.ok()) {
      std::printf("flush failed: %s\n", flushed.to_string().c_str());
      return 1;
    }
    std::vector<double> kops(windows, 0.0);
    auto result = workloads::run_kv_timed(
        *rig.manager, *app, kPages, kDuration, kWindow,
        [&](std::size_t index, std::uint64_t ops) {
          if (index < kops.size())
            kops[index] = static_cast<double>(ops) * 1e6 /
                          static_cast<double>(kWindow);
        },
        rng);
    if (!result.status.ok()) {
      std::printf("run failed (%s): %s\n", setup.name.c_str(),
                  result.status.to_string().c_str());
      return 1;
    }
    series[setup.name] = kops;
    order.push_back(setup.name);
    snapshots.add_system(setup.name, *rig.system);
  }
  if (snapshots.write())
    std::printf("\nmetrics snapshot: %s (per-tier latency percentiles in "
                "node.0.ldms.get_ns.* / node.0.swap.fault_ns.*)\n",
                snapshots.path().c_str());

  std::printf("%8s", "t(ms)");
  for (const auto& name : order) std::printf(" %18s", name.c_str());
  std::printf("   (kops/s per window)\n");
  for (std::size_t w = 0; w < windows; ++w) {
    std::printf("%8llu", static_cast<unsigned long long>((w + 1) * 12));
    for (const auto& name : order) std::printf(" %18.1f", series[name][w]);
    std::printf("\n");
  }

  // Recovery summary: windows needed to reach 90% of final-plateau rate.
  std::printf("\nrecovery to 90%% of own plateau:\n");
  for (const auto& name : order) {
    const auto& kops = series[name];
    const double plateau = kops.back();
    std::size_t reached = windows;
    for (std::size_t w = 0; w < windows; ++w) {
      if (kops[w] >= 0.9 * plateau) {
        reached = w;
        break;
      }
    }
    std::printf("  %-16s t=%llums (plateau %.1f kops/s)\n", name.c_str(),
                static_cast<unsigned long long>((reached + 1) * 12), plateau);
  }
  return 0;
}
