// Ablation (§IV.F) — shared-memory-pool donation fraction sweep.
//
// The paper: donations start at 10% and may grow to 40% or shrink to zero;
// "maximizing the shared memory pool will provide higher throughput and
// lower latency". Sweep the donation fraction and measure an LR run at the
// 50% configuration: a bigger node-level pool absorbs more paging traffic
// at DRAM speed.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "core/dm_system.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Ablation: shared-pool donation fraction (§IV.F)",
      "larger node-level pools -> fewer remote/disk trips -> faster");

  workloads::AppSpec app = *workloads::find_app("LogisticRegression");
  app.iterations = 3;
  constexpr std::uint64_t kPages = 512;
  constexpr std::uint64_t kResident = kPages / 2;

  std::printf("%10s %16s %12s %12s %12s\n", "donation", "completion",
              "shm-puts", "remote-puts", "disk-puts");
  for (double fraction : {0.0, 0.05, 0.10, 0.20, 0.40}) {
    auto setup = swap::make_system(swap::SystemKind::kFastSwap, kResident);
    core::DmSystem::Config config;
    config.node_count = 4;
    config.node.shm.arena_bytes = 32 * MiB;
    config.node.recv.arena_bytes = 32 * MiB;
    config.node.disk.capacity_bytes = 256 * MiB;
    config.service = setup.service;
    config.default_donation_fraction = fraction;
    core::DmSystem system(config);
    system.start();
    // Modest allocation so the donation fraction really binds the pool.
    auto& client = system.create_server(0, 8 * MiB, setup.ldmc);
    swap::SwapManager manager(client, setup.swap,
                              workloads::content_for(app, 42));
    Rng rng(37);
    auto result = workloads::run_iterative(manager, app, kPages, rng);
    if (!result.status.ok()) {
      std::printf("run failed at %.2f: %s\n", fraction,
                  result.status.to_string().c_str());
      return 1;
    }
    std::printf("%9.0f%% %16s %12llu %12llu %12llu\n", fraction * 100,
                format_duration(result.elapsed).c_str(),
                static_cast<unsigned long long>(client.puts_to_shm()),
                static_cast<unsigned long long>(client.puts_to_remote()),
                static_cast<unsigned long long>(client.puts_to_disk()));
  }
  return 0;
}
