// google-benchmark microbenches for the substrate: host-CPU cost of the
// simulated fabric, the slab allocators, and the real compressor. These
// measure the reproduction's own efficiency (events/sec, compression
// throughput), not virtual-time results.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/status.h"
#include "compress/lz.h"
#include "compress/page_compressor.h"
#include "mem/buffer_pool.h"
#include "mem/memory_map.h"
#include "mem/shared_memory_pool.h"
#include "mem/slab_allocator.h"
#include "net/connection_manager.h"
#include "net/fabric.h"
#include "net/rpc.h"
#include "net/wire.h"
#include "sim/simulator.h"
#include "workloads/page_content.h"

namespace {

using namespace dm;

void BM_SimulatorEventThroughput(benchmark::State& state) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  for (auto _ : state) {
    for (int i = 0; i < 1000; ++i)
      sim.schedule_after(i, [&fired] { ++fired; });
    sim.run();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(fired));
}
BENCHMARK(BM_SimulatorEventThroughput);

void BM_FabricWrite4K(benchmark::State& state) {
  sim::Simulator sim;
  net::Fabric fabric(sim);
  fabric.add_node(0);
  fabric.add_node(1);
  std::vector<std::byte> region(1 * MiB);
  auto rkey = fabric.register_memory(1, region);
  auto qp = fabric.connect(0, 1);
  if (!rkey.ok() || !qp.ok()) return;  // substrate refused: nothing to time
  std::vector<std::byte> payload(4096, std::byte{7});
  std::uint64_t completions = 0;
  for (auto _ : state) {
    (void)(*qp)->post_write(*rkey, 0, payload,
                            [&completions](const net::Completion&) {
                              ++completions;
                            });
    sim.run();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(completions) * 4096);
}
BENCHMARK(BM_FabricWrite4K);

void BM_SlabAllocatorChurn(benchmark::State& state) {
  std::vector<std::byte> arena(4 * MiB);
  mem::SlabAllocator alloc(arena);
  std::vector<std::uint64_t> live;
  live.reserve(1024);
  Rng rng(1);
  for (auto _ : state) {
    if (live.size() < 512 || rng.bernoulli(0.5)) {
      auto a = alloc.allocate(512u << rng.next_below(4));
      if (a.ok()) live.push_back(*a);
    } else {
      (void)alloc.free(live.back());
      live.pop_back();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SlabAllocatorChurn);

void BM_SharedPoolPutGet(benchmark::State& state) {
  mem::SharedMemoryPool pool({.arena_bytes = 16 * MiB, .slab = {}});
  (void)pool.set_donation(1, 8 * MiB);
  std::vector<std::byte> data(4096, std::byte{3});
  std::vector<std::byte> out(4096);
  mem::EntryId id = 0;
  for (auto _ : state) {
    (void)pool.put(1, id, data);
    (void)pool.get(1, id, out);
    (void)pool.remove(1, id);
    ++id;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096 * 2);
}
BENCHMARK(BM_SharedPoolPutGet);

void BM_LzCompress4K(benchmark::State& state) {
  const double random_fraction = static_cast<double>(state.range(0)) / 100.0;
  std::vector<std::byte> page(4096);
  workloads::fill_page(page, 1, random_fraction, 5);
  std::size_t out_bytes = 0;
  for (auto _ : state) {
    auto compressed = compress::lz_compress(page);
    out_bytes += compressed.size();
    benchmark::DoNotOptimize(compressed);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
  state.counters["ratio"] =
      static_cast<double>(state.iterations()) * 4096.0 /
      static_cast<double>(out_bytes);
}
BENCHMARK(BM_LzCompress4K)->Arg(10)->Arg(50)->Arg(90);

void BM_LzRoundTrip4K(benchmark::State& state) {
  std::vector<std::byte> page(4096);
  workloads::fill_page(page, 1, 0.4, 5);
  auto compressed = compress::lz_compress(page);
  std::vector<std::byte> out(4096);
  for (auto _ : state) {
    (void)compress::lz_decompress(compressed, out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_LzRoundTrip4K);

void BM_PageCompressorBucketing(benchmark::State& state) {
  compress::PageCompressor pc(compress::GranularityMode::kFour);
  std::vector<std::byte> page(4096);
  workloads::fill_page(page, 2, 0.3, 5);
  for (auto _ : state) {
    auto cp = pc.compress(page);
    benchmark::DoNotOptimize(cp);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          4096);
}
BENCHMARK(BM_PageCompressorBucketing);

void BM_MemoryMapCommitLookup(benchmark::State& state) {
  mem::MemoryMap map(16);
  mem::EntryLocation loc;
  loc.tier = mem::Tier::kRemote;
  loc.replicas = {{1, 1, 0, 0, 4096}, {2, 2, 0, 0, 4096},
                  {3, 3, 0, 0, 4096}};
  mem::EntryId id = 0;
  for (auto _ : state) {
    map.commit(id % 100000, loc);
    benchmark::DoNotOptimize(map.lookup(id % 100000));
    ++id;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_MemoryMapCommitLookup);

void BM_RpcRoundTrip(benchmark::State& state) {
  sim::Simulator sim;
  net::Fabric fabric(sim);
  fabric.add_node(0);
  fabric.add_node(1);
  net::ConnectionManager cm(fabric);
  net::RpcEndpoint ep0(sim, 0), ep1(sim, 1);
  cm.register_endpoint(&ep0);
  cm.register_endpoint(&ep1);
  (void)cm.ensure_control_channel(0, 1);
  ep1.handle(1, [](net::NodeId, net::WireReader&)
                -> StatusOr<std::vector<std::byte>> {
    return std::vector<std::byte>{};
  });
  for (auto _ : state) {
    bool done = false;
    ep0.call(1, 1, {}, 10 * kMilli,
             [&](StatusOr<std::vector<std::byte>>) { done = true; });
    (void)sim.run_until_flag(done);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RpcRoundTrip);

}  // namespace

BENCHMARK_MAIN();
