// Figure 5 — impact of disaggregated-memory page compression on application
// performance.
//
// FastSwap at the 50% configuration with compression off vs 4-granularity
// compression, across ML workloads, with node-level and cluster-level
// disaggregated memory capacity sized so the *uncompressed* spill does not
// fit (overflowing to disk) while the compressed spill does. That capacity
// channel is where compression pays on a fast fabric: every batch that
// compression keeps in DRAM-or-RDMA tiers saves milliseconds of disk I/O.
// Paper shape: compression wins on every workload, more on the more
// compressible ones.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/units.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Figure 5: DM compression on/off vs application performance",
      "compression improves completion time for all ML workloads");

  constexpr std::uint64_t kPages = 1024;
  constexpr std::uint64_t kResident = kPages / 2;

  std::printf("%-20s %16s %16s %10s\n", "Workload", "no-compress",
              "4-granularity", "speedup");
  for (const char* name :
       {"PageRank", "LogisticRegression", "TunkRank", "KMeans", "SVM"}) {
    workloads::AppSpec app = *workloads::find_app(name);
    app.iterations = 3;

    auto run = [&](swap::CompressionMode mode) {
      auto setup = swap::make_system(swap::SystemKind::kFastSwap, kResident);
      setup.swap.compression = mode;
      bench::SwapRigOptions options;
      options.server_bytes = 3 * MiB;   // ~307 KiB node-level pool
      options.recv_arena = 512 * KiB;   // tight remote memory per peer
      auto rig = bench::make_swap_rig(setup, app, options);
      Rng rng(11);
      auto result = workloads::run_iterative(*rig.manager, app, kPages, rng);
      return result.status.ok() ? result.elapsed : SimTime{-1};
    };

    const SimTime off = run(swap::CompressionMode::kOff);
    const SimTime four = run(swap::CompressionMode::kFourGranularity);
    if (off < 0 || four < 0) {
      std::printf("%-20s run failed\n", name);
      continue;
    }
    std::printf("%-20s %16s %16s %9.2fx\n", name,
                format_duration(off).c_str(), format_duration(four).c_str(),
                bench::ratio(off, four));
  }
  return 0;
}
