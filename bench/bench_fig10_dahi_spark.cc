// Figure 10 — vanilla Spark vs DAHI-powered Spark on LR, SVM, KMeans and
// ConnectedComponents over small / medium / large datasets.
//
// Small datasets cache fully in executor heaps (both systems equal);
// medium and large datasets overflow, where vanilla Spark recomputes
// dropped partitions from lineage while DAHI serves them from node-level /
// remote disaggregated memory. Paper speedups (medium, large): LR 1.7x,
// 4.3x; SVM 3.3x, 5.8x; KMeans 2.5x, 3.1x; CC 1.3x, 1.9x — DAHI wins grow
// with dataset size.
#include <cstdio>

#include "bench_util.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "rddcache/mini_spark.h"

namespace {

using dm::rdd::Record;
using dm::rdd::RddPtr;

struct Job {
  const char* name;
  int iterations;            // lineage reuse count
  int lineage_depth;         // transformation chain length (compute cost)
};

RddPtr build_dataset(const Job& job, std::size_t partitions,
                     std::size_t records) {
  auto rdd = dm::rdd::Rdd::source(
      "input", partitions, records, [](std::size_t p, std::size_t i) {
        return static_cast<Record>(p * 48271 + i);
      });
  for (int d = 0; d < job.lineage_depth; ++d)
    rdd = rdd->map("stage", [d](Record r) { return r * 31 + d; });
  rdd->cache();
  return rdd;
}

}  // namespace

int main() {
  using namespace dm;
  bench::print_header(
      "Figure 10: vanilla Spark vs DAHI (partial RDD caching)",
      "speedup grows with dataset size: LR 1.7/4.3x, SVM 3.3/5.8x, "
      "KMeans 2.5/3.1x, CC 1.3/1.9x (medium/large)");

  const Job jobs[] = {
      {"LR", 8, 3},
      {"SVM", 10, 4},
      {"KMeans", 9, 2},
      {"CC", 5, 1},
  };
  // Dataset categories: partitions x records (8 B each). The 64 KiB
  // executor heap holds the small dataset fully, most of the medium one
  // (partial overflow), and a minority of the large one — so the DAHI
  // speedup grows with dataset size, as in the paper.
  struct Category {
    const char* name;
    std::size_t partitions;
    std::size_t records;
  };
  const Category categories[] = {
      {"small", 8, 1500},    // 2 x 12 KiB per executor: fits
      {"medium", 16, 2500},  // 4 x 20 KiB = 80 KiB: ~25% overflow
      {"large", 28, 5000},   // 7 x 40 KiB = 280 KiB: ~77% overflow
  };

  std::printf("%-8s %-8s %16s %16s %10s\n", "Job", "Dataset", "vanilla",
              "DAHI", "speedup");
  for (const Job& job : jobs) {
    for (const Category& cat : categories) {
      SimTime elapsed[2] = {0, 0};
      for (int mode = 0; mode < 2; ++mode) {
        core::DmSystem::Config config;
        config.node_count = 4;
        config.node.shm.arena_bytes = 32 * MiB;
        config.node.recv.arena_bytes = 32 * MiB;
        config.node.disk.capacity_bytes = 256 * MiB;
        config.service.rdmc.replication = 1;
        core::DmSystem system(config);
        system.start();

        rdd::MiniSpark::Config spark_config;
        spark_config.executors = 4;
        spark_config.executor.cache_bytes = 64 * KiB;  // per-executor heap
        spark_config.executor.overflow = mode == 0
                                             ? rdd::OverflowPolicy::kRecompute
                                             : rdd::OverflowPolicy::kDahi;
        rdd::MiniSpark spark(system, spark_config);

        auto rdd = build_dataset(job, cat.partitions, cat.records);
        auto& sim = system.simulator();
        const SimTime start = sim.now();
        for (int iter = 0; iter < job.iterations; ++iter) {
          auto sum = spark.sum(rdd);
          if (!sum.ok()) {
            std::printf("job failed: %s\n", sum.status().to_string().c_str());
            return 1;
          }
        }
        elapsed[mode] = sim.now() - start;
      }
      std::printf("%-8s %-8s %16s %16s %9.2fx\n", job.name, cat.name,
                  format_duration(elapsed[0]).c_str(),
                  format_duration(elapsed[1]).c_str(),
                  bench::ratio(elapsed[0], elapsed[1]));
    }
  }
  return 0;
}
