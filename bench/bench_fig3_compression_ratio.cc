// Figure 3 — compression ratio for 10 ML workloads: FastSwap with
// 2-granularity and 4-granularity page compression vs Zswap (zbud).
//
// For each application, compress a sample of its (synthetic, per-app
// compressibility) pages and report the *effective* ratio — logical bytes
// over storage charged, where FastSwap charges the compression bucket and
// Zswap charges the zbud frame share. Paper shape: 4-granularity >=
// 2-granularity everywhere, and both beat Zswap's <=2.0 ceiling on
// compressible workloads.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "compress/page_compressor.h"
#include "workloads/app_catalog.h"
#include "workloads/page_content.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Figure 3: Compression ratio, 10 workloads",
      "FastSwap 4-gran > 2-gran; Zswap capped at 2.0 by zbud packing");

  constexpr std::size_t kSamplePages = 512;
  compress::PageCompressor two(compress::GranularityMode::kTwo);
  compress::PageCompressor four(compress::GranularityMode::kFour);

  std::printf("%-20s %12s %12s %12s\n", "Workload", "FS-2gran", "FS-4gran",
              "Zswap");
  for (const auto& app : workloads::app_catalog()) {
    std::uint64_t bytes_two = 0, bytes_four = 0, bytes_zswap = 0;
    std::vector<std::byte> page(compress::kPageSize);
    for (std::uint64_t id = 0; id < kSamplePages; ++id) {
      workloads::fill_page(page, id, app.random_fraction, 7);
      bytes_two += two.compress(page).bucket;
      auto cp = four.compress(page);
      bytes_four += cp.bucket;
      const std::size_t lz_size =
          cp.is_raw ? compress::kPageSize : cp.data.size();
      bytes_zswap += compress::zswap_zbud_footprint(lz_size);
    }
    const double logical =
        static_cast<double>(kSamplePages * compress::kPageSize);
    std::printf("%-20s %12.2f %12.2f %12.2f\n",
                std::string(app.name).c_str(),
                logical / static_cast<double>(bytes_two),
                logical / static_cast<double>(bytes_four),
                logical / static_cast<double>(bytes_zswap));
  }
  return 0;
}
