// Ablation (§VI) — the memory/storage hierarchy and where remote memory
// fits as devices improve.
//
// §VI: "Memory disaggregation is one step towards leveraging the latency
// gap between network I/O and storage I/O." This bench sweeps the local
// swap device through storage generations (7.2K HDD, SATA SSD, NVMe SSD,
// Optane-class, NVM-DIMM-class) and compares device-backed swap against
// FastSwap's remote-memory path on the paper's FDR fabric: the gap closes
// as storage approaches memory, which is exactly the §VI trade space.
//
// Part 2 ablates the cache-coherent CXL-class tier (§III feasibility,
// DESIGN.md §14) on a hot-working-set trace: DRAM -> RDMA baseline vs
// DRAM -> CXL -> RDMA, same seed. Pages evicted from DRAM land in the
// line-addressable coherent pool, where sub-page faults cost a ~ns-scale
// load/store transaction instead of a page-granular RDMA swap. The bench
// writes BENCH_storage_tiers.json with the headline numbers plus a
// baseline-repeat byte-identity bit (the tier defaults off and must not
// perturb the failure-free schedule); ci.sh --cxl-only gates on both.
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "cxl/page_tier.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"
#include "workloads/page_content.h"

namespace {

// Hot-working-set trace: a zipf-flavored 85/15 split over a hot set sized
// to overflow DRAM into the next tier down.
constexpr std::uint64_t kTierPages = 256;
constexpr std::uint64_t kTierResident = 64;
constexpr std::uint64_t kTierHot = 48;
constexpr std::size_t kTierPool = 96;
constexpr int kTierTouches = 12000;

struct TierRun {
  dm::SimTime elapsed = 0;
  std::string snapshot;
  std::uint64_t line_hits = 0;
  std::uint64_t promotions = 0;
  std::uint64_t demotions = 0;
  bool ok = false;
};

TierRun run_hot_set(bool with_cxl) {
  using namespace dm;
  auto setup = swap::make_system(swap::SystemKind::kFastSwap, kTierResident);
  core::DmSystem::Config config;
  config.node_count = 4;
  config.node.shm.arena_bytes = 32 * MiB;
  config.node.recv.arena_bytes = 32 * MiB;
  config.node.disk.capacity_bytes = 256 * MiB;
  config.service = setup.service;
  if (with_cxl) {
    config.cxl_region_bytes = 16 * MiB;
    config.cxl_home = 1;
  }
  core::DmSystem system(config);
  system.start();
  auto& client = system.create_server(0, 256 * MiB, setup.ldmc);

  std::unique_ptr<cxl::CxlPageTier> tier;
  auto swap_config = setup.swap;
  if (with_cxl) {
    cxl::CxlPageTier::Config tier_config;
    tier_config.pool_pages = kTierPool;
    tier_config.page_bytes = swap::kPageBytes;
    tier = std::make_unique<cxl::CxlPageTier>(system.create_cxl_agent(0),
                                              tier_config);
    swap_config.cxl_tier = tier.get();
    swap_config.cxl_promote_threshold = 8;
  }
  swap::SwapManager memory(client, swap_config,
                           [](std::uint64_t page, std::span<std::byte> out) {
                             workloads::fill_page(out, page, 0.3, 11);
                           });

  Rng rng(23);
  TierRun run;
  const SimTime start = system.simulator().now();
  for (int i = 0; i < kTierTouches; ++i) {
    const std::uint64_t page =
        rng.bernoulli(0.85) ? rng.next_below(kTierHot)
                            : kTierHot + rng.next_below(kTierPages - kTierHot);
    if (!memory.touch(page, rng.next_below(4) == 0).ok()) return run;
  }
  run.elapsed = system.simulator().now() - start;
  run.snapshot = system.hub().snapshot_json();
  if (tier != nullptr) {
    run.line_hits = tier->metrics().counter_value("cxl.tier.line_hits");
    run.promotions = memory.metrics().counter_value("swap.cxl.promotions");
    run.demotions = memory.metrics().counter_value("swap.cxl.demotions");
  }
  run.ok = true;
  return run;
}

}  // namespace

int main() {
  using namespace dm;
  bench::print_header(
      "Ablation: storage generations vs remote memory (§VI)",
      "the disk-network latency gap narrows with each storage generation");

  workloads::AppSpec app = *workloads::find_app("LogisticRegression");
  app.iterations = 3;
  constexpr std::uint64_t kPages = 512;
  constexpr std::uint64_t kResident = kPages / 2;

  struct Device {
    const char* name;
    SimTime seek_ns;
    double mib_per_s;
  };
  const Device devices[] = {
      {"HDD-7.2K (paper)", 6 * kMilli, 150.0},
      {"SATA-SSD", 80 * kMicro, 500.0},
      {"NVMe-SSD", 20 * kMicro, 3000.0},
      {"Optane-class", 8 * kMicro, 2500.0},
      {"NVM-DIMM-class", 1 * kMicro, 8000.0},
  };

  // Remote-memory reference: FastSwap all-remote on the paper's fabric.
  SimTime remote_elapsed = 0;
  {
    auto setup = swap::make_fastswap_ratio(0.0, kResident);
    auto rig = bench::make_swap_rig(setup, app);
    Rng rng(23);
    auto result = workloads::run_iterative(*rig.manager, app, kPages, rng);
    if (!result.status.ok()) return 1;
    remote_elapsed = result.elapsed;
  }

  std::printf("remote memory (FS-RDMA, FDR fabric): %s\n\n",
              format_duration(remote_elapsed).c_str());
  std::printf("%-18s %16s %18s\n", "Swap device", "device swap",
              "vs remote memory");
  for (const Device& device : devices) {
    auto setup = swap::make_system(swap::SystemKind::kLinux, kResident);
    bench::SwapRigOptions options;
    auto config = [&] {
      core::DmSystem::Config c;
      c.node_count = 4;
      c.node.shm.arena_bytes = 32 * MiB;
      c.node.recv.arena_bytes = 32 * MiB;
      c.node.disk.capacity_bytes = 256 * MiB;
      c.node.disk.model.seek_ns = device.seek_ns;
      c.node.disk.model.mib_per_s = device.mib_per_s;
      c.service = setup.service;
      return c;
    }();
    core::DmSystem system(config);
    system.start();
    auto& client = system.create_server(0, 256 * MiB, setup.ldmc);
    swap::SwapManager memory(client, setup.swap,
                             workloads::content_for(app, 23));
    Rng rng(23);
    auto result = workloads::run_iterative(memory, app, kPages, rng);
    if (!result.status.ok()) {
      std::printf("run failed: %s\n", result.status.to_string().c_str());
      return 1;
    }
    const double gap = bench::ratio(result.elapsed, remote_elapsed);
    std::printf("%-18s %16s %17.1fx\n", device.name,
                format_duration(result.elapsed).c_str(), gap);
  }
  std::printf("\n(>1x: remote memory is the faster overflow tier; as the "
              "ratio approaches 1x the killer-app question of §VI — which "
              "combination of memory, network and storage wins — reopens)\n");

  // --- Part 2: the cache-coherent CXL-class tier (§III) ---------------------
  std::printf("\nCXL tier ablation (hot working set, 85%% of touches on "
              "%llu of %llu pages):\n",
              static_cast<unsigned long long>(kTierHot),
              static_cast<unsigned long long>(kTierPages));
  const TierRun baseline = run_hot_set(/*with_cxl=*/false);
  const TierRun repeat = run_hot_set(/*with_cxl=*/false);
  const TierRun cxl = run_hot_set(/*with_cxl=*/true);
  if (!baseline.ok || !repeat.ok || !cxl.ok) {
    std::printf("CXL ablation run failed\n");
    return 1;
  }
  const bool repeat_identical = baseline.snapshot == repeat.snapshot;
  const double speedup = bench::ratio(baseline.elapsed, cxl.elapsed);
  std::printf("  DRAM -> RDMA            %s\n",
              format_duration(baseline.elapsed).c_str());
  std::printf("  DRAM -> CXL -> RDMA     %s   (%.2fx, %llu line hits, "
              "%llu promotions, %llu demotions)\n",
              format_duration(cxl.elapsed).c_str(), speedup,
              static_cast<unsigned long long>(cxl.line_hits),
              static_cast<unsigned long long>(cxl.promotions),
              static_cast<unsigned long long>(cxl.demotions));
  std::printf("  baseline repeat byte-identical: %s (tier defaults off; the "
              "failure-free schedule must not move)\n",
              repeat_identical ? "yes" : "NO");

  FILE* f = std::fopen("BENCH_storage_tiers.json", "w");
  if (f == nullptr) return 1;
  std::fprintf(f, "{\n\"bench\": \"storage_tiers\",\n\"cxl\": {\n");
  std::fprintf(f, "\"baseline_elapsed_ns\": %llu,\n",
               static_cast<unsigned long long>(baseline.elapsed));
  std::fprintf(f, "\"cxl_elapsed_ns\": %llu,\n",
               static_cast<unsigned long long>(cxl.elapsed));
  std::fprintf(f, "\"speedup\": %.4f,\n", speedup);
  std::fprintf(f, "\"baseline_repeat_identical\": %s,\n",
               repeat_identical ? "true" : "false");
  std::fprintf(f, "\"line_hits\": %llu,\n",
               static_cast<unsigned long long>(cxl.line_hits));
  std::fprintf(f, "\"promotions\": %llu,\n",
               static_cast<unsigned long long>(cxl.promotions));
  std::fprintf(f, "\"demotions\": %llu\n",
               static_cast<unsigned long long>(cxl.demotions));
  std::fprintf(f, "}\n}\n");
  std::fclose(f);
  std::printf("\nwrote BENCH_storage_tiers.json\n");
  return 0;
}
