// Ablation (§VI) — the memory/storage hierarchy and where remote memory
// fits as devices improve.
//
// §VI: "Memory disaggregation is one step towards leveraging the latency
// gap between network I/O and storage I/O." This bench sweeps the local
// swap device through storage generations (7.2K HDD, SATA SSD, NVMe SSD,
// Optane-class, NVM-DIMM-class) and compares device-backed swap against
// FastSwap's remote-memory path on the paper's FDR fabric: the gap closes
// as storage approaches memory, which is exactly the §VI trade space.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Ablation: storage generations vs remote memory (§VI)",
      "the disk-network latency gap narrows with each storage generation");

  workloads::AppSpec app = *workloads::find_app("LogisticRegression");
  app.iterations = 3;
  constexpr std::uint64_t kPages = 512;
  constexpr std::uint64_t kResident = kPages / 2;

  struct Device {
    const char* name;
    SimTime seek_ns;
    double mib_per_s;
  };
  const Device devices[] = {
      {"HDD-7.2K (paper)", 6 * kMilli, 150.0},
      {"SATA-SSD", 80 * kMicro, 500.0},
      {"NVMe-SSD", 20 * kMicro, 3000.0},
      {"Optane-class", 8 * kMicro, 2500.0},
      {"NVM-DIMM-class", 1 * kMicro, 8000.0},
  };

  // Remote-memory reference: FastSwap all-remote on the paper's fabric.
  SimTime remote_elapsed = 0;
  {
    auto setup = swap::make_fastswap_ratio(0.0, kResident);
    auto rig = bench::make_swap_rig(setup, app);
    Rng rng(23);
    auto result = workloads::run_iterative(*rig.manager, app, kPages, rng);
    if (!result.status.ok()) return 1;
    remote_elapsed = result.elapsed;
  }

  std::printf("remote memory (FS-RDMA, FDR fabric): %s\n\n",
              format_duration(remote_elapsed).c_str());
  std::printf("%-18s %16s %18s\n", "Swap device", "device swap",
              "vs remote memory");
  for (const Device& device : devices) {
    auto setup = swap::make_system(swap::SystemKind::kLinux, kResident);
    bench::SwapRigOptions options;
    auto config = [&] {
      core::DmSystem::Config c;
      c.node_count = 4;
      c.node.shm.arena_bytes = 32 * MiB;
      c.node.recv.arena_bytes = 32 * MiB;
      c.node.disk.capacity_bytes = 256 * MiB;
      c.node.disk.model.seek_ns = device.seek_ns;
      c.node.disk.model.mib_per_s = device.mib_per_s;
      c.service = setup.service;
      return c;
    }();
    core::DmSystem system(config);
    system.start();
    auto& client = system.create_server(0, 256 * MiB, setup.ldmc);
    swap::SwapManager memory(client, setup.swap,
                             workloads::content_for(app, 23));
    Rng rng(23);
    auto result = workloads::run_iterative(memory, app, kPages, rng);
    if (!result.status.ok()) {
      std::printf("run failed: %s\n", result.status.to_string().c_str());
      return 1;
    }
    const double gap = bench::ratio(result.elapsed, remote_elapsed);
    std::printf("%-18s %16s %17.1fx\n", device.name,
                format_duration(result.elapsed).c_str(), gap);
  }
  std::printf("\n(>1x: remote memory is the faster overflow tier; as the "
              "ratio approaches 1x the killer-app question of §VI — which "
              "combination of memory, network and storage wins — reopens)\n");
  return 0;
}
