// Figure 4 — effect of page compressibility on application completion time
// for logistic regression at the 50% configuration.
//
// The experiment behind Fig 4: pages spill to the node-coordinated shared
// memory pool first; when the pool is full, the overflow goes to (a) remote
// memory or (b) the local swap disk. Compression multiplies the pool's
// effective capacity, so more compressible pages keep more of the overflow
// at DRAM speed and send less down-tier. Paper shape: completion time falls
// as compressibility rises, and the effect is much larger on the disk path
// (each avoided I/O saves milliseconds, not microseconds).
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/units.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Figure 4: compressibility vs completion time (LR, 50% config)",
      "completion drops as pages compress better; disk benefits most");

  const workloads::AppSpec* base = workloads::find_app("LogisticRegression");
  constexpr std::uint64_t kPages = 512;
  constexpr std::uint64_t kResident = kPages / 2;  // 50% configuration

  // random_fraction r gives LZ ratio ~ 1/r: sweep ~4-6x down to ~1.3x.
  const double fractions[] = {0.05, 0.15, 0.30, 0.60};

  for (const char* target : {"remote", "disk"}) {
    const bool remote = std::string_view(target) == "remote";
    std::printf("\n(%s) shared pool overflow to %s, compression 4-gran\n",
                remote ? "a" : "b", target);
    std::printf("%18s %16s %12s %12s\n", "compress-ratio", "completion",
                "shm-puts", "overflow");
    SimTime best = 0;
    for (double r : fractions) {
      workloads::AppSpec app = *base;
      app.random_fraction = r;
      app.iterations = 3;
      auto setup = swap::make_system(swap::SystemKind::kFastSwap, kResident);
      setup.ldmc.allow_remote = remote;
      setup.ldmc.allow_disk = !remote;
      bench::SwapRigOptions options;
      // 10% donation of 3 MiB = ~307 KiB node-level pool: holds the whole
      // spill only at high compression ratios.
      options.server_bytes = 3 * MiB;
      auto rig = bench::make_swap_rig(setup, app, options);
      Rng rng(7);
      auto result = workloads::run_iterative(*rig.manager, app, kPages, rng);
      if (!result.status.ok()) {
        std::printf("  run failed: %s\n", result.status.to_string().c_str());
        return 1;
      }
      if (best == 0) best = result.elapsed;
      const auto logical =
          rig.manager->metrics().counter_value("swap.logical_bytes");
      const auto stored =
          rig.manager->metrics().counter_value("swap.compressed_bytes");
      const double measured =
          stored ? static_cast<double>(logical) / static_cast<double>(stored)
                 : 1.0;
      // Remote overflow happens via LRU spill out of the shared pool;
      // disk overflow is routed directly when the pool is full.
      const auto overflow =
          remote ? rig.system->total_counter("ldms.spilled_to_remote") +
                       rig.client->puts_to_remote()
                 : rig.client->puts_to_disk();
      std::printf("%17.2fx %16s %12llu %12llu\n", measured,
                  format_duration(result.elapsed).c_str(),
                  static_cast<unsigned long long>(rig.client->puts_to_shm()),
                  static_cast<unsigned long long>(overflow));
    }
  }
  std::printf("\n(rows are ordered most- to least-compressible; completion "
              "rising down the column reproduces Fig 4)\n");
  return 0;
}
