// Figure 8 — throughput of Redis, Memcached and VoltDB at the 50%
// configuration while varying the node-level : cluster-level distribution
// of disaggregated memory: FS-SM, FS-9:1, FS-7:3, FS-5:5, FS-RDMA, plus the
// Linux, Infiniswap, and NBDX baselines.
//
// Paper shape: FS-SM is the best by far (up to 571x/171x/240x over Linux,
// ~11x/5x/2x over Infiniswap); throughput falls monotonically as more
// traffic goes to remote memory; FS-RDMA still beats Infiniswap and NBDX.
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/units.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Figure 8: throughput vs DM distribution ratio (50% config)",
      "FS-SM >> FS-9:1 > FS-7:3 > FS-5:5 > FS-RDMA > NBDX/Infiniswap >> Linux");

  constexpr std::uint64_t kPages = 512;
  constexpr std::uint64_t kResident = kPages / 2;
  constexpr std::uint64_t kOps = 30000;

  std::vector<std::pair<std::string, swap::SystemSetup>> configs;
  for (double f : {1.0, 0.9, 0.7, 0.5, 0.0}) {
    auto setup = swap::make_fastswap_ratio(f, kResident);
    configs.emplace_back(setup.name, setup);
  }
  for (auto kind : {swap::SystemKind::kNbdx, swap::SystemKind::kInfiniswap,
                    swap::SystemKind::kLinux}) {
    auto setup = swap::make_system(kind, kResident);
    configs.emplace_back(setup.name, setup);
  }

  std::printf("%-12s %14s %14s %14s %12s\n", "System", "Redis(kops/s)",
              "Memcached", "VoltDB", "p99(mcd)");
  std::vector<double> linux_tp(3, 0.0);
  std::vector<std::vector<double>> all_tp;
  for (const auto& [name, setup] : configs) {
    std::vector<double> row;
    std::string p99_memcached;
    for (const char* app_name : {"Redis", "Memcached", "VoltDB"}) {
      const workloads::AppSpec* app = workloads::find_app(app_name);
      auto rig = bench::make_swap_rig(setup, *app);
      // Warm the working set so the steady state is measured.
      Rng rng(19);
      for (std::uint64_t p = 0; p < kPages; ++p)
        (void)rig.manager->touch(p);
      auto result = workloads::run_kv(*rig.manager, *app, kPages, kOps, rng);
      if (!result.status.ok()) {
        std::printf("run failed (%s/%s): %s\n", name.c_str(), app_name,
                    result.status.to_string().c_str());
        return 1;
      }
      row.push_back(result.ops_per_second() / 1000.0);
      if (std::string_view(app_name) == "Memcached")
        p99_memcached = format_duration(
            static_cast<SimTime>(result.op_latency.p99()));
    }
    all_tp.push_back(row);
    if (name == "Linux") linux_tp = row;
    std::printf("%-12s %14.1f %14.1f %14.1f %12s\n", name.c_str(), row[0],
                row[1], row[2], p99_memcached.c_str());
  }

  std::printf("\nFS-SM speedups over Linux: %.0fx / %.0fx / %.0fx "
              "(paper: 571x / 171x / 240x class)\n",
              all_tp[0][0] / linux_tp[0], all_tp[0][1] / linux_tp[1],
              all_tp[0][2] / linux_tp[2]);
  return 0;
}
