// Cluster-scale harvest (§I + §III) — busy tenants borrowing idle memory.
//
// The paper's core promise: a server under memory pressure uses idle memory
// from neighbours instead of its disk. This bench builds the multi-tenant
// situation directly: four nodes, four busy VMs at the 50% configuration,
// and idle VMs elsewhere whose untouched allocations back the donated
// pools. Tenants run interleaved round-robin (the simulator serializes
// them, preserving relative costs). Compared: disaggregation on (FastSwap)
// vs off (each busy VM on its own disk).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Cluster harvest: busy tenants borrowing idle memory (§I, §III)",
      "idle neighbours' memory absorbs the busy tenants' overflow");
  bench::BenchJson json("cluster_harvest");

  workloads::AppSpec app = *workloads::find_app("LogisticRegression");
  app.iterations = 2;
  constexpr std::uint64_t kPages = 384;
  constexpr std::uint64_t kResident = kPages / 2;
  constexpr int kBusyTenants = 4;

  for (bool disaggregated : {true, false}) {
    auto setup = swap::make_system(disaggregated ? swap::SystemKind::kFastSwap
                                                 : swap::SystemKind::kLinux,
                                   kResident);
    core::DmSystem::Config config;
    config.node_count = 4;
    config.node.shm.arena_bytes = 32 * MiB;
    config.node.recv.arena_bytes = 32 * MiB;
    config.node.disk.capacity_bytes = 256 * MiB;
    config.service = setup.service;
    core::DmSystem system(config);
    system.start();

    // Idle tenants: large allocations, no activity — their donations fill
    // the shared pools and their nodes' receive pools host remote traffic.
    for (std::size_t n = 0; n < system.node_count(); ++n)
      (void)system.create_server(n, 64 * MiB);

    // Busy tenants: one per node, each running the LR trace.
    struct Tenant {
      std::unique_ptr<swap::SwapManager> memory;
      Rng rng{0};
      std::uint64_t pos = 0;
      int iter = 0;
    };
    std::vector<Tenant> tenants(kBusyTenants);
    for (int t = 0; t < kBusyTenants; ++t) {
      auto& client = system.create_server(t % system.node_count(), 6 * MiB,
                                          setup.ldmc);
      tenants[t].memory = std::make_unique<swap::SwapManager>(
          client, setup.swap, workloads::content_for(app, 100 + t));
      tenants[t].rng.reseed(100 + t);
      // Fold each tenant's swap metrics into the hub: the JSON companion
      // then carries per-tenant fault-latency percentiles, not just the
      // aggregate means printed below.
      system.hub().add("tenant." + std::to_string(t),
                       &tenants[t].memory->metrics());
    }

    // Round-robin interleave: one access per tenant per turn.
    auto& sim = system.simulator();
    const SimTime start = sim.now();
    int active = kBusyTenants;
    while (active > 0) {
      active = 0;
      for (auto& tenant : tenants) {
        if (tenant.iter >= app.iterations) continue;
        ++active;
        sim.run_until(sim.now() + app.cpu_ns_per_access);
        if (!tenant.memory->touch(tenant.pos).ok()) return 1;
        if (++tenant.pos == kPages) {
          tenant.pos = 0;
          ++tenant.iter;
        }
      }
    }
    const SimTime elapsed = sim.now() - start;
    std::uint64_t faults = 0;
    for (auto& tenant : tenants) faults += tenant.memory->faults();
    std::printf("%-18s all %d tenants done in %-10s (%llu faults total)\n",
                disaggregated ? "disaggregated" : "disk-only", kBusyTenants,
                format_duration(elapsed).c_str(),
                static_cast<unsigned long long>(faults));
    // Tail latency is where disaggregation shows up: a mean over all
    // tenants hides one tenant stuck behind the swap disk.
    for (int t = 0; t < kBusyTenants; ++t) {
      const Histogram* fault_ns =
          tenants[t].memory->metrics().find_histogram("swap.fault_ns");
      std::printf("  tenant %d: %llu faults, p99 fault %s\n", t,
                  static_cast<unsigned long long>(tenants[t].memory->faults()),
                  format_duration(static_cast<SimTime>(
                                      fault_ns != nullptr ? fault_ns->p99() : 0))
                      .c_str());
    }
    json.add_system(disaggregated ? "disaggregated" : "disk-only", system);
  }
  std::printf("\n(the disaggregated run serves every busy tenant's overflow "
              "from the idle tenants' donated memory; the disk-only run "
              "pays the swap device for the same faults)\n");
  if (!json.write()) return 1;
  std::printf("wrote %s\n", json.path().c_str());
  return 0;
}
