// Figure 7 — completion time of five ML workloads under FastSwap,
// Infiniswap, and Linux disk swap at the 75% and 50% configurations.
//
// Paper numbers on the authors' testbed: at 75%, FastSwap improves over
// Linux 24x on average (up to 83x) and over Infiniswap 2.3x on average; at
// 50%, 45x average (up to 85x) over Linux and 2.6x average (best 4.4x) over
// Infiniswap. The reproduction targets the *shape*: FastSwap < Infiniswap
// << Linux, larger gaps at 50% than at 75%.
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/units.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Figure 7: ML workload completion, FastSwap vs Infiniswap vs Linux",
      "75%: FS 24x avg over Linux, 2.3x over Infiniswap; 50%: 45x / 2.6x");

  constexpr std::uint64_t kPages = 512;
  const char* apps[] = {"PageRank", "LogisticRegression", "TunkRank",
                        "KMeans", "SVM"};

  for (double resident_fraction : {0.75, 0.50}) {
    const auto resident =
        static_cast<std::uint64_t>(kPages * resident_fraction);
    std::printf("\n--- %d%% configuration (resident %llu of %llu pages)\n",
                static_cast<int>(resident_fraction * 100),
                static_cast<unsigned long long>(resident),
                static_cast<unsigned long long>(kPages));
    std::printf("%-20s %14s %14s %14s %12s %12s\n", "Workload", "FastSwap",
                "Infiniswap", "Linux", "FS/Linux", "FS/Infsw");
    double sum_vs_linux = 0, sum_vs_inf = 0;
    double max_vs_linux = 0;
    int rows = 0;
    for (const char* name : apps) {
      workloads::AppSpec app = *workloads::find_app(name);
      app.iterations = 3;
      SimTime elapsed[3] = {0, 0, 0};
      const swap::SystemKind systems[] = {swap::SystemKind::kFastSwap,
                                          swap::SystemKind::kInfiniswap,
                                          swap::SystemKind::kLinux};
      for (int s = 0; s < 3; ++s) {
        auto setup = swap::make_system(systems[s], resident);
        bench::SwapRigOptions options;
      options.server_bytes = 6 * MiB;  // binding shared-pool donation
      auto rig = bench::make_swap_rig(setup, app, options);
        Rng rng(17);
        auto result =
            workloads::run_iterative(*rig.manager, app, kPages, rng);
        if (!result.status.ok()) {
          std::printf("run failed (%s): %s\n", setup.name.c_str(),
                      result.status.to_string().c_str());
          return 1;
        }
        elapsed[s] = result.elapsed;
      }
      const double vs_linux = bench::ratio(elapsed[2], elapsed[0]);
      const double vs_inf = bench::ratio(elapsed[1], elapsed[0]);
      sum_vs_linux += vs_linux;
      sum_vs_inf += vs_inf;
      max_vs_linux = std::max(max_vs_linux, vs_linux);
      ++rows;
      std::printf("%-20s %14s %14s %14s %11.1fx %11.2fx\n", name,
                  format_duration(elapsed[0]).c_str(),
                  format_duration(elapsed[1]).c_str(),
                  format_duration(elapsed[2]).c_str(), vs_linux, vs_inf);
    }
    std::printf("%-20s %14s %14s %14s %11.1fx %11.2fx   (max FS/Linux %.1fx)\n",
                "average", "", "", "", sum_vs_linux / rows, sum_vs_inf / rows,
                max_vs_linux);
  }
  return 0;
}
