// Ablation (§IV.E) — memory-balancing quality of the four placement
// policies: random, round robin, weighted round robin, power of two
// choices. Reports the per-node load spread after a placement-heavy run.
#include <cstdio>

#include "bench_util.h"
#include "cluster/placement.h"
#include "common/rng.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Ablation: placement policy vs memory balance (§IV.E)",
      "p2c/weighted-rr tighten the load spread vs random");

  constexpr std::size_t kNodes = 16;
  constexpr int kPlacements = 20000;

  std::printf("%-14s %12s %12s %12s %10s\n", "Policy", "min(MB)", "max(MB)",
              "spread", "max/mean");
  for (auto kind : {cluster::PlacementPolicyKind::kRandom,
                    cluster::PlacementPolicyKind::kRoundRobin,
                    cluster::PlacementPolicyKind::kWeightedRoundRobin,
                    cluster::PlacementPolicyKind::kPowerOfTwoChoices}) {
    auto policy = cluster::make_placement_policy(kind);
    Rng rng(29);
    std::vector<cluster::CandidateNode> pool;
    for (std::size_t i = 0; i < kNodes; ++i)
      pool.push_back({static_cast<net::NodeId>(i), 512 * MiB});
    std::vector<std::uint64_t> load(kNodes, 0);
    for (int i = 0; i < kPlacements; ++i) {
      // Mixed block sizes, as compression produces.
      const std::uint64_t size = 512ull << rng.next_below(4);
      auto picked = policy->pick(pool, 1, size, rng);
      if (!picked.ok()) break;
      const auto n = picked->front();
      load[n] += size;
      pool[n].free_bytes -= size;
    }
    const auto [lo, hi] = std::minmax_element(load.begin(), load.end());
    double mean = 0;
    for (auto l : load) mean += static_cast<double>(l);
    mean /= kNodes;
    std::printf("%-14s %12.2f %12.2f %12.2f %10.3f\n",
                std::string(to_string(kind)).c_str(),
                static_cast<double>(*lo) / (1024 * 1024),
                static_cast<double>(*hi) / (1024 * 1024),
                static_cast<double>(*hi - *lo) / (1024 * 1024),
                static_cast<double>(*hi) / mean);
  }
  return 0;
}
