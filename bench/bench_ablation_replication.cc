// Ablation (§IV.D) — cost and benefit of the replication factor.
//
// Sweeps k = 1..3 and reports (a) remote put latency and fabric bytes (the
// cost), and (b) entries lost after a surprise node crash with no repair
// window (the benefit). Triple replication makes a single crash lossless,
// as §IV.D argues via the HDFS analogy.
#include <cstdio>

#include "bench_util.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "core/node_service.h"
#include "mem/memory_map.h"
#include "workloads/page_content.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Ablation: replication factor k (§IV.D)",
      "k=3 survives any single crash; cost ~k in bytes and latency");

  constexpr std::uint64_t kEntries = 256;

  std::printf("%3s %16s %14s %16s %12s\n", "k", "put-latency", "fabric-MB",
              "lost-after-crash", "unreadable");
  for (std::size_t k = 1; k <= 3; ++k) {
    core::DmSystem::Config config;
    config.node_count = 5;
    config.node.recv.arena_bytes = 32 * MiB;
    config.service.rdmc.replication = k;
    core::DmSystem system(config);
    system.start();
    core::LdmcOptions options;
    options.shm_fraction = 0.0;
    options.allow_disk = false;
    auto& client = system.create_server(0, 256 * MiB, options);

    std::vector<std::byte> data(4096);
    const SimTime start = system.simulator().now();
    for (mem::EntryId id = 0; id < kEntries; ++id) {
      workloads::fill_page(data, id, 0.5, 3);
      if (!client.put_sync(id, data).ok()) {
        std::printf("put failed at k=%zu\n", k);
        return 1;
      }
    }
    const SimTime put_ns =
        (system.simulator().now() - start) / static_cast<SimTime>(kEntries);
    const double fabric_mb =
        static_cast<double>(system.fabric().metrics().counter_value(
            "fabric.bytes_transferred")) /
        (1024.0 * 1024.0);

    // Surprise crash of the most-loaded replica host, with no repair time:
    // count entries that lost every replica, then entries actually
    // unreadable.
    std::size_t victim = 1;
    std::size_t best_blocks = 0;
    for (std::size_t i = 1; i < system.node_count(); ++i) {
      if (system.service(i).rdms().hosted_blocks() > best_blocks) {
        best_blocks = system.service(i).rdms().hosted_blocks();
        victim = i;
      }
    }
    system.fabric().set_node_up(system.node(victim).id(), false);

    std::size_t fully_lost = 0, unreadable = 0;
    std::vector<std::byte> out(4096);
    client.map().for_each([&](mem::EntryId, const mem::EntryLocation& loc) {
      bool any_alive = false;
      for (const auto& r : loc.replicas)
        if (system.fabric().node_up(r.node)) any_alive = true;
      if (!any_alive) ++fully_lost;
    });
    for (mem::EntryId id = 0; id < kEntries; ++id)
      if (!client.get_sync(id, out).ok()) ++unreadable;

    std::printf("%3zu %16s %14.1f %15zu/%llu %12zu\n", k,
                format_duration(put_ns).c_str(), fabric_mb, fully_lost,
                static_cast<unsigned long long>(kEntries), unreadable);
  }
  return 0;
}
