// Resilience economics (Hydra) — replication vs erasure-coded remote memory.
//
// Hydra's claim: Reed–Solomon striping gives crash resilience at a
// (k+r)/k memory overhead instead of replication's full copies, at a
// modest latency cost on the fault path. This bench runs the same
// put/crash/read/repair scenario under replication factor 2 and two EC
// shapes, and reports:
//   * memory overhead   — hosted remote bytes / logical bytes (the cost);
//   * fault-free put/get latency (virtual time);
//   * degraded-read latency right after a surprise crash (reconstruction);
//   * recovery time — crash until every stripe/copy is back to full
//     redundancy via repair scans;
//   * entries lost (must be zero everywhere).
// Acceptance (gated in ci.sh --ec-only): EC overhead stays at (k+r)/k —
// strictly below replication's 2x — with zero loss, and EC recovery
// finishes within 3x of replication's.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/units.h"
#include "core/dm_system.h"
#include "core/node_service.h"
#include "mem/memory_map.h"
#include "workloads/page_content.h"

namespace {

struct Mode {
  std::string name;
  std::size_t replication = 0;  // whole-copy mode when > 0
  std::size_t ec_k = 0;         // EC mode when > 0
  std::size_t ec_r = 0;
};

struct Outcome {
  double overhead = 0.0;
  dm::SimTime put_ns = 0;
  dm::SimTime get_ns = 0;
  dm::SimTime degraded_get_ns = 0;
  dm::SimTime recovery_ns = 0;
  std::size_t lost = 0;
  std::uint64_t degraded_reads = 0;
  std::uint64_t shards_repaired = 0;
};

}  // namespace

int main() {
  using namespace dm;
  bench::print_header(
      "EC resilience: replication vs Reed-Solomon striping (Hydra)",
      "EC holds (k+r)/k memory overhead vs replication's 2x, zero loss");

  constexpr std::uint64_t kEntries = 128;
  const std::vector<Mode> modes = {
      {"rep2", 2, 0, 0}, {"ec_2_1", 0, 2, 1}, {"ec_4_2", 0, 4, 2}};

  // Full per-mode metric snapshots ride along in a companion file (the
  // headline comparison JSON below keeps the stable, gated schema).
  bench::BenchJson json("ec_resilience_metrics");
  std::vector<std::pair<Mode, Outcome>> outcomes;

  std::printf("%8s %9s %12s %12s %14s %12s %6s\n", "mode", "overhead",
              "put", "get", "degraded-get", "recovery", "lost");
  for (const Mode& mode : modes) {
    core::DmSystem::Config config;
    config.node_count = 8;
    config.node.shm.arena_bytes = 2 * MiB;
    config.node.recv.arena_bytes = 32 * MiB;
    config.node.disk.capacity_bytes = 128 * MiB;
    if (mode.replication > 0) {
      config.service.rdmc.replication = mode.replication;
      config.service.rdmc.min_replicas = 1;
    } else {
      config.service.rdmc.ec_k = mode.ec_k;
      config.service.rdmc.ec_r = mode.ec_r;
      config.service.rdmc.min_shards = mode.ec_k;
    }
    config.repair.enabled = true;
    config.repair.scan_period = 100 * kMilli;
    config.repair.max_repairs_per_scan = 256;
    core::DmSystem system(config);
    system.start();
    core::LdmcOptions options;
    options.shm_fraction = 0.0;
    options.allow_disk = false;
    auto& client = system.create_server(0, 256 * MiB, options);

    Outcome out;
    std::vector<std::byte> data(4096);
    std::vector<std::byte> buffer(4096);

    // Fault-free puts and gets.
    SimTime start = system.simulator().now();
    for (mem::EntryId id = 0; id < kEntries; ++id) {
      workloads::fill_page(data, id, 0.5, 3);
      if (!client.put_sync(id, data).ok()) {
        std::printf("put failed in mode %s\n", mode.name.c_str());
        return 1;
      }
    }
    out.put_ns =
        (system.simulator().now() - start) / static_cast<SimTime>(kEntries);
    start = system.simulator().now();
    for (mem::EntryId id = 0; id < kEntries; ++id)
      if (!client.get_sync(id, buffer).ok()) ++out.lost;
    out.get_ns =
        (system.simulator().now() - start) / static_cast<SimTime>(kEntries);

    // The cost: hosted remote bytes vs logical bytes.
    std::uint64_t hosted = 0;
    client.map().for_each([&](mem::EntryId, const mem::EntryLocation& loc) {
      for (const auto& replica : loc.replicas) hosted += replica.block_size;
    });
    out.overhead = static_cast<double>(hosted) /
                   static_cast<double>(kEntries * data.size());

    // Surprise crash of the most-loaded host; read everything through the
    // degraded path before any repair window.
    std::size_t victim = 1;
    std::size_t best_blocks = 0;
    for (std::size_t i = 1; i < system.node_count(); ++i) {
      if (system.service(i).rdms().hosted_blocks() > best_blocks) {
        best_blocks = system.service(i).rdms().hosted_blocks();
        victim = i;
      }
    }
    system.crash_node(victim);
    const SimTime crash_at = system.simulator().now();
    start = system.simulator().now();
    for (mem::EntryId id = 0; id < kEntries; ++id)
      if (!client.get_sync(id, buffer).ok()) ++out.lost;
    out.degraded_get_ns =
        (system.simulator().now() - start) / static_cast<SimTime>(kEntries);

    // Recovery: let detection + repair scans restore full redundancy.
    const std::size_t target = mode.replication > 0
                                   ? mode.replication
                                   : mode.ec_k + mode.ec_r;
    bool restored = false;
    for (int round = 0; round < 400 && !restored; ++round) {
      system.run_for(100 * kMilli);
      restored = true;
      client.map().for_each(
          [&](mem::EntryId, const mem::EntryLocation& loc) {
            std::size_t live = 0;
            for (const auto& replica : loc.replicas)
              if (system.fabric().node_up(replica.node)) ++live;
            if (loc.tier != mem::Tier::kRemote || live < target ||
                loc.degraded)
              restored = false;
          });
    }
    out.recovery_ns =
        restored ? system.simulator().now() - crash_at : SimTime{-1};

    // Everything still byte-exact after recovery.
    for (mem::EntryId id = 0; id < kEntries; ++id) {
      workloads::fill_page(data, id, 0.5, 3);
      if (!client.get_sync(id, buffer).ok() || buffer != data) ++out.lost;
    }

    out.degraded_reads = system.total_counter("ec.degraded_reads");
    out.shards_repaired = system.total_counter("ec.shards_repaired");

    std::printf("%8s %8.2fx %12s %12s %14s %12s %6zu\n", mode.name.c_str(),
                out.overhead, format_duration(out.put_ns).c_str(),
                format_duration(out.get_ns).c_str(),
                format_duration(out.degraded_get_ns).c_str(),
                format_duration(out.recovery_ns).c_str(), out.lost);
    json.add_system(mode.name, system);
    outcomes.emplace_back(mode, out);
  }

  // Acceptance summary (machine-checked by ci.sh --ec-only).
  const Outcome& rep = outcomes[0].second;
  double worst_ec_overhead = 0.0;
  SimTime worst_ec_recovery = 0;
  std::size_t total_lost = rep.lost;
  for (std::size_t i = 1; i < outcomes.size(); ++i) {
    const Mode& mode = outcomes[i].first;
    const Outcome& ec = outcomes[i].second;
    const double bound =
        static_cast<double>(mode.ec_k + mode.ec_r) /
        static_cast<double>(mode.ec_k);
    std::printf("\n%s: overhead %.3fx (bound %.3fx), recovery %.2fx of "
                "replication, degraded_reads=%llu shards_repaired=%llu\n",
                mode.name.c_str(), ec.overhead, bound,
                bench::ratio(ec.recovery_ns, rep.recovery_ns) > 0
                    ? static_cast<double>(ec.recovery_ns) /
                          static_cast<double>(rep.recovery_ns)
                    : 0.0,
                static_cast<unsigned long long>(ec.degraded_reads),
                static_cast<unsigned long long>(ec.shards_repaired));
    worst_ec_overhead = std::max(worst_ec_overhead, ec.overhead);
    worst_ec_recovery = std::max(worst_ec_recovery, ec.recovery_ns);
    total_lost += ec.lost;
  }

  FILE* f = std::fopen("BENCH_ec_resilience.json", "w");
  if (f == nullptr) return 1;
  std::fprintf(f, "{\n\"bench\": \"ec_resilience\",\n\"modes\": [\n");
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    const Mode& mode = outcomes[i].first;
    const Outcome& out = outcomes[i].second;
    std::fprintf(
        f,
        "{\"mode\": \"%s\", \"overhead\": %.4f, \"put_ns\": %lld, "
        "\"get_ns\": %lld, \"degraded_get_ns\": %lld, \"recovery_ns\": "
        "%lld, \"lost\": %zu, \"degraded_reads\": %llu, "
        "\"shards_repaired\": %llu}%s\n",
        bench::json_escape(mode.name).c_str(), out.overhead,
        static_cast<long long>(out.put_ns), static_cast<long long>(out.get_ns),
        static_cast<long long>(out.degraded_get_ns),
        static_cast<long long>(out.recovery_ns), out.lost,
        static_cast<unsigned long long>(out.degraded_reads),
        static_cast<unsigned long long>(out.shards_repaired),
        i + 1 < outcomes.size() ? "," : "");
  }
  const bool overhead_ok = worst_ec_overhead < rep.overhead;
  const bool recovery_ok = rep.recovery_ns > 0 && worst_ec_recovery > 0 &&
                           worst_ec_recovery <= 3 * rep.recovery_ns;
  std::fprintf(f,
               "],\n\"replication_overhead\": %.4f,\n"
               "\"ec_overhead_below_replication\": %s,\n"
               "\"ec_recovery_within_3x\": %s,\n\"total_lost\": %zu\n}\n",
               rep.overhead, overhead_ok ? "true" : "false",
               recovery_ok ? "true" : "false", total_lost);
  std::fclose(f);
  if (!json.write()) return 1;
  std::printf("\nwrote BENCH_ec_resilience.json and %s\n",
              json.path().c_str());
  return total_lost == 0 ? 0 : 1;
}
