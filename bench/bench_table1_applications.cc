// Table 1 — "Applications used in Experiments".
//
// Prints the ten memory-intensive applications with their frameworks,
// paper-scale working-set and input sizes, and the reproduction's behavioural
// knobs (compressibility, skew, iterations).
#include <cstdio>

#include "bench_util.h"
#include "workloads/app_catalog.h"

int main() {
  using namespace dm;
  bench::print_header(
      "Table 1: Applications used in experiments",
      "10 apps, working sets 25-30 GB, inputs 12-20 GB per virtual server");

  std::printf("%-20s %-22s %-10s %8s %8s %7s %6s %5s\n", "Application",
              "Framework", "Kind", "WSet(GB)", "Input(GB)", "rand-fr",
              "zipf", "iters");
  for (const auto& app : workloads::app_catalog()) {
    const char* kind = app.kind == workloads::AppKind::kIterativeMl
                           ? "iterative"
                       : app.kind == workloads::AppKind::kGraph ? "graph"
                                                                : "kv";
    std::printf("%-20s %-22s %-10s %8.1f %8.1f %7.2f %6.2f %5d\n",
                std::string(app.name).c_str(),
                std::string(app.framework).c_str(), kind, app.working_set_gb,
                app.input_gb, app.random_fraction, app.zipf_theta,
                app.iterations);
  }
  std::printf("\nSimulated working sets are scaled to pages (4 KiB) with the "
              "same resident-fraction ratios (75%% / 50%% configurations).\n");
  return 0;
}
