// Shared plumbing for the figure/table reproduction harnesses.
//
// Each bench binary builds a fresh DmSystem per configuration (matching the
// paper's one-system-at-a-time runs), drives the workload in virtual time,
// and prints the same rows/series the paper's figure reports. Absolute
// numbers differ from the paper's testbed (see DESIGN.md §2); the reported
// *ratios* are the reproduction target and are printed alongside.
#pragma once

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"
#include "core/dm_system.h"
#include "core/ldmc.h"
#include "sim/simulator.h"
#include "swap/swap_manager.h"
#include "swap/systems.h"
#include "workloads/app_catalog.h"
#include "workloads/driver.h"

namespace dm::bench {

// One virtual server running one swap system on a small cluster.
struct SwapRig {
  std::unique_ptr<core::DmSystem> system;
  core::Ldmc* client = nullptr;
  std::unique_ptr<swap::SwapManager> manager;

  sim::Simulator& sim() { return system->simulator(); }
};

struct SwapRigOptions {
  std::size_t nodes = 4;
  std::uint64_t shm_arena = 32 * MiB;
  std::uint64_t recv_arena = 32 * MiB;
  std::uint64_t disk_bytes = 128 * MiB;
  // Virtual-server allocation: with the default 10% donation this bounds
  // the node-level shared pool the server may use, which is what makes
  // compression and distribution-ratio effects visible (a huge allocation
  // would let the shared pool absorb everything).
  std::uint64_t server_bytes = 256 * MiB;
  std::uint64_t seed = 42;
};

inline SwapRig make_swap_rig(const swap::SystemSetup& setup,
                             const workloads::AppSpec& app,
                             SwapRigOptions options = {}) {
  SwapRig rig;
  core::DmSystem::Config config;
  config.node_count = options.nodes;
  config.node.shm.arena_bytes = options.shm_arena;
  config.node.recv.arena_bytes = options.recv_arena;
  config.node.disk.capacity_bytes = options.disk_bytes;
  config.service = setup.service;
  config.seed = options.seed;
  rig.system = std::make_unique<core::DmSystem>(config);
  rig.system->start();
  rig.client = &rig.system->create_server(0, options.server_bytes, setup.ldmc);
  rig.manager = std::make_unique<swap::SwapManager>(
      *rig.client, setup.swap, workloads::content_for(app, options.seed));
  // Fold the swap layer into the cluster hub so snapshots carry
  // "node.0.swap.*" fault/swap-out latency histograms.
  rig.system->hub().add("node.0", &rig.manager->metrics());
  return rig;
}

// RFC 8259 string escaping for the hand-rolled JSON emitters: system names
// like `FastSwap "tuned"` or metric labels with backslashes must not
// produce unparseable output.
inline std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (unsigned char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

// Collects one MetricsHub snapshot per system under test and writes them
// as "BENCH_<name>.json" in the working directory, giving every bench a
// machine-readable companion to its printed table — including the
// per-tier latency percentiles ("node.0.ldms.get_ns.<tier>" etc.).
// Keys are escaped and emitted in sorted order so two runs of the same
// bench diff cleanly.
class BenchJson {
 public:
  explicit BenchJson(std::string bench) : bench_(std::move(bench)) {}

  void add_system(const std::string& name, core::DmSystem& system) {
    entries_.emplace_back(name, system.hub().snapshot_json());
  }

  std::string path() const { return "BENCH_" + bench_ + ".json"; }

  bool write() const {
    FILE* f = std::fopen(path().c_str(), "w");
    if (f == nullptr) return false;
    auto sorted = entries_;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    std::fprintf(f, "{\n\"bench\": \"%s\",\n\"systems\": {\n",
                 json_escape(bench_).c_str());
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      std::fprintf(f, "\"%s\": %s%s", json_escape(sorted[i].first).c_str(),
                   sorted[i].second.c_str(),
                   i + 1 < sorted.size() ? ",\n" : "\n");
    }
    std::fprintf(f, "}\n}\n");
    std::fclose(f);
    return true;
  }

 private:
  std::string bench_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

inline void print_header(const char* title, const char* paper_note) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("paper: %s\n", paper_note);
  std::printf("================================================================\n");
}

inline double ratio(SimTime base, SimTime other) {
  return other > 0 ? static_cast<double>(base) / static_cast<double>(other)
                   : 0.0;
}

}  // namespace dm::bench
