#include "core/node_service.h"

#include <algorithm>

#include "common/checksum.h"
#include "common/status.h"
#include "common/units.h"
#include "core/ldmc.h"
#include "core/rdmc.h"
#include "ec/rs_codec.h"
#include "mem/memory_map.h"
#include "net/wire.h"
#include "storage/block_device.h"

namespace dm::core {

using cluster::kRpcEvictNotice;
using cluster::kRpcMigrateRegion;
using cluster::kRpcQueryCandidates;

NodeService::NodeService(cluster::Node& node, Config config)
    : node_(node), config_(std::move(config)), rdms_(node),
      rdmc_(node, config_.rdmc) {
  if (config_.rdmc.ec_k > 0) {
    auto codec = ec::RsCodec::make(config_.rdmc.ec_k, config_.rdmc.ec_r);
    // An invalid (k, r) leaves EC puts failing with FailedPrecondition
    // rather than silently replicating.
    if (codec.ok()) codec_.emplace(*std::move(codec));
  }
  // Candidate set for placement: either this node's own heartbeat view or
  // the leader-aggregated cache (§IV.E), when enabled and populated.
  rdmc_.set_candidates_provider([this]() {
    if (config_.leader_candidates && !candidate_cache_.empty())
      return candidate_cache_;
    return local_candidate_view(/*include_self=*/false);
  });
  node_.rpc().handle(kRpcQueryCandidates,
                     [this](net::NodeId from, net::WireReader& r) {
                       return handle_query_candidates(from, r);
                     });
  node_.rpc().handle(kRpcEvictNotice,
                     [this](net::NodeId from, net::WireReader& r) {
                       return handle_evict_notice(from, r);
                     });
  node_.rpc().handle(kRpcMigrateRegion,
                     [this](net::NodeId from, net::WireReader& r) {
                       return handle_migrate_region(from, r);
                     });
  node_.membership().on_peer_down(
      [this](net::NodeId dead) { repair_after_node_down(dead); });
  // Advertise local DM demand in heartbeats so placement and harvesting on
  // other nodes can steer around hot spots.
  node_.membership().set_pressure_provider([this]() { return pressure(); });
}

NodeService::~NodeService() = default;

Ldmc& NodeService::create_client(cluster::ServerId server,
                                 LdmcOptions options) {
  auto it = clients_.find(server);
  if (it != clients_.end()) return *it->second;
  auto client = std::make_unique<Ldmc>(*this, server, options);
  auto* raw = client.get();
  clients_.emplace(server, std::move(client));
  return *raw;
}

Ldmc* NodeService::client(cluster::ServerId server) {
  auto it = clients_.find(server);
  return it == clients_.end() ? nullptr : it->second.get();
}

void NodeService::for_each_client(
    const std::function<void(cluster::ServerId, Ldmc&)>& fn) {
  for (const auto& [server, client_ptr] : clients_) fn(server, *client_ptr);
}

// ---- put path ---------------------------------------------------------------

void NodeService::put_entry(cluster::ServerId server, mem::EntryId entry,
                            std::span<const std::byte> data, bool prefer_shm,
                            bool allow_remote, bool allow_disk,
                            PutCallback done, net::TraceId trace) {
  ++dm_requests_window_[server];
  if (trace == net::kNoTrace) trace = node_.next_trace_id();
  // Per-tier put latency, keyed by whichever tier finally accepted the
  // entry (the fallback chain may walk shm -> remote -> disk).
  const SimTime started = node_.simulator().now();
  done = [this, started, inner = std::move(done)](
             StatusOr<mem::EntryLocation> result) {
    const char* tier =
        result.ok() ? mem::tier_name(result->tier) : "failed";
    metrics_.histogram(std::string("ldms.put_ns.") + tier)
        .record(static_cast<std::uint64_t>(node_.simulator().now() - started));
    inner(std::move(result));
  };

  if (prefer_shm) {
    // Iterative shm attempt with bounded LRU spill (§IV.B: the LDMS asks
    // the node manager for more shared-memory space before going remote).
    struct ShmAttempt : std::enable_shared_from_this<ShmAttempt> {
      NodeService* self;
      cluster::ServerId server;
      mem::EntryId entry;
      std::vector<std::byte> payload;
      std::size_t spill_budget;
      bool allow_remote;
      bool allow_disk;
      net::TraceId trace;
      PutCallback done;

      void run() {
        Status s = self->node_.shm().put(server, entry, payload);
        if (s.ok()) {
          mem::EntryLocation loc;
          loc.tier = mem::Tier::kSharedMemory;
          loc.stored_size = static_cast<std::uint32_t>(payload.size());
          const SimTime cost = self->node_.fabric()
                                   .config()
                                   .latency.shared_memory.cost(payload.size());
          ++self->metrics_.counter("ldms.put_shm");
          self->node_.simulator().schedule_after(
              cost, [loc, done = std::move(done)]() { done(loc); });
          return;
        }
        const bool can_spill = s.code() == StatusCode::kResourceExhausted &&
                               self->config_.spill_shm_lru && allow_remote &&
                               spill_budget > 0;
        if (can_spill) {
          --spill_budget;
          auto self_ptr = shared_from_this();
          self->spill_one([self_ptr](bool progressed) {
            if (progressed) {
              self_ptr->run();
            } else {
              self_ptr->fall_through();
            }
          });
          return;
        }
        fall_through();
      }

      void fall_through() {
        if (allow_remote) {
          self->put_remote(server, entry, payload, allow_disk,
                           std::move(done), trace);
        } else if (allow_disk) {
          self->put_device(server, entry, payload, std::move(done));
        } else {
          done(ResourceExhaustedError("no tier available for entry"));
        }
      }
    };
    auto attempt = std::make_shared<ShmAttempt>();
    attempt->self = this;
    attempt->server = server;
    attempt->entry = entry;
    attempt->payload.assign(data.begin(), data.end());
    attempt->spill_budget = config_.max_spill_per_put;
    attempt->allow_remote = allow_remote;
    attempt->allow_disk = allow_disk;
    attempt->trace = trace;
    attempt->done = std::move(done);
    attempt->run();
    return;
  }

  if (allow_remote) {
    put_remote(server, entry, data, allow_disk, std::move(done), trace);
  } else if (allow_disk) {
    put_device(server, entry, data, std::move(done), trace);
  } else {
    done(ResourceExhaustedError("no tier available for entry"));
  }
}

void NodeService::put_remote(cluster::ServerId server, mem::EntryId entry,
                             std::span<const std::byte> data, bool allow_disk,
                             PutCallback done, net::TraceId trace) {
  ++remote_puts_window_;
  note_pressure();
  if (rdmc_.config().ec_k > 0) {
    put_remote_ec(server, entry, data, allow_disk, std::move(done), trace);
    return;
  }
  const auto size = static_cast<std::uint32_t>(data.size());
  // Keep a copy for the disk fallback: rdmc consumes the span immediately,
  // but on failure we need the bytes again.
  auto payload = std::make_shared<std::vector<std::byte>>(data.begin(),
                                                          data.end());
  rdmc_.put(server, entry, *payload,
            [this, server, entry, size, allow_disk, payload, trace,
             done = std::move(done)](
                StatusOr<std::vector<mem::RemoteReplica>> replicas) mutable {
              if (replicas.ok()) {
                mem::EntryLocation loc;
                loc.tier = mem::Tier::kRemote;
                loc.stored_size = size;
                loc.replicas = *std::move(replicas);
                // Degraded-mode put (§IV.D hardening): fewer replicas than
                // the factor landed; flag it for the repair service.
                loc.degraded =
                    loc.replicas.size() < rdmc_.config().replication;
                if (loc.degraded)
                  ++metrics_.counter("ldms.put_remote_degraded");
                ++metrics_.counter("ldms.put_remote");
                done(loc);
                return;
              }
              // Remote tier refused the entry. Capacity exhaustion is a
              // normal overflow; anything else means remote memory is
              // unreachable, so the disk copy is a *degraded* placement the
              // repair service should re-promote once the cluster heals.
              const bool unreachable = replicas.status().code() !=
                                       StatusCode::kResourceExhausted;
              if (allow_disk) {
                ++metrics_.counter("ldms.remote_overflow_to_disk");
                put_device(server, entry, *payload,
                           [this, unreachable, done = std::move(done)](
                               StatusOr<mem::EntryLocation> result) mutable {
                             if (result.ok() && unreachable) {
                               result->degraded = true;
                               ++metrics_.counter("ldms.degraded_to_disk");
                             }
                             done(std::move(result));
                           },
                           trace);
                return;
              }
              done(replicas.status());
            },
            /*exclude=*/{}, /*count=*/0, trace);
}

// ---- erasure-coded remote tier (Hydra-style) --------------------------------

void NodeService::ec_store(
    cluster::ServerId server, mem::EntryId entry,
    std::span<const std::byte> data,
    std::function<void(StatusOr<mem::EntryLocation>)> done,
    net::TraceId trace) {
  if (!codec_) {
    done(FailedPreconditionError("ec codec unavailable (invalid k/r)"));
    return;
  }
  if (trace == net::kNoTrace) trace = node_.next_trace_id();
  const std::size_t k = codec_->k();
  const std::size_t total = codec_->total_shards();
  auto shards = codec_->encode(data);
  if (!shards.ok()) {
    done(shards.status());
    return;
  }
  std::vector<std::uint64_t> checksums(total);
  std::vector<Rdmc::ShardPayload> payloads(total);
  for (std::size_t i = 0; i < total; ++i) {
    payloads[i].shard = static_cast<std::uint32_t>(i);
    payloads[i].bytes = std::move((*shards)[i]);
    checksums[i] = fnv1a(payloads[i].bytes);
  }
  // Degraded floor ("min surviving shards"): never below k — fewer could
  // not be read back — and min_shards = 0 means all-or-nothing.
  const std::size_t min_needed =
      config_.rdmc.min_shards == 0
          ? total
          : std::clamp(config_.rdmc.min_shards, k, total);
  const auto size = static_cast<std::uint32_t>(data.size());
  // The codec is pure computation; charge its CPU as virtual time before
  // the shard fan-out starts.
  const SimTime cost = config_.ec_encode_cost.cost(size);
  metrics_.histogram("ec.encode_ns").record(
      static_cast<std::uint64_t>(cost));
  ++metrics_.counter("ec.encodes");
  std::uint64_t span = 0;
  if (spans_ != nullptr)
    // dm-lint: allow(span-unclosed) — closed when the encode delay elapses.
    span = spans_->begin_span(trace, node_.id(), "ec", "ec.encode");
  node_.simulator().schedule_after(
      cost,
      [this, server, entry, size, k, total, span, trace,
       have_span = spans_ != nullptr, checksums = std::move(checksums),
       payloads = std::move(payloads), min_needed,
       done = std::move(done)]() mutable {
        if (have_span && spans_ != nullptr) spans_->end_span(span);
        rdmc_.put_shards(
            server, entry, std::move(payloads), min_needed,
            [size, k, total, checksums = std::move(checksums),
             done = std::move(done)](
                StatusOr<std::vector<mem::RemoteReplica>> replicas) mutable {
              if (!replicas.ok()) {
                done(replicas.status());
                return;
              }
              mem::EntryLocation loc;
              loc.tier = mem::Tier::kRemote;
              loc.stored_size = size;
              loc.ec_k = static_cast<std::uint8_t>(k);
              loc.ec_r = static_cast<std::uint8_t>(total - k);
              loc.shard_checksums = std::move(checksums);
              loc.replicas = *std::move(replicas);
              loc.degraded = loc.replicas.size() < total;
              done(std::move(loc));
            },
            /*exclude=*/{}, trace);
      });
}

void NodeService::put_remote_ec(cluster::ServerId server, mem::EntryId entry,
                                std::span<const std::byte> data,
                                bool allow_disk, PutCallback done,
                                net::TraceId trace) {
  auto payload = std::make_shared<std::vector<std::byte>>(data.begin(),
                                                          data.end());
  ec_store(server, entry, *payload,
           [this, server, entry, allow_disk, payload, trace,
            done = std::move(done)](StatusOr<mem::EntryLocation> loc) mutable {
             if (loc.ok()) {
               if (loc->degraded)
                 ++metrics_.counter("ldms.put_remote_degraded");
               ++metrics_.counter("ldms.put_remote");
               done(*std::move(loc));
               return;
             }
             // Same fallback contract as replicated puts: capacity
             // exhaustion is normal overflow, anything else leaves the
             // disk copy flagged degraded for re-promotion.
             const bool unreachable =
                 loc.status().code() != StatusCode::kResourceExhausted;
             if (allow_disk) {
               ++metrics_.counter("ldms.remote_overflow_to_disk");
               put_device(server, entry, *payload,
                          [this, unreachable, done = std::move(done)](
                              StatusOr<mem::EntryLocation> result) mutable {
                            if (result.ok() && unreachable) {
                              result->degraded = true;
                              ++metrics_.counter("ldms.degraded_to_disk");
                            }
                            done(std::move(result));
                          },
                          trace);
               return;
             }
             done(loc.status());
           },
           trace);
}

StatusOr<std::vector<std::byte>> NodeService::ec_decode_shards(
    const mem::EntryLocation& loc,
    std::vector<std::vector<std::byte>>& shards) {
  // Reject shards whose bytes do not match the committed checksum before
  // they can poison the decode (a corrupted shard is as lost as a missing
  // one, but silently wrong without this gate).
  for (std::size_t i = 0; i < shards.size(); ++i) {
    if (shards[i].empty() || i >= loc.shard_checksums.size()) continue;
    if (fnv1a(shards[i]) != loc.shard_checksums[i]) {
      shards[i].clear();
      ++metrics_.counter("ec.corrupt_shards");
    }
  }
  if (codec_ && codec_->k() == loc.ec_k && codec_->r() == loc.ec_r)
    return codec_->decode(shards, loc.stored_size);
  auto codec = ec::RsCodec::make(loc.ec_k, loc.ec_r);
  if (!codec.ok()) return codec.status();
  return codec->decode(shards, loc.stored_size);
}

void NodeService::get_entry_ec(const mem::EntryLocation& location,
                               std::uint64_t offset, std::span<std::byte> out,
                               DoneCallback done, net::TraceId trace) {
  ++metrics_.counter("ec.reads");
  const std::size_t k = location.ec_k;
  const std::size_t shard_len =
      ec::RsCodec::shard_size(location.stored_size, k);
  if (out.empty()) {
    node_.simulator().schedule_after(
        0, [done = std::move(done)]() { done(Status::Ok()); });
    return;
  }
  // Fast path: the requested range maps onto whole-or-partial *data*
  // shards read directly (systematic code — no decode needed). Falls to
  // the degraded path if any covering shard is missing or its host is
  // known-down; reads that fail in flight (partitions) fall back too.
  struct Seg {
    mem::RemoteReplica replica;
    std::uint64_t off = 0;
    std::span<std::byte> dst;
  };
  std::vector<Seg> segs;
  bool all_present = true;
  const std::uint64_t end = offset + out.size();
  for (std::uint64_t s = offset / shard_len; s * shard_len < end; ++s) {
    const std::uint64_t seg_begin =
        std::max<std::uint64_t>(offset, s * shard_len);
    const std::uint64_t seg_end =
        std::min<std::uint64_t>(end, (s + 1) * shard_len);
    const mem::RemoteReplica* holder = nullptr;
    for (const auto& replica : location.replicas)
      if (replica.shard == s) holder = &replica;
    if (holder == nullptr || !node_.fabric().node_up(holder->node)) {
      all_present = false;
      break;
    }
    segs.push_back({*holder, seg_begin - s * shard_len,
                    out.subspan(seg_begin - offset, seg_end - seg_begin)});
  }
  if (!all_present) {
    ec_degraded_read(location, offset, out, std::move(done), trace);
    return;
  }
  struct FastRead {
    std::size_t pending = 0;
    bool failed = false;
    DoneCallback done;
  };
  auto st = std::make_shared<FastRead>();
  st->pending = segs.size();
  st->done = std::move(done);
  for (const auto& seg : segs) {
    rdmc_.read(
        {seg.replica}, seg.off, seg.dst,
        [this, st, location, offset, out, trace](const Status& s) {
          if (!s.ok()) st->failed = true;
          if (--st->pending != 0) return;
          if (!st->failed) {
            st->done(Status::Ok());
            return;
          }
          ec_degraded_read(location, offset, out, std::move(st->done),
                           trace);
        },
        trace);
  }
}

void NodeService::ec_degraded_read(mem::EntryLocation location,
                                   std::uint64_t offset,
                                   std::span<std::byte> out,
                                   DoneCallback done, net::TraceId trace) {
  const std::size_t k = location.ec_k;
  const std::size_t total = k + location.ec_r;
  const std::size_t shard_len =
      ec::RsCodec::shard_size(location.stored_size, k);
  struct Degraded {
    NodeService* self = nullptr;
    mem::EntryLocation loc;
    std::vector<std::vector<std::byte>> shards;
    std::size_t pending = 0;
    std::uint64_t offset = 0;
    std::span<std::byte> out;
    DoneCallback done;
    net::TraceId trace = net::kNoTrace;
  };
  auto st = std::make_shared<Degraded>();
  st->self = this;
  st->loc = std::move(location);
  st->shards.assign(total, {});
  st->offset = offset;
  st->out = out;
  st->done = std::move(done);
  st->trace = trace;
  auto finish = [st]() {
    auto data = st->self->ec_decode_shards(st->loc, st->shards);
    if (!data.ok()) {
      st->done(data.status());
      return;
    }
    const SimTime cost =
        st->self->config_.ec_decode_cost.cost(st->loc.stored_size);
    st->self->metrics_.histogram("ec.decode_ns")
        .record(static_cast<std::uint64_t>(cost));
    ++st->self->metrics_.counter("ec.degraded_reads");
    std::uint64_t span = 0;
    const bool have_span = st->self->spans_ != nullptr;
    if (have_span)
      // dm-lint: allow(span-unclosed) — closed when the decode delay ends.
      span = st->self->spans_->begin_span(st->trace, st->self->node_.id(),
                                          "ec", "ec.decode");
    std::copy_n(data->data() + st->offset, st->out.size(), st->out.data());
    st->self->node_.simulator().schedule_after(
        cost, [st, span, have_span]() {
          if (have_span && st->self->spans_ != nullptr)
            st->self->spans_->end_span(span);
          st->done(Status::Ok());
        });
  };
  // Pull every surviving shard in full, in parallel; failures just leave
  // their slot empty and the decode proceeds from whatever >= k arrive.
  std::size_t launched = 0;
  for (const auto& replica : st->loc.replicas)
    if (replica.shard < total) ++launched;
  if (launched == 0) {
    node_.simulator().schedule_after(0, [st]() {
      st->done(DataLossError("ec entry has no surviving shards"));
    });
    return;
  }
  st->pending = launched;
  for (const auto& replica : st->loc.replicas) {
    if (replica.shard >= total) continue;
    st->shards[replica.shard].resize(shard_len);
    rdmc_.read(
        {replica}, 0, st->shards[replica.shard],
        [st, shard = replica.shard, finish](const Status& s) {
          if (!s.ok()) st->shards[shard].clear();
          if (--st->pending == 0) finish();
        },
        trace);
  }
}

void NodeService::put_device(cluster::ServerId server, mem::EntryId entry,
                             std::span<const std::byte> data, PutCallback done,
                             net::TraceId trace) {
  note_pressure();
  // §VI convergence: a local NVM tier, when present, sits between remote
  // memory and the rotational swap device.
  if (node_.nvm() != nullptr) {
    put_nvm(server, entry, data, std::move(done), trace);
    return;
  }
  put_disk(server, entry, data, std::move(done), trace);
}

void NodeService::put_nvm(cluster::ServerId server, mem::EntryId entry,
                          std::span<const std::byte> data, PutCallback done,
                          net::TraceId trace) {
  auto offset = alloc_nvm(static_cast<std::uint32_t>(data.size()));
  if (!offset.ok()) {
    // NVM full: fall through to the disk below it.
    ++metrics_.counter("ldms.nvm_overflow_to_disk");
    put_disk(server, entry, data, std::move(done), trace);
    return;
  }
  if (spans_ != nullptr && trace != net::kNoTrace) {
    // dm-lint: allow(span-unclosed) — closed by the wrapped completion.
    const std::uint64_t span =
        spans_->begin_span(trace, node_.id(), "disk", "nvm.write");
    done = [spans = spans_, span, inner = std::move(done)](
               StatusOr<mem::EntryLocation> result) {
      spans->end_span(span);
      inner(std::move(result));
    };
  }
  const auto size = static_cast<std::uint32_t>(data.size());
  const std::uint64_t at = *offset;
  auto done_ptr = std::make_shared<PutCallback>(std::move(done));
  Status posted = node_.nvm()->write(
      at, data, [this, at, size, done_ptr](const Status& s, SimTime) {
        if (!s.ok()) {
          free_nvm(at, size);
          (*done_ptr)(s);
          return;
        }
        mem::EntryLocation loc;
        loc.tier = mem::Tier::kNvm;
        loc.stored_size = size;
        loc.disk_offset = at;
        ++metrics_.counter("ldms.put_nvm");
        (*done_ptr)(loc);
      });
  if (!posted.ok()) {
    free_nvm(at, size);
    (*done_ptr)(posted);
  }
}

void NodeService::put_disk(cluster::ServerId server, mem::EntryId entry,
                           std::span<const std::byte> data, PutCallback done,
                           net::TraceId trace) {
  (void)server;
  (void)entry;
  auto offset = alloc_disk(static_cast<std::uint32_t>(data.size()));
  if (!offset.ok()) {
    done(offset.status());
    return;
  }
  if (spans_ != nullptr && trace != net::kNoTrace) {
    // dm-lint: allow(span-unclosed) — closed by the wrapped completion.
    const std::uint64_t span =
        spans_->begin_span(trace, node_.id(), "disk", "disk.write");
    done = [spans = spans_, span, inner = std::move(done)](
               StatusOr<mem::EntryLocation> result) {
      spans->end_span(span);
      inner(std::move(result));
    };
  }
  const auto size = static_cast<std::uint32_t>(data.size());
  const std::uint64_t at = *offset;
  // Shared so the error path below can still invoke it if the device
  // rejects the I/O at post time (the lambda then never runs).
  auto done_ptr = std::make_shared<PutCallback>(std::move(done));
  Status posted = node_.disk().write(
      at, data, [this, at, size, done_ptr](const Status& s, SimTime) {
        if (!s.ok()) {
          free_disk(at, size);
          (*done_ptr)(s);
          return;
        }
        mem::EntryLocation loc;
        loc.tier = mem::Tier::kDisk;
        loc.stored_size = size;
        loc.disk_offset = at;
        ++metrics_.counter("ldms.put_disk");
        (*done_ptr)(loc);
      });
  if (!posted.ok()) {
    free_disk(at, size);
    ++metrics_.counter("ldms.put_disk_failed");
    (*done_ptr)(posted);
  }
}

void NodeService::spill_one(std::function<void(bool)> done) {
  auto victim = node_.shm().lru_entry();
  if (!victim) {
    done(false);
    return;
  }
  const auto [owner, entry] = *victim;
  Ldmc* owner_client = client(owner);
  if (owner_client == nullptr) {
    done(false);
    return;
  }
  auto old_loc = owner_client->map().lookup(entry);
  if (!old_loc.ok() || old_loc->tier != mem::Tier::kSharedMemory) {
    // Map and pool disagree; drop the orphan pool entry defensively.
    (void)node_.shm().remove(owner, entry);
    ++metrics_.counter("ldms.spill_orphan");
    done(true);
    return;
  }
  auto size = node_.shm().stored_size(owner, entry);
  if (!size.ok()) {
    done(false);
    return;
  }
  auto bytes = std::make_shared<std::vector<std::byte>>(*size);
  if (Status s = node_.shm().peek(owner, entry, *bytes); !s.ok()) {
    done(false);
    return;
  }
  if (rdmc_.config().ec_k > 0) {
    // EC mode: stripe the spilled entry instead of replicating it, with
    // the same stale re-check before committing.
    ec_store(
        owner, entry, *bytes,
        [this, owner, entry, bytes, old = *old_loc,
         done = std::move(done)](StatusOr<mem::EntryLocation> ec_loc) mutable {
          if (!ec_loc.ok()) {
            ++metrics_.counter("ldms.spill_failed");
            done(false);
            return;
          }
          Ldmc* live_client = client(owner);
          auto current = live_client != nullptr
                             ? live_client->map().lookup(entry)
                             : NotFoundError("owner gone");
          if (!current.ok() || current->tier != mem::Tier::kSharedMemory) {
            rdmc_.free_replicas(std::move(ec_loc->replicas));
            ++metrics_.counter("ldms.spill_stale");
            done(node_.shm().contains(owner, entry) ? false : true);
            return;
          }
          mem::EntryLocation loc = old;
          loc.tier = mem::Tier::kRemote;
          loc.replicas = std::move(ec_loc->replicas);
          loc.ec_k = ec_loc->ec_k;
          loc.ec_r = ec_loc->ec_r;
          loc.shard_checksums = std::move(ec_loc->shard_checksums);
          loc.degraded = ec_loc->degraded;
          live_client->map().commit(entry, std::move(loc));
          (void)node_.shm().remove(owner, entry);
          ++metrics_.counter("ldms.spilled_to_remote");
          done(true);
        },
        net::kNoTrace);
    return;
  }
  rdmc_.put(owner, entry, *bytes,
            [this, owner, entry, bytes, old = *old_loc,
             done = std::move(done)](
                StatusOr<std::vector<mem::RemoteReplica>> replicas) {
              if (!replicas.ok()) {
                ++metrics_.counter("ldms.spill_failed");
                done(false);
                return;
              }
              // Re-check: the owner may have removed or moved the entry
              // while the replicated put was in flight — committing now
              // would resurrect it with stale data and leak the blocks.
              Ldmc* live_client = client(owner);
              auto current = live_client != nullptr
                                 ? live_client->map().lookup(entry)
                                 : NotFoundError("owner gone");
              if (!current.ok() ||
                  current->tier != mem::Tier::kSharedMemory) {
                rdmc_.free_replicas(*std::move(replicas));
                ++metrics_.counter("ldms.spill_stale");
                done(node_.shm().contains(owner, entry)
                         ? false
                         : true);  // space may already be free
                return;
              }
              mem::EntryLocation loc = old;
              loc.tier = mem::Tier::kRemote;
              loc.replicas = *std::move(replicas);
              live_client->map().commit(entry, std::move(loc));
              (void)node_.shm().remove(owner, entry);
              ++metrics_.counter("ldms.spilled_to_remote");
              done(true);
            });
}

// ---- get / remove paths -----------------------------------------------------

void NodeService::get_entry(cluster::ServerId server, mem::EntryId entry,
                            const mem::EntryLocation& location,
                            std::uint64_t offset, std::span<std::byte> out,
                            DoneCallback done, net::TraceId trace) {
  if (trace == net::kNoTrace) trace = node_.next_trace_id();
  // A get that misses shared memory is unmet local demand: it counts
  // toward the advertised pressure alongside overflow puts.
  if (location.tier != mem::Tier::kSharedMemory) note_pressure();
  // Per-tier access latency: the paper's core latency story is the gap
  // between these histograms (DRAM-speed shm vs RDMA vs device).
  const SimTime started = node_.simulator().now();
  done = [this, started, tier = location.tier,
          inner = std::move(done)](const Status& s) {
    metrics_.histogram(std::string("ldms.get_ns.") + mem::tier_name(tier))
        .record(static_cast<std::uint64_t>(node_.simulator().now() - started));
    inner(s);
  };
  switch (location.tier) {
    case mem::Tier::kSharedMemory: {
      Status s = node_.shm().get_range(server, entry, offset, out);
      const SimTime cost =
          node_.fabric().config().latency.shared_memory.cost(out.size());
      node_.simulator().schedule_after(
          cost, [s, done = std::move(done)]() { done(s); });
      return;
    }
    case mem::Tier::kRemote:
      if (location.ec_k > 0) {
        get_entry_ec(location, offset, out, std::move(done), trace);
        return;
      }
      rdmc_.read(location.replicas, offset, out, std::move(done), trace);
      return;
    case mem::Tier::kNvm:
    case mem::Tier::kDisk: {
      storage::BlockDevice* device =
          location.tier == mem::Tier::kNvm ? node_.nvm() : &node_.disk();
      if (device == nullptr) {
        done(FailedPreconditionError("entry on absent NVM tier"));
        return;
      }
      if (spans_ != nullptr && trace != net::kNoTrace) {
        // dm-lint: allow(span-unclosed) — closed by the wrapped completion.
        const std::uint64_t span = spans_->begin_span(
            trace, node_.id(), "disk",
            location.tier == mem::Tier::kNvm ? "nvm.read" : "disk.read");
        done = [spans = spans_, span,
                inner = std::move(done)](const Status& s) {
          spans->end_span(span);
          inner(s);
        };
      }
      auto done_ptr = std::make_shared<DoneCallback>(std::move(done));
      Status posted = device->read(
          location.disk_offset + offset, out,
          [done_ptr](const Status& s, SimTime) { (*done_ptr)(s); });
      if (!posted.ok()) {
        node_.simulator().schedule_after(
            0, [posted, done_ptr]() { (*done_ptr)(posted); });
      }
      return;
    }
  }
  done(InternalError("unknown tier"));
}

void NodeService::remove_entry(cluster::ServerId server, mem::EntryId entry,
                               const mem::EntryLocation& location,
                               DoneCallback done, net::TraceId trace) {
  switch (location.tier) {
    case mem::Tier::kSharedMemory: {
      Status s = node_.shm().remove(server, entry);
      node_.simulator().schedule_after(
          node_.fabric().config().latency.shared_memory.overhead_ns,
          [s, done = std::move(done)]() { done(s); });
      return;
    }
    case mem::Tier::kRemote:
      rdmc_.free_replicas(location.replicas, std::move(done), trace);
      return;
    case mem::Tier::kNvm:
      free_nvm(location.disk_offset, location.stored_size);
      node_.simulator().schedule_after(
          0, [done = std::move(done)]() { done(Status::Ok()); });
      return;
    case mem::Tier::kDisk:
      free_disk(location.disk_offset, location.stored_size);
      node_.simulator().schedule_after(
          0, [done = std::move(done)]() { done(Status::Ok()); });
      return;
  }
  done(InternalError("unknown tier"));
}

// ---- eviction notices and migration (§IV.F) ---------------------------------

StatusOr<std::vector<std::byte>> NodeService::handle_evict_notice(
    net::NodeId, net::WireReader& req) {
  const auto evicting = static_cast<net::NodeId>(req.u32());
  const auto count = req.u32();
  DM_RETURN_IF_ERROR(req.status());
  std::vector<std::pair<cluster::ServerId, mem::EntryId>> victims;
  victims.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const auto server = static_cast<cluster::ServerId>(req.u32());
    const auto entry = static_cast<mem::EntryId>(req.u64());
    if (!req.ok()) break;
    victims.emplace_back(server, entry);
  }
  DM_RETURN_IF_ERROR(req.status());
  // Ack immediately; migrations proceed asynchronously and complete the
  // drain by freeing the old blocks.
  for (const auto& [server, entry] : victims) {
    node_.simulator().schedule_after(0, [this, evicting, server = server,
                                         entry = entry]() {
      migrate_entry(server, entry, evicting);
    });
  }
  return std::vector<std::byte>{};
}

void NodeService::migrate_entry(cluster::ServerId server, mem::EntryId entry,
                                net::NodeId away_from, net::TraceId trace) {
  Ldmc* owner = client(server);
  if (owner == nullptr) {
    ++metrics_.counter("ldms.migrate_unknown_server");
    return;
  }
  auto loc = owner->map().lookup(entry);
  if (!loc.ok() || loc->tier != mem::Tier::kRemote) {
    ++metrics_.counter("ldms.migrate_stale");
    return;
  }
  mem::RemoteReplica old_replica;
  std::vector<mem::RemoteReplica> survivors;
  for (const auto& replica : loc->replicas) {
    if (replica.node == away_from) {
      old_replica = replica;
    } else {
      survivors.push_back(replica);
    }
  }
  if (old_replica.node == net::kInvalidNode) {
    ++metrics_.counter("ldms.migrate_stale");
    return;
  }
  if (loc->ec_k > 0) {
    // EC stripe: only the one shard hosted on `away_from` moves. Read it
    // from the evicting node (still up — this is a drain, not a crash),
    // restripe it onto a fresh node, then swap it into the committed set.
    const std::size_t total =
        static_cast<std::size_t>(loc->ec_k) + loc->ec_r;
    const std::size_t shard_len =
        ec::RsCodec::shard_size(loc->stored_size, loc->ec_k);
    auto shard_bytes = std::make_shared<std::vector<std::byte>>(shard_len);
    std::vector<net::NodeId> exclude;
    for (const auto& replica : loc->replicas) exclude.push_back(replica.node);
    const SimTime migrate_started = node_.simulator().now();
    rdmc_.read(
        {old_replica}, 0, *shard_bytes,
        [this, server, entry, shard_bytes, survivors, old_replica, trace,
         migrate_started, total, exclude = std::move(exclude),
         base = *loc](const Status& s) mutable {
          if (!s.ok()) {
            ++metrics_.counter("ldms.migrate_read_failed");
            return;
          }
          std::vector<Rdmc::ShardPayload> payload(1);
          payload[0].shard = old_replica.shard;
          payload[0].bytes = *shard_bytes;
          rdmc_.put_shards(
              server, entry, std::move(payload), /*min_needed=*/1,
              [this, server, entry, survivors, old_replica, migrate_started,
               total, base = std::move(base)](
                  StatusOr<std::vector<mem::RemoteReplica>> fresh) mutable {
                if (!fresh.ok()) {
                  ++metrics_.counter("ldms.migrate_put_failed");
                  return;
                }
                Ldmc* live_owner = client(server);
                auto current = live_owner != nullptr
                                   ? live_owner->map().lookup(entry)
                                   : NotFoundError("owner gone");
                if (!current.ok() ||
                    current->tier != mem::Tier::kRemote) {
                  rdmc_.free_replicas(*std::move(fresh));
                  ++metrics_.counter("ldms.migrate_stale");
                  return;
                }
                mem::EntryLocation updated = std::move(base);
                updated.replicas = std::move(survivors);
                for (auto& replica : *fresh)
                  updated.replicas.push_back(replica);
                updated.degraded = updated.replicas.size() < total;
                live_owner->map().commit(entry, std::move(updated));
                rdmc_.free_replicas({old_replica});
                ++metrics_.counter("ldms.migrated_entries");
                metrics_.histogram("cluster.migrate_ns")
                    .record(static_cast<std::uint64_t>(
                        node_.simulator().now() - migrate_started));
              },
              exclude, trace);
        },
        trace);
    return;
  }
  // Read the entry (prefer a surviving replica; the evicting node is still
  // up, so it serves as the last resort).
  auto sources = survivors.empty()
                     ? std::vector<mem::RemoteReplica>{old_replica}
                     : survivors;
  auto bytes = std::make_shared<std::vector<std::byte>>(loc->stored_size);
  std::vector<net::NodeId> exclude;
  for (const auto& replica : loc->replicas) exclude.push_back(replica.node);
  const SimTime migrate_started = node_.simulator().now();
  rdmc_.read(
      sources, 0, *bytes,
      [this, server, entry, bytes, survivors, old_replica, trace,
       migrate_started, exclude = std::move(exclude),
       base = *loc](const Status& s) mutable {
        if (!s.ok()) {
          ++metrics_.counter("ldms.migrate_read_failed");
          return;
        }
        rdmc_.put(
            server, entry, *bytes,
            [this, server, entry, bytes, survivors, old_replica,
             migrate_started, base = std::move(base)](
                StatusOr<std::vector<mem::RemoteReplica>> fresh) mutable {
              if (!fresh.ok()) {
                ++metrics_.counter("ldms.migrate_put_failed");
                return;
              }
              Ldmc* live_owner = client(server);
              // Re-check: the entry may have been removed or relocated
              // while the migration was in flight (same rule as the
              // repair path) — never resurrect it.
              auto current = live_owner != nullptr
                                 ? live_owner->map().lookup(entry)
                                 : NotFoundError("owner gone");
              if (!current.ok() || current->tier != mem::Tier::kRemote) {
                rdmc_.free_replicas(*std::move(fresh));
                ++metrics_.counter("ldms.migrate_stale");
                return;
              }
              mem::EntryLocation updated = std::move(base);
              updated.replicas = std::move(survivors);
              for (auto& replica : *fresh)
                updated.replicas.push_back(replica);
              live_owner->map().commit(entry, std::move(updated));
              rdmc_.free_replicas({old_replica});
              ++metrics_.counter("ldms.migrated_entries");
              metrics_.histogram("cluster.migrate_ns")
                  .record(static_cast<std::uint64_t>(
                      node_.simulator().now() - migrate_started));
            },
            exclude, /*count=*/1, trace);
      },
      trace);
}

// ---- cluster balancing: live migration off hot nodes ------------------------

StatusOr<std::vector<std::byte>> NodeService::handle_migrate_region(
    net::NodeId, net::WireReader& req) {
  const auto hot_node = static_cast<net::NodeId>(req.u32());
  const auto max_entries = req.u32();
  DM_RETURN_IF_ERROR(req.status());
  // Walk owned maps in (server, entry) order and schedule copy-then-redirect
  // migrations for regions replicated on the hot node, up to the budget.
  // Like the eviction path, migrations run asynchronously after the ack;
  // each keeps the source replica until the new location commits, so a
  // crash mid-migration degrades back to the pre-migration placement.
  std::uint32_t scheduled = 0;
  for (const auto& [server, client_ptr] : clients_) {
    if (scheduled >= max_entries) break;
    for (mem::EntryId entry :
         client_ptr->map().entries_with_replica_on(hot_node)) {
      if (scheduled >= max_entries) break;
      node_.simulator().schedule_after(
          0, [this, hot_node, server = server, entry]() {
            migrate_entry(server, entry, hot_node, node_.next_trace_id());
          });
      ++scheduled;
      ++metrics_.counter("placement.rebalance_moves");
    }
  }
  net::WireWriter w;
  w.put_u32(scheduled);
  return std::move(w).take();
}

void NodeService::offload_hot_node(std::size_t max_entries,
                                   std::function<void(std::size_t)> done) {
  // Owners of regions hosted here, asked in ascending id order, each with
  // the remaining budget. Sequential (next RPC only after the previous
  // reply) so the budget is respected and the RPC order is deterministic.
  struct Offload : std::enable_shared_from_this<Offload> {
    NodeService* self = nullptr;
    std::vector<std::pair<net::NodeId, std::size_t>> owners;
    std::size_t next = 0;
    std::size_t budget = 0;
    std::size_t accepted = 0;
    std::function<void(std::size_t)> done;

    void step() {
      if (next >= owners.size() || budget == 0) {
        if (done) done(accepted);
        return;
      }
      const net::NodeId owner = owners[next++].first;
      net::WireWriter w;
      w.put_u32(self->node_.id());
      w.put_u32(static_cast<std::uint32_t>(budget));
      self->node_.rpc().call(
          owner, kRpcMigrateRegion, std::move(w).take(), 100 * kMilli,
          [op = shared_from_this()](StatusOr<std::vector<std::byte>> resp) {
            if (resp.ok()) {
              net::WireReader r(*resp);
              const std::uint32_t got = r.u32();
              if (r.ok()) {
                const std::size_t n = std::min<std::size_t>(got, op->budget);
                op->accepted += n;
                op->budget -= n;
                ++op->self->metrics_.counter("harvest.offload_scheduled");
              }
            }
            op->step();
          });
    }
  };

  ++metrics_.counter("harvest.offload_requests");
  auto op = std::make_shared<Offload>();
  op->self = this;
  op->owners = rdms_.hosted_owners();
  op->budget = max_entries;
  op->done = std::move(done);
  op->step();
}

bool NodeService::reclaim_donated_slab() {
  if (rdms_.active_drains() != 0) return false;
  auto slab = node_.recv_pool().least_loaded_slab();
  if (!slab) return false;
  ++metrics_.counter("harvest.slab_drains");
  const SimTime drain_started = node_.simulator().now();
  const std::uint64_t registered_before = node_.recv_pool().registered_bytes();
  rdms_.drain_slab(*slab, [this, drain_started,
                           registered_before](const Status& s) {
    metrics_.histogram("harvest.drain_ns")
        .record(static_cast<std::uint64_t>(node_.simulator().now() -
                                           drain_started));
    if (!s.ok()) {
      ++metrics_.counter("harvest.drain_failed");
      return;
    }
    const std::uint64_t registered_after = node_.recv_pool().registered_bytes();
    if (registered_after < registered_before)
      metrics_.counter("harvest.reclaimed_pages") +=
          (registered_before - registered_after) / 4096;
  });
  return true;
}

void NodeService::repair_after_node_down(net::NodeId dead) {
  for (auto& [server, client_ptr] : clients_) {
    Ldmc* owner = client_ptr.get();
    for (mem::EntryId entry : owner->map().entries_with_replica_on(dead)) {
      auto loc = owner->map().lookup(entry);
      if (!loc.ok() || loc->tier != mem::Tier::kRemote) continue;
      std::vector<mem::RemoteReplica> survivors;
      for (const auto& replica : loc->replicas)
        if (replica.node != dead &&
            node_.fabric().node_up(replica.node))
          survivors.push_back(replica);
      if (loc->ec_k > 0) {
        // EC stripe: readable while >= k shards survive. Degrade the
        // committed set so reads stop touching the dead host, then let
        // repair_entry re-encode the lost shards onto fresh nodes.
        const std::size_t total =
            static_cast<std::size_t>(loc->ec_k) + loc->ec_r;
        if (survivors.size() < loc->ec_k) {
          ++data_loss_;
          ++metrics_.counter("ldms.repair_data_loss");
          continue;
        }
        mem::EntryLocation degraded = *loc;
        degraded.replicas = std::move(survivors);
        degraded.degraded = degraded.replicas.size() < total;
        owner->map().commit(entry, degraded);
        const auto server_id = server;
        node_.simulator().schedule_after(0, [this, server_id, entry]() {
          repair_entry(server_id, entry, [](const Status&) {});
        });
        continue;
      }
      if (survivors.empty()) {
        ++data_loss_;
        ++metrics_.counter("ldms.repair_data_loss");
        continue;
      }
      // Degrade the committed location first so reads stop touching the
      // dead replica, then top the factor back up asynchronously.
      mem::EntryLocation degraded = *loc;
      degraded.replicas = survivors;
      degraded.degraded = survivors.size() < config_.rdmc.replication;
      owner->map().commit(entry, degraded);

      std::vector<net::NodeId> exclude;
      for (const auto& replica : survivors) exclude.push_back(replica.node);
      exclude.push_back(dead);
      auto bytes = std::make_shared<std::vector<std::byte>>(loc->stored_size);
      const auto server_id = server;
      rdmc_.read(
          survivors, 0, *bytes,
          [this, server_id, entry, bytes, survivors,
           exclude = std::move(exclude), base = degraded](
              const Status& s) mutable {
            if (!s.ok()) {
              ++metrics_.counter("ldms.repair_read_failed");
              return;
            }
            rdmc_.put(
                server_id, entry, *bytes,
                [this, server_id, entry, bytes, survivors,
                 base = std::move(base)](
                    StatusOr<std::vector<mem::RemoteReplica>> fresh) mutable {
                  if (!fresh.ok()) {
                    ++metrics_.counter("ldms.repair_put_failed");
                    return;
                  }
                  Ldmc* live_owner = client(server_id);
                  if (live_owner == nullptr) return;
                  // Re-check: the entry may have moved since the repair
                  // started (e.g. removed by the application).
                  auto current = live_owner->map().lookup(entry);
                  if (!current.ok() ||
                      current->tier != mem::Tier::kRemote) {
                    rdmc_.free_replicas(*std::move(fresh));
                    return;
                  }
                  mem::EntryLocation updated = std::move(base);
                  updated.replicas = survivors;
                  for (auto& replica : *fresh)
                    updated.replicas.push_back(replica);
                  updated.degraded =
                      updated.replicas.size() < config_.rdmc.replication;
                  live_owner->map().commit(entry, std::move(updated));
                  ++metrics_.counter("ldms.repaired_entries");
                },
                exclude, /*count=*/1);
          });
    }
  }
}

void NodeService::invalidate_replicas_on(net::NodeId host) {
  for_each_client([&](cluster::ServerId, Ldmc& owner) {
    for (mem::EntryId entry : owner.map().entries_with_replica_on(host)) {
      auto loc = owner.map().lookup(entry);
      if (!loc.ok() || loc->tier != mem::Tier::kRemote) continue;
      std::vector<mem::RemoteReplica> survivors;
      for (const auto& replica : loc->replicas)
        if (replica.node != host) survivors.push_back(replica);
      // EC entries stay readable down to ec_k surviving shards; whole-copy
      // replication down to a single replica. Below that floor the
      // rebooted node held the last usable bytes: genuine data loss.
      const std::size_t floor = loc->ec_k > 0 ? loc->ec_k : 1;
      const std::size_t target =
          loc->ec_k > 0 ? static_cast<std::size_t>(loc->ec_k) + loc->ec_r
                        : config_.rdmc.replication;
      if (survivors.size() < floor) {
        ++data_loss_;
        ++metrics_.counter("ldms.repair_data_loss");
        continue;
      }
      mem::EntryLocation updated = *loc;
      updated.replicas = std::move(survivors);
      updated.degraded = updated.replicas.size() < target;
      owner.map().commit(entry, std::move(updated));
      ++metrics_.counter("ldms.replicas_invalidated");
    }
  });
}

void NodeService::repair_entry(cluster::ServerId server, mem::EntryId entry,
                               DoneCallback done, net::TraceId trace) {
  if (trace == net::kNoTrace) trace = node_.next_trace_id();
  Ldmc* owner = client(server);
  if (owner == nullptr) {
    done(NotFoundError("unknown server"));
    return;
  }
  auto loc = owner->map().lookup(entry);
  if (!loc.ok()) {
    done(loc.status());
    return;
  }
  const std::size_t factor = config_.rdmc.replication;

  if (loc->tier == mem::Tier::kRemote && loc->ec_k > 0) {
    repair_entry_ec(server, entry, *loc, std::move(done), trace);
    return;
  }

  if ((loc->tier == mem::Tier::kDisk || loc->tier == mem::Tier::kNvm) &&
      loc->degraded && rdmc_.config().ec_k > 0) {
    // EC mode's disk-fallback re-promotion: read the device copy, stripe
    // it, and release the extent — the EC analogue of the replicated
    // promote path below.
    auto bytes = std::make_shared<std::vector<std::byte>>(loc->stored_size);
    get_entry(
        server, entry, *loc, 0, *bytes,
        [this, server, entry, bytes, old = *loc,
         done = std::move(done), trace](const Status& s) mutable {
          if (!s.ok()) {
            ++metrics_.counter("ldms.repair_read_failed");
            done(s);
            return;
          }
          ec_store(
              server, entry, *bytes,
              [this, server, entry, bytes, old = std::move(old),
               done = std::move(done)](
                  StatusOr<mem::EntryLocation> ec_loc) mutable {
                if (!ec_loc.ok()) {
                  ++metrics_.counter("ldms.repair_put_failed");
                  done(ec_loc.status());
                  return;
                }
                Ldmc* live_owner = client(server);
                auto current = live_owner != nullptr
                                   ? live_owner->map().lookup(entry)
                                   : NotFoundError("owner gone");
                if (!current.ok() || current->tier != old.tier ||
                    current->disk_offset != old.disk_offset) {
                  rdmc_.free_replicas(std::move(ec_loc->replicas));
                  ++metrics_.counter("ldms.repair_stale");
                  done(Status::Ok());
                  return;
                }
                const mem::Tier old_tier = old.tier;
                const std::uint64_t extent = old.disk_offset;
                mem::EntryLocation updated = std::move(old);
                updated.tier = mem::Tier::kRemote;
                updated.replicas = std::move(ec_loc->replicas);
                updated.ec_k = ec_loc->ec_k;
                updated.ec_r = ec_loc->ec_r;
                updated.shard_checksums =
                    std::move(ec_loc->shard_checksums);
                updated.degraded = ec_loc->degraded;
                updated.disk_offset = 0;
                const std::uint32_t stored = updated.stored_size;
                live_owner->map().commit(entry, std::move(updated));
                if (old_tier == mem::Tier::kNvm)
                  free_nvm(extent, stored);
                else
                  free_disk(extent, stored);
                ++metrics_.counter("ldms.promoted_from_disk");
                done(Status::Ok());
              },
              trace);
        },
        trace);
    return;
  }

  if (loc->tier == mem::Tier::kRemote) {
    // Prune replicas whose hosts are down, then top back up to the factor.
    std::vector<mem::RemoteReplica> survivors;
    for (const auto& replica : loc->replicas)
      if (node_.fabric().node_up(replica.node)) survivors.push_back(replica);
    if (survivors.empty()) {
      ++data_loss_;
      ++metrics_.counter("ldms.repair_data_loss");
      done(DataLossError("no live replica to repair from"));
      return;
    }
    mem::EntryLocation pruned = *loc;
    pruned.replicas = survivors;
    pruned.degraded = survivors.size() < factor;
    if (pruned.replicas.size() != loc->replicas.size() ||
        pruned.degraded != loc->degraded)
      owner->map().commit(entry, pruned);
    if (survivors.size() >= factor) {
      done(Status::Ok());
      return;
    }
    const std::size_t missing = factor - survivors.size();
    std::vector<net::NodeId> exclude;
    for (const auto& replica : loc->replicas) exclude.push_back(replica.node);
    auto bytes = std::make_shared<std::vector<std::byte>>(loc->stored_size);
    rdmc_.read(
        survivors, 0, *bytes,
        [this, server, entry, bytes, survivors, missing,
         exclude = std::move(exclude), base = std::move(pruned), factor,
         done = std::move(done), trace](const Status& s) mutable {
          if (!s.ok()) {
            ++metrics_.counter("ldms.repair_read_failed");
            done(s);
            return;
          }
          rdmc_.put(
              server, entry, *bytes,
              [this, server, entry, bytes, survivors, base = std::move(base),
               factor, done = std::move(done)](
                  StatusOr<std::vector<mem::RemoteReplica>> fresh) mutable {
                if (!fresh.ok()) {
                  ++metrics_.counter("ldms.repair_put_failed");
                  done(fresh.status());
                  return;
                }
                Ldmc* live_owner = client(server);
                // Re-check before committing: never resurrect an entry the
                // application removed or moved while the repair ran.
                auto current = live_owner != nullptr
                                   ? live_owner->map().lookup(entry)
                                   : NotFoundError("owner gone");
                if (!current.ok() || current->tier != mem::Tier::kRemote) {
                  rdmc_.free_replicas(*std::move(fresh));
                  ++metrics_.counter("ldms.repair_stale");
                  done(Status::Ok());
                  return;
                }
                mem::EntryLocation updated = std::move(base);
                updated.replicas = survivors;
                for (auto& replica : *fresh)
                  updated.replicas.push_back(replica);
                updated.degraded = updated.replicas.size() < factor;
                live_owner->map().commit(entry, std::move(updated));
                ++metrics_.counter("ldms.repaired_entries");
                done(Status::Ok());
              },
              exclude, missing, trace);
        },
        trace);
    return;
  }

  if ((loc->tier == mem::Tier::kDisk || loc->tier == mem::Tier::kNvm) &&
      loc->degraded) {
    // Disk-fallback entry: re-promote to remote memory at the full factor,
    // then release the device extent.
    auto bytes = std::make_shared<std::vector<std::byte>>(loc->stored_size);
    get_entry(
        server, entry, *loc, 0, *bytes,
        [this, server, entry, bytes, old = *loc, factor,
         done = std::move(done), trace](const Status& s) mutable {
          if (!s.ok()) {
            ++metrics_.counter("ldms.repair_read_failed");
            done(s);
            return;
          }
          rdmc_.put(
              server, entry, *bytes,
              [this, server, entry, bytes, old = std::move(old), factor,
               done = std::move(done)](
                  StatusOr<std::vector<mem::RemoteReplica>> fresh) mutable {
                if (!fresh.ok()) {
                  ++metrics_.counter("ldms.repair_put_failed");
                  done(fresh.status());
                  return;
                }
                Ldmc* live_owner = client(server);
                auto current = live_owner != nullptr
                                   ? live_owner->map().lookup(entry)
                                   : NotFoundError("owner gone");
                // Promote only if the entry still sits in the same device
                // extent the bytes were read from.
                if (!current.ok() || current->tier != old.tier ||
                    current->disk_offset != old.disk_offset) {
                  rdmc_.free_replicas(*std::move(fresh));
                  ++metrics_.counter("ldms.repair_stale");
                  done(Status::Ok());
                  return;
                }
                const mem::Tier old_tier = old.tier;
                const std::uint64_t extent = old.disk_offset;
                mem::EntryLocation updated = std::move(old);
                updated.tier = mem::Tier::kRemote;
                updated.replicas = *std::move(fresh);
                updated.degraded = updated.replicas.size() < factor;
                updated.disk_offset = 0;
                const std::uint32_t stored = updated.stored_size;
                live_owner->map().commit(entry, std::move(updated));
                if (old_tier == mem::Tier::kNvm)
                  free_nvm(extent, stored);
                else
                  free_disk(extent, stored);
                ++metrics_.counter("ldms.promoted_from_disk");
                done(Status::Ok());
              },
              /*exclude=*/{}, /*count=*/0, trace);
        },
        trace);
    return;
  }

  // Healthy (or shm-resident) entry: nothing to repair.
  done(Status::Ok());
}

void NodeService::repair_entry_ec(cluster::ServerId server,
                                  mem::EntryId entry,
                                  const mem::EntryLocation& loc,
                                  DoneCallback done, net::TraceId trace) {
  const std::size_t k = loc.ec_k;
  const std::size_t total = k + loc.ec_r;
  std::vector<mem::RemoteReplica> survivors;
  for (const auto& replica : loc.replicas)
    if (node_.fabric().node_up(replica.node)) survivors.push_back(replica);
  if (survivors.size() < k) {
    ++data_loss_;
    ++metrics_.counter("ldms.repair_data_loss");
    done(DataLossError("fewer than k shards survive"));
    return;
  }
  Ldmc* owner = client(server);
  if (owner == nullptr) {
    done(NotFoundError("unknown server"));
    return;
  }
  mem::EntryLocation pruned = loc;
  pruned.replicas = survivors;
  pruned.degraded = survivors.size() < total;
  if (pruned.replicas.size() != loc.replicas.size() ||
      pruned.degraded != loc.degraded)
    owner->map().commit(entry, pruned);
  if (survivors.size() == total) {
    done(Status::Ok());
    return;
  }

  // Pull all surviving shards, reconstruct the lost ones, and stripe them
  // onto fresh nodes. Partial success is fine (min_needed = 1): every
  // landed shard strictly improves durability and the next scan retries.
  const std::size_t shard_len = ec::RsCodec::shard_size(loc.stored_size, k);
  struct EcRepair {
    NodeService* self = nullptr;
    cluster::ServerId server = 0;
    mem::EntryId entry = 0;
    mem::EntryLocation base;  // pruned committed state
    std::vector<std::vector<std::byte>> shards;
    std::size_t pending = 0;
    DoneCallback done;
    net::TraceId trace = net::kNoTrace;
  };
  auto st = std::make_shared<EcRepair>();
  st->self = this;
  st->server = server;
  st->entry = entry;
  st->base = std::move(pruned);
  st->shards.assign(total, {});
  st->done = std::move(done);
  st->trace = trace;

  auto reencode = [st, k, total, shard_len]() {
    NodeService* self = st->self;
    std::size_t present = 0;
    // Same checksum gate as degraded reads: a corrupted surviving shard
    // must not contaminate the rebuilt ones.
    for (std::size_t i = 0; i < total; ++i) {
      if (st->shards[i].empty()) continue;
      if (i < st->base.shard_checksums.size() &&
          fnv1a(st->shards[i]) != st->base.shard_checksums[i]) {
        st->shards[i].clear();
        ++self->metrics_.counter("ec.corrupt_shards");
        continue;
      }
      ++present;
    }
    if (present < k) {
      ++self->metrics_.counter("ldms.repair_read_failed");
      st->done(DataLossError("fewer than k shards readable for repair"));
      return;
    }
    auto rebuilt = st->shards;
    Status rec = [&]() {
      if (self->codec_ && self->codec_->k() == k &&
          self->codec_->r() == total - k)
        return self->codec_->reconstruct(rebuilt);
      auto codec = ec::RsCodec::make(k, total - k);
      if (!codec.ok()) return codec.status();
      return codec->reconstruct(rebuilt);
    }();
    if (!rec.ok()) {
      st->done(rec);
      return;
    }
    // Reconstruction is a decode: charge the codec cost before fan-out.
    const SimTime cost =
        self->config_.ec_decode_cost.cost(st->base.stored_size);
    self->metrics_.histogram("ec.decode_ns")
        .record(static_cast<std::uint64_t>(cost));
    std::vector<Rdmc::ShardPayload> missing;
    for (std::size_t i = 0; i < total; ++i) {
      bool held = false;
      for (const auto& replica : st->base.replicas)
        if (replica.shard == i) held = true;
      if (held) continue;
      Rdmc::ShardPayload payload;
      payload.shard = static_cast<std::uint32_t>(i);
      payload.bytes = std::move(rebuilt[i]);
      missing.push_back(std::move(payload));
    }
    if (missing.empty()) {
      st->done(Status::Ok());
      return;
    }
    std::vector<net::NodeId> exclude;
    for (const auto& replica : st->base.replicas)
      exclude.push_back(replica.node);
    self->node_.simulator().schedule_after(
        cost, [st, total, missing = std::move(missing),
               exclude = std::move(exclude)]() mutable {
          st->self->rdmc_.put_shards(
              st->server, st->entry, std::move(missing), /*min_needed=*/1,
              [st, total](
                  StatusOr<std::vector<mem::RemoteReplica>> fresh) mutable {
                NodeService* svc = st->self;
                if (!fresh.ok()) {
                  ++svc->metrics_.counter("ldms.repair_put_failed");
                  st->done(fresh.status());
                  return;
                }
                Ldmc* live_owner = svc->client(st->server);
                // Stale re-check: never resurrect a removed or relocated
                // entry with freshly-minted shards.
                auto current = live_owner != nullptr
                                   ? live_owner->map().lookup(st->entry)
                                   : NotFoundError("owner gone");
                if (!current.ok() ||
                    current->tier != mem::Tier::kRemote ||
                    current->ec_k != st->base.ec_k) {
                  svc->rdmc_.free_replicas(*std::move(fresh));
                  ++svc->metrics_.counter("ldms.repair_stale");
                  st->done(Status::Ok());
                  return;
                }
                // Merge by shard index against the *current* committed set
                // (a concurrent repair/migration may have added shards):
                // the surviving-shard count never decreases, duplicates
                // are freed.
                mem::EntryLocation updated = *std::move(current);
                std::size_t appended = 0;
                for (auto& replica : *fresh) {
                  bool duplicate = false;
                  for (const auto& held : updated.replicas)
                    if (held.shard == replica.shard) duplicate = true;
                  if (duplicate) {
                    svc->rdmc_.free_replicas({replica});
                    continue;
                  }
                  updated.replicas.push_back(replica);
                  ++appended;
                }
                updated.degraded = updated.replicas.size() < total;
                live_owner->map().commit(st->entry, std::move(updated));
                svc->metrics_.counter("ec.shards_repaired") += appended;
                ++svc->metrics_.counter("ldms.repaired_entries");
                st->done(Status::Ok());
              },
              exclude, st->trace);
        });
  };

  st->pending = st->base.replicas.size();
  for (const auto& replica : st->base.replicas) {
    st->shards[replica.shard].resize(shard_len);
    rdmc_.read(
        {replica}, 0, st->shards[replica.shard],
        [st, shard = replica.shard, reencode](const Status& s) {
          if (!s.ok()) st->shards[shard].clear();
          if (--st->pending == 0) reencode();
        },
        trace);
  }
}

// ---- pressure accounting (§I imbalance signal) -------------------------------

// Lazy window rotation: both the reader and the writer first roll the
// window forward to the one containing `now`, so the reported value is the
// count of the last *complete* window regardless of call order. A node
// that goes quiet for more than a window reports zero (stale demand must
// not repel placements forever).
void NodeService::note_pressure() {
  const SimTime now = node_.simulator().now();
  if (now - pressure_window_start_ >= config_.pressure_window) {
    const bool adjacent =
        now - pressure_window_start_ < 2 * config_.pressure_window;
    pressure_last_ = adjacent ? pressure_accum_ : 0;
    pressure_accum_ = 0;
    pressure_window_start_ =
        now - (now - pressure_window_start_) % config_.pressure_window;
  }
  ++pressure_accum_;
}

std::uint64_t NodeService::pressure() const {
  const SimTime now = node_.simulator().now();
  if (now - pressure_window_start_ >= config_.pressure_window) {
    const bool adjacent =
        now - pressure_window_start_ < 2 * config_.pressure_window;
    pressure_last_ = adjacent ? pressure_accum_ : 0;
    pressure_accum_ = 0;
    pressure_window_start_ =
        now - (now - pressure_window_start_) % config_.pressure_window;
  }
  return pressure_last_;
}

// ---- leader candidate sets (§IV.E) -------------------------------------------

std::vector<cluster::CandidateNode> NodeService::local_candidate_view(
    bool include_self) const {
  std::vector<cluster::CandidateNode> out;
  if (include_self)
    out.push_back({node_.id(), node_.donatable_free_bytes(), pressure()});
  for (net::NodeId peer : node_.membership().peers()) {
    if (!node_.membership().alive(peer)) continue;
    out.push_back({peer, node_.membership().last_known_free(peer),
                   node_.membership().last_known_pressure(peer)});
  }
  return out;
}

StatusOr<std::vector<std::byte>> NodeService::handle_query_candidates(
    net::NodeId, net::WireReader&) {
  // Answered by whoever is asked — in practice the group leader, whose
  // heartbeat view aggregates the whole group.
  auto view = local_candidate_view(/*include_self=*/true);
  net::WireWriter w;
  w.put_u32(static_cast<std::uint32_t>(view.size()));
  for (const auto& candidate : view) {
    w.put_u32(candidate.node);
    w.put_u64(candidate.free_bytes);
    w.put_u64(candidate.pressure);
  }
  ++metrics_.counter("candidates.queries_served");
  return std::move(w).take();
}

void NodeService::start_candidate_refresh() {
  if (!config_.leader_candidates || candidate_refresh_running_) return;
  candidate_refresh_running_ = true;
  refresh_candidates();
}

void NodeService::refresh_candidates() {
  if (!candidate_refresh_running_) return;
  const net::NodeId leader =
      node_.election() != nullptr ? node_.election()->leader()
                                  : net::kInvalidNode;
  auto reschedule = [this]() {
    node_.simulator().schedule_after(config_.candidate_refresh_period,
                                     [this]() { refresh_candidates(); });
  };
  if (leader == net::kInvalidNode || leader == node_.id()) {
    // We are (or have no) leader: use the local aggregate directly.
    candidate_cache_ = local_candidate_view(/*include_self=*/true);
    ++metrics_.counter("candidates.local_refreshes");
    reschedule();
    return;
  }
  node_.rpc().call(
      leader, kRpcQueryCandidates, {}, 50 * kMilli,
      [this, reschedule](StatusOr<std::vector<std::byte>> resp) {
        if (resp.ok()) {
          net::WireReader r(*resp);
          const std::uint32_t n = r.u32();
          std::vector<cluster::CandidateNode> fresh;
          for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
            const auto node = static_cast<net::NodeId>(r.u32());
            const std::uint64_t free_bytes = r.u64();
            const std::uint64_t pressure = r.u64();
            fresh.push_back({node, free_bytes, pressure});
          }
          if (r.ok()) {
            candidate_cache_ = std::move(fresh);
            ++metrics_.counter("candidates.leader_refreshes");
          }
        } else {
          // Leader unreachable: fall back to the local view until the next
          // round (the election will move the leader shortly anyway).
          candidate_cache_.clear();
          ++metrics_.counter("candidates.refresh_failed");
        }
        reschedule();
      });
}

// ---- eviction monitor (§IV.F policies 1 & 2) --------------------------------

void NodeService::start_eviction_monitor() {
  if (monitor_running_ || !config_.eviction.enabled) return;
  monitor_running_ = true;
  node_.simulator().schedule_after(config_.eviction.period, [this]() {
    monitor_running_ = false;
    eviction_tick();
    start_eviction_monitor();
  });
}

void NodeService::eviction_tick() {
  const auto& cfg = config_.eviction;
  auto& pool = node_.recv_pool();

  // Policy 1: local servers are overflowing to remote memory while this
  // node still donates DRAM to peers -> reclaim a receive-pool slab.
  const double free_fraction =
      pool.capacity_bytes() == 0
          ? 1.0
          : static_cast<double>(node_.donatable_free_bytes()) /
                static_cast<double>(pool.capacity_bytes());
  if (remote_puts_window_ >= cfg.remote_rate_threshold &&
      free_fraction < cfg.low_free_watermark && rdms_.active_drains() == 0) {
    if (auto slab = pool.least_loaded_slab()) {
      ++metrics_.counter("eviction.slab_drains");
      const SimTime drain_started = node_.simulator().now();
      rdms_.drain_slab(*slab, [this, drain_started](const Status& s) {
        metrics_.histogram("eviction.drain_ns")
            .record(static_cast<std::uint64_t>(node_.simulator().now() -
                                               drain_started));
        if (!s.ok()) ++metrics_.counter("eviction.drain_failed");
      });
    }
  }

  // Policy 2: a server hammering disaggregated memory should get more
  // resident DRAM (ballooning) by shrinking its donation.
  for (const auto& [server, requests] : dm_requests_window_) {
    if (requests < cfg.remote_rate_threshold) continue;
    ++metrics_.counter("eviction.balloon_advice");
    if (cfg.auto_balloon) {
      if (auto* vs = node_.find_server(server)) {
        const double next =
            std::max(0.0, vs->donation_fraction() - cfg.balloon_step);
        if (node_.set_server_donation(server, next).ok())
          ++metrics_.counter("eviction.balloon_applied");
      }
    }
  }

  dm_requests_window_.clear();
  remote_puts_window_ = 0;
}

// ---- disk extents -----------------------------------------------------------

std::uint32_t NodeService::disk_class(std::uint32_t size) noexcept {
  std::uint32_t cls = 512;
  while (cls < size) cls <<= 1;
  return cls;
}

StatusOr<std::uint64_t> NodeService::alloc_extent(DiskExtents& extents,
                                                  std::uint64_t capacity,
                                                  std::uint32_t size) {
  const std::uint32_t cls = disk_class(size);
  auto& free_list = extents.free_by_class[cls];
  if (!free_list.empty()) {
    const std::uint64_t offset = free_list.back();
    free_list.pop_back();
    return offset;
  }
  if (extents.cursor + cls > capacity)
    return ResourceExhaustedError("device full");
  const std::uint64_t offset = extents.cursor;
  extents.cursor += cls;
  return offset;
}

StatusOr<std::uint64_t> NodeService::alloc_disk(std::uint32_t size) {
  return alloc_extent(disk_extents_, node_.disk().capacity(), size);
}

void NodeService::free_disk(std::uint64_t offset, std::uint32_t size) {
  disk_extents_.free_by_class[disk_class(size)].push_back(offset);
}

StatusOr<std::uint64_t> NodeService::alloc_nvm(std::uint32_t size) {
  if (node_.nvm() == nullptr)
    return FailedPreconditionError("no NVM tier on this node");
  return alloc_extent(nvm_extents_, node_.nvm()->capacity(), size);
}

void NodeService::free_nvm(std::uint64_t offset, std::uint32_t size) {
  nvm_extents_.free_by_class[disk_class(size)].push_back(offset);
}

}  // namespace dm::core
