// Local Disaggregated Memory Client (paper Fig. 1, §IV.B).
//
// One LDMC runs inside each virtual server. It is the only interface
// applications (or the transparent layers acting for them — the swap
// frontend, the RDD cache) see: put/get/remove of opaque entries, with the
// location tracked in the server's disaggregated memory map. Where an entry
// physically lands — shared memory, remote replicas, disk — is decided by
// the node-side service; the LDMC only expresses policy knobs:
//
//  * shm_fraction: the fraction of puts that try the node-coordinated
//    shared pool first. 1.0 is the paper's FS-SM configuration, 0.0 is
//    FS-RDMA, intermediate values give the FS-9:1 / 7:3 / 5:5 splits of
//    Fig 8.
//  * allow_remote / allow_disk: the fallback chain gates (baselines switch
//    these off: Linux swap is disk-only; Infiniswap is remote+disk).
#pragma once

#include <span>

#include "common/checksum.h"
#include "common/status.h"
#include "core/node_service.h"
#include "mem/memory_map.h"

namespace dm::core {

class Ldmc {
 public:
  using Config = LdmcOptions;

  Ldmc(NodeService& service, cluster::ServerId server, Config config);

  cluster::ServerId server() const noexcept { return server_; }
  mem::MemoryMap& map() noexcept { return map_; }
  const Config& config() const noexcept { return config_; }
  NodeService& service() noexcept { return service_; }

  // --- asynchronous API -------------------------------------------------------
  // `trace` threads the caller's causal chain through every RPC and verb
  // the operation triggers (kNoTrace = the node service starts a fresh
  // chain), so a swap fault's journey is followable in the tracer.
  void put(mem::EntryId entry, std::span<const std::byte> data,
           std::function<void(const Status&)> done,
           net::TraceId trace = net::kNoTrace);
  // Full-entry read of stored bytes (out must be >= stored size).
  void get(mem::EntryId entry, std::span<std::byte> out,
           std::function<void(const Status&)> done,
           net::TraceId trace = net::kNoTrace);
  // Sub-range read at `offset` within the stored bytes.
  void get_range(mem::EntryId entry, std::uint64_t offset,
                 std::span<std::byte> out,
                 std::function<void(const Status&)> done,
                 net::TraceId trace = net::kNoTrace);
  void remove(mem::EntryId entry, std::function<void(const Status&)> done,
              net::TraceId trace = net::kNoTrace);

  // --- synchronous wrappers (drive the simulator until completion) ------------
  // `trace` threads the caller's chain exactly as in the async API, so
  // blocking-style callers (the swap fault path, tools) keep causal spans.
  [[nodiscard]] Status put_sync(mem::EntryId entry, std::span<const std::byte> data,
                                net::TraceId trace = net::kNoTrace);
  [[nodiscard]] Status get_sync(mem::EntryId entry, std::span<std::byte> out,
                                net::TraceId trace = net::kNoTrace);
  [[nodiscard]] Status get_range_sync(mem::EntryId entry, std::uint64_t offset,
                        std::span<std::byte> out,
                        net::TraceId trace = net::kNoTrace);
  [[nodiscard]] Status remove_sync(mem::EntryId entry,
                                   net::TraceId trace = net::kNoTrace);

  // Drives the simulator until `done()` holds. Unlike run_until_flag this
  // takes an arbitrary predicate, so callers with several operations in
  // flight (the swap layer's write-back staging buffer) can wait for a
  // compound condition. Errors if the event queue runs dry first.
  [[nodiscard]] Status drain_until(const std::function<bool()>& done);

  [[nodiscard]] StatusOr<std::size_t> stored_size(mem::EntryId entry) const;
  bool contains(mem::EntryId entry) const { return map_.contains(entry); }

  // Tier occupancy counters (bench/tests).
  std::uint64_t puts_to_shm() const noexcept { return puts_shm_; }
  std::uint64_t puts_to_remote() const noexcept { return puts_remote_; }
  std::uint64_t puts_to_disk() const noexcept { return puts_disk_; }
  std::uint64_t puts_to_nvm() const noexcept { return puts_nvm_; }

 private:
  friend class NodeService;  // migration/repair rewrite committed locations

  Status wait(const bool& flag, const Status& result);

  NodeService& service_;
  cluster::ServerId server_;
  Config config_;
  mem::MemoryMap map_;
  std::uint64_t put_counter_ = 0;
  std::uint64_t puts_shm_ = 0;
  std::uint64_t puts_remote_ = 0;
  std::uint64_t puts_disk_ = 0;
  std::uint64_t puts_nvm_ = 0;
};

}  // namespace dm::core
