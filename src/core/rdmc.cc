#include "core/rdmc.h"

#include <algorithm>

#include "common/status.h"
#include "common/units.h"
#include "mem/memory_map.h"
#include "net/wire.h"
#include "sim/trace.h"

namespace dm::core {

using cluster::kRpcAllocBlock;
using cluster::kRpcFreeBlock;

Rdmc::Rdmc(cluster::Node& node, Config config)
    : node_(node), config_(config),
      policy_(cluster::make_placement_policy(config.placement)) {}

void Rdmc::put(cluster::ServerId server, mem::EntryId entry,
               std::span<const std::byte> data, PutCallback done,
               std::span<const net::NodeId> exclude, std::size_t count,
               net::TraceId trace) {
  if (!candidates_) {
    done(FailedPreconditionError("no candidates provider bound"));
    return;
  }
  if (trace == net::kNoTrace) trace = node_.next_trace_id();
  // End-to-end transaction latency (placement + alloc RPCs + write fan-out),
  // success and rollback alike.
  const SimTime started = node_.simulator().now();
  done = [this, started, inner = std::move(done)](
             StatusOr<std::vector<mem::RemoteReplica>> result) {
    node_.recv_pool().metrics().histogram("rdmc.put_ns")
        .record(static_cast<std::uint64_t>(node_.simulator().now() - started));
    inner(std::move(result));
  };
  if (count == 0) count = config_.replication;
  // Degraded-mode floor: below this many written replicas the transaction
  // rolls back; at or above it, a short replica set is an acceptable
  // (degraded) outcome for the repair service to top up later.
  const std::size_t min_needed =
      config_.min_replicas == 0 ? count
                                : std::min(config_.min_replicas, count);
  auto candidates = candidates_();
  // Remove self and excluded nodes.
  std::erase_if(candidates, [&](const cluster::CandidateNode& c) {
    if (c.node == node_.id()) return true;
    return std::find(exclude.begin(), exclude.end(), c.node) != exclude.end();
  });
  auto targets = policy_->pick_recorded(candidates, count, data.size(),
                                        node_.rng(),
                                        &node_.recv_pool().metrics());
  // Not enough candidates for the full factor: in degraded mode, retry the
  // placement with progressively smaller replica sets down to the floor.
  std::size_t want = count;
  while (!targets.ok() && want > min_needed) {
    --want;
    targets = policy_->pick_recorded(candidates, want, data.size(),
                                     node_.rng(),
                                     &node_.recv_pool().metrics());
  }
  if (!targets.ok()) {
    ++node_.recv_pool().metrics().counter("rdmc.put_no_candidates");
    done(targets.status());
    return;
  }
  if (targets->size() < count)
    ++node_.recv_pool().metrics().counter("rdmc.put_short_placement");

  // Shared transaction state across the async alloc + write fan-out.
  struct PutTx {
    std::vector<std::byte> payload;
    std::vector<mem::RemoteReplica> replicas;
    std::size_t pending = 0;
    std::size_t min_needed = 0;
    bool failed = false;
    Status first_error;
    PutCallback done;
  };
  auto tx = std::make_shared<PutTx>();
  tx->payload.assign(data.begin(), data.end());
  tx->pending = targets->size();
  tx->min_needed = min_needed;
  tx->done = std::move(done);

  auto finish_allocs = [this, tx, trace]() {
    if (tx->failed && tx->replicas.size() < tx->min_needed) {
      // Roll back whatever was reserved; the caller's map is untouched.
      free_replicas(std::move(tx->replicas), {}, trace);
      tx->done(tx->first_error);
      return;
    }
    if (tx->failed)
      ++node_.recv_pool().metrics().counter("rdmc.put_degraded_alloc");
    // Phase 2: one-sided writes to every reserved block. Per-replica
    // success tracking: a failed write drops that replica (its block is
    // freed); the put still succeeds if enough writes landed.
    tx->failed = false;
    tx->first_error = Status::Ok();
    tx->pending = tx->replicas.size();
    auto written = std::make_shared<std::vector<mem::RemoteReplica>>();
    auto lost = std::make_shared<std::vector<mem::RemoteReplica>>();
    auto settle_writes = [this, tx, written, lost, trace]() {
      if (written->size() >= tx->min_needed) {
        if (!lost->empty()) {
          ++node_.recv_pool().metrics().counter("rdmc.put_degraded_write");
          free_replicas(std::move(*lost), {}, trace);
        }
        tx->done(std::move(*written));
      } else {
        free_replicas(std::move(tx->replicas), {}, trace);
        tx->done(tx->first_error.ok()
                     ? UnavailableError("replica writes failed")
                     : tx->first_error);
      }
    };
    for (const auto& replica : tx->replicas) {
      auto qp = node_.connections().ensure_data_channel(node_.id(),
                                                        replica.node);
      Status posted =
          !qp.ok() ? qp.status()
                   : (*qp)->post_write(
                         replica.rkey, replica.offset, tx->payload,
                         [tx, replica, written, lost,
                          settle_writes](const net::Completion& c) {
                           if (c.status.ok()) {
                             written->push_back(replica);
                           } else {
                             lost->push_back(replica);
                             if (tx->first_error.ok())
                               tx->first_error = c.status;
                           }
                           if (--tx->pending == 0) settle_writes();
                         },
                         trace);
      if (!posted.ok()) {
        lost->push_back(replica);
        if (tx->first_error.ok()) tx->first_error = posted;
        if (--tx->pending == 0) settle_writes();
      }
    }
  };

  // Phase 1: reserve a block on each target.
  for (net::NodeId target : *targets) {
    Status channel = node_.connections().ensure_control_channel(node_.id(),
                                                                target);
    if (!channel.ok()) {
      if (!tx->failed) {
        tx->failed = true;
        tx->first_error = channel;
      }
      if (--tx->pending == 0) finish_allocs();
      continue;
    }
    net::WireWriter w;
    w.put_u32(node_.id());
    w.put_u32(server);
    w.put_u64(entry);
    w.put_u32(static_cast<std::uint32_t>(tx->payload.size()));
    node_.rpc().call(
        target, kRpcAllocBlock, std::move(w).take(), config_.rpc_timeout,
        [tx, target, finish_allocs](StatusOr<std::vector<std::byte>> resp) {
          if (resp.ok()) {
            net::WireReader r(*resp);
            mem::RemoteReplica replica;
            replica.node = target;
            replica.slab = r.u32();
            replica.rkey = r.u64();
            replica.offset = r.u64();
            replica.block_size = r.u32();
            if (r.ok()) {
              tx->replicas.push_back(replica);
            } else if (!tx->failed) {
              tx->failed = true;
              tx->first_error = r.status();
            }
          } else if (!tx->failed) {
            tx->failed = true;
            tx->first_error = resp.status();
          }
          if (--tx->pending == 0) finish_allocs();
        },
        trace);
  }
  ++node_.recv_pool().metrics().counter("rdmc.puts");
}

void Rdmc::put_shards(cluster::ServerId server, mem::EntryId entry,
                      std::vector<ShardPayload> shards,
                      std::size_t min_needed, PutCallback done,
                      std::span<const net::NodeId> exclude,
                      net::TraceId trace) {
  if (!candidates_) {
    done(FailedPreconditionError("no candidates provider bound"));
    return;
  }
  if (shards.empty()) {
    done(InvalidArgumentError("put_shards: empty shard set"));
    return;
  }
  if (min_needed == 0 || min_needed > shards.size())
    min_needed = shards.size();
  if (trace == net::kNoTrace) trace = node_.next_trace_id();
  const SimTime started = node_.simulator().now();
  done = [this, started, inner = std::move(done)](
             StatusOr<std::vector<mem::RemoteReplica>> result) {
    node_.recv_pool().metrics().histogram("rdmc.put_ns")
        .record(static_cast<std::uint64_t>(node_.simulator().now() - started));
    inner(std::move(result));
  };
  auto candidates = candidates_();
  std::erase_if(candidates, [&](const cluster::CandidateNode& c) {
    if (c.node == node_.id()) return true;
    return std::find(exclude.begin(), exclude.end(), c.node) != exclude.end();
  });
  const std::size_t shard_bytes = shards.front().bytes.size();
  auto targets = policy_->pick_recorded(candidates, shards.size(),
                                        shard_bytes, node_.rng(),
                                        &node_.recv_pool().metrics());
  // Short placement sheds shards from the back (parity-last ordering)
  // down to the floor — the EC analogue of put()'s degraded retry.
  std::size_t want = shards.size();
  while (!targets.ok() && want > min_needed) {
    --want;
    targets = policy_->pick_recorded(candidates, want, shard_bytes,
                                     node_.rng(),
                                     &node_.recv_pool().metrics());
  }
  if (!targets.ok()) {
    ++node_.recv_pool().metrics().counter("rdmc.put_no_candidates");
    done(targets.status());
    return;
  }
  if (targets->size() < shards.size())
    ++node_.recv_pool().metrics().counter("rdmc.put_short_placement");

  struct ShardTx {
    std::vector<ShardPayload> shards;
    std::vector<mem::RemoteReplica> replicas;
    std::size_t pending = 0;
    std::size_t min_needed = 0;
    bool failed = false;
    Status first_error;
    PutCallback done;
  };
  auto tx = std::make_shared<ShardTx>();
  tx->shards = std::move(shards);
  tx->pending = targets->size();
  tx->min_needed = min_needed;
  tx->done = std::move(done);

  auto finish_allocs = [this, tx, trace]() {
    if (tx->failed && tx->replicas.size() < tx->min_needed) {
      free_replicas(std::move(tx->replicas), {}, trace);
      tx->done(tx->first_error);
      return;
    }
    if (tx->failed)
      ++node_.recv_pool().metrics().counter("rdmc.put_degraded_alloc");
    tx->failed = false;
    tx->first_error = Status::Ok();
    tx->pending = tx->replicas.size();
    auto written = std::make_shared<std::vector<mem::RemoteReplica>>();
    auto lost = std::make_shared<std::vector<mem::RemoteReplica>>();
    auto settle_writes = [this, tx, written, lost, trace]() {
      if (written->size() >= tx->min_needed) {
        if (!lost->empty()) {
          ++node_.recv_pool().metrics().counter("rdmc.put_degraded_write");
          free_replicas(std::move(*lost), {}, trace);
        }
        tx->done(std::move(*written));
      } else {
        free_replicas(std::move(tx->replicas), {}, trace);
        tx->done(tx->first_error.ok()
                     ? UnavailableError("shard writes failed")
                     : tx->first_error);
      }
    };
    for (const auto& replica : tx->replicas) {
      // Each replica carries its own shard's bytes (unlike put(), where
      // every target receives the full payload).
      const ShardPayload* payload = nullptr;
      for (const auto& s : tx->shards)
        if (s.shard == replica.shard) payload = &s;
      auto qp = node_.connections().ensure_data_channel(node_.id(),
                                                        replica.node);
      Status posted =
          !qp.ok() ? qp.status()
                   : (*qp)->post_write(
                         replica.rkey, replica.offset, payload->bytes,
                         [tx, replica, written, lost,
                          settle_writes](const net::Completion& c) {
                           if (c.status.ok()) {
                             written->push_back(replica);
                           } else {
                             lost->push_back(replica);
                             if (tx->first_error.ok())
                               tx->first_error = c.status;
                           }
                           if (--tx->pending == 0) settle_writes();
                         },
                         trace);
      if (!posted.ok()) {
        lost->push_back(replica);
        if (tx->first_error.ok()) tx->first_error = posted;
        if (--tx->pending == 0) settle_writes();
      }
    }
  };

  for (std::size_t i = 0; i < targets->size(); ++i) {
    const net::NodeId target = (*targets)[i];
    const std::uint32_t shard_id = tx->shards[i].shard;
    const std::size_t size = tx->shards[i].bytes.size();
    Status channel = node_.connections().ensure_control_channel(node_.id(),
                                                                target);
    if (!channel.ok()) {
      if (!tx->failed) {
        tx->failed = true;
        tx->first_error = channel;
      }
      if (--tx->pending == 0) finish_allocs();
      continue;
    }
    net::WireWriter w;
    w.put_u32(node_.id());
    w.put_u32(server);
    w.put_u64(entry);
    w.put_u32(static_cast<std::uint32_t>(size));
    node_.rpc().call(
        target, kRpcAllocBlock, std::move(w).take(), config_.rpc_timeout,
        [tx, target, shard_id,
         finish_allocs](StatusOr<std::vector<std::byte>> resp) {
          if (resp.ok()) {
            net::WireReader r(*resp);
            mem::RemoteReplica replica;
            replica.node = target;
            replica.slab = r.u32();
            replica.rkey = r.u64();
            replica.offset = r.u64();
            replica.block_size = r.u32();
            replica.shard = shard_id;
            if (r.ok()) {
              tx->replicas.push_back(replica);
            } else if (!tx->failed) {
              tx->failed = true;
              tx->first_error = r.status();
            }
          } else if (!tx->failed) {
            tx->failed = true;
            tx->first_error = resp.status();
          }
          if (--tx->pending == 0) finish_allocs();
        },
        trace);
  }
  ++node_.recv_pool().metrics().counter("rdmc.puts");
}

void Rdmc::read(const std::vector<mem::RemoteReplica>& replicas,
                std::uint64_t range_offset, std::span<std::byte> out,
                ReadCallback done, net::TraceId trace) {
  if (replicas.empty()) {
    done(DataLossError("entry has no remote replicas"));
    return;
  }
  if (trace == net::kNoTrace) trace = node_.next_trace_id();
  // Whole-read latency including any failover hops.
  const SimTime started = node_.simulator().now();
  done = [this, started, inner = std::move(done)](const Status& s) {
    node_.recv_pool().metrics().histogram("rdmc.read_ns")
        .record(static_cast<std::uint64_t>(node_.simulator().now() - started));
    inner(s);
  };
  auto ordered = std::make_shared<std::vector<mem::RemoteReplica>>(replicas);
  read_from(std::move(ordered), 0, range_offset, out, std::move(done), trace);
}

void Rdmc::read_from(
    std::shared_ptr<std::vector<mem::RemoteReplica>> replicas,
    std::size_t index, std::uint64_t range_offset, std::span<std::byte> out,
    ReadCallback done, net::TraceId trace) {
  if (index >= replicas->size()) {
    ++node_.recv_pool().metrics().counter("rdmc.read_all_replicas_failed");
    done(DataLossError("all replicas unreachable"));
    return;
  }
  const auto& replica = (*replicas)[index];
  auto qp = node_.connections().ensure_data_channel(node_.id(), replica.node);
  if (!qp.ok()) {
    // No channel to this replica's host (crashed or unreachable): record
    // the skipped hop so the causal chain shows the failover, then try
    // the next replica.
    if (sim::Tracer* tracer = node_.fabric().tracer())
      tracer->record(node_.simulator().now(), "rdmc.read_failover",
                     "node" + std::to_string(node_.id()) +
                         " skipping dead replica on node" +
                         std::to_string(replica.node) + " " +
                         net::format_trace_id(trace));
    read_from(std::move(replicas), index + 1, range_offset, out,
              std::move(done), trace);
    return;
  }
  Status posted = (*qp)->post_read(
      replica.rkey, replica.offset + range_offset, out,
      [this, replicas, index, range_offset, out, trace,
       done = std::move(done)](const net::Completion& c) mutable {
        if (c.status.ok()) {
          done(Status::Ok());
          return;
        }
        ++node_.recv_pool().metrics().counter("rdmc.read_failovers");
        read_from(std::move(replicas), index + 1, range_offset, out,
                  std::move(done), trace);
      },
      trace);
  if (!posted.ok())
    read_from(std::move(replicas), index + 1, range_offset, out,
              std::move(done), trace);
}

void Rdmc::read_twosided(const std::vector<mem::RemoteReplica>& replicas,
                         std::uint64_t range_offset, std::span<std::byte> out,
                         ReadCallback done, net::TraceId trace) {
  if (replicas.empty()) {
    done(DataLossError("entry has no remote replicas"));
    return;
  }
  if (trace == net::kNoTrace) trace = node_.next_trace_id();
  ++node_.recv_pool().metrics().counter("rdmc.reads_twosided");
  const SimTime started = node_.simulator().now();
  done = [this, started, inner = std::move(done)](const Status& s) {
    node_.recv_pool().metrics().histogram("rdmc.read_ns")
        .record(static_cast<std::uint64_t>(node_.simulator().now() - started));
    inner(s);
  };
  auto ordered = std::make_shared<std::vector<mem::RemoteReplica>>(replicas);
  read_twosided_from(std::move(ordered), 0, range_offset, out,
                     std::move(done), trace);
}

void Rdmc::read_twosided_from(
    std::shared_ptr<std::vector<mem::RemoteReplica>> replicas,
    std::size_t index, std::uint64_t range_offset, std::span<std::byte> out,
    ReadCallback done, net::TraceId trace) {
  if (index >= replicas->size()) {
    ++node_.recv_pool().metrics().counter("rdmc.read_all_replicas_failed");
    done(DataLossError("all replicas unreachable"));
    return;
  }
  // The RDMS read handler serves a prefix of the hosted block, so ask for
  // range_offset + size bytes and keep the tail.
  const auto& replica = (*replicas)[index];
  net::WireWriter w;
  w.put_u64(replica.rkey);
  w.put_u64(replica.offset);
  w.put_u32(static_cast<std::uint32_t>(range_offset + out.size()));
  node_.rpc().call(
      replica.node, cluster::kRpcReadBlock, std::move(w).take(),
      config_.rpc_timeout,
      [this, replicas, index, range_offset, out, trace,
       done = std::move(done)](StatusOr<std::vector<std::byte>> resp) mutable {
        if (resp.ok()) {
          net::WireReader r(*resp);
          const auto bytes = r.bytes();
          if (r.ok() && bytes.size() >= range_offset + out.size()) {
            std::copy_n(bytes.begin() + static_cast<std::ptrdiff_t>(
                                            range_offset),
                        out.size(), out.begin());
            done(Status::Ok());
            return;
          }
        }
        ++node_.recv_pool().metrics().counter("rdmc.read_failovers");
        read_twosided_from(std::move(replicas), index + 1, range_offset, out,
                           std::move(done), trace);
      },
      trace);
}

void Rdmc::free_replicas(std::vector<mem::RemoteReplica> replicas,
                         DoneCallback done, net::TraceId trace) {
  if (replicas.empty()) {
    if (done) done(Status::Ok());
    return;
  }
  struct FreeState {
    std::size_t pending;
    Status first_error;
    DoneCallback done;
  };
  auto state = std::make_shared<FreeState>();
  state->pending = replicas.size();
  state->done = std::move(done);
  for (const auto& replica : replicas) {
    net::WireWriter w;
    w.put_u64(replica.rkey);
    w.put_u64(replica.offset);
    node_.rpc().call(replica.node, kRpcFreeBlock, std::move(w).take(),
                     config_.rpc_timeout,
                     [state](StatusOr<std::vector<std::byte>> resp) {
                       if (!resp.ok() && state->first_error.ok())
                         state->first_error = resp.status();
                       if (--state->pending == 0 && state->done)
                         state->done(state->first_error);
                     },
                     trace);
  }
}

}  // namespace dm::core
