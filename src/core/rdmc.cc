#include "core/rdmc.h"

#include <algorithm>

#include "net/wire.h"

namespace dm::core {

using cluster::kRpcAllocBlock;
using cluster::kRpcFreeBlock;

Rdmc::Rdmc(cluster::Node& node, Config config)
    : node_(node), config_(config),
      policy_(cluster::make_placement_policy(config.placement)) {}

void Rdmc::put(cluster::ServerId server, mem::EntryId entry,
               std::span<const std::byte> data, PutCallback done,
               std::span<const net::NodeId> exclude, std::size_t count) {
  if (!candidates_) {
    done(FailedPreconditionError("no candidates provider bound"));
    return;
  }
  if (count == 0) count = config_.replication;
  auto candidates = candidates_();
  // Remove self and excluded nodes.
  std::erase_if(candidates, [&](const cluster::CandidateNode& c) {
    if (c.node == node_.id()) return true;
    return std::find(exclude.begin(), exclude.end(), c.node) != exclude.end();
  });
  auto targets = policy_->pick(candidates, count, data.size(), node_.rng());
  if (!targets.ok()) {
    ++node_.recv_pool().metrics().counter("rdmc.put_no_candidates");
    done(targets.status());
    return;
  }

  // Shared transaction state across the async alloc + write fan-out.
  struct PutTx {
    std::vector<std::byte> payload;
    std::vector<mem::RemoteReplica> replicas;
    std::size_t pending = 0;
    bool failed = false;
    Status first_error;
    PutCallback done;
  };
  auto tx = std::make_shared<PutTx>();
  tx->payload.assign(data.begin(), data.end());
  tx->pending = targets->size();
  tx->done = std::move(done);

  auto finish_allocs = [this, tx]() {
    if (tx->failed) {
      // Roll back whatever was reserved; the caller's map is untouched.
      free_replicas(std::move(tx->replicas));
      tx->done(tx->first_error);
      return;
    }
    // Phase 2: one-sided writes to every reserved block.
    tx->pending = tx->replicas.size();
    for (const auto& replica : tx->replicas) {
      auto qp = node_.connections().ensure_data_channel(node_.id(),
                                                        replica.node);
      Status posted = !qp.ok() ? qp.status()
                               : (*qp)->post_write(
                                     replica.rkey, replica.offset,
                                     tx->payload,
                                     [this, tx](const net::Completion& c) {
                                       if (!c.status.ok() && !tx->failed) {
                                         tx->failed = true;
                                         tx->first_error = c.status;
                                       }
                                       if (--tx->pending == 0) {
                                         if (tx->failed) {
                                           free_replicas(
                                               std::move(tx->replicas));
                                           tx->done(tx->first_error);
                                         } else {
                                           tx->done(std::move(tx->replicas));
                                         }
                                       }
                                     });
      if (!posted.ok()) {
        if (!tx->failed) {
          tx->failed = true;
          tx->first_error = posted;
        }
        if (--tx->pending == 0) {
          free_replicas(std::move(tx->replicas));
          tx->done(tx->first_error);
        }
      }
    }
  };

  // Phase 1: reserve a block on each target.
  for (net::NodeId target : *targets) {
    Status channel = node_.connections().ensure_control_channel(node_.id(),
                                                                target);
    if (!channel.ok()) {
      if (!tx->failed) {
        tx->failed = true;
        tx->first_error = channel;
      }
      if (--tx->pending == 0) finish_allocs();
      continue;
    }
    net::WireWriter w;
    w.put_u32(node_.id());
    w.put_u32(server);
    w.put_u64(entry);
    w.put_u32(static_cast<std::uint32_t>(tx->payload.size()));
    node_.rpc().call(
        target, kRpcAllocBlock, std::move(w).take(), config_.rpc_timeout,
        [tx, target, finish_allocs](StatusOr<std::vector<std::byte>> resp) {
          if (resp.ok()) {
            net::WireReader r(*resp);
            mem::RemoteReplica replica;
            replica.node = target;
            replica.slab = r.u32();
            replica.rkey = r.u64();
            replica.offset = r.u64();
            replica.block_size = r.u32();
            if (r.ok()) {
              tx->replicas.push_back(replica);
            } else if (!tx->failed) {
              tx->failed = true;
              tx->first_error = r.status();
            }
          } else if (!tx->failed) {
            tx->failed = true;
            tx->first_error = resp.status();
          }
          if (--tx->pending == 0) finish_allocs();
        });
  }
  ++node_.recv_pool().metrics().counter("rdmc.puts");
}

void Rdmc::read(const std::vector<mem::RemoteReplica>& replicas,
                std::uint64_t range_offset, std::span<std::byte> out,
                ReadCallback done) {
  if (replicas.empty()) {
    done(DataLossError("entry has no remote replicas"));
    return;
  }
  auto ordered = std::make_shared<std::vector<mem::RemoteReplica>>(replicas);
  read_from(std::move(ordered), 0, range_offset, out, std::move(done));
}

void Rdmc::read_from(
    std::shared_ptr<std::vector<mem::RemoteReplica>> replicas,
    std::size_t index, std::uint64_t range_offset, std::span<std::byte> out,
    ReadCallback done) {
  if (index >= replicas->size()) {
    ++node_.recv_pool().metrics().counter("rdmc.read_all_replicas_failed");
    done(DataLossError("all replicas unreachable"));
    return;
  }
  const auto& replica = (*replicas)[index];
  auto qp = node_.connections().ensure_data_channel(node_.id(), replica.node);
  if (!qp.ok()) {
    read_from(std::move(replicas), index + 1, range_offset, out,
              std::move(done));
    return;
  }
  Status posted = (*qp)->post_read(
      replica.rkey, replica.offset + range_offset, out,
      [this, replicas, index, range_offset, out,
       done = std::move(done)](const net::Completion& c) mutable {
        if (c.status.ok()) {
          done(Status::Ok());
          return;
        }
        ++node_.recv_pool().metrics().counter("rdmc.read_failovers");
        read_from(std::move(replicas), index + 1, range_offset, out,
                  std::move(done));
      });
  if (!posted.ok())
    read_from(std::move(replicas), index + 1, range_offset, out,
              std::move(done));
}

void Rdmc::free_replicas(std::vector<mem::RemoteReplica> replicas,
                         DoneCallback done) {
  if (replicas.empty()) {
    if (done) done(Status::Ok());
    return;
  }
  struct FreeState {
    std::size_t pending;
    Status first_error;
    DoneCallback done;
  };
  auto state = std::make_shared<FreeState>();
  state->pending = replicas.size();
  state->done = std::move(done);
  for (const auto& replica : replicas) {
    net::WireWriter w;
    w.put_u64(replica.rkey);
    w.put_u64(replica.offset);
    node_.rpc().call(replica.node, kRpcFreeBlock, std::move(w).take(),
                     config_.rpc_timeout,
                     [state](StatusOr<std::vector<std::byte>> resp) {
                       if (!resp.ok() && state->first_error.ok())
                         state->first_error = resp.status();
                       if (--state->pending == 0 && state->done)
                         state->done(state->first_error);
                     });
  }
}

}  // namespace dm::core
