// DmSystem — the public façade of the disaggregated memory system.
//
// Builds and wires the full stack of paper Fig. 1 for an n-node cluster:
// simulator, RDMA fabric, connection manager, per-node pools and services,
// hierarchical groups with leader election, and membership heartbeats.
// Applications (and the swap / RDD-cache layers) then create virtual
// servers and obtain their LDMC handles.
//
// Typical use (see examples/quickstart.cc):
//
//   dm::core::DmSystem::Config cfg;
//   cfg.node_count = 4;
//   dm::core::DmSystem system(cfg);
//   system.start();                       // heartbeats, elections, warm-up
//   auto& client = system.create_server(/*node=*/0, 256 * dm::MiB);
//   client.put_sync(42, page_bytes);
//   client.get_sync(42, out_bytes);
//
// Failure injection for tests/benches: crash_node() drops a node from the
// fabric (its DRAM contents are lost, as on a real power failure);
// recover_node() brings the machine back empty.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cluster/group.h"
#include "cluster/harvester.h"
#include "cluster/node.h"
#include "common/units.h"
#include "cxl/coherence.h"
#include "core/ldmc.h"
#include "core/node_service.h"
#include "core/repair_service.h"
#include "net/connection_manager.h"
#include "net/fabric.h"
#include "net/retry_policy.h"
#include "obs/metrics_hub.h"
#include "sim/failure_injector.h"
#include "sim/simulator.h"
#include "sim/span_sink.h"
#include "sim/trace.h"

namespace dm::core {

class DmSystem {
 public:
  struct Config {
    std::size_t node_count = 4;
    std::size_t group_size = 8;
    cluster::Node::Config node{};
    NodeService::Config service{};
    net::Fabric::Config fabric{};
    double default_donation_fraction = 0.10;  // paper §IV.F: 10% initially
    std::uint64_t seed = 42;
    // Virtual time to run after start() so heartbeats populate the
    // candidate free-memory views before the first placement decision.
    SimTime warmup = 1 * kSecond;
    // §IV.C dynamic regrouping: when a group's aggregate donatable memory
    // falls below this fraction of its capacity, pull a donor node in from
    // the richest group (0 disables).
    double regroup_low_watermark = 0.0;
    SimTime regroup_check_period = 1 * kSecond;
    // Period of the observability scrape started by start(): the MetricsHub
    // snapshots the merged cluster metrics every `scrape_period` of virtual
    // time (0 disables).
    SimTime scrape_period = 1 * kSecond;
    // Cluster memory harvesting (§I, §IV.F extended): a periodic planner
    // that live-migrates hosted regions off pressure-hot nodes and drains
    // donated slabs when those nodes' pools are nearly exhausted.
    bool harvest_enabled = false;
    SimTime harvest_period = 1 * kSecond;
    cluster::Harvester::Config harvest{};
    // Fault-tolerance knobs (all off by default so the failure-free event
    // schedule is unchanged):
    // Retry policy applied to every node's RPC endpoint (control plane).
    net::RetryPolicy rpc_retry{};
    // Backoff gate for data-channel (re)establishment attempts.
    net::RetryPolicy connect_backoff{};
    // Background re-replication scanner, one per node.
    RepairService::Config repair{};
    // Cache-coherent CXL-class tier (off by default; paper §III): when
    // cxl_region_bytes > 0 the system hosts a line-granular coherent
    // region on node `cxl_home` and nodes may attach load/store agents
    // via create_cxl_agent(). The failure-free event schedule with the
    // tier disabled is byte-identical to a build without it.
    std::uint64_t cxl_region_bytes = 0;
    std::size_t cxl_home = 0;
    cxl::CxlAgent::Config cxl_agent{};
  };

  explicit DmSystem(Config config);
  ~DmSystem();

  DmSystem(const DmSystem&) = delete;
  DmSystem& operator=(const DmSystem&) = delete;

  sim::Simulator& simulator() noexcept { return sim_; }
  net::Fabric& fabric() noexcept { return *fabric_; }
  sim::FailureInjector& failures() noexcept { return failures_; }

  // Cluster-wide metrics aggregation: the fabric and every node's RPC
  // endpoint, service, pools and devices are pre-registered under
  // "net.*" / "node.<id>.*". Callers add their own layers (swap managers,
  // caches) under the same naming convention.
  obs::MetricsHub& hub() noexcept { return hub_; }

  // Attaches an event tracer to the fabric and every node's RPC endpoint,
  // so causal trace ids are followable across nodes (null detaches).
  void set_tracer(sim::Tracer* tracer);

  // Attaches a causal span sink (normally an obs::SpanTracer) to the
  // fabric, every node's RPC endpoint, and every node service, so a traced
  // operation's journey — caller RPC, fabric verbs, remote dispatch, device
  // I/O — lands in one span tree per trace id (null detaches). Swap
  // managers attach themselves via SwapManager::set_span_sink.
  void set_span_sink(sim::SpanSink* spans);

  std::size_t node_count() const noexcept { return nodes_.size(); }
  cluster::Node& node(std::size_t index) { return *nodes_.at(index); }
  NodeService& service(std::size_t index) { return *services_.at(index); }
  RepairService& repair(std::size_t index) { return *repairs_.at(index); }
  cluster::GroupDirectory& groups() noexcept { return *groups_; }

  // Starts membership, elections and the eviction monitors, then runs the
  // warm-up window.
  void start();

  // Creates a virtual server on `node_index` and returns its LDMC.
  Ldmc& create_server(std::size_t node_index, std::uint64_t allocated_bytes,
                      LdmcOptions options = {},
                      cluster::ServerKind kind = cluster::ServerKind::kVm);

  // --- failure injection ------------------------------------------------------
  void crash_node(std::size_t index);
  void recover_node(std::size_t index);

  // Runs the simulator for `duration` of virtual time (background work:
  // heartbeats, repairs, monitors).
  void run_for(SimTime duration) { sim_.run_until(sim_.now() + duration); }

  // One evaluation of the §IV.C regrouping rule (also runs periodically
  // when Config::regroup_low_watermark > 0). Returns the node moved, if
  // any.
  std::optional<net::NodeId> regroup_tick();
  std::uint64_t regroups() const noexcept { return regroups_; }

  // One harvest round (also runs periodically when Config::harvest_enabled):
  // snapshots every node's load, asks the cluster::Harvester for a plan, and
  // executes it — offloading hosted regions from hot nodes and reclaiming
  // their donated slabs. Returns the number of actions executed.
  std::size_t harvest_tick();
  cluster::Harvester* harvester() noexcept { return harvester_.get(); }

  // CXL tier accessors (null / asserts when Config::cxl_region_bytes == 0).
  cxl::CxlDirectory* cxl_directory() noexcept { return cxl_directory_.get(); }
  // Creates (or returns the existing) coherent load/store agent for
  // `node_index`, registered with the hub under "node.<id>".
  cxl::CxlAgent& create_cxl_agent(std::size_t node_index);

  // Aggregate counters across all node services (testing/benching aid).
  std::uint64_t total_counter(std::string_view name) const;

  // Human-readable per-node utilization snapshot: shared-pool usage vs
  // donations, receive-pool (donated DRAM) usage, hosted blocks, disk use —
  // the cluster-operator view of the paper's §I imbalance metrics.
  std::string utilization_report();

 private:
  Config config_;
  sim::Simulator sim_;
  sim::FailureInjector failures_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<net::ConnectionManager> connections_;
  std::unique_ptr<cluster::GroupDirectory> groups_;
  std::vector<std::unique_ptr<cluster::Node>> nodes_;
  std::vector<std::unique_ptr<NodeService>> services_;
  std::vector<std::unique_ptr<RepairService>> repairs_;
  std::unique_ptr<cluster::Harvester> harvester_;
  std::unique_ptr<cxl::CxlDirectory> cxl_directory_;
  std::vector<std::unique_ptr<cxl::CxlAgent>> cxl_agents_;
  obs::MetricsHub hub_;
  void rewire_group(cluster::GroupId group);

  cluster::ServerId next_server_ = 1;
  std::uint64_t regroups_ = 0;
  bool started_ = false;
};

}  // namespace dm::core
