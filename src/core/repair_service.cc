#include "core/repair_service.h"

#include <string>

#include "common/status.h"
#include "core/ldmc.h"
#include "core/node_service.h"
#include "sim/trace.h"

namespace dm::core {

RepairService::RepairService(NodeService& service, Config config)
    : service_(service), config_(config) {}

void RepairService::start() {
  if (!config_.enabled || running_) return;
  running_ = true;
  arm();
}

void RepairService::stop() { running_ = false; }

void RepairService::arm() {
  service_.node().simulator().schedule_after(config_.scan_period, [this]() {
    if (!running_) return;
    scan_tick([this]() {
      if (running_) arm();
    });
  });
}

void RepairService::scan_tick(std::function<void()> done) {
  if (scan_active_) {
    // The previous scan's repair chain is still in flight (e.g. blocked on
    // RPC timeouts to a dead node); don't pile a second one on top.
    ++service_.metrics().counter("repair.skipped_overlap");
    if (done) done();
    return;
  }
  ++service_.metrics().counter("repair.scans");
  const std::size_t replication = service_.rdmc().config().replication;
  auto work = std::make_shared<std::vector<WorkItem>>();
  service_.for_each_client([&](cluster::ServerId server, Ldmc& client) {
    for (mem::EntryId entry : client.map().repair_candidates(replication)) {
      if (work->size() >= config_.max_repairs_per_scan) return;
      work->push_back({server, entry});
    }
  });
  if (work->empty()) {
    if (done) done();
    return;
  }
  service_.metrics().counter("repair.requeued") += work->size();
  if (sim::Tracer* tracer = service_.node().fabric().tracer())
    tracer->record(service_.node().simulator().now(), "repair.scan",
                   "node" + std::to_string(service_.node().id()) + " queued " +
                       std::to_string(work->size()) + " repairs");
  scan_active_ = true;
  run_one(std::move(work), 0,
          std::make_shared<std::function<void()>>(std::move(done)));
}

void RepairService::run_one(std::shared_ptr<std::vector<WorkItem>> work,
                            std::size_t index,
                            std::shared_ptr<std::function<void()>> done) {
  if (index >= work->size()) {
    scan_active_ = false;
    if (*done) (*done)();
    return;
  }
  const WorkItem item = (*work)[index];
  service_.repair_entry(item.server, item.entry,
                        [this, work, index, done](const Status& s) {
                          if (s.ok())
                            ++service_.metrics().counter("repair.completed");
                          else
                            ++service_.metrics().counter("repair.failed");
                          run_one(work, index + 1, done);
                        });
}

}  // namespace dm::core
