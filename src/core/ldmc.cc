#include "core/ldmc.h"

#include "common/checksum.h"
#include "common/status.h"
#include "core/node_service.h"
#include "mem/memory_map.h"

namespace dm::core {

Ldmc::Ldmc(NodeService& service, cluster::ServerId server, Config config)
    : service_(service), server_(server), config_(config),
      map_(config.map_shards) {}

void Ldmc::put(mem::EntryId entry, std::span<const std::byte> data,
               std::function<void(const Status&)> done, net::TraceId trace) {
  if (trace == net::kNoTrace) trace = service_.node().next_trace_id();
  if (map_.contains(entry)) {
    // Overwrite = remove + put; the paper's entries (swap pages, cached
    // partitions) are immutable once written, so this path is rare.
    remove(entry,
           [this, entry,
            payload = std::vector<std::byte>(data.begin(), data.end()), trace,
            done = std::move(done)](const Status& removed) mutable {
             if (!removed.ok()) {
               done(removed);
               return;
             }
             put(entry, payload, std::move(done), trace);
           },
           trace);
    return;
  }
  // Deterministic ratio routing: spread the shm-first decision evenly over
  // the put sequence (90/10 really means 9 of every 10 puts).
  const bool prefer_shm =
      config_.shm_fraction > 0.0 &&
      static_cast<double>(put_counter_ % 100) <
          config_.shm_fraction * 100.0;
  ++put_counter_;
  const std::uint64_t checksum = fnv1a(data);
  const auto logical = static_cast<std::uint32_t>(data.size());
  service_.put_entry(
      server_, entry, data, prefer_shm, config_.allow_remote,
      config_.allow_disk,
      [this, entry, checksum, logical,
       done = std::move(done)](StatusOr<mem::EntryLocation> location) {
        if (!location.ok()) {
          done(location.status());
          return;
        }
        location->checksum = checksum;
        location->logical_size = logical;
        switch (location->tier) {
          case mem::Tier::kSharedMemory: ++puts_shm_; break;
          case mem::Tier::kRemote: ++puts_remote_; break;
          case mem::Tier::kNvm: ++puts_nvm_; break;
          case mem::Tier::kDisk: ++puts_disk_; break;
        }
        map_.commit(entry, *std::move(location));
        done(Status::Ok());
      },
      trace);
}

void Ldmc::get(mem::EntryId entry, std::span<std::byte> out,
               std::function<void(const Status&)> done, net::TraceId trace) {
  auto location = map_.lookup(entry);
  if (!location.ok()) {
    done(location.status());
    return;
  }
  const bool full_read = out.size() >= location->stored_size;
  auto window = full_read ? out.first(location->stored_size) : out;
  const std::uint64_t expect = location->checksum;
  const bool verify = config_.verify_checksums && full_read &&
                      location->stored_size == location->logical_size;
  service_.get_entry(
      server_, entry, *location, 0, window,
      [window, expect, verify, done = std::move(done)](const Status& s) {
        if (s.ok() && verify && fnv1a(window) != expect) {
          done(DataLossError("checksum mismatch on get"));
          return;
        }
        done(s);
      },
      trace);
}

void Ldmc::get_range(mem::EntryId entry, std::uint64_t offset,
                     std::span<std::byte> out,
                     std::function<void(const Status&)> done,
                     net::TraceId trace) {
  auto location = map_.lookup(entry);
  if (!location.ok()) {
    done(location.status());
    return;
  }
  if (offset + out.size() > location->stored_size) {
    done(InvalidArgumentError("range past end of stored entry"));
    return;
  }
  service_.get_entry(server_, entry, *location, offset, out, std::move(done),
                     trace);
}

void Ldmc::remove(mem::EntryId entry,
                  std::function<void(const Status&)> done,
                  net::TraceId trace) {
  auto location = map_.lookup(entry);
  if (!location.ok()) {
    done(location.status());
    return;
  }
  // Erase first: the map is the commit point. A repair or migration that
  // commits after this point sees the entry gone in its stale re-check and
  // frees its own provisional blocks; freeing the just-erased committed
  // replica set here therefore cannot race with a late commit (which would
  // leak the late replica if the erase happened after the frees).
  (void)map_.remove(entry);
  service_.remove_entry(server_, entry, *location, std::move(done), trace);
}

StatusOr<std::size_t> Ldmc::stored_size(mem::EntryId entry) const {
  auto location = map_.lookup(entry);
  if (!location.ok()) return location.status();
  return static_cast<std::size_t>(location->stored_size);
}

Status Ldmc::wait(const bool& flag, const Status& result) {
  if (!service_.node().simulator().run_until_flag(flag))
    return InternalError("simulation ran dry while waiting for completion");
  return result;
}

Status Ldmc::drain_until(const std::function<bool()>& done) {
  auto& sim = service_.node().simulator();
  while (!done()) {
    if (!sim.step())
      return InternalError("simulation ran dry while draining completions");
  }
  return Status::Ok();
}

Status Ldmc::put_sync(mem::EntryId entry, std::span<const std::byte> data,
                      net::TraceId trace) {
  bool completed = false;
  Status result;
  put(entry, data,
      [&](const Status& s) {
        result = s;
        completed = true;
      },
      trace);
  return wait(completed, result);
}

Status Ldmc::get_sync(mem::EntryId entry, std::span<std::byte> out,
                      net::TraceId trace) {
  bool completed = false;
  Status result;
  get(entry, out,
      [&](const Status& s) {
        result = s;
        completed = true;
      },
      trace);
  return wait(completed, result);
}

Status Ldmc::get_range_sync(mem::EntryId entry, std::uint64_t offset,
                            std::span<std::byte> out, net::TraceId trace) {
  bool completed = false;
  Status result;
  get_range(entry, offset, out,
            [&](const Status& s) {
              result = s;
              completed = true;
            },
            trace);
  return wait(completed, result);
}

Status Ldmc::remove_sync(mem::EntryId entry, net::TraceId trace) {
  bool completed = false;
  Status result;
  remove(entry,
         [&](const Status& s) {
           result = s;
           completed = true;
         },
         trace);
  return wait(completed, result);
}

}  // namespace dm::core
