// Node-side disaggregated memory orchestration (paper Fig. 1).
//
// NodeService combines the roles the paper draws as separate boxes on each
// node — the Local Disaggregated Memory Server (LDMS), the node manager,
// and ownership of the RDMC/RDMS pair — because they share one state
// machine. Responsibilities:
//
//  * the put path: try the node-coordinated shared memory pool first (DRAM
//    speed), spill the pool's LRU entries to remote memory under pressure,
//    route overflow to remote memory via the RDMC, and fall back to the
//    local swap disk when the cluster has no room (§IV.B);
//  * the get path: serve from whichever tier the entry's committed map
//    location names, with replica failover;
//  * eviction notices from remote RDMSes draining a slab (§IV.F): migrate
//    the named entries to new hosts, then free the old blocks;
//  * failure repair (§IV.D): when membership declares a node dead, restore
//    the replication factor of every local entry that had a replica there;
//  * the eviction monitor (§IV.F policies 1 and 2): watermark-triggered
//    preemptive slab deregistration and ballooning advice for servers that
//    hit disaggregated memory too often.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>

#include "cluster/node.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/units.h"
#include "core/rdmc.h"
#include "core/rdms.h"
#include "ec/rs_codec.h"
#include "mem/memory_map.h"
#include "net/wire.h"
#include "sim/latency_model.h"
#include "sim/span_sink.h"

namespace dm::core {

class Ldmc;

// Per-virtual-server policy knobs for the LDMC (see ldmc.h for semantics).
// Lives here so NodeService::create_client can accept it while ldmc.h
// depends on this header.
struct LdmcOptions {
  double shm_fraction = 1.0;
  bool allow_remote = true;
  bool allow_disk = true;
  std::size_t map_shards = 16;
  bool verify_checksums = false;  // verify full-entry gets against the map
};

class NodeService {
 public:
  struct EvictionConfig {
    bool enabled = false;
    SimTime period = 500 * kMilli;
    // Policy 1: drain a receive-pool slab when the pool's free fraction
    // drops below this while local servers are going remote.
    double low_free_watermark = 0.15;
    std::uint64_t remote_rate_threshold = 32;  // puts/period to count as hot
    // Policy 2: shrink a hot server's donation by this much per period,
    // giving it back resident DRAM (ballooning).
    bool auto_balloon = false;
    double balloon_step = 0.05;
  };

  struct Config {
    Rdmc::Config rdmc{};
    EvictionConfig eviction{};
    // Migrate shared-pool LRU entries to remote memory when the pool is
    // full, instead of sending the incoming entry remote directly.
    bool spill_shm_lru = true;
    std::size_t max_spill_per_put = 4;
    // §IV.E: consult the group leader for the placement candidate set
    // (refreshed periodically) instead of each node's own heartbeat view.
    // The leader aggregates the group, so placement decisions across nodes
    // draw from one consistent picture.
    bool leader_candidates = false;
    SimTime candidate_refresh_period = 500 * kMilli;
    // Window over which the node's disaggregated-memory pressure (remote
    // puts + non-shm gets) is counted. The last full window's count is
    // what heartbeats advertise and load-aware placement discounts by.
    SimTime pressure_window = 1 * kSecond;
    // Virtual-time CPU cost of the Reed–Solomon codec when rdmc.ec_k > 0
    // (Hydra-style EC). The codec itself is pure computation, so its cost
    // is modeled as latency here: encode on every remote put, decode on
    // degraded reads and shard reconstruction. Defaults approximate a
    // table-driven GF(2^8) software codec on one core.
    sim::CostModel ec_encode_cost{2000, 4.0};
    sim::CostModel ec_decode_cost{3000, 3.0};
  };

  using PutCallback = std::function<void(StatusOr<mem::EntryLocation>)>;
  using DoneCallback = std::function<void(const Status&)>;

  NodeService(cluster::Node& node, Config config);
  ~NodeService();

  NodeService(const NodeService&) = delete;
  NodeService& operator=(const NodeService&) = delete;

  cluster::Node& node() noexcept { return node_; }
  Rdmc& rdmc() noexcept { return rdmc_; }
  Rdms& rdms() noexcept { return rdms_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }

  // Causal span sink (not owned; null detaches). Traced device-tier I/O
  // gets "disk"/"disk.read|write" and "disk"/"nvm.read|write" spans from
  // post to completion, the disk/NVM components of a fault's critical path.
  void set_span_sink(sim::SpanSink* spans) noexcept { spans_ = spans; }

  // --- client registry -------------------------------------------------------
  Ldmc& create_client(cluster::ServerId server, LdmcOptions options = {});
  Ldmc* client(cluster::ServerId server);
  // Visits every client in server-id order (deterministic; used by the
  // repair scanner and invariant-checking tests).
  void for_each_client(
      const std::function<void(cluster::ServerId, Ldmc&)>& fn);

  // --- LDMS data path (called by Ldmc) ---------------------------------------
  // prefer_shm picks the first tier to try; the fallback chain is
  // shm -> remote -> disk, gated by the allow_* flags. `trace` threads the
  // caller's causal chain through any control/data-plane traffic the
  // operation generates (kNoTrace = start a fresh chain). Completion
  // latency lands in "ldms.put_ns.<tier>" / "ldms.get_ns.<tier>"
  // histograms keyed by the tier that served the request.
  void put_entry(cluster::ServerId server, mem::EntryId entry,
                 std::span<const std::byte> data, bool prefer_shm,
                 bool allow_remote, bool allow_disk, PutCallback done,
                 net::TraceId trace = net::kNoTrace);
  void get_entry(cluster::ServerId server, mem::EntryId entry,
                 const mem::EntryLocation& location, std::uint64_t offset,
                 std::span<std::byte> out, DoneCallback done,
                 net::TraceId trace = net::kNoTrace);
  void remove_entry(cluster::ServerId server, mem::EntryId entry,
                    const mem::EntryLocation& location, DoneCallback done,
                    net::TraceId trace = net::kNoTrace);

  // --- maintenance -----------------------------------------------------------
  // Starts the periodic eviction/ballooning monitor (§IV.F).
  void start_eviction_monitor();
  // Starts the periodic leader candidate-set refresh (no-op unless
  // Config::leader_candidates is set).
  void start_candidate_refresh();
  // One monitor evaluation (exposed for deterministic tests).
  void eviction_tick();

  // Restores one entry to its intended placement (§IV.D hardening): prunes
  // replicas on dead hosts, tops a short remote replica set back up to the
  // replication factor, and re-promotes degraded device-tier entries to
  // remote memory. No-op for healthy entries. Driven by the RepairService;
  // exposed for targeted recovery tests.
  void repair_entry(cluster::ServerId server, mem::EntryId entry,
                    DoneCallback done, net::TraceId trace = net::kNoTrace);

  // A crashed node that reboots loses its DRAM, so every replica the
  // cluster still lists on it is dead even though the host is up again.
  // Drops those replicas from all local maps and marks the entries degraded
  // for the repair service (called by DmSystem::recover_node before the
  // node rejoins the fabric).
  void invalidate_replicas_on(net::NodeId host);

  std::uint64_t data_loss_entries() const noexcept { return data_loss_; }

  // --- cluster balancing (§I, §IV.F extended) --------------------------------
  // This node's disaggregated-memory demand: the op count of the last full
  // pressure window (lazily rotated against virtual time). Advertised in
  // heartbeats; feeds load-aware placement and the harvester.
  std::uint64_t pressure() const;

  // Runs on a *hot* node: asks the owners of regions hosted here (via
  // kRpcMigrateRegion, in ascending owner order) to live-migrate up to
  // `max_entries` of them to colder donors. Owners reuse the crash-safe
  // copy-then-redirect path (migrate_entry), so every region stays readable
  // throughout and the old copy is freed only after the new location
  // commits. `done` (optional) receives the number of migrations the owners
  // accepted.
  void offload_hot_node(std::size_t max_entries,
                        std::function<void(std::size_t)> done = {});

  // Drains and deregisters this node's least-loaded donated slab (§IV.F
  // policy 1 mechanics, cluster-initiated): hosted regions migrate away,
  // then the DRAM is handed back. Returns false if a drain is already in
  // flight or nothing is registered. Reclaimed DRAM lands in the
  // "harvest.reclaimed_pages" counter when the drain completes.
  bool reclaim_donated_slab();

 private:
  struct DiskExtents {
    std::uint64_t cursor = 0;
    std::map<std::uint32_t, std::vector<std::uint64_t>> free_by_class;
  };

  [[nodiscard]] StatusOr<std::uint64_t> alloc_extent(DiskExtents& extents,
                                       std::uint64_t capacity,
                                       std::uint32_t size);

  void put_remote(cluster::ServerId server, mem::EntryId entry,
                  std::span<const std::byte> data, bool allow_disk,
                  PutCallback done, net::TraceId trace = net::kNoTrace);
  // --- erasure-coded remote tier (Hydra-style, active when rdmc.ec_k > 0) ---
  // Encodes `data` into k+r shards, stripes them across distinct nodes,
  // and reports the complete remote EntryLocation (ec fields, per-shard
  // checksums, surviving shard set, degraded flag). Callers merge it into
  // their committed entry; shared by the put, spill, and re-promotion
  // paths.
  void ec_store(cluster::ServerId server, mem::EntryId entry,
                std::span<const std::byte> data,
                std::function<void(StatusOr<mem::EntryLocation>)> done,
                net::TraceId trace);
  void put_remote_ec(cluster::ServerId server, mem::EntryId entry,
                     std::span<const std::byte> data, bool allow_disk,
                     PutCallback done, net::TraceId trace);
  // Range read over an EC stripe: direct one-sided reads of the covering
  // data shards when they all survive; otherwise reconstructs from any k
  // surviving shards (the degraded-read path).
  void get_entry_ec(const mem::EntryLocation& location, std::uint64_t offset,
                    std::span<std::byte> out, DoneCallback done,
                    net::TraceId trace);
  void ec_degraded_read(mem::EntryLocation location, std::uint64_t offset,
                        std::span<std::byte> out, DoneCallback done,
                        net::TraceId trace);
  // Re-encodes the shards lost to crashed hosts onto fresh nodes ("min
  // surviving shards" repair). Merges by shard index against the *current*
  // committed replica set, so a concurrent repair or migration never loses
  // shards, and preserves the stale re-check.
  void repair_entry_ec(cluster::ServerId server, mem::EntryId entry,
                       const mem::EntryLocation& loc, DoneCallback done,
                       net::TraceId trace);
  // Decodes an EC payload from fully-read shards (checksum-gated), or
  // returns the codec error. Uses the cached codec when the stripe shape
  // matches the node config, else builds a matching one.
  [[nodiscard]] StatusOr<std::vector<std::byte>> ec_decode_shards(
      const mem::EntryLocation& loc,
      std::vector<std::vector<std::byte>>& shards);
  // Device tiers: NVM when present (and then disk on failure), else disk.
  void put_device(cluster::ServerId server, mem::EntryId entry,
                  std::span<const std::byte> data, PutCallback done,
                  net::TraceId trace = net::kNoTrace);
  void put_disk(cluster::ServerId server, mem::EntryId entry,
                std::span<const std::byte> data, PutCallback done,
                net::TraceId trace = net::kNoTrace);
  void put_nvm(cluster::ServerId server, mem::EntryId entry,
               std::span<const std::byte> data, PutCallback done,
               net::TraceId trace = net::kNoTrace);
  // Frees one LRU shared-pool entry by pushing it to remote memory; the
  // callback reports whether space was reclaimed.
  void spill_one(std::function<void(bool)> done);

  [[nodiscard]] StatusOr<std::vector<std::byte>> handle_evict_notice(net::NodeId from,
                                                       net::WireReader& req);
  [[nodiscard]] StatusOr<std::vector<std::byte>> handle_query_candidates(
      net::NodeId from, net::WireReader& req);
  [[nodiscard]] StatusOr<std::vector<std::byte>> handle_migrate_region(
      net::NodeId from, net::WireReader& req);
  std::vector<cluster::CandidateNode> local_candidate_view(
      bool include_self) const;
  void refresh_candidates();
  void migrate_entry(cluster::ServerId server, mem::EntryId entry,
                     net::NodeId away_from,
                     net::TraceId trace = net::kNoTrace);
  void repair_after_node_down(net::NodeId dead);
  void note_pressure();

  [[nodiscard]] StatusOr<std::uint64_t> alloc_disk(std::uint32_t size);
  void free_disk(std::uint64_t offset, std::uint32_t size);
  [[nodiscard]] StatusOr<std::uint64_t> alloc_nvm(std::uint32_t size);
  void free_nvm(std::uint64_t offset, std::uint32_t size);
  static std::uint32_t disk_class(std::uint32_t size) noexcept;

  cluster::Node& node_;
  Config config_;
  Rdms rdms_;
  Rdmc rdmc_;
  // Reed–Solomon codec matching Config::rdmc.{ec_k, ec_r}; engaged only
  // when EC mode is on (nullopt otherwise, or if the shape is invalid).
  std::optional<ec::RsCodec> codec_;
  MetricsRegistry metrics_;
  sim::SpanSink* spans_ = nullptr;
  // Ordered: repair and eviction scans iterate these and issue RPCs, so
  // the walk order must not depend on hash-bucket layout.
  std::map<cluster::ServerId, std::unique_ptr<Ldmc>> clients_;
  DiskExtents disk_extents_;
  DiskExtents nvm_extents_;
  // Per-server disaggregated-memory request counts within the current
  // monitor window (feeds §IV.F policy 2).
  std::map<cluster::ServerId, std::uint64_t> dm_requests_window_;
  std::uint64_t remote_puts_window_ = 0;
  // Pressure accounting: `pressure()` reports the last *full* window so the
  // advertised value is stable within a window (lazy rotation on read and
  // write keeps it a pure function of virtual time + op sequence).
  mutable std::uint64_t pressure_accum_ = 0;
  mutable std::uint64_t pressure_last_ = 0;
  mutable SimTime pressure_window_start_ = 0;
  std::uint64_t data_loss_ = 0;
  bool monitor_running_ = false;
  std::vector<cluster::CandidateNode> candidate_cache_;
  bool candidate_refresh_running_ = false;
};

}  // namespace dm::core
