// Remote Disaggregated Memory Client (paper Fig. 1–2, §IV.B, §IV.D–E).
//
// The RDMC is the per-node service through which local data leaves for
// remote memory. A replicated put is the §IV.D atomic transaction:
//
//   1. pick `replication` distinct target nodes via the configured
//      placement policy (§IV.E) over the current candidate set,
//   2. reserve a block on each target (control-plane RPC to its RDMS),
//   3. one-sided RDMA WRITE the payload into every reserved block,
//   4. succeed only if *all* replicas acked — otherwise free whatever was
//      reserved and report failure, leaving the caller's memory map
//      untouched (all-or-nothing).
//
// Reads are one-sided RDMA READs that fail over across replicas, so a dead
// replica host costs one detection timeout, not data loss.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "cluster/node.h"
#include "cluster/placement.h"
#include "cluster/protocol.h"
#include "common/status.h"
#include "common/units.h"
#include "mem/memory_map.h"

namespace dm::core {

class Rdmc {
 public:
  struct Config {
    std::size_t replication = 3;
    // Degraded-mode floor: a put that cannot reach the full replication
    // factor (dead targets, exhausted candidates) still succeeds once at
    // least this many replicas are written, reporting the short replica
    // set; the repair service tops it up later. 0 = strict all-or-nothing
    // (the historical §IV.D transaction).
    std::size_t min_replicas = 0;
    // Erasure coding (Hydra-style, §IV.D alternative): when ec_k > 0 the
    // LDMS stores each remote entry as ec_k data + ec_r parity shards,
    // one per node, via put_shards() instead of whole-copy replication —
    // ~(ec_k+ec_r)/ec_k memory overhead instead of replication's factor.
    // The entry survives any ec_r shard losses; degraded reads
    // reconstruct from the surviving >= ec_k shards.
    std::size_t ec_k = 0;
    std::size_t ec_r = 0;
    // Degraded floor for shard placement, the EC analogue of
    // min_replicas: a put that cannot stripe all ec_k+ec_r shards still
    // succeeds once this many landed (clamped to >= ec_k, since fewer
    // could never be read back). 0 = all shards required.
    std::size_t min_shards = 0;
    cluster::PlacementPolicyKind placement =
        cluster::PlacementPolicyKind::kPowerOfTwoChoices;
    SimTime rpc_timeout = 5 * kMilli;
  };

  using PutCallback =
      std::function<void(StatusOr<std::vector<mem::RemoteReplica>>)>;
  using ReadCallback = std::function<void(const Status&)>;
  using DoneCallback = std::function<void(const Status&)>;

  Rdmc(cluster::Node& node, Config config);

  // Candidate remote hosts (typically: alive group members, excluding this
  // node, with their advertised free bytes). Bound by NodeService.
  void set_candidates_provider(
      std::function<std::vector<cluster::CandidateNode>()> provider) {
    candidates_ = std::move(provider);
  }

  const Config& config() const noexcept { return config_; }

  // Replicated put; `exclude` removes nodes from candidacy (used when
  // migrating an entry *away* from a node). `count` overrides the number of
  // replicas written (0 = the configured replication factor) — repair paths
  // top up a degraded entry with exactly one fresh replica. `trace` joins
  // the alloc RPCs and data-plane writes to the caller's causal chain
  // (kNoTrace = start a fresh chain at this node).
  void put(cluster::ServerId server, mem::EntryId entry,
           std::span<const std::byte> data, PutCallback done,
           std::span<const net::NodeId> exclude = {}, std::size_t count = 0,
           net::TraceId trace = net::kNoTrace);

  // One erasure-coded shard bound for its own node.
  struct ShardPayload {
    std::uint32_t shard = 0;  // index within the (k, r) stripe
    std::vector<std::byte> bytes;
  };

  // Erasure-coded put: stripes the given shards across distinct nodes (one
  // shard per node, same two-phase reserve/write transaction as put()).
  // Succeeds once >= min_needed shards are written — the survivors, with
  // RemoteReplica::shard identifying each — and rolls everything back
  // below that. When placement comes up short, shards are dropped from the
  // *back* of the vector down to min_needed, so callers order them
  // data-first/parity-last to shed parity before data. Repair paths call
  // this with just the missing shards (min_needed = 1) to top up a
  // degraded stripe.
  void put_shards(cluster::ServerId server, mem::EntryId entry,
                  std::vector<ShardPayload> shards, std::size_t min_needed,
                  PutCallback done, std::span<const net::NodeId> exclude = {},
                  net::TraceId trace = net::kNoTrace);

  // Reads out.size() bytes at `range_offset` within the entry, failing over
  // across replicas in order.
  void read(const std::vector<mem::RemoteReplica>& replicas,
            std::uint64_t range_offset, std::span<std::byte> out,
            ReadCallback done, net::TraceId trace = net::kNoTrace);

  // Two-sided fallback read: fetches the range over the control channel
  // (kRpcReadBlock, served by the replica host's RDMS) instead of a
  // one-sided RDMA READ. For callers that cannot establish a data channel
  // to the replica host — connection budget exhausted, or a transport
  // without one-sided verbs. Same replica failover order as read().
  void read_twosided(const std::vector<mem::RemoteReplica>& replicas,
                     std::uint64_t range_offset, std::span<std::byte> out,
                     ReadCallback done, net::TraceId trace = net::kNoTrace);

  // Frees all replica blocks (best effort on dead hosts); done fires after
  // every free settles.
  void free_replicas(std::vector<mem::RemoteReplica> replicas,
                     DoneCallback done = {},
                     net::TraceId trace = net::kNoTrace);

 private:
  void read_from(std::shared_ptr<std::vector<mem::RemoteReplica>> replicas,
                 std::size_t index, std::uint64_t range_offset,
                 std::span<std::byte> out, ReadCallback done,
                 net::TraceId trace);
  void read_twosided_from(
      std::shared_ptr<std::vector<mem::RemoteReplica>> replicas,
      std::size_t index, std::uint64_t range_offset, std::span<std::byte> out,
      ReadCallback done, net::TraceId trace);

  cluster::Node& node_;
  Config config_;
  std::unique_ptr<cluster::PlacementPolicy> policy_;
  std::function<std::vector<cluster::CandidateNode>()> candidates_;
};

}  // namespace dm::core
