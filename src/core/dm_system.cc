#include "core/dm_system.h"

#include <cassert>

#include "cluster/group.h"
#include "cxl/coherence.h"
#include "cluster/harvester.h"
#include "core/ldmc.h"
#include "core/node_service.h"
#include "core/repair_service.h"
#include "net/connection_manager.h"
#include "net/fabric.h"
#include "sim/span_sink.h"
#include "sim/trace.h"

namespace dm::core {

DmSystem::DmSystem(Config config)
    : config_(std::move(config)), failures_(sim_),
      fabric_(std::make_unique<net::Fabric>(sim_, config_.fabric)),
      connections_(std::make_unique<net::ConnectionManager>(*fabric_)) {
  std::vector<net::NodeId> ids;
  ids.reserve(config_.node_count);
  for (std::size_t i = 0; i < config_.node_count; ++i)
    ids.push_back(static_cast<net::NodeId>(i));

  groups_ = std::make_unique<cluster::GroupDirectory>(ids,
                                                      config_.group_size);

  connections_->set_retry_policy(config_.connect_backoff);

  for (net::NodeId id : ids) {
    auto node_config = config_.node;
    node_config.rng_seed = config_.seed;
    nodes_.push_back(std::make_unique<cluster::Node>(
        sim_, *fabric_, *connections_, id, node_config));
    nodes_.back()->rpc().set_retry_policy(config_.rpc_retry);
  }
  for (auto& node : nodes_) {
    const cluster::GroupId group = groups_->group_of(node->id());
    node->join_group(group, groups_->members(group));
  }
  for (auto& node : nodes_)
    services_.push_back(
        std::make_unique<NodeService>(*node, config_.service));
  for (auto& service : services_)
    repairs_.push_back(
        std::make_unique<RepairService>(*service, config_.repair));

  // Observability: fold every subsystem registry into the hub under
  // hierarchical names. Metric names already carry their subsystem
  // ("rpc.rtt.*", "ldms.get_ns.*"), so prefixes are just the location.
  hub_.add("net", &fabric_->metrics());
  hub_.add("net", &connections_->metrics());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const std::string prefix = "node." + std::to_string(nodes_[i]->id());
    hub_.add(prefix, &nodes_[i]->rpc().metrics());
    hub_.add(prefix, &nodes_[i]->shm().metrics());
    hub_.add(prefix, &nodes_[i]->recv_pool().metrics());
    hub_.add(prefix, &nodes_[i]->disk().metrics());
    if (nodes_[i]->nvm() != nullptr)
      hub_.add(prefix, &nodes_[i]->nvm()->metrics());
    hub_.add(prefix, &services_[i]->metrics());
  }

  if (config_.cxl_region_bytes > 0) {
    cxl::CxlDirectory::Config dir_config;
    dir_config.home = static_cast<net::NodeId>(config_.cxl_home);
    dir_config.line_count = config_.cxl_region_bytes / cxl::kLineBytes;
    cxl_directory_ =
        std::make_unique<cxl::CxlDirectory>(*fabric_, dir_config);
    hub_.add("cxl", &cxl_directory_->metrics());
  }
}

cxl::CxlAgent& DmSystem::create_cxl_agent(std::size_t node_index) {
  assert(cxl_directory_ != nullptr && "Config::cxl_region_bytes is 0");
  const auto node_id = static_cast<net::NodeId>(nodes_.at(node_index)->id());
  for (auto& agent : cxl_agents_)
    if (agent->node() == node_id) return *agent;
  auto agent_config = config_.cxl_agent;
  agent_config.node = node_id;
  cxl_agents_.push_back(
      std::make_unique<cxl::CxlAgent>(*cxl_directory_, agent_config));
  hub_.add("node." + std::to_string(node_id), &cxl_agents_.back()->metrics());
  return *cxl_agents_.back();
}

void DmSystem::set_tracer(sim::Tracer* tracer) {
  fabric_->set_tracer(tracer);
  for (auto& node : nodes_) node->rpc().set_tracer(tracer);
}

void DmSystem::set_span_sink(sim::SpanSink* spans) {
  fabric_->set_span_sink(spans);
  if (cxl_directory_ != nullptr) cxl_directory_->set_span_sink(spans);
  for (auto& node : nodes_) node->rpc().set_span_sink(spans);
  for (auto& service : services_) service->set_span_sink(spans);
}

DmSystem::~DmSystem() = default;

void DmSystem::start() {
  if (started_) return;
  started_ = true;
  for (auto& node : nodes_) {
    node->membership().start();
    if (node->election() != nullptr) node->election()->start();
  }
  for (auto& service : services_) {
    service->start_eviction_monitor();
    service->start_candidate_refresh();
  }
  for (auto& repair : repairs_) repair->start();
  if (config_.scrape_period > 0) hub_.start_scrape(sim_, config_.scrape_period);
  if (config_.regroup_low_watermark > 0.0) {
    // Periodic regroup evaluation (self-rescheduling functor).
    struct Rearm {
      DmSystem* self;
      void operator()() {
        (void)self->regroup_tick();
        self->sim_.schedule_after(self->config_.regroup_check_period, *this);
      }
    };
    sim_.schedule_after(config_.regroup_check_period, Rearm{this});
  }
  if (config_.harvest_enabled) {
    harvester_ = std::make_unique<cluster::Harvester>(config_.harvest);
    struct Rearm {
      DmSystem* self;
      void operator()() {
        (void)self->harvest_tick();
        self->sim_.schedule_after(self->config_.harvest_period, *this);
      }
    };
    sim_.schedule_after(config_.harvest_period, Rearm{this});
  }
  run_for(config_.warmup);
}

std::size_t DmSystem::harvest_tick() {
  if (harvester_ == nullptr)
    harvester_ = std::make_unique<cluster::Harvester>(config_.harvest);
  // Global load snapshot in node-id order. The simulation's coordinator
  // view stands in for what a real deployment would assemble from
  // heartbeat gossip; all inputs come from the same virtual-time state, so
  // the plan is deterministic.
  std::vector<cluster::NodeLoad> loads;
  loads.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    cluster::NodeLoad load;
    load.node = nodes_[i]->id();
    load.up = nodes_[i]->up();
    load.donated_capacity = nodes_[i]->recv_pool().capacity_bytes();
    load.donated_free = nodes_[i]->donatable_free_bytes();
    load.hosted_bytes = services_[i]->rdms().hosted_bytes();
    load.pressure = services_[i]->pressure();
    loads.push_back(load);
  }
  const auto actions = harvester_->plan(loads);
  std::size_t executed = 0;
  for (const auto& action : actions) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i]->id() != action.node || !nodes_[i]->up()) continue;
      switch (action.kind) {
        case cluster::HarvestAction::Kind::kMigrateOff:
          services_[i]->offload_hot_node(action.max_entries);
          ++executed;
          break;
        case cluster::HarvestAction::Kind::kReclaimSlab:
          if (services_[i]->reclaim_donated_slab()) ++executed;
          break;
      }
      break;
    }
  }
  return executed;
}

std::optional<net::NodeId> DmSystem::regroup_tick() {
  auto free_of = [this](net::NodeId id) -> std::uint64_t {
    for (auto& node : nodes_)
      if (node->id() == id && node->up()) return node->donatable_free_bytes();
    return 0;
  };
  // Find the most starved group below the watermark. A manual tick (no
  // configured watermark) uses a conservative default of 25% free.
  std::optional<cluster::GroupId> starved;
  double worst = config_.regroup_low_watermark > 0.0
                     ? config_.regroup_low_watermark
                     : 0.25;
  for (cluster::GroupId g = 0; g < groups_->group_count(); ++g) {
    std::uint64_t free_bytes = 0;
    std::uint64_t capacity = 0;
    for (net::NodeId member : groups_->members(g)) {
      free_bytes += free_of(member);
      for (auto& node : nodes_)
        if (node->id() == member)
          capacity += node->recv_pool().capacity_bytes();
    }
    if (capacity == 0) continue;
    const double fraction =
        static_cast<double>(free_bytes) / static_cast<double>(capacity);
    if (fraction < worst) {
      worst = fraction;
      starved = g;
    }
  }
  if (!starved) return std::nullopt;

  const auto moved = groups_->regroup_into(*starved, free_of);
  if (!moved) return std::nullopt;
  ++regroups_;
  // Rewire membership/elections for both affected groups. The moved node's
  // old group is found from the directory post-move via scanning.
  rewire_group(*starved);
  for (cluster::GroupId g = 0; g < groups_->group_count(); ++g)
    if (g != *starved) rewire_group(g);
  return moved;
}

void DmSystem::rewire_group(cluster::GroupId group) {
  const auto& members = groups_->members(group);
  for (net::NodeId id : members) {
    for (auto& node : nodes_) {
      if (node->id() != id) continue;
      node->join_group(group, members);
      // Crashed nodes stay silent until recover_node() restarts them.
      if (!node->up()) continue;
      node->membership().start();
      if (node->election() != nullptr) node->election()->start();
    }
  }
}

Ldmc& DmSystem::create_server(std::size_t node_index,
                              std::uint64_t allocated_bytes,
                              LdmcOptions options, cluster::ServerKind kind) {
  cluster::Node& host = node(node_index);
  const cluster::ServerId id = next_server_++;
  host.add_server(id, kind, allocated_bytes,
                  config_.default_donation_fraction);
  return service(node_index).create_client(id, options);
}

void DmSystem::crash_node(std::size_t index) {
  fabric_->set_node_up(node(index).id(), false);
  node(index).membership().stop();
}

void DmSystem::recover_node(std::size_t index) {
  // A reboot loses DRAM contents: hosted blocks are gone (their owners
  // re-replicated elsewhere while the node was down).
  service(index).rdms().drop_all_blocks();
  // If the outage was shorter than failure detection, owners may still
  // list replicas on this node — those copies died with the DRAM, so drop
  // them before the node rejoins and let the repair service top up.
  for (auto& service : services_)
    service->invalidate_replicas_on(node(index).id());
  fabric_->set_node_up(node(index).id(), true);
  node(index).membership().start();
}

std::string DmSystem::utilization_report() {
  std::string out = "node  up  shm-used/donated      recv-used/capacity    "
                    "hosted  servers\n";
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    auto& node = *nodes_[i];
    char line[160];
    std::snprintf(
        line, sizeof(line), "%-4u  %-2s  %10s/%-10s %10s/%-10s %6zu  %zu\n",
        node.id(), node.up() ? "y" : "n",
        format_bytes(node.shm().used_bytes()).c_str(),
        format_bytes(node.shm().total_donated()).c_str(),
        format_bytes(node.recv_pool().used_bytes()).c_str(),
        format_bytes(node.recv_pool().capacity_bytes()).c_str(),
        services_[i]->rdms().hosted_blocks(), node.server_ids().size());
    out += line;
  }
  return out;
}

std::uint64_t DmSystem::total_counter(std::string_view name) const {
  std::uint64_t total = 0;
  for (const auto& service : services_)
    total += service->metrics().counter_value(name);
  return total;
}

}  // namespace dm::core
