// Remote Disaggregated Memory Server (paper Fig. 1–2, §IV.B).
//
// The RDMS is the per-node service that *hosts* other nodes' data: it
// answers control-plane block allocation/free requests against the node's
// registered receive buffer pool, after which the remote peer moves data
// with one-sided RDMA verbs (zero involvement from this node's CPU on the
// data path — the paper's kernel-bypass argument). It also implements the
// preemptive slab eviction of §IV.F: when the node wants its DRAM back, the
// RDMS notifies every hosted entry's owner, waits for owners to migrate and
// free their blocks, then deregisters the empty slab.
#pragma once

#include <functional>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/node.h"
#include "cluster/protocol.h"
#include "common/status.h"
#include "net/wire.h"

namespace dm::core {

class Rdms {
 public:
  struct HostedBlock {
    mem::BlockRef ref;
    net::NodeId owner_node = net::kInvalidNode;
    cluster::ServerId owner_server = 0;
    mem::EntryId entry = 0;
  };

  explicit Rdms(cluster::Node& node);

  cluster::Node& node() noexcept { return node_; }

  std::size_t hosted_blocks() const noexcept { return blocks_.size(); }
  std::uint64_t hosted_bytes() const noexcept {
    return node_.recv_pool().used_bytes();
  }

  // Owners with blocks hosted here, ascending node id, with block counts.
  // Deterministic (blocks_ is ordered); the harvester's offload path walks
  // this to ask each owner to migrate regions away from this node.
  std::vector<std::pair<net::NodeId, std::size_t>> hosted_owners() const {
    std::map<net::NodeId, std::size_t> counts;
    for (const auto& [key, block] : blocks_) ++counts[block.owner_node];
    return {counts.begin(), counts.end()};
  }

  // Begins draining `slab`: owners of all hosted blocks are told to migrate
  // (kRpcEvictNotice); once every block is freed the slab is deregistered
  // and `done` fires. `done` receives an error if a notice cannot be
  // delivered (the drain then stalls and can be retried).
  void drain_slab(mem::SlabId slab, std::function<void(const Status&)> done);

  // Number of drains currently in progress.
  std::size_t active_drains() const noexcept { return drains_.size(); }

  // Clears all hosted state (blocks freed, empty slabs deregistered) — a
  // crashed node reboots with empty DRAM; owners re-replicated elsewhere
  // while it was down.
  void drop_all_blocks();

 private:
  using BlockKey = std::pair<net::RKey, std::uint64_t>;  // (rkey, offset)

  StatusOr<std::vector<std::byte>> handle_alloc(net::NodeId from,
                                                net::WireReader& req);
  StatusOr<std::vector<std::byte>> handle_free(net::NodeId from,
                                               net::WireReader& req);
  StatusOr<std::vector<std::byte>> handle_read(net::NodeId from,
                                               net::WireReader& req);
  void check_drain(mem::SlabId slab);

  cluster::Node& node_;
  std::map<BlockKey, HostedBlock> blocks_;
  std::unordered_map<mem::SlabId, std::function<void(const Status&)>> drains_;
};

}  // namespace dm::core
