#include "core/rdms.h"

#include "common/status.h"
#include "net/wire.h"

namespace dm::core {

using cluster::kRpcAllocBlock;
using cluster::kRpcEvictNotice;
using cluster::kRpcFreeBlock;
using cluster::kRpcReadBlock;

Rdms::Rdms(cluster::Node& node) : node_(node) {
  node_.rpc().handle(kRpcAllocBlock,
                     [this](net::NodeId from, net::WireReader& r) {
                       return handle_alloc(from, r);
                     });
  node_.rpc().handle(kRpcFreeBlock,
                     [this](net::NodeId from, net::WireReader& r) {
                       return handle_free(from, r);
                     });
  node_.rpc().handle(kRpcReadBlock,
                     [this](net::NodeId from, net::WireReader& r) {
                       return handle_read(from, r);
                     });
}

StatusOr<std::vector<std::byte>> Rdms::handle_alloc(net::NodeId from,
                                                    net::WireReader& req) {
  const auto owner_node = static_cast<net::NodeId>(req.u32());
  const auto server = static_cast<cluster::ServerId>(req.u32());
  const auto entry = static_cast<mem::EntryId>(req.u64());
  const auto size = req.u32();
  DM_RETURN_IF_ERROR(req.status());
  (void)from;

  auto block = node_.recv_pool().allocate(size);
  if (!block.ok()) return block.status();
  blocks_.emplace(BlockKey{block->rkey, block->offset},
                  HostedBlock{*block, owner_node, server, entry});

  net::WireWriter w;
  w.put_u32(block->slab);
  w.put_u64(block->rkey);
  w.put_u64(block->offset);
  w.put_u32(block->size);
  return std::move(w).take();
}

StatusOr<std::vector<std::byte>> Rdms::handle_free(net::NodeId from,
                                                   net::WireReader& req) {
  const auto rkey = static_cast<net::RKey>(req.u64());
  const auto offset = req.u64();
  DM_RETURN_IF_ERROR(req.status());
  (void)from;

  auto it = blocks_.find(BlockKey{rkey, offset});
  if (it == blocks_.end()) return NotFoundError("no hosted block at address");
  const mem::SlabId slab = it->second.ref.slab;
  DM_RETURN_IF_ERROR(node_.recv_pool().free(it->second.ref));
  blocks_.erase(it);
  check_drain(slab);
  return std::vector<std::byte>{};
}

StatusOr<std::vector<std::byte>> Rdms::handle_read(net::NodeId from,
                                                   net::WireReader& req) {
  const auto rkey = static_cast<net::RKey>(req.u64());
  const auto offset = req.u64();
  const auto size = req.u32();
  DM_RETURN_IF_ERROR(req.status());
  (void)from;

  auto it = blocks_.find(BlockKey{rkey, offset});
  if (it == blocks_.end()) return NotFoundError("no hosted block at address");
  if (size > it->second.ref.size)
    return InvalidArgumentError("read larger than block");
  auto bytes = node_.recv_pool().block_bytes(it->second.ref).first(size);
  net::WireWriter w;
  w.put_bytes(bytes);
  return std::move(w).take();
}

void Rdms::drop_all_blocks() {
  for (auto& [key, block] : blocks_)
    (void)node_.recv_pool().free(block.ref);
  blocks_.clear();
  drains_.clear();
  // Deregister every now-empty slab so the pool returns to its boot state.
  while (auto slab = node_.recv_pool().least_loaded_slab()) {
    if (!node_.recv_pool().deregister_slab(*slab).ok()) break;
  }
}

void Rdms::drain_slab(mem::SlabId slab,
                      std::function<void(const Status&)> done) {
  if (drains_.count(slab) > 0) {
    done(FailedPreconditionError("slab already draining"));
    return;
  }
  drains_.emplace(slab, std::move(done));

  // Collect the owners to notify. Each notice carries every entry the owner
  // has on this slab, so one RPC per owner suffices.
  std::map<net::NodeId, std::vector<const HostedBlock*>> by_owner;
  for (const auto& block : node_.recv_pool().blocks_in_slab(slab)) {
    auto it = blocks_.find(BlockKey{block.rkey, block.offset});
    if (it != blocks_.end())
      by_owner[it->second.owner_node].push_back(&it->second);
  }
  if (by_owner.empty()) {
    check_drain(slab);
    return;
  }
  for (const auto& [owner, hosted] : by_owner) {
    net::WireWriter w;
    w.put_u32(node_.id());  // evicting node
    w.put_u32(static_cast<std::uint32_t>(hosted.size()));
    for (const HostedBlock* b : hosted) {
      w.put_u32(b->owner_server);
      w.put_u64(b->entry);
    }
    node_.rpc().call(owner, kRpcEvictNotice, std::move(w).take(),
                     100 * kMilli, [this, slab](auto resp) {
                       if (!resp.ok()) {
                         // Owner unreachable; drain stalls. Surface the error
                         // once and drop the drain so it can be retried.
                         auto it = drains_.find(slab);
                         if (it != drains_.end()) {
                           auto cb = std::move(it->second);
                           drains_.erase(it);
                           cb(resp.status());
                         }
                       }
                     });
  }
  ++node_.recv_pool().metrics().counter("rdms.drains_started");
}

void Rdms::check_drain(mem::SlabId slab) {
  auto it = drains_.find(slab);
  if (it == drains_.end()) return;
  if (!node_.recv_pool().blocks_in_slab(slab).empty()) return;
  auto done = std::move(it->second);
  drains_.erase(it);
  Status final = node_.recv_pool().deregister_slab(slab);
  done(final);
}

}  // namespace dm::core
