// Background re-replication (§IV.D hardening).
//
// Degraded-mode writes and node failures leave entries below their intended
// placement: remote entries with fewer replicas than the replication
// factor, and disk-fallback entries awaiting re-promotion to remote memory.
// The RepairService is the per-node janitor that finds them and restores
// the invariant: a periodic scan walks every local virtual server's memory
// map for repair candidates and tops each one up through
// NodeService::repair_entry (which reuses the Rdmc::put(count=1) repair
// hook from the failure path).
//
// Repairs within one scan run serially — the point is steady background
// convergence, not a recovery storm that competes with foreground traffic.
// Metrics land in the owning service's registry: "repair.scans",
// "repair.requeued" (candidates picked up), "repair.completed",
// "repair.failed", "repair.skipped_overlap".
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/units.h"
#include "core/node_service.h"

namespace dm::core {

class RepairService {
 public:
  struct Config {
    // Opt-in: the periodic scan changes background event timing, so
    // deployments (and deterministic tests) enable it explicitly.
    bool enabled = false;
    SimTime scan_period = 500 * kMilli;
    // Per-scan repair budget; anything beyond it waits for the next scan
    // (bounds the bandwidth repair steals from foreground traffic).
    std::size_t max_repairs_per_scan = 16;
  };

  RepairService(NodeService& service, Config config);

  RepairService(const RepairService&) = delete;
  RepairService& operator=(const RepairService&) = delete;

  // Starts the periodic scan (no-op unless Config::enabled).
  void start();
  void stop();

  // One scan pass: collect candidates, repair up to the budget, then invoke
  // `done` (exposed for deterministic tests; the periodic loop re-arms from
  // it). Overlapping calls are skipped.
  void scan_tick(std::function<void()> done = {});

  const Config& config() const noexcept { return config_; }

 private:
  struct WorkItem {
    cluster::ServerId server;
    mem::EntryId entry;
  };

  void arm();
  void run_one(std::shared_ptr<std::vector<WorkItem>> work, std::size_t index,
               std::shared_ptr<std::function<void()>> done);

  NodeService& service_;
  Config config_;
  bool running_ = false;
  bool scan_active_ = false;
};

}  // namespace dm::core
