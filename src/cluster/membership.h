// Group-scoped membership with heartbeats (paper §IV.C–D).
//
// Each node heartbeats the members of its group over the control channel.
// A peer that misses heartbeats for longer than the failure timeout is
// declared down ("handshake time-out" in the paper) and listeners — the
// leader-election coordinator, the eviction/repair machinery — are
// notified. Heartbeat replies carry the peer's free donatable memory and
// its own disaggregated-memory pressure, so the same exchange feeds the
// placement candidate set (load-aware donor scoring), the harvester's
// imbalance view, and the max-free-memory election rule without extra
// message rounds.
#pragma once

#include <functional>
#include <unordered_map>
#include <vector>

#include "cluster/protocol.h"
#include "common/status.h"
#include "common/units.h"
#include "net/rpc.h"
#include "sim/simulator.h"

namespace dm::cluster {

class Membership {
 public:
  struct Config {
    SimTime heartbeat_period = 200 * kMilli;
    SimTime failure_timeout = 700 * kMilli;  // > 3 missed heartbeats
    SimTime rpc_timeout = 50 * kMilli;
  };

  Membership(sim::Simulator& simulator, net::RpcEndpoint& rpc, Config config);

  // Free-bytes the node advertises in heartbeat replies (bound once).
  void set_free_bytes_provider(std::function<std::uint64_t()> provider);
  // Pressure (windowed local DM-request count) advertised alongside the
  // free bytes; unset = 0 (an idle, fully donatable host).
  void set_pressure_provider(std::function<std::uint64_t()> provider);

  void set_peers(std::vector<net::NodeId> peers);
  const std::vector<net::NodeId>& peers() const noexcept { return peers_; }

  // Begins the periodic heartbeat loop.
  void start();
  void stop() noexcept { running_ = false; }

  // Free donatable bytes + pressure a peer advertises right now. One-shot
  // kRpcQueryFree point query outside the heartbeat cadence, for callers
  // (placement, harvester) that need a fresher number than the last
  // heartbeat; a successful reply also refreshes the liveness state.
  struct FreeReport {
    std::uint64_t free_bytes = 0;
    std::uint64_t pressure = 0;
  };
  void query_free(net::NodeId peer,
                  std::function<void(StatusOr<FreeReport>)> done);

  bool alive(net::NodeId peer) const;
  std::uint64_t last_known_free(net::NodeId peer) const;
  std::uint64_t last_known_pressure(net::NodeId peer) const;
  SimTime last_seen(net::NodeId peer) const;

  // Fired once per transition alive -> down.
  void on_peer_down(std::function<void(net::NodeId)> listener) {
    down_listeners_.push_back(std::move(listener));
  }
  // Fired once per transition down -> alive (recovery).
  void on_peer_up(std::function<void(net::NodeId)> listener) {
    up_listeners_.push_back(std::move(listener));
  }

 private:
  struct PeerState {
    SimTime last_seen = 0;
    std::uint64_t free_bytes = 0;
    std::uint64_t pressure = 0;
    bool alive = true;
  };

  void tick();
  void note_alive(net::NodeId peer, std::uint64_t free_bytes,
                  std::uint64_t pressure);
  void check_timeouts();

  sim::Simulator& sim_;
  net::RpcEndpoint& rpc_;
  Config config_;
  std::function<std::uint64_t()> free_provider_;
  std::function<std::uint64_t()> pressure_provider_;
  std::vector<net::NodeId> peers_;
  std::unordered_map<net::NodeId, PeerState> state_;
  std::vector<std::function<void(net::NodeId)>> down_listeners_;
  std::vector<std::function<void(net::NodeId)>> up_listeners_;
  bool running_ = false;
};

}  // namespace dm::cluster
