#include "cluster/membership.h"

#include "common/status.h"
#include "common/units.h"
#include "net/rpc.h"
#include "net/wire.h"
#include "sim/simulator.h"

namespace dm::cluster {

Membership::Membership(sim::Simulator& simulator, net::RpcEndpoint& rpc,
                       Config config)
    : sim_(simulator), rpc_(rpc), config_(config) {
  const auto report_free = [this](net::NodeId, net::WireReader&)
      -> StatusOr<std::vector<std::byte>> {
    net::WireWriter w;
    w.put_u64(free_provider_ ? free_provider_() : 0);
    w.put_u64(pressure_provider_ ? pressure_provider_() : 0);
    return std::move(w).take();
  };
  rpc_.handle(kRpcHeartbeat, report_free);
  // One-shot point query of a node's donatable memory (same payload as the
  // heartbeat reply, for callers outside the heartbeat loop).
  rpc_.handle(kRpcQueryFree, report_free);
}

void Membership::set_free_bytes_provider(
    std::function<std::uint64_t()> provider) {
  free_provider_ = std::move(provider);
}

void Membership::set_pressure_provider(
    std::function<std::uint64_t()> provider) {
  pressure_provider_ = std::move(provider);
}

void Membership::set_peers(std::vector<net::NodeId> peers) {
  peers_ = std::move(peers);
  const SimTime now = sim_.now();
  for (net::NodeId peer : peers_) {
    auto [it, inserted] = state_.try_emplace(peer);
    if (inserted) it->second.last_seen = now;
  }
}

void Membership::start() {
  if (running_) return;
  running_ = true;
  tick();
}

void Membership::tick() {
  if (!running_) return;
  for (net::NodeId peer : peers_) {
    rpc_.call(peer, kRpcHeartbeat, {}, config_.rpc_timeout,
              [this, peer](StatusOr<std::vector<std::byte>> resp) {
                if (!resp.ok()) return;  // silence; timeout sweep handles it
                net::WireReader r(*resp);
                const std::uint64_t free_bytes = r.u64();
                const std::uint64_t pressure = r.u64();
                if (r.ok()) note_alive(peer, free_bytes, pressure);
              });
  }
  check_timeouts();
  sim_.schedule_after(config_.heartbeat_period, [this]() { tick(); });
}

void Membership::query_free(net::NodeId peer,
                            std::function<void(StatusOr<FreeReport>)> done) {
  rpc_.call(peer, kRpcQueryFree, {}, config_.rpc_timeout,
            [this, peer, done = std::move(done)](
                StatusOr<std::vector<std::byte>> resp) {
              if (!resp.ok()) {
                done(resp.status());
                return;
              }
              net::WireReader r(*resp);
              FreeReport report;
              report.free_bytes = r.u64();
              report.pressure = r.u64();
              if (!r.ok()) {
                done(InvalidArgumentError("malformed kRpcQueryFree reply"));
                return;
              }
              note_alive(peer, report.free_bytes, report.pressure);
              done(report);
            });
}

void Membership::note_alive(net::NodeId peer, std::uint64_t free_bytes,
                            std::uint64_t pressure) {
  auto& st = state_[peer];
  st.last_seen = sim_.now();
  st.free_bytes = free_bytes;
  st.pressure = pressure;
  if (!st.alive) {
    st.alive = true;
    for (const auto& fn : up_listeners_) fn(peer);
  }
}

void Membership::check_timeouts() {
  const SimTime now = sim_.now();
  for (net::NodeId peer : peers_) {
    auto& st = state_[peer];
    if (st.alive && now - st.last_seen > config_.failure_timeout) {
      st.alive = false;
      for (const auto& fn : down_listeners_) fn(peer);
    }
  }
}

bool Membership::alive(net::NodeId peer) const {
  auto it = state_.find(peer);
  return it != state_.end() && it->second.alive;
}

std::uint64_t Membership::last_known_free(net::NodeId peer) const {
  auto it = state_.find(peer);
  return it == state_.end() ? 0 : it->second.free_bytes;
}

std::uint64_t Membership::last_known_pressure(net::NodeId peer) const {
  auto it = state_.find(peer);
  return it == state_.end() ? 0 : it->second.pressure;
}

SimTime Membership::last_seen(net::NodeId peer) const {
  auto it = state_.find(peer);
  return it == state_.end() ? 0 : it->second.last_seen;
}

}  // namespace dm::cluster
