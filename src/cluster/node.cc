#include "cluster/node.h"

#include "cluster/group.h"
#include "cluster/protocol.h"
#include "cluster/virtual_server.h"
#include "common/status.h"
#include "net/connection_manager.h"
#include "net/fabric.h"
#include "sim/simulator.h"
#include "storage/block_device.h"

namespace dm::cluster {

Node::Node(sim::Simulator& simulator, net::Fabric& fabric,
           net::ConnectionManager& connections, net::NodeId id, Config config)
    : sim_(simulator), fabric_(fabric), connections_(connections), id_(id),
      config_(std::move(config)), rpc_(simulator, id),
      membership_(simulator, rpc_, config_.membership), shm_(config_.shm),
      recv_pool_(fabric, id, config_.recv),
      send_pool_(config_.send_staging_bytes),
      disk_(simulator, config_.disk),
      nvm_(config_.nvm.capacity_bytes > 0
               ? std::make_unique<storage::BlockDevice>(simulator, config_.nvm)
               : nullptr),
      rng_(mix64(config_.rng_seed ^ (0xD15A66ULL + id))) {
  fabric_.add_node(id_);
  connections_.register_endpoint(&rpc_);
  label_rpc_methods(rpc_);
  rpc_.set_tracer(fabric_.tracer());
  rpc_.set_channel_repairer([this](net::NodeId peer) {
    return connections_.ensure_control_channel(id_, peer);
  });
  membership_.set_free_bytes_provider(
      [this]() { return donatable_free_bytes(); });
}

VirtualServer& Node::add_server(ServerId id, ServerKind kind,
                                std::uint64_t allocated_bytes,
                                double donation_fraction) {
  auto [it, inserted] = servers_.try_emplace(
      id, VirtualServer(id, id_, kind, allocated_bytes, donation_fraction));
  if (inserted) {
    server_order_.push_back(id);
    (void)shm_.set_donation(id, it->second.donated_bytes());
  }
  return it->second;
}

VirtualServer* Node::find_server(ServerId id) {
  auto it = servers_.find(id);
  return it == servers_.end() ? nullptr : &it->second;
}

Status Node::set_server_donation(ServerId id, double fraction) {
  VirtualServer* server = find_server(id);
  if (server == nullptr) return NotFoundError("server not hosted here");
  const double previous = server->donation_fraction();
  server->set_donation_fraction(fraction);
  Status applied = shm_.set_donation(id, server->donated_bytes());
  if (!applied.ok()) server->set_donation_fraction(previous);
  return applied;
}

void Node::join_group(GroupId group, std::vector<net::NodeId> members) {
  group_ = group;
  std::vector<net::NodeId> peers;
  for (net::NodeId m : members)
    if (m != id_) peers.push_back(m);
  membership_.set_peers(peers);
  election_ = std::make_unique<LeaderElection>(sim_, rpc_, membership_, id_,
                                               std::move(members));
  election_->set_self_free_provider([this]() { return donatable_free_bytes(); });
  // One stable listener forwarding to whichever election is current —
  // regrouping replaces the election object, and membership listeners
  // cannot be unregistered.
  if (!election_listener_registered_) {
    election_listener_registered_ = true;
    membership_.on_peer_down([this](net::NodeId peer) {
      if (election_ != nullptr) election_->handle_peer_down(peer);
    });
  }
}

}  // namespace dm::cluster
