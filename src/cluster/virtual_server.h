// Virtual server abstraction (paper §I, §III).
//
// The paper treats VMs, containers and JVM executors uniformly: each is a
// memory principal with an allocation fixed at initialization time (sized
// for estimated peak usage) that donates a configurable fraction of that
// allocation to the node-coordinated shared memory pool. The donation is
// elastic at runtime: the node manager may grow it (toward 40%) when the
// server is idle or shrink it (toward 0) when the server balloons.
#pragma once

#include <cstdint>
#include <string>

#include "cluster/types.h"
#include "net/rdma.h"

namespace dm::cluster {

enum class ServerKind : std::uint8_t { kVm, kContainer, kJvmExecutor };

class VirtualServer {
 public:
  VirtualServer(ServerId id, net::NodeId host, ServerKind kind,
                std::uint64_t allocated_bytes, double donation_fraction)
      : id_(id), host_(host), kind_(kind), allocated_(allocated_bytes),
        donation_fraction_(donation_fraction) {}

  ServerId id() const noexcept { return id_; }
  net::NodeId host() const noexcept { return host_; }
  ServerKind kind() const noexcept { return kind_; }
  std::uint64_t allocated_bytes() const noexcept { return allocated_; }

  double donation_fraction() const noexcept { return donation_fraction_; }
  void set_donation_fraction(double f) noexcept { donation_fraction_ = f; }
  std::uint64_t donated_bytes() const noexcept {
    return static_cast<std::uint64_t>(donation_fraction_ *
                                      static_cast<double>(allocated_));
  }
  // DRAM usable by the server's own working set after the donation.
  std::uint64_t resident_budget() const noexcept {
    return allocated_ - donated_bytes();
  }

 private:
  ServerId id_;
  net::NodeId host_;
  ServerKind kind_;
  std::uint64_t allocated_;
  double donation_fraction_;
};

}  // namespace dm::cluster
