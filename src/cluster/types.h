// Shared vocabulary for cluster-level coordination.
#pragma once

#include <cstdint>

#include "net/rdma.h"

namespace dm::cluster {

using ServerId = std::uint32_t;  // virtual server (VM/container/JVM executor)

// What placement decisions see about a prospective remote host.
struct CandidateNode {
  net::NodeId node = net::kInvalidNode;
  std::uint64_t free_bytes = 0;
};

}  // namespace dm::cluster
