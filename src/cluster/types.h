// Shared vocabulary for cluster-level coordination.
#pragma once

#include <cstdint>

#include "net/rdma.h"

namespace dm::cluster {

using ServerId = std::uint32_t;  // virtual server (VM/container/JVM executor)

// What placement decisions see about a prospective remote host.
struct CandidateNode {
  net::NodeId node = net::kInvalidNode;
  std::uint64_t free_bytes = 0;
  // The host's own disaggregated-memory demand (fault/remote-request count
  // in its current monitor window), advertised alongside free_bytes in
  // heartbeats. Load-aware placement discounts a donor by it: a node that
  // is itself thrashing makes a poor host no matter how much it donated.
  std::uint64_t pressure = 0;
};

}  // namespace dm::cluster
