// Replica placement / memory balancing policies (paper §IV.E).
//
// "Several algorithms can be employed to minimize memory imbalance across
// nodes in a cluster (or a group), such as random, round robin (RR),
// weighted RR, or power of two choices." All four are implemented behind one
// interface; bench_ablation_placement sweeps them and reports the resulting
// balance (max/mean load and utilization spread).
#pragma once

#include <memory>
#include <string_view>
#include <span>
#include <string>
#include <vector>

#include "cluster/types.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"

namespace dm::cluster {

enum class PlacementPolicyKind {
  kRandom,
  kRoundRobin,
  kWeightedRoundRobin,
  kPowerOfTwoChoices,
};

std::string_view to_string(PlacementPolicyKind kind) noexcept;

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Picks `count` distinct nodes from `candidates` to host replicas of an
  // entry of `size` bytes. Candidates with free_bytes < size are skipped.
  // Fails with kResourceExhausted when fewer than `count` eligible nodes
  // exist.
  virtual StatusOr<std::vector<net::NodeId>> pick(
      std::span<const CandidateNode> candidates, std::size_t count,
      std::uint64_t size, Rng& rng) = 0;

  // Instrumented pick: same semantics, plus decision accounting into
  // `metrics` (null = record nothing): "placement.decisions" /
  // "placement.failures" counters and "placement.candidates" /
  // "placement.eligible" histograms. Callers on the hot path use this so
  // observability sees every replica-set decision.
  StatusOr<std::vector<net::NodeId>> pick_recorded(
      std::span<const CandidateNode> candidates, std::size_t count,
      std::uint64_t size, Rng& rng, MetricsRegistry* metrics);
};

std::unique_ptr<PlacementPolicy> make_placement_policy(
    PlacementPolicyKind kind);

}  // namespace dm::cluster
