// Replica placement / memory balancing policies (paper §IV.E).
//
// "Several algorithms can be employed to minimize memory imbalance across
// nodes in a cluster (or a group), such as random, round robin (RR),
// weighted RR, or power of two choices." All four are implemented behind one
// interface; bench_ablation_placement sweeps them and reports the resulting
// balance (max/mean load and utilization spread).
#pragma once

#include <memory>
#include <string_view>
#include <span>
#include <string>
#include <vector>

#include "cluster/types.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"

namespace dm::cluster {

enum class PlacementPolicyKind {
  kRandom,
  kRoundRobin,
  kWeightedRoundRobin,
  kPowerOfTwoChoices,
  // Load-aware donor selection: power-of-two probing where the duel is
  // decided by free memory discounted by the candidate's advertised
  // pressure (CandidateNode::pressure). With every pressure at zero it
  // degenerates to kPowerOfTwoChoices exactly (same draws from the same
  // rng stream, same winners) — the static behaviour is a special case,
  // not a separate code path.
  kLoadAware,
};

std::string_view to_string(PlacementPolicyKind kind) noexcept;

// The load-aware donor score: free bytes discounted by the host's own
// disaggregated-memory demand. A donor under pressure will soon want its
// DRAM back (harvest/eviction), so placing there trades one migration now
// for another later. Clamped to >= 1 for eligible candidates so a hot donor
// stays pickable when it is the only option.
std::uint64_t load_aware_score(const CandidateNode& candidate) noexcept;

// Candidates that can host `size` bytes, ordered by descending
// load_aware_score with node id breaking ties — the deterministic donor
// ranking underlying kLoadAware (exposed for the harvester and tests).
std::vector<CandidateNode> load_aware_rank(
    std::span<const CandidateNode> candidates, std::uint64_t size);

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  // Picks `count` distinct nodes from `candidates` to host replicas of an
  // entry of `size` bytes. Candidates with free_bytes < size are skipped.
  // Fails with kResourceExhausted when fewer than `count` eligible nodes
  // exist.
  [[nodiscard]] virtual StatusOr<std::vector<net::NodeId>> pick(
      std::span<const CandidateNode> candidates, std::size_t count,
      std::uint64_t size, Rng& rng) = 0;

  // Instrumented pick: same semantics, plus decision accounting into
  // `metrics` (null = record nothing): "placement.decisions" /
  // "placement.failures" counters and "placement.candidates" /
  // "placement.eligible" histograms. Callers on the hot path use this so
  // observability sees every replica-set decision.
  [[nodiscard]] StatusOr<std::vector<net::NodeId>> pick_recorded(
      std::span<const CandidateNode> candidates, std::size_t count,
      std::uint64_t size, Rng& rng, MetricsRegistry* metrics);
};

std::unique_ptr<PlacementPolicy> make_placement_policy(
    PlacementPolicyKind kind);

}  // namespace dm::cluster
