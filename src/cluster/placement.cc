#include "cluster/placement.h"

#include <algorithm>
#include <numeric>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"

namespace dm::cluster {
namespace {

// Filters to candidates that can host `size` bytes, preserving order.
std::vector<CandidateNode> eligible(std::span<const CandidateNode> candidates,
                                    std::uint64_t size) {
  std::vector<CandidateNode> out;
  out.reserve(candidates.size());
  for (const auto& c : candidates)
    if (c.free_bytes >= size) out.push_back(c);
  return out;
}

class RandomPolicy final : public PlacementPolicy {
 public:
  StatusOr<std::vector<net::NodeId>> pick(
      std::span<const CandidateNode> candidates, std::size_t count,
      std::uint64_t size, Rng& rng) override {
    auto pool = eligible(candidates, size);
    if (pool.size() < count)
      return ResourceExhaustedError("not enough eligible nodes");
    rng.shuffle(pool);
    std::vector<net::NodeId> out;
    for (std::size_t i = 0; i < count; ++i) out.push_back(pool[i].node);
    return out;
  }
};

class RoundRobinPolicy final : public PlacementPolicy {
 public:
  StatusOr<std::vector<net::NodeId>> pick(
      std::span<const CandidateNode> candidates, std::size_t count,
      std::uint64_t size, Rng&) override {
    auto pool = eligible(candidates, size);
    if (pool.size() < count)
      return ResourceExhaustedError("not enough eligible nodes");
    std::vector<net::NodeId> out;
    for (std::size_t i = 0; i < count; ++i)
      out.push_back(pool[(cursor_ + i) % pool.size()].node);
    cursor_ = (cursor_ + count) % pool.size();
    return out;
  }

 private:
  std::size_t cursor_ = 0;
};

// Weighted round robin: selection probability proportional to free bytes,
// implemented as repeated weighted sampling without replacement.
class WeightedRoundRobinPolicy final : public PlacementPolicy {
 public:
  StatusOr<std::vector<net::NodeId>> pick(
      std::span<const CandidateNode> candidates, std::size_t count,
      std::uint64_t size, Rng& rng) override {
    auto pool = eligible(candidates, size);
    if (pool.size() < count)
      return ResourceExhaustedError("not enough eligible nodes");
    std::vector<net::NodeId> out;
    while (out.size() < count) {
      std::uint64_t total = 0;
      for (const auto& c : pool) total += c.free_bytes;
      std::uint64_t target = rng.next_below(total);
      std::size_t chosen = pool.size() - 1;
      for (std::size_t i = 0; i < pool.size(); ++i) {
        if (target < pool[i].free_bytes) {
          chosen = i;
          break;
        }
        target -= pool[i].free_bytes;
      }
      out.push_back(pool[chosen].node);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(chosen));
    }
    return out;
  }
};

// Power of two choices: sample two random candidates, keep the one with more
// free memory; repeat per replica (Richa/Mitzenmacher/Sitaraman, paper [31]).
class PowerOfTwoPolicy final : public PlacementPolicy {
 public:
  StatusOr<std::vector<net::NodeId>> pick(
      std::span<const CandidateNode> candidates, std::size_t count,
      std::uint64_t size, Rng& rng) override {
    auto pool = eligible(candidates, size);
    if (pool.size() < count)
      return ResourceExhaustedError("not enough eligible nodes");
    std::vector<net::NodeId> out;
    while (out.size() < count) {
      const std::size_t a = static_cast<std::size_t>(rng.next_below(pool.size()));
      std::size_t b = static_cast<std::size_t>(rng.next_below(pool.size()));
      if (pool.size() > 1) {
        while (b == a) b = static_cast<std::size_t>(rng.next_below(pool.size()));
      }
      const std::size_t chosen =
          pool[a].free_bytes >= pool[b].free_bytes ? a : b;
      out.push_back(pool[chosen].node);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(chosen));
    }
    return out;
  }
};

// Load-aware selection (§IV.E extended): power-of-two probing like
// PowerOfTwoPolicy — and consuming the rng identically, so with all
// pressures zero the two policies pick the same nodes — but the duel is
// decided by the pressure-discounted score instead of raw free bytes.
// Skewed tenant traffic raises the hot nodes' pressure, which repels new
// placements before their pools are exhausted — the feedback loop that
// keeps large-cluster p99 bounded. Random probing (rather than ranking or
// weighted sampling over the whole set) matters: candidate free-memory
// views are heartbeat-stale, and any policy that concentrates picks on the
// advertised-richest donor dogpiles it between refreshes.
class LoadAwarePolicy final : public PlacementPolicy {
 public:
  StatusOr<std::vector<net::NodeId>> pick(
      std::span<const CandidateNode> candidates, std::size_t count,
      std::uint64_t size, Rng& rng) override {
    auto pool = eligible(candidates, size);
    if (pool.size() < count)
      return ResourceExhaustedError("not enough eligible nodes");
    std::vector<net::NodeId> out;
    while (out.size() < count) {
      const std::size_t a = static_cast<std::size_t>(rng.next_below(pool.size()));
      std::size_t b = static_cast<std::size_t>(rng.next_below(pool.size()));
      if (pool.size() > 1) {
        while (b == a) b = static_cast<std::size_t>(rng.next_below(pool.size()));
      }
      const std::size_t chosen =
          load_aware_score(pool[a]) >= load_aware_score(pool[b]) ? a : b;
      out.push_back(pool[chosen].node);
      pool.erase(pool.begin() + static_cast<std::ptrdiff_t>(chosen));
    }
    return out;
  }
};

}  // namespace

std::uint64_t load_aware_score(const CandidateNode& candidate) noexcept {
  // Gentle discount: kPressureScale ops of windowed demand halve a donor's
  // effective free memory. A divisor linear in raw pressure would zero out
  // every busy donor and funnel all placements onto the few idle ones —
  // measurably worse than pressure-blind choice once the idle donors fill.
  constexpr std::uint64_t kPressureScale = 256;
  const std::uint64_t score =
      candidate.free_bytes * kPressureScale /
      (kPressureScale + candidate.pressure);
  return score > 0 ? score : 1;
}

std::vector<CandidateNode> load_aware_rank(
    std::span<const CandidateNode> candidates, std::uint64_t size) {
  auto ranked = eligible(candidates, size);
  std::sort(ranked.begin(), ranked.end(),
            [](const CandidateNode& a, const CandidateNode& b) {
              const std::uint64_t sa = load_aware_score(a);
              const std::uint64_t sb = load_aware_score(b);
              if (sa != sb) return sa > sb;
              return a.node < b.node;
            });
  return ranked;
}

StatusOr<std::vector<net::NodeId>> PlacementPolicy::pick_recorded(
    std::span<const CandidateNode> candidates, std::size_t count,
    std::uint64_t size, Rng& rng, MetricsRegistry* metrics) {
  auto picked = pick(candidates, count, size, rng);
  if (metrics != nullptr) {
    ++metrics->counter("placement.decisions");
    if (!picked.ok()) ++metrics->counter("placement.failures");
    metrics->histogram("placement.candidates").record(candidates.size());
    std::uint64_t fit = 0;
    for (const auto& c : candidates)
      if (c.free_bytes >= size) ++fit;
    metrics->histogram("placement.eligible").record(fit);
  }
  return picked;
}

std::string_view to_string(PlacementPolicyKind kind) noexcept {
  switch (kind) {
    case PlacementPolicyKind::kRandom: return "random";
    case PlacementPolicyKind::kRoundRobin: return "round-robin";
    case PlacementPolicyKind::kWeightedRoundRobin: return "weighted-rr";
    case PlacementPolicyKind::kPowerOfTwoChoices: return "power-of-two";
    case PlacementPolicyKind::kLoadAware: return "load-aware";
  }
  return "?";
}

std::unique_ptr<PlacementPolicy> make_placement_policy(
    PlacementPolicyKind kind) {
  switch (kind) {
    case PlacementPolicyKind::kRandom:
      return std::make_unique<RandomPolicy>();
    case PlacementPolicyKind::kRoundRobin:
      return std::make_unique<RoundRobinPolicy>();
    case PlacementPolicyKind::kWeightedRoundRobin:
      return std::make_unique<WeightedRoundRobinPolicy>();
    case PlacementPolicyKind::kPowerOfTwoChoices:
      return std::make_unique<PowerOfTwoPolicy>();
    case PlacementPolicyKind::kLoadAware:
      return std::make_unique<LoadAwarePolicy>();
  }
  return nullptr;
}

}  // namespace dm::cluster
