// Cluster-level memory harvesting (paper §I, §IV.F).
//
// The paper's imbalance argument cuts both ways: idle nodes should donate
// memory, and a node that *stops* being idle should get its DRAM back
// without a restart. The Harvester is the cluster-side planner for that
// second half. Fed a per-node load snapshot (donated capacity/free bytes,
// hosted bytes, pressure), it decides which nodes are hot relative to the
// cluster and emits two kinds of actions against them:
//
//  * kMigrateOff — live-migrate remote regions hosted *on* the hot node to
//    colder donors (NodeService::migrate_region: copy-then-redirect,
//    crash-safe cutover), relieving the node without shrinking its pool;
//  * kReclaimSlab — additionally drain and deregister one donated slab
//    (§IV.F policy 1 mechanics) when the hot node's donated pool is nearly
//    exhausted, returning the DRAM to its local servers.
//
// The Harvester is a *pure planner*: it owns no nodes, sends no RPCs and
// reads no clocks, so it unit-tests exhaustively and stays in the cluster
// layer. core::DmSystem collects the loads, calls plan() on a periodic
// tick, and executes the actions through the node services. Determinism:
// plan() is a pure function of its input — candidates are ranked by
// (pressure, node id) with no randomness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "cluster/types.h"
#include "net/rdma.h"

namespace dm::cluster {

// One node's load snapshot, as the coordinator sees it.
struct NodeLoad {
  net::NodeId node = net::kInvalidNode;
  bool up = true;
  std::uint64_t donated_capacity = 0;  // receive-pool arena bytes
  std::uint64_t donated_free = 0;      // of which still allocatable
  std::uint64_t hosted_bytes = 0;      // held for remote owners right now
  std::uint64_t pressure = 0;          // local DM demand (window count)
};

struct HarvestAction {
  enum class Kind {
    kMigrateOff,   // push hosted regions off `node` to colder donors
    kReclaimSlab,  // also drain + deregister one of `node`'s slabs
  };
  Kind kind = Kind::kMigrateOff;
  net::NodeId node = net::kInvalidNode;
  std::size_t max_entries = 0;  // migration budget (kMigrateOff)
};

class Harvester {
 public:
  struct Config {
    // A node is hot when its pressure exceeds both the absolute floor and
    // `hot_ratio` times the mean pressure of up nodes. The floor keeps a
    // quiet cluster (mean ~0) from flagging every node with one fault.
    double hot_ratio = 2.0;
    std::uint64_t min_pressure = 16;
    // Don't bother migrating off a node hosting less than this.
    std::uint64_t min_hosted_bytes = 64 * 1024;
    // Per-tick migration budget per hot node (each entry costs one
    // read + one replicated put on the owner).
    std::size_t migrate_entries_per_action = 8;
    // Reclaim a slab only while the hot node's donated pool is this full
    // or more (free fraction at or below the watermark): migrating hosted
    // regions alone already relieves a half-empty pool.
    double reclaim_free_watermark = 0.25;
    // Cap on total actions per plan() call, hottest nodes first.
    std::size_t max_actions_per_tick = 4;
  };

  explicit Harvester(Config config) : config_(config) {}

  const Config& config() const noexcept { return config_; }

  // Plans one harvest round over the snapshot. Pure and deterministic:
  // hot nodes are ranked by (pressure desc, node id asc); down nodes and
  // nodes hosting nothing are never targeted.
  std::vector<HarvestAction> plan(std::span<const NodeLoad> loads);

  // --- accounting -----------------------------------------------------------
  std::uint64_t plans() const noexcept { return plans_; }
  std::uint64_t migrations_planned() const noexcept {
    return migrations_planned_;
  }
  std::uint64_t reclaims_planned() const noexcept { return reclaims_planned_; }

 private:
  Config config_;
  std::uint64_t plans_ = 0;
  std::uint64_t migrations_planned_ = 0;
  std::uint64_t reclaims_planned_ = 0;
};

}  // namespace dm::cluster
