// Hierarchical grouping and leader election (paper §IV.C).
//
// The cluster is partitioned into groups of similar size; nodes share
// disaggregated memory only within their group, which bounds the candidate
// set and the membership traffic as the cluster grows. Each group elects a
// leader — "the one that meets certain constraints ... such as the one with
// the maximum available memory" — re-elected on handshake timeout, and a
// leader can request dynamic regrouping when its group runs short of
// disaggregated memory.
//
// Two pieces:
//  * GroupDirectory — the cluster-wide assignment of nodes to groups (the
//    paper cites ZooKeeper [30] for this class of coordination state; the
//    directory is that service collapsed into a deterministic object). It
//    implements the regrouping move: shift a donor node from the group with
//    the most aggregate free memory into the starved group.
//  * LeaderElection — the per-node, per-group protocol: on leader timeout,
//    query live members' free memory (from the membership cache that
//    heartbeats maintain) and announce the max-free node; ties break toward
//    the lowest node id so all members converge without extra rounds.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/membership.h"
#include "cluster/protocol.h"
#include "common/status.h"
#include "common/units.h"
#include "net/rpc.h"
#include "sim/simulator.h"

namespace dm::cluster {

using GroupId = std::uint32_t;

class GroupDirectory {
 public:
  // Partitions `nodes` into ceil(n / group_size) groups of near-equal size.
  GroupDirectory(std::vector<net::NodeId> nodes, std::size_t group_size);

  GroupId group_of(net::NodeId node) const;
  const std::vector<net::NodeId>& members(GroupId group) const;
  std::size_t group_count() const noexcept { return groups_.size(); }

  // Moves `node` into `target` (regroup primitive). No-op if already there.
  void move_node(net::NodeId node, GroupId target);

  // Regrouping request from a starved group's leader: pull one node out of
  // the group with the highest aggregate free memory (per `free_of`).
  // Returns the moved node, or nullopt when no donor group can spare one.
  std::optional<net::NodeId> regroup_into(
      GroupId starved,
      const std::function<std::uint64_t(net::NodeId)>& free_of);

 private:
  std::vector<std::vector<net::NodeId>> groups_;
  std::unordered_map<net::NodeId, GroupId> index_;
};

class LeaderElection {
 public:
  struct Config {
    // Periodic re-election cadence ("a leader election protocol
    // periodically elects the one that meets certain constraints").
    SimTime period = 1 * kSecond;
  };

  LeaderElection(sim::Simulator& simulator, net::RpcEndpoint& rpc,
                 Membership& membership, net::NodeId self,
                 std::vector<net::NodeId> group_members);
  LeaderElection(sim::Simulator& simulator, net::RpcEndpoint& rpc,
                 Membership& membership, net::NodeId self,
                 std::vector<net::NodeId> group_members, Config config);

  // Free bytes this node advertises about itself in elections (same source
  // the heartbeat replies use, so views converge).
  void set_self_free_provider(std::function<std::uint64_t()> provider) {
    self_free_ = std::move(provider);
  }

  ~LeaderElection();

  // Runs the initial election and arms periodic re-election plus
  // re-election on leader failure.
  void start();

  // Invoked (via the Node's stable membership listener) when a peer dies;
  // triggers re-election if it was the leader.
  void handle_peer_down(net::NodeId peer);

  // True when this node is the election coordinator (lowest-id live
  // member). Only the coordinator announces, so concurrent divergent
  // announcements cannot race.
  bool is_coordinator() const;

  net::NodeId leader() const noexcept { return leader_; }
  bool is_leader() const noexcept { return leader_ == self_; }
  std::uint64_t elections_run() const noexcept { return elections_; }

  void on_leader_change(std::function<void(net::NodeId)> listener) {
    listeners_.push_back(std::move(listener));
  }

 private:
  void elect();
  void adopt(net::NodeId leader);
  void tick();

  sim::Simulator& sim_;
  net::RpcEndpoint& rpc_;
  Membership& membership_;
  net::NodeId self_;
  Config config_;
  std::function<std::uint64_t()> self_free_;
  std::vector<net::NodeId> members_;  // includes self
  net::NodeId leader_ = net::kInvalidNode;
  bool running_ = false;
  // Guards scheduled ticks against use-after-destruction: regrouping
  // replaces the election object while its periodic tick may be queued.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::uint64_t elections_ = 0;
  std::vector<std::function<void(net::NodeId)>> listeners_;
};

}  // namespace dm::cluster
