// Control-plane RPC method ids shared by the cluster and core layers.
//
// One flat method space per node keeps dispatch trivial; ids are grouped by
// subsystem. Payload encodings are documented at each handler site.
#pragma once

#include "net/rpc.h"

namespace dm::cluster {

enum RpcMethodId : net::RpcMethod {
  // membership / election
  kRpcHeartbeat = 1,       // req: {}      resp: u64 free_bytes, u64 pressure
  kRpcQueryFree = 2,       // req: {}      resp: u64 free_bytes, u64 pressure
  kRpcAnnounceLeader = 3,  // req: u32 group, u32 leader   resp: {}
  kRpcQueryCandidates = 4, // req: {}
                           // resp: u32 n, (u32 node, u64 free, u64 pressure)*

  // remote disaggregated memory (RDMS side)
  kRpcAllocBlock = 10,  // req: u32 owner_node, u32 server, u64 entry, u32 size
                        // resp: u32 slab, u64 rkey, u64 offset
  kRpcFreeBlock = 11,   // req: u64 rkey, u64 offset            resp: {}
  kRpcEvictNotice = 12, // req: u32 count, {u32 server, u64 entry}*  resp: {}
  kRpcReadBlock = 13,   // req: u64 rkey, u64 offset, u32 size
                        // resp: bytes (two-sided fallback read path)

  // live region migration (hot host -> owning node)
  kRpcMigrateRegion = 14,  // req: u32 hot_node, u32 max_entries
                           // resp: u32 migrations_scheduled
};

// Registers human-readable labels for every method id above, so the
// endpoint's "rpc.rtt.<label>" histograms and tracer events name methods
// instead of raw ids. Called once per endpoint at node construction.
inline void label_rpc_methods(net::RpcEndpoint& rpc) {
  rpc.label_method(kRpcHeartbeat, "heartbeat");
  rpc.label_method(kRpcQueryFree, "query_free");
  rpc.label_method(kRpcAnnounceLeader, "announce_leader");
  rpc.label_method(kRpcQueryCandidates, "query_candidates");
  rpc.label_method(kRpcAllocBlock, "alloc_block");
  rpc.label_method(kRpcFreeBlock, "free_block");
  rpc.label_method(kRpcEvictNotice, "evict_notice");
  rpc.label_method(kRpcReadBlock, "read_block");
  rpc.label_method(kRpcMigrateRegion, "migrate_region");
}

}  // namespace dm::cluster
