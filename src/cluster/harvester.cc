#include "cluster/harvester.h"

#include <algorithm>

namespace dm::cluster {

std::vector<HarvestAction> Harvester::plan(std::span<const NodeLoad> loads) {
  ++plans_;

  std::uint64_t total_pressure = 0;
  std::size_t up_nodes = 0;
  for (const auto& load : loads) {
    if (!load.up) continue;
    total_pressure += load.pressure;
    ++up_nodes;
  }
  if (up_nodes == 0) return {};
  const double mean_pressure =
      static_cast<double>(total_pressure) / static_cast<double>(up_nodes);
  const double threshold =
      std::max(static_cast<double>(config_.min_pressure),
               config_.hot_ratio * mean_pressure);

  // Hot nodes that actually host remote regions, hottest first; ties (and
  // the all-equal-pressure case) resolve by node id so two coordinators
  // with the same snapshot plan the same round.
  std::vector<const NodeLoad*> hot;
  for (const auto& load : loads) {
    if (!load.up) continue;
    if (static_cast<double>(load.pressure) < threshold) continue;
    if (load.hosted_bytes < config_.min_hosted_bytes) continue;
    hot.push_back(&load);
  }
  std::sort(hot.begin(), hot.end(),
            [](const NodeLoad* a, const NodeLoad* b) {
              if (a->pressure != b->pressure) return a->pressure > b->pressure;
              return a->node < b->node;
            });

  std::vector<HarvestAction> actions;
  for (const NodeLoad* load : hot) {
    if (actions.size() >= config_.max_actions_per_tick) break;
    HarvestAction migrate;
    migrate.kind = HarvestAction::Kind::kMigrateOff;
    migrate.node = load->node;
    migrate.max_entries = config_.migrate_entries_per_action;
    actions.push_back(migrate);
    ++migrations_planned_;

    const double free_fraction =
        load->donated_capacity == 0
            ? 1.0
            : static_cast<double>(load->donated_free) /
                  static_cast<double>(load->donated_capacity);
    if (free_fraction <= config_.reclaim_free_watermark &&
        actions.size() < config_.max_actions_per_tick) {
      HarvestAction reclaim;
      reclaim.kind = HarvestAction::Kind::kReclaimSlab;
      reclaim.node = load->node;
      actions.push_back(reclaim);
      ++reclaims_planned_;
    }
  }
  return actions;
}

}  // namespace dm::cluster
