#include "cluster/group.h"

#include <algorithm>
#include <cassert>

#include "cluster/membership.h"
#include "common/status.h"
#include "net/rpc.h"
#include "net/wire.h"
#include "sim/simulator.h"

namespace dm::cluster {

GroupDirectory::GroupDirectory(std::vector<net::NodeId> nodes,
                               std::size_t group_size) {
  assert(group_size > 0);
  const std::size_t group_count =
      (nodes.size() + group_size - 1) / group_size;
  groups_.resize(std::max<std::size_t>(group_count, 1));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const GroupId g = static_cast<GroupId>(i % groups_.size());
    groups_[g].push_back(nodes[i]);
    index_[nodes[i]] = g;
  }
}

GroupId GroupDirectory::group_of(net::NodeId node) const {
  auto it = index_.find(node);
  assert(it != index_.end());
  return it->second;
}

const std::vector<net::NodeId>& GroupDirectory::members(GroupId group) const {
  assert(group < groups_.size());
  return groups_[group];
}

void GroupDirectory::move_node(net::NodeId node, GroupId target) {
  const GroupId from = group_of(node);
  if (from == target) return;
  auto& src = groups_[from];
  src.erase(std::find(src.begin(), src.end(), node));
  groups_[target].push_back(node);
  index_[node] = target;
}

std::optional<net::NodeId> GroupDirectory::regroup_into(
    GroupId starved,
    const std::function<std::uint64_t(net::NodeId)>& free_of) {
  GroupId richest = starved;
  std::uint64_t richest_free = 0;
  for (GroupId g = 0; g < groups_.size(); ++g) {
    if (g == starved || groups_[g].size() <= 1) continue;
    std::uint64_t total = 0;
    for (net::NodeId n : groups_[g]) total += free_of(n);
    if (total > richest_free) {
      richest_free = total;
      richest = g;
    }
  }
  if (richest == starved) return std::nullopt;
  // Donate the richest group's freest node.
  auto& donors = groups_[richest];
  net::NodeId donor = donors.front();
  for (net::NodeId n : donors)
    if (free_of(n) > free_of(donor)) donor = n;
  move_node(donor, starved);
  return donor;
}

LeaderElection::LeaderElection(sim::Simulator& simulator,
                               net::RpcEndpoint& rpc, Membership& membership,
                               net::NodeId self,
                               std::vector<net::NodeId> group_members)
    : LeaderElection(simulator, rpc, membership, self,
                     std::move(group_members), Config{}) {}

LeaderElection::LeaderElection(sim::Simulator& simulator,
                               net::RpcEndpoint& rpc, Membership& membership,
                               net::NodeId self,
                               std::vector<net::NodeId> group_members,
                               Config config)
    : sim_(simulator), rpc_(rpc), membership_(membership), self_(self),
      config_(config), members_(std::move(group_members)) {
  // Adopt announcements from the group's coordinator (see
  // is_coordinator()); a single announcer means no conflicting
  // announcements can race.
  rpc_.handle(kRpcAnnounceLeader,
              [this](net::NodeId, net::WireReader& r)
                  -> StatusOr<std::vector<std::byte>> {
                const auto announced = static_cast<net::NodeId>(r.u32());
                if (!r.ok()) return r.status();
                adopt(announced);
                return std::vector<std::byte>{};
              });
}

LeaderElection::~LeaderElection() { *alive_ = false; }

void LeaderElection::handle_peer_down(net::NodeId peer) {
  // Re-elect only when the leader died; a recovered or unrelated peer does
  // not disturb the current leader (stability — the paper re-elects on
  // failure or constraint violation, not on every membership change).
  if (peer == leader_) elect();
}

void LeaderElection::start() {
  if (running_) return;
  running_ = true;
  elect();
  tick();
}

void LeaderElection::tick() {
  if (!running_) return;
  sim_.schedule_after(config_.period, [this, alive = alive_]() {
    if (!*alive || !running_) return;
    elect();
    tick();
  });
}

bool LeaderElection::is_coordinator() const {
  for (net::NodeId m : members_) {
    if (m == self_) return true;
    if (m < self_ && membership_.alive(m)) return false;
  }
  return true;
}

void LeaderElection::elect() {
  // Only the coordinator — the lowest-id live member — runs the election
  // rule and announces, so divergent views cannot produce racing
  // announcements. Coordinator failure hands the role to the next-lowest
  // node via the same membership data, at the next tick.
  if (!is_coordinator()) return;
  ++elections_;
  // Election rule (§IV.C): maximum advertised free memory among live
  // members, ties to the lowest node id.
  net::NodeId best = self_;
  std::uint64_t best_free = 0;
  bool have = false;
  for (net::NodeId m : members_) {
    const bool is_self = m == self_;
    if (!is_self && !membership_.alive(m)) continue;
    const std::uint64_t free_bytes = is_self && self_free_
                                         ? self_free_()
                                         : membership_.last_known_free(m);
    if (!have || free_bytes > best_free ||
        (free_bytes == best_free && m < best)) {
      best = m;
      best_free = free_bytes;
      have = true;
    }
  }
  adopt(best);
  net::WireWriter w;
  w.put_u32(best);
  for (net::NodeId m : members_) {
    if (m == self_ || !membership_.alive(m)) continue;
    rpc_.call(m, kRpcAnnounceLeader, w.bytes(), 50 * kMilli,
              [](StatusOr<std::vector<std::byte>>) {});
  }
}

void LeaderElection::adopt(net::NodeId leader) {
  if (leader == leader_) return;
  leader_ = leader;
  for (const auto& fn : listeners_) fn(leader_);
}

}  // namespace dm::cluster
