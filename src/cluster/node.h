// Physical node composite (paper Fig. 1, per-node view).
//
// A Node bundles everything the paper places on each machine participating
// in the disaggregated memory system: the node-coordinated shared memory
// pool, the cluster-wide send/receive RDMA buffer pools, the local swap
// disk, the control-plane RPC endpoint, group membership, and the leader-
// election coordinator for its group. Virtual servers (VMs, containers,
// JVM executors) are hosted on a node and donate part of their allocation
// to the shared pool.
//
// The core-layer services (LDMS/RDMS/RDMC — src/core/) attach to a Node and
// register their RPC handlers on its endpoint.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/group.h"
#include "cluster/membership.h"
#include "cluster/virtual_server.h"
#include "common/rng.h"
#include "common/status.h"
#include "mem/buffer_pool.h"
#include "mem/shared_memory_pool.h"
#include "net/connection_manager.h"
#include "net/fabric.h"
#include "net/rpc.h"
#include "sim/simulator.h"
#include "storage/block_device.h"

namespace dm::cluster {

class Node {
 public:
  struct Config {
    mem::SharedMemoryPool::Config shm{};
    mem::RegisteredBufferPool::Config recv{};
    std::uint64_t send_staging_bytes = 8 * MiB;
    storage::BlockDevice::Config disk{};
    // Optional local NVM tier (§VI): capacity 0 = absent. Defaults model a
    // PCM/3D-XPoint-class device: no seek, microsecond access.
    storage::BlockDevice::Config nvm{
        .capacity_bytes = 0,
        .model = {.seek_ns = 1 * kMicro, .mib_per_s = 8000.0},
        .sequential_window = ~0ull};
    Membership::Config membership{};
    std::uint64_t rng_seed = 0;  // mixed with the node id
  };

  Node(sim::Simulator& simulator, net::Fabric& fabric,
       net::ConnectionManager& connections, net::NodeId id, Config config);

  net::NodeId id() const noexcept { return id_; }
  sim::Simulator& simulator() noexcept { return sim_; }
  net::Fabric& fabric() noexcept { return fabric_; }
  net::ConnectionManager& connections() noexcept { return connections_; }
  net::RpcEndpoint& rpc() noexcept { return rpc_; }
  Membership& membership() noexcept { return membership_; }
  mem::SharedMemoryPool& shm() noexcept { return shm_; }
  mem::RegisteredBufferPool& recv_pool() noexcept { return recv_pool_; }
  mem::SendStagingPool& send_pool() noexcept { return send_pool_; }
  storage::BlockDevice& disk() noexcept { return disk_; }
  // Null when the node has no NVM tier configured.
  storage::BlockDevice* nvm() noexcept { return nvm_.get(); }
  Rng& rng() noexcept { return rng_; }

  // --- virtual servers ------------------------------------------------------
  VirtualServer& add_server(ServerId id, ServerKind kind,
                            std::uint64_t allocated_bytes,
                            double donation_fraction);
  VirtualServer* find_server(ServerId id);
  const std::vector<ServerId>& server_ids() const noexcept {
    return server_order_;
  }

  // Adjusts a server's donation (ballooning / elastic pool §IV.F). Fails if
  // the pool cannot shrink below its stored bytes.
  Status set_server_donation(ServerId id, double fraction);

  // --- group wiring (done by ClusterBuilder after all nodes exist) ----------
  void join_group(GroupId group, std::vector<net::NodeId> members);
  GroupId group() const noexcept { return group_; }
  LeaderElection* election() noexcept { return election_.get(); }

  // Memory this node can still host for remote peers (placement metric).
  std::uint64_t donatable_free_bytes() const noexcept {
    return recv_pool_.capacity_bytes() - recv_pool_.used_bytes();
  }

  bool up() const { return fabric_.node_up(id_); }

  // Allocates a fresh causal trace id rooted at this node. Deterministic: a
  // per-node monotonic sequence, no wall clock involved. Delegates to the
  // RPC endpoint's counter — the other allocator on this node — so the two
  // can never hand out the same id (span trees are keyed by trace id).
  net::TraceId next_trace_id() noexcept { return rpc_.new_trace(); }

 private:
  sim::Simulator& sim_;
  net::Fabric& fabric_;
  net::ConnectionManager& connections_;
  net::NodeId id_;
  Config config_;
  net::RpcEndpoint rpc_;
  Membership membership_;
  mem::SharedMemoryPool shm_;
  mem::RegisteredBufferPool recv_pool_;
  mem::SendStagingPool send_pool_;
  storage::BlockDevice disk_;
  std::unique_ptr<storage::BlockDevice> nvm_;
  Rng rng_;
  std::unordered_map<ServerId, VirtualServer> servers_;
  std::vector<ServerId> server_order_;
  GroupId group_ = 0;
  std::unique_ptr<LeaderElection> election_;
  bool election_listener_registered_ = false;
};

}  // namespace dm::cluster
