// Core vocabulary types for the simulated RDMA verbs layer.
//
// The model follows the paper's §IV.G description of what the disaggregated
// memory system requires from RDMA: reliable-connection (RC) queue pairs
// delivering messages in order at most once; one-sided READ/WRITE against
// registered memory regions (data plane); two-sided SEND/RECV (control
// plane); asynchronous completions; zero intermediate copies (a WRITE lands
// bytes directly in the destination region).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>

#include "common/status.h"
#include "common/units.h"

namespace dm::net {

using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = ~0u;

// Causal trace id carried through the control-plane wire format and stamped
// into tracer events, so one logical operation (a page fault, a replicated
// put) can be followed across nodes. Encoded as (origin node + 1) << 32 |
// per-node monotonic sequence; 0 means "untraced".
using TraceId = std::uint64_t;
inline constexpr TraceId kNoTrace = 0;

inline TraceId make_trace_id(NodeId origin, std::uint32_t seq) noexcept {
  return (static_cast<std::uint64_t>(origin) + 1) << 32 | seq;
}
inline NodeId trace_origin(TraceId id) noexcept {
  return static_cast<NodeId>((id >> 32) - 1);
}
inline std::uint32_t trace_seq(TraceId id) noexcept {
  return static_cast<std::uint32_t>(id);
}
// "trace=3:17" — the canonical substring tracer events carry, so
// Tracer::matching(format_trace_id(id)) follows one causal chain.
inline std::string format_trace_id(TraceId id) {
  if (id == kNoTrace) return "trace=-";
  return "trace=" + std::to_string(trace_origin(id)) + ":" +
         std::to_string(trace_seq(id));
}

// Remote key naming a registered memory region on some node.
using RKey = std::uint64_t;
inline constexpr RKey kInvalidRKey = 0;

// Identifies a queue pair endpoint (unique fabric-wide).
using QpId = std::uint64_t;

// Completion of an asynchronous verb. `status` is non-OK when the remote
// node or link failed while the operation was in flight (RC QP error state).
struct Completion {
  Status status;
  SimTime completed_at = 0;
  std::uint64_t bytes = 0;
};

using CompletionCallback = std::function<void(const Completion&)>;

// Handler invoked on the receiving side of a two-sided SEND.
using ReceiveHandler =
    std::function<void(NodeId from, std::span<const std::byte> message)>;

// A registered memory region: raw bytes pinned by their owner for the
// lifetime of the registration. The fabric performs real memcpy into/out of
// these spans at the modeled delivery times.
struct MemoryRegion {
  NodeId owner = kInvalidNode;
  RKey rkey = kInvalidRKey;
  std::span<std::byte> bytes;
};

}  // namespace dm::net
