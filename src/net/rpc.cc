#include "net/rpc.h"

#include "common/status.h"
#include "common/units.h"
#include "net/retry_policy.h"
#include "net/wire.h"
#include "sim/span_sink.h"

namespace dm::net {
namespace {

// Message layout: u8 kind (0=request, 1=reply-ok, 2=reply-error),
// u64 call id, u64 trace id, u16 method (request) or u16 status code
// (error reply), then the payload bytes.
enum class Kind : std::uint8_t { kRequest = 0, kReplyOk = 1, kReplyError = 2 };

}  // namespace

void RpcEndpoint::attach_channel(QueuePair* qp) {
  channels_[qp->remote()] = qp;
  qp->set_receive_handler(
      [this](NodeId from, std::span<const std::byte> message) {
        on_message(from, message);
      });
}

void RpcEndpoint::detach_channel(NodeId peer) { channels_.erase(peer); }

std::string RpcEndpoint::method_label(RpcMethod method) const {
  auto it = labels_.find(method);
  return it != labels_.end() ? it->second : "m" + std::to_string(method);
}

void RpcEndpoint::call(NodeId peer, RpcMethod method,
                       std::vector<std::byte> payload, SimTime timeout,
                       RpcResponseCallback done, TraceId trace) {
  if (trace == kNoTrace) trace = new_trace();
  if (!retry_.enabled()) {
    call_once(peer, method, std::move(payload), timeout, std::move(done),
              trace);
    return;
  }
  // Retryable call: re-issue on retryable failures with capped exponential
  // backoff. All attempts share the trace id (the causal chain shows the
  // retries) and the salt decorrelating their jitter.
  struct Attempt : std::enable_shared_from_this<Attempt> {
    RpcEndpoint* self;
    NodeId peer;
    RpcMethod method;
    std::vector<std::byte> payload;
    SimTime timeout;
    RpcResponseCallback done;
    TraceId trace;
    std::size_t attempt = 0;

    void run() {
      ++attempt;
      auto keep = shared_from_this();
      self->call_once(
          peer, method, payload, timeout,
          [keep](StatusOr<std::vector<std::byte>> result) {
            const RetryPolicy& policy = keep->self->retry_;
            if (result.ok() || keep->attempt >= policy.max_attempts ||
                !policy.retryable(result.status().code())) {
              keep->done(std::move(result));
              return;
            }
            const SimTime wait = policy.backoff(keep->attempt, keep->trace);
            ++keep->self->metrics_.counter("rpc.retries");
            keep->self->metrics_.histogram("net.backoff_ns")
                .record(static_cast<std::uint64_t>(wait));
            keep->self->trace_event(
                "rpc.retry",
                "node" + std::to_string(keep->self->self_) + " " +
                    keep->self->method_label(keep->method) + " attempt " +
                    std::to_string(keep->attempt + 1) + " after " +
                    std::to_string(wait) + "ns " +
                    format_trace_id(keep->trace));
            keep->self->sim_.schedule_after(wait,
                                            [keep]() { keep->run(); });
          },
          trace);
    }
  };
  auto state = std::make_shared<Attempt>();
  state->self = this;
  state->peer = peer;
  state->method = method;
  state->payload = std::move(payload);
  state->timeout = timeout;
  state->done = std::move(done);
  state->trace = trace;
  state->run();
}

void RpcEndpoint::call_once(NodeId peer, RpcMethod method,
                            std::vector<std::byte> payload, SimTime timeout,
                            RpcResponseCallback done, TraceId trace) {
  auto it = channels_.find(peer);
  if ((it == channels_.end() || it->second->in_error()) && repairer_) {
    (void)repairer_(peer);  // lazily establish / repair the channel
    it = channels_.find(peer);
  }
  if (it == channels_.end() || it->second->in_error()) {
    ++metrics_.counter("rpc.no_channel");
    // Fail asynchronously so callers see uniform completion ordering.
    sim_.schedule_after(0, [done = std::move(done)]() {
      done(UnavailableError("no control channel to peer"));
    });
    return;
  }
  const std::uint64_t call_id = next_call_++;
  auto pending = std::make_shared<Pending>();
  pending->done = std::move(done);
  pending->started = sim_.now();
  pending->method = method;
  pending->trace = trace;
  pending_.emplace(call_id, pending);
  if (spans_ != nullptr) {
    // Caller-side span: open here, closed by settle() when the reply, error
    // or timeout lands — the Pending record owns the handle across the async
    // gap. dm-lint: allow(span-unclosed)
    pending->span = spans_->begin_span(trace, self_, "net",
                                       "rpc." + method_label(method));
  }
  ++metrics_.counter("rpc.calls");
  trace_event("rpc.call", "node" + std::to_string(self_) + " -> node" +
                              std::to_string(peer) + " " +
                              method_label(method) + " " +
                              format_trace_id(trace));

  WireWriter w;
  w.put_u8(static_cast<std::uint8_t>(Kind::kRequest));
  w.put_u64(call_id);
  w.put_u64(trace);
  w.put_u16(method);
  w.put_bytes(payload);
  const auto msg = std::move(w).take();

  Status posted = it->second->post_send(
      msg, [this, call_id](const Completion& c) {
        if (!c.status.ok()) settle(call_id, c.status);
      });
  if (!posted.ok()) {
    settle(call_id, posted);
    return;
  }
  sim_.schedule_after(timeout, [this, call_id]() {
    settle(call_id, TimeoutError("rpc deadline exceeded"));
  });
}

void RpcEndpoint::on_message(NodeId from, std::span<const std::byte> message) {
  WireReader r(message);
  const auto kind = static_cast<Kind>(r.u8());
  const std::uint64_t call_id = r.u64();
  const TraceId trace = r.u64();
  if (!r.ok()) return;  // torn message: drop (sender will time out)

  if (kind == Kind::kRequest) {
    const RpcMethod method = r.u16();
    auto payload = r.bytes();
    if (!r.ok()) return;
    auto reply_channel = channels_.find(from);
    if (reply_channel == channels_.end()) return;

    ++metrics_.counter("rpc.dispatched");
    trace_event("rpc.dispatch", "node" + std::to_string(self_) + " <- node" +
                                    std::to_string(from) + " " +
                                    method_label(method) + " " +
                                    format_trace_id(trace));
    WireWriter w;
    auto handler = handlers_.find(method);
    if (handler == handlers_.end()) {
      w.put_u8(static_cast<std::uint8_t>(Kind::kReplyError));
      w.put_u64(call_id);
      w.put_u64(trace);
      w.put_u16(static_cast<std::uint16_t>(StatusCode::kInvalidArgument));
    } else {
      WireReader req(payload);
      // Expose the request's trace id to the handler so downstream calls
      // stay on the same causal chain.
      sim::SpanScope dispatch_span(spans_, trace, self_, "remote",
                                   "rpc." + method_label(method));
      current_trace_ = trace;
      auto result = handler->second(from, req);
      current_trace_ = kNoTrace;
      dispatch_span.close();
      if (result.ok()) {
        w.put_u8(static_cast<std::uint8_t>(Kind::kReplyOk));
        w.put_u64(call_id);
        w.put_u64(trace);
        w.put_bytes(*result);
      } else {
        w.put_u8(static_cast<std::uint8_t>(Kind::kReplyError));
        w.put_u64(call_id);
        w.put_u64(trace);
        w.put_u16(static_cast<std::uint16_t>(result.status().code()));
        w.put_string(result.status().message());
      }
    }
    (void)reply_channel->second->post_send(std::move(w).take(), {});
    return;
  }

  // Reply path.
  if (kind == Kind::kReplyOk) {
    auto payload = r.bytes();
    if (!r.ok()) return;
    settle(call_id, std::vector<std::byte>(payload.begin(), payload.end()));
  } else if (kind == Kind::kReplyError) {
    const auto code = static_cast<StatusCode>(r.u16());
    std::string msg = r.remaining() > 0 ? r.string() : std::string{};
    settle(call_id, Status(code, std::move(msg)));
  }
}

void RpcEndpoint::settle(std::uint64_t call_id,
                         StatusOr<std::vector<std::byte>> result) {
  auto it = pending_.find(call_id);
  if (it == pending_.end()) return;
  auto pending = it->second;
  pending_.erase(it);
  if (pending->settled) return;
  pending->settled = true;
  // Round-trip latency per method, timeouts and error-settles included —
  // failure detection time is part of the paper's recovery story.
  metrics_.histogram("rpc.rtt." + method_label(pending->method))
      .record(static_cast<std::uint64_t>(sim_.now() - pending->started));
  if (spans_ != nullptr && pending->span != 0) spans_->end_span(pending->span);
  if (!result.ok()) {
    ++metrics_.counter(result.status().code() == StatusCode::kTimeout
                           ? "rpc.timeouts"
                           : "rpc.errors");
  }
  trace_event("rpc.reply", "node" + std::to_string(self_) + " " +
                               method_label(pending->method) + " " +
                               (result.ok() ? "ok " : "err ") +
                               format_trace_id(pending->trace));
  pending->done(std::move(result));
}

}  // namespace dm::net
