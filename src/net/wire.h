// Tiny binary serialization for control-plane messages.
//
// Fixed-width little-endian integers and length-prefixed byte strings; no
// schema evolution machinery because both ends are always the same build.
// Readers are defensive anyway (a truncated message yields an error, never
// UB) since fault-injection tests deliver torn messages.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dm::net {

class WireWriter {
 public:
  void put_u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }

  void put_u16(std::uint16_t v) { put_raw(&v, sizeof(v)); }
  void put_u32(std::uint32_t v) { put_raw(&v, sizeof(v)); }
  void put_u64(std::uint64_t v) { put_raw(&v, sizeof(v)); }
  void put_i64(std::int64_t v) { put_raw(&v, sizeof(v)); }
  void put_double(double v) { put_raw(&v, sizeof(v)); }

  void put_bytes(std::span<const std::byte> data) {
    put_u32(static_cast<std::uint32_t>(data.size()));
    put_raw(data.data(), data.size());
  }

  void put_string(std::string_view s) {
    put_bytes(std::as_bytes(std::span(s.data(), s.size())));
  }

  const std::vector<std::byte>& bytes() const noexcept { return buf_; }
  std::vector<std::byte> take() && noexcept { return std::move(buf_); }

 private:
  void put_raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<std::byte> buf_;
};

class WireReader {
 public:
  explicit WireReader(std::span<const std::byte> data) : data_(data) {}

  bool ok() const noexcept { return ok_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

  std::uint8_t u8() { return get_raw<std::uint8_t>(); }
  std::uint16_t u16() { return get_raw<std::uint16_t>(); }
  std::uint32_t u32() { return get_raw<std::uint32_t>(); }
  std::uint64_t u64() { return get_raw<std::uint64_t>(); }
  std::int64_t i64() { return get_raw<std::int64_t>(); }
  double f64() { return get_raw<double>(); }

  std::span<const std::byte> bytes() {
    const std::uint32_t n = u32();
    if (!ok_ || remaining() < n) {
      ok_ = false;
      return {};
    }
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }

  std::string string() {
    auto b = bytes();
    return {reinterpret_cast<const char*>(b.data()), b.size()};
  }

  Status status() const {
    return ok_ ? Status::Ok() : InvalidArgumentError("truncated wire message");
  }

 private:
  template <typename T>
  T get_raw() {
    T v{};
    if (!ok_ || remaining() < sizeof(T)) {
      ok_ = false;
      return v;
    }
    std::memcpy(&v, data_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace dm::net
