// Unified retry with capped exponential backoff + deterministic jitter.
//
// Every component that re-attempts a failed network operation — the RPC
// endpoint re-issuing a call, the connection manager pacing channel
// re-establishment toward a flapping peer — shares this one policy object
// instead of growing its own ad-hoc timeout constants. The paper's §IV.D
// recovery story ("a dead replica host costs one detection timeout, not
// data loss") only holds when retries are bounded and paced: unbounded
// immediate retries against a dead node turn one failure into a retry storm.
//
// Determinism: jitter is derived by mixing the policy seed with a caller
// salt and the attempt number — no shared RNG, no wall clock — so two runs
// of the same seeded simulation back off identically.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"

namespace dm::net {

struct RetryPolicy {
  // Total attempts, first try included. 1 disables retry entirely (and, for
  // backoff-gate users like the ConnectionManager, disables the gate).
  std::size_t max_attempts = 1;
  SimTime base_backoff = 1 * kMilli;  // delay before the 2nd attempt
  SimTime max_backoff = 64 * kMilli;  // exponential growth cap
  // Jitter fraction applied after the cap: the actual delay lands in
  // [backoff * (1 - jitter), backoff * (1 + jitter)].
  double jitter = 0.2;
  // kUnavailable is always retryable; timeouts only when opted in (a timed-
  // out request may have executed — retrying makes the method at-least-once).
  bool retry_timeouts = false;
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;

  bool enabled() const noexcept { return max_attempts > 1; }

  bool retryable(StatusCode code) const noexcept {
    return code == StatusCode::kUnavailable ||
           (retry_timeouts && code == StatusCode::kTimeout);
  }

  // Delay to wait after failed attempt number `attempt` (1-based).
  // Exponential: base * 2^(attempt-1), capped, then jittered. `salt`
  // decorrelates concurrent callers (call id, peer pair) so they do not
  // retry in lockstep.
  SimTime backoff(std::size_t attempt, std::uint64_t salt) const noexcept {
    if (attempt == 0) attempt = 1;
    const std::size_t shift = std::min<std::size_t>(attempt - 1, 32);
    SimTime delay = base_backoff;
    if (delay > (max_backoff >> shift)) {
      delay = max_backoff;
    } else {
      delay <<= shift;
    }
    delay = std::min(delay, max_backoff);
    if (jitter > 0.0 && delay > 0) {
      const std::uint64_t h =
          mix64(seed ^ mix64(salt) ^ (0x9e37ULL * attempt));
      // Uniform in [-jitter, +jitter] from the top 53 bits.
      const double u =
          static_cast<double>(h >> 11) * 0x1.0p-53 * 2.0 - 1.0;
      const auto jittered = static_cast<SimTime>(
          static_cast<double>(delay) * (1.0 + jitter * u));
      delay = std::max<SimTime>(jittered, 0);
    }
    return delay;
  }

  // Largest delay backoff() can produce — tests bound observed backoffs
  // with this ("cap reached" assertions).
  SimTime backoff_ceiling() const noexcept {
    return static_cast<SimTime>(static_cast<double>(max_backoff) *
                                (1.0 + std::max(jitter, 0.0)));
  }
};

}  // namespace dm::net
