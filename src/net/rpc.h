// Request/response RPC over two-sided RDMA SEND/RECV.
//
// The paper's architecture (§IV.G) splits each connection into an RDMA data
// channel (one-sided verbs, handled directly via QueuePair) and a system
// control channel (placement, eviction, membership). RpcEndpoint implements
// the control channel: per-method handlers on the server side, correlated
// asynchronous calls with timeouts on the client side.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/fabric.h"
#include "net/wire.h"

namespace dm::net {

using RpcMethod = std::uint16_t;

// Server-side handler: consume the request, produce the response payload.
// Returning a non-OK status sends an error reply carrying the status code.
using RpcHandler = std::function<StatusOr<std::vector<std::byte>>(
    NodeId from, WireReader& request)>;

// Client-side continuation.
using RpcResponseCallback =
    std::function<void(StatusOr<std::vector<std::byte>> response)>;

// One RPC endpoint per node. All QPs attached via attach_channel() share the
// same dispatch table, so a node answers the same protocol to every peer.
class RpcEndpoint {
 public:
  RpcEndpoint(sim::Simulator& simulator, NodeId self)
      : sim_(simulator), self_(self) {}

  NodeId self() const noexcept { return self_; }

  // Registers the handler for a method id (overwrites any previous one).
  void handle(RpcMethod method, RpcHandler handler) {
    handlers_[method] = std::move(handler);
  }

  // Invoked when a call finds no usable channel to a peer; typically bound
  // to ConnectionManager::ensure_control_channel so channels are created on
  // first use and repaired after failures. The repairer re-attaches the
  // channel via attach_channel() on success.
  void set_channel_repairer(std::function<Status(NodeId peer)> repairer) {
    repairer_ = std::move(repairer);
  }

  // Binds this endpoint to its half of a control-channel QP. The endpoint
  // does not own the QP; the connection manager does.
  void attach_channel(QueuePair* qp);
  void detach_channel(NodeId peer);
  bool has_channel(NodeId peer) const { return channels_.count(peer) > 0; }

  // Issues a call to `peer`. The callback always fires exactly once: with
  // the response payload, with the server's error status, or with a timeout/
  // unavailable error.
  void call(NodeId peer, RpcMethod method, std::vector<std::byte> payload,
            SimTime timeout, RpcResponseCallback done);

  std::size_t inflight() const noexcept { return pending_.size(); }

 private:
  struct Pending {
    RpcResponseCallback done;
    bool settled = false;
  };

  void on_message(NodeId from, std::span<const std::byte> message);
  void settle(std::uint64_t call_id, StatusOr<std::vector<std::byte>> result);

  sim::Simulator& sim_;
  NodeId self_;
  std::unordered_map<RpcMethod, RpcHandler> handlers_;
  std::function<Status(NodeId)> repairer_;
  std::unordered_map<NodeId, QueuePair*> channels_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> pending_;
  std::uint64_t next_call_ = 1;
};

}  // namespace dm::net
