// Request/response RPC over two-sided RDMA SEND/RECV.
//
// The paper's architecture (§IV.G) splits each connection into an RDMA data
// channel (one-sided verbs, handled directly via QueuePair) and a system
// control channel (placement, eviction, membership). RpcEndpoint implements
// the control channel: per-method handlers on the server side, correlated
// asynchronous calls with timeouts on the client side.
//
// Observability: every frame carries a causal TraceId (allocated at the
// first hop when the caller passes kNoTrace) which the endpoint stamps into
// tracer events on both sides of the hop, and round-trip latency is
// recorded per method into the endpoint's MetricsRegistry as
// "rpc.rtt.<label>" histograms (labels registered via label_method, falling
// back to "m<id>").
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "common/units.h"
#include "net/fabric.h"
#include "net/retry_policy.h"
#include "net/wire.h"
#include "sim/simulator.h"
#include "sim/span_sink.h"
#include "sim/trace.h"

namespace dm::net {

using RpcMethod = std::uint16_t;

// Server-side handler: consume the request, produce the response payload.
// Returning a non-OK status sends an error reply carrying the status code.
using RpcHandler = std::function<StatusOr<std::vector<std::byte>>(
    NodeId from, WireReader& request)>;

// Client-side continuation.
using RpcResponseCallback =
    std::function<void(StatusOr<std::vector<std::byte>> response)>;

// One RPC endpoint per node. All QPs attached via attach_channel() share the
// same dispatch table, so a node answers the same protocol to every peer.
class RpcEndpoint {
 public:
  RpcEndpoint(sim::Simulator& simulator, NodeId self)
      : sim_(simulator), self_(self) {}

  NodeId self() const noexcept { return self_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }

  // Attaches an event tracer (not owned; null detaches). Records
  // "rpc.call" / "rpc.dispatch" / "rpc.reply" events carrying trace ids.
  void set_tracer(sim::Tracer* tracer) noexcept { tracer_ = tracer; }

  // Attaches a causal span sink (not owned; null detaches). Each traced
  // call opens a caller-side "net"/"rpc.<label>" span spanning send to
  // settle, and each dispatch a callee-side "remote"/"rpc.<label>" span
  // around the handler.
  void set_span_sink(sim::SpanSink* spans) noexcept { spans_ = spans; }

  // Allocates a fresh trace id from this endpoint's sequence — the same
  // counter call() draws from, so external roots (swap faults, tool
  // workloads) never collide with RPC-allocated ids.
  TraceId new_trace() { return make_trace_id(self_, ++next_trace_); }

  // Registers a human-readable label for a method id, used in tracer
  // events and the "rpc.rtt.<label>" histogram names.
  void label_method(RpcMethod method, std::string label) {
    labels_[method] = std::move(label);
  }

  // Registers the handler for a method id (overwrites any previous one).
  void handle(RpcMethod method, RpcHandler handler) {
    handlers_[method] = std::move(handler);
  }

  // Installs the retry policy applied to every call() from this endpoint:
  // a call that fails with a retryable code (see RetryPolicy::retryable) is
  // re-issued after capped exponential backoff, up to max_attempts total,
  // all attempts sharing one trace id and one timeout each. The default
  // policy (max_attempts = 1) preserves single-shot semantics. Each retry
  // bumps the "rpc.retries" counter and records its delay in the
  // "net.backoff_ns" histogram.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const noexcept { return retry_; }

  // Invoked when a call finds no usable channel to a peer; typically bound
  // to ConnectionManager::ensure_control_channel so channels are created on
  // first use and repaired after failures. The repairer re-attaches the
  // channel via attach_channel() on success.
  void set_channel_repairer(std::function<Status(NodeId peer)> repairer) {
    repairer_ = std::move(repairer);
  }

  // Binds this endpoint to its half of a control-channel QP. The endpoint
  // does not own the QP; the connection manager does.
  void attach_channel(QueuePair* qp);
  void detach_channel(NodeId peer);
  bool has_channel(NodeId peer) const { return channels_.count(peer) > 0; }

  // Issues a call to `peer`. The callback always fires exactly once: with
  // the response payload, with the server's error status, or with a timeout/
  // unavailable error. `trace` propagates the caller's causal chain; pass
  // kNoTrace to start a fresh one at this hop.
  void call(NodeId peer, RpcMethod method, std::vector<std::byte> payload,
            SimTime timeout, RpcResponseCallback done,
            TraceId trace = kNoTrace);

  // The trace id of the request currently being dispatched (valid inside a
  // handler; kNoTrace otherwise). Handlers issuing downstream calls pass it
  // along to keep the chain causal.
  TraceId current_trace_id() const noexcept { return current_trace_; }

  std::size_t inflight() const noexcept { return pending_.size(); }

 private:
  struct Pending {
    RpcResponseCallback done;
    SimTime started = 0;
    RpcMethod method = 0;
    TraceId trace = kNoTrace;
    std::uint64_t span = 0;  // caller-side span handle
    bool settled = false;
  };

  void call_once(NodeId peer, RpcMethod method,
                 std::vector<std::byte> payload, SimTime timeout,
                 RpcResponseCallback done, TraceId trace);
  void on_message(NodeId from, std::span<const std::byte> message);
  void settle(std::uint64_t call_id, StatusOr<std::vector<std::byte>> result);
  std::string method_label(RpcMethod method) const;
  void trace_event(std::string category, std::string detail) {
    if (tracer_ != nullptr)
      tracer_->record(sim_.now(), std::move(category), std::move(detail));
  }

  sim::Simulator& sim_;
  NodeId self_;
  MetricsRegistry metrics_;
  sim::Tracer* tracer_ = nullptr;
  sim::SpanSink* spans_ = nullptr;
  RetryPolicy retry_;
  std::unordered_map<RpcMethod, RpcHandler> handlers_;
  std::unordered_map<RpcMethod, std::string> labels_;
  std::function<Status(NodeId)> repairer_;
  std::unordered_map<NodeId, QueuePair*> channels_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Pending>> pending_;
  std::uint64_t next_call_ = 1;
  std::uint32_t next_trace_ = 0;
  TraceId current_trace_ = kNoTrace;
};

}  // namespace dm::net
