#include "net/fabric.h"

#include <algorithm>
#include <cstring>

#include "common/status.h"
#include "common/units.h"
#include "sim/simulator.h"

namespace dm::net {

Fabric::Fabric(sim::Simulator& simulator) : Fabric(simulator, Config{}) {}

Fabric::Fabric(sim::Simulator& simulator, Config config)
    : sim_(simulator), config_(config), loss_rng_(config.loss_seed) {}

void Fabric::set_latency_scale(double scale) noexcept {
  latency_scale_ = scale < 0.0 ? 0.0 : scale;
  ++metrics_.counter("fabric.latency_scale_changes");
  trace("fabric.chaos", "latency scale -> " + std::to_string(latency_scale_));
}

void Fabric::set_message_loss(double probability) noexcept {
  loss_probability_ =
      probability < 0.0 ? 0.0 : (probability > 1.0 ? 1.0 : probability);
  trace("fabric.chaos",
        "message loss -> " + std::to_string(loss_probability_));
}

bool Fabric::should_drop_message() {
  if (loss_probability_ <= 0.0) return false;
  return loss_rng_.bernoulli(loss_probability_);
}

Fabric::~Fabric() = default;

void Fabric::add_node(NodeId node) { nodes_.try_emplace(node); }

bool Fabric::has_node(NodeId node) const { return nodes_.count(node) > 0; }

void Fabric::set_node_up(NodeId node, bool up) {
  if (auto* st = state_of(node)) {
    st->up = up;
    trace("fabric.node", "node " + std::to_string(node) +
                             (up ? " up" : " down"));
    if (!up) fail_node_connections(node);
  }
}

bool Fabric::node_up(NodeId node) const {
  const auto* st = state_of(node);
  return st != nullptr && st->up;
}

void Fabric::set_link_up(NodeId a, NodeId b, bool up) {
  if (up) {
    down_links_.erase({a, b});
  } else {
    down_links_.insert({a, b});
  }
}

bool Fabric::link_up(NodeId a, NodeId b) const {
  return down_links_.count({a, b}) == 0;
}

bool Fabric::path_up(NodeId src, NodeId dst) const {
  return node_up(src) && node_up(dst) && link_up(src, dst);
}

StatusOr<RKey> Fabric::register_memory(NodeId node, std::span<std::byte> bytes) {
  auto* st = state_of(node);
  if (st == nullptr) return InvalidArgumentError("unknown node");
  const RKey rkey = next_rkey_++;
  st->regions.emplace(rkey, MemoryRegion{node, rkey, bytes});
  st->registered_bytes += bytes.size();
  ++metrics_.counter("fabric.mr_registered");
  return rkey;
}

Status Fabric::deregister_memory(NodeId node, RKey rkey) {
  auto* st = state_of(node);
  if (st == nullptr) return InvalidArgumentError("unknown node");
  auto it = st->regions.find(rkey);
  if (it == st->regions.end()) return NotFoundError("rkey not registered");
  st->registered_bytes -= it->second.bytes.size();
  st->regions.erase(it);
  ++metrics_.counter("fabric.mr_deregistered");
  return Status::Ok();
}

std::size_t Fabric::registered_region_count(NodeId node) const {
  const auto* st = state_of(node);
  return st ? st->regions.size() : 0;
}

std::uint64_t Fabric::registered_bytes(NodeId node) const {
  const auto* st = state_of(node);
  return st ? st->registered_bytes : 0;
}

StatusOr<QueuePair*> Fabric::connect(NodeId a, NodeId b) {
  if (!has_node(a) || !has_node(b)) return InvalidArgumentError("unknown node");
  if (!path_up(a, b) || !path_up(b, a))
    return UnavailableError("node or link down");
  auto qa = std::unique_ptr<QueuePair>(new QueuePair(*this, next_qp_++, a, b));
  auto qb = std::unique_ptr<QueuePair>(new QueuePair(*this, next_qp_++, b, a));
  qa->peer_ = qb->id();
  qb->peer_ = qa->id();
  QueuePair* result = qa.get();
  qps_.emplace(qa->id(), std::move(qa));
  qps_.emplace(qb->id(), std::move(qb));
  ++metrics_.counter("fabric.connections");
  return result;
}

QueuePair* Fabric::peer_of(QueuePair* qp) {
  auto it = qps_.find(qp->peer_);
  return it == qps_.end() ? nullptr : it->second.get();
}

QueuePair* Fabric::qp_by_id(QpId id) {
  auto it = qps_.find(id);
  return it == qps_.end() ? nullptr : it->second.get();
}

void Fabric::destroy_connection(QueuePair* qp) {
  const QpId peer = qp->peer_;
  qps_.erase(qp->id());
  qps_.erase(peer);
}

void Fabric::fail_node_connections(NodeId node) {
  for (auto& [id, qp] : qps_) {
    if (qp->local() == node || qp->remote() == node) qp->error_ = true;
  }
}

Fabric::NodeState* Fabric::state_of(NodeId node) {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : &it->second;
}

const Fabric::NodeState* Fabric::state_of(NodeId node) const {
  auto it = nodes_.find(node);
  return it == nodes_.end() ? nullptr : &it->second;
}

MemoryRegion* Fabric::find_region(NodeId node, RKey rkey) {
  auto* st = state_of(node);
  if (st == nullptr) return nullptr;
  auto it = st->regions.find(rkey);
  return it == st->regions.end() ? nullptr : &it->second;
}

StatusOr<SimTime> Fabric::model_transfer(NodeId src, NodeId dst,
                                         std::uint64_t bytes,
                                         const sim::CostModel& cost) {
  if (!path_up(src, dst)) return UnavailableError("path down");
  auto& s = *state_of(src);
  auto& d = *state_of(dst);
  const SimTime now = sim_.now();
  // Serialize on the source NIC: the wire occupies bandwidth-time. The
  // latency scale models chaos-injected congestion/degradation windows.
  const double ns_per_byte = 1e9 / (cost.gib_per_s * static_cast<double>(GiB));
  const auto wire_ns = static_cast<SimTime>(
      ns_per_byte * static_cast<double>(bytes) * latency_scale_);
  const auto overhead_ns =
      static_cast<SimTime>(static_cast<double>(cost.overhead_ns) *
                           latency_scale_);
  const SimTime start = std::max(now, s.egress_free);
  // Per-message verb processing occupies the NIC alongside the wire time:
  // this is what makes one big batched message cheaper than many small ones
  // (the paper's §IV.H batching argument) and bounds the message rate.
  s.egress_free = start + overhead_ns + wire_ns;
  const SimTime arrive_earliest =
      s.egress_free + config_.latency.link_propagation_ns;
  const SimTime arrival = std::max(arrive_earliest, d.ingress_free);
  d.ingress_free = arrival;
  metrics_.counter("fabric.bytes_transferred") += bytes;
  ++metrics_.counter("fabric.messages");
  // Message-size distribution: the §IV.H batching economics in one
  // histogram (many small messages vs few large ones).
  metrics_.histogram("fabric.msg_bytes").record(bytes);
  return arrival;
}

void Fabric::complete_with_error(QueuePair* qp, Status status,
                                 CompletionCallback done) {
  qp->error_ = true;
  ++metrics_.counter("fabric.op_errors");
  const SimTime when = sim_.now() + config_.failure_detect_ns;
  sim_.schedule_at(when, [status = std::move(status), done = std::move(done),
                          when]() {
    if (done) done(Completion{status, when, 0});
  });
}

// ---- CXL-class load/store port ---------------------------------------------

void Fabric::complete_cxl_error(Status status, CompletionCallback done) {
  ++metrics_.counter("fabric.op_errors");
  const SimTime when = sim_.now() + config_.failure_detect_ns;
  sim_.schedule_at(when, [status = std::move(status), done = std::move(done),
                          when]() {
    if (done) done(Completion{status, when, 0});
  });
}

CompletionCallback Fabric::wrap_cxl_span(TraceId trace, NodeId at,
                                         const char* name,
                                         CompletionCallback done) {
  if (spans_ == nullptr || trace == kNoTrace) return done;
  // dm-lint: allow(span-unclosed) — closed by the wrapped completion.
  const std::uint64_t span = spans_->begin_span(trace, at, "net", name);
  return [spans = spans_, span, inner = std::move(done)](const Completion& c) {
    spans->end_span(span);
    if (inner) inner(c);
  };
}

Status Fabric::cxl_read(NodeId src, NodeId dst, RKey rkey,
                        std::uint64_t offset, std::span<std::byte> dest,
                        CompletionCallback done, TraceId trace) {
  if (!has_node(src) || !has_node(dst))
    return InvalidArgumentError("unknown node");
  done = wrap_cxl_span(trace, src, "fabric.cxl_read", std::move(done));
  const SimTime posted_at = sim_.now();
  ++metrics_.counter("fabric.cxl_reads");
  if (!path_up(src, dst)) {
    complete_cxl_error(UnavailableError("path down"), std::move(done));
    return Status::Ok();  // posted; failure arrives via completion
  }
  // Request flit to the memory node, then the data transaction back. The
  // request rides on propagation only: CXL transactions have one overhead
  // budget, charged on the data-carrying hop.
  const SimTime request_arrival =
      sim_.now() + config_.latency.link_propagation_ns;
  sim_.schedule_at(request_arrival, [this, src, dst, rkey, offset, dest,
                                     posted_at,
                                     done = std::move(done)]() mutable {
    MemoryRegion* region = find_region(dst, rkey);
    if (!path_up(dst, src) || region == nullptr ||
        offset + dest.size() > region->bytes.size()) {
      Status err = region == nullptr ? NotFoundError("remote MR invalid")
                                     : UnavailableError("remote down");
      complete_cxl_error(std::move(err), std::move(done));
      return;
    }
    // Snapshot the remote line now; it travels back on the data hop.
    std::vector<std::byte> payload(
        region->bytes.begin() + static_cast<std::ptrdiff_t>(offset),
        region->bytes.begin() + static_cast<std::ptrdiff_t>(offset) +
            static_cast<std::ptrdiff_t>(dest.size()));
    auto back = model_transfer(dst, src, payload.size(), config_.latency.cxl);
    if (!back.ok()) {
      complete_cxl_error(back.status(), std::move(done));
      return;
    }
    sim_.schedule_at(*back, [this, dest, payload = std::move(payload),
                             done = std::move(done), posted_at,
                             deliver = *back]() {
      std::memcpy(dest.data(), payload.data(), payload.size());
      metrics_.histogram("fabric.cxl_read_ns")
          .record(static_cast<std::uint64_t>(deliver - posted_at));
      if (done)
        done(Completion{Status::Ok(), deliver,
                        static_cast<std::uint64_t>(payload.size())});
    });
  });
  return Status::Ok();
}

Status Fabric::cxl_write(NodeId src, NodeId dst, RKey rkey,
                         std::uint64_t offset, std::span<const std::byte> data,
                         CompletionCallback done, TraceId trace) {
  if (!has_node(src) || !has_node(dst))
    return InvalidArgumentError("unknown node");
  done = wrap_cxl_span(trace, src, "fabric.cxl_write", std::move(done));
  const SimTime posted_at = sim_.now();
  ++metrics_.counter("fabric.cxl_writes");
  auto arrival = model_transfer(src, dst, data.size(), config_.latency.cxl);
  if (!arrival.ok()) {
    complete_cxl_error(arrival.status(), std::move(done));
    return Status::Ok();
  }
  // Copy out now (doorbell + DMA snapshot, as with post_write).
  std::vector<std::byte> payload(data.begin(), data.end());
  sim_.schedule_at(*arrival, [this, dst, rkey, offset,
                              payload = std::move(payload), posted_at,
                              done = std::move(done), deliver = *arrival]() {
    MemoryRegion* region = find_region(dst, rkey);
    if (!node_up(dst) || region == nullptr ||
        offset + payload.size() > region->bytes.size()) {
      Status err = region == nullptr
                       ? NotFoundError("remote MR invalid")
                       : UnavailableError("remote node down at delivery");
      complete_cxl_error(std::move(err), std::move(done));
      return;
    }
    if (!payload.empty())
      std::memcpy(region->bytes.data() + offset, payload.data(),
                  payload.size());
    const SimTime acked = deliver + config_.latency.link_propagation_ns;
    metrics_.histogram("fabric.cxl_write_ns")
        .record(static_cast<std::uint64_t>(acked - posted_at));
    sim_.schedule_at(acked, [done = std::move(done), acked,
                             nbytes = payload.size()]() {
      if (done)
        done(Completion{Status::Ok(), acked,
                        static_cast<std::uint64_t>(nbytes)});
    });
  });
  return Status::Ok();
}

// ---- QueuePair verbs -------------------------------------------------------

Status QueuePair::post_write(RKey rkey, std::uint64_t offset,
                             std::span<const std::byte> data,
                             CompletionCallback done, TraceId trace) {
  if (error_) return FailedPreconditionError("QP in error state");
  if (fabric_.spans_ != nullptr && trace != kNoTrace) {
    // Span closes when the completion fires, on success and failure alike —
    // wrap `done` so every settle path ends it. dm-lint: allow(span-unclosed)
    const std::uint64_t span =
        fabric_.spans_->begin_span(trace, local_, "net", "fabric.write");
    done = [spans = fabric_.spans_, span,
            inner = std::move(done)](const Completion& c) {
      spans->end_span(span);
      if (inner) inner(c);
    };
  }
  const SimTime posted_at = fabric_.sim_.now();
  auto arrival = fabric_.model_transfer(local_, remote_, data.size(),
                                        fabric_.config().latency.rdma);
  if (!arrival.ok()) {
    fabric_.complete_with_error(this, arrival.status(), std::move(done));
    return Status::Ok();  // posted; failure arrives via completion
  }
  // RC ordering: completions on one QP never reorder.
  const SimTime deliver = std::max(*arrival, last_delivery_);
  last_delivery_ = deliver;
  const std::uint64_t nbytes = data.size();
  // Copy out now: the caller may reuse its buffer after post (the model
  // charges the NIC at post time, so this matches a doorbell + DMA snapshot).
  std::vector<std::byte> payload(data.begin(), data.end());
  auto& fabric = fabric_;
  const NodeId remote = remote_;
  const QpId self_id = id_;
  fabric.sim_.schedule_at(deliver, [&fabric, remote, rkey, offset,
                                    payload = std::move(payload), self_id,
                                    nbytes, done = std::move(done), deliver,
                                    posted_at]() {
    MemoryRegion* region = fabric.find_region(remote, rkey);
    if (!fabric.node_up(remote) || region == nullptr ||
        offset + payload.size() > region->bytes.size()) {
      Status err = region == nullptr
                       ? NotFoundError("remote MR invalid")
                       : UnavailableError("remote node down at delivery");
      if (QueuePair* self = fabric.qp_by_id(self_id)) self->error_ = true;
      if (done) done(Completion{err, deliver, 0});
      return;
    }
    std::memcpy(region->bytes.data() + offset, payload.data(), payload.size());
    const SimTime acked =
        deliver + fabric.config().latency.link_propagation_ns;
    fabric.metrics().histogram("fabric.write_ns")
        .record(static_cast<std::uint64_t>(acked - posted_at));
    fabric.sim_.schedule_at(acked, [done = std::move(done), acked, nbytes]() {
      if (done) done(Completion{Status::Ok(), acked, nbytes});
    });
  });
  ++fabric_.metrics().counter("fabric.writes");
  fabric_.trace("fabric.write",
                "node" + std::to_string(local_) + " -> node" +
                    std::to_string(remote_) + ", " +
                    std::to_string(data.size()) + "B " +
                    format_trace_id(trace));
  return Status::Ok();
}

Status QueuePair::post_read(RKey rkey, std::uint64_t offset,
                            std::span<std::byte> dest, CompletionCallback done,
                            TraceId trace) {
  if (error_) return FailedPreconditionError("QP in error state");
  if (fabric_.spans_ != nullptr && trace != kNoTrace) {
    // dm-lint: allow(span-unclosed) — closed by the wrapped completion.
    const std::uint64_t span =
        fabric_.spans_->begin_span(trace, local_, "net", "fabric.read");
    done = [spans = fabric_.spans_, span,
            inner = std::move(done)](const Completion& c) {
      spans->end_span(span);
      if (inner) inner(c);
    };
  }
  const SimTime posted_at = fabric_.sim_.now();
  // Request hop (tiny control message), then data hop back.
  auto request_arrival =
      fabric_.model_transfer(local_, remote_, 64, fabric_.config().latency.rdma);
  if (!request_arrival.ok()) {
    fabric_.complete_with_error(this, request_arrival.status(), std::move(done));
    return Status::Ok();
  }
  auto& fabric = fabric_;
  const NodeId remote = remote_;
  const NodeId local = local_;
  const QpId self_id = id_;
  fabric.sim_.schedule_at(*request_arrival, [&fabric, remote, local, rkey,
                                             offset, dest, self_id, posted_at,
                                             done = std::move(done)]() mutable {
    QueuePair* self = fabric.qp_by_id(self_id);
    MemoryRegion* region = fabric.find_region(remote, rkey);
    if (!fabric.node_up(remote) || region == nullptr || self == nullptr ||
        offset + dest.size() > region->bytes.size()) {
      Status err = region == nullptr ? NotFoundError("remote MR invalid")
                                     : UnavailableError("remote down");
      if (self != nullptr) self->error_ = true;
      const SimTime when =
          fabric.sim_.now() + fabric.config().failure_detect_ns;
      fabric.sim_.schedule_at(when, [done = std::move(done), err, when]() {
        if (done) done(Completion{err, when, 0});
      });
      return;
    }
    // Snapshot remote bytes now; they travel back on the data hop.
    std::vector<std::byte> payload(region->bytes.begin() + offset,
                                   region->bytes.begin() + offset + dest.size());
    auto back = fabric.model_transfer(remote, local, payload.size(),
                                      fabric.config().latency.rdma);
    if (!back.ok()) {
      self->error_ = true;
      const SimTime when =
          fabric.sim_.now() + fabric.config().failure_detect_ns;
      fabric.sim_.schedule_at(when, [done = std::move(done), when,
                                     st = back.status()]() {
        if (done) done(Completion{st, when, 0});
      });
      return;
    }
    const SimTime deliver = std::max(*back, self->last_delivery_);
    self->last_delivery_ = deliver;
    fabric.metrics().histogram("fabric.read_ns")
        .record(static_cast<std::uint64_t>(deliver - posted_at));
    fabric.sim_.schedule_at(deliver, [dest, payload = std::move(payload),
                                      done = std::move(done), deliver]() {
      std::memcpy(dest.data(), payload.data(), payload.size());
      if (done)
        done(Completion{Status::Ok(), deliver,
                        static_cast<std::uint64_t>(payload.size())});
    });
  });
  ++fabric_.metrics().counter("fabric.reads");
  fabric_.trace("fabric.read",
                "node" + std::to_string(local_) + " <- node" +
                    std::to_string(remote_) + ", " +
                    std::to_string(dest.size()) + "B " +
                    format_trace_id(trace));
  return Status::Ok();
}

Status QueuePair::post_send(std::span<const std::byte> message,
                            CompletionCallback done) {
  if (error_) return FailedPreconditionError("QP in error state");
  const SimTime posted_at = fabric_.sim_.now();
  auto arrival = fabric_.model_transfer(local_, remote_, message.size(),
                                        fabric_.config().latency.rdma_send);
  if (!arrival.ok()) {
    fabric_.complete_with_error(this, arrival.status(), std::move(done));
    return Status::Ok();
  }
  const SimTime deliver = std::max(*arrival, last_delivery_);
  last_delivery_ = deliver;
  std::vector<std::byte> payload(message.begin(), message.end());
  auto& fabric = fabric_;
  const QpId self_id = id_;
  const NodeId from = local_;
  const NodeId remote = remote_;
  const std::uint64_t nbytes = message.size();
  fabric.sim_.schedule_at(deliver, [&fabric, self_id, from, remote,
                                    payload = std::move(payload),
                                    done = std::move(done), deliver,
                                    nbytes, posted_at]() {
    QueuePair* self = fabric.qp_by_id(self_id);
    QueuePair* peer = self != nullptr ? fabric.peer_of(self) : nullptr;
    if (!fabric.node_up(remote) || peer == nullptr ||
        !peer->receive_handler_) {
      if (self != nullptr) self->error_ = true;
      if (done)
        done(Completion{UnavailableError("receiver gone"), deliver, 0});
      return;
    }
    if (fabric.should_drop_message()) {
      // Chaos packet loss: the message vanishes past the local NIC. The
      // sender's ack still completes (it cannot tell), so the layer above
      // only notices via its own timeout.
      ++fabric.metrics().counter("fabric.msgs_dropped");
      fabric.trace("fabric.drop", "node" + std::to_string(from) +
                                      " -> node" + std::to_string(remote) +
                                      ", " + std::to_string(nbytes) +
                                      "B lost");
      const SimTime acked =
          deliver + fabric.config().latency.link_propagation_ns;
      fabric.sim_.schedule_at(acked, [done = std::move(done), acked,
                                      nbytes]() {
        if (done) done(Completion{Status::Ok(), acked, nbytes});
      });
      return;
    }
    peer->receive_handler_(from, std::span<const std::byte>(payload));
    const SimTime acked = deliver + fabric.config().latency.link_propagation_ns;
    fabric.metrics().histogram("fabric.send_ns")
        .record(static_cast<std::uint64_t>(acked - posted_at));
    fabric.sim_.schedule_at(acked, [done = std::move(done), acked, nbytes]() {
      if (done) done(Completion{Status::Ok(), acked, nbytes});
    });
  });
  ++fabric_.metrics().counter("fabric.sends");
  return Status::Ok();
}

}  // namespace dm::net
