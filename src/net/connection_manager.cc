#include "net/connection_manager.h"

#include "common/status.h"
#include "common/units.h"
#include "net/rpc.h"

namespace dm::net {

void ConnectionManager::register_endpoint(RpcEndpoint* endpoint) {
  endpoints_[endpoint->self()] = endpoint;
}

Status ConnectionManager::establish(NodeId a, NodeId b, ChannelPair& out) {
  auto ep_a = endpoints_.find(a);
  auto ep_b = endpoints_.find(b);
  if (ep_a == endpoints_.end() || ep_b == endpoints_.end())
    return FailedPreconditionError("peer endpoint not registered");

  auto data = fabric_.connect(a, b);
  if (!data.ok()) {
    log_.info("establish ", a, "<->", b,
              " failed (data channel): ", data.status().to_string());
    return data.status();
  }
  auto control = fabric_.connect(a, b);
  if (!control.ok()) {
    log_.info("establish ", a, "<->", b,
              " failed (control channel): ", control.status().to_string());
    fabric_.destroy_connection(*data);
    return control.status();
  }
  out.data_a = *data;
  out.control_a = *control;
  ep_a->second->attach_channel(out.control_a);
  ep_b->second->attach_channel(fabric_.peer_of(out.control_a));
  return Status::Ok();
}

StatusOr<QueuePair*> ConnectionManager::ensure_data_channel(NodeId a,
                                                            NodeId b) {
  const PairKey key{a, b};
  auto it = channels_.find(key);
  if (it != channels_.end()) {
    if (!it->second.data_a->in_error() && !it->second.control_a->in_error())
      return it->second.data_a;
    // Repair: tear down the broken pair, fall through to re-establish.
    log_.info("repairing channel pair ", a, "<->", b,
              " (QP in error state)");
    if (auto* ep = endpoints_[a]) ep->detach_channel(b);
    if (auto* ep = endpoints_[b]) ep->detach_channel(a);
    fabric_.destroy_connection(it->second.data_a);
    fabric_.destroy_connection(it->second.control_a);
    channels_.erase(it);
  }
  // Backoff gate: while a pair is in its post-failure backoff window, fail
  // fast instead of hammering a peer that was just unreachable. Dead-peer
  // probing then costs one failed establish per window, not one per call.
  if (retry_.enabled()) {
    auto gate = backoff_.find(key);
    if (gate != backoff_.end() &&
        fabric_.simulator().now() < gate->second.not_before) {
      ++metrics_.counter("cm.backoff_suppressed");
      return UnavailableError("channel establish suppressed by backoff");
    }
  }
  ChannelPair pair;
  if (Status s = establish(a, b, pair); !s.ok()) {
    ++metrics_.counter("cm.establish_failed");
    if (retry_.enabled()) {
      auto& gate = backoff_[key];
      ++gate.failures;
      const SimTime wait = retry_.backoff(
          gate.failures, (static_cast<std::uint64_t>(a) << 32) | b);
      gate.not_before = fabric_.simulator().now() + wait;
      metrics_.histogram("net.backoff_ns")
          .record(static_cast<std::uint64_t>(wait));
    }
    return s;
  }
  backoff_.erase(key);
  ++metrics_.counter("cm.established");
  channels_.emplace(key, pair);
  return pair.data_a;
}

Status ConnectionManager::ensure_control_channel(NodeId a, NodeId b) {
  return ensure_data_channel(a, b).status();
}

void ConnectionManager::drop_node(NodeId node) {
  for (auto it = channels_.begin(); it != channels_.end();) {
    const auto [a, b] = it->first;
    if (a == node || b == node) {
      if (auto ep = endpoints_.find(a); ep != endpoints_.end())
        ep->second->detach_channel(b);
      if (auto ep = endpoints_.find(b); ep != endpoints_.end())
        ep->second->detach_channel(a);
      fabric_.destroy_connection(it->second.data_a);
      fabric_.destroy_connection(it->second.control_a);
      it = channels_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = backoff_.begin(); it != backoff_.end();) {
    if (it->first.first == node || it->first.second == node) {
      it = backoff_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace dm::net
