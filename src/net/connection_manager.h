// Connection establishment and repair for the disaggregated memory system.
//
// Per the paper (§IV.G), every node pair that exchanges disaggregated-memory
// traffic maintains two channels: an RDMA data channel (one-sided READ/WRITE
// for the data plane) and a system control channel (two-sided RPC for
// placement, eviction, membership). The ConnectionManager is the fabric-wide
// directory that wires both sides — it plays the role of the RDMA CM
// exchange, collapsed into a deterministic in-simulator handshake.
//
// Channels are created lazily and repaired lazily: a QP that entered the
// error state (node/link failure) is torn down and re-established on the
// next ensure_*() call, provided the path is healthy again.
#pragma once

#include <map>
#include <unordered_map>
#include <utility>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/status.h"
#include "common/units.h"
#include "net/fabric.h"
#include "net/retry_policy.h"
#include "net/rpc.h"

namespace dm::net {

class ConnectionManager {
 public:
  explicit ConnectionManager(Fabric& fabric) : fabric_(fabric) {}

  ConnectionManager(const ConnectionManager&) = delete;
  ConnectionManager& operator=(const ConnectionManager&) = delete;

  // Every participating node registers its RPC endpoint once at bring-up.
  void register_endpoint(RpcEndpoint* endpoint);

  // Returns node a's side of the data channel to b, establishing or
  // repairing the pair (and the control channel) as needed.
  StatusOr<QueuePair*> ensure_data_channel(NodeId a, NodeId b);

  // Returns whether a usable control channel a->b exists or can be made.
  Status ensure_control_channel(NodeId a, NodeId b);

  // Tears down all channels touching `node` (on permanent decommission).
  void drop_node(NodeId node);

  // Paces re-establishment toward unreachable peers: after an establish
  // failure, further ensure_*() calls for that pair fail fast with
  // kUnavailable until the capped-exponential backoff window expires
  // (metrics: "cm.establish_failed", "cm.backoff_suppressed",
  // "net.backoff_ns"). A disabled policy (the default) keeps the historical
  // retry-on-every-call behavior.
  void set_retry_policy(const RetryPolicy& policy) { retry_ = policy; }
  const RetryPolicy& retry_policy() const noexcept { return retry_; }

  MetricsRegistry& metrics() noexcept { return metrics_; }

  std::size_t established_pairs() const noexcept { return channels_.size(); }

  // Repair and establish-failure events are logged at info (failures to
  // reach a crashed peer are routine retry traffic, so the default kWarn
  // level keeps them quiet). Tests lower the level and redirect the sink
  // via logger().set_sink() to observe the retry path.
  Logger& logger() noexcept { return log_; }

 private:
  struct ChannelPair {
    QueuePair* data_a = nullptr;   // a-side endpoints
    QueuePair* control_a = nullptr;
  };

  using PairKey = std::pair<NodeId, NodeId>;  // ordered (a, b): a's view

  struct BackoffState {
    std::size_t failures = 0;
    SimTime not_before = 0;
  };

  Status establish(NodeId a, NodeId b, ChannelPair& out);

  Fabric& fabric_;
  Logger log_{"net.cm"};
  RetryPolicy retry_;
  MetricsRegistry metrics_;
  std::unordered_map<NodeId, RpcEndpoint*> endpoints_;
  std::map<PairKey, ChannelPair> channels_;
  std::map<PairKey, BackoffState> backoff_;
};

}  // namespace dm::net
