// Simulated RDMA fabric: nodes, registered memory, RC queue pairs.
//
// Real data, virtual time: WRITE/READ/SEND move actual bytes between real
// buffers; the fabric charges virtual time for NIC serialization (per-node
// egress/ingress availability), per-message verb overhead, payload
// bandwidth, and link propagation — so message-count economics (batching vs
// per-page messaging, the core of the paper's §IV.H) emerge naturally.
//
// Failure model: nodes and directed links can be marked down. An operation
// touching a down element completes with kUnavailable after the configured
// detection delay, and the QP transitions to the error state (as RC QPs do);
// it must be reconnected through the ConnectionManager before reuse.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/units.h"
#include "net/rdma.h"
#include "sim/latency_model.h"
#include "sim/simulator.h"
#include "sim/span_sink.h"
#include "sim/trace.h"

namespace dm::net {

class Fabric;

// One endpoint of a reliable connection. Both directions share the pair of
// endpoints created by Fabric::connect(). Posting verbs on an error-state QP
// fails immediately with kFailedPrecondition.
class QueuePair {
 public:
  QpId id() const noexcept { return id_; }
  NodeId local() const noexcept { return local_; }
  NodeId remote() const noexcept { return remote_; }
  bool in_error() const noexcept { return error_; }

  // One-sided WRITE of `data` into (rkey, offset) on the remote node.
  // Bytes land at modeled arrival time; the callback fires at ack time.
  // `trace` tags the tracer event so the verb can be attributed to the
  // causal chain that issued it (kNoTrace = untraced).
  Status post_write(RKey rkey, std::uint64_t offset,
                    std::span<const std::byte> data, CompletionCallback done,
                    TraceId trace = kNoTrace);

  // One-sided READ of dest.size() bytes from (rkey, offset) on the remote
  // node into `dest`. Bytes land and the callback fires at completion time.
  Status post_read(RKey rkey, std::uint64_t offset, std::span<std::byte> dest,
                   CompletionCallback done, TraceId trace = kNoTrace);

  // Two-sided SEND. The remote node's receive handler for this QP gets the
  // message at arrival time; the local callback fires at ack time.
  Status post_send(std::span<const std::byte> message, CompletionCallback done);

  void set_receive_handler(ReceiveHandler handler) {
    receive_handler_ = std::move(handler);
  }

 private:
  friend class Fabric;
  QueuePair(Fabric& fabric, QpId id, NodeId local, NodeId remote)
      : fabric_(fabric), id_(id), local_(local), remote_(remote) {}

  Fabric& fabric_;
  QpId id_;
  NodeId local_;
  NodeId remote_;
  QpId peer_ = 0;
  bool error_ = false;
  ReceiveHandler receive_handler_;
  // Enforces RC in-order completion per QP.
  SimTime last_delivery_ = 0;
};

class Fabric {
 public:
  struct Config {
    sim::LatencyModel latency{};
    // Delay before an operation against a down node/link errors out
    // (models RC retry exhaustion / keep-alive timeout).
    SimTime failure_detect_ns = 50 * kMicro;
    // Seed for the message-loss draw stream (chaos scenarios). Loss draws
    // only happen while a loss probability is set, so runs without chaos
    // are bit-identical to pre-chaos builds.
    std::uint64_t loss_seed = 0x10553;
  };

  explicit Fabric(sim::Simulator& simulator);
  Fabric(sim::Simulator& simulator, Config config);
  ~Fabric();

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  sim::Simulator& simulator() noexcept { return sim_; }
  const Config& config() const noexcept { return config_; }
  MetricsRegistry& metrics() noexcept { return metrics_; }

  // Attaches an event tracer (not owned; may be null to detach). The
  // fabric records verbs, registrations, and topology changes.
  void set_tracer(sim::Tracer* tracer) noexcept { tracer_ = tracer; }
  sim::Tracer* tracer() const noexcept { return tracer_; }

  // Causal span sink (not owned; null detaches): one-sided verbs carrying a
  // real trace id get "net"/"fabric.write|read" spans from post to
  // completion.
  void set_span_sink(sim::SpanSink* spans) noexcept { spans_ = spans; }
  sim::SpanSink* span_sink() const noexcept { return spans_; }

  // --- chaos knobs ---------------------------------------------------------
  // Scales every transfer's NIC/wire time (latency-spike scenarios; 1.0 =
  // nominal). Applies from the next posted operation.
  void set_latency_scale(double scale) noexcept;
  double latency_scale() const noexcept { return latency_scale_; }
  // Probability that a two-sided SEND message is silently dropped at
  // delivery (the sender's ack still completes, as with loss beyond the
  // local NIC): the receiver never sees it and the RPC above times out.
  // One-sided verbs are unaffected (RC retransmission hides loss there).
  void set_message_loss(double probability) noexcept;
  double message_loss() const noexcept { return loss_probability_; }

  // --- topology -----------------------------------------------------------
  void add_node(NodeId node);
  bool has_node(NodeId node) const;
  void set_node_up(NodeId node, bool up);
  bool node_up(NodeId node) const;
  // Directed link control (a->b). Both directions default to up.
  void set_link_up(NodeId a, NodeId b, bool up);
  bool link_up(NodeId a, NodeId b) const;

  // --- memory registration --------------------------------------------------
  // Registers `bytes` (owned by the caller, which must keep them alive until
  // deregistration) on `node`; returns the rkey remote peers use.
  StatusOr<RKey> register_memory(NodeId node, std::span<std::byte> bytes);
  Status deregister_memory(NodeId node, RKey rkey);
  // Number of regions currently registered on a node (for tests/eviction).
  std::size_t registered_region_count(NodeId node) const;
  std::uint64_t registered_bytes(NodeId node) const;

  // --- connections ----------------------------------------------------------
  // Creates an RC connection; returns the endpoint owned by `a`. The peer
  // endpoint is retrievable via peer_of(). Fails if either node is unknown.
  StatusOr<QueuePair*> connect(NodeId a, NodeId b);
  QueuePair* peer_of(QueuePair* qp);
  QueuePair* qp_by_id(QpId id);
  void destroy_connection(QueuePair* qp);

  // Marks every QP touching `node` as error (called on crash).
  void fail_node_connections(NodeId node);

  // --- CXL-class load/store port --------------------------------------------
  // Cache-line-granularity memory transactions against registered memory on
  // `dst`, charged at config().latency.cxl (ns-scale, no page fault, no
  // queue pair). Real bytes move, failures surface in the completion after
  // failure_detect_ns, exactly like the verbs above. The cxl:: layer builds
  // its coherence protocol out of these two transactions.
  //
  // cxl_read pulls dest.size() bytes from (rkey, offset) on dst into dest.
  // cxl_write pushes `data` into (rkey, offset) on dst; a zero-length write
  // is a pure control transaction (coherence snoops and releases ride on
  // it) and charges only the per-transaction overhead.
  Status cxl_read(NodeId src, NodeId dst, RKey rkey, std::uint64_t offset,
                  std::span<std::byte> dest, CompletionCallback done,
                  TraceId trace = kNoTrace);
  Status cxl_write(NodeId src, NodeId dst, RKey rkey, std::uint64_t offset,
                   std::span<const std::byte> data, CompletionCallback done,
                   TraceId trace = kNoTrace);

 private:
  friend class QueuePair;

  struct NodeState {
    bool up = true;
    SimTime egress_free = 0;   // NIC serialization, outbound
    SimTime ingress_free = 0;  // NIC serialization, inbound
    std::unordered_map<RKey, MemoryRegion> regions;
    std::uint64_t registered_bytes = 0;
  };

  // Returns arrival time at dst for a payload of `bytes`, charging NIC and
  // link occupancy, or an error if the path is down.
  StatusOr<SimTime> model_transfer(NodeId src, NodeId dst, std::uint64_t bytes,
                                   const sim::CostModel& cost);

  bool path_up(NodeId src, NodeId dst) const;
  // Loss draw for one delivered message (false when loss is disabled).
  bool should_drop_message();
  void complete_with_error(QueuePair* qp, Status status,
                           CompletionCallback done);
  // QP-free error completion for the CXL port (no connection to poison).
  void complete_cxl_error(Status status, CompletionCallback done);
  // Shared span-wrapping for the CXL port ops.
  CompletionCallback wrap_cxl_span(TraceId trace, NodeId at, const char* name,
                                   CompletionCallback done);
  NodeState* state_of(NodeId node);
  const NodeState* state_of(NodeId node) const;
  MemoryRegion* find_region(NodeId node, RKey rkey);

  void trace(std::string category, std::string detail) {
    if (tracer_ != nullptr)
      tracer_->record(sim_.now(), std::move(category), std::move(detail));
  }

  sim::Simulator& sim_;
  Config config_;
  MetricsRegistry metrics_;
  sim::Tracer* tracer_ = nullptr;
  sim::SpanSink* spans_ = nullptr;
  double latency_scale_ = 1.0;
  double loss_probability_ = 0.0;
  Rng loss_rng_;
  std::map<NodeId, NodeState> nodes_;
  std::set<std::pair<NodeId, NodeId>> down_links_;
  std::unordered_map<QpId, std::unique_ptr<QueuePair>> qps_;
  QpId next_qp_ = 1;
  RKey next_rkey_ = 1;
};

}  // namespace dm::net
