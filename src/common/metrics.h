// Named-counter/histogram registry.
//
// Each subsystem owns a MetricsRegistry (no global state), which benches and
// tests read to assert behavioural properties ("zero disk I/O in FS-SM
// mode", "3 replica writes per put").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "common/histogram.h"

namespace dm {

class MetricsRegistry {
 public:
  // Returns the counter by name, creating it at zero on first use.
  std::uint64_t& counter(std::string_view name) {
    return counters_[std::string(name)];
  }
  std::uint64_t counter_value(std::string_view name) const {
    auto it = counters_.find(std::string(name));
    return it == counters_.end() ? 0 : it->second;
  }

  Histogram& histogram(std::string_view name) {
    return histograms_[std::string(name)];
  }
  const Histogram* find_histogram(std::string_view name) const {
    auto it = histograms_.find(std::string(name));
    return it == histograms_.end() ? nullptr : &it->second;
  }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  void reset() {
    counters_.clear();
    histograms_.clear();
  }

  // "name=value" lines, sorted by name, then one
  // "name: count=N mean=M p50=A p99=B max=C" line per histogram (raw
  // nanosecond values); for debug dumps.
  std::string to_string() const;

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace dm
